#include "apps/cholesky/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "base/error.hpp"
#include "base/linalg.hpp"
#include "ga/global_array.hpp"
#include "scioto/task_collection.hpp"

namespace scioto::apps {

namespace {

// Per-kernel fma counts of the b x b tile operations; the virtual charge
// is count * flop_cost so both schedules pay identical compute.
std::int64_t potrf_flops(std::int64_t b) { return b * b * b / 3 + b; }
std::int64_t trsm_flops(std::int64_t b) { return b * b * b / 2; }
std::int64_t syrk_flops(std::int64_t b) { return b * b * b / 2; }
std::int64_t gemm_flops(std::int64_t b) { return b * b * b; }

struct TileBuf {
  std::vector<double> a, l, r;
  explicit TileBuf(std::int64_t b)
      : a(static_cast<std::size_t>(b * b)),
        l(static_cast<std::size_t>(b * b)),
        r(static_cast<std::size_t>(b * b)) {}
};

// The four kernel task bodies, shared verbatim by both schedules: fetch
// tiles one-sided, run the kernel, charge, write the output tile back.
void do_potrf(ga::GlobalArray& m, std::int64_t b, int k, TileBuf& tb) {
  const std::int64_t r0 = k * b, c0 = k * b;
  m.get(r0, r0 + b, c0, c0 + b, tb.a.data(), b);
  SCIOTO_REQUIRE(potrf_tile(tb.a.data(), b),
                 "cholesky: non-SPD pivot in tile (" << k << ", " << k
                                                    << ")");
  m.put(r0, r0 + b, c0, c0 + b, tb.a.data(), b);
}

void do_trsm(ga::GlobalArray& m, std::int64_t b, int i, int k,
             TileBuf& tb) {
  m.get(k * b, k * b + b, k * b, k * b + b, tb.l.data(), b);
  m.get(i * b, i * b + b, k * b, k * b + b, tb.a.data(), b);
  trsm_tile(tb.a.data(), tb.l.data(), b);
  m.put(i * b, i * b + b, k * b, k * b + b, tb.a.data(), b);
}

void do_update(ga::GlobalArray& m, std::int64_t b, int i, int j, int k,
               TileBuf& tb) {
  m.get(i * b, i * b + b, k * b, k * b + b, tb.a.data(), b);
  if (i != j) {
    m.get(j * b, j * b + b, k * b, k * b + b, tb.l.data(), b);
  }
  m.get(i * b, i * b + b, j * b, j * b + b, tb.r.data(), b);
  if (i == j) {
    syrk_tile(tb.r.data(), tb.a.data(), b);
  } else {
    gemm_tile(tb.r.data(), tb.a.data(), tb.l.data(), b);
  }
  m.put(i * b, i * b + b, j * b, j * b + b, tb.r.data(), b);
}

/// Tile-aligned row partition so every tile lives on exactly one rank.
std::vector<std::int64_t> tile_split(int nt, std::int64_t b, int nranks) {
  std::vector<std::int64_t> offsets(static_cast<std::size_t>(nt) + 1);
  for (int t = 0; t <= nt; ++t) {
    offsets[static_cast<std::size_t>(t)] = t * b;
  }
  return ga::block_aligned_split(offsets, nranks);
}

void fill_spd(pgas::Runtime& rt, ga::GlobalArray& m) {
  const std::int64_t n = m.rows();
  double* panel = m.local_panel();
  const std::int64_t lo = m.row_lo(rt.me()), hi = m.row_hi(rt.me());
  for (std::int64_t i = lo; i < hi; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      panel[(i - lo) * n + j] = cholesky_spd_entry(i, j, n);
    }
  }
  m.sync();
}

/// Rank 0 pulls the factored matrix, rebuilds L L^T from the lower
/// triangle, and compares against the generator; the scalar result is
/// broadcast through the (dead-rank-safe) reduction.
double verify_residual(pgas::Runtime& rt, ga::GlobalArray& m) {
  const std::int64_t n = m.rows();
  double res = 0;
  if (rt.me() == 0) {
    std::vector<double> l(static_cast<std::size_t>(n * n));
    m.get(0, n, 0, n, l.data(), n);
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        l[static_cast<std::size_t>(i * n + j)] = 0.0;  // untouched upper
      }
    }
    double num = 0, den = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        double llt = 0;
        const std::int64_t t1 = std::min(i, j) + 1;
        for (std::int64_t t = 0; t < t1; ++t) {
          llt += l[static_cast<std::size_t>(i * n + t)] *
                 l[static_cast<std::size_t>(j * n + t)];
        }
        const double aij = cholesky_spd_entry(i, j, n);
        num += (llt - aij) * (llt - aij);
        den += aij * aij;
      }
    }
    res = std::sqrt(num / den);
  }
  return rt.allreduce_max(res);
}

}  // namespace

double cholesky_spd_entry(std::int64_t i, std::int64_t j, std::int64_t n) {
  double v = 1.0 / (1.0 + static_cast<double>(i > j ? i - j : j - i));
  if (i == j) v += static_cast<double>(n);
  return v;
}

CholeskyResult cholesky_dag(pgas::Runtime& rt, const CholeskyConfig& cfg) {
  const int nt = cfg.tiles;
  const std::int64_t b = cfg.tile;
  const std::int64_t n = nt * b;
  ga::GlobalArray m(rt, n, n, tile_split(nt, b, rt.nprocs()), "chol");
  fill_spd(rt, m);

  TaskCollection tc(rt);
  dag::DagScheduler dg(tc);
  TileBuf tb(b);

  auto tile_owner = [&](int i) { return m.owner_of_row(i * b); };
  // Version record naming tile (i, j)'s bytes: b rows of n doubles
  // starting at the tile's first element inside the owner's panel.
  auto tile_dep = [&](int i, int j) {
    dag::DataDep d;
    d.seg = m.seg();
    d.owner = tile_owner(i);
    d.offset = m.elem_offset(i * b, j * b);
    d.len = static_cast<std::size_t>(b * n) * sizeof(double);
    return d;
  };

  // Node ids: potrf[k]; trsm[(i,k)] for i>k; update[(i,j,k)] for
  // k<j<=i. Downdates of one trailing tile commute, so they share a
  // conflict group instead of edges -- the engine serializes them in
  // whatever order they become ready.
  std::vector<dag::NodeId> potrf_id(static_cast<std::size_t>(nt));
  std::vector<dag::NodeId> trsm_id(static_cast<std::size_t>(nt) * nt, -1);
  std::vector<dag::NodeId> upd_id(static_cast<std::size_t>(nt) * nt * nt,
                                  -1);
  std::vector<dag::GroupId> tile_grp(static_cast<std::size_t>(nt) * nt,
                                     dag::kNoGroup);
  const std::int64_t fc = cfg.flop_cost;
  for (int k = 0; k < nt; ++k) {
    potrf_id[static_cast<std::size_t>(k)] =
        dg.add_node(tile_owner(k), [&rt, &m, &tb, b, k, fc] {
          rt.charge(potrf_flops(b) * fc);
          do_potrf(m, b, k, tb);
        });
    for (int i = k + 1; i < nt; ++i) {
      trsm_id[static_cast<std::size_t>(i * nt + k)] =
          dg.add_node(tile_owner(i), [&rt, &m, &tb, b, i, k, fc] {
            rt.charge(trsm_flops(b) * fc);
            do_trsm(m, b, i, k, tb);
          });
      for (int j = k + 1; j <= i; ++j) {
        dag::GroupId& g = tile_grp[static_cast<std::size_t>(i * nt + j)];
        if (g == dag::kNoGroup && j >= 2) {
          // Tile (i, j) receives min(i, j) = j downdates; when there is
          // more than one they commute, so mutual exclusion (not
          // ordering) is all they need.
          g = dg.conflict_group();
        }
        upd_id[static_cast<std::size_t>((i * nt + j) * nt + k)] =
            dg.add_node(
                tile_owner(i),
                [&rt, &m, &tb, b, i, j, k, fc](dag::NodeCtx&) {
                  rt.charge((i == j ? syrk_flops(b) : gemm_flops(b)) * fc);
                  do_update(m, b, i, j, k, tb);
                },
                g);
      }
    }
  }
  for (int k = 0; k < nt; ++k) {
    // Everything that downdated tile (k, k) must land before potrf reads
    // it; the data edge carries the tile's version.
    for (int kp = 0; kp < k; ++kp) {
      dg.add_edge(upd_id[static_cast<std::size_t>((k * nt + k) * nt + kp)],
                  potrf_id[static_cast<std::size_t>(k)], tile_dep(k, k));
    }
    for (int i = k + 1; i < nt; ++i) {
      const dag::NodeId t = trsm_id[static_cast<std::size_t>(i * nt + k)];
      dg.add_edge(potrf_id[static_cast<std::size_t>(k)], t, tile_dep(k, k));
      for (int kp = 0; kp < k; ++kp) {
        dg.add_edge(upd_id[static_cast<std::size_t>((i * nt + k) * nt + kp)],
                    t, tile_dep(i, k));
      }
      for (int j = k + 1; j <= i; ++j) {
        const dag::NodeId u =
            upd_id[static_cast<std::size_t>((i * nt + j) * nt + k)];
        dg.add_edge(t, u, tile_dep(i, k));
        if (j != i) {
          dg.add_edge(trsm_id[static_cast<std::size_t>(j * nt + k)], u,
                      tile_dep(j, k));
        }
      }
    }
  }

  const TimeNs t0 = rt.now();
  dg.execute();
  CholeskyResult res;
  res.elapsed_ms = to_ms(rt.allreduce_max(rt.now() - t0));
  res.dag = dg.stats_global();
  res.tasks_run = res.dag.nodes_run;
  m.sync();
  res.residual = verify_residual(rt, m);
  m.destroy();
  tc.destroy();
  return res;
}

CholeskyResult cholesky_static(pgas::Runtime& rt,
                               const CholeskyConfig& cfg) {
  const int nt = cfg.tiles;
  const std::int64_t b = cfg.tile;
  const std::int64_t n = nt * b;
  ga::GlobalArray m(rt, n, n, tile_split(nt, b, rt.nprocs()), "chol_ref");
  fill_spd(rt, m);

  TileBuf tb(b);
  auto mine = [&](int i) { return m.owner_of_row(i * b) == rt.me(); };
  const std::int64_t fc = cfg.flop_cost;
  std::uint64_t local_tasks = 0;

  const TimeNs t0 = rt.now();
  for (int k = 0; k < nt; ++k) {
    if (mine(k)) {
      rt.charge(potrf_flops(b) * fc);
      do_potrf(m, b, k, tb);
      ++local_tasks;
    }
    m.sync();
    for (int i = k + 1; i < nt; ++i) {
      if (!mine(i)) continue;
      rt.charge(trsm_flops(b) * fc);
      do_trsm(m, b, i, k, tb);
      ++local_tasks;
    }
    m.sync();
    for (int i = k + 1; i < nt; ++i) {
      if (!mine(i)) continue;  // owner-computes on the output tile row
      for (int j = k + 1; j <= i; ++j) {
        rt.charge((i == j ? syrk_flops(b) : gemm_flops(b)) * fc);
        do_update(m, b, i, j, k, tb);
        ++local_tasks;
      }
    }
    m.sync();
  }
  CholeskyResult res;
  res.elapsed_ms = to_ms(rt.allreduce_max(rt.now() - t0));
  res.tasks_run = rt.allreduce_sum(local_tasks);
  res.residual = verify_residual(rt, m);
  m.destroy();
  return res;
}

}  // namespace scioto::apps
