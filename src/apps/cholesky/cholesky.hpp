// Blocked right-looking Cholesky: the dependency engine's proof
// application.
//
// A = L * L^T over an nt x nt grid of b x b tiles in a Global Array.
// Unlike UTS/SCF/TCE -- independent task bags -- tiled Cholesky has a
// dense true-dependence structure, so it exercises everything src/dag
// adds: dependency edges (potrf -> trsm -> update chains), conflict
// groups (the k-indexed downdates of one trailing tile commute, so they
// only need mutual exclusion, not order), and data-version edges (a
// consumer must not fire until the producer's tile bytes are fenced,
// even when the ready decrement overtakes them).
//
// Two schedules over the identical tile kernels and identical virtual
// charges:
//   cholesky_dag     one task per tile kernel, homed at its output
//                    tile's owner, free to overlap panel steps and to
//                    migrate by stealing;
//   cholesky_static  the owner-computes fork-join baseline, three
//                    barrier-separated phases per panel step k.
// The row-panel distribution makes the trailing-update work triangular
// across ranks, so the static schedule pays max-per-rank at every
// barrier while the dataflow schedule keeps everyone busy across steps.
#pragma once

#include <cstdint>

#include "base/types.hpp"
#include "dag/dag.hpp"

namespace scioto::ga {
class GlobalArray;
}

namespace scioto::apps {

struct CholeskyConfig {
  /// Tile grid side: the matrix is (tiles*tile) x (tiles*tile).
  int tiles = 8;
  /// Tile side length b.
  int tile = 16;
  /// Virtual cost per fused multiply-add inside a tile kernel (sim
  /// backend). Toy b stands in for the b ~ 128..256 tiles a real run
  /// would use, so the per-fma charge is inflated to land each tile
  /// kernel at the hundreds-of-microseconds scale those tiles cost on
  /// the paper's 2008 cluster.
  TimeNs flop_cost = ns(100);
};

struct CholeskyResult {
  /// Virtual makespan under sim (max rank clock); wall time under
  /// threads.
  double elapsed_ms = 0;
  /// ||L L^T - A||_F / ||A||_F, computed on rank 0 and broadcast.
  double residual = 0;
  /// Tile-kernel tasks executed fleet-wide.
  std::uint64_t tasks_run = 0;
  /// Scheduler stats (zero-initialized for the static baseline).
  dag::DagStats dag;
};

/// Deterministic SPD test-matrix entry: 1/(1+|i-j|) off the diagonal,
/// diagonally dominant. Position-keyed, so any rank can (re)generate any
/// entry without communication.
double cholesky_spd_entry(std::int64_t i, std::int64_t j, std::int64_t n);

/// Collective. Factorizes on the DAG scheduler; on return `elapsed_ms`
/// covers build+execute and `residual` has been verified fleet-wide.
CholeskyResult cholesky_dag(pgas::Runtime& rt, const CholeskyConfig& cfg);

/// Collective. Same factorization, static owner-computes schedule with
/// per-step barriers.
CholeskyResult cholesky_static(pgas::Runtime& rt, const CholeskyConfig& cfg);

}  // namespace scioto::apps
