#include "apps/uts/uts_drivers.hpp"

#include <cstring>
#include <vector>

#include "detect/membership.hpp"
#include "elastic/elastic.hpp"
#include "fault/fault.hpp"

namespace scioto::apps {

namespace {

/// Shared node-processing kernel: charges the per-node cost, updates the
/// per-rank counts, and walks a chain of first-children inline, handing
/// every other child to `emit`. The inline continuation mirrors what a
/// depth-first UTS worker does with its explicit stack: only siblings
/// enter the queue, trimming queue traffic without hiding work from
/// thieves (each emit goes through the normal add path, which releases
/// work to the shared portion).
template <class EmitFn>
void process_chain(UtsNode node, const UtsParams& tree, TimeNs node_cost,
                   pgas::Runtime& rt, UtsCounts& counts, EmitFn&& emit) {
  for (;;) {
    rt.charge(node_cost);
    ++counts.nodes;
    counts.max_depth = std::max<std::int64_t>(counts.max_depth, node.depth);
    int nc = uts_num_children(node, tree);
    if (nc == 0) {
      ++counts.leaves;
      return;
    }
    for (int i = 1; i < nc; ++i) {
      emit(uts_child(node, i));
    }
    node = uts_child(node, 0);
  }
}

}  // namespace

UtsResult uts_run_scioto(pgas::Runtime& rt, const UtsParams& tree,
                         const UtsRunConfig& cfg) {
  TcConfig tcc;
  tcc.max_task_body = sizeof(UtsNode);
  tcc.chunk_size = cfg.chunk;
  tcc.max_tasks_per_rank = cfg.max_tasks;
  tcc.queue_mode = cfg.queue_mode;
  tcc.color_optimization = cfg.color_optimization;
  tcc.aborting_steals = cfg.aborting_steals;
  tcc.adaptive_steal = cfg.adaptive_steal;
  tcc.owner_fastpath = cfg.owner_fastpath;
  tcc.deferred_steal_copy = cfg.deferred_steal_copy;
  TaskCollection tc(rt, tcc);

  UtsCounts local;
  CloHandle counts_clo = tc.register_clo(&local);
  TaskHandle h = tc.register_callback([&, counts_clo](TaskContext& ctx) {
    UtsCounts& counts = ctx.tc.clo<UtsCounts>(counts_clo);
    process_chain(ctx.body_as<UtsNode>(), tree, cfg.node_cost,
                  ctx.tc.runtime(), counts, [&](const UtsNode& child) {
                    Task t = ctx.tc.task_create(sizeof(UtsNode),
                                                ctx.header.callback);
                    t.body_as<UtsNode>() = child;
                    ctx.tc.add_local(t);
                  });
  });

  // A restore run (SCIOTO_CKPT_RESTORE) resumes the checkpointed
  // traversal: the pending subtree roots come from the snapshot, so
  // seeding the tree root again would count every node twice.
  if (rt.me() == 0 && elastic::restore_path().empty()) {
    Task t = tc.task_create(sizeof(UtsNode), h);
    t.body_as<UtsNode>() = uts_root(tree);
    tc.add_local(t);
  }

  rt.barrier();
  TimeNs t0 = rt.now();
  tc.process();
  TimeNs elapsed = rt.allreduce_max(rt.now() - t0);

  UtsResult res;
  res.counts.nodes = rt.allreduce_sum(local.nodes);
  res.counts.leaves = rt.allreduce_sum(local.leaves);
  res.counts.max_depth = rt.allreduce_max(local.max_depth);
  res.elapsed = elapsed;
  res.mnodes_per_sec =
      static_cast<double>(res.counts.nodes) / (to_sec(elapsed) * 1e6);
  TcStats g = tc.stats_global();
  res.stats = g;
  res.steals = g.steals;
  res.tasks_stolen = g.tasks_stolen;
  tc.destroy();
  return res;
}

UtsResult uts_run_scioto_ft(pgas::Runtime& rt, const UtsParams& tree,
                            const UtsRunConfig& cfg) {
  TcConfig tcc;
  tcc.max_task_body = sizeof(UtsNode);
  tcc.chunk_size = cfg.chunk;
  tcc.max_tasks_per_rank = cfg.max_tasks;
  tcc.queue_mode = cfg.queue_mode;
  tcc.color_optimization = cfg.color_optimization;
  tcc.aborting_steals = cfg.aborting_steals;
  tcc.adaptive_steal = cfg.adaptive_steal;
  tcc.owner_fastpath = cfg.owner_fastpath;
  tcc.deferred_steal_copy = cfg.deferred_steal_copy;
  TaskCollection tc(rt, tcc);

  // Durable per-rank counts: owner-local stores into our own shared patch
  // cost nothing, and the patch outlives us if we are fail-stopped.
  pgas::SegId counts_seg = rt.seg_alloc(sizeof(UtsCounts));
  auto* durable =
      reinterpret_cast<UtsCounts*>(rt.seg_ptr(counts_seg, rt.me()));
  *durable = UtsCounts{};

  // Same checkpoint blob wiring as the elastic driver: snapshot this
  // rank's durable counts (the quiesce leader also folds dead/parked
  // ranks' patches), and on restore accumulate blobs into the receiving
  // patch. Without this a checkpoint written by this driver would carry
  // the pending descriptors but lose the nodes already executed.
  tc.set_ckpt_hooks(
      [&rt, durable, counts_seg]() {
        UtsCounts sum = *durable;
        std::vector<Rank> alive = detect::alive_ranks();
        if (!alive.empty() && alive.front() == rt.me()) {
          for (Rank r = 0; r < rt.nprocs(); ++r) {
            if (detect::alive(r)) continue;
            UtsCounts c;
            if (rt.get_with_retry(counts_seg, r, 0, &c, sizeof(c)) !=
                pgas::OpStatus::Dropped) {
              sum += c;
            }
          }
        }
        std::vector<std::byte> blob(sizeof(UtsCounts));
        std::memcpy(blob.data(), &sum, sizeof(sum));
        return blob;
      },
      [durable](Rank, const std::vector<std::byte>& blob) {
        if (blob.size() != sizeof(UtsCounts)) return;
        UtsCounts c;
        std::memcpy(&c, blob.data(), sizeof(c));
        *durable += c;
      });

  CloHandle counts_clo = tc.register_clo(durable);
  TaskHandle h = tc.register_callback([&, counts_clo](TaskContext& ctx) {
    UtsCounts& counts = ctx.tc.clo<UtsCounts>(counts_clo);
    process_chain(ctx.body_as<UtsNode>(), tree, cfg.node_cost,
                  ctx.tc.runtime(), counts, [&](const UtsNode& child) {
                    Task t = ctx.tc.task_create(sizeof(UtsNode),
                                                ctx.header.callback);
                    t.body_as<UtsNode>() = child;
                    ctx.tc.add_local(t);
                  });
  });

  // Same restore gate as the elastic driver: a snapshot carries the
  // pending subtree roots, so a restore run must not re-seed the root.
  if (rt.me() == 0 && elastic::restore_path().empty()) {
    Task t = tc.task_create(sizeof(UtsNode), h);
    t.body_as<UtsNode>() = uts_root(tree);
    tc.add_local(t);
  }

  rt.barrier();
  TimeNs t0 = rt.now();
  // Killed ranks throw fault::RankKilled through here; everything below
  // runs on survivors only (collectives skip the dead).
  tc.process();
  TimeNs elapsed = rt.allreduce_max(rt.now() - t0);
  rt.barrier();

  UtsResult res;
  // Survivors sum every rank's patch, dead or alive: completed work is
  // never re-executed (exactly-once), so this total -- not an allreduce
  // over survivors -- is what must match the sequential count.
  for (Rank r = 0; r < rt.nprocs(); ++r) {
    UtsCounts c;
    // Retrying read: a drop rule that outlives the computation must not
    // silently zero a dead rank's durable counts out of the total.
    pgas::OpStatus st = rt.get_with_retry(counts_seg, r, 0, &c, sizeof(c));
    SCIOTO_CHECK_MSG(st != pgas::OpStatus::Dropped,
                     "durable-count read from rank " << r
                                                     << " dropped past retry");
    res.counts.nodes += c.nodes;
    res.counts.leaves += c.leaves;
    res.counts.max_depth =
        std::max<std::int64_t>(res.counts.max_depth, c.max_depth);
  }
  res.elapsed = elapsed;
  res.mnodes_per_sec =
      static_cast<double>(res.counts.nodes) / (to_sec(elapsed) * 1e6);
  TcStats g = tc.stats_global();
  res.stats = g;
  res.steals = g.steals;
  res.tasks_stolen = g.tasks_stolen;
  res.survivors = fault::alive_count();
  rt.seg_free(counts_seg);
  tc.destroy();
  return res;
}

UtsResult uts_run_scioto_elastic(pgas::Runtime& rt, const UtsParams& tree,
                                 const UtsRunConfig& cfg) {
  TcConfig tcc;
  tcc.max_task_body = sizeof(UtsNode);
  tcc.chunk_size = cfg.chunk;
  tcc.max_tasks_per_rank = cfg.max_tasks;
  tcc.queue_mode = cfg.queue_mode;
  tcc.color_optimization = cfg.color_optimization;
  tcc.aborting_steals = cfg.aborting_steals;
  tcc.adaptive_steal = cfg.adaptive_steal;
  tcc.owner_fastpath = cfg.owner_fastpath;
  tcc.deferred_steal_copy = cfg.deferred_steal_copy;
  TaskCollection tc(rt, tcc);

  pgas::SegId counts_seg = rt.seg_alloc(sizeof(UtsCounts));
  auto* durable =
      reinterpret_cast<UtsCounts*>(rt.seg_ptr(counts_seg, rt.me()));
  *durable = UtsCounts{};

  // Checkpoint blob = this rank's durable counts. Ranks that write no
  // part file -- dead (their queued work was adopted by wards before the
  // quiesce) and parked (never admitted) -- still hold executed-node
  // counts in their patches, which stay readable; the quiesce leader
  // folds those into its own blob so no completed work escapes the
  // snapshot. On restore, blobs accumulate into the receiving rank's
  // patch, where the end-of-run sum picks them up like any other counts.
  tc.set_ckpt_hooks(
      [&rt, durable, counts_seg]() {
        UtsCounts sum = *durable;
        std::vector<Rank> alive = detect::alive_ranks();
        if (!alive.empty() && alive.front() == rt.me()) {
          for (Rank r = 0; r < rt.nprocs(); ++r) {
            if (detect::alive(r)) continue;
            UtsCounts c;
            if (rt.get_with_retry(counts_seg, r, 0, &c, sizeof(c)) !=
                pgas::OpStatus::Dropped) {
              sum += c;
            }
          }
        }
        std::vector<std::byte> blob(sizeof(UtsCounts));
        std::memcpy(blob.data(), &sum, sizeof(sum));
        return blob;
      },
      [durable](Rank, const std::vector<std::byte>& blob) {
        if (blob.size() != sizeof(UtsCounts)) return;
        UtsCounts c;
        std::memcpy(&c, blob.data(), sizeof(c));
        *durable += c;
      });

  CloHandle counts_clo = tc.register_clo(durable);
  TaskHandle h = tc.register_callback([&, counts_clo](TaskContext& ctx) {
    UtsCounts& counts = ctx.tc.clo<UtsCounts>(counts_clo);
    process_chain(ctx.body_as<UtsNode>(), tree, cfg.node_cost,
                  ctx.tc.runtime(), counts, [&](const UtsNode& child) {
                    Task t = ctx.tc.task_create(sizeof(UtsNode),
                                                ctx.header.callback);
                    t.body_as<UtsNode>() = child;
                    ctx.tc.add_local(t);
                  });
  });

  // A restore run resumes the checkpointed traversal: the pending subtree
  // roots come from the snapshot, so seeding the tree root again would
  // count every node twice.
  if (rt.me() == 0 && elastic::restore_path().empty()) {
    Task t = tc.task_create(sizeof(UtsNode), h);
    t.body_as<UtsNode>() = uts_root(tree);
    tc.add_local(t);
  }

  rt.barrier();
  TimeNs t0 = rt.now();
  tc.process();
  TimeNs elapsed = rt.allreduce_max(rt.now() - t0);
  rt.barrier();

  UtsResult res;
  for (Rank r = 0; r < rt.nprocs(); ++r) {
    UtsCounts c;
    pgas::OpStatus st = rt.get_with_retry(counts_seg, r, 0, &c, sizeof(c));
    SCIOTO_CHECK_MSG(st != pgas::OpStatus::Dropped,
                     "durable-count read from rank " << r
                                                     << " dropped past retry");
    res.counts += c;
  }
  res.elapsed = elapsed;
  res.mnodes_per_sec =
      static_cast<double>(res.counts.nodes) / (to_sec(elapsed) * 1e6);
  TcStats g = tc.stats_global();
  res.stats = g;
  res.steals = g.steals;
  res.tasks_stolen = g.tasks_stolen;
  res.survivors = detect::alive_count();
  rt.seg_free(counts_seg);
  tc.destroy();
  return res;
}

UtsResult uts_run_mpi_ws(pgas::Runtime& rt, const UtsParams& tree,
                         const UtsRunConfig& cfg) {
  baselines::MpiWorkStealing::Config wcfg;
  wcfg.task_bytes = sizeof(UtsNode);
  wcfg.chunk = cfg.chunk;
  wcfg.poll_interval = cfg.poll_interval;
  baselines::MpiWorkStealing ws(rt, wcfg);

  UtsCounts local;
  if (rt.me() == 0) {
    UtsNode root = uts_root(tree);
    ws.spawn(&root);
  }

  rt.barrier();
  TimeNs t0 = rt.now();
  auto stats = ws.process([&](const void* rec) {
    UtsNode node;
    std::memcpy(&node, rec, sizeof(node));
    process_chain(node, tree, cfg.node_cost, rt, local,
                  [&](const UtsNode& child) { ws.spawn(&child); });
  });
  TimeNs elapsed = rt.allreduce_max(rt.now() - t0);

  UtsResult res;
  res.counts.nodes = rt.allreduce_sum(local.nodes);
  res.counts.leaves = rt.allreduce_sum(local.leaves);
  res.counts.max_depth = rt.allreduce_max(local.max_depth);
  res.elapsed = elapsed;
  res.mnodes_per_sec =
      static_cast<double>(res.counts.nodes) / (to_sec(elapsed) * 1e6);
  res.steals = static_cast<std::uint64_t>(stats.steals_successful);
  res.tasks_stolen = static_cast<std::uint64_t>(stats.tasks_received);
  res.polls = static_cast<std::uint64_t>(stats.polls);
  return res;
}

}  // namespace scioto::apps
