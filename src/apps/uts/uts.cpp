#include "apps/uts/uts.hpp"

#include <cmath>
#include <sstream>
#include <vector>

#include "base/error.hpp"

namespace scioto::apps {

UtsNode uts_root(const UtsParams& p) {
  // The canonical UTS root state is derived by hashing the seed.
  UtsNode root;
  std::uint32_t seed_be = static_cast<std::uint32_t>(p.seed);
  std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(seed_be >> 24),
      static_cast<std::uint8_t>(seed_be >> 16),
      static_cast<std::uint8_t>(seed_be >> 8),
      static_cast<std::uint8_t>(seed_be),
  };
  Sha1::Digest d = Sha1::hash(bytes, sizeof(bytes));
  std::copy(d.begin(), d.end(), root.state.begin());
  root.depth = 0;
  return root;
}

std::uint32_t uts_rand(const UtsNode& node) {
  // Last four digest bytes, big-endian, masked to 31 bits (UTS rng_rand).
  const auto& s = node.state;
  std::uint32_t v = (std::uint32_t(s[16]) << 24) |
                    (std::uint32_t(s[17]) << 16) |
                    (std::uint32_t(s[18]) << 8) | std::uint32_t(s[19]);
  return v & 0x7FFFFFFFu;
}

int uts_num_children(const UtsNode& node, const UtsParams& p) {
  const double u =
      (static_cast<double>(uts_rand(node)) + 1.0) / 2147483649.0;  // (0,1]
  switch (p.tree) {
    case UtsTree::Geometric: {
      if (node.depth >= p.gen_mx) {
        return 0;
      }
      // Expected branching factor from the shape function; degree is then
      // sampled ~ Geometric(mean b).
      const double d = static_cast<double>(node.depth);
      const double m = static_cast<double>(p.gen_mx);
      double b = 0.0;
      switch (p.shape) {
        case GeoShape::Linear:
          b = p.b0 * (1.0 - d / m);
          break;
        case GeoShape::Expdec:
          b = p.b0 * std::pow(d + 1.0, -std::log(p.b0) / std::log(m));
          break;
        case GeoShape::Cyclic:
          b = p.b0 * std::pow(std::sin(3.141592653589793 * (d + 1.0) / m),
                              2.0);
          break;
        case GeoShape::Fixed:
          b = p.b0;
          break;
      }
      if (b <= 0.0) {
        return 0;
      }
      double succ = 1.0 / (1.0 + b);  // P(stop); mean (1-succ)/succ = b
      int k = static_cast<int>(std::floor(std::log(u) /
                                          std::log(1.0 - succ)));
      return k < 0 ? 0 : k;
    }
    case UtsTree::Binomial: {
      if (node.depth == 0) {
        return static_cast<int>(p.b0);
      }
      return u <= p.q ? p.m : 0;
    }
  }
  return 0;
}

UtsNode uts_child(const UtsNode& parent, int i) {
  Sha1 h;
  h.update(parent.state.data(), parent.state.size());
  std::uint8_t idx[4] = {
      static_cast<std::uint8_t>(i >> 24),
      static_cast<std::uint8_t>(i >> 16),
      static_cast<std::uint8_t>(i >> 8),
      static_cast<std::uint8_t>(i),
  };
  h.update(idx, sizeof(idx));
  Sha1::Digest d = h.finish();
  UtsNode child;
  std::copy(d.begin(), d.end(), child.state.begin());
  child.depth = parent.depth + 1;
  return child;
}

UtsCounts uts_sequential(const UtsParams& p) {
  UtsCounts counts;
  std::vector<UtsNode> stack;
  stack.push_back(uts_root(p));
  while (!stack.empty()) {
    UtsNode node = stack.back();
    stack.pop_back();
    ++counts.nodes;
    counts.max_depth = std::max<std::int64_t>(counts.max_depth, node.depth);
    int nc = uts_num_children(node, p);
    if (nc == 0) {
      ++counts.leaves;
      continue;
    }
    for (int i = 0; i < nc; ++i) {
      stack.push_back(uts_child(node, i));
    }
  }
  return counts;
}

namespace {
const char* shape_name(GeoShape s) {
  switch (s) {
    case GeoShape::Linear: return "linear";
    case GeoShape::Expdec: return "expdec";
    case GeoShape::Cyclic: return "cyclic";
    case GeoShape::Fixed: return "fixed";
  }
  return "?";
}
}  // namespace

std::string uts_describe(const UtsParams& p) {
  std::ostringstream oss;
  if (p.tree == UtsTree::Geometric) {
    oss << "GEO-" << shape_name(p.shape) << "(seed=" << p.seed
        << ", b0=" << p.b0 << ", d=" << p.gen_mx << ")";
  } else {
    oss << "BIN(seed=" << p.seed << ", b0=" << p.b0 << ", q=" << p.q
        << ", m=" << p.m << ")";
  }
  return oss.str();
}

UtsParams uts_tiny() {
  UtsParams p;
  p.tree = UtsTree::Geometric;
  p.seed = 19;
  p.b0 = 4.0;
  p.gen_mx = 6;
  return p;
}

UtsParams uts_small() {
  UtsParams p;
  p.tree = UtsTree::Geometric;
  p.seed = 19;
  p.b0 = 4.0;
  p.gen_mx = 11;  // ~19k nodes
  return p;
}

UtsParams uts_bench() {
  UtsParams p;
  p.tree = UtsTree::Geometric;
  p.seed = 19;
  p.b0 = 6.0;
  p.gen_mx = 11;  // ~408k nodes, depth 11: sized for the simulated
                  // cluster (the paper's runs used multi-million-node
                  // trees on real hardware)
  return p;
}

UtsParams uts_binomial_small() {
  UtsParams p;
  p.tree = UtsTree::Binomial;
  p.seed = 42;
  p.b0 = 64;       // root fan-out
  p.q = 0.120;     // subcritical: mq = 0.96
  p.m = 8;
  return p;
}

}  // namespace scioto::apps
