// Parallel UTS drivers: Scioto task collections (with or without split
// queues) and the two-sided MPI-style work-stealing baseline. Both process
// the identical deterministic tree; results must match uts_sequential()
// exactly.
#pragma once

#include "apps/uts/uts.hpp"
#include "baselines/mpi_ws.hpp"
#include "scioto/task_collection.hpp"

namespace scioto::apps {

struct UtsRunConfig {
  /// Virtual compute cost per tree node, including the worker's own stack
  /// management (the paper measures whole-loop per-node costs: 0.3158 us
  /// Opteron / 0.4753 us Xeon on the cluster, 0.5681 us on the XT4 -- the
  /// sim's per-rank cpu_scale turns this base cost into the heterogeneous
  /// mix).
  TimeNs node_cost = ns(316);
  /// Steal granularity in tasks (paper microbenchmarks use 10).
  int chunk = 10;
  /// Queue variant: NoSplit gives the "No Split" ablation line of
  /// Figure 7; WaitFreeSteal exercises the §8 lock-free steal path.
  QueueMode queue_mode = QueueMode::Split;
  /// §5.3 token-coloring optimization.
  bool color_optimization = true;
  /// Per-rank queue capacity.
  std::int64_t max_tasks = 1 << 14;
  /// Adaptive steal engine knobs (see TcConfig): trylock-abort + retarget,
  /// steal-half chunking, the owner's lock-free split publish, and the
  /// shrunken steal critical section. All default off (the paper's
  /// blocking fixed-chunk protocol).
  bool aborting_steals = false;
  bool adaptive_steal = false;
  bool owner_fastpath = false;
  bool deferred_steal_copy = false;
  /// MPI-WS: nodes processed between polls for steal requests. The
  /// original UTS-MPI polls on every node -- this explicit polling is
  /// precisely the overhead the paper credits Scioto with eliminating
  /// (§6.3).
  int poll_interval = 1;
};

struct UtsResult {
  UtsCounts counts;
  /// Wall/virtual time of the parallel phase (max over ranks).
  TimeNs elapsed = 0;
  /// Throughput in million tree nodes per second.
  double mnodes_per_sec = 0;
  /// Scheduler counters (Scioto runs aggregate TcStats; MPI-WS runs map
  /// its own counters onto the matching fields).
  std::uint64_t steals = 0;
  std::uint64_t tasks_stolen = 0;
  std::uint64_t polls = 0;  // MPI-WS only
  /// Full global TcStats snapshot (Scioto runs only; render with
  /// tc_stats_table).
  TcStats stats;
  /// Ranks still alive at the end of the run (nprocs without faults).
  int survivors = 0;
};

/// Collective: UTS under a Scioto task collection.
UtsResult uts_run_scioto(pgas::Runtime& rt, const UtsParams& tree,
                         const UtsRunConfig& cfg);

/// Collective: UTS under a Scioto task collection with fault recovery.
/// Per-rank node counts live in shared space, so work completed by a rank
/// that is later fail-stopped is never lost: survivors sum every rank's
/// patch (dead ranks' exposed segments stay readable) and the total must
/// still match uts_sequential() exactly. Ranks killed mid-run propagate
/// fault::RankKilled out of this call; survivors return normally.
UtsResult uts_run_scioto_ft(pgas::Runtime& rt, const UtsParams& tree,
                            const UtsRunConfig& cfg);

/// Collective: the fault-tolerant UTS driver with checkpoint hooks wired,
/// for elastic runs that quiesce mid-traversal. The per-rank durable
/// counts ride along in each part file's application blob (the quiesce
/// leader also folds in the patches of dead and parked ranks, which write
/// no part of their own), and a restore accumulates incoming blobs into
/// the restoring rank's patch -- so a checkpoint/halt run followed by a
/// restore run, possibly on a different fleet size, sums to exactly the
/// uninterrupted traversal's counts.
UtsResult uts_run_scioto_elastic(pgas::Runtime& rt, const UtsParams& tree,
                                 const UtsRunConfig& cfg);

/// Collective: UTS under two-sided work stealing with explicit polling.
UtsResult uts_run_mpi_ws(pgas::Runtime& rt, const UtsParams& tree,
                         const UtsRunConfig& cfg);

}  // namespace scioto::apps
