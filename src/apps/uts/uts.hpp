// UTS: the Unbalanced Tree Search benchmark (Olivier et al., LCPC 2006;
// paper §6.2). An exhaustive traversal of a deterministic, highly
// unbalanced tree whose shape is derived from a SHA-1 splittable random
// stream: each node is described by a 20-byte digest, and child i's
// descriptor is SHA1(parent_digest || i). Because the tree exists only
// implicitly, the benchmark isolates dynamic load balancing: performance
// is reported in tree nodes processed per second.
//
// Two tree families from the UTS suite are implemented:
//   * Geometric: the branching factor's expectation decreases linearly
//     from b0 at the root to 0 at depth gen_mx; node degree is sampled
//     from a geometric distribution. Bounded depth, heavy imbalance.
//   * Binomial: the root has b0 children; every other node has m children
//     with probability q and none otherwise (mq < 1 keeps it finite).
//     Unbounded depth, extreme imbalance.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "base/sha1.hpp"

namespace scioto::apps {

enum class UtsTree { Geometric, Binomial };

/// Shape of the geometric tree's expected branching factor b(d) (the UTS
/// suite's -a parameter):
///   Linear:  b0 * (1 - d/gen_mx)          -- decays to 0 at gen_mx
///   Expdec:  b0 * (d+1)^(-ln(b0)/ln(gen_mx)) -- heavy near the root
///   Cyclic:  oscillates with depth, zero past gen_mx
///   Fixed:   b0 until gen_mx, then 0       -- near-balanced
enum class GeoShape { Linear, Expdec, Cyclic, Fixed };

struct UtsParams {
  UtsTree tree = UtsTree::Geometric;
  GeoShape shape = GeoShape::Linear;
  /// Root RNG seed (the canonical UTS trees use small integers).
  int seed = 19;
  /// Root branching factor.
  double b0 = 4.0;
  /// Geometric: depth at which the expected branching factor reaches 0.
  int gen_mx = 10;
  /// Binomial: non-root nodes have m children with probability q.
  double q = 0.124875;
  int m = 8;
};

/// A tree node: the SHA-1 digest that determines its subtree, plus depth.
struct UtsNode {
  std::array<std::uint8_t, Sha1::kDigestBytes> state;
  std::int32_t depth = 0;
};
static_assert(sizeof(UtsNode) == 24);

/// Traversal totals; exact equality across implementations is the
/// correctness criterion.
struct UtsCounts {
  std::uint64_t nodes = 0;
  std::uint64_t leaves = 0;
  std::int64_t max_depth = 0;

  UtsCounts& operator+=(const UtsCounts& o) {
    nodes += o.nodes;
    leaves += o.leaves;
    max_depth = max_depth > o.max_depth ? max_depth : o.max_depth;
    return *this;
  }
  bool operator==(const UtsCounts&) const = default;
};

/// Root node for a given seed.
UtsNode uts_root(const UtsParams& p);

/// Number of children of `node` under the tree parameters (deterministic).
int uts_num_children(const UtsNode& node, const UtsParams& p);

/// Child i's descriptor: SHA1(parent_state || i).
UtsNode uts_child(const UtsNode& parent, int i);

/// 31-bit uniform value extracted from a node's digest (UTS rng_rand).
std::uint32_t uts_rand(const UtsNode& node);

/// Sequential depth-first traversal (the reference implementation).
UtsCounts uts_sequential(const UtsParams& p);

/// Human-readable parameter summary for bench output.
std::string uts_describe(const UtsParams& p);

/// Canonical workloads used by tests and benches (sized for a simulated
/// cluster, not the paper's multi-hour runs).
UtsParams uts_tiny();    // ~600 nodes: unit tests
UtsParams uts_small();   // ~19k nodes: integration tests
UtsParams uts_bench();   // ~408k nodes: Figure 7/8 default
UtsParams uts_binomial_small();  // binomial variant for tests

}  // namespace scioto::apps
