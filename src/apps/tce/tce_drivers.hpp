// Parallel TCE drivers: block-sparse contraction under a Scioto task
// collection (tasks seeded at the C/A row owner) or the original
// global-counter scheme over the replicated triple list.
#pragma once

#include "apps/lb_scheme.hpp"
#include "apps/tce/tce.hpp"
#include "pgas/runtime.hpp"

namespace scioto::apps {

struct TceRunResult {
  /// Contraction-phase time (max over ranks) -- Figures 5/6's quantity.
  TimeNs elapsed = 0;
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;  // Scioto only
  /// Frobenius norm^2 of the result (cheap distributed checksum).
  double c_norm2 = 0;
  /// Max |C - reference| if verify was requested, else -1.
  double max_error = -1;
};

/// Collective. If `verify`, rank-local comparison against the dense
/// reference is performed (O(n^2) memory per rank; keep for tests).
TceRunResult tce_run(pgas::Runtime& rt, const TceSystem& sys, LbScheme lb,
                     bool verify = false, int chunk_size = 4);

}  // namespace scioto::apps
