#include "apps/tce/tce.hpp"

#include <cmath>

#include "base/error.hpp"
#include "base/linalg.hpp"
#include "base/rng.hpp"

namespace scioto::apps {

TceSystem TceSystem::build(const TceConfig& cfg) {
  SCIOTO_REQUIRE(cfg.nblocks >= 1 && cfg.min_block >= 1 &&
                     cfg.max_block >= cfg.min_block,
                 "invalid TCE block configuration");
  SCIOTO_REQUIRE(cfg.density > 0.0 && cfg.density <= 1.0,
                 "TCE density must be in (0, 1]");
  TceSystem sys;
  sys.cfg = cfg;
  sys.nb = cfg.nblocks;
  Xoshiro256 rng(derive_seed(cfg.seed, 0, /*stream=*/0x7CE));

  sys.bsize.resize(static_cast<std::size_t>(sys.nb));
  sys.boff.resize(static_cast<std::size_t>(sys.nb) + 1);
  std::int64_t off = 0;
  for (int b = 0; b < sys.nb; ++b) {
    sys.boff[static_cast<std::size_t>(b)] = off;
    sys.bsize[static_cast<std::size_t>(b)] =
        rng.uniform_int(cfg.min_block, cfg.max_block);
    off += sys.bsize[static_cast<std::size_t>(b)];
  }
  sys.boff[static_cast<std::size_t>(sys.nb)] = off;
  sys.n = off;

  auto mask = [&](std::vector<std::uint8_t>& m) {
    m.resize(static_cast<std::size_t>(sys.nb) *
             static_cast<std::size_t>(sys.nb));
    for (auto& bit : m) {
      bit = rng.bernoulli(cfg.density) ? 1 : 0;
    }
  };
  mask(sys.nza);
  mask(sys.nzb);
  return sys;
}

double TceSystem::a_elem(std::int64_t i, std::int64_t j) const {
  if (!a_nonzero(block_of(i), block_of(j))) {
    return 0.0;
  }
  return std::sin(0.013 * static_cast<double>(i + 1)) *
         std::cos(0.031 * static_cast<double>(j + 1));
}

double TceSystem::b_elem(std::int64_t i, std::int64_t j) const {
  if (!b_nonzero(block_of(i), block_of(j))) {
    return 0.0;
  }
  return std::cos(0.017 * static_cast<double>(i + 2)) *
         std::sin(0.023 * static_cast<double>(j + 2));
}

int TceSystem::block_of(std::int64_t r) const {
  SCIOTO_CHECK(r >= 0 && r < n);
  // Blocks are small in number; linear scan with early exit is fine and
  // obviously correct.
  for (int b = 0; b < nb; ++b) {
    if (r < boff[static_cast<std::size_t>(b) + 1]) {
      return b;
    }
  }
  return nb - 1;
}

std::vector<TceTriple> TceSystem::tasks() const {
  std::vector<TceTriple> out;
  for (int a = 0; a < nb; ++a) {
    for (int b = 0; b < nb; ++b) {
      for (int k = 0; k < nb; ++k) {
        if (a_nonzero(a, k) && b_nonzero(k, b)) {
          out.push_back(TceTriple{a, b, k});
        }
      }
    }
  }
  return out;
}

std::vector<double> TceSystem::reference() const {
  std::vector<double> a(static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(n));
  std::vector<double> b(a.size()), c(a.size());
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i * n + j)] = a_elem(i, j);
      b[static_cast<std::size_t>(i * n + j)] = b_elem(i, j);
    }
  }
  matmul(a.data(), b.data(), c.data(), n, n, n);
  return c;
}

}  // namespace scioto::apps
