// TCE: a block-sparse tensor-contraction kernel (paper §6.2).
//
// The paper's kernel is representative of the sparse tensor contractions
// the Tensor Contraction Engine generates for coupled-cluster methods:
// contraction over two block-sparse tensors stored in Global Arrays, with
// the result accumulated into a distributed output array, load-balanced in
// the original code by a shared global counter.
//
// We reproduce the structure as a block-sparse matrix contraction
//   C[a,b] += sum_k A[a,k] * B[k,b]
// over irregularly sized blocks with random sparsity masks: one task per
// surviving (a, b, k) triple. Tasks are much finer-grained than SCF's,
// which is why the counter scheme's serialization (every task draw is a
// round trip to one rank, serialized through its NIC) shows up so sharply
// in Figures 5 and 6. The Scioto variant seeds each task at the owner of
// block row `a`, making both the A read and the C accumulate local.
#pragma once

#include <cstdint>
#include <vector>

#include "base/types.hpp"

namespace scioto::apps {

struct TceConfig {
  /// Block grid is nblocks x nblocks.
  int nblocks = 14;
  int min_block = 4;
  int max_block = 12;
  /// Fraction of nonzero blocks in A and B.
  double density = 0.35;
  std::uint64_t seed = 777;
  /// Virtual cost per multiply-add (sim backend). Coupled-cluster block
  /// kernels perform tensor permutations and index arithmetic around each
  /// multiply; this constant restores that compute density so a typical
  /// block triple costs tens of microseconds (fine-grained, but not free).
  TimeNs flop_cost = ns(60);
};

struct TceTriple {
  std::int32_t a;
  std::int32_t b;
  std::int32_t k;
};

struct TceSystem {
  TceConfig cfg;
  int nb = 0;
  std::int64_t n = 0;  // total matrix dimension
  std::vector<std::int64_t> boff;   // nb+1
  std::vector<std::int64_t> bsize;  // nb
  std::vector<std::uint8_t> nza;    // nb*nb block masks
  std::vector<std::uint8_t> nzb;

  static TceSystem build(const TceConfig& cfg);

  bool a_nonzero(int i, int j) const {
    return nza[static_cast<std::size_t>(i) * static_cast<std::size_t>(nb) +
               static_cast<std::size_t>(j)] != 0;
  }
  bool b_nonzero(int i, int j) const {
    return nzb[static_cast<std::size_t>(i) * static_cast<std::size_t>(nb) +
               static_cast<std::size_t>(j)] != 0;
  }

  /// Deterministic element values (zero outside nonzero blocks).
  double a_elem(std::int64_t i, std::int64_t j) const;
  double b_elem(std::int64_t i, std::int64_t j) const;

  /// Block index owning global row/col r.
  int block_of(std::int64_t r) const;

  /// All (a, b, k) tasks with A[a,k] and B[k,b] both nonzero, in a fixed
  /// deterministic order (this is the replicated task list of the
  /// original scheme).
  std::vector<TceTriple> tasks() const;

  /// Virtual compute cost of one block triple.
  TimeNs triple_cost(const TceTriple& t) const {
    return static_cast<TimeNs>(cfg.flop_cost) *
           bsize[static_cast<std::size_t>(t.a)] *
           bsize[static_cast<std::size_t>(t.b)] *
           bsize[static_cast<std::size_t>(t.k)];
  }

  /// Dense reference result C = A * B (row-major n x n).
  std::vector<double> reference() const;
};

}  // namespace scioto::apps
