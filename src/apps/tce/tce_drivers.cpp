#include "apps/tce/tce_drivers.hpp"

#include <cmath>

#include "base/linalg.hpp"
#include "baselines/global_counter.hpp"
#include "ga/global_array.hpp"
#include "scioto/task_collection.hpp"

namespace scioto::apps {

namespace {

/// One (a, b, k) block contraction: A and C rows live in block row `a`'s
/// panel (local when the task runs at its seed rank), B is wherever block
/// row `k` lives.
void run_triple(pgas::Runtime& rt, const TceSystem& sys,
                ga::GlobalArray& a_ga, ga::GlobalArray& b_ga,
                ga::GlobalArray& c_ga, const TceTriple& t,
                std::vector<double>& abuf, std::vector<double>& bbuf,
                std::vector<double>& cbuf) {
  const std::int64_t na = sys.bsize[static_cast<std::size_t>(t.a)];
  const std::int64_t nb = sys.bsize[static_cast<std::size_t>(t.b)];
  const std::int64_t nk = sys.bsize[static_cast<std::size_t>(t.k)];
  const std::int64_t oa = sys.boff[static_cast<std::size_t>(t.a)];
  const std::int64_t ob = sys.boff[static_cast<std::size_t>(t.b)];
  const std::int64_t ok = sys.boff[static_cast<std::size_t>(t.k)];

  abuf.resize(static_cast<std::size_t>(na * nk));
  bbuf.resize(static_cast<std::size_t>(nk * nb));
  cbuf.resize(static_cast<std::size_t>(na * nb));
  a_ga.get(oa, oa + na, ok, ok + nk, abuf.data(), nk);
  b_ga.get(ok, ok + nk, ob, ob + nb, bbuf.data(), nb);
  matmul(abuf.data(), bbuf.data(), cbuf.data(), na, nk, nb);
  rt.charge(sys.triple_cost(t));
  c_ga.acc(oa, oa + na, ob, ob + nb, cbuf.data(), nb, 1.0);
}

}  // namespace

TceRunResult tce_run(pgas::Runtime& rt, const TceSystem& sys, LbScheme lb,
                     bool verify, int chunk_size) {
  TceRunResult res;
  // Block-aligned distribution: every tensor block row lives on exactly
  // one rank, so task placement at the C/A owner makes those accesses
  // genuinely local.
  std::vector<std::int64_t> split =
      ga::block_aligned_split(sys.boff, rt.nprocs());
  ga::GlobalArray a_ga(rt, sys.n, sys.n, split, "A");
  ga::GlobalArray b_ga(rt, sys.n, sys.n, split, "B");
  ga::GlobalArray c_ga(rt, sys.n, sys.n, split, "C");

  // Fill the local panels of the input tensors.
  for (std::int64_t i = a_ga.row_lo(rt.me()); i < a_ga.row_hi(rt.me());
       ++i) {
    double* arow = a_ga.local_panel() +
                   (i - a_ga.row_lo(rt.me())) * sys.n;
    double* brow = b_ga.local_panel() +
                   (i - b_ga.row_lo(rt.me())) * sys.n;
    for (std::int64_t j = 0; j < sys.n; ++j) {
      arow[j] = sys.a_elem(i, j);
      brow[j] = sys.b_elem(i, j);
    }
  }
  rt.barrier();

  const std::vector<TceTriple> triples = sys.tasks();
  std::vector<double> abuf, bbuf, cbuf;

  const TimeNs t0 = rt.now();
  if (lb == LbScheme::Scioto) {
    TcConfig tcc;
    tcc.max_task_body = sizeof(TceTriple);
    tcc.chunk_size = chunk_size;
    tcc.max_tasks_per_rank =
        static_cast<std::int64_t>(triples.size()) + 64;
    tcc.release_threshold = 1;  // expose all but the task in hand
    TaskCollection tc(rt, tcc);
    TaskHandle h = tc.register_callback([&](TaskContext& ctx) {
      run_triple(ctx.tc.runtime(), sys, a_ga, b_ga, c_ga,
                 ctx.body_as<TceTriple>(), abuf, bbuf, cbuf);
    });
    Task t = tc.task_create(sizeof(TceTriple), h);
    for (const TceTriple& tr : triples) {
      Rank owner = c_ga.owner_of_patch(
          sys.boff[static_cast<std::size_t>(tr.a)], 0);
      if (owner != rt.me()) continue;
      t.body_as<TceTriple>() = tr;
      tc.add_local(t);
      res.tasks++;
    }
    tc.process();
    res.steals = tc.stats_global().steals;
    res.tasks = rt.allreduce_sum(res.tasks);
    tc.destroy();
  } else {
    baselines::GlobalCounterScheduler counter(rt);
    auto st = counter.process(
        static_cast<std::int64_t>(triples.size()), [&](std::int64_t ticket) {
          run_triple(rt, sys, a_ga, b_ga, c_ga,
                     triples[static_cast<std::size_t>(ticket)], abuf, bbuf,
                     cbuf);
        });
    res.tasks =
        rt.allreduce_sum(static_cast<std::uint64_t>(st.tasks_executed));
    counter.destroy();
  }
  res.elapsed = rt.allreduce_max(rt.now() - t0);
  res.c_norm2 = c_ga.norm2();

  if (verify) {
    const std::vector<double> ref = sys.reference();
    // Each rank checks its own C panel against the dense reference.
    double max_err = 0;
    const double* panel = c_ga.local_panel();
    for (std::int64_t i = c_ga.row_lo(rt.me()); i < c_ga.row_hi(rt.me());
         ++i) {
      for (std::int64_t j = 0; j < sys.n; ++j) {
        double got = panel[(i - c_ga.row_lo(rt.me())) * sys.n + j];
        double want = ref[static_cast<std::size_t>(i * sys.n + j)];
        max_err = std::max(max_err, std::abs(got - want));
      }
    }
    res.max_error = rt.allreduce_max(max_err);
  }

  c_ga.destroy();
  b_ga.destroy();
  a_ga.destroy();
  return res;
}

}  // namespace scioto::apps
