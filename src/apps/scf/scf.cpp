#include "apps/scf/scf.hpp"

#include <cmath>

#include "base/error.hpp"
#include "base/linalg.hpp"
#include "base/rng.hpp"

namespace scioto::apps {

ScfSystem ScfSystem::build(const ScfConfig& cfg) {
  SCIOTO_REQUIRE(cfg.nshells >= 1 && cfg.min_shell >= 1 &&
                     cfg.max_shell >= cfg.min_shell,
                 "invalid SCF shell configuration");
  ScfSystem sys;
  sys.cfg = cfg;
  sys.nsh = cfg.nshells;
  Xoshiro256 rng(derive_seed(cfg.seed, 0, /*stream=*/0x5CF));

  sys.shell_size.resize(static_cast<std::size_t>(sys.nsh));
  sys.shell_off.resize(static_cast<std::size_t>(sys.nsh) + 1);
  sys.centers.resize(static_cast<std::size_t>(sys.nsh));
  std::int64_t off = 0;
  for (int s = 0; s < sys.nsh; ++s) {
    sys.shell_off[static_cast<std::size_t>(s)] = off;
    sys.shell_size[static_cast<std::size_t>(s)] =
        rng.uniform_int(cfg.min_shell, cfg.max_shell);
    off += sys.shell_size[static_cast<std::size_t>(s)];
    for (auto& c : sys.centers[static_cast<std::size_t>(s)]) {
      c = rng.uniform(0.0, cfg.box);
    }
  }
  sys.shell_off[static_cast<std::size_t>(sys.nsh)] = off;
  sys.nbf = off;
  sys.nocc = std::max<std::int64_t>(1, sys.nbf / 4);

  // Shell-pair magnitudes (the synthetic Schwarz factors).
  sys.schwarz.resize(static_cast<std::size_t>(sys.nsh) *
                     static_cast<std::size_t>(sys.nsh));
  for (int i = 0; i < sys.nsh; ++i) {
    for (int j = 0; j < sys.nsh; ++j) {
      const auto& ri = sys.centers[static_cast<std::size_t>(i)];
      const auto& rj = sys.centers[static_cast<std::size_t>(j)];
      double d2 = 0;
      for (int x = 0; x < 3; ++x) {
        d2 += (ri[x] - rj[x]) * (ri[x] - rj[x]);
      }
      sys.schwarz[static_cast<std::size_t>(i) *
                      static_cast<std::size_t>(sys.nsh) +
                  static_cast<std::size_t>(j)] = std::exp(-cfg.alpha * d2);
    }
  }

  // Replicated synthetic core Hamiltonian: diagonal dominance plus decaying
  // off-diagonal couplings scaled by the pair magnitudes.
  sys.hcore.assign(static_cast<std::size_t>(sys.nbf) *
                       static_cast<std::size_t>(sys.nbf),
                   0.0);
  for (int si = 0; si < sys.nsh; ++si) {
    for (int sj = 0; sj < sys.nsh; ++sj) {
      double k = sys.k_pair(si, sj);
      for (std::int64_t a = sys.shell_off[static_cast<std::size_t>(si)];
           a < sys.shell_off[static_cast<std::size_t>(si) + 1]; ++a) {
        for (std::int64_t b = sys.shell_off[static_cast<std::size_t>(sj)];
             b < sys.shell_off[static_cast<std::size_t>(sj) + 1]; ++b) {
          double v = -k / (1.0 + 0.3 * std::abs(static_cast<double>(a - b)));
          if (a == b) {
            v -= 2.0 + 0.01 * static_cast<double>(a);
          }
          sys.hcore[static_cast<std::size_t>(a * sys.nbf + b)] = v;
        }
      }
    }
  }
  sys.e_nuc = 0.5 * static_cast<double>(sys.nsh) * cfg.box;
  return sys;
}

std::int64_t ScfSystem::fock_block(
    int i, int j, const std::function<void(int, double*)>& get_d_rows,
    double* f_block) const {
  const std::int64_t ni = shell_size[static_cast<std::size_t>(i)];
  const std::int64_t nj = shell_size[static_cast<std::size_t>(j)];
  const std::int64_t oi = shell_off[static_cast<std::size_t>(i)];
  const std::int64_t oj = shell_off[static_cast<std::size_t>(j)];
  std::fill(f_block, f_block + ni * nj, 0.0);

  std::vector<double> drows;  // D(k-block, 0..nbf), fetched once per k
  std::int64_t quartets = 0;
  const double k_ij = k_pair(i, j);
  for (int k = 0; k < nsh; ++k) {
    const std::int64_t nk = shell_size[static_cast<std::size_t>(k)];
    const std::int64_t ok = shell_off[static_cast<std::size_t>(k)];
    bool have_rows = false;
    for (int l = 0; l < nsh; ++l) {
      // Screen on both the Coulomb (ij|kl) and exchange (ik|jl) factors.
      const double k_kl = k_pair(k, l);
      const double coul = k_ij * k_kl;
      const double exch = k_pair(i, k) * k_pair(j, l);
      if (coul < cfg.screen_tol && exch < cfg.screen_tol) {
        continue;
      }
      ++quartets;
      if (!have_rows) {
        drows.resize(static_cast<std::size_t>(nk * nbf));
        get_d_rows(k, drows.data());
        have_rows = true;
      }
      const std::int64_t nl = shell_size[static_cast<std::size_t>(l)];
      const std::int64_t ol = shell_off[static_cast<std::size_t>(l)];

      const double k_ik = k_pair(i, k);
      const double k_jl = k_pair(j, l);
      for (std::int64_t a = 0; a < ni; ++a) {
        for (std::int64_t b = 0; b < nj; ++b) {
          double acc = 0;
          for (std::int64_t c = 0; c < nk; ++c) {
            for (std::int64_t d = 0; d < nl; ++d) {
              double dv = drows[static_cast<std::size_t>(c * nbf + ol + d)];
              if (dv == 0.0) continue;
              double coulomb =
                  eri_elem(k_ij, k_kl, oi + a, oj + b, ok + c, ol + d);
              double exchange =
                  eri_elem(k_ik, k_jl, oi + a, ok + c, oj + b, ol + d);
              acc += dv * (2.0 * coulomb - exchange);
            }
          }
          f_block[a * nj + b] += acc;
        }
      }
    }
  }
  return quartets;
}

double ScfSystem::energy(const std::vector<double>& f,
                         const std::vector<double>& d) const {
  double e = 0;
  const std::size_t n2 = static_cast<std::size_t>(nbf) *
                         static_cast<std::size_t>(nbf);
  for (std::size_t idx = 0; idx < n2; ++idx) {
    e += d[idx] * (hcore[idx] + f[idx]);
  }
  return e_nuc + 0.5 * e;
}

void ScfSystem::update_density(const std::vector<double>& f,
                               std::vector<double>& d) const {
  std::vector<double> evals, evecs;
  jacobi_eigensymm(f, nbf, evals, evecs);
  // Aufbau: doubly occupy the nocc lowest orbitals, then damp.
  const double mix = cfg.mixing;
  for (std::int64_t i = 0; i < nbf; ++i) {
    for (std::int64_t j = 0; j < nbf; ++j) {
      double acc = 0;
      for (std::int64_t m = 0; m < nocc; ++m) {
        acc += evecs[static_cast<std::size_t>(i * nbf + m)] *
               evecs[static_cast<std::size_t>(j * nbf + m)];
      }
      double& dv = d[static_cast<std::size_t>(i * nbf + j)];
      dv = (1.0 - mix) * dv + mix * 2.0 * acc;
    }
  }
}

std::vector<double> ScfSystem::initial_density() const {
  std::vector<double> d(static_cast<std::size_t>(nbf) *
                            static_cast<std::size_t>(nbf),
                        0.0);
  double fill = 2.0 * static_cast<double>(nocc) / static_cast<double>(nbf);
  for (std::int64_t i = 0; i < nbf; ++i) {
    d[static_cast<std::size_t>(i * nbf + i)] = fill;
  }
  return d;
}

std::vector<double> scf_reference(const ScfSystem& sys) {
  std::vector<double> d = sys.initial_density();
  std::vector<double> f(static_cast<std::size_t>(sys.nbf) *
                        static_cast<std::size_t>(sys.nbf));
  std::vector<double> energies;
  std::vector<double> fblk;
  for (int iter = 0; iter < sys.cfg.iterations; ++iter) {
    std::copy(sys.hcore.begin(), sys.hcore.end(), f.begin());
    for (int i = 0; i < sys.nsh; ++i) {
      for (int j = 0; j < sys.nsh; ++j) {
        const std::int64_t ni = sys.shell_size[static_cast<std::size_t>(i)];
        const std::int64_t nj = sys.shell_size[static_cast<std::size_t>(j)];
        fblk.resize(static_cast<std::size_t>(ni * nj));
        sys.fock_block(
            i, j,
            [&](int k, double* buf) {
              const std::int64_t nk =
                  sys.shell_size[static_cast<std::size_t>(k)];
              const std::int64_t ok =
                  sys.shell_off[static_cast<std::size_t>(k)];
              std::copy(d.begin() + static_cast<std::ptrdiff_t>(ok * sys.nbf),
                        d.begin() + static_cast<std::ptrdiff_t>(
                                        (ok + nk) * sys.nbf),
                        buf);
            },
            fblk.data());
        const std::int64_t oi = sys.shell_off[static_cast<std::size_t>(i)];
        const std::int64_t oj = sys.shell_off[static_cast<std::size_t>(j)];
        for (std::int64_t a = 0; a < ni; ++a) {
          for (std::int64_t b = 0; b < nj; ++b) {
            f[static_cast<std::size_t>((oi + a) * sys.nbf + oj + b)] +=
                fblk[static_cast<std::size_t>(a * nj + b)];
          }
        }
      }
    }
    energies.push_back(sys.energy(f, d));
    sys.update_density(f, d);
  }
  return energies;
}

}  // namespace scioto::apps
