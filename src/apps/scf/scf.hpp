// Closed-shell Self-Consistent Field (SCF) application (paper §6.2).
//
// The paper extends a Global Arrays SCF code (Tilson et al.) whose Fock
// and density matrices are distributed and whose original load balancer is
// a replicated task list with a shared global counter. We reproduce that
// structure with a *synthetic* integral kernel (we have no integrals
// library):
//
//   * A "molecule" of nshells shells with irregular sizes and random 3-D
//     centers, deterministic in the seed. nbf = sum of shell sizes.
//   * A Gaussian-like pair magnitude K(i,j) = exp(-alpha |Ri - Rj|^2)
//     plays the role of the Schwarz factor: quartets with
//     K(i,j)*K(k,l) below screen_tol are skipped, which is what makes
//     task costs irregular, exactly the property the paper's load
//     balancing targets.
//   * Two-electron "integrals" are a cheap deterministic function of the
//     basis-function indices scaled by the shell pair magnitudes. The
//     numbers are not chemistry, but the compute/communication structure
//     (shell-pair tasks, screened quartet loops, accumulate into a
//     distributed Fock matrix, density from a replicated
//     eigendecomposition) is the real SCF skeleton.
//
// Each Fock task owns one (i, j) shell block of F and accumulates
//   F_ij += sum_kl D_kl * (2 (ij|kl) - (ik|jl))
// reading distributed D blocks as it goes. Because every task writes a
// distinct F block, the parallel Fock matrix is bit-identical to the
// sequential reference, so tests compare energies exactly.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "base/types.hpp"

namespace scioto::apps {

struct ScfConfig {
  int nshells = 20;
  int min_shell = 2;
  int max_shell = 8;
  /// Shell centers are uniform in [0, box]^3. Together with `alpha` this
  /// sets how much Schwarz screening fires: the defaults screen out the
  /// large majority of quartets, as in real molecules of this size.
  double box = 7.0;
  /// Pair-magnitude decay: K(i,j) = exp(-alpha * dist^2).
  double alpha = 0.35;
  /// Quartets with K_ij * K_kl below this are screened out.
  double screen_tol = 1e-4;
  /// SCF iterations to run.
  int iterations = 3;
  std::uint64_t seed = 1234;
  /// Virtual cost charged per quartet element update (sim backend). Real
  /// integral evaluation costs hundreds of flops per element, which our
  /// synthetic kernel does not perform; this constant restores the true
  /// compute-to-communication ratio.
  TimeNs flop_cost = ns(60);
  /// Density damping: D <- (1-mix)*D_old + mix*D_new. Plain SCF iteration
  /// oscillates; 0.5 damping is the textbook fix.
  double mixing = 0.5;
};

struct ScfSystem {
  ScfConfig cfg;
  int nsh = 0;
  std::int64_t nbf = 0;
  std::vector<std::int64_t> shell_off;   // nsh+1 prefix offsets
  std::vector<std::int64_t> shell_size;  // nsh
  std::vector<std::array<double, 3>> centers;
  /// Shell-pair magnitudes K(i,j), nsh x nsh.
  std::vector<double> schwarz;
  /// Replicated core Hamiltonian, nbf x nbf (as in the original code).
  std::vector<double> hcore;
  /// Synthetic nuclear repulsion constant.
  double e_nuc = 0;
  std::int64_t nocc = 1;

  static ScfSystem build(const ScfConfig& cfg);

  double k_pair(int i, int j) const {
    return schwarz[static_cast<std::size_t>(i) * static_cast<std::size_t>(nsh) +
                   static_cast<std::size_t>(j)];
  }
  /// Synthetic two-electron integral over basis-function indices, already
  /// scaled by the shell-pair magnitudes of (sa,sb) and (sc,sd).
  static double eri_elem(double k_ab, double k_cd, std::int64_t a,
                         std::int64_t b, std::int64_t c, std::int64_t d) {
    double g1 = 1.0 / (1.0 + 0.10 * static_cast<double>(a > b ? a - b : b - a));
    double g2 = 1.0 / (1.0 + 0.10 * static_cast<double>(c > d ? c - d : d - c));
    double x = static_cast<double>((a > c ? a - c : c - a) +
                                   (b > d ? b - d : d - b));
    return k_ab * k_cd * g1 * g2 / (1.0 + 0.05 * x);
  }

  /// Computes this task's Fock block: F_ij(block) for shell pair (i,j)
  /// given a reader for D row panels. `get_d_rows(k, buf)` must fill buf
  /// with the full shell row-block k of D (row-major size_k x nbf); it is
  /// invoked at most once per k, amortizing the one-sided transfer over
  /// all (k, l) quartets the way the production code fetches density
  /// patches. Returns the number of quartets that survived screening.
  std::int64_t fock_block(
      int i, int j, const std::function<void(int, double*)>& get_d_rows,
      double* f_block) const;

  /// Virtual compute cost of one (i,j,k,l) quartet.
  TimeNs quartet_cost(int i, int j, int k, int l) const {
    return static_cast<TimeNs>(cfg.flop_cost) * shell_size[i] *
           shell_size[j] * shell_size[k] * shell_size[l];
  }

  /// Closed-shell energy from replicated F, D: E = E_nuc + 0.5*sum D(H+F).
  double energy(const std::vector<double>& f,
                const std::vector<double>& d) const;

  /// Density update from F: replicated Jacobi eigendecomposition, aufbau
  /// fill of nocc orbitals, then damped mixing into the previous density:
  /// d <- (1-mixing)*d + mixing * 2 C_occ C_occ^T. Deterministic.
  void update_density(const std::vector<double>& f,
                      std::vector<double>& d) const;

  /// Initial density guess (diagonal).
  std::vector<double> initial_density() const;
};

/// Sequential reference SCF: returns the per-iteration energies.
std::vector<double> scf_reference(const ScfSystem& sys);

}  // namespace scioto::apps
