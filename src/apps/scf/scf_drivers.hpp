// Parallel SCF drivers: the Fock build runs either under a Scioto task
// collection (tasks seeded at the owner of their Fock block, high
// affinity) or under the original replicated-list + global-counter scheme.
// Everything else (density update, energy) is replicated and identical, so
// per-iteration energies must match the sequential reference bit-for-bit.
#pragma once

#include "apps/lb_scheme.hpp"
#include "apps/scf/scf.hpp"
#include "pgas/runtime.hpp"

namespace scioto::apps {

struct ScfRunResult {
  std::vector<double> energies;
  /// Sum over iterations of the parallel Fock-build time (max over ranks)
  /// -- the quantity Figures 5/6 plot.
  TimeNs fock_elapsed = 0;
  TimeNs total_elapsed = 0;
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;  // Scioto only
};

/// Collective.
ScfRunResult scf_run(pgas::Runtime& rt, const ScfSystem& sys, LbScheme lb,
                     int chunk_size = 2);

}  // namespace scioto::apps
