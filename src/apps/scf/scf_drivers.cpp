#include "apps/scf/scf_drivers.hpp"

#include <cstring>

#include "baselines/global_counter.hpp"
#include "ga/global_array.hpp"
#include "scioto/task_collection.hpp"

namespace scioto::apps {

namespace {

struct FockTaskBody {
  std::int32_t i;
  std::int32_t j;
};

/// Executes the (i, j) Fock task against the distributed matrices: reads D
/// blocks one-sided (charging quartet compute along the way) and
/// accumulates the finished block into F.
void run_fock_task(pgas::Runtime& rt, const ScfSystem& sys,
                   ga::GlobalArray& f_ga, ga::GlobalArray& d_ga, int i,
                   int j, std::vector<double>& fblk_scratch) {
  const std::int64_t ni = sys.shell_size[static_cast<std::size_t>(i)];
  const std::int64_t nj = sys.shell_size[static_cast<std::size_t>(j)];
  fblk_scratch.resize(static_cast<std::size_t>(ni * nj));
  sys.fock_block(
      i, j,
      [&](int k, double* buf) {
        const std::int64_t ok = sys.shell_off[static_cast<std::size_t>(k)];
        const std::int64_t nk = sys.shell_size[static_cast<std::size_t>(k)];
        d_ga.get(ok, ok + nk, 0, sys.nbf, buf, sys.nbf);
      },
      fblk_scratch.data());
  // Charge the quartet compute costs (the callback above only covers the
  // one-sided density reads).
  const double k_ij = sys.k_pair(i, j);
  for (int k = 0; k < sys.nsh; ++k) {
    for (int l = 0; l < sys.nsh; ++l) {
      const double coul = k_ij * sys.k_pair(k, l);
      const double exch = sys.k_pair(i, k) * sys.k_pair(j, l);
      if (coul < sys.cfg.screen_tol && exch < sys.cfg.screen_tol) {
        continue;
      }
      rt.charge(sys.quartet_cost(i, j, k, l));
    }
  }
  const std::int64_t oi = sys.shell_off[static_cast<std::size_t>(i)];
  const std::int64_t oj = sys.shell_off[static_cast<std::size_t>(j)];
  f_ga.acc(oi, oi + ni, oj, oj + nj, fblk_scratch.data(), nj, 1.0);
}

void fill_panel_from_replicated(ga::GlobalArray& ga,
                                const std::vector<double>& rep,
                                pgas::Runtime& rt) {
  const std::int64_t lo = ga.row_lo(rt.me());
  const std::int64_t hi = ga.row_hi(rt.me());
  double* panel = ga.local_panel();
  std::memcpy(panel,
              rep.data() + static_cast<std::size_t>(lo) *
                               static_cast<std::size_t>(ga.cols()),
              static_cast<std::size_t>(hi - lo) *
                  static_cast<std::size_t>(ga.cols()) * sizeof(double));
}

}  // namespace

ScfRunResult scf_run(pgas::Runtime& rt, const ScfSystem& sys, LbScheme lb,
                     int chunk_size) {
  ScfRunResult res;
  const std::int64_t nbf = sys.nbf;
  // Shell-aligned distribution: a shell's Fock/density rows live on one
  // rank, so owner-seeded tasks accumulate locally.
  std::vector<std::int64_t> split =
      ga::block_aligned_split(sys.shell_off, rt.nprocs());
  ga::GlobalArray f_ga(rt, nbf, nbf, split, "F");
  ga::GlobalArray d_ga(rt, nbf, nbf, split, "D");

  std::vector<double> drep = sys.initial_density();
  std::vector<double> frep(static_cast<std::size_t>(nbf) *
                           static_cast<std::size_t>(nbf));
  std::vector<double> fblk_scratch;

  rt.barrier();
  const TimeNs t_start = rt.now();

  // Shared setup for the Scioto variant: one collection reused per
  // iteration (tc_reset between phases, §3.1).
  TcConfig tcc;
  tcc.max_task_body = sizeof(FockTaskBody);
  tcc.chunk_size = chunk_size;
  tcc.max_tasks_per_rank =
      static_cast<std::int64_t>(sys.nsh) * sys.nsh + 64;
  // Fock tasks run for milliseconds: hoarding even a few in the private
  // portion leaves thieves idle at the endgame, so expose everything
  // beyond the one being prefetched.
  tcc.release_threshold = 1;
  std::unique_ptr<TaskCollection> tc;
  TaskHandle fock_handle = kInvalidHandle;
  if (lb == LbScheme::Scioto) {
    tc = std::make_unique<TaskCollection>(rt, tcc);
    fock_handle = tc->register_callback([&](TaskContext& ctx) {
      auto& body = ctx.body_as<FockTaskBody>();
      run_fock_task(ctx.tc.runtime(), sys, f_ga, d_ga, body.i, body.j,
                    fblk_scratch);
    });
  }
  std::unique_ptr<baselines::GlobalCounterScheduler> counter;
  if (lb == LbScheme::GlobalCounter) {
    counter = std::make_unique<baselines::GlobalCounterScheduler>(rt);
  }

  for (int iter = 0; iter < sys.cfg.iterations; ++iter) {
    fill_panel_from_replicated(d_ga, drep, rt);
    fill_panel_from_replicated(f_ga, sys.hcore, rt);
    rt.barrier();

    const TimeNs t0 = rt.now();
    if (lb == LbScheme::Scioto) {
      // Seed every (i,j) block task at the rank that owns the F block's
      // first row -- the accumulate then stays local (locality-aware
      // placement, §2).
      Task t = tc->task_create(sizeof(FockTaskBody), fock_handle);
      for (int i = 0; i < sys.nsh; ++i) {
        Rank owner = f_ga.owner_of_patch(
            sys.shell_off[static_cast<std::size_t>(i)], 0);
        if (owner != rt.me()) continue;
        for (int j = 0; j < sys.nsh; ++j) {
          t.body_as<FockTaskBody>() = {i, j};
          tc->add_local(t);
          res.tasks++;
        }
      }
      tc->process();
      res.steals += tc->stats_local().steals;
      tc->reset();
    } else {
      // Original scheme: replicated (i,j) list, one shared counter.
      const std::int64_t ntasks =
          static_cast<std::int64_t>(sys.nsh) * sys.nsh;
      auto st = counter->process(ntasks, [&](std::int64_t ticket) {
        int i = static_cast<int>(ticket / sys.nsh);
        int j = static_cast<int>(ticket % sys.nsh);
        run_fock_task(rt, sys, f_ga, d_ga, i, j, fblk_scratch);
      });
      res.tasks += static_cast<std::uint64_t>(st.tasks_executed);
    }
    res.fock_elapsed += rt.allreduce_max(rt.now() - t0);

    // Replicated post-processing, identical on every rank: gather F,
    // energy, new density.
    f_ga.get(0, nbf, 0, nbf, frep.data(), nbf);
    res.energies.push_back(sys.energy(frep, drep));
    sys.update_density(frep, drep);
    rt.barrier();
  }

  res.total_elapsed = rt.allreduce_max(rt.now() - t_start);
  res.tasks = rt.allreduce_sum(res.tasks);
  res.steals = rt.allreduce_sum(res.steals);
  if (tc) tc->destroy();
  if (counter) counter->destroy();
  d_ga.destroy();
  f_ga.destroy();
  return res;
}

}  // namespace scioto::apps
