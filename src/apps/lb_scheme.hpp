// Load-balancing scheme selector shared by the SCF and TCE drivers:
// Scioto task collections vs. the original replicated-list global counter.
#pragma once

namespace scioto::apps {

enum class LbScheme {
  Scioto,         // locality-aware task collection (this paper)
  GlobalCounter,  // replicated list + shared counter ("Original" in §6)
};

inline const char* lb_name(LbScheme s) {
  return s == LbScheme::Scioto ? "Scioto" : "Original";
}

}  // namespace scioto::apps
