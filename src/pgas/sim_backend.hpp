// Virtual-time backend: ranks are fibers under sim::Engine and every
// operation charges MachineModel costs. See backend.hpp for semantics.
#pragma once

#include <cmath>
#include <memory>

#include "pgas/backend.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"

namespace scioto::pgas {

class SimBackend : public Backend {
 public:
  SimBackend(int nranks, sim::MachineModel machine,
             std::size_t stack_bytes = 256 * 1024);

  /// Runs `body(rank)` SPMD across all ranks to completion.
  void run(const std::function<void(Rank)>& body);

  /// The engine is valid only during run(); exposed for benches that want
  /// the final virtual makespan.
  sim::Engine* engine() { return engine_.get(); }
  const sim::MachineModel& machine() const { return machine_; }

  // Backend interface.
  int nranks() const override { return nranks_; }
  Rank me() const override;
  bool concurrent() const override { return false; }
  bool simulated() const override { return true; }
  TimeNs now() override;
  void charge(TimeNs dt) override;
  void sync() override;
  void relax() override;
  void rma_charge(Rank target, std::size_t bytes) override;
  void rma_charge_oneway(Rank target, std::size_t bytes) override;
  void rmw_charge(Rank target) override;
  int lockset_create(int n) override;
  void lock(int base, int idx, Rank home) override;
  bool trylock(int base, int idx, Rank home) override;
  void unlock(int base, int idx, Rank home) override;
  void critical(const std::function<void()>& fn) override;
  void idle_wait() override;
  void notify(Rank r) override;
  TimeNs msg_send_time(Rank to, std::size_t bytes) override;
  void msg_recv_charge(std::size_t bytes) override;
  void barrier() override;
  void barrier_mpi() override;

 private:
  struct OpCosts {
    TimeNs latency;
    TimeNs service;
    TimeNs rmw_service;
    double bytes_per_ns;
  };
  OpCosts costs_for(Rank target) const;
  int barrier_stages() const;

  int nranks_;
  sim::MachineModel machine_;
  std::size_t stack_bytes_;
  std::unique_ptr<sim::Engine> engine_;
};

}  // namespace scioto::pgas
