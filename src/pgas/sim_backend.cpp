#include "pgas/sim_backend.hpp"

#include "base/error.hpp"
#include "fault/fault.hpp"
#include "trace/trace.hpp"

namespace scioto::pgas {

SimBackend::SimBackend(int nranks, sim::MachineModel machine,
                       std::size_t stack_bytes)
    : nranks_(nranks), machine_(std::move(machine)),
      stack_bytes_(stack_bytes) {}

void SimBackend::run(const std::function<void(Rank)>& body) {
  sim::Engine::Config cfg;
  cfg.nranks = nranks_;
  cfg.machine = machine_;
  cfg.stack_bytes = stack_bytes_;
  engine_ = std::make_unique<sim::Engine>(cfg, body);
  engine_->run();
}

Rank SimBackend::me() const { return engine_->current_rank(); }

TimeNs SimBackend::now() { return engine_->now(); }

void SimBackend::charge(TimeNs dt) { engine_->charge(dt); }

void SimBackend::sync() { engine_->sync(); }

void SimBackend::relax() {
  engine_->charge(machine_.poll);
  engine_->sync();
}

// Per-op constants depend on whether initiator and target share a node:
// intra-node "one-sided" access is a cache-coherent shared-memory
// operation, not a NIC traversal (MachineModel::cores_per_node).
SimBackend::OpCosts SimBackend::costs_for(Rank target) const {
  Rank me = engine_->current_rank();
  if (machine_.cores_per_node > 1 && machine_.same_node(me, target)) {
    return {machine_.intra_rma_latency, machine_.intra_rma_service,
            machine_.intra_rmw_service, machine_.intra_bytes_per_ns};
  }
  return {machine_.rma_latency, machine_.rma_service, machine_.rmw_service,
          machine_.bytes_per_ns};
}

void SimBackend::rma_charge(Rank target, std::size_t bytes) {
  engine_->sync();
  // Initiation latency, then occupancy (base service + wire time) on the
  // target's RMA queue, then completion notification back to us.
  OpCosts k = costs_for(target);
  TimeNs service = k.service + static_cast<TimeNs>(
                                   static_cast<double>(bytes) / k.bytes_per_ns);
  TimeNs done = engine_->rma_occupy(target, k.latency, service);
  engine_->advance_to(done + k.latency);
}

void SimBackend::rma_charge_oneway(Rank target, std::size_t bytes) {
  engine_->sync();
  OpCosts k = costs_for(target);
  TimeNs service = k.service + static_cast<TimeNs>(
                                   static_cast<double>(bytes) / k.bytes_per_ns);
  TimeNs done = engine_->rma_occupy(target, k.latency, service);
  // Fire-and-forget: the initiator only pays local injection overhead and
  // may proceed before the op lands at `done`.
  engine_->advance_unsynced(k.service);
  (void)done;
}

void SimBackend::rmw_charge(Rank target) {
  engine_->sync();
  OpCosts k = costs_for(target);
  TimeNs done = engine_->rma_occupy(target, k.latency, k.rmw_service);
  engine_->advance_to(done + k.latency);
}

int SimBackend::lockset_create(int n) {
  int base = -1;
  for (int i = 0; i < n; ++i) {
    int id = engine_->lock_create();
    if (i == 0) base = id;
  }
  return base;
}

void SimBackend::lock(int base, int idx, Rank home) {
  // A lock acquisition is an RMA round trip that may additionally queue
  // behind the current holder (Engine::lock_acquire hands the clock off).
  OpCosts k = costs_for(home);
  TimeNs done = engine_->rma_occupy(home, k.latency, k.service);
  engine_->advance_to(done);
  engine_->lock_acquire(base + idx);
  engine_->advance_unsynced(k.latency);
  // Injected lock-holder stall: the new holder hangs inside the critical
  // section, and everyone queued behind it inherits the delay through the
  // lock's clock handoff.
  if (fault::active()) {
    TimeNs stall = fault::stall_time(engine_->current_rank());
    if (stall > 0) {
      engine_->advance_unsynced(stall);
    }
  }
}

bool SimBackend::trylock(int base, int idx, Rank home) {
  OpCosts k = costs_for(home);
  TimeNs done = engine_->rma_occupy(home, k.latency, k.service);
  engine_->advance_to(done);
  bool ok = engine_->lock_try(base + idx);
  engine_->advance_unsynced(k.latency);
  return ok;
}

void SimBackend::unlock(int base, int idx, Rank home) {
  // Unlock is a one-way notification: pay injection + delivery, release at
  // the delivery time so a queued competitor cannot acquire "too early".
  OpCosts k = costs_for(home);
  TimeNs done = engine_->rma_occupy(home, k.latency, k.service);
  engine_->advance_to(done);
  engine_->lock_release(base + idx);
}

void SimBackend::critical(const std::function<void()>& fn) { fn(); }

void SimBackend::idle_wait() { engine_->idle_wait(); }

void SimBackend::notify(Rank r) {
  engine_->notify(r, engine_->now() + machine_.msg_latency);
}

TimeNs SimBackend::msg_send_time(Rank to, std::size_t bytes) {
  engine_->charge(machine_.msg_overhead);
  (void)to;
  return engine_->now() + machine_.msg_latency + machine_.transfer_time(bytes);
}

void SimBackend::msg_recv_charge(std::size_t bytes) {
  engine_->charge(machine_.msg_overhead);
  (void)bytes;
}

int SimBackend::barrier_stages() const {
  int stages = 0;
  int n = 1;
  while (n < nranks_) {
    n *= 2;
    ++stages;
  }
  return std::max(stages, 1);
}

void SimBackend::barrier() {
  SCIOTO_TRACE_EVENT(engine_->current_rank(), trace::Ev::Barrier, 0, 0, 0);
  engine_->barrier(barrier_stages() * machine_.barrier_stage_armci);
}

void SimBackend::barrier_mpi() {
  engine_->barrier(barrier_stages() * machine_.barrier_stage_mpi);
}

}  // namespace scioto::pgas
