// Real-concurrency backend: each rank is a std::thread, costs are no-ops,
// synchronization uses OS primitives. See backend.hpp for semantics.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "pgas/backend.hpp"

namespace scioto::pgas {

class ThreadBackend : public Backend {
 public:
  explicit ThreadBackend(int nranks);

  /// Spawns one thread per rank running `body(rank)` and joins them.
  /// Exceptions escaping any rank are rethrown (first one wins).
  void run(const std::function<void(Rank)>& body);

  // Backend interface.
  int nranks() const override { return nranks_; }
  Rank me() const override;
  bool concurrent() const override { return true; }
  bool simulated() const override { return false; }
  TimeNs now() override;
  void charge(TimeNs dt) override {(void)dt;}
  void sync() override {}
  void relax() override { std::this_thread::yield(); }
  void rma_charge(Rank, std::size_t) override {}
  void rma_charge_oneway(Rank, std::size_t) override {}
  void rmw_charge(Rank) override {}
  int lockset_create(int n) override;
  void lock(int base, int idx, Rank home) override;
  bool trylock(int base, int idx, Rank home) override;
  void unlock(int base, int idx, Rank home) override;
  void critical(const std::function<void()>& fn) override;
  void idle_wait() override;
  void notify(Rank r) override;
  TimeNs msg_send_time(Rank to, std::size_t bytes) override;
  void msg_recv_charge(std::size_t bytes) override {(void)bytes;}
  void barrier() override;
  void barrier_mpi() override { barrier(); }

 private:
  struct EventCount {
    std::mutex m;
    std::condition_variable cv;
    bool pending = false;
  };

  int nranks_;
  std::chrono::steady_clock::time_point start_;

  // Locks: deque keeps element addresses stable across growth.
  std::mutex locks_growth_mutex_;
  std::deque<std::mutex> locks_;

  std::mutex critical_mutex_;

  std::vector<std::unique_ptr<EventCount>> events_;

  // Central sense-reversing barrier.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;
};

}  // namespace scioto::pgas
