// The PGAS runtime: ARMCI-flavored one-sided communication plus a small
// two-sided message layer, implemented once over the Backend abstraction.
//
// Semantics follow ARMCI/MPI-2 style one-sided models:
//   * Memory is exposed in collectively allocated *segments*; each rank
//     owns an equal-sized patch. Any rank may get/put/accumulate into any
//     patch; only `acc` and the RMW ops are atomic, plain get/put require
//     the application to synchronize (exactly as on real RDMA networks).
//   * Remote mutexes (LockSet: one lock homed on each rank) provide the
//     synchronization Scioto's shared queue portions need.
//   * Collectives: barrier, broadcast, allreduce.
//   * send/recv/iprobe mailboxes back the paper's two-sided MPI baseline.
//
// One Runtime instance is shared by all ranks of a run (single address
// space); its methods are called concurrently from rank context.
#pragma once

#include <atomic>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "base/error.hpp"
#include "base/types.hpp"
#include "fault/fault.hpp"
#include "pgas/backend.hpp"
#include "sim/machine.hpp"

namespace scioto::pgas {

using SegId = int;
inline constexpr Rank kAnyRank = -1;
inline constexpr int kAnyTag = -1;

/// A collective set of remote mutexes, one homed on each rank.
struct LockSet {
  int base = -1;
};

struct MsgInfo {
  Rank from = kNoRank;
  int tag = 0;
  std::size_t bytes = 0;
};

/// Result of a failure-aware one-sided op (the *_checked variants).
enum class OpStatus {
  Ok,          // applied
  Dropped,     // a fault rule dropped it; no memory effect -- retry
  TargetDead,  // applied (recoverable-segment model), but the target rank
               // is dead; the caller should reroute future traffic
};

class Runtime {
 public:
  Runtime(Backend& backend, std::uint64_t seed, sim::MachineModel machine);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // ---- Identity & time ----
  int nprocs() const { return backend_.nranks(); }
  Rank me() const { return backend_.me(); }
  TimeNs now() { return backend_.now(); }
  std::uint64_t seed() const { return seed_; }
  bool simulated() const { return backend_.simulated(); }
  /// Machine model constants (meaningful under sim; defaults otherwise).
  const sim::MachineModel& machine() const { return machine_; }
  Backend& backend() { return backend_; }

  /// Charges local compute cost (scaled by this rank's CPU speed in sim).
  void charge(TimeNs dt) { backend_.charge(dt); }
  /// Charges the cost of one local atomic publish with fences -- the
  /// owner's lock-free split-pointer update. Modelled as a local queue-op
  /// cost (no round trip, no lock service slot).
  void atomic_publish_charge();
  /// Polite progress step for spin loops.
  void relax() { backend_.relax(); }

  // ---- Shared segments ----
  /// Collective. Allocates `bytes_per_rank` of shared space on every rank;
  /// all ranks receive the same id.
  SegId seg_alloc(std::size_t bytes_per_rank);
  /// Collective. Releases the segment's memory (the id is not reused).
  void seg_free(SegId id);
  /// Direct pointer to rank r's patch (owner-local access is free; remote
  /// access through this pointer must be paired with rma_charge for
  /// honest accounting -- prefer get/put).
  std::byte* seg_ptr(SegId id, Rank r);
  std::size_t seg_bytes(SegId id) const;

  // ---- One-sided data movement ----
  void get(SegId id, Rank target, std::size_t offset, void* dst,
           std::size_t n);
  void put(SegId id, Rank target, std::size_t offset, const void* src,
           std::size_t n);
  /// Strided one-sided get (ARMCI_GetS): copies `nrows` runs of
  /// `row_bytes` from the target patch, source rows `src_stride` apart,
  /// into dst rows `dst_stride` apart. One cost-model charge covers the
  /// whole transfer, as ARMCI's strided descriptors do.
  void get_strided(SegId id, Rank target, std::size_t offset,
                   std::size_t src_stride, std::size_t nrows,
                   std::size_t row_bytes, void* dst, std::size_t dst_stride);
  /// Strided one-sided put (ARMCI_PutS).
  void put_strided(SegId id, Rank target, std::size_t offset,
                   std::size_t dst_stride, std::size_t nrows,
                   std::size_t row_bytes, const void* src,
                   std::size_t src_stride);

  // ---- Failure-aware one-sided ops ----
  //
  // Same data movement as get/put, but consulting the fault session: an
  // armed Drop rule makes the op report Dropped (wire time is still
  // charged, no memory effect); Delay charges extra latency; Dup applies
  // and charges twice. With no fault session active these reduce to the
  // plain ops returning Ok. Available on both backends.
  OpStatus get_checked(SegId id, Rank target, std::size_t offset, void* dst,
                       std::size_t n);
  OpStatus put_checked(SegId id, Rank target, std::size_t offset,
                       const void* src, std::size_t n);
  /// Retries a Dropped op with deterministic jittered exponential backoff
  /// (fault::backoff) up to fault::policy().max_attempts attempts. The
  /// attempt count actually used is reported via `attempts` when non-null.
  OpStatus get_with_retry(SegId id, Rank target, std::size_t offset,
                          void* dst, std::size_t n, int* attempts = nullptr);
  OpStatus put_with_retry(SegId id, Rank target, std::size_t offset,
                          const void* src, std::size_t n,
                          int* attempts = nullptr);

  /// Failure-aware atomic probe read of two adjacent u64 slots (the
  /// heartbeat counter + membership-epoch pair the failure detector
  /// publishes). Unlike get_checked's memcpy this loads each word with
  /// acquire semantics, so concurrent owner-side publishes are race-free
  /// on the threads backend. Same fault consultation as get_checked.
  OpStatus probe_pair_checked(SegId id, Rank target, std::size_t offset,
                              std::uint64_t* w0, std::uint64_t* w1);

  /// Failure-aware atomic read of one u64 control word, retried past
  /// drops like get_with_retry (fault::policy().max_attempts). Unlike the
  /// memcpy gets this loads through an acquire atomic_ref, so it is
  /// race-free against atomic writers -- token mailboxes, fetch_add
  /// counters -- on the threads backend.
  OpStatus get_u64_with_retry(SegId id, Rank target, std::size_t offset,
                              std::uint64_t* out, int* attempts = nullptr);

  /// Reliable one-sided control-word put (termination tokens, votes,
  /// dirty marks). Consults the fault machinery as a Token op and retries
  /// dropped sends with jittered exponential backoff WITHOUT an attempt
  /// bound: a silently lost token wedges the protocol, and fault plans
  /// carry finite drop budgets, so the loop terminates. `width` must be 4
  /// or 8 and the word width-aligned; the store is an atomic release
  /// through atomic_ref, race-free against the owner's polling loads.
  /// Returns TargetDead -- after storing; the mailbox stays addressable --
  /// when the membership view says the target is gone. `attempts` reports
  /// the number of retries (dropped sends) performed.
  OpStatus put_word_reliable(SegId id, Rank target, std::size_t offset,
                             std::uint64_t value, std::size_t width,
                             int* attempts = nullptr);

  /// Atomic accumulate: patch[offset ..] += alpha * src[0..n). Atomic with
  /// respect to other acc/RMW calls (not plain put).
  void acc(SegId id, Rank target, std::size_t offset, const double* src,
           std::size_t n, double alpha);
  /// Atomic fetch-and-add on an 8-byte-aligned int64 slot.
  std::int64_t fetch_add(SegId id, Rank target, std::size_t offset,
                         std::int64_t delta);
  /// Atomic swap on an 8-byte-aligned int64 slot.
  std::int64_t swap(SegId id, Rank target, std::size_t offset,
                    std::int64_t value);
  /// Atomic compare-and-swap on an 8-byte-aligned int64 slot: installs
  /// `desired` iff the slot holds `expected`. Returns the value observed
  /// before the operation (== expected on success). Costs one RMW like
  /// fetch_add/swap; the DAG engine's conflict-group locks are built on it.
  std::int64_t compare_swap(SegId id, Rank target, std::size_t offset,
                            std::int64_t expected, std::int64_t desired);
  /// Cost accounting for callers that use seg_ptr directly for fine-grained
  /// remote atomics (the Scioto queue does); pairs a charge with a
  /// scheduler sync so simulated ordering stays honest.
  void rma_charge(Rank target, std::size_t bytes) {
    backend_.rma_charge(target, bytes);
  }
  /// Accounting for a strided/batched one-sided transfer: remote targets
  /// pay the full RMA cost, local transfers only a memory-copy cost
  /// (~8 bytes/ns).
  void rma_charge_span(Rank target, std::size_t bytes) {
    if (target == me()) {
      backend_.charge(static_cast<TimeNs>(bytes / 8) + 60);
    } else {
      backend_.rma_charge(target, bytes);
    }
  }
  /// Blocks until previously issued one-sided ops to `target` complete
  /// (ARMCI_Fence analog).
  void fence(Rank target);

  // ---- Remote mutexes ----
  /// Collective: creates one lock per rank.
  LockSet lockset_create();
  void lock(const LockSet& ls, Rank r) { backend_.lock(ls.base, r, r); }
  bool trylock(const LockSet& ls, Rank r) {
    return backend_.trylock(ls.base, r, r);
  }
  void unlock(const LockSet& ls, Rank r) { backend_.unlock(ls.base, r, r); }

  // ---- Collectives ----
  void barrier() { backend_.barrier(); }
  void barrier_mpi() { backend_.barrier_mpi(); }

  template <class T>
  T broadcast(const T& value, Rank root) {
    static_assert(std::is_trivially_copyable_v<T>);
    SCIOTO_REQUIRE(sizeof(T) <= kCollSlotBytes, "broadcast value too large");
    if (me() == root) {
      std::memcpy(coll_slot(root), &value, sizeof(T));
    }
    barrier();
    T out;
    std::memcpy(&out, coll_slot(root), sizeof(T));
    barrier();
    return out;
  }

  template <class T, class F>
  T allreduce(const T& value, F combine) {
    static_assert(std::is_trivially_copyable_v<T>);
    SCIOTO_REQUIRE(sizeof(T) <= kCollSlotBytes, "allreduce value too large");
    std::memcpy(coll_slot(me()), &value, sizeof(T));
    barrier();
    // Dead ranks never reached this collective, so their slots hold stale
    // bytes from an earlier reduction: skip them. Ranks cannot die inside
    // the collective (no safepoints here), so all survivors skip the same
    // set and still agree on the result.
    T acc{};
    bool have = false;
    for (Rank r = 0; r < nprocs(); ++r) {
      if (!fault::alive(r)) continue;
      T v;
      std::memcpy(&v, coll_slot(r), sizeof(T));
      acc = have ? combine(acc, v) : v;
      have = true;
    }
    barrier();
    return acc;
  }

  template <class T>
  T allreduce_sum(const T& value) {
    return allreduce(value, [](T a, T b) { return a + b; });
  }
  template <class T>
  T allreduce_max(const T& value) {
    return allreduce(value, [](T a, T b) { return a > b ? a : b; });
  }
  template <class T>
  T allreduce_min(const T& value) {
    return allreduce(value, [](T a, T b) { return a < b ? a : b; });
  }

  // ---- Two-sided messages (MPI-1 style subset) ----
  void send(Rank to, int tag, const void* data, std::size_t n);
  /// Non-blocking probe; fills `info` if a matching message has arrived.
  bool iprobe(Rank from, int tag, MsgInfo* info);
  /// Non-blocking receive.
  bool try_recv(Rank from, int tag, void* buf, std::size_t cap,
                MsgInfo* info);
  /// Blocking receive.
  MsgInfo recv(Rank from, int tag, void* buf, std::size_t cap);

 private:
  static constexpr std::size_t kCollSlotBytes = 256;
  static constexpr std::size_t kMaxSegments = 4096;

  struct Segment {
    std::unique_ptr<std::byte[]> mem;
    std::size_t per_rank = 0;
    std::size_t stride = 0;
    bool live = false;
  };

  struct PendingMsg {
    Rank from;
    int tag;
    TimeNs arrival;
    std::vector<std::byte> data;
  };

  struct Inbox {
    std::deque<PendingMsg> q;
  };

  std::byte* coll_slot(Rank r) {
    return coll_space_.get() + static_cast<std::size_t>(r) * kCollSlotBytes;
  }
  bool match(const PendingMsg& m, Rank from, int tag) const {
    return (from == kAnyRank || m.from == from) &&
           (tag == kAnyTag || m.tag == tag);
  }

  Backend& backend_;
  std::uint64_t seed_;
  sim::MachineModel machine_;

  std::vector<Segment> segments_;  // pre-sized; only rank 0 appends between
  std::atomic<int> nsegments_{0};  // barriers, so no growth races
  std::unique_ptr<std::byte[]> coll_space_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
};

enum class BackendKind { Sim, Threads };

struct Config {
  int nranks = 4;
  BackendKind backend = BackendKind::Sim;
  sim::MachineModel machine = sim::test_machine();
  std::size_t stack_bytes = 256 * 1024;
  std::uint64_t seed = 42;
};

struct RunResult {
  /// Virtual makespan under sim (max rank clock); wall time under threads.
  TimeNs elapsed = 0;
};

/// Launches `body` SPMD across cfg.nranks ranks on the chosen backend and
/// runs to completion. Exceptions thrown by any rank are rethrown here.
RunResult run_spmd(const Config& cfg,
                   const std::function<void(Runtime&)>& body);

}  // namespace scioto::pgas
