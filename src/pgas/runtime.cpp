#include "pgas/runtime.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/log.hpp"
#include "control/control.hpp"
#include "detect/membership.hpp"
#include "elastic/elastic.hpp"
#include "metrics/metrics.hpp"
#include "metrics/monitor.hpp"
#include "pgas/sim_backend.hpp"
#include "pgas/thread_backend.hpp"
#include "trace/export.hpp"
#include "trace/lineage.hpp"
#include "trace/trace.hpp"

namespace scioto::pgas {

Runtime::Runtime(Backend& backend, std::uint64_t seed,
                 sim::MachineModel machine)
    : backend_(backend), seed_(seed), machine_(std::move(machine)) {
  segments_.resize(kMaxSegments);
  coll_space_ = std::make_unique<std::byte[]>(
      static_cast<std::size_t>(backend_.nranks()) * kCollSlotBytes);
  inboxes_.reserve(static_cast<std::size_t>(backend_.nranks()));
  for (int i = 0; i < backend_.nranks(); ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

// ---- Segments ----

SegId Runtime::seg_alloc(std::size_t bytes_per_rank) {
  barrier();
  if (me() == 0) {
    int id = nsegments_.load(std::memory_order_relaxed);
    SCIOTO_REQUIRE(static_cast<std::size_t>(id) < kMaxSegments,
                   "segment table exhausted");
    Segment& s = segments_[static_cast<std::size_t>(id)];
    s.per_rank = bytes_per_rank;
    s.stride = align_up(std::max<std::size_t>(bytes_per_rank, 1), 64);
    s.mem = std::make_unique<std::byte[]>(
        s.stride * static_cast<std::size_t>(nprocs()));
    std::memset(s.mem.get(), 0,
                s.stride * static_cast<std::size_t>(nprocs()));
    s.live = true;
    nsegments_.store(id + 1, std::memory_order_release);
  }
  barrier();
  return nsegments_.load(std::memory_order_acquire) - 1;
}

void Runtime::seg_free(SegId id) {
  barrier();
  if (me() == 0) {
    Segment& s = segments_[static_cast<std::size_t>(id)];
    SCIOTO_REQUIRE(s.live, "seg_free of non-live segment " << id);
    s.mem.reset();
    s.live = false;
  }
  barrier();
}

std::byte* Runtime::seg_ptr(SegId id, Rank r) {
  Segment& s = segments_[static_cast<std::size_t>(id)];
  SCIOTO_CHECK_MSG(s.live, "access to freed segment " << id);
  return s.mem.get() + static_cast<std::size_t>(r) * s.stride;
}

std::size_t Runtime::seg_bytes(SegId id) const {
  return segments_[static_cast<std::size_t>(id)].per_rank;
}

// ---- One-sided data movement ----

void Runtime::get(SegId id, Rank target, std::size_t offset, void* dst,
                  std::size_t n) {
  SCIOTO_CHECK(offset + n <= seg_bytes(id));
  if (target != me()) {
    backend_.rma_charge(target, n);
    SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasGet, target, 0, n);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasGets, 1);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasGetBytes, n);
  }
  std::memcpy(dst, seg_ptr(id, target) + offset, n);
}

void Runtime::put(SegId id, Rank target, std::size_t offset, const void* src,
                  std::size_t n) {
  SCIOTO_CHECK(offset + n <= seg_bytes(id));
  if (target != me()) {
    backend_.rma_charge(target, n);
    SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasPut, target, 0, n);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasPuts, 1);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasPutBytes, n);
  }
  std::memcpy(seg_ptr(id, target) + offset, src, n);
}

void Runtime::get_strided(SegId id, Rank target, std::size_t offset,
                          std::size_t src_stride, std::size_t nrows,
                          std::size_t row_bytes, void* dst,
                          std::size_t dst_stride) {
  SCIOTO_REQUIRE(dst_stride >= row_bytes && src_stride >= row_bytes,
                 "strided get: strides must cover the row");
  if (nrows == 0) return;
  SCIOTO_CHECK(offset + (nrows - 1) * src_stride + row_bytes <=
               seg_bytes(id));
  rma_charge_span(target, nrows * row_bytes);
  if (target != me()) {
    SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasGet, target, 0,
                       nrows * row_bytes);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasGets, 1);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasGetBytes, nrows * row_bytes);
  }
  const std::byte* base = seg_ptr(id, target) + offset;
  auto* out = static_cast<std::byte*>(dst);
  for (std::size_t r = 0; r < nrows; ++r) {
    std::memcpy(out + r * dst_stride, base + r * src_stride, row_bytes);
  }
}

void Runtime::put_strided(SegId id, Rank target, std::size_t offset,
                          std::size_t dst_stride, std::size_t nrows,
                          std::size_t row_bytes, const void* src,
                          std::size_t src_stride) {
  SCIOTO_REQUIRE(dst_stride >= row_bytes && src_stride >= row_bytes,
                 "strided put: strides must cover the row");
  if (nrows == 0) return;
  SCIOTO_CHECK(offset + (nrows - 1) * dst_stride + row_bytes <=
               seg_bytes(id));
  rma_charge_span(target, nrows * row_bytes);
  if (target != me()) {
    SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasPut, target, 0,
                       nrows * row_bytes);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasPuts, 1);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasPutBytes, nrows * row_bytes);
  }
  std::byte* base = seg_ptr(id, target) + offset;
  const auto* in = static_cast<const std::byte*>(src);
  for (std::size_t r = 0; r < nrows; ++r) {
    std::memcpy(base + r * dst_stride, in + r * src_stride, row_bytes);
  }
}

namespace {

/// Shared fault-consultation wrapper for the *_checked ops: charges wire
/// time (also for drops -- the packet left the NIC either way), applies the
/// memcpy via `apply` unless dropped, twice on Dup.
template <class Apply>
OpStatus checked_one_sided(Backend& backend, fault::OpKind op, Rank me,
                           Rank target, std::size_t n, Apply&& apply) {
  if (target == me) {
    apply();
    return OpStatus::Ok;
  }
  fault::OpFate f = fault::one_sided_fate(op, me, target);
  if (f.fate == fault::Fate::Delay && f.delay > 0) {
    backend.charge(f.delay);
  }
  backend.rma_charge(target, n);
  if (f.fate == fault::Fate::Fail) {
    return OpStatus::Dropped;
  }
  apply();
  if (f.fate == fault::Fate::Dup) {
    backend.rma_charge(target, n);
    apply();
  }
  // Liveness through the detector's membership view: with the detector
  // armed, a dead target reads Ok until some prober confirms the death --
  // no survivor is omniscient. Disarmed, this falls back to the oracle.
  return detect::alive(target) ? OpStatus::Ok : OpStatus::TargetDead;
}

}  // namespace

OpStatus Runtime::get_checked(SegId id, Rank target, std::size_t offset,
                              void* dst, std::size_t n) {
  SCIOTO_CHECK(offset + n <= seg_bytes(id));
  OpStatus st = checked_one_sided(
      backend_, fault::OpKind::Get, me(), target, n,
      [&] { std::memcpy(dst, seg_ptr(id, target) + offset, n); });
  if (target != me() && st != OpStatus::Dropped) {
    SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasGet, target, 0, n);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasGets, 1);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasGetBytes, n);
  }
  return st;
}

OpStatus Runtime::put_checked(SegId id, Rank target, std::size_t offset,
                              const void* src, std::size_t n) {
  SCIOTO_CHECK(offset + n <= seg_bytes(id));
  OpStatus st = checked_one_sided(
      backend_, fault::OpKind::Put, me(), target, n,
      [&] { std::memcpy(seg_ptr(id, target) + offset, src, n); });
  if (target != me() && st != OpStatus::Dropped) {
    SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasPut, target, 0, n);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasPuts, 1);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasPutBytes, n);
  }
  return st;
}

OpStatus Runtime::get_with_retry(SegId id, Rank target, std::size_t offset,
                                 void* dst, std::size_t n, int* attempts) {
  fault::RetryPolicy p = fault::policy();
  OpStatus st = OpStatus::Dropped;
  int a = 0;
  for (; a < p.max_attempts; ++a) {
    if (a > 0) {
      charge(fault::backoff(me(), a - 1));
      relax();
    }
    st = get_checked(id, target, offset, dst, n);
    if (st != OpStatus::Dropped) break;
  }
  if (a > 0) {
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::OpRetries,
                      std::min(a, p.max_attempts - 1));
  }
  if (attempts != nullptr) {
    *attempts = std::min(a + 1, p.max_attempts);
  }
  return st;
}

OpStatus Runtime::put_with_retry(SegId id, Rank target, std::size_t offset,
                                 const void* src, std::size_t n,
                                 int* attempts) {
  fault::RetryPolicy p = fault::policy();
  OpStatus st = OpStatus::Dropped;
  int a = 0;
  for (; a < p.max_attempts; ++a) {
    if (a > 0) {
      charge(fault::backoff(me(), a - 1));
      relax();
    }
    st = put_checked(id, target, offset, src, n);
    if (st != OpStatus::Dropped) break;
  }
  if (a > 0) {
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::OpRetries,
                      std::min(a, p.max_attempts - 1));
  }
  if (attempts != nullptr) {
    *attempts = std::min(a + 1, p.max_attempts);
  }
  return st;
}

OpStatus Runtime::probe_pair_checked(SegId id, Rank target,
                                     std::size_t offset, std::uint64_t* w0,
                                     std::uint64_t* w1) {
  SCIOTO_CHECK(offset % alignof(std::uint64_t) == 0);
  SCIOTO_CHECK(offset + 2 * sizeof(std::uint64_t) <= seg_bytes(id));
  auto* p = reinterpret_cast<std::uint64_t*>(seg_ptr(id, target) + offset);
  OpStatus st = checked_one_sided(
      backend_, fault::OpKind::Get, me(), target, 2 * sizeof(std::uint64_t),
      [&] {
        *w0 = std::atomic_ref<std::uint64_t>(p[0]).load(
            std::memory_order_acquire);
        *w1 = std::atomic_ref<std::uint64_t>(p[1]).load(
            std::memory_order_acquire);
      });
  if (target != me() && st != OpStatus::Dropped) {
    SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasGet, target, 0,
                       2 * sizeof(std::uint64_t));
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasGets, 1);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasGetBytes,
                      2 * sizeof(std::uint64_t));
  }
  return st;
}

OpStatus Runtime::get_u64_with_retry(SegId id, Rank target,
                                     std::size_t offset, std::uint64_t* out,
                                     int* attempts) {
  SCIOTO_CHECK(offset % alignof(std::uint64_t) == 0);
  SCIOTO_CHECK(offset + sizeof(std::uint64_t) <= seg_bytes(id));
  auto* p = reinterpret_cast<std::uint64_t*>(seg_ptr(id, target) + offset);
  fault::RetryPolicy pol = fault::policy();
  OpStatus st = OpStatus::Dropped;
  int a = 0;
  for (; a < pol.max_attempts; ++a) {
    if (a > 0) {
      charge(fault::backoff(me(), a - 1));
      relax();
    }
    st = checked_one_sided(backend_, fault::OpKind::Get, me(), target,
                           sizeof(std::uint64_t), [&] {
                             *out = std::atomic_ref<std::uint64_t>(*p).load(
                                 std::memory_order_acquire);
                           });
    if (st != OpStatus::Dropped) {
      if (target != me()) {
        SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasGet, target, 0,
                           sizeof(std::uint64_t));
        SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasGets, 1);
        SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasGetBytes,
                          sizeof(std::uint64_t));
      }
      break;
    }
  }
  if (a > 0) {
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::OpRetries,
                      std::min(a, pol.max_attempts - 1));
  }
  if (attempts != nullptr) {
    *attempts = std::min(a + 1, pol.max_attempts);
  }
  return st;
}

OpStatus Runtime::put_word_reliable(SegId id, Rank target, std::size_t offset,
                                    std::uint64_t value, std::size_t width,
                                    int* attempts) {
  SCIOTO_REQUIRE(width == 4 || width == 8,
                 "put_word_reliable: width " << width << " unsupported");
  SCIOTO_CHECK(offset % width == 0);
  SCIOTO_CHECK(offset + width <= seg_bytes(id));
  int retries = 0;
  if (fault::active()) {
    for (;;) {
      fault::OpFate f =
          fault::one_sided_fate(fault::OpKind::Token, me(), target);
      if (f.fate == fault::Fate::Fail) {
        // A silently lost control word stalls its protocol forever, so
        // delivery retries past the drop budget (finite by plan).
        charge(fault::backoff(me(), retries++));
        relax();
        continue;
      }
      if (f.fate == fault::Fate::Delay && f.delay > 0) {
        charge(f.delay);
      }
      break;
    }
  }
  backend_.rma_charge_oneway(target, width);
  if (retries > 0) {
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::OpRetries, retries);
  }
  if (target != me()) {
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasPuts, 1);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasPutBytes, width);
  }
  std::byte* p = seg_ptr(id, target) + offset;
  if (width == 8) {
    std::atomic_ref<std::uint64_t>(*reinterpret_cast<std::uint64_t*>(p))
        .store(value, std::memory_order_release);
  } else {
    std::atomic_ref<std::uint32_t>(*reinterpret_cast<std::uint32_t*>(p))
        .store(static_cast<std::uint32_t>(value), std::memory_order_release);
  }
  if (attempts != nullptr) {
    *attempts = retries;
  }
  return detect::alive(target) ? OpStatus::Ok : OpStatus::TargetDead;
}

void Runtime::acc(SegId id, Rank target, std::size_t offset,
                  const double* src, std::size_t n, double alpha) {
  SCIOTO_CHECK(offset + n * sizeof(double) <= seg_bytes(id));
  if (target != me()) {
    backend_.rma_charge(target, n * sizeof(double));
    SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasAcc, target, 0,
                       n * sizeof(double));
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasAccs, 1);
    SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasPutBytes, n * sizeof(double));
  } else {
    // Local accumulate still pays a memory-system cost under sim.
    backend_.charge(static_cast<TimeNs>(n / 4) + 100);
  }
  double* dst = reinterpret_cast<double*>(seg_ptr(id, target) + offset);
  backend_.critical([&] {
    for (std::size_t i = 0; i < n; ++i) {
      dst[i] += alpha * src[i];
    }
  });
}

std::int64_t Runtime::fetch_add(SegId id, Rank target, std::size_t offset,
                                std::int64_t delta) {
  SCIOTO_CHECK(offset % alignof(std::int64_t) == 0);
  SCIOTO_CHECK(offset + sizeof(std::int64_t) <= seg_bytes(id));
  backend_.rmw_charge(target);
  SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasRmw, target, 0, 0);
  SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasRmws, 1);
  auto* p = reinterpret_cast<std::int64_t*>(seg_ptr(id, target) + offset);
  return std::atomic_ref<std::int64_t>(*p).fetch_add(delta);
}

std::int64_t Runtime::swap(SegId id, Rank target, std::size_t offset,
                           std::int64_t value) {
  SCIOTO_CHECK(offset % alignof(std::int64_t) == 0);
  SCIOTO_CHECK(offset + sizeof(std::int64_t) <= seg_bytes(id));
  backend_.rmw_charge(target);
  SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasRmw, target, 0, 0);
  SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasRmws, 1);
  auto* p = reinterpret_cast<std::int64_t*>(seg_ptr(id, target) + offset);
  return std::atomic_ref<std::int64_t>(*p).exchange(value);
}

std::int64_t Runtime::compare_swap(SegId id, Rank target, std::size_t offset,
                                   std::int64_t expected,
                                   std::int64_t desired) {
  SCIOTO_CHECK(offset % alignof(std::int64_t) == 0);
  SCIOTO_CHECK(offset + sizeof(std::int64_t) <= seg_bytes(id));
  backend_.rmw_charge(target);
  SCIOTO_TRACE_EVENT(me(), trace::Ev::PgasRmw, target, 0, 0);
  SCIOTO_METRIC_CTR(me(), metrics::Ctr::PgasRmws, 1);
  auto* p = reinterpret_cast<std::int64_t*>(seg_ptr(id, target) + offset);
  std::atomic_ref<std::int64_t>(*p).compare_exchange_strong(expected, desired);
  return expected;  // compare_exchange_strong wrote the observed value here
}

void Runtime::atomic_publish_charge() {
  // One store + fence + validating load on the owner's own control block:
  // charged like a local queue get (the cheapest Table-1 op), because no
  // lock service slot and no network round trip are involved.
  backend_.charge(machine().local_get);
}

void Runtime::fence(Rank target) {
  // Within one address space puts complete immediately; the fence costs a
  // round trip (flush + ack) under the model and a memory fence for real.
  backend_.rma_charge(target, 0);
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

// ---- Remote mutexes ----

LockSet Runtime::lockset_create() {
  barrier();
  int base = -1;
  if (me() == 0) {
    base = backend_.lockset_create(nprocs());
  }
  LockSet ls;
  ls.base = broadcast(base, 0);
  return ls;
}

// ---- Two-sided messages ----

void Runtime::send(Rank to, int tag, const void* data, std::size_t n) {
  PendingMsg msg;
  msg.from = me();
  msg.tag = tag;
  msg.arrival = backend_.msg_send_time(to, n);
  msg.data.assign(static_cast<const std::byte*>(data),
                  static_cast<const std::byte*>(data) + n);
  Inbox& inbox = *inboxes_[static_cast<std::size_t>(to)];
  backend_.critical([&] { inbox.q.push_back(std::move(msg)); });
  backend_.notify(to);
}

bool Runtime::iprobe(Rank from, int tag, MsgInfo* info) {
  backend_.charge(machine_.poll);
  Inbox& inbox = *inboxes_[static_cast<std::size_t>(me())];
  TimeNs t = backend_.now();
  bool found = false;
  backend_.critical([&] {
    for (const PendingMsg& m : inbox.q) {
      if (match(m, from, tag) && m.arrival <= t) {
        if (info != nullptr) {
          info->from = m.from;
          info->tag = m.tag;
          info->bytes = m.data.size();
        }
        found = true;
        break;
      }
    }
  });
  return found;
}

bool Runtime::try_recv(Rank from, int tag, void* buf, std::size_t cap,
                       MsgInfo* info) {
  Inbox& inbox = *inboxes_[static_cast<std::size_t>(me())];
  TimeNs t = backend_.now();
  bool found = false;
  std::size_t need = 0;
  backend_.critical([&] {
    for (auto it = inbox.q.begin(); it != inbox.q.end(); ++it) {
      if (match(*it, from, tag) && it->arrival <= t) {
        need = it->data.size();
        SCIOTO_CHECK_MSG(need <= cap, "recv buffer too small: need "
                                          << need << " have " << cap);
        std::memcpy(buf, it->data.data(), need);
        if (info != nullptr) {
          info->from = it->from;
          info->tag = it->tag;
          info->bytes = need;
        }
        inbox.q.erase(it);
        found = true;
        break;
      }
    }
  });
  if (found) {
    backend_.msg_recv_charge(need);
  }
  return found;
}

MsgInfo Runtime::recv(Rank from, int tag, void* buf, std::size_t cap) {
  MsgInfo info;
  for (;;) {
    if (try_recv(from, tag, buf, cap, &info)) {
      return info;
    }
    // Under sim, a matching message may exist but with a future arrival
    // time; advance to it rather than blocking forever.
    TimeNs next_arrival = kTimeNever;
    Inbox& inbox = *inboxes_[static_cast<std::size_t>(me())];
    backend_.critical([&] {
      for (const PendingMsg& m : inbox.q) {
        if (match(m, from, tag)) {
          next_arrival = std::min(next_arrival, m.arrival);
        }
      }
    });
    if (next_arrival != kTimeNever) {
      if (backend_.simulated()) {
        // Wait (in virtual time) for the message to land.
        TimeNs dt = next_arrival - backend_.now();
        if (dt > 0) {
          backend_.charge(dt);
        }
        backend_.sync();
      }
      continue;
    }
    backend_.idle_wait();
  }
}

// ---- SPMD launcher ----

RunResult run_spmd(const Config& cfg,
                   const std::function<void(Runtime&)>& body) {
  RunResult result;
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};

#if SCIOTO_TRACE_ENABLED
  // SCIOTO_TRACE_OUT=FILE traces any binary without code changes. A session
  // the caller already started (e.g. a bench's --trace flag) takes
  // precedence: it owns export and shutdown.
  const char* trace_out = std::getenv("SCIOTO_TRACE_OUT");
  const bool own_trace = trace_out != nullptr && !trace::active();
  if (own_trace) {
    trace::start(cfg.nranks);
  }
#endif

#if SCIOTO_LINEAGE_ENABLED
  // SCIOTO_LINEAGE=1 arms causal task lineage: every descriptor carries
  // an id/parent/hops trailer and the spawn/migrate/exec edges land in
  // the trace stream (visible only when a trace session is also active).
  // Enablement can also be staged through the C API
  // (scioto_lineage_set); a session the caller already started (e.g.
  // `trace_demo --flow`) takes precedence and owns shutdown.
  trace::lineage::Config lcfg = trace::lineage::config();
  if (const char* v = std::getenv("SCIOTO_LINEAGE")) {
    lcfg.enabled = *v != '\0' && *v != '0';
  }
  const bool own_lineage = lcfg.enabled && !trace::lineage::active();
  if (own_lineage) {
    trace::lineage::start(cfg.nranks);
  }
#endif

  // SCIOTO_FAULT_PLAN=SPEC arms fault injection for any binary. As with
  // tracing, a session the caller already started takes precedence.
  const char* fault_spec = std::getenv("SCIOTO_FAULT_PLAN");
  const bool own_fault = fault_spec != nullptr && *fault_spec != '\0' &&
                         !fault::active();
  if (own_fault) {
    fault::FaultPlan plan = fault::FaultPlan::parse(fault_spec);
    SCIOTO_REQUIRE(plan.kill_count() == 0 || cfg.backend == BackendKind::Sim,
                   "fail-stop kills need the deterministic sim backend");
    fault::start(cfg.nranks, std::move(plan), cfg.seed);
  }

  // SCIOTO_DETECTOR=1 arms the heartbeat failure detector: liveness is
  // then learned from probes instead of the fault oracle. Periods/timeouts
  // come from the staged detect::config() (C API) with env overrides. A
  // view the caller already armed takes precedence.
  detect::Config dcfg = detect::config();
  if (const char* v = std::getenv("SCIOTO_DETECTOR")) {
    dcfg.enabled = *v != '\0' && *v != '0';
  }
  if (const char* v = std::getenv("SCIOTO_HB_PERIOD")) {
    dcfg.hb_period = fault::parse_time(v);
  }
  if (const char* v = std::getenv("SCIOTO_PROBE_PERIOD")) {
    dcfg.probe_period = fault::parse_time(v);
  }
  if (const char* v = std::getenv("SCIOTO_SUSPECT_AFTER")) {
    dcfg.suspect_after = fault::parse_time(v);
  }
  if (const char* v = std::getenv("SCIOTO_CONFIRM_AFTER")) {
    dcfg.confirm_after = fault::parse_time(v);
  }
  const bool own_detect = dcfg.enabled && !detect::active();
  if (own_detect) {
    detect::set_config(dcfg);
  }

#if SCIOTO_ELASTIC_ENABLED
  // SCIOTO_ELASTIC=1 arms elastic membership: join/ckpt rules in the fault
  // plan become live, parked ranks wait for admission, and checkpoints are
  // written to SCIOTO_CKPT_PATH (optionally every SCIOTO_CKPT_PERIOD of
  // virtual time). Armed before the detector view so the parked tail is
  // set at detect::start; a session the caller already armed takes
  // precedence. Detector config staged above applies to the view elastic
  // arms.
  elastic::Config ecfg = elastic::config();
  if (const char* v = std::getenv("SCIOTO_ELASTIC")) {
    ecfg.enabled = *v != '\0' && *v != '0';
  }
  if (const char* v = std::getenv("SCIOTO_CKPT_PATH")) {
    ecfg.ckpt_path = v;
  }
  if (const char* v = std::getenv("SCIOTO_CKPT_PERIOD")) {
    ecfg.ckpt_period = fault::parse_time(v);
  }
  if (const char* v = std::getenv("SCIOTO_CKPT_RESTORE")) {
    ecfg.restore_path = v;
  }
  const bool own_elastic = ecfg.enabled && !elastic::active();
  if (own_elastic) {
    elastic::set_config(ecfg);
    elastic::start(cfg.nranks);
  }
#endif

  if (own_detect && !detect::active()) {
    detect::start(cfg.nranks);
  }

#if SCIOTO_CONTROL_ENABLED
  // SCIOTO_CONTROLLER=off|local|global arms the adaptive control plane.
  // Mode, epoch period, and rule thresholds come from the staged
  // control::config() (C API) with env overrides. The controller reads the
  // metrics plane, so arming it force-enables metrics below. A session the
  // caller already started takes precedence.
  control::Config ccfg = control::config();
  if (const char* v = std::getenv("SCIOTO_CONTROLLER")) {
    SCIOTO_REQUIRE(control::mode_from_name(v, &ccfg.mode),
                   "SCIOTO_CONTROLLER must be off|local|global, got " << v);
  }
  if (const char* v = std::getenv("SCIOTO_CTL_PERIOD")) {
    ccfg.period = fault::parse_time(v);
  }
  if (const char* v = std::getenv("SCIOTO_CTL_RULES")) {
    std::string rerr;
    SCIOTO_REQUIRE(control::Rules::parse(v, &ccfg.rules, &rerr),
                   "bad SCIOTO_CTL_RULES: " << rerr);
  }
  const bool own_control =
      ccfg.mode != control::Mode::Off && !control::active();
#if !SCIOTO_METRICS_ENABLED
  SCIOTO_REQUIRE(!own_control,
                 "SCIOTO_CONTROLLER needs a build with SCIOTO_METRICS=ON");
#endif
#endif

#if SCIOTO_METRICS_ENABLED
  // SCIOTO_METRICS=1 arms the telemetry plane (per-rank metric patches +
  // the periodic fleet monitor) for any binary. Period and sinks come from
  // the staged metrics::config() (C API) with env overrides. A session the
  // caller already started (e.g. a bench's --live flag) takes precedence
  // and owns the monitor and any dumps.
  metrics::Config mcfg = metrics::config();
  if (const char* v = std::getenv("SCIOTO_METRICS")) {
    mcfg.enabled = *v != '\0' && *v != '0';
  }
  if (const char* v = std::getenv("SCIOTO_METRICS_PERIOD")) {
    mcfg.period = fault::parse_time(v);
  }
  if (const char* v = std::getenv("SCIOTO_METRICS_OUT")) {
    mcfg.out_path = v;
  }
  if (const char* v = std::getenv("SCIOTO_METRICS_PROM")) {
    mcfg.prom_path = v;
  }
#if SCIOTO_CONTROL_ENABLED
  if (own_control) {
    mcfg.enabled = true;  // the controller reads the metrics plane
    if (ccfg.period < mcfg.period) {
      // The fleet CoV digest the rule engine keys on is refreshed by the
      // monitor tick; a sampler slower than the decision cadence would
      // leave the controller reacting to stale imbalance.
      mcfg.period = ccfg.period;
    }
  }
#endif
  const bool own_metrics = mcfg.enabled && !metrics::active();
  if (own_metrics) {
    metrics::start(cfg.nranks);
    metrics::MonitorOptions mopts;
    mopts.period = mcfg.period;
    mopts.out_path = mcfg.out_path;
    mopts.live = false;
    mopts.wall_thread = cfg.backend == BackendKind::Threads;
    metrics::monitor_start(cfg.nranks, mopts);
    metrics::monitor_set_liveness([](Rank r) {
      if (!detect::alive(r)) return metrics::RankState::Dead;
      if (detect::suspected(r)) return metrics::RankState::Suspect;
      return metrics::RankState::Alive;
    });
    metrics::monitor_set_growth([] {
      // A parked rank reports Dead through the classifier above (it has
      // no seat in the fleet yet), so the alive+suspect+dead=nranks
      // rollup stays closed; the joins/grows pair is what tells a
      // growing fleet apart from a shrinking one.
      detect::Stats ds = detect::stats();
      return std::pair<std::uint64_t, std::uint64_t>(ds.joins, ds.grows);
    });
  }
#if SCIOTO_CONTROL_ENABLED
  if (own_control) {
    // After monitor_start so the monitor hooks (planner tick, dashboard
    // knob text) land in an armed monitor; works equally against a
    // caller-owned metrics session.
    control::set_config(ccfg);
    control::start(cfg.nranks, ccfg);
  }
#endif
#endif

  auto wrap = [&](Runtime& rt, Rank r) {
    try {
      body(rt);
    } catch (const fault::RankKilled& k) {
      // Injected fail-stop: this rank simply stops executing; survivors
      // recover its in-flight work. Not an error.
      SCIOTO_WARN("rank " << r << " fail-stop injected at t=" << k.at
                          << " ns");
    } catch (...) {
      bool expected = false;
      if (failed.compare_exchange_strong(expected, true)) {
        first_error = std::current_exception();
      }
      SCIOTO_ERROR("rank " << r << " terminated with an exception");
    }
  };

  if (cfg.backend == BackendKind::Sim) {
    SimBackend backend(cfg.nranks, cfg.machine, cfg.stack_bytes);
    Runtime rt(backend, cfg.seed, cfg.machine);
    backend.run([&](Rank r) { wrap(rt, r); });
    result.elapsed = backend.engine()->max_clock();
  } else {
    ThreadBackend backend(cfg.nranks);
    Runtime rt(backend, cfg.seed, cfg.machine);
    auto t0 = std::chrono::steady_clock::now();
    backend.run([&](Rank r) { wrap(rt, r); });
    result.elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  }

#if SCIOTO_TRACE_ENABLED
  if (own_trace) {
    trace::write_chrome_trace_file(trace_out);
    trace::stop();
  }
#endif

#if SCIOTO_LINEAGE_ENABLED
  // After the trace export above: the flow events it renders were
  // recorded into the trace rings, which the lineage session does not
  // own.
  if (own_lineage) {
    trace::lineage::stop();
  }
#endif

#if SCIOTO_METRICS_ENABLED
#if SCIOTO_CONTROL_ENABLED
  if (own_control) {
    // Before the metrics teardown: stop() detaches the monitor hooks but
    // keeps the decision log for post-run inspection.
    control::stop();
  }
#endif
  if (own_metrics) {
    if (!mcfg.prom_path.empty()) {
      std::FILE* f = std::fopen(mcfg.prom_path.c_str(), "w");
      if (f != nullptr) {
        std::string text = metrics::prometheus_text();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
      } else {
        SCIOTO_WARN("cannot open SCIOTO_METRICS_PROM file "
                    << mcfg.prom_path);
      }
    }
    metrics::monitor_stop();
    metrics::stop();
  }
#endif

#if SCIOTO_ELASTIC_ENABLED
  if (own_elastic) {
    elastic::stop();  // disarms the detect view iff elastic armed it
  }
#endif

  if (own_detect && detect::active()) {
    detect::stop();
  }

  if (own_fault) {
    fault::Summary s = fault::summary();
    if (s.kills > 0) {
      SCIOTO_WARN("fault plan injected " << s.kills << " rank failure(s); "
                  << "drops=" << s.drops << " stalls=" << s.stalls);
    }
    fault::stop();
  }

  if (first_error) {
    std::rethrow_exception(first_error);
  }
  return result;
}

}  // namespace scioto::pgas
