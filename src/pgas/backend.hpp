// Execution backend abstraction for the PGAS runtime.
//
// The Runtime (runtime.hpp) implements ARMCI-style semantics -- shared
// segments, one-sided put/get/acc, remote mutexes, collectives, two-sided
// messages -- once, against this interface. Two backends exist:
//
//   * SimBackend   -- ranks are fibers under the virtual-time Engine; every
//                     operation charges a MachineModel cost. All figure
//                     benches use this: deterministic and scalable to
//                     hundreds of ranks on one core.
//   * ThreadBackend-- ranks are real std::threads; costs are no-ops and
//                     synchronization uses real mutexes/condvars. Unit
//                     tests use this to expose real data races.
//
// Both run inside one address space, so "one-sided remote access" is a
// memcpy plus (under sim) a cost-model charge; this mirrors what ARMCI
// does over RDMA-capable networks, where the target CPU is uninvolved.
#pragma once

#include <cstddef>
#include <functional>

#include "base/types.hpp"

namespace scioto::pgas {

class Backend {
 public:
  virtual ~Backend() = default;

  // ---- Identity ----
  virtual int nranks() const = 0;
  /// Rank of the calling fiber/thread.
  virtual Rank me() const = 0;
  /// True if ranks run truly concurrently (threads backend).
  virtual bool concurrent() const = 0;
  /// True if time is virtual (sim backend).
  virtual bool simulated() const = 0;

  // ---- Time ----
  /// Virtual (sim) or wall-clock (threads) nanoseconds for this rank.
  virtual TimeNs now() = 0;
  /// Charges local compute cost (scaled by the rank's cpu speed in sim;
  /// no-op under threads where the work itself takes real time).
  virtual void charge(TimeNs dt) = 0;
  /// Scheduler synchronization point (no-op under threads).
  virtual void sync() = 0;
  /// Polite busy-wait step: charges a poll cost in sim, yields the CPU
  /// under threads.
  virtual void relax() = 0;

  // ---- One-sided cost accounting ----
  /// Accounts a blocking round-trip RMA of `bytes` payload against
  /// `target`'s service queue (initiation latency + target occupancy +
  /// completion latency). The caller performs the actual memcpy afterwards.
  virtual void rma_charge(Rank target, std::size_t bytes) = 0;
  /// Accounts a fire-and-forget RMA (initiation + occupancy, no completion
  /// wait), e.g. an unlock notification.
  virtual void rma_charge_oneway(Rank target, std::size_t bytes) = 0;
  /// Accounts a blocking remote atomic (fetch-add / swap): a round trip
  /// whose target-side occupancy is MachineModel::rmw_service -- far
  /// larger than a plain RMA's, since 2008-era atomics were host-assisted.
  virtual void rmw_charge(Rank target) = 0;

  // ---- Remote mutexes ----
  /// Creates `n` locks and returns their base id. Called by rank 0 only
  /// (the Runtime makes creation collective and broadcasts the id).
  virtual int lockset_create(int n) = 0;
  /// Acquires lock `base+idx`, whose home is rank `home` (used for cost
  /// accounting; the lock state itself lives in the backend).
  virtual void lock(int base, int idx, Rank home) = 0;
  virtual bool trylock(int base, int idx, Rank home) = 0;
  virtual void unlock(int base, int idx, Rank home) = 0;

  // ---- Atomicity escape hatch ----
  /// Runs fn atomically with respect to all other critical() calls. Under
  /// sim this is a plain call (execution is single-threaded); under
  /// threads it serializes through one real mutex. Used for mailbox
  /// manipulation and accumulate loops; carries no cost-model charge.
  virtual void critical(const std::function<void()>& fn) = 0;

  // ---- Eventcount ----
  /// Blocks until a notify() aimed at this rank is pending; consumes it.
  /// May return spuriously under threads -- callers must re-check their
  /// condition in a loop.
  virtual void idle_wait() = 0;
  /// Releases rank r's pending/next idle_wait (in sim, no earlier than
  /// now + message latency).
  virtual void notify(Rank r) = 0;

  // ---- Two-sided message timing ----
  /// Charges the sender-side overhead of a short message to `to` and
  /// returns the virtual time at which it becomes visible to the receiver
  /// (0 under threads = immediately visible).
  virtual TimeNs msg_send_time(Rank to, std::size_t bytes) = 0;
  /// Charges receiver-side message-handling overhead.
  virtual void msg_recv_charge(std::size_t bytes) = 0;

  // ---- Collectives ----
  /// ARMCI-flavored barrier (the framework's default).
  virtual void barrier() = 0;
  /// MPI-flavored barrier (distinct cost constant; used by Figure 4).
  virtual void barrier_mpi() = 0;
};

}  // namespace scioto::pgas
