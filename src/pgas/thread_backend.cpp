#include "pgas/thread_backend.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "base/error.hpp"
#include "base/log.hpp"
#include "fault/fault.hpp"
#include "trace/trace.hpp"

namespace scioto::pgas {

namespace {
thread_local Rank t_my_rank = kNoRank;

// Active backend for the log-context provider (one ThreadBackend runs at a
// time; nested runs are not supported anyway).
std::atomic<ThreadBackend*> g_active_backend{nullptr};

bool threads_log_context(int& rank, long long& time_ns) {
  ThreadBackend* b = g_active_backend.load(std::memory_order_acquire);
  if (b == nullptr || t_my_rank == kNoRank) {
    return false;
  }
  rank = t_my_rank;
  time_ns = b->now();
  return true;
}

}  // namespace

ThreadBackend::ThreadBackend(int nranks) : nranks_(nranks) {
  SCIOTO_REQUIRE(nranks >= 1, "nranks must be >= 1, got " << nranks);
  log_register_context(&threads_log_context);
  start_ = std::chrono::steady_clock::now();
  events_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    events_.push_back(std::make_unique<EventCount>());
  }
}

void ThreadBackend::run(const std::function<void(Rank)>& body) {
  g_active_backend.store(this, std::memory_order_release);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks_));
  std::mutex err_mutex;
  std::exception_ptr first_error;

  for (Rank r = 0; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      t_my_rank = r;
      try {
        body(r);
      } catch (...) {
        std::lock_guard<std::mutex> g(err_mutex);
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
      t_my_rank = kNoRank;
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  g_active_backend.store(nullptr, std::memory_order_release);
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

Rank ThreadBackend::me() const {
  SCIOTO_CHECK_MSG(t_my_rank != kNoRank,
                   "backend call from outside a rank thread");
  return t_my_rank;
}

TimeNs ThreadBackend::now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

int ThreadBackend::lockset_create(int n) {
  std::lock_guard<std::mutex> g(locks_growth_mutex_);
  int base = static_cast<int>(locks_.size());
  for (int i = 0; i < n; ++i) {
    locks_.emplace_back();
  }
  return base;
}

void ThreadBackend::lock(int base, int idx, Rank) {
  locks_[static_cast<std::size_t>(base + idx)].lock();
  // Injected lock-holder stall: hold the mutex for the stall duration so
  // competitors really queue behind the hang, as they would under sim.
  if (fault::active()) {
    TimeNs stall = fault::stall_time(me());
    if (stall > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
    }
  }
}

bool ThreadBackend::trylock(int base, int idx, Rank) {
  return locks_[static_cast<std::size_t>(base + idx)].try_lock();
}

void ThreadBackend::unlock(int base, int idx, Rank) {
  locks_[static_cast<std::size_t>(base + idx)].unlock();
}

void ThreadBackend::critical(const std::function<void()>& fn) {
  std::lock_guard<std::mutex> g(critical_mutex_);
  fn();
}

void ThreadBackend::idle_wait() {
  EventCount& ev = *events_[static_cast<std::size_t>(me())];
  std::unique_lock<std::mutex> g(ev.m);
  // Bounded wait keeps a missed notify from hanging a test forever; the
  // caller loops on its own condition anyway.
  ev.cv.wait_for(g, std::chrono::milliseconds(1),
                 [&] { return ev.pending; });
  ev.pending = false;
}

void ThreadBackend::notify(Rank r) {
  EventCount& ev = *events_[static_cast<std::size_t>(r)];
  {
    std::lock_guard<std::mutex> g(ev.m);
    ev.pending = true;
  }
  ev.cv.notify_one();
}

TimeNs ThreadBackend::msg_send_time(Rank, std::size_t) { return 0; }

void ThreadBackend::barrier() {
  SCIOTO_TRACE_EVENT(t_my_rank, trace::Ev::Barrier, 0, 0, 0);
  std::unique_lock<std::mutex> g(barrier_mutex_);
  std::uint64_t gen = barrier_generation_;
  if (++barrier_arrived_ == nranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(g, [&] { return barrier_generation_ != gen; });
}

}  // namespace scioto::pgas
