// The out-of-band monitor: a periodic sampler over the metrics patches.
//
// Every sampling tick scrapes all ranks' metric patches (seqlock-validated
// one-sided reads; see metrics/metrics.hpp), computes fleet aggregates --
// total in-flight tasks, queue-depth imbalance (coefficient of variation
// and Gini index over the alive ranks), steal success rate, detector state
// rollup -- and appends one JSONL snapshot line to SCIOTO_METRICS_OUT
// and/or an in-memory series. With `live` set it also renders a TTY
// dashboard (one row per rank: state, depth bar, counters), which is what
// `bench_fig7 --live` and `fault_demo --live` show.
//
// Time sources (the determinism split):
//   * sim backend: the monitor is *poll-driven*. Ranks pump monitor_poll()
//     from the task-collection work loop; the lowest-alive rank samples
//     whenever its virtual clock passes the next deadline. Scrapes charge
//     nothing, so metrics-on sim runs are bit-deterministic and their
//     traces identical to metrics-off runs.
//   * threads backend: a wall-clock sampler thread wakes every `period`
//     ns, like a real out-of-band monitor process scraping the PGAS
//     segment of a running job.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hpp"

namespace scioto::metrics {

enum class RankState : int { Alive = 0, Suspect = 1, Dead = 2 };

struct MonitorOptions {
  TimeNs period = 100'000;  // virtual ns (sim) or wall ns (threads)
  std::string out_path;     // JSONL sink; empty keeps samples in memory only
  bool live = false;        // render the TTY dashboard on every sample
  bool wall_thread = false; // sample from a wall-clock thread (threads
                            // backend); otherwise poll-driven (sim)
};

struct RankSample {
  Rank r = kNoRank;
  RankState state = RankState::Alive;
  std::uint64_t depth = 0;    // private + shared tasks queued
  std::uint64_t shared = 0;   // stealable portion
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;   // successful steals by this rank
  std::uint64_t stolen = 0;   // tasks this rank received by stealing
  /// Trace events this rank's ring has overwritten so far (0 without an
  /// active trace session). Until now only the exporter reported drops,
  /// so a live run could silently lose events; the rollup surfaces the
  /// loss while the run can still be re-launched with a bigger ring.
  std::uint64_t trace_dropped = 0;
};

struct FleetSample {
  TimeNs t = 0;
  std::vector<RankSample> ranks;
  std::uint64_t depth_sum = 0;       // in-flight tasks across alive ranks
  std::uint64_t executed = 0;        // fleet total
  std::uint64_t steal_attempts = 0;  // fleet total
  std::uint64_t steals = 0;          // fleet total
  std::uint64_t tasks_stolen = 0;    // fleet total
  double cov = 0.0;                  // queue-depth coefficient of variation
  double gini = 0.0;                 // queue-depth Gini index
  double steal_success = 0.0;        // steals / attempts
  int alive = 0;
  int suspects = 0;
  int dead = 0;
  // Elastic growth rollup (detect::Stats joins/grows via the growth
  // hook); both stay 0 for a static fleet.
  std::uint64_t joins = 0;   // parked ranks admitted so far
  std::uint64_t grows = 0;   // admission waves (join epoch bumps)
  std::uint64_t trace_dropped = 0;  // fleet total of per-rank ring drops
};

/// True between monitor_start() and monitor_stop().
bool monitor_active();

/// Starts the sampler over an already-started metrics session.
void monitor_start(int nranks, const MonitorOptions& opts);

/// Stops the sampler (joins the wall-clock thread if any) and closes the
/// JSONL sink. The in-memory series survives until the next start.
void monitor_stop();

/// Installs the per-rank liveness classifier the sampler and dashboard
/// use. Defaults to "everyone alive"; pgas::run_spmd installs one backed
/// by the detector's membership view.
void monitor_set_liveness(std::function<RankState(Rank)> fn);

/// Installs the fleet-growth reader the sampler uses to fill
/// FleetSample.joins/grows: returns {ranks admitted, admission waves}.
/// Defaults to {0, 0}; pgas::run_spmd installs one backed by the
/// membership view's counters (the monitor cannot link upward to
/// detect). Pass nullptr to remove.
void monitor_set_growth(
    std::function<std::pair<std::uint64_t, std::uint64_t>()> fn);

/// Installs a hook invoked with every FleetSample right after it is
/// computed (before it is appended to the series), from the sampler's
/// context. This is how the control plane (src/control) observes the
/// fleet without the monitor linking upward: the local controllers read
/// the digest the hook publishes, and the global controller *is* the
/// hook. Survives monitor_stop/start; pass nullptr to uninstall.
void monitor_set_sample_hook(std::function<void(const FleetSample&)> fn);

/// Installs a per-rank renderer for the live dashboard's knobs column
/// (empty string = no column). The control plane installs one that
/// prints the rank's current published KnobSet. Pass nullptr to remove.
void monitor_set_knobs_text(std::function<std::string(Rank)> fn);

/// Pump from a rank's work loop (sim backend). Only the lowest-alive rank
/// samples, and only once `now` passes the next deadline; everyone else
/// pays one relaxed load. No-op when the monitor is thread-driven.
void monitor_poll(Rank me, TimeNs now);

/// Takes one sample immediately. Returns the number of ranks scraped, or
/// 0 when the monitor is inactive.
int monitor_sample(TimeNs now);

/// The in-memory time series recorded so far (valid after monitor_stop,
/// cleared by the next monitor_start).
const std::vector<FleetSample>& monitor_samples();

// ---- Fleet aggregate helpers (exposed for tests and benches) ----

/// Coefficient of variation (stddev / mean) of a population; 0 if the
/// mean is 0.
double cov_index(const std::vector<std::uint64_t>& xs);

/// Gini index of a population: 0 = perfectly balanced, -> 1 = one rank
/// holds everything; 0 if the sum is 0.
double gini_index(const std::vector<std::uint64_t>& xs);

}  // namespace scioto::metrics
