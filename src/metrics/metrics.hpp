// Global-view telemetry plane: per-rank live metrics scrapeable with
// one-sided reads.
//
// The paper's architecture (§5) keeps every process's queue state in
// one-sided-accessible shared memory; this subsystem extends that idea to
// observability. Each rank owns a fixed-schema patch of a metrics segment
// holding monotonic counters, gauges, and log2-bucketed latency histograms.
// The owner updates its patch with plain relaxed stores -- no locks, no
// CAS, no cooperation with readers -- and any rank (or the out-of-band
// monitor in metrics/monitor.hpp) can scrape a consistent snapshot of any
// patch with the same one-sided gets thieves already use:
//
//   owner (writer)                       scraper (reader)
//   seq <- seq+1   (odd: in flux)        s1 <- seq; retry while odd
//   ...relaxed stores into the patch     copy the whole patch (relaxed)
//   seq <- seq+1   (even: settled)       s2 <- seq; retry unless s1 == s2
//
// The per-rank seqlock word makes snapshots tear-free without ever making
// the owner wait: a reader that loses the race simply retries. Every slot
// is a 64-bit word accessed through std::atomic_ref, so the protocol is
// data-race-free under TSan on the threads backend; under the sim backend
// ranks are cooperatively scheduled fibers and the seqlock is trivially
// quiescent at every scrape.
//
// Gating (same discipline as trace/):
//   * compile time: the SCIOTO_METRICS CMake option (default ON) defines
//     SCIOTO_METRICS_ENABLED; OFF compiles every SCIOTO_METRIC_* macro to
//     nothing.
//   * runtime: nothing is recorded until metrics::start(nranks); armed by
//     the SCIOTO_METRICS env var / C-API knob in pgas::run_spmd, or
//     directly by benches. When no session is active each instrumentation
//     site costs one predicted-false branch, so metrics-off runs stay
//     byte-identical to baseline (locked in by tests/test_metrics.cpp).
//
// Determinism: recording never reads a clock by itself -- durations are
// handed in by instrumentation sites that only take timestamps when a
// session is active, and the monitor samples in virtual time under sim --
// so metrics-on sim runs are bit-deterministic.
#pragma once

#include <cstdint>
#include <string>

#include "base/stats.hpp"
#include "base/types.hpp"

#ifndef SCIOTO_METRICS_ENABLED
#define SCIOTO_METRICS_ENABLED 0
#endif

namespace scioto::metrics {

// ---- Fixed metric schema ----
//
// The schema is compile-time fixed so every rank's patch has the same
// layout and a scraper needs no coordination to interpret remote bytes.
// Extend by appending (the names table and kCount asserts keep the
// exposition and the C API in sync).

enum class Ctr : int {
  TasksExecuted,    // tasks run to completion by this rank
  TasksSpawned,     // tasks this rank added (local + remote targets)
  RemoteSpawns,     // subset of TasksSpawned landing in another rank's queue
  QPushes,          // local queue pushes
  QPops,            // local queue pops
  QReleases,        // release operations (private -> shared)
  QReleasedTasks,   // tasks moved private -> shared
  QReacquires,      // reacquire operations (shared -> private)
  QReacquiredTasks, // tasks moved shared -> private
  StealAttempts,    // steal_from calls on a victim
  Steals,           // attempts that transferred >= 1 task
  StealFails,       // empty-handed / aborted attempts
  TasksStolen,      // tasks received by stealing
  TdVotes,          // termination-detector votes passed up
  TdBlackVotes,     // votes carrying a black token
  TdWaves,          // waves started (root only)
  Probes,           // detector probes issued
  Heartbeats,       // heartbeat publishes
  Suspects,         // alive -> suspect transitions observed
  Refutes,          // suspect -> alive refutations observed
  Confirms,         // suspect -> confirmed-dead transitions observed
  OpRetries,        // one-sided op retries after an injected drop
  TasksRecovered,   // tasks adopted from a dead rank's queue
  PgasGets,         // one-sided get operations (remote targets)
  PgasPuts,         // one-sided put operations (remote targets)
  PgasAccs,         // one-sided accumulate operations (remote targets)
  PgasRmws,         // one-sided fetch-add/swap operations (remote targets)
  PgasGetBytes,     // bytes moved by gets
  PgasPutBytes,     // bytes moved by puts
  // DAG scheduler (src/dag); all zero when no DagScheduler runs.
  DagNodesRun,      // dag nodes executed to completion by this rank
  DagNodesFired,    // nodes this rank made ready (fleet fired - fleet run
                    // = globally ready/running dag nodes)
  DagConflictRetries, // dispatches bounced off a held conflict-group lock
  DagVersionWaits,  // dispatches deferred on an unbumped data version
  DagRemoteFires,   // subset of DagNodesFired homed on another rank
  // Steal-path contention + the adaptive control plane (src/control).
  StealLockBusy,    // aborting-steal attempts bounced off a held lock
  CtlEpochs,        // controller epochs this rank evaluated
  CtlDecisions,     // knob changes this rank applied
  CtlInherits,      // knob rows inherited from dead ranks at adoption
  kCount
};

enum class Gauge : int {
  QueueDepth,    // private + shared tasks currently queued
  QueueShared,   // tasks in the shared (stealable) portion
  QueueSplit,    // split position: tasks ever moved past the split point
  AliveView,     // ranks this rank's membership view believes alive
  SuspectsView,  // peers this rank currently suspects
  DagParked,     // dag nodes parked on this rank awaiting a gate (conflict
                 // lock or data version) -- the deferred ready-set
  DagDepthMax,   // deepest dag node this rank has executed so far
  // Live knob values (src/control); mirror the owning rank's KnobSet.
  CtlChunk,      // live steal-chunk knob
  CtlStealHalf,  // live steal-half on/off knob
  CtlRelease,    // live release-threshold knob
  CtlRetarget,   // live retarget-budget knob
  CtlVictimSet,  // live restricted-victim-set knob (0 = unrestricted)
  kCount
};

enum class Hist : int {
  TaskExecNs,   // task execution time
  SearchNs,     // idle/steal-search spell length
  PushNs,       // local push latency
  PopNs,        // local pop latency
  StealNs,      // successful steal latency (attempt -> tasks landed)
  WaveNs,       // termination wave latency (root only)
  ProbeRttNs,   // detector probe round-trip time
  DagNodeDepth, // critical-path depth of each executed dag node
  kCount
};

inline constexpr int kNumCtrs = static_cast<int>(Ctr::kCount);
inline constexpr int kNumGauges = static_cast<int>(Gauge::kCount);
inline constexpr int kNumHists = static_cast<int>(Hist::kCount);
inline constexpr int kHistBuckets = stats::kLog2Buckets;

/// Snake-case metric names used by the Prometheus exposition, the JSONL
/// monitor stream, and scioto_metrics_read().
const char* ctr_name(Ctr c);
const char* gauge_name(Gauge g);
const char* hist_name(Hist h);

// ---- Patch layout (in 64-bit words) ----
//
//   [0]                seqlock word
//   [1 .. 1+NC)        counters
//   [.. +NG)           gauges
//   per histogram:     count, sum, max, buckets[kHistBuckets]

inline constexpr int kHistWords = 3 + kHistBuckets;
inline constexpr int kPatchWords =
    1 + kNumCtrs + kNumGauges + kNumHists * kHistWords;

// ---- Session ----

/// True between start() and stop(); one relaxed atomic load.
bool active();

/// Allocates the per-rank metric patches (zeroed) and begins recording.
void start(int nranks);

/// Ends the session and releases the patches.
void stop();

/// Ranks in the active session (0 when inactive).
int session_nranks();

// ---- Owner-side recording (call only for your own rank) ----

void counter_add(Rank r, Ctr c, std::uint64_t delta = 1);
void gauge_set(Rank r, Gauge g, std::uint64_t v);
void hist_record(Rank r, Hist h, std::uint64_t v);

// ---- Owner fast path (the per-rank controller's poll) ----
//
// A rank reading its *own* patch cannot race itself (it is the patch's
// sole writer), so it may skip the seqlock protocol entirely: one
// relaxed load per word, no retry loop, no whole-patch copy. This is
// what makes a per-rank controller poll cost nanoseconds where a
// one-sided scrape costs a full-patch validated copy.

/// Direct relaxed load of one of rank r's own counters. Call only from
/// rank r's execution context. Returns 0 when no session is active.
std::uint64_t own_ctr(Rank r, Ctr c);

/// Same fast path for gauges.
std::uint64_t own_gauge(Rank r, Gauge g);

// ---- Snapshots ----

struct HistSnap {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t buckets[kHistBuckets] = {};

  double mean() const { return count ? double(sum) / double(count) : 0.0; }
  /// Nearest-rank percentile (bucket ceiling); see base/stats.hpp.
  std::uint64_t percentile(double p) const {
    return stats::hist_percentile(buckets, kHistBuckets, p);
  }
};

struct Snapshot {
  std::uint64_t seq = 0;  // seqlock value the copy validated against
  std::uint64_t counters[kNumCtrs] = {};
  std::uint64_t gauges[kNumGauges] = {};
  HistSnap hists[kNumHists];

  std::uint64_t ctr(Ctr c) const {
    return counters[static_cast<int>(c)];
  }
  std::uint64_t gauge(Gauge g) const {
    return gauges[static_cast<int>(g)];
  }
  const HistSnap& hist(Hist h) const {
    return hists[static_cast<int>(h)];
  }
};

/// Seqlock-validated copy of rank r's patch. Retries while the owner is
/// mid-update; returns false only if `max_retries` consecutive attempts
/// raced (out) or no session is active.
bool scrape(Rank r, Snapshot* out, int max_retries = 1 << 20);

/// Reads one metric out of a snapshot by name: any counter or gauge name,
/// or a histogram name suffixed with _count, _sum, _max, _mean, _p50,
/// _p95, or _p99 (e.g. "steal_ns_p99"). Returns false for unknown names.
bool read_metric(const Snapshot& snap, const std::string& name,
                 std::uint64_t* out);

/// Prometheus-style text exposition of every rank's current metrics
/// (scrapes each patch; empty string when no session is active).
std::string prometheus_text();

// ---- Staged configuration (C API knob; env vars override in run_spmd) ----

struct Config {
  bool enabled = false;          // arm a session inside pgas::run_spmd
  TimeNs period = 100'000;       // monitor sampling period (ns)
  std::string out_path;          // JSONL time-series (empty: keep in memory)
  std::string prom_path;         // Prometheus dump at finalize (empty: none)
};

Config config();
void set_config(const Config& cfg);

}  // namespace scioto::metrics

// Instrumentation macros: compiled to nothing when the SCIOTO_METRICS CMake
// option is OFF (arguments unevaluated), one predicted-false branch when ON
// but no session is active. SCIOTO_METRICS_ON() guards clock reads that
// only exist to feed a histogram.
#if SCIOTO_METRICS_ENABLED
#define SCIOTO_METRICS_ON() (::scioto::metrics::active())
#define SCIOTO_METRIC_CTR(rank, ctr, delta)                               \
  do {                                                                    \
    if (::scioto::metrics::active()) {                                    \
      ::scioto::metrics::counter_add((rank), (ctr),                       \
                                     static_cast<std::uint64_t>(delta));  \
    }                                                                     \
  } while (0)
#define SCIOTO_METRIC_GAUGE(rank, gauge, v)                               \
  do {                                                                    \
    if (::scioto::metrics::active()) {                                    \
      ::scioto::metrics::gauge_set((rank), (gauge),                       \
                                   static_cast<std::uint64_t>(v));        \
    }                                                                     \
  } while (0)
#define SCIOTO_METRIC_HIST(rank, hist, v)                                 \
  do {                                                                    \
    if (::scioto::metrics::active()) {                                    \
      ::scioto::metrics::hist_record((rank), (hist),                      \
                                     static_cast<std::uint64_t>(v));      \
    }                                                                     \
  } while (0)
#else
#define SCIOTO_METRICS_ON() (false)
#define SCIOTO_METRIC_CTR(rank, ctr, delta) \
  do {                                      \
  } while (0)
#define SCIOTO_METRIC_GAUGE(rank, gauge, v) \
  do {                                      \
  } while (0)
#define SCIOTO_METRIC_HIST(rank, hist, v) \
  do {                                    \
  } while (0)
#endif
