#include "metrics/monitor.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "base/error.hpp"
#include "base/log.hpp"
#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace scioto::metrics {

double cov_index(const std::vector<std::uint64_t>& xs) {
  if (xs.empty()) return 0.0;
  double n = double(xs.size());
  double sum = 0.0;
  for (std::uint64_t x : xs) sum += double(x);
  double mean = sum / n;
  if (mean <= 0.0) return 0.0;
  double m2 = 0.0;
  for (std::uint64_t x : xs) {
    double d = double(x) - mean;
    m2 += d * d;
  }
  return std::sqrt(m2 / n) / mean;
}

double gini_index(const std::vector<std::uint64_t>& xs) {
  if (xs.size() < 2) return 0.0;
  double sum = 0.0;
  for (std::uint64_t x : xs) sum += double(x);
  if (sum <= 0.0) return 0.0;
  // Mean absolute difference / (2 * mean); O(n log n) via the sorted form.
  std::vector<std::uint64_t> s = xs;
  std::sort(s.begin(), s.end());
  double n = double(s.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    acc += (2.0 * double(i + 1) - n - 1.0) * double(s[i]);
  }
  return acc / (n * sum);
}

namespace {

struct MonState {
  MonitorOptions opts;
  int nranks = 0;
  std::FILE* out = nullptr;
  std::function<RankState(Rank)> liveness;
  std::function<std::pair<std::uint64_t, std::uint64_t>()> growth;
  // Control-plane hooks; installed by control::start, survive
  // monitor_stop so install/arming order does not matter.
  std::function<void(const FleetSample&)> sample_hook;
  std::function<std::string(Rank)> knobs_text;
  std::vector<FleetSample> samples;
  std::mutex mu;  // guards sample emission + the series + the sink
  std::atomic<TimeNs> next_due{0};
  bool poll_driven = true;
  int live_lines = 0;
  bool tty = false;
  // Wall-clock sampler (threads backend).
  std::thread thr;
  std::mutex thr_mu;
  std::condition_variable thr_cv;
  bool thr_stop = false;
  std::chrono::steady_clock::time_point wall_start;
};

std::atomic<bool> g_mon_active{false};

MonState& mon() {
  static MonState m;
  return m;
}

void render_live(MonState& m, const FleetSample& s) {
  // Overwrite the previous block on a real terminal; append otherwise
  // (piped output then shows the full state history, which is what the
  // CI checks and the acceptance demo grep for).
  if (m.tty && m.live_lines > 0) {
    std::printf("\x1b[%dA", m.live_lines);
  }
  int lines = 0;
  char growth[48];
  growth[0] = '\0';
  if (s.joins > 0) {
    // Elastic fleets only: admitted-rank and admission-wave counts.
    std::snprintf(growth, sizeof(growth), " joins=%" PRIu64 "/%" PRIu64,
                  s.joins, s.grows);
  }
  char drops[40];
  drops[0] = '\0';
  if (s.trace_dropped > 0) {
    // Traced runs only, and only once a ring has wrapped: the headline
    // row is where event loss must be impossible to miss.
    std::snprintf(drops, sizeof(drops), " tracedrop=%" PRIu64,
                  s.trace_dropped);
  }
  std::printf("\x1b[K[monitor] t=%10.3fms alive=%d/%d suspect=%d dead=%d%s "
              "inflight=%" PRIu64 " cov=%.2f gini=%.2f steal%%=%.1f "
              "exec=%" PRIu64 "%s\n",
              double(s.t) / 1e6, s.alive, int(s.ranks.size()), s.suspects,
              s.dead, growth, s.depth_sum, s.cov, s.gini,
              100.0 * s.steal_success, s.executed, drops);
  ++lines;
  std::uint64_t maxd = 1;
  for (const RankSample& r : s.ranks) maxd = std::max(maxd, r.depth);
  for (const RankSample& r : s.ranks) {
    const char* st = r.state == RankState::Alive     ? "alive  "
                     : r.state == RankState::Suspect ? "SUSPECT"
                                                     : "DEAD   ";
    char bar[25];
    int fill = static_cast<int>((r.depth * 24) / maxd);
    for (int i = 0; i < 24; ++i) bar[i] = i < fill ? '#' : ' ';
    bar[24] = '\0';
    std::string knobs = m.knobs_text ? m.knobs_text(r.r) : std::string();
    std::printf("\x1b[K  r%-3d %s [%s] depth=%5" PRIu64 " (sh %4" PRIu64
                ") exec=%8" PRIu64 " steals=%6" PRIu64 "%s%s\n",
                r.r, st, bar, r.depth, r.shared, r.executed, r.steals,
                knobs.empty() ? "" : "  ", knobs.c_str());
    ++lines;
  }
  std::fflush(stdout);
  m.live_lines = lines;
}

void append_jsonl(MonState& m, const FleetSample& s) {
  if (m.out == nullptr) return;
  std::fprintf(m.out,
               "{\"t\":%" PRId64 ",\"nranks\":%d,\"alive\":%d,"
               "\"suspect\":%d,\"dead\":%d,\"joins\":%" PRIu64
               ",\"grows\":%" PRIu64 ",\"depth_sum\":%" PRIu64
               ",\"executed\":%" PRIu64 ",\"steal_attempts\":%" PRIu64
               ",\"steals\":%" PRIu64 ",\"tasks_stolen\":%" PRIu64
               ",\"steal_success\":%.6f,\"cov\":%.6f,\"gini\":%.6f,"
               "\"trace_dropped\":%" PRIu64 ",\"ranks\":[",
               s.t, int(s.ranks.size()), s.alive, s.suspects, s.dead,
               s.joins, s.grows,
               s.depth_sum, s.executed, s.steal_attempts, s.steals,
               s.tasks_stolen, s.steal_success, s.cov, s.gini,
               s.trace_dropped);
  for (std::size_t i = 0; i < s.ranks.size(); ++i) {
    const RankSample& r = s.ranks[i];
    std::fprintf(m.out,
                 "%s{\"r\":%d,\"state\":%d,\"depth\":%" PRIu64
                 ",\"shared\":%" PRIu64 ",\"executed\":%" PRIu64
                 ",\"steals\":%" PRIu64 ",\"stolen\":%" PRIu64
                 ",\"tdrop\":%" PRIu64 "}",
                 i ? "," : "", r.r, static_cast<int>(r.state), r.depth,
                 r.shared, r.executed, r.steals, r.stolen,
                 r.trace_dropped);
  }
  std::fprintf(m.out, "]}\n");
  std::fflush(m.out);
}

int sample_locked(MonState& m, TimeNs now) {
  FleetSample s;
  s.t = now;
  if (m.growth) {
    std::pair<std::uint64_t, std::uint64_t> jg = m.growth();
    s.joins = jg.first;
    s.grows = jg.second;
  }
  s.ranks.reserve(static_cast<std::size_t>(m.nranks));
  std::vector<std::uint64_t> alive_depths;
  int scraped = 0;
  for (Rank r = 0; r < m.nranks; ++r) {
    Snapshot snap;
    if (!scrape(r, &snap)) continue;
    ++scraped;
    RankSample rs;
    rs.r = r;
    rs.state = m.liveness ? m.liveness(r) : RankState::Alive;
    rs.depth = snap.gauge(Gauge::QueueDepth);
    rs.shared = snap.gauge(Gauge::QueueShared);
    rs.executed = snap.ctr(Ctr::TasksExecuted);
    rs.steals = snap.ctr(Ctr::Steals);
    rs.stolen = snap.ctr(Ctr::TasksStolen);
    // Ring drops come from the trace plane, not the metric patch: the
    // sink counter is rank-owned and monotone, so this read is as safe
    // as the seqlock scrape (and exactly 0 without a trace session).
    rs.trace_dropped = trace::dropped(r);
    s.trace_dropped += rs.trace_dropped;
    s.executed += rs.executed;
    s.steal_attempts += snap.ctr(Ctr::StealAttempts);
    s.steals += rs.steals;
    s.tasks_stolen += rs.stolen;
    switch (rs.state) {
      case RankState::Alive:
        ++s.alive;
        s.depth_sum += rs.depth;
        alive_depths.push_back(rs.depth);
        break;
      case RankState::Suspect:
        ++s.suspects;
        s.depth_sum += rs.depth;
        alive_depths.push_back(rs.depth);
        break;
      case RankState::Dead:
        ++s.dead;
        break;
    }
    s.ranks.push_back(rs);
  }
  s.cov = cov_index(alive_depths);
  s.gini = gini_index(alive_depths);
  s.steal_success =
      s.steal_attempts ? double(s.steals) / double(s.steal_attempts) : 0.0;
  if (m.sample_hook) m.sample_hook(s);
  append_jsonl(m, s);
  if (m.opts.live) render_live(m, s);
  m.samples.push_back(std::move(s));
  return scraped;
}

}  // namespace

bool monitor_active() {
  return g_mon_active.load(std::memory_order_relaxed);
}

void monitor_start(int nranks, const MonitorOptions& opts) {
  SCIOTO_REQUIRE(!monitor_active(), "monitor already active");
  SCIOTO_REQUIRE(metrics::active(),
                 "monitor_start needs an active metrics session");
  MonState& m = mon();
  m.opts = opts;
  if (m.opts.period <= 0) m.opts.period = 100'000;
  m.nranks = nranks;
  m.samples.clear();
  m.next_due = 0;
  m.poll_driven = !opts.wall_thread;
  m.live_lines = 0;
  m.tty = isatty(STDOUT_FILENO) != 0;
  m.out = nullptr;
  if (!opts.out_path.empty()) {
    m.out = std::fopen(opts.out_path.c_str(), "w");
    if (m.out == nullptr) {
      // Same convention as an unwritable trace sink: warn and keep the
      // run (and the in-memory series) going.
      SCIOTO_WARN("cannot open SCIOTO_METRICS_OUT file " << opts.out_path);
    }
  }
  m.thr_stop = false;
  m.wall_start = std::chrono::steady_clock::now();
  g_mon_active.store(true, std::memory_order_release);
  if (opts.wall_thread) {
    m.thr = std::thread([&m] {
      std::unique_lock<std::mutex> lk(m.thr_mu);
      for (;;) {
        m.thr_cv.wait_for(lk, std::chrono::nanoseconds(m.opts.period),
                          [&m] { return m.thr_stop; });
        if (m.thr_stop) return;
        auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - m.wall_start)
                       .count();
        monitor_sample(now);
      }
    });
  }
}

void monitor_stop() {
  if (!monitor_active()) return;
  MonState& m = mon();
  if (m.thr.joinable()) {
    {
      std::lock_guard<std::mutex> lk(m.thr_mu);
      m.thr_stop = true;
    }
    m.thr_cv.notify_all();
    m.thr.join();
  }
  g_mon_active.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lk(m.mu);
  if (m.out != nullptr) {
    std::fclose(m.out);
    m.out = nullptr;
  }
  m.liveness = nullptr;
  m.growth = nullptr;
}

void monitor_set_liveness(std::function<RankState(Rank)> fn) {
  std::lock_guard<std::mutex> lk(mon().mu);
  mon().liveness = std::move(fn);
}

void monitor_set_growth(
    std::function<std::pair<std::uint64_t, std::uint64_t>()> fn) {
  std::lock_guard<std::mutex> lk(mon().mu);
  mon().growth = std::move(fn);
}

void monitor_set_sample_hook(std::function<void(const FleetSample&)> fn) {
  std::lock_guard<std::mutex> lk(mon().mu);
  mon().sample_hook = std::move(fn);
}

void monitor_set_knobs_text(std::function<std::string(Rank)> fn) {
  std::lock_guard<std::mutex> lk(mon().mu);
  mon().knobs_text = std::move(fn);
}

void monitor_poll(Rank me, TimeNs now) {
  (void)me;
  if (!monitor_active()) return;
  MonState& m = mon();
  if (!m.poll_driven) return;
  // First rank past the deadline takes the sample -- the closest poll-
  // driven emulation of an out-of-band monitor, whose cadence must not
  // depend on any single rank's scheduling (a designated sampler buried
  // in a long task would blind the fleet exactly when one rank hogging
  // the work is the thing worth sampling). Deterministic under sim: the
  // cooperative fiber schedule fixes which rank crosses the deadline
  // first. The common miss path is one relaxed load, no lock.
  if (now < m.next_due.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lk(m.mu);
  if (now < m.next_due.load(std::memory_order_relaxed)) return;
  sample_locked(m, now);
  m.next_due.store(now + m.opts.period, std::memory_order_relaxed);
}

int monitor_sample(TimeNs now) {
  if (!monitor_active()) return 0;
  MonState& m = mon();
  std::lock_guard<std::mutex> lk(m.mu);
  return sample_locked(m, now);
}

const std::vector<FleetSample>& monitor_samples() {
  return mon().samples;
}

}  // namespace scioto::metrics
