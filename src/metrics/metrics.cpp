#include "metrics/metrics.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "base/error.hpp"

namespace scioto::metrics {

const char* ctr_name(Ctr c) {
  switch (c) {
    case Ctr::TasksExecuted:    return "tasks_executed";
    case Ctr::TasksSpawned:     return "tasks_spawned";
    case Ctr::RemoteSpawns:     return "remote_spawns";
    case Ctr::QPushes:          return "q_pushes";
    case Ctr::QPops:            return "q_pops";
    case Ctr::QReleases:        return "q_releases";
    case Ctr::QReleasedTasks:   return "q_released_tasks";
    case Ctr::QReacquires:      return "q_reacquires";
    case Ctr::QReacquiredTasks: return "q_reacquired_tasks";
    case Ctr::StealAttempts:    return "steal_attempts";
    case Ctr::Steals:           return "steals";
    case Ctr::StealFails:       return "steal_fails";
    case Ctr::TasksStolen:      return "tasks_stolen";
    case Ctr::TdVotes:          return "td_votes";
    case Ctr::TdBlackVotes:     return "td_black_votes";
    case Ctr::TdWaves:          return "td_waves";
    case Ctr::Probes:           return "probes";
    case Ctr::Heartbeats:       return "heartbeats";
    case Ctr::Suspects:         return "suspects";
    case Ctr::Refutes:          return "refutes";
    case Ctr::Confirms:         return "confirms";
    case Ctr::OpRetries:        return "op_retries";
    case Ctr::TasksRecovered:   return "tasks_recovered";
    case Ctr::PgasGets:         return "pgas_gets";
    case Ctr::PgasPuts:         return "pgas_puts";
    case Ctr::PgasAccs:         return "pgas_accs";
    case Ctr::PgasRmws:         return "pgas_rmws";
    case Ctr::PgasGetBytes:     return "pgas_get_bytes";
    case Ctr::PgasPutBytes:     return "pgas_put_bytes";
    case Ctr::DagNodesRun:      return "dag_nodes_run";
    case Ctr::DagNodesFired:    return "dag_nodes_fired";
    case Ctr::DagConflictRetries: return "dag_conflict_retries";
    case Ctr::DagVersionWaits:  return "dag_version_waits";
    case Ctr::DagRemoteFires:   return "dag_remote_fires";
    case Ctr::StealLockBusy:    return "steal_lock_busy";
    case Ctr::CtlEpochs:        return "ctl_epochs";
    case Ctr::CtlDecisions:     return "ctl_decisions";
    case Ctr::CtlInherits:      return "ctl_inherits";
    case Ctr::kCount:           break;
  }
  return "?";
}

const char* gauge_name(Gauge g) {
  switch (g) {
    case Gauge::QueueDepth:   return "queue_depth";
    case Gauge::QueueShared:  return "queue_shared";
    case Gauge::QueueSplit:   return "queue_split";
    case Gauge::AliveView:    return "alive_view";
    case Gauge::SuspectsView: return "suspects_view";
    case Gauge::DagParked:    return "dag_parked";
    case Gauge::DagDepthMax:  return "dag_depth_max";
    case Gauge::CtlChunk:     return "ctl_chunk";
    case Gauge::CtlStealHalf: return "ctl_steal_half";
    case Gauge::CtlRelease:   return "ctl_release";
    case Gauge::CtlRetarget:  return "ctl_retarget";
    case Gauge::CtlVictimSet: return "ctl_victim_set";
    case Gauge::kCount:       break;
  }
  return "?";
}

const char* hist_name(Hist h) {
  switch (h) {
    case Hist::TaskExecNs:  return "task_exec_ns";
    case Hist::SearchNs:    return "search_ns";
    case Hist::PushNs:      return "push_ns";
    case Hist::PopNs:       return "pop_ns";
    case Hist::StealNs:     return "steal_ns";
    case Hist::WaveNs:      return "wave_ns";
    case Hist::ProbeRttNs:  return "probe_rtt_ns";
    case Hist::DagNodeDepth: return "dag_node_depth";
    case Hist::kCount:      break;
  }
  return "?";
}

namespace {

// Patches are padded to a cache-line multiple so ranks never false-share.
constexpr std::size_t kPatchStride =
    (static_cast<std::size_t>(kPatchWords) * 8 + 63) / 64 * 64 / 8;

struct Session {
  std::vector<std::uint64_t> words;  // nranks * kPatchStride, zeroed
  int nranks = 0;
};

std::atomic<bool> g_active{false};
Session g_session;

std::mutex g_cfg_mu;
Config g_cfg;

inline std::uint64_t* patch(Rank r) {
  return g_session.words.data() + static_cast<std::size_t>(r) * kPatchStride;
}

inline bool in_session(Rank r) {
  return g_active.load(std::memory_order_relaxed) && r >= 0 &&
         r < g_session.nranks;
}

// Seqlock write side. Each rank is the sole writer of its own patch, so
// the sequence word needs no RMW: load, bump to odd, store the payload
// with relaxed atomics, bump back to even with release ordering.
inline void wr_begin(std::uint64_t* p) {
  std::atomic_ref<std::uint64_t> seq(p[0]);
  seq.store(seq.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}

inline void wr_end(std::uint64_t* p) {
  std::atomic_ref<std::uint64_t> seq(p[0]);
  seq.store(seq.load(std::memory_order_relaxed) + 1,
            std::memory_order_release);
}

inline void slot_store(std::uint64_t* p, std::size_t i, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(p[i]).store(v, std::memory_order_relaxed);
}

inline std::uint64_t slot_load(const std::uint64_t* p, std::size_t i) {
  return std::atomic_ref<const std::uint64_t>(p[i]).load(
      std::memory_order_relaxed);
}

constexpr std::size_t kCtrBase = 1;
constexpr std::size_t kGaugeBase = kCtrBase + kNumCtrs;
constexpr std::size_t kHistBase = kGaugeBase + kNumGauges;

inline std::size_t hist_word(Hist h, int field) {
  return kHistBase +
         static_cast<std::size_t>(static_cast<int>(h)) * kHistWords +
         static_cast<std::size_t>(field);
}

}  // namespace

bool active() { return g_active.load(std::memory_order_relaxed); }

void start(int nranks) {
  SCIOTO_REQUIRE(!active(), "metrics session already active");
  SCIOTO_REQUIRE(nranks >= 1, "metrics session needs >= 1 rank");
  g_session.words.assign(static_cast<std::size_t>(nranks) * kPatchStride, 0);
  g_session.nranks = nranks;
  g_active.store(true, std::memory_order_release);
}

void stop() {
  g_active.store(false, std::memory_order_release);
  g_session.words.clear();
  g_session.words.shrink_to_fit();
  g_session.nranks = 0;
}

int session_nranks() { return active() ? g_session.nranks : 0; }

void counter_add(Rank r, Ctr c, std::uint64_t delta) {
  if (!in_session(r)) return;
  std::uint64_t* p = patch(r);
  std::size_t i = kCtrBase + static_cast<std::size_t>(static_cast<int>(c));
  wr_begin(p);
  slot_store(p, i, slot_load(p, i) + delta);
  wr_end(p);
}

void gauge_set(Rank r, Gauge g, std::uint64_t v) {
  if (!in_session(r)) return;
  std::uint64_t* p = patch(r);
  wr_begin(p);
  slot_store(p, kGaugeBase + static_cast<std::size_t>(static_cast<int>(g)),
             v);
  wr_end(p);
}

void hist_record(Rank r, Hist h, std::uint64_t v) {
  if (!in_session(r)) return;
  std::uint64_t* p = patch(r);
  int b = stats::log2_bucket(v, kHistBuckets);
  std::size_t cnt = hist_word(h, 0);
  std::size_t sum = hist_word(h, 1);
  std::size_t mx = hist_word(h, 2);
  std::size_t bkt = hist_word(h, 3 + b);
  wr_begin(p);
  slot_store(p, cnt, slot_load(p, cnt) + 1);
  slot_store(p, sum, slot_load(p, sum) + v);
  if (v > slot_load(p, mx)) slot_store(p, mx, v);
  slot_store(p, bkt, slot_load(p, bkt) + 1);
  wr_end(p);
}

std::uint64_t own_ctr(Rank r, Ctr c) {
  if (!in_session(r)) return 0;
  return slot_load(patch(r),
                   kCtrBase + static_cast<std::size_t>(static_cast<int>(c)));
}

std::uint64_t own_gauge(Rank r, Gauge g) {
  if (!in_session(r)) return 0;
  return slot_load(patch(r),
                   kGaugeBase + static_cast<std::size_t>(static_cast<int>(g)));
}

bool scrape(Rank r, Snapshot* out, int max_retries) {
  if (!in_session(r)) return false;
  const std::uint64_t* p = patch(r);
  std::atomic_ref<const std::uint64_t> seq(p[0]);
  std::uint64_t copy[kPatchWords];
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    std::uint64_t s1 = seq.load(std::memory_order_acquire);
    if (s1 & 1) continue;  // owner mid-update
    for (std::size_t i = 1; i < kPatchWords; ++i) {
      copy[i] = slot_load(p, i);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    std::uint64_t s2 = seq.load(std::memory_order_relaxed);
    if (s1 != s2) continue;  // torn: the owner wrote underneath us
    out->seq = s1;
    std::memcpy(out->counters, &copy[kCtrBase], sizeof(out->counters));
    std::memcpy(out->gauges, &copy[kGaugeBase], sizeof(out->gauges));
    for (int h = 0; h < kNumHists; ++h) {
      HistSnap& hs = out->hists[h];
      const std::uint64_t* w = &copy[hist_word(static_cast<Hist>(h), 0)];
      hs.count = w[0];
      hs.sum = w[1];
      hs.max = w[2];
      std::memcpy(hs.buckets, &w[3], sizeof(hs.buckets));
    }
    return true;
  }
  return false;
}

bool read_metric(const Snapshot& snap, const std::string& name,
                 std::uint64_t* out) {
  for (int c = 0; c < kNumCtrs; ++c) {
    if (name == ctr_name(static_cast<Ctr>(c))) {
      *out = snap.counters[c];
      return true;
    }
  }
  for (int g = 0; g < kNumGauges; ++g) {
    if (name == gauge_name(static_cast<Gauge>(g))) {
      *out = snap.gauges[g];
      return true;
    }
  }
  for (int h = 0; h < kNumHists; ++h) {
    std::string base = hist_name(static_cast<Hist>(h));
    if (name.rfind(base, 0) != 0 || name.size() <= base.size()) continue;
    const HistSnap& hs = snap.hists[h];
    std::string suffix = name.substr(base.size());
    if (suffix == "_count") { *out = hs.count; return true; }
    if (suffix == "_sum")   { *out = hs.sum; return true; }
    if (suffix == "_max")   { *out = hs.max; return true; }
    if (suffix == "_mean")  { *out = static_cast<std::uint64_t>(hs.mean());
                              return true; }
    if (suffix == "_p50")   { *out = hs.percentile(50); return true; }
    if (suffix == "_p95")   { *out = hs.percentile(95); return true; }
    if (suffix == "_p99")   { *out = hs.percentile(99); return true; }
  }
  return false;
}

std::string prometheus_text() {
  if (!active()) return {};
  int n = session_nranks();
  std::vector<Snapshot> snaps(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    scrape(r, &snaps[static_cast<std::size_t>(r)]);
  }
  std::string out;
  out.reserve(1 << 16);
  char line[256];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  for (int c = 0; c < kNumCtrs; ++c) {
    const char* nm = ctr_name(static_cast<Ctr>(c));
    emit("# TYPE scioto_%s counter\n", nm);
    for (int r = 0; r < n; ++r) {
      emit("scioto_%s{rank=\"%d\"} %" PRIu64 "\n", nm, r,
           snaps[static_cast<std::size_t>(r)].counters[c]);
    }
  }
  for (int g = 0; g < kNumGauges; ++g) {
    const char* nm = gauge_name(static_cast<Gauge>(g));
    emit("# TYPE scioto_%s gauge\n", nm);
    for (int r = 0; r < n; ++r) {
      emit("scioto_%s{rank=\"%d\"} %" PRIu64 "\n", nm, r,
           snaps[static_cast<std::size_t>(r)].gauges[g]);
    }
  }
  for (int h = 0; h < kNumHists; ++h) {
    const char* nm = hist_name(static_cast<Hist>(h));
    emit("# TYPE scioto_%s summary\n", nm);
    for (int r = 0; r < n; ++r) {
      const HistSnap& hs = snaps[static_cast<std::size_t>(r)].hists[h];
      emit("scioto_%s{rank=\"%d\",quantile=\"0.5\"} %" PRIu64 "\n", nm, r,
           hs.percentile(50));
      emit("scioto_%s{rank=\"%d\",quantile=\"0.95\"} %" PRIu64 "\n", nm, r,
           hs.percentile(95));
      emit("scioto_%s{rank=\"%d\",quantile=\"0.99\"} %" PRIu64 "\n", nm, r,
           hs.percentile(99));
      emit("scioto_%s_count{rank=\"%d\"} %" PRIu64 "\n", nm, r, hs.count);
      emit("scioto_%s_sum{rank=\"%d\"} %" PRIu64 "\n", nm, r, hs.sum);
      emit("scioto_%s_max{rank=\"%d\"} %" PRIu64 "\n", nm, r, hs.max);
    }
  }
  return out;
}

Config config() {
  std::lock_guard<std::mutex> lk(g_cfg_mu);
  return g_cfg;
}

void set_config(const Config& cfg) {
  std::lock_guard<std::mutex> lk(g_cfg_mu);
  g_cfg = cfg;
}

}  // namespace scioto::metrics
