// Chrome trace-event JSON export of the active trace session.
//
// The output is the "JSON object format" understood by Perfetto and
// chrome://tracing: a top-level object with a `traceEvents` array plus
// metadata. Mapping:
//
//   * one track per rank (pid = rank, with a process_name metadata event
//     naming it "rank N");
//   * task executions and tc_process phases are duration pairs (ph B/E);
//   * coalesced search spells are complete events (ph X) spanning their
//     accumulated duration;
//   * queue push/pop/release/reacquire double as counter samples (ph C,
//     counter "queue") so Perfetto draws the queue-occupancy timeline;
//   * everything else (steals, tokens, votes, pgas ops, barriers) exports
//     as thread-scoped instant events (ph i) with payloads in args.
//
// Timestamps are microseconds (the format's unit) with nanosecond
// precision; under the sim backend they are virtual time, making exports
// bit-reproducible across runs with the same seed.
#pragma once

#include <iosfwd>
#include <string>

namespace scioto::trace {

/// Serializes the active session to `os`. Safe to call with no active
/// session (writes an empty but valid trace).
void write_chrome_trace(std::ostream& os);

/// Serializes the active session to a string (used by the determinism and
/// schema tests).
std::string chrome_trace_json();

/// Writes the active session to `path`; returns false (with a warning
/// logged) if the file cannot be opened.
bool write_chrome_trace_file(const std::string& path);

}  // namespace scioto::trace
