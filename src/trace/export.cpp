#include "trace/export.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include "base/error.hpp"
#include "base/log.hpp"
#include "trace/trace.hpp"

namespace scioto::trace {

namespace {

/// Streams a JSON string body with the characters the format reserves
/// escaped (quote, backslash, control bytes). Event names are compile-time
/// constants today, but the exporter must not rely on that: a name with a
/// quote in it would otherwise silently corrupt the whole trace file.
void write_json_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char ch = static_cast<unsigned char>(*s);
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (ch < 0x20) {
          static const char* kHex = "0123456789abcdef";
          os << "\\u00" << kHex[ch >> 4] << kHex[ch & 0xf];
        } else {
          os << static_cast<char>(ch);
        }
    }
  }
}

/// Nanoseconds -> the format's microsecond unit, printed as a fixed-point
/// decimal (no floating-point formatting, so output is bit-deterministic).
std::string fmt_us(TimeNs t_ns) {
  bool neg = t_ns < 0;
  if (neg) t_ns = -t_ns;
  std::ostringstream os;
  if (neg) os << '-';
  os << (t_ns / 1000) << '.';
  std::int64_t frac = t_ns % 1000;
  os << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10);
  return os.str();
}

const char* ev_category(Ev kind) {
  switch (kind) {
    case Ev::TaskBegin:
    case Ev::TaskEnd:
      return "task";
    case Ev::Push:
    case Ev::Pop:
    case Ev::Release:
    case Ev::Reacquire:
      return "queue";
    case Ev::StealAttempt:
    case Ev::StealOk:
    case Ev::StealFail:
    case Ev::RemoteAdd:
      return "steal";
    case Ev::TokenSend:
    case Ev::Vote:
    case Ev::WaveStart:
    case Ev::Terminate:
      return "td";
    case Ev::PgasPut:
    case Ev::PgasGet:
    case Ev::PgasAcc:
    case Ev::PgasRmw:
      return "pgas";
    case Ev::Barrier:
      return "sync";
    case Ev::Search:
    case Ev::PhaseBegin:
    case Ev::PhaseEnd:
      return "sched";
    case Ev::FaultInjected:
    case Ev::StealAborted:
    case Ev::TaskRecovered:
    case Ev::TreeRespliced:
      return "fault";
    case Ev::StealBusy:
    case Ev::StealRetarget:
      return "steal";
    case Ev::ReacquireFast:
      return "queue";
    case Ev::Suspect:
    case Ev::Refute:
    case Ev::ConfirmDead:
    case Ev::FenceAbort:
      return "detect";
    case Ev::NodeReady:
    case Ev::NodeRun:
    case Ev::ConflictRetry:
      return "dag";
    case Ev::KnobChange:
      return "control";
    case Ev::JoinRequest:
    case Ev::JoinAdmit:
    case Ev::Quiesce:
    case Ev::Checkpoint:
    case Ev::Restore:
      return "elastic";
    case Ev::SpawnEdge:
    case Ev::MigrateEdge:
    case Ev::ExecSpan:
      return "lineage";
  }
  return "?";
}

/// Common prefix: {"name":"...","cat":"...","ph":"X","ts":...,"pid":R,"tid":0
void emit_head(std::ostream& os, const Event& e, const char* name,
               const char* ph, TimeNs ts_ns) {
  os << "{\"name\":\"";
  write_json_escaped(os, name);
  os << "\",\"cat\":\"" << ev_category(e.kind) << "\",\"ph\":\"" << ph
     << "\",\"ts\":" << fmt_us(ts_ns) << ",\"pid\":" << e.rank
     << ",\"tid\":0";
}

void emit_event(std::ostream& os, const Event& e) {
  switch (e.kind) {
    case Ev::TaskBegin:
      emit_head(os, e, ev_name(e.kind), "B", e.t);
      os << ",\"args\":{\"callback\":" << e.a << ",\"affinity\":" << e.b
         << "}}";
      return;
    case Ev::TaskEnd:
      emit_head(os, e, ev_name(e.kind), "E", e.t);
      os << ",\"args\":{\"callback\":" << e.a << "}}";
      return;
    case Ev::PhaseBegin:
      emit_head(os, e, ev_name(e.kind), "B", e.t);
      os << ",\"args\":{}}";
      return;
    case Ev::PhaseEnd:
      emit_head(os, e, ev_name(e.kind), "E", e.t);
      os << ",\"args\":{\"dur_ns\":" << e.c << "}}";
      return;
    case Ev::Search:
      // One coalesced idle/steal/TD-poll spell, drawn over its duration.
      emit_head(os, e, ev_name(e.kind), "X", e.t - e.c);
      os << ",\"dur\":" << fmt_us(e.c) << ",\"args\":{}}";
      return;
    case Ev::Push:
    case Ev::Pop:
    case Ev::Release:
    case Ev::Reacquire:
      // Queue ops double as occupancy counter samples; the op itself and
      // its magnitude ride along in args.
      emit_head(os, e, "queue", "C", e.t);
      os << ",\"args\":{\"tasks\":" << e.c << "}}";
      return;
    case Ev::StealAttempt:
    case Ev::StealFail:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"victim\":" << e.a << "}}";
      return;
    case Ev::StealOk:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"victim\":" << e.a
         << ",\"tasks\":" << e.b << "}}";
      return;
    case Ev::RemoteAdd:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"target\":" << e.a << "}}";
      return;
    case Ev::TokenSend: {
      static const char* kFields[] = {"down", "up", "term", "dirty"};
      const char* field =
          (e.b >= 0 && e.b < 4) ? kFields[e.b] : "?";
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"target\":" << e.a << ",\"field\":\""
         << field << "\"}}";
      return;
    }
    case Ev::Vote:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"wave\":" << e.a
         << ",\"black\":" << e.b << "}}";
      return;
    case Ev::WaveStart:
    case Ev::Terminate:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"wave\":" << e.a << "}}";
      return;
    case Ev::PgasPut:
    case Ev::PgasGet:
    case Ev::PgasAcc:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"target\":" << e.a
         << ",\"bytes\":" << e.c << "}}";
      return;
    case Ev::PgasRmw:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"target\":" << e.a << "}}";
      return;
    case Ev::Barrier:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{}}";
      return;
    case Ev::FaultInjected:
      // Process-scope instant: a fault is a machine event, not a rank op.
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"p\",\"args\":{\"fault\":" << e.a
         << ",\"target\":" << e.b << ",\"param\":" << e.c << "}}";
      return;
    case Ev::StealAborted:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"victim\":" << e.a
         << ",\"reason\":" << e.b << "}}";
      return;
    case Ev::TaskRecovered:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"source\":" << e.a
         << ",\"tasks\":" << e.b << ",\"dur_ns\":" << e.c << "}}";
      return;
    case Ev::TreeRespliced:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"epoch\":" << e.a
         << ",\"alive\":" << e.b << "}}";
      return;
    case Ev::StealBusy:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"victim\":" << e.a << "}}";
      return;
    case Ev::StealRetarget:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"busy_victim\":" << e.a
         << ",\"new_victim\":" << e.b << ",\"backoff_ns\":" << e.c
         << "}}";
      return;
    case Ev::ReacquireFast:
      emit_head(os, e, "queue", "C", e.t);
      os << ",\"args\":{\"tasks\":" << e.c << "}}";
      return;
    case Ev::Suspect:
    case Ev::ConfirmDead:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"rank\":" << e.a
         << ",\"silence_ns\":" << e.c << "}}";
      return;
    case Ev::Refute:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"rank\":" << e.a << "}}";
      return;
    case Ev::FenceAbort:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"adopter\":" << e.a
         << ",\"epoch\":" << e.b << "}}";
      return;
    case Ev::NodeReady:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"node\":" << e.a
         << ",\"home\":" << e.b << ",\"depth\":" << e.c << "}}";
      return;
    case Ev::NodeRun:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"node\":" << e.a
         << ",\"group\":" << e.b << ",\"depth\":" << e.c << "}}";
      return;
    case Ev::ConflictRetry:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"node\":" << e.a
         << ",\"reason\":\"" << (e.b == 1 ? "version" : "lock")
         << "\",\"group\":" << e.c << "}}";
      return;
    case Ev::KnobChange:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"knob\":" << e.a
         << ",\"value\":" << e.b << ",\"reason\":" << e.c << "}}";
      return;
    case Ev::JoinRequest:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"rank\":" << e.a << "}}";
      return;
    case Ev::JoinAdmit:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"joiner\":" << e.a
         << ",\"admitter\":" << e.b << ",\"epoch\":" << e.c << "}}";
      return;
    case Ev::Quiesce:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"gen\":" << e.a
         << ",\"participants\":" << e.b << ",\"dur_ns\":" << e.c << "}}";
      return;
    case Ev::Checkpoint:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"gen\":" << e.a
         << ",\"tasks\":" << e.b << ",\"bytes\":" << e.c << "}}";
      return;
    case Ev::Restore:
      emit_head(os, e, ev_name(e.kind), "i", e.t);
      os << ",\"s\":\"t\",\"args\":{\"parts\":" << e.a
         << ",\"tasks\":" << e.b << ",\"bytes\":" << e.c << "}}";
      return;
    // Causal lineage maps onto the format's *flow events*: one flow per
    // task id, started ("s") on the spawning rank, stepped ("t") at each
    // migration landing, finished ("f") on the executing rank, bound to
    // the enclosing task slice (bp:"e") -- Perfetto then draws the
    // spawn -> steal -> exec arrows across rank tracks. All three phases
    // must share the same name and id: the id is the join key.
    case Ev::SpawnEdge: {
      const std::uint64_t parent =
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.a))
              << 32 |
          static_cast<std::uint32_t>(e.b);
      emit_head(os, e, "task_flow", "s", e.t);
      os << ",\"id\":" << e.c << ",\"args\":{\"parent\":" << parent
         << "}}";
      return;
    }
    case Ev::MigrateEdge:
      emit_head(os, e, "task_flow", "t", e.t);
      os << ",\"id\":" << e.c << ",\"args\":{\"victim\":" << e.a
         << ",\"hops\":" << e.b << "}}";
      return;
    case Ev::ExecSpan:
      emit_head(os, e, "task_flow", "f", e.t);
      os << ",\"id\":" << e.c << ",\"bp\":\"e\",\"args\":{\"hops\":" << e.a
         << ",\"callback\":" << e.b << "}}";
      return;
  }
  // A kind the switch does not know would otherwise emit *nothing*,
  // leaving the caller's separator dangling and the whole file invalid
  // JSON -- the silent failure mode each appended-event PR had to patch
  // reactively. Fail by name instead.
  SCIOTO_REQUIRE(false, "chrome trace exporter: unknown event kind "
                            << static_cast<int>(e.kind)
                            << " (trace::Ev grew without an exporter case)");
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  const int nranks = session_nranks();
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":"
     << total_dropped() << ",\"ranks\":" << nranks << "},\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (Rank r = 0; r < nranks; ++r) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << r
       << ",\"args\":{\"name\":\"rank " << r << "\"}}";
  }
  for (Rank r = 0; r < nranks; ++r) {
    for (const Event& e : events(r)) {
      sep();
      emit_event(os, e);
    }
  }
  os << "]}\n";
}

std::string chrome_trace_json() {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    SCIOTO_WARN("cannot open trace output file " << path);
    return false;
  }
  write_chrome_trace(f);
  return f.good();
}

}  // namespace scioto::trace
