#include "trace/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "base/error.hpp"
#include "sim/engine.hpp"

namespace scioto::trace {

const char* ev_name(Ev kind) {
  switch (kind) {
    case Ev::TaskBegin:
      return "task";
    case Ev::TaskEnd:
      return "task";
    case Ev::Push:
      return "push";
    case Ev::Pop:
      return "pop";
    case Ev::Release:
      return "release";
    case Ev::Reacquire:
      return "reacquire";
    case Ev::StealAttempt:
      return "steal_attempt";
    case Ev::StealOk:
      return "steal";
    case Ev::StealFail:
      return "steal_fail";
    case Ev::RemoteAdd:
      return "remote_add";
    case Ev::TokenSend:
      return "token";
    case Ev::Vote:
      return "vote";
    case Ev::WaveStart:
      return "wave";
    case Ev::Terminate:
      return "terminate";
    case Ev::PgasPut:
      return "put";
    case Ev::PgasGet:
      return "get";
    case Ev::PgasAcc:
      return "acc";
    case Ev::PgasRmw:
      return "rmw";
    case Ev::Barrier:
      return "barrier";
    case Ev::Search:
      return "search";
    case Ev::PhaseBegin:
      return "tc_process";
    case Ev::PhaseEnd:
      return "tc_process";
    case Ev::FaultInjected:
      return "fault_injected";
    case Ev::StealAborted:
      return "steal_aborted";
    case Ev::TaskRecovered:
      return "task_recovered";
    case Ev::TreeRespliced:
      return "tree_respliced";
    case Ev::StealBusy:
      return "steal_busy";
    case Ev::StealRetarget:
      return "steal_retarget";
    case Ev::ReacquireFast:
      return "reacquire_fast";
    case Ev::Suspect:
      return "suspect";
    case Ev::Refute:
      return "refute";
    case Ev::ConfirmDead:
      return "confirm_dead";
    case Ev::FenceAbort:
      return "fence_abort";
    case Ev::NodeReady:
      return "node_ready";
    case Ev::NodeRun:
      return "node_run";
    case Ev::ConflictRetry:
      return "conflict_retry";
    case Ev::KnobChange:
      return "knob_change";
    case Ev::JoinRequest:
      return "join_request";
    case Ev::JoinAdmit:
      return "join_admit";
    case Ev::Quiesce:
      return "quiesce";
    case Ev::Checkpoint:
      return "checkpoint";
    case Ev::Restore:
      return "restore";
    case Ev::SpawnEdge:
      return "spawn_edge";
    case Ev::MigrateEdge:
      return "migrate_edge";
    case Ev::ExecSpan:
      return "exec_span";
  }
  return "?";
}

Sink::Sink(std::size_t capacity)
    : capacity_(capacity), buf_(std::max<std::size_t>(capacity, 1)) {
  SCIOTO_REQUIRE(capacity >= 1, "trace sink capacity must be >= 1");
}

std::size_t Sink::size() const {
  return static_cast<std::size_t>(std::min(count_, capacity_));
}

std::uint64_t Sink::dropped() const {
  return count_ > capacity_ ? count_ - capacity_ : 0;
}

std::vector<Event> Sink::snapshot() const {
  std::vector<Event> out;
  out.reserve(size());
  std::uint64_t first = count_ > capacity_ ? count_ - capacity_ : 0;
  for (std::uint64_t i = first; i < count_; ++i) {
    out.push_back(buf_[static_cast<std::size_t>(i % capacity_)]);
  }
  return out;
}

void Sink::clear() { count_ = 0; }

namespace {

struct Session {
  std::vector<std::unique_ptr<Sink>> sinks;
  std::chrono::steady_clock::time_point wall_start;
};

// The active flag is separate from the session storage so that record()'s
// fast path is a single relaxed load; start/stop only happen outside the
// SPMD region, so no rank can be mid-record across a transition.
std::atomic<bool> g_active{false};
Session g_session;

}  // namespace

bool active() { return g_active.load(std::memory_order_relaxed); }

std::size_t default_capacity() {
  if (const char* env = std::getenv("SCIOTO_TRACE_CAP")) {
    long long v = std::atoll(env);
    if (v >= 1) {
      return static_cast<std::size_t>(v);
    }
  }
  return static_cast<std::size_t>(1) << 15;
}

void start(int nranks, std::size_t capacity_per_rank) {
  SCIOTO_REQUIRE(!active(), "trace session already active");
  SCIOTO_REQUIRE(nranks >= 1, "trace session needs >= 1 rank");
  if (capacity_per_rank == 0) {
    capacity_per_rank = default_capacity();
  }
  g_session.sinks.clear();
  g_session.sinks.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    g_session.sinks.push_back(std::make_unique<Sink>(capacity_per_rank));
  }
  g_session.wall_start = std::chrono::steady_clock::now();
  g_active.store(true, std::memory_order_release);
}

void stop() {
  g_active.store(false, std::memory_order_release);
  g_session.sinks.clear();
}

TimeNs clock_now() {
  TimeNs vt = sim::current_virtual_time();
  if (vt >= 0) {
    return vt;
  }
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - g_session.wall_start)
      .count();
}

int session_nranks() {
  return active() ? static_cast<int>(g_session.sinks.size()) : 0;
}

void record(Rank rank, Ev kind, std::int32_t a, std::int32_t b,
            std::int64_t c) {
  if (!active() || rank < 0 ||
      rank >= static_cast<Rank>(g_session.sinks.size())) {
    return;
  }
  Event e;
  e.t = clock_now();
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.c = c;
  e.rank = rank;
  g_session.sinks[static_cast<std::size_t>(rank)]->record(e);
}

std::vector<Event> events(Rank rank) {
  if (!active() || rank < 0 ||
      rank >= static_cast<Rank>(g_session.sinks.size())) {
    return {};
  }
  return g_session.sinks[static_cast<std::size_t>(rank)]->snapshot();
}

std::vector<Event> all_events() {
  // Merge per-rank streams by (time, rank). Each stream is already in
  // recording order, so a stable sort keyed on (time, rank) preserves the
  // per-rank sequence and gives a deterministic global order.
  std::vector<Event> out;
  for (int r = 0; r < session_nranks(); ++r) {
    std::vector<Event> evs = events(r);
    out.insert(out.end(), evs.begin(), evs.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& x, const Event& y) {
                     if (x.t != y.t) return x.t < y.t;
                     return x.rank < y.rank;
                   });
  return out;
}

std::uint64_t dropped(Rank rank) {
  if (!active() || rank < 0 ||
      rank >= static_cast<Rank>(g_session.sinks.size())) {
    return 0;
  }
  return g_session.sinks[static_cast<std::size_t>(rank)]->dropped();
}

std::uint64_t total_dropped() {
  std::uint64_t n = 0;
  for (int r = 0; r < session_nranks(); ++r) {
    n += g_session.sinks[static_cast<std::size_t>(r)]->dropped();
  }
  return n;
}

}  // namespace scioto::trace
