#include "trace/lineage.hpp"

#include <atomic>
#include <vector>

#include "base/error.hpp"

namespace scioto::trace::lineage {

namespace {

// Per-rank mutable state, cacheline-padded: under the threads backend
// every rank is a thread and touches only its own slot (next_id from its
// spawn path, current from its execute path), so plain loads/stores are
// race-free -- the same ownership discipline as the metrics patches.
struct alignas(64) PerRank {
  std::uint64_t next_seq = 0;
  std::uint64_t current = 0;
};

struct Session {
  std::vector<PerRank> ranks;
};

std::atomic<bool> g_active{false};
Session g_session;
Config g_staged;

}  // namespace

Config config() { return g_staged; }

void set_config(const Config& cfg) { g_staged = cfg; }

bool active() { return g_active.load(std::memory_order_relaxed); }

void start(int nranks) {
  SCIOTO_REQUIRE(!active(), "lineage session already active");
  SCIOTO_REQUIRE(nranks >= 1, "lineage session needs >= 1 rank");
  g_session.ranks.assign(static_cast<std::size_t>(nranks), PerRank{});
  g_active.store(true, std::memory_order_release);
}

void stop() {
  g_active.store(false, std::memory_order_release);
  g_session.ranks.clear();
}

int session_nranks() {
  return active() ? static_cast<int>(g_session.ranks.size()) : 0;
}

std::uint64_t next_id(Rank r) {
  SCIOTO_CHECK_MSG(r >= 0 && r < static_cast<Rank>(g_session.ranks.size()),
                   "lineage next_id from rank outside the session");
  return make_id(r, g_session.ranks[static_cast<std::size_t>(r)].next_seq++);
}

std::uint64_t current(Rank r) {
  if (!active() || r < 0 || r >= static_cast<Rank>(g_session.ranks.size())) {
    return 0;
  }
  return g_session.ranks[static_cast<std::size_t>(r)].current;
}

void set_current(Rank r, std::uint64_t id) {
  if (!active() || r < 0 || r >= static_cast<Rank>(g_session.ranks.size())) {
    return;
  }
  g_session.ranks[static_cast<std::size_t>(r)].current = id;
}

std::size_t rec_bytes() { return active() ? sizeof(LineageRec) : 0; }

}  // namespace scioto::trace::lineage
