// Causal task lineage: the per-task identity layer under the flow-event
// tracer and the critical-path profiler (trace/analysis.hpp).
//
// The trace plane records *rank-local* events: steals, pushes, task
// begin/end. None of them name a task, so a recorded run can say how many
// tasks moved but not *which* task travelled from its spawner, through a
// chain of steals, to the rank that finally ran it. This module closes
// that gap with a Dapper-style causal record stamped into every task
// descriptor:
//
//   LineageRec {
//     id     -- 64-bit globally unique task id: a rank-salted counter,
//               (origin_rank + 1) << 40 | per-rank sequence. No
//               coordination, bit-deterministic under sim (each rank's
//               spawn order is fixed by the fiber schedule), and id != 0
//               always, so 0 can mean "no task" / "root".
//     parent -- the id of the task that was executing on the spawning
//               rank when tc_add ran; 0 for root spawns (seeds added
//               from outside any task).
//     hops   -- migrations suffered so far: bumped by the thief after a
//               successful steal and by the elastic redeal when a
//               checkpointed descriptor lands on a new rank.
//   }
//
// Wire format: the record rides as a 24-byte *trailer* after the padded
// descriptor body, inside the queue slot. The trailer exists only while a
// lineage session is armed -- slot layouts, PGAS transfer sizes, and
// therefore the sim's virtual-time charges of a lineage-off run are
// byte-identical to a build that never heard of lineage. Because the
// trailer is part of the slot, it flows through every path a descriptor
// takes -- local push, release/reacquire, all three steal protocols,
// remote add, DAG node firing, fault-mode steal replay, checkpoint
// save/restore -- without any of those paths knowing it is there; only
// the stamp (tc_add), the hop bump (steal landing, redeal), and the read
// (execute) touch it.
//
// Events: the stamp emits Ev::SpawnEdge (spawner side), each migration
// emits Ev::MigrateEdge (thief side), and execution emits Ev::ExecSpan
// (executor side). The exporter turns the three into Chrome flow events
// (arrows across rank tracks in Perfetto); trace::lineage_report() merges
// them into a causal timeline, validates happens-before, and extracts the
// weighted critical path.
//
// Gates: the SCIOTO_LINEAGE CMake option (default ON) compiles the hooks;
// the SCIOTO_LINEAGE=1 environment variable (or a caller-started session,
// e.g. `trace_demo --flow`) arms them at runtime. Both off by default on
// the hot path: one predicted-false branch per hook when compiled in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "base/types.hpp"

#ifndef SCIOTO_LINEAGE_ENABLED
#define SCIOTO_LINEAGE_ENABLED 0
#endif

namespace scioto::trace::lineage {

/// The causal record carried in each task descriptor's trailer.
struct LineageRec {
  std::uint64_t id = 0;      // rank-salted unique id; never 0 for a task
  std::uint64_t parent = 0;  // spawner's executing task id; 0 = root
  std::uint32_t hops = 0;    // steals + redeals this descriptor survived
  std::uint32_t pad = 0;     // keeps the trailer 8-byte aligned
};
static_assert(sizeof(LineageRec) == 24, "lineage trailer is 24 bytes");
static_assert(std::is_trivially_copyable_v<LineageRec>,
              "the trailer is memcpy'd through the wire format");

/// Id layout: (origin + 1) << kSeqBits | seq. 40 sequence bits give every
/// rank a trillion spawns; 23 origin bits clear int64 for the trace
/// payload field.
inline constexpr int kSeqBits = 40;

inline constexpr std::uint64_t make_id(Rank origin, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(origin) + 1) << kSeqBits | seq;
}
inline constexpr Rank id_origin(std::uint64_t id) {
  return static_cast<Rank>((id >> kSeqBits) - 1);
}
inline constexpr std::uint64_t id_seq(std::uint64_t id) {
  return id & ((std::uint64_t{1} << kSeqBits) - 1);
}

/// Staged configuration consumed by the next pgas::run_spmd (the C API
/// stages through this before a runtime exists); SCIOTO_LINEAGE env
/// overrides it there.
struct Config {
  bool enabled = false;
};
Config config();
void set_config(const Config& cfg);

/// True between start() and stop(). One relaxed atomic load; every
/// descriptor-path hook checks this (via TaskCollection's cached trailer
/// offset) before paying for the stamp.
bool active();

/// Allocates per-rank id counters and arms the session. Must bracket the
/// SPMD region like trace::start: task collections size their slots for
/// the trailer at construction, so arming mid-run would split the fleet's
/// wire format.
void start(int nranks);
void stop();

int session_nranks();

/// Allocates the next task id for a spawn on rank r. Rank-local counter:
/// no atomics needed beyond the session gate, deterministic under sim.
std::uint64_t next_id(Rank r);

/// The id of the task currently executing on rank r (0 outside any
/// task). TaskCollection::execute saves/sets/restores this around the
/// callback so nested spawns link to their true parent.
std::uint64_t current(Rank r);
void set_current(Rank r, std::uint64_t id);

/// Trailer bytes a task collection must add to its slot size: 24 while a
/// session is armed, 0 otherwise.
std::size_t rec_bytes();

}  // namespace scioto::trace::lineage
