#include "trace/analysis.hpp"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "base/error.hpp"
#include "trace/lineage.hpp"

namespace scioto::trace {

namespace {

bool rank_ok(const Event& e, int nranks) {
  return e.rank >= 0 && e.rank < nranks;
}

std::string ns_to_ms(TimeNs t) {
  return Table::fmt(static_cast<double>(t) / 1e6, 3);
}

std::string pct(TimeNs part, TimeNs whole) {
  if (whole <= 0) {
    return Table::fmt(0.0, 1);
  }
  return Table::fmt(100.0 * static_cast<double>(part) /
                        static_cast<double>(whole),
                    1);
}

}  // namespace

std::uint64_t StealMatrix::total_steals() const {
  std::uint64_t s = 0;
  for (std::uint64_t v : steals) s += v;
  return s;
}

std::uint64_t StealMatrix::total_tasks() const {
  std::uint64_t s = 0;
  for (std::uint64_t v : tasks) s += v;
  return s;
}

std::uint64_t StealMatrix::total_recovered() const {
  std::uint64_t s = 0;
  for (std::uint64_t v : recovered) s += v;
  return s;
}

Table StealMatrix::table() const {
  const bool with_recovery = total_recovered() > 0;
  std::vector<std::string> headers;
  headers.reserve(static_cast<std::size_t>(nranks) + 3);
  headers.push_back("thief\\victim");
  for (Rank v = 0; v < nranks; ++v) {
    headers.push_back("r" + std::to_string(v));
  }
  headers.push_back("total");
  if (with_recovery) {
    headers.push_back("recovered");
  }
  Table t(std::move(headers));
  for (Rank thief = 0; thief < nranks; ++thief) {
    std::vector<std::string> row;
    row.reserve(static_cast<std::size_t>(nranks) + 3);
    row.push_back("r" + std::to_string(thief));
    std::uint64_t row_total = 0;
    for (Rank victim = 0; victim < nranks; ++victim) {
      std::uint64_t n = tasks_at(thief, victim);
      row_total += n;
      row.push_back(Table::fmt(static_cast<std::int64_t>(n)));
    }
    row.push_back(Table::fmt(static_cast<std::int64_t>(row_total)));
    if (with_recovery) {
      std::uint64_t rec = 0;
      for (Rank source = 0; source < nranks; ++source) {
        rec += recovered_at(thief, source);
      }
      row.push_back(Table::fmt(static_cast<std::int64_t>(rec)));
    }
    t.add_row(std::move(row));
  }
  return t;
}

StealMatrix steal_matrix(const std::vector<Event>& events, int nranks) {
  SCIOTO_REQUIRE(nranks >= 1, "steal_matrix: nranks must be >= 1");
  StealMatrix m;
  m.nranks = nranks;
  std::size_t n2 =
      static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks);
  m.steals.assign(n2, 0);
  m.tasks.assign(n2, 0);
  m.recovered.assign(n2, 0);
  for (const Event& e : events) {
    if (!rank_ok(e, nranks) || e.a < 0 || e.a >= nranks) {
      continue;
    }
    std::size_t idx = static_cast<std::size_t>(e.rank) *
                          static_cast<std::size_t>(nranks) +
                      static_cast<std::size_t>(e.a);
    if (e.kind == Ev::StealOk) {
      m.steals[idx] += 1;
      m.tasks[idx] += static_cast<std::uint64_t>(e.b);
    } else if (e.kind == Ev::TaskRecovered) {
      m.recovered[idx] += static_cast<std::uint64_t>(e.b);
    }
  }
  return m;
}

std::vector<RankBreakdown> time_breakdown(const std::vector<Event>& events,
                                          int nranks) {
  SCIOTO_REQUIRE(nranks >= 1, "time_breakdown: nranks must be >= 1");
  std::vector<RankBreakdown> out(static_cast<std::size_t>(nranks));
  for (const Event& e : events) {
    if (!rank_ok(e, nranks)) {
      continue;
    }
    RankBreakdown& rb = out[static_cast<std::size_t>(e.rank)];
    switch (e.kind) {
      case Ev::PhaseEnd:
        rb.total += e.c;
        break;
      case Ev::TaskEnd:
        rb.working += e.c;
        break;
      case Ev::Search:
        rb.searching += e.c;
        break;
      case Ev::TaskRecovered:
        rb.recovering += e.c;
        break;
      default:
        break;
    }
  }
  return out;
}

Table breakdown_table(const std::vector<RankBreakdown>& rows) {
  bool with_recovery = false;
  for (const RankBreakdown& rb : rows) {
    with_recovery = with_recovery || rb.recovering > 0;
  }
  std::vector<std::string> headers = {"rank", "total_ms", "working_ms",
                                      "searching_ms"};
  if (with_recovery) {
    headers.push_back("recovering_ms");
  }
  headers.insert(headers.end(),
                 {"other_ms", "working_pct", "searching_pct"});
  Table t(std::move(headers));
  RankBreakdown sum;
  auto emit = [&](const std::string& name, const RankBreakdown& rb) {
    std::vector<std::string> row = {name, ns_to_ms(rb.total),
                                    ns_to_ms(rb.working),
                                    ns_to_ms(rb.searching)};
    if (with_recovery) {
      row.push_back(ns_to_ms(rb.recovering));
    }
    row.insert(row.end(),
               {ns_to_ms(rb.other()), pct(rb.working, rb.total),
                pct(rb.searching, rb.total)});
    t.add_row(std::move(row));
  };
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const RankBreakdown& rb = rows[r];
    sum.total += rb.total;
    sum.working += rb.working;
    sum.searching += rb.searching;
    sum.recovering += rb.recovering;
    emit("r" + std::to_string(r), rb);
  }
  emit("TOTAL", sum);
  return t;
}

std::vector<DetectionRecord> detection_latency(const std::vector<Event>& events,
                                               int nranks) {
  SCIOTO_REQUIRE(nranks >= 1, "detection_latency: nranks must be >= 1");
  // FaultType::Kill encodes as 0 in FaultInjected.a; trace sits below
  // fault in the layering, so we match the raw value rather than include
  // the enum (locked in by tests/test_detect.cpp).
  constexpr std::int32_t kKillType = 0;
  std::size_t n = static_cast<std::size_t>(nranks);
  std::vector<TimeNs> killed(n, -1);
  std::vector<std::int64_t> suspects(n, 0);
  std::vector<std::int64_t> refutes(n, 0);
  std::vector<int> record_of(n, -1);
  std::vector<DetectionRecord> out;
  for (const Event& e : events) {
    if (e.a < 0 || (e.kind != Ev::FaultInjected && e.a >= nranks)) {
      continue;
    }
    switch (e.kind) {
      case Ev::FaultInjected:
        if (e.a == kKillType && e.b >= 0 && e.b < nranks &&
            killed[static_cast<std::size_t>(e.b)] < 0) {
          killed[static_cast<std::size_t>(e.b)] = e.t;
        }
        break;
      case Ev::Suspect:
        suspects[static_cast<std::size_t>(e.a)] += 1;
        break;
      case Ev::Refute:
        refutes[static_cast<std::size_t>(e.a)] += 1;
        break;
      case Ev::ConfirmDead:
        if (record_of[static_cast<std::size_t>(e.a)] < 0) {
          record_of[static_cast<std::size_t>(e.a)] =
              static_cast<int>(out.size());
          DetectionRecord r;
          r.dead = e.a;
          r.confirmed_by = e.rank;
          r.confirmed_at = e.t;
          out.push_back(r);
        }
        break;
      default:
        break;
    }
  }
  for (DetectionRecord& r : out) {
    std::size_t d = static_cast<std::size_t>(r.dead);
    r.was_killed = killed[d] >= 0;
    r.killed_at = r.was_killed ? killed[d] : 0;
    r.suspects = suspects[d];
    r.refutes = refutes[d];
  }
  return out;
}

Table detection_table(const std::vector<DetectionRecord>& rows) {
  Table t({"rank", "kind", "killed_ms", "confirmed_ms", "latency_ms",
           "confirmed_by", "suspects", "refutes"});
  for (const DetectionRecord& r : rows) {
    t.add_row({"r" + std::to_string(r.dead),
               r.was_killed ? "kill" : "false",
               r.was_killed ? ns_to_ms(r.killed_at) : "-",
               ns_to_ms(r.confirmed_at),
               r.was_killed ? ns_to_ms(r.latency()) : "-",
               "r" + std::to_string(r.confirmed_by),
               Table::fmt(r.suspects),
               Table::fmt(r.refutes)});
  }
  return t;
}

std::vector<std::vector<OccupancySample>> occupancy_timeline(
    const std::vector<Event>& events, int nranks) {
  SCIOTO_REQUIRE(nranks >= 1, "occupancy_timeline: nranks must be >= 1");
  std::vector<std::vector<OccupancySample>> out(
      static_cast<std::size_t>(nranks));
  for (const Event& e : events) {
    if (!rank_ok(e, nranks)) {
      continue;
    }
    switch (e.kind) {
      case Ev::Push:
      case Ev::Pop:
      case Ev::Release:
      case Ev::Reacquire:
        out[static_cast<std::size_t>(e.rank)].push_back(
            OccupancySample{e.t, e.c});
        break;
      default:
        break;
    }
  }
  for (auto& series : out) {
    std::stable_sort(series.begin(), series.end(),
                     [](const OccupancySample& x, const OccupancySample& y) {
                       return x.t < y.t;
                     });
  }
  return out;
}

void DurationDist::add(std::uint64_t v) {
  ++count;
  sum += v;
  if (v > max) {
    max = v;
  }
  ++buckets[stats::log2_bucket(v, stats::kLog2Buckets)];
}

std::vector<DurationDist> duration_percentiles(
    const std::vector<Event>& events) {
  DurationDist exec, search, recover;
  exec.name = ev_name(Ev::TaskEnd);
  search.name = ev_name(Ev::Search);
  recover.name = ev_name(Ev::TaskRecovered);
  for (const Event& e : events) {
    if (e.c < 0) {
      continue;  // defensively skip malformed durations
    }
    std::uint64_t v = static_cast<std::uint64_t>(e.c);
    switch (e.kind) {
      case Ev::TaskEnd:
        exec.add(v);
        break;
      case Ev::Search:
        search.add(v);
        break;
      case Ev::TaskRecovered:
        recover.add(v);
        break;
      default:
        break;
    }
  }
  std::vector<DurationDist> out;
  for (DurationDist* d : {&exec, &search, &recover}) {
    if (d->count > 0) {
      out.push_back(*d);
    }
  }
  return out;
}

Table duration_table(const std::vector<DurationDist>& rows) {
  Table t({"event", "count", "mean_ns", "p50_ns", "p95_ns", "p99_ns",
           "max_ns"});
  for (const DurationDist& d : rows) {
    t.add_row({d.name, Table::fmt(static_cast<std::int64_t>(d.count)),
               Table::fmt(d.mean(), 1),
               Table::fmt(static_cast<std::int64_t>(d.percentile(50))),
               Table::fmt(static_cast<std::int64_t>(d.percentile(95))),
               Table::fmt(static_cast<std::int64_t>(d.percentile(99))),
               Table::fmt(static_cast<std::int64_t>(d.max))});
  }
  return t;
}

// ---- Causal lineage analytics ----

const LineageSpan* LineageReport::find(std::uint64_t id) const {
  auto it = std::lower_bound(
      spans.begin(), spans.end(), id,
      [](const LineageSpan& s, std::uint64_t v) { return s.id < v; });
  if (it == spans.end() || it->id != id) {
    return nullptr;
  }
  return &*it;
}

namespace {

void note_violation(LineageReport& rep, const std::string& msg) {
  // Cap the list: a corrupted stream should fail loudly, not allocate a
  // report the size of the trace.
  if (rep.violations.size() < 64) {
    rep.violations.push_back(msg);
  }
}

}  // namespace

LineageReport lineage_report(const std::vector<Event>& events, int nranks,
                             std::uint64_t dropped_events) {
  (void)nranks;
  LineageReport rep;
  rep.dropped = dropped_events;
  rep.spawn_to_exec.name = "spawn_to_exec";

  // Pass 1: gather per-id records. The map is scratch only -- the report
  // is emitted sorted by id, so its iteration order never shows.
  std::unordered_map<std::uint64_t, std::size_t> index;
  auto span_of = [&](std::uint64_t id) -> LineageSpan& {
    auto [it, fresh] = index.try_emplace(id, rep.spans.size());
    if (fresh) {
      rep.spans.emplace_back();
      rep.spans.back().id = id;
    }
    return rep.spans[it->second];
  };
  // ExecSpan announces a task right before its TaskBegin; the next
  // TaskEnd on the same rank closes it and carries the duration. Tasks
  // never nest within execute(), so one pending id per rank suffices --
  // and the input stream preserves each rank's recording order.
  std::unordered_map<int, std::uint64_t> pending_exec;
  for (const Event& e : events) {
    switch (e.kind) {
      case Ev::SpawnEdge: {
        const std::uint64_t id = static_cast<std::uint64_t>(e.c);
        LineageSpan& s = span_of(id);
        if (s.spawned()) {
          note_violation(rep, "task " + std::to_string(id) +
                                  " has two spawn edges");
        } else {
          s.spawn_rank = e.rank;
          s.spawn_t = e.t;
          s.parent =
              static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.a))
                  << 32 |
              static_cast<std::uint32_t>(e.b);
        }
        ++rep.spawns;
        break;
      }
      case Ev::MigrateEdge: {
        LineageSpan& s = span_of(static_cast<std::uint64_t>(e.c));
        s.migrations.push_back(LineageMigration{e.t, e.a, e.rank});
        ++rep.migrations;
        break;
      }
      case Ev::ExecSpan: {
        const std::uint64_t id = static_cast<std::uint64_t>(e.c);
        LineageSpan& s = span_of(id);
        if (s.executed()) {
          // Exactly-once execution is the task collection's core
          // guarantee (fault replay included); a second span is always a
          // defect.
          note_violation(rep, "task " + std::to_string(id) +
                                  " executed twice (ranks " +
                                  std::to_string(s.exec_rank) + " and " +
                                  std::to_string(e.rank) + ")");
        } else {
          s.exec_rank = e.rank;
          s.exec_t = e.t;
          s.hops = static_cast<std::uint32_t>(e.a);
          s.callback = e.b;
          pending_exec[e.rank] = id;
        }
        ++rep.execs;
        break;
      }
      case Ev::TaskEnd: {
        auto it = pending_exec.find(e.rank);
        if (it != pending_exec.end()) {
          LineageSpan& s = span_of(it->second);
          s.exec_dur = std::max<TimeNs>(e.c, 0);
          pending_exec.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }
  std::sort(rep.spans.begin(), rep.spans.end(),
            [](const LineageSpan& x, const LineageSpan& y) {
              return x.id < y.id;
            });

  // Pass 2: happens-before and conservation. With ring drops the
  // completeness checks are vacuous (the missing edge may simply have
  // been overwritten), so only per-event ordering is validated then.
  const bool complete = dropped_events == 0;
  for (const LineageSpan& s : rep.spans) {
    if (s.spawned() && s.executed()) {
      if (s.exec_t < s.spawn_t) {
        note_violation(rep, "task " + std::to_string(s.id) +
                                " executed before its spawn edge");
      }
      rep.spawn_to_exec.add(static_cast<std::uint64_t>(
          std::max<TimeNs>(s.queue_latency(), 0)));
    } else if (complete) {
      note_violation(rep, "task " + std::to_string(s.id) +
                              (s.executed()
                                   ? " executed without a spawn edge"
                                   : " spawned but never executed"));
    }
    for (const LineageMigration& m : s.migrations) {
      if ((s.spawned() && m.t < s.spawn_t) ||
          (s.executed() && m.t > s.exec_t)) {
        note_violation(rep, "task " + std::to_string(s.id) +
                                " migrated outside its spawn->exec window");
      }
    }
    if (s.executed()) {
      if (complete && s.hops != s.migrations.size()) {
        ++rep.hop_mismatches;
      }
      rep.max_hops = std::max<std::uint64_t>(rep.max_hops, s.hops);
      if (rep.hop_hist.size() <= s.hops) {
        rep.hop_hist.resize(static_cast<std::size_t>(s.hops) + 1, 0);
      }
      ++rep.hop_hist[s.hops];
    }
  }
  return rep;
}

CriticalPath critical_path(const LineageReport& rep,
                           const std::vector<Event>& events, int nranks) {
  CriticalPath cp;
  cp.rank_blame.assign(static_cast<std::size_t>(std::max(nranks, 1)), 0);

  // Terminal: the last-finishing executed task; ties break toward the
  // smaller id so the walk is deterministic whenever the stream is.
  const LineageSpan* terminal = nullptr;
  for (const LineageSpan& s : rep.spans) {
    if (!s.executed()) {
      continue;
    }
    if (terminal == nullptr || s.finish() > terminal->finish() ||
        (s.finish() == terminal->finish() && s.id < terminal->id)) {
      terminal = &s;
    }
  }
  if (terminal == nullptr) {
    return cp;
  }
  cp.terminal_id = terminal->id;

  // Walk back: each task contributes its execution (clipped at the child
  // spawn that continued the chain) preceded by its queue/migration wait,
  // attributed to the rank whose queue actually held it -- the victim of
  // the next migration, or the executor after the last landing.
  std::vector<CritSegment> rev;
  const LineageSpan* s = terminal;
  TimeNs exec_end = terminal->finish();
  std::size_t guard = rep.spans.size() + 1;
  while (guard-- > 0) {
    ++cp.tasks;
    if (exec_end > s->exec_t) {
      rev.push_back(CritSegment{s->id, s->exec_rank, true, s->exec_t,
                                exec_end});
    }
    if (!s->spawned()) {
      break;  // chain truncated by ring wrap; blame what we can see
    }
    std::vector<TimeNs> bounds;
    std::vector<Rank> owners;
    bounds.push_back(s->spawn_t);
    for (const LineageMigration& m : s->migrations) {
      owners.push_back(m.victim);
      bounds.push_back(m.t);
    }
    owners.push_back(s->exec_rank);
    bounds.push_back(s->exec_t);
    for (std::size_t i = owners.size(); i-- > 0;) {
      if (bounds[i + 1] > bounds[i]) {
        rev.push_back(CritSegment{s->id, owners[i], false, bounds[i],
                                  bounds[i + 1]});
      }
    }
    if (s->parent == 0) {
      break;  // root spawn: the chain starts here
    }
    const LineageSpan* p = rep.find(s->parent);
    if (p == nullptr || !p->executed()) {
      break;  // parent lost to ring wrap
    }
    exec_end = std::min(std::max(s->spawn_t, p->exec_t), p->finish());
    s = p;
  }
  std::reverse(rev.begin(), rev.end());
  cp.segments = std::move(rev);
  if (!cp.segments.empty()) {
    cp.length = terminal->finish() - cp.segments.front().t0;
  }

  // Blame: by kind, by rank, and by tc_process phase (segments are
  // assigned to the phase whose collective begin most recently preceded
  // them; rank 0's PhaseBegin events are the boundary markers).
  std::vector<TimeNs> phase_begins;
  for (const Event& e : events) {
    if (e.kind == Ev::PhaseBegin && e.rank == 0) {
      phase_begins.push_back(e.t);
    }
  }
  std::sort(phase_begins.begin(), phase_begins.end());
  cp.phase_blame.assign(std::max<std::size_t>(phase_begins.size(), 1), 0);
  for (const CritSegment& seg : cp.segments) {
    (seg.exec ? cp.exec_ns : cp.queue_ns) += seg.dur();
    if (seg.rank >= 0 && seg.rank < nranks) {
      cp.rank_blame[static_cast<std::size_t>(seg.rank)] += seg.dur();
    }
    std::size_t phase = 0;
    if (!phase_begins.empty()) {
      auto it = std::upper_bound(phase_begins.begin(), phase_begins.end(),
                                 seg.t0);
      phase = it == phase_begins.begin()
                  ? 0
                  : static_cast<std::size_t>(it - phase_begins.begin() - 1);
    }
    cp.phase_blame[phase] += seg.dur();
  }
  return cp;
}

Table lineage_table(const LineageReport& rep) {
  Table t({"metric", "value"});
  auto u64 = [](std::uint64_t v) {
    return Table::fmt(static_cast<std::int64_t>(v));
  };
  t.add_row({"tasks_spawned", u64(rep.spawns)});
  t.add_row({"tasks_executed", u64(rep.execs)});
  t.add_row({"migrate_edges", u64(rep.migrations)});
  t.add_row({"hb_violations", u64(rep.violations.size())});
  t.add_row({"hop_mismatches", u64(rep.hop_mismatches)});
  t.add_row({"ring_dropped", u64(rep.dropped)});
  t.add_row({"max_hops", u64(rep.max_hops)});
  t.add_row({"spawn_exec_p50_ns", u64(rep.spawn_to_exec.percentile(50))});
  t.add_row({"spawn_exec_p90_ns", u64(rep.spawn_to_exec.percentile(90))});
  t.add_row({"spawn_exec_p99_ns", u64(rep.spawn_to_exec.percentile(99))});
  t.add_row({"spawn_exec_max_ns", u64(rep.spawn_to_exec.max)});
  for (std::size_t h = 0; h < rep.hop_hist.size(); ++h) {
    if (rep.hop_hist[h] > 0) {
      t.add_row({"tasks_with_" + std::to_string(h) + "_hops",
                 u64(rep.hop_hist[h])});
    }
  }
  return t;
}

Table critical_path_table(const CriticalPath& cp) {
  Table t({"task", "origin", "rank", "state", "t0_us", "dur_us"});
  for (const CritSegment& seg : cp.segments) {
    t.add_row({std::to_string(lineage::id_seq(seg.id)),
               Table::fmt(static_cast<std::int64_t>(
                   lineage::id_origin(seg.id))),
               Table::fmt(static_cast<std::int64_t>(seg.rank)),
               seg.exec ? "exec" : "wait",
               Table::fmt(static_cast<double>(seg.t0) / 1e3, 3),
               Table::fmt(static_cast<double>(seg.dur()) / 1e3, 3)});
  }
  t.add_row({"TOTAL",
             Table::fmt(static_cast<std::int64_t>(cp.tasks)),
             "-", "-", "-",
             Table::fmt(static_cast<double>(cp.length) / 1e3, 3)});
  return t;
}

}  // namespace scioto::trace
