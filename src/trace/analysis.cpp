#include "trace/analysis.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace scioto::trace {

namespace {

bool rank_ok(const Event& e, int nranks) {
  return e.rank >= 0 && e.rank < nranks;
}

std::string ns_to_ms(TimeNs t) {
  return Table::fmt(static_cast<double>(t) / 1e6, 3);
}

std::string pct(TimeNs part, TimeNs whole) {
  if (whole <= 0) {
    return Table::fmt(0.0, 1);
  }
  return Table::fmt(100.0 * static_cast<double>(part) /
                        static_cast<double>(whole),
                    1);
}

}  // namespace

std::uint64_t StealMatrix::total_steals() const {
  std::uint64_t s = 0;
  for (std::uint64_t v : steals) s += v;
  return s;
}

std::uint64_t StealMatrix::total_tasks() const {
  std::uint64_t s = 0;
  for (std::uint64_t v : tasks) s += v;
  return s;
}

std::uint64_t StealMatrix::total_recovered() const {
  std::uint64_t s = 0;
  for (std::uint64_t v : recovered) s += v;
  return s;
}

Table StealMatrix::table() const {
  const bool with_recovery = total_recovered() > 0;
  std::vector<std::string> headers;
  headers.reserve(static_cast<std::size_t>(nranks) + 3);
  headers.push_back("thief\\victim");
  for (Rank v = 0; v < nranks; ++v) {
    headers.push_back("r" + std::to_string(v));
  }
  headers.push_back("total");
  if (with_recovery) {
    headers.push_back("recovered");
  }
  Table t(std::move(headers));
  for (Rank thief = 0; thief < nranks; ++thief) {
    std::vector<std::string> row;
    row.reserve(static_cast<std::size_t>(nranks) + 3);
    row.push_back("r" + std::to_string(thief));
    std::uint64_t row_total = 0;
    for (Rank victim = 0; victim < nranks; ++victim) {
      std::uint64_t n = tasks_at(thief, victim);
      row_total += n;
      row.push_back(Table::fmt(static_cast<std::int64_t>(n)));
    }
    row.push_back(Table::fmt(static_cast<std::int64_t>(row_total)));
    if (with_recovery) {
      std::uint64_t rec = 0;
      for (Rank source = 0; source < nranks; ++source) {
        rec += recovered_at(thief, source);
      }
      row.push_back(Table::fmt(static_cast<std::int64_t>(rec)));
    }
    t.add_row(std::move(row));
  }
  return t;
}

StealMatrix steal_matrix(const std::vector<Event>& events, int nranks) {
  SCIOTO_REQUIRE(nranks >= 1, "steal_matrix: nranks must be >= 1");
  StealMatrix m;
  m.nranks = nranks;
  std::size_t n2 =
      static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks);
  m.steals.assign(n2, 0);
  m.tasks.assign(n2, 0);
  m.recovered.assign(n2, 0);
  for (const Event& e : events) {
    if (!rank_ok(e, nranks) || e.a < 0 || e.a >= nranks) {
      continue;
    }
    std::size_t idx = static_cast<std::size_t>(e.rank) *
                          static_cast<std::size_t>(nranks) +
                      static_cast<std::size_t>(e.a);
    if (e.kind == Ev::StealOk) {
      m.steals[idx] += 1;
      m.tasks[idx] += static_cast<std::uint64_t>(e.b);
    } else if (e.kind == Ev::TaskRecovered) {
      m.recovered[idx] += static_cast<std::uint64_t>(e.b);
    }
  }
  return m;
}

std::vector<RankBreakdown> time_breakdown(const std::vector<Event>& events,
                                          int nranks) {
  SCIOTO_REQUIRE(nranks >= 1, "time_breakdown: nranks must be >= 1");
  std::vector<RankBreakdown> out(static_cast<std::size_t>(nranks));
  for (const Event& e : events) {
    if (!rank_ok(e, nranks)) {
      continue;
    }
    RankBreakdown& rb = out[static_cast<std::size_t>(e.rank)];
    switch (e.kind) {
      case Ev::PhaseEnd:
        rb.total += e.c;
        break;
      case Ev::TaskEnd:
        rb.working += e.c;
        break;
      case Ev::Search:
        rb.searching += e.c;
        break;
      case Ev::TaskRecovered:
        rb.recovering += e.c;
        break;
      default:
        break;
    }
  }
  return out;
}

Table breakdown_table(const std::vector<RankBreakdown>& rows) {
  bool with_recovery = false;
  for (const RankBreakdown& rb : rows) {
    with_recovery = with_recovery || rb.recovering > 0;
  }
  std::vector<std::string> headers = {"rank", "total_ms", "working_ms",
                                      "searching_ms"};
  if (with_recovery) {
    headers.push_back("recovering_ms");
  }
  headers.insert(headers.end(),
                 {"other_ms", "working_pct", "searching_pct"});
  Table t(std::move(headers));
  RankBreakdown sum;
  auto emit = [&](const std::string& name, const RankBreakdown& rb) {
    std::vector<std::string> row = {name, ns_to_ms(rb.total),
                                    ns_to_ms(rb.working),
                                    ns_to_ms(rb.searching)};
    if (with_recovery) {
      row.push_back(ns_to_ms(rb.recovering));
    }
    row.insert(row.end(),
               {ns_to_ms(rb.other()), pct(rb.working, rb.total),
                pct(rb.searching, rb.total)});
    t.add_row(std::move(row));
  };
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const RankBreakdown& rb = rows[r];
    sum.total += rb.total;
    sum.working += rb.working;
    sum.searching += rb.searching;
    sum.recovering += rb.recovering;
    emit("r" + std::to_string(r), rb);
  }
  emit("TOTAL", sum);
  return t;
}

std::vector<DetectionRecord> detection_latency(const std::vector<Event>& events,
                                               int nranks) {
  SCIOTO_REQUIRE(nranks >= 1, "detection_latency: nranks must be >= 1");
  // FaultType::Kill encodes as 0 in FaultInjected.a; trace sits below
  // fault in the layering, so we match the raw value rather than include
  // the enum (locked in by tests/test_detect.cpp).
  constexpr std::int32_t kKillType = 0;
  std::size_t n = static_cast<std::size_t>(nranks);
  std::vector<TimeNs> killed(n, -1);
  std::vector<std::int64_t> suspects(n, 0);
  std::vector<std::int64_t> refutes(n, 0);
  std::vector<int> record_of(n, -1);
  std::vector<DetectionRecord> out;
  for (const Event& e : events) {
    if (e.a < 0 || (e.kind != Ev::FaultInjected && e.a >= nranks)) {
      continue;
    }
    switch (e.kind) {
      case Ev::FaultInjected:
        if (e.a == kKillType && e.b >= 0 && e.b < nranks &&
            killed[static_cast<std::size_t>(e.b)] < 0) {
          killed[static_cast<std::size_t>(e.b)] = e.t;
        }
        break;
      case Ev::Suspect:
        suspects[static_cast<std::size_t>(e.a)] += 1;
        break;
      case Ev::Refute:
        refutes[static_cast<std::size_t>(e.a)] += 1;
        break;
      case Ev::ConfirmDead:
        if (record_of[static_cast<std::size_t>(e.a)] < 0) {
          record_of[static_cast<std::size_t>(e.a)] =
              static_cast<int>(out.size());
          DetectionRecord r;
          r.dead = e.a;
          r.confirmed_by = e.rank;
          r.confirmed_at = e.t;
          out.push_back(r);
        }
        break;
      default:
        break;
    }
  }
  for (DetectionRecord& r : out) {
    std::size_t d = static_cast<std::size_t>(r.dead);
    r.was_killed = killed[d] >= 0;
    r.killed_at = r.was_killed ? killed[d] : 0;
    r.suspects = suspects[d];
    r.refutes = refutes[d];
  }
  return out;
}

Table detection_table(const std::vector<DetectionRecord>& rows) {
  Table t({"rank", "kind", "killed_ms", "confirmed_ms", "latency_ms",
           "confirmed_by", "suspects", "refutes"});
  for (const DetectionRecord& r : rows) {
    t.add_row({"r" + std::to_string(r.dead),
               r.was_killed ? "kill" : "false",
               r.was_killed ? ns_to_ms(r.killed_at) : "-",
               ns_to_ms(r.confirmed_at),
               r.was_killed ? ns_to_ms(r.latency()) : "-",
               "r" + std::to_string(r.confirmed_by),
               Table::fmt(r.suspects),
               Table::fmt(r.refutes)});
  }
  return t;
}

std::vector<std::vector<OccupancySample>> occupancy_timeline(
    const std::vector<Event>& events, int nranks) {
  SCIOTO_REQUIRE(nranks >= 1, "occupancy_timeline: nranks must be >= 1");
  std::vector<std::vector<OccupancySample>> out(
      static_cast<std::size_t>(nranks));
  for (const Event& e : events) {
    if (!rank_ok(e, nranks)) {
      continue;
    }
    switch (e.kind) {
      case Ev::Push:
      case Ev::Pop:
      case Ev::Release:
      case Ev::Reacquire:
        out[static_cast<std::size_t>(e.rank)].push_back(
            OccupancySample{e.t, e.c});
        break;
      default:
        break;
    }
  }
  for (auto& series : out) {
    std::stable_sort(series.begin(), series.end(),
                     [](const OccupancySample& x, const OccupancySample& y) {
                       return x.t < y.t;
                     });
  }
  return out;
}

void DurationDist::add(std::uint64_t v) {
  ++count;
  sum += v;
  if (v > max) {
    max = v;
  }
  ++buckets[stats::log2_bucket(v, stats::kLog2Buckets)];
}

std::vector<DurationDist> duration_percentiles(
    const std::vector<Event>& events) {
  DurationDist exec, search, recover;
  exec.name = ev_name(Ev::TaskEnd);
  search.name = ev_name(Ev::Search);
  recover.name = ev_name(Ev::TaskRecovered);
  for (const Event& e : events) {
    if (e.c < 0) {
      continue;  // defensively skip malformed durations
    }
    std::uint64_t v = static_cast<std::uint64_t>(e.c);
    switch (e.kind) {
      case Ev::TaskEnd:
        exec.add(v);
        break;
      case Ev::Search:
        search.add(v);
        break;
      case Ev::TaskRecovered:
        recover.add(v);
        break;
      default:
        break;
    }
  }
  std::vector<DurationDist> out;
  for (DurationDist* d : {&exec, &search, &recover}) {
    if (d->count > 0) {
      out.push_back(*d);
    }
  }
  return out;
}

Table duration_table(const std::vector<DurationDist>& rows) {
  Table t({"event", "count", "mean_ns", "p50_ns", "p95_ns", "p99_ns",
           "max_ns"});
  for (const DurationDist& d : rows) {
    t.add_row({d.name, Table::fmt(static_cast<std::int64_t>(d.count)),
               Table::fmt(d.mean(), 1),
               Table::fmt(static_cast<std::int64_t>(d.percentile(50))),
               Table::fmt(static_cast<std::int64_t>(d.percentile(95))),
               Table::fmt(static_cast<std::int64_t>(d.percentile(99))),
               Table::fmt(static_cast<std::int64_t>(d.max))});
  }
  return t;
}

}  // namespace scioto::trace
