// Event tracing: per-rank, fixed-capacity, allocation-free-in-steady-state
// ring buffers recording typed runtime events in virtual (sim backend) or
// real (threads backend) time.
//
// The aggregate counters in TcStats say *how many* steals, releases, and
// votes a run performed; this subsystem records *when* each one happened,
// which is the instrument behind every timing-shape claim the reproduction
// makes (split-queue steal throughput, termination-wave cost, load balance
// of irregular tasks). On top of the raw stream sit a Chrome trace-event
// JSON exporter (trace/export.hpp) and post-run analytics
// (trace/analysis.hpp): who-stole-from-whom, queue occupancy, and a
// per-rank working/searching/idle breakdown that reconciles with TcStats.
//
// Usage:
//   * compile-time gate: the SCIOTO_TRACE CMake option (default ON) defines
//     SCIOTO_TRACE_ENABLED; when OFF the SCIOTO_TRACE_EVENT macro expands
//     to nothing and instrumented code carries zero overhead.
//   * runtime gate: nothing is recorded until trace::start(nranks, cap) is
//     called. Benches expose this as --trace=FILE; pgas::run_spmd also
//     honours the SCIOTO_TRACE_OUT environment variable so any binary can
//     be traced without code changes (capacity via SCIOTO_TRACE_CAP,
//     events per rank).
//
// Recording an event is one branch, one clock read, and one 32-byte store
// into the recording rank's own ring -- no locks, no allocation. When a
// ring wraps, the oldest events are overwritten and counted as dropped
// (the exporter reports the drop count rather than silently truncating).
//
// Determinism: under the sim backend, events are stamped with the fiber's
// virtual clock, so two runs with the same seed produce byte-identical
// exported traces (locked in by tests/test_trace.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hpp"

#ifndef SCIOTO_TRACE_ENABLED
#define SCIOTO_TRACE_ENABLED 0
#endif

namespace scioto::trace {

/// Typed event kinds. The payload fields a/b/c are per-kind (documented
/// inline); `dur`-style payloads are durations in nanoseconds carried in c.
enum class Ev : std::uint8_t {
  TaskBegin,     // a=callback handle, b=affinity
  TaskEnd,       // a=callback handle, c=execution duration (ns)
  Push,          // a=affinity, c=local queue size after the push
  Pop,           // c=local queue size after the pop
  Release,       // a=tasks released to the shared portion, c=queue size
  Reacquire,     // a=tasks reacquired from the shared portion, c=queue size
  StealAttempt,  // a=victim rank
  StealOk,       // a=victim rank, b=tasks stolen
  StealFail,     // a=victim rank (empty-handed attempt)
  RemoteAdd,     // a=target rank (one task pushed into target's patch)
  TokenSend,     // a=target rank, b=field (0=down,1=up,2=term,3=dirty)
  Vote,          // a=wave number, b=1 if the token passed up was black
  WaveStart,     // a=wave number (root only)
  Terminate,     // a=deciding wave number
  PgasPut,       // a=target rank, c=bytes
  PgasGet,       // a=target rank, c=bytes
  PgasAcc,       // a=target rank, c=bytes
  PgasRmw,       // a=target rank (fetch-add / swap)
  Barrier,       // (entry into a barrier)
  Search,        // c=accumulated idle/steal/TD-poll time just ended (ns)
  PhaseBegin,    // (tc_process entry)
  PhaseEnd,      // c=phase duration on this rank (ns)
  FaultInjected,  // a=fault type (fault::FaultType), b=target rank, c=param
  StealAborted,   // a=victim rank, b=reason (0=truncated-to-zero)
  TaskRecovered,  // a=source (dead) rank, b=tasks recovered, c=duration (ns)
  TreeRespliced,  // a=epoch, b=alive rank count after the resplice
  StealBusy,      // a=victim rank (aborting steal: lock held, no transfer)
  StealRetarget,  // a=busy victim, b=new victim, c=backoff charged (ns)
  ReacquireFast,  // a=tasks reacquired via the lock-free owner fast path
  Suspect,        // a=suspected rank, c=silence observed so far (ns)
  Refute,         // a=formerly-suspected rank (its heartbeat advanced)
  ConfirmDead,    // a=confirmed-dead rank, c=silence at confirmation (ns)
  FenceAbort,     // a=fence adopter rank, b=fence epoch (owner woke up,
                  //   observed an adoption fence, aborted its work loop)
  // DAG scheduler events (src/dag). Appended so DAG-off traces stay
  // byte-identical to pre-dag baselines.
  NodeReady,      // a=node id (low 32 bits), b=home rank, c=depth (-1 if
                  //   unknown, e.g. dynamic nodes fired by a non-creator)
  NodeRun,        // a=node id (low 32 bits), b=conflict group, c=depth
  ConflictRetry,  // a=node id (low 32 bits), b=reason (0=group lock busy,
                  //   1=version wait), c=conflict group (-1 for version)
  // Adaptive control plane (src/control). Appended so controller-off
  // traces stay byte-identical to pre-control baselines.
  KnobChange,     // a=knob (control::Knob), b=applied value,
                  //   c=reason (control::Reason)
  // Elastic membership (src/elastic). Appended so elastic-off traces stay
  // byte-identical to pre-elastic baselines.
  JoinRequest,    // a=requesting (parked) rank
  JoinAdmit,      // a=admitted rank, b=admitting rank, c=new epoch
  Quiesce,        // a=checkpoint generation, b=joined-alive participant
                  //   count, c=wait duration (ns)
  Checkpoint,     // a=checkpoint generation, b=descriptors snapshotted on
                  //   this rank, c=snapshot bytes (part payload)
  Restore,        // a=source (saved) rank count, b=descriptors restored on
                  //   this rank, c=restored bytes
  // Causal task lineage (trace/lineage.hpp). Appended so lineage-off
  // traces stay byte-identical to pre-lineage baselines. Task ids ride in
  // c (they fit int64: 23 origin bits + 40 sequence bits).
  SpawnEdge,      // a=parent id high 32 bits, b=parent id low 32 bits,
                  //   c=spawned task id (recorded by the spawning rank)
  MigrateEdge,    // a=victim (the rank the task sat on), b=hop count
                  //   after this migration, c=task id (recorded by the
                  //   thief / redeal target)
  ExecSpan,       // a=hop count at execution, b=callback handle,
                  //   c=task id (recorded by the executing rank; the
                  //   span's duration is the paired TaskEnd's)
};

/// Human-readable kind name (used by the exporter and analyses).
const char* ev_name(Ev kind);

/// One recorded event: 32 bytes, trivially copyable.
struct Event {
  TimeNs t = 0;         // virtual (sim) or wall (threads) nanoseconds
  std::int64_t c = 0;   // kind-specific payload (bytes, duration, size)
  std::int32_t a = 0;   // kind-specific payload (rank, handle, count)
  std::int32_t b = 0;   // kind-specific payload
  std::int32_t rank = kNoRank;  // recording rank
  Ev kind = Ev::TaskBegin;
};
static_assert(sizeof(Event) == 32);

/// Fixed-capacity event ring owned by one rank. Steady-state recording is
/// allocation-free: the buffer is sized once at construction and wraps,
/// overwriting (and counting) the oldest events.
class Sink {
 public:
  explicit Sink(std::size_t capacity);

  void record(const Event& e) {
    buf_[static_cast<std::size_t>(count_ % capacity_)] = e;
    ++count_;
  }

  std::size_t capacity() const { return static_cast<std::size_t>(capacity_); }
  /// Events currently held (<= capacity).
  std::size_t size() const;
  /// Events overwritten because the ring wrapped.
  std::uint64_t dropped() const;
  /// Copies the held events out in recording order (oldest first).
  std::vector<Event> snapshot() const;
  void clear();

 private:
  std::uint64_t capacity_;
  std::uint64_t count_ = 0;
  std::vector<Event> buf_;
};

// ---- Process-global trace session ----
//
// One session serves one SPMD run: start() before the ranks begin, stop()
// after they finish. Each rank records into its own Sink, so concurrent
// recording under the threads backend is contention-free.

/// True between start() and stop(). One relaxed atomic load; the
/// SCIOTO_TRACE_EVENT macro checks this before paying for a clock read.
bool active();

/// Allocates per-rank rings and begins recording. `capacity_per_rank` of 0
/// selects the default (SCIOTO_TRACE_CAP env var, else 1<<15 events).
void start(int nranks, std::size_t capacity_per_rank = 0);

/// Ends the session and releases the rings.
void stop();

/// Records one event stamped with the current rank-local TraceClock time.
/// Ignored when no session is active or `rank` is kNoRank.
void record(Rank rank, Ev kind, std::int32_t a = 0, std::int32_t b = 0,
            std::int64_t c = 0);

/// The TraceClock: the executing fiber's virtual clock under the sim
/// backend, a steady wall clock (ns since session start) otherwise.
TimeNs clock_now();

/// Number of ranks in the active session (0 when inactive).
int session_nranks();

/// Snapshot of one rank's events, oldest first (empty when inactive).
std::vector<Event> events(Rank rank);

/// All ranks' events merged into one stream ordered by (time, rank,
/// per-rank sequence).
std::vector<Event> all_events();

/// Total events overwritten across all rings in this session.
std::uint64_t total_dropped();

/// Events overwritten in one rank's ring (0 when inactive or out of
/// range). The fleet monitor scrapes this into its rollup so a live run
/// surfaces event loss instead of only the exporter noticing post-run.
std::uint64_t dropped(Rank rank);

/// Default per-rank ring capacity: SCIOTO_TRACE_CAP env var, else 1<<15.
std::size_t default_capacity();

}  // namespace scioto::trace

// Instrumentation macro: compiled to nothing when the SCIOTO_TRACE CMake
// option is OFF (arguments are not evaluated), one predicted-false branch
// when ON but no session is active.
#if SCIOTO_TRACE_ENABLED
#define SCIOTO_TRACE_EVENT(rank, kind, a, b, c)                            \
  do {                                                                     \
    if (::scioto::trace::active()) {                                       \
      ::scioto::trace::record((rank), (kind),                              \
                              static_cast<std::int32_t>(a),                \
                              static_cast<std::int32_t>(b),                \
                              static_cast<std::int64_t>(c));               \
    }                                                                      \
  } while (0)
#else
#define SCIOTO_TRACE_EVENT(rank, kind, a, b, c) \
  do {                                          \
  } while (0)
#endif
