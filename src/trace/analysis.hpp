// Post-run analyses over a recorded trace stream.
//
// These consume the merged event stream (trace::all_events(), or any
// vector of Events carrying rank stamps) and compute the diagnostics the
// figure claims rest on:
//
//   * steal_matrix       -- who stole from whom, and how many tasks moved:
//                           the load-balance picture behind Figures 5-8;
//   * time_breakdown     -- per-rank working / searching / recovering /
//                           other time. Sums the same instrumentation
//                           samples TcStats accumulates, so the two must
//                           reconcile (the trace test asserts agreement
//                           within 1%);
//   * occupancy_timeline -- (time, queue size) samples per rank from the
//                           owner's push/pop/release/reacquire events.
#pragma once

#include <cstdint>
#include <vector>

#include "base/stats.hpp"
#include "base/table.hpp"
#include "base/types.hpp"
#include "trace/trace.hpp"

namespace scioto::trace {

/// Who-stole-from-whom. Dense nranks x nranks matrices indexed
/// [thief * nranks + victim].
struct StealMatrix {
  int nranks = 0;
  std::vector<std::uint64_t> steals;  // successful steal operations
  std::vector<std::uint64_t> tasks;   // tasks moved by those steals
  /// Tasks that moved through fault recovery instead of a steal: row =
  /// recovering rank, column = the dead rank the work came from
  /// (TaskRecovered events). All-zero in fault-free runs.
  std::vector<std::uint64_t> recovered;

  std::uint64_t steals_at(Rank thief, Rank victim) const {
    return steals[static_cast<std::size_t>(thief) *
                      static_cast<std::size_t>(nranks) +
                  static_cast<std::size_t>(victim)];
  }
  std::uint64_t tasks_at(Rank thief, Rank victim) const {
    return tasks[static_cast<std::size_t>(thief) *
                     static_cast<std::size_t>(nranks) +
                 static_cast<std::size_t>(victim)];
  }
  std::uint64_t recovered_at(Rank by, Rank source) const {
    return recovered[static_cast<std::size_t>(by) *
                         static_cast<std::size_t>(nranks) +
                     static_cast<std::size_t>(source)];
  }
  std::uint64_t total_steals() const;
  std::uint64_t total_tasks() const;
  std::uint64_t total_recovered() const;

  /// Renders "tasks stolen" as a thief-row x victim-column table; when any
  /// recovery happened, a trailing "recovered" column reports tasks each
  /// rank adopted from dead ranks.
  Table table() const;
};

StealMatrix steal_matrix(const std::vector<Event>& events, int nranks);

/// Per-rank time decomposition of the tc_process phase(s).
struct RankBreakdown {
  TimeNs total = 0;       // sum of PhaseEnd durations
  TimeNs working = 0;     // sum of TaskEnd durations
  TimeNs searching = 0;   // sum of Search spell durations
  TimeNs recovering = 0;  // sum of TaskRecovered durations (fault runs)
  /// Phase time not spent executing tasks, searching, or recovering
  /// (queue management, residual scheduling overhead).
  TimeNs other() const { return total - working - searching - recovering; }
};

std::vector<RankBreakdown> time_breakdown(const std::vector<Event>& events,
                                          int nranks);

/// Renders the breakdown with one row per rank plus a TOTAL row.
Table breakdown_table(const std::vector<RankBreakdown>& rows);

/// One queue-occupancy sample: the owner's queue held `tasks` tasks at
/// time `t` (taken after each push/pop/release/reacquire).
struct OccupancySample {
  TimeNs t = 0;
  std::int64_t tasks = 0;
};

/// Per-rank occupancy series, in time order.
std::vector<std::vector<OccupancySample>> occupancy_timeline(
    const std::vector<Event>& events, int nranks);

/// One death (or false suspicion) as seen by the failure detector: when
/// the kill was injected (FaultInjected) and when the first survivor
/// confirmed the rank dead (ConfirmDead). A record with `was_killed ==
/// false` is a false confirmation -- the detector condemned a rank that
/// was merely stalled (the lease fence, not the detector, is what keeps
/// that safe).
struct DetectionRecord {
  Rank dead = kNoRank;          // the rank the detector confirmed dead
  Rank confirmed_by = kNoRank;  // first rank to record ConfirmDead
  TimeNs killed_at = 0;         // FaultInjected kill time (0 if !was_killed)
  TimeNs confirmed_at = 0;      // first ConfirmDead time
  bool was_killed = false;      // a kill fault actually targeted this rank
  std::int64_t suspects = 0;    // Suspect events naming this rank
  std::int64_t refutes = 0;     // Refute events naming this rank
  /// Kill-to-confirmation gap; 0 for false confirmations.
  TimeNs latency() const { return was_killed ? confirmed_at - killed_at : 0; }
};

/// Matches each rank's first ConfirmDead against its FaultInjected kill
/// (if any) over a merged, time-ordered stream (trace::all_events()), so
/// "first" confirmation means earliest across all observers. One record
/// per rank that was ever confirmed dead, in confirmation order.
std::vector<DetectionRecord> detection_latency(const std::vector<Event>& events,
                                               int nranks);

/// Renders one row per confirmed death: kind (kill / false), kill and
/// confirmation times, detection latency, confirming rank, and the
/// suspect/refute churn leading up to it.
Table detection_table(const std::vector<DetectionRecord>& rows);

/// Log2-bucketed latency distribution of one duration-carrying event kind
/// (task execution times, idle-search spells, ...), built with the same
/// base/stats bucketing the live metrics histograms use -- post-hoc trace
/// percentiles and a live scrape of the matching metrics::Hist agree
/// bucket-for-bucket.
struct DurationDist {
  const char* name = "";  // ev_name() of the source event kind
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t buckets[stats::kLog2Buckets] = {};

  double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
  /// Nearest-rank percentile, reported as the containing bucket's ceiling.
  std::uint64_t percentile(double p) const {
    return stats::hist_percentile(buckets, stats::kLog2Buckets, p);
  }

  void add(std::uint64_t v);
};

/// Distributions of TaskEnd execution durations, Search spell lengths,
/// and TaskRecovered adoption durations (rows with count == 0 are
/// omitted), over any event stream carrying those kinds.
std::vector<DurationDist> duration_percentiles(
    const std::vector<Event>& events);

/// Renders one row per distribution: count, mean, p50/p95/p99, max (ns).
Table duration_table(const std::vector<DurationDist>& rows);

// ---- Causal lineage analytics (trace/lineage.hpp) ----
//
// Consume the SpawnEdge / MigrateEdge / ExecSpan stream a lineage-armed
// run records and rebuild the per-task causal timeline: who spawned each
// task, where it travelled, who ran it, and which chain of tasks bounded
// the run. lineage_report() also *validates* the stream -- happens-before
// (no task executes before its spawn edge or outside its migration
// window, none executes twice) and conservation (per-task hop counts
// match the MigrateEdge stream, which in turn matches the steal matrix
// task-for-task in fault-free runs).

/// One recorded migration landing: the task left `victim` for `thief` at
/// time `t` (stamped by the thief, or by the redeal target on an elastic
/// restore).
struct LineageMigration {
  TimeNs t = 0;
  Rank victim = kNoRank;
  Rank thief = kNoRank;
};

/// One task's merged causal record.
struct LineageSpan {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;   // 0 = root spawn (seeded outside any task)
  Rank spawn_rank = kNoRank;  // kNoRank: spawn edge lost to ring wrap
  TimeNs spawn_t = -1;
  Rank exec_rank = kNoRank;   // kNoRank: no execution observed
  TimeNs exec_t = -1;
  TimeNs exec_dur = 0;        // from the paired TaskEnd
  std::uint32_t hops = 0;     // trailer hop count at execution
  std::int32_t callback = -1;
  std::vector<LineageMigration> migrations;  // in landing order

  bool spawned() const { return spawn_rank != kNoRank; }
  bool executed() const { return exec_rank != kNoRank; }
  /// Spawn-to-execution-start latency (valid when spawned and executed).
  TimeNs queue_latency() const { return exec_t - spawn_t; }
  TimeNs finish() const { return exec_t + exec_dur; }
};

struct LineageReport {
  std::vector<LineageSpan> spans;  // ascending id
  std::uint64_t spawns = 0;        // SpawnEdge events seen
  std::uint64_t migrations = 0;    // MigrateEdge events seen
  std::uint64_t execs = 0;         // ExecSpan events seen
  /// Ring-wrap drop count passed in by the caller; nonzero weakens the
  /// completeness checks (a missing edge may simply be overwritten), so
  /// they are skipped and only per-event ordering is validated.
  std::uint64_t dropped = 0;
  /// Spans whose executed hop count disagrees with their MigrateEdge
  /// count. Zero in fault-free runs; an aborted-then-replayed steal under
  /// a kill plan legitimately leaves an edge the replayed descriptor
  /// never carried, so this is reported separately from `violations`.
  std::uint64_t hop_mismatches = 0;
  /// Happens-before failures, empty on any valid stream: a task that
  /// executed before its spawn edge, executed twice, migrated outside
  /// its spawn->exec window, or (drops permitting) is missing an edge.
  std::vector<std::string> violations;
  DurationDist spawn_to_exec;               // queue-latency distribution
  std::vector<std::uint64_t> hop_hist;      // [hops at exec] -> task count
  std::uint64_t max_hops = 0;

  bool causal_order_ok() const { return violations.empty(); }
  /// Binary search by id; nullptr when unknown.
  const LineageSpan* find(std::uint64_t id) const;
};

/// Rebuilds the causal timeline from a merged stream that preserves each
/// rank's recording order (trace::all_events() does). `dropped_events`
/// should be trace::total_dropped() for the same session.
LineageReport lineage_report(const std::vector<Event>& events, int nranks,
                             std::uint64_t dropped_events = 0);

/// One segment of the critical path: task `id` was either executing
/// (`exec`) on `rank` or queued/waiting for it over [t0, t1).
struct CritSegment {
  std::uint64_t id = 0;
  Rank rank = kNoRank;
  bool exec = false;
  TimeNs t0 = 0;
  TimeNs t1 = 0;
  TimeNs dur() const { return t1 - t0; }
};

/// The weighted critical path: the longest spawn -> steal -> exec chain
/// ending at the last-finishing task, with blame decomposed by rank, by
/// segment kind, and by tc_process phase.
struct CriticalPath {
  std::vector<CritSegment> segments;  // chain start first
  TimeNs length = 0;                  // terminal finish - chain start
  TimeNs exec_ns = 0;                 // path time spent executing
  TimeNs queue_ns = 0;                // path time spent queued/migrating
  std::uint64_t tasks = 0;            // tasks on the path
  std::uint64_t terminal_id = 0;      // the last-finishing task
  std::vector<TimeNs> rank_blame;     // per-rank path time
  std::vector<TimeNs> phase_blame;    // per tc_process phase (by index)
};

/// Walks parent links back from the last-finishing task. Ties on finish
/// time break toward the smaller id, so the path is deterministic
/// whenever the event stream is. `events` supplies the PhaseBegin
/// boundaries for phase blame.
CriticalPath critical_path(const LineageReport& rep,
                           const std::vector<Event>& events, int nranks);

/// Renders spawn/exec/migration totals, validation counters, and the
/// spawn-to-exec percentiles, followed by the steal-chain depth
/// histogram.
Table lineage_table(const LineageReport& rep);

/// Renders the path one segment per row (task, rank, state, start,
/// duration) with a trailing TOTAL row.
Table critical_path_table(const CriticalPath& cp);

}  // namespace scioto::trace
