// Elastic membership: runtime rank join + checkpoint/restore scheduling.
//
// The runtime could already *shrink* (detector-confirmed deaths, lease-
// fenced queue adoption); this layer lets the fleet *grow* and lets a
// phase's task-collection state survive a restart:
//
//   * Runtime rank join. run_spmd always launches the full fleet, but an
//     elastic session parks a contiguous tail of ranks in the detector
//     view's NotJoined state: parked ranks execute the SPMD body, sit out
//     the work loop (no tree seat, never a steal victim, never adopted),
//     and when their join rule fires they publish a JoinRequest word into
//     the task collection's elastic PGAS segment. The lowest joined-alive
//     rank batch-admits pending requests under ONE membership epoch bump
//     (detect::join_ranks -- the exact mechanism detect::rejoin uses), and
//     every rank resplices its termination tree and ward table on the next
//     TD step exactly as it would for a death or rejoin. The joiner's
//     first vote is forced WHITE (its queue is empty and it has issued no
//     LB ops, so the §5.3 color argument is vacuous for it) -- see
//     Termination::arm_join_white.
//
//   * Checkpoint/restore. A checkpoint rule quiesces the fleet (every
//     joined-alive rank drains its recovery paths and rendezvouses through
//     arrival words in the elastic segment; in-flight steals drain because
//     a steal's copy->requeue->commit completes within one work-loop
//     iteration with no interior safepoint), then each rank serializes its
//     queue's descriptor span plus a user blob into an SHA1-framed part
//     file and the leader writes a manifest. A later run -- on a DIFFERENT
//     nranks if desired -- restores by dealing the global descriptor list
//     round-robin across the new fleet. See DESIGN.md §11.
//
// Session discipline matches fault/detect/control: process-global staged
// Config surviving start/stop, relaxed-atomic active() fast path,
// default-off (elastic-off traces are byte-identical to pre-elastic
// baselines). The SCIOTO_ELASTIC CMake option (default ON) defines
// SCIOTO_ELASTIC_ENABLED; OFF compiles the run_spmd arming and the work-
// loop hooks to nothing.
#pragma once

#include <cstdint>
#include <string>

#include "base/types.hpp"

#ifndef SCIOTO_ELASTIC_ENABLED
#define SCIOTO_ELASTIC_ENABLED 0
#endif

namespace scioto::elastic {

struct Config {
  bool enabled = false;          // staged knob: arm the session in run_spmd
  std::string ckpt_path;         // snapshot manifest path ("" = no ckpt)
  TimeNs ckpt_period = 0;        // periodic checkpoint cadence (virtual ns,
                                 // 0 = one-shot rules / requests only)
  bool halt_after_ckpt = false;  // process() returns right after a snapshot
                                 // completes (the restart-from-ckpt story)
  std::string restore_path;      // restore collectively at process() entry
};

/// Per-session counters (process-global; join/grow counts live in
/// detect::Stats beside rejoins, where the monitor rollup reads them).
struct Stats {
  std::uint64_t checkpoints = 0;  // completed snapshot generations
  std::uint64_t restores = 0;     // completed collective restores
};

/// The staged configuration; like fault::policy() it survives start/stop
/// so C-API setters before run_spmd apply.
Config config();
void set_config(const Config& c);

/// True when the staged config asks for elasticity (knob, not armed).
bool enabled();

/// True between start() and stop().
bool active();

/// Arms the session for `nranks` ranks. Consumes `join:` and `ckpt:` rules
/// from the armed fault plan (they are inert in the fault machinery).
/// Join ranks must form a contiguous tail [j, nranks) -- membership parks
/// by count, and tail ranks keep rank 0 (the usual root-task owner and
/// collective leader) always joined. Arms the detect membership view with
/// the parked tail if no one armed it yet; stop() disarms it again iff
/// this session armed it.
void start(int nranks);
void stop();

int session_nranks();

// ---- Join schedule (consumed by the parked-rank loop) ----

/// True iff `r` has a join rule in this session.
bool join_scheduled(Rank r);

/// True when `r`'s join request should be published: sim backend once
/// virtual time reaches the rule's at=; threads backend once the rank has
/// spun `after=` parked polls.
bool join_due(Rank r, TimeNs now, int polls);

// ---- Checkpoint schedule ----

/// The checkpoint generation that should exist by `now` (0 = none yet).
/// Sums the plan's due ckpt rules, the ckpt_period cadence, and C-API
/// requests; every joined-alive rank evaluates the same monotone predicate
/// locally, so no leader request word is needed.
std::uint64_t ckpt_target_gen(TimeNs now, int polls);

/// Asks for one more checkpoint generation (C API / tests).
void request_ckpt();

std::string ckpt_path();
bool halt_after_ckpt();

/// Non-empty when a collective restore is pending at process() entry.
/// Both backends are in-process, so "restore exactly once" is tracked
/// per rank by the task collection, not consumed here.
std::string restore_path();

void note_checkpoint();
void note_restore();
Stats stats();

}  // namespace scioto::elastic
