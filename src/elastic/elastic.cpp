#include "elastic/elastic.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "base/error.hpp"
#include "detect/membership.hpp"
#include "fault/fault.hpp"

namespace scioto::elastic {

namespace {

struct JoinRule {
  Rank rank = kNoRank;
  TimeNs at = 0;   // sim trigger
  int after = 0;   // threads trigger (parked polls)
};

struct CkptRule {
  TimeNs at = 0;
  int after = 0;
};

struct Session {
  int nranks = 0;
  bool own_view = false;  // we armed the detect view; stop() disarms it
  std::vector<JoinRule> joins;
  std::vector<CkptRule> ckpts;
  std::atomic<std::uint64_t> requests{0};  // C-API checkpoint requests
  std::chrono::steady_clock::time_point t0;  // threads-backend period base
  Stats stats;
  std::mutex mu;  // guards stats
};

std::atomic<bool> g_active{false};
Session g_session;

Config g_config;  // staged knob; read/written outside any armed session

}  // namespace

Config config() { return g_config; }

void set_config(const Config& c) {
  SCIOTO_REQUIRE(c.ckpt_period >= 0, "elastic: ckpt_period must be >= 0");
  SCIOTO_REQUIRE(c.ckpt_period == 0 || !c.ckpt_path.empty(),
                 "elastic: ckpt_period needs ckpt_path");
  g_config = c;
}

bool enabled() { return g_config.enabled; }

bool active() { return g_active.load(std::memory_order_relaxed); }

void start(int nranks) {
  SCIOTO_REQUIRE(!active(), "elastic: session already armed");
  SCIOTO_REQUIRE(nranks > 0, "elastic: nranks must be positive");
  g_session.nranks = nranks;
  g_session.joins.clear();
  g_session.ckpts.clear();
  g_session.requests.store(0, std::memory_order_relaxed);
  g_session.t0 = std::chrono::steady_clock::now();
  g_session.stats = Stats{};

  for (const fault::FaultEvent& ev :
       fault::events_of(fault::FaultType::Join)) {
    g_session.joins.push_back(JoinRule{ev.rank, ev.at, ev.after});
  }
  for (const fault::FaultEvent& ev :
       fault::events_of(fault::FaultType::Ckpt)) {
    g_session.ckpts.push_back(CkptRule{ev.at, ev.after});
  }

  // Joiners must be a contiguous tail: membership parks by count, and the
  // tail shape keeps rank 0 -- the usual root-task owner and collective
  // leader -- always joined.
  int initial_joined = nranks;
  if (!g_session.joins.empty()) {
    std::vector<bool> has(static_cast<std::size_t>(nranks), false);
    Rank lo = nranks;
    for (const JoinRule& j : g_session.joins) {
      SCIOTO_REQUIRE(j.rank >= 0 && j.rank < nranks,
                     "elastic: join rank " << j.rank << " out of range");
      SCIOTO_REQUIRE(!has[static_cast<std::size_t>(j.rank)],
                     "elastic: duplicate join rule for rank " << j.rank);
      has[static_cast<std::size_t>(j.rank)] = true;
      lo = std::min(lo, j.rank);
    }
    for (Rank r = lo; r < nranks; ++r) {
      SCIOTO_REQUIRE(has[static_cast<std::size_t>(r)],
                     "elastic: join ranks must form a contiguous tail "
                     "[j, nranks); rank "
                         << r << " has no join rule but " << lo << " does");
    }
    SCIOTO_REQUIRE(lo >= 1,
                   "elastic: rank 0 cannot be a joiner (it must anchor "
                   "the initial fleet)");
    initial_joined = lo;
  }

  // The membership view carries the joined/parked distinction, so it must
  // be armed for any elastic run -- even one without the heartbeat
  // detector enabled (probing is harmless for parked ranks: they are not
  // alive, so nobody probes them). If the caller armed the view already we
  // cannot retrofit parked ranks into it; require arming elastic first.
  if (initial_joined < nranks) {
    SCIOTO_REQUIRE(!detect::active(),
                   "elastic: arm elastic before the detector view (the "
                   "parked tail is set at detect::start)");
  }
  g_session.own_view = !detect::active();
  if (g_session.own_view) {
    detect::start(nranks, initial_joined);
  }

  g_active.store(true, std::memory_order_release);
}

void stop() {
  g_active.store(false, std::memory_order_release);
  if (g_session.own_view) {
    detect::stop();
    g_session.own_view = false;
  }
  g_session.joins.clear();
  g_session.ckpts.clear();
  g_session.nranks = 0;
}

int session_nranks() { return active() ? g_session.nranks : 0; }

bool join_scheduled(Rank r) {
  if (!active()) return false;
  for (const JoinRule& j : g_session.joins) {
    if (j.rank == r) return true;
  }
  return false;
}

bool join_due(Rank r, TimeNs now, int polls) {
  if (!active()) return false;
  for (const JoinRule& j : g_session.joins) {
    if (j.rank != r) continue;
    return now >= 0 ? now >= j.at : polls > j.after;
  }
  return false;
}

std::uint64_t ckpt_target_gen(TimeNs now, int polls) {
  if (!active()) return 0;
  std::uint64_t target = g_session.requests.load(std::memory_order_acquire);
  for (const CkptRule& c : g_session.ckpts) {
    if (now >= 0 ? now >= c.at : polls > c.after) ++target;
  }
  TimeNs period = g_config.ckpt_period;
  if (period > 0) {
    if (now > 0) {
      target += static_cast<std::uint64_t>(now / period);
    } else if (now < 0) {
      // Threads backend: no virtual clock, so the cadence runs on wall
      // time since the session was armed. Each rank evaluates its own
      // clock; the predicate stays monotone, so the fleet converges on
      // the same generation even if ranks see the boundary moments
      // apart.
      TimeNs elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - g_session.t0)
                           .count();
      target += static_cast<std::uint64_t>(elapsed / period);
    }
  }
  return target;
}

void request_ckpt() {
  g_session.requests.fetch_add(1, std::memory_order_acq_rel);
}

std::string ckpt_path() { return g_config.ckpt_path; }

bool halt_after_ckpt() { return g_config.halt_after_ckpt; }

std::string restore_path() { return g_config.restore_path; }

void note_checkpoint() {
  if (!active()) return;
  std::lock_guard<std::mutex> g(g_session.mu);
  ++g_session.stats.checkpoints;
}

void note_restore() {
  if (!active()) return;
  std::lock_guard<std::mutex> g(g_session.mu);
  ++g_session.stats.restores;
}

Stats stats() {
  std::lock_guard<std::mutex> g(g_session.mu);
  return g_session.stats;
}

}  // namespace scioto::elastic
