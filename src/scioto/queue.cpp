#include "scioto/queue.hpp"

#include <algorithm>
#include <cstring>

#include "detect/membership.hpp"
#include "metrics/metrics.hpp"
#include "scioto/task.hpp"
#include "trace/lineage.hpp"
#include "trace/trace.hpp"

namespace scioto {

namespace {
// Lockfree steal retry backoff step: a lost CAS backs off by this much
// times the attempt number before re-claiming, so contending thieves
// fall out of lock-step instead of re-running the whole field each
// round. ~ one NIC service slot on the calibrated cluster model.
constexpr TimeNs kStealBackoffNs = 6000;
}  // namespace

const char* queue_mode_name(QueueMode mode) {
  switch (mode) {
    case QueueMode::Split:
      return "split";
    case QueueMode::NoSplit:
      return "no-split";
    case QueueMode::WaitFreeSteal:
      return "wait-free";
    case QueueMode::LockFree:
      return "lockfree";
  }
  return "?";
}

SplitQueue::SplitQueue(pgas::Runtime& rt, Config cfg)
    : rt_(rt), cfg_(cfg) {
  SCIOTO_REQUIRE(cfg_.slot_bytes >= sizeof(std::uint64_t),
                 "slot_bytes too small: " << cfg_.slot_bytes);
  SCIOTO_REQUIRE(cfg_.capacity >= 2, "capacity too small: " << cfg_.capacity);
  SCIOTO_REQUIRE(cfg_.chunk >= 1, "chunk must be >= 1, got " << cfg_.chunk);
  // chunk_max = 0 means no headroom: the layout (and so every index and
  // trace) is identical to a pre-control build. Collective by contract.
  chunk_max_ = cfg_.chunk_max > cfg_.chunk ? cfg_.chunk_max : cfg_.chunk;
  cfg_.chunk_max = chunk_max_;
  cfg_.slot_bytes = align_up(cfg_.slot_bytes, 8);  // word-wise wf copies
  ft_ = fault::active();
  SCIOTO_REQUIRE(!(ft_ && cfg_.mode == QueueMode::WaitFreeSteal),
                 "fault tolerance requires locked steals: wait-free mode "
                 "has no lock to anchor the steal transaction");
  // Same anchoring problem, one protocol further out: a lock-free thief
  // publishes its claim with an unlocked CAS, so there is no critical
  // section in which to log the stolen chunk into the victim-side
  // transaction buffer before the claim becomes visible -- a thief death
  // between CAS and requeue would lose the chunk. Rejected at init
  // (fail-fast, pinned by tests/test_fault.cpp) rather than silently
  // falling back to the locked mode.
  SCIOTO_REQUIRE(!(ft_ && cfg_.mode == QueueMode::LockFree),
                 "fault tolerance requires locked steals: lockfree mode "
                 "(SCIOTO_QUEUE=lockfree) publishes claims with an unlocked "
                 "CAS and cannot anchor the steal-transaction log; use "
                 "SCIOTO_QUEUE=locked or aborting with fault plans");
  // The adoption lease packs (epoch << 16) | (adopter + 1) into one CAS-able
  // word; a rank id that spills past 16 bits would corrupt the epoch field
  // the rival-ward comparison keys off. (Epochs bump only on deaths and
  // rejoins, so 48 bits cannot realistically wrap within a session.)
  SCIOTO_REQUIRE(!ft_ || rt.nprocs() < 0xffff,
                 "fault tolerance supports at most 65534 ranks: the "
                 "adoption lease packs the adopter rank into 16 bits");
  internal_cap_ = cfg_.capacity + static_cast<std::uint64_t>(rt.nprocs()) +
                  2 * static_cast<std::uint64_t>(chunk_max_);
  const std::size_t nranks = static_cast<std::size_t>(rt.nprocs());
  slots_off_ = sizeof(Ctl);
  if (ft_) {
    txn_off_ = sizeof(Ctl);
    buf_off_ = txn_off_ + nranks * sizeof(TxnRecord);
    slots_off_ = buf_off_ + nranks *
                               static_cast<std::size_t>(chunk_max_) *
                               cfg_.slot_bytes;
  }
  seg_ = rt_.seg_alloc(slots_off_ + internal_cap_ * cfg_.slot_bytes);
  if (rt_.me() == 0) {
    // Placement-initialize every rank's control block exactly once.
    for (Rank r = 0; r < rt_.nprocs(); ++r) {
      new (rt_.seg_ptr(seg_, r)) Ctl();
      if (ft_) {
        for (Rank t = 0; t < rt_.nprocs(); ++t) {
          new (rt_.seg_ptr(seg_, r) + txn_off_ +
               static_cast<std::size_t>(t) * sizeof(TxnRecord)) TxnRecord();
        }
      }
    }
  }
  locks_ = rt_.lockset_create();
  counters_.resize(nranks);
  reacquire_bufs_.resize(nranks);
  for (auto& buf : reacquire_bufs_) {
    buf.resize(static_cast<std::size_t>(chunk_max_) * cfg_.slot_bytes);
  }
  overflow_.resize(nranks);
  rt_.barrier();
}

void SplitQueue::destroy() { rt_.seg_free(seg_); }

SplitQueue::Ctl& SplitQueue::ctl(Rank r) {
  return *reinterpret_cast<Ctl*>(rt_.seg_ptr(seg_, r));
}

std::byte* SplitQueue::slot(Rank r, std::uint64_t index) {
  return rt_.seg_ptr(seg_, r) + slots_off_ +
         (index % internal_cap_) * cfg_.slot_bytes;
}

SplitQueue::TxnRecord& SplitQueue::txn(Rank victim, Rank thief) {
  return *reinterpret_cast<TxnRecord*>(
      rt_.seg_ptr(seg_, victim) + txn_off_ +
      static_cast<std::size_t>(thief) * sizeof(TxnRecord));
}

std::byte* SplitQueue::txn_buf(Rank victim, Rank thief) {
  return rt_.seg_ptr(seg_, victim) + buf_off_ +
         static_cast<std::size_t>(thief) *
             static_cast<std::size_t>(cfg_.chunk_max) * cfg_.slot_bytes;
}

std::uint64_t SplitQueue::steal_boundary(const Ctl& c) const {
  // unfrozen(): a dead NoSplit rank's priv_tail stays freeze-tagged after
  // adoption; the masked value is the anchored index thieves may read.
  return cfg_.mode == QueueMode::NoSplit
             ? unfrozen(c.priv_tail.load(std::memory_order_acquire))
             : c.split.load(std::memory_order_acquire);
}

std::uint64_t SplitQueue::private_size() const {
  const Ctl& c = const_cast<SplitQueue*>(this)->ctl(rt_.me());
  // Clamped: a ward freezing priv_tail mid-adoption can transiently leave
  // priv_tail below split; the difference must not wrap. The freeze tag is
  // masked off so a fenced queue reports its true (empty) private depth.
  std::uint64_t pt = unfrozen(c.priv_tail.load(std::memory_order_relaxed));
  std::uint64_t sp = c.split.load(std::memory_order_relaxed);
  return pt > sp ? pt - sp : 0;
}

std::uint64_t SplitQueue::shared_size() const {
  const Ctl& c = const_cast<SplitQueue*>(this)->ctl(rt_.me());
  std::uint64_t sp = c.split.load(std::memory_order_relaxed);
  std::uint64_t sh = sh_idx(c.steal_head.load(std::memory_order_relaxed));
  return sp > sh ? sp - sh : 0;
}

bool SplitQueue::push_local(const std::byte* task, int affinity) {
  switch (try_push_local(task, affinity)) {
    case PushOutcome::Ok:
      return true;
    case PushOutcome::Full:
      return false;
    case PushOutcome::Fenced:
      // Our queue was adopted while we were falsely suspected: keep the
      // task in the private stash (it is ours alone -- the ward never saw
      // it -- and re-enters after rejoin) and let the work loop observe
      // the fence. `task` never aliases the stash here: flush_overflow
      // goes through try_push_local directly.
      stash_overflow(task);
      return true;
  }
  return false;
}

SplitQueue::PushOutcome SplitQueue::try_push_local(const std::byte* task,
                                                   int affinity) {
  Rank me = rt_.me();
  Ctl& c = ctl(me);
  counters().pushes++;
  SCIOTO_METRIC_CTR(me, metrics::Ctr::QPushes, 1);
  TimeNs t0 = SCIOTO_METRICS_ON() ? rt_.now() : 0;

  if (cfg_.mode == QueueMode::NoSplit) {
    // No-split ablation: single fully locked region; everything enters at
    // the private end (affinity ordering needs the split design).
    rt_.lock(locks_, me);
    if (ft_ && c.fence.load(std::memory_order_acquire) != 0) {
      rt_.unlock(locks_, me);
      return PushOutcome::Fenced;
    }
    std::uint64_t pt = c.priv_tail.load(std::memory_order_relaxed);
    std::uint64_t sh = c.steal_head.load(std::memory_order_relaxed);
    if (pt - sh >= cfg_.capacity) {
      rt_.unlock(locks_, me);
      return PushOutcome::Full;
    }
    std::memcpy(slot(me, pt), task, cfg_.slot_bytes);
    c.priv_tail.store(pt + 1, std::memory_order_release);
    c.split.store(pt + 1, std::memory_order_release);
    rt_.unlock(locks_, me);
    rt_.charge(rt_.machine().local_insert);
    SCIOTO_TRACE_EVENT(me, trace::Ev::Push, affinity, 0, (pt + 1) - sh);
    metrics_owner_op(metrics::Hist::PushNs, t0);
    return PushOutcome::Ok;
  }

  if (affinity >= kAffinityHigh) {
    // Lock-free private push: thieves never touch [split, priv_tail).
    std::uint64_t pt = c.priv_tail.load(std::memory_order_relaxed);
    if (ft_ && (pt & kFrozenBit)) {
      // A ward froze the queue mid-adoption: bail before touching any
      // slot -- the ward may be copying the ring out right now.
      return PushOutcome::Fenced;
    }
    std::uint64_t sh = sh_idx(c.steal_head.load(std::memory_order_acquire));
    if (pt - sh >= cfg_.capacity) {
      return PushOutcome::Full;
    }
    if (cfg_.mode == QueueMode::LockFree) {
      // A stale lock-free thief may still be speculatively reading a slot
      // that physically aliases this one across a full ring wrap; make the
      // race benign (its claim cannot succeed -- the tag moved on).
      store_slot_relaxed(me, pt, task);
    } else {
      std::memcpy(slot(me, pt), task, cfg_.slot_bytes);
    }
    if (ft_) {
      // The CAS arbitrates against a ward freezing priv_tail mid-adoption
      // (priv_tail has no other concurrent writer): the freeze installs
      // kFrozenBit, a value no loaded index can equal, so this CAS fails
      // iff our queue was adopted out from under us -- even if the freeze
      // landed between our load above and here. The slot we wrote sits at
      // the old tail, outside the [steal_head, old priv_tail) span the
      // ward copies, so the discarded write can never tear an adopted
      // task.
      if (!c.priv_tail.compare_exchange_strong(pt, pt + 1,
                                               std::memory_order_seq_cst)) {
        return PushOutcome::Fenced;
      }
    } else {
      c.priv_tail.store(pt + 1, std::memory_order_release);
    }
    rt_.charge(rt_.machine().local_insert);
    SCIOTO_TRACE_EVENT(me, trace::Ev::Push, affinity, 0, (pt + 1) - sh);
    metrics_owner_op(metrics::Hist::PushNs, t0);
    return PushOutcome::Ok;
  }

  // Low affinity: enter at the steal end so this task migrates first.
  // Even the owner uses the remote-add publication protocol so the slot
  // is never visible half-written (wait-free thieves validate only
  // against steal_head).
  if (cfg_.mode == QueueMode::WaitFreeSteal ||
      cfg_.mode == QueueMode::LockFree) {
    bool ok = cfg_.mode == QueueMode::WaitFreeSteal
                  ? add_remote_waitfree(me, task)
                  : add_remote_lockfree(me, task);
    if (ok) {
      rt_.charge(rt_.machine().local_insert);
      SCIOTO_TRACE_EVENT(me, trace::Ev::Push, affinity, 0,
                         c.priv_tail.load(std::memory_order_relaxed) -
                             sh_idx(c.steal_head.load(
                                 std::memory_order_relaxed)));
      metrics_owner_op(metrics::Hist::PushNs, t0);
    }
    return ok ? PushOutcome::Ok : PushOutcome::Full;
  }
  rt_.lock(locks_, me);
  counters().owner_lock_acqs++;
  if (ft_ && c.fence.load(std::memory_order_acquire) != 0) {
    rt_.unlock(locks_, me);
    return PushOutcome::Fenced;
  }
  std::uint64_t sh = c.steal_head.load(std::memory_order_relaxed);
  std::uint64_t pt = c.priv_tail.load(std::memory_order_relaxed);
  if (pt - (sh - 1) >= cfg_.capacity) {
    rt_.unlock(locks_, me);
    return PushOutcome::Full;
  }
  std::memcpy(slot(me, sh - 1), task, cfg_.slot_bytes);
  c.steal_head.store(sh - 1, std::memory_order_seq_cst);
  rt_.unlock(locks_, me);
  rt_.charge(rt_.machine().local_insert);
  SCIOTO_TRACE_EVENT(me, trace::Ev::Push, affinity, 0, pt - (sh - 1));
  metrics_owner_op(metrics::Hist::PushNs, t0);
  return PushOutcome::Ok;
}

bool SplitQueue::pop_local(std::byte* out) {
  Rank me = rt_.me();
  Ctl& c = ctl(me);
  TimeNs t0 = SCIOTO_METRICS_ON() ? rt_.now() : 0;

  if (cfg_.mode == QueueMode::NoSplit) {
    rt_.lock(locks_, me);
    if (ft_ && c.fence.load(std::memory_order_acquire) != 0) {
      rt_.unlock(locks_, me);
      return false;  // adopted: the work loop handles the fence abort
    }
    std::uint64_t pt = c.priv_tail.load(std::memory_order_relaxed);
    std::uint64_t sh = c.steal_head.load(std::memory_order_relaxed);
    if (pt == sh) {
      rt_.unlock(locks_, me);
      return false;
    }
    std::memcpy(out, slot(me, pt - 1), cfg_.slot_bytes);
    c.priv_tail.store(pt - 1, std::memory_order_release);
    c.split.store(pt - 1, std::memory_order_release);
    rt_.unlock(locks_, me);
    rt_.charge(rt_.machine().local_get);
    counters().pops++;
    SCIOTO_TRACE_EVENT(me, trace::Ev::Pop, 0, 0, (pt - 1) - sh);
    SCIOTO_METRIC_CTR(me, metrics::Ctr::QPops, 1);
    metrics_owner_op(metrics::Hist::PopNs, t0);
    return true;
  }

  std::uint64_t pt = c.priv_tail.load(std::memory_order_relaxed);
  if (ft_ && (pt & kFrozenBit)) {
    // Adopted: bail before the index arithmetic below (the tagged word
    // would read as a huge private depth) and, crucially, before the CAS
    // -- a CAS whose expected value IS the frozen word would "succeed"
    // and corrupt the freeze. The work loop observes the fence next.
    return false;
  }
  std::uint64_t sp = c.split.load(std::memory_order_relaxed);
  if (pt <= sp) {
    return false;  // private portion empty; caller should reacquire()
  }
  std::memcpy(out, slot(me, pt - 1), cfg_.slot_bytes);
  if (ft_) {
    // Arbitrates against a ward's priv_tail freeze: the freeze replaces
    // the index with a kFrozenBit-tagged word no loaded value matches, so
    // a lost CAS means the task (and the rest of our queue) now belongs
    // to the adopter -- discard the copy, report empty, and let the work
    // loop observe the fence. This is what makes "drains nothing twice"
    // hold even when the suspicion was wrong.
    if (!c.priv_tail.compare_exchange_strong(pt, pt - 1,
                                             std::memory_order_seq_cst)) {
      return false;
    }
  } else {
    c.priv_tail.store(pt - 1, std::memory_order_release);
  }
  rt_.charge(rt_.machine().local_get);
  counters().pops++;
  SCIOTO_TRACE_EVENT(me, trace::Ev::Pop, 0, 0,
                     (pt - 1) - sh_idx(c.steal_head.load(
                                    std::memory_order_relaxed)));
  SCIOTO_METRIC_CTR(me, metrics::Ctr::QPops, 1);
  metrics_owner_op(metrics::Hist::PopNs, t0);
  return true;
}

std::uint64_t SplitQueue::reacquire() {
  Rank me = rt_.me();
  Ctl& c = ctl(me);
  switch (cfg_.mode) {
    case QueueMode::NoSplit:
      return 0;  // no distinct portions to move between

    case QueueMode::WaitFreeSteal: {
      // `split` never moves down in wait-free mode: reclaim parked work by
      // self-stealing through the same CAS path thieves use, then re-push
      // privately.
      if (shared_size() == 0) {
        return 0;
      }
      std::byte* buf = reacquire_bufs_[static_cast<std::size_t>(me)].data();
      int got = steal_from_waitfree(me, buf);
      for (int i = 0; i < got; ++i) {
        bool ok = push_local(buf + static_cast<std::size_t>(i) *
                                       cfg_.slot_bytes,
                             kAffinityHigh);
        SCIOTO_CHECK_MSG(ok, "overflow re-pushing self-stolen tasks");
      }
      if (got > 0) {
        counters().reacquires++;
        SCIOTO_TRACE_EVENT(me, trace::Ev::Reacquire, got, 0,
                           c.priv_tail.load(std::memory_order_relaxed) -
                               c.steal_head.load(std::memory_order_relaxed));
        SCIOTO_METRIC_CTR(me, metrics::Ctr::QReacquires, 1);
        SCIOTO_METRIC_CTR(me, metrics::Ctr::QReacquiredTasks, got);
        metrics_queue_gauges();
      }
      return static_cast<std::uint64_t>(got);
    }

    case QueueMode::LockFree: {
      // No lock exists to serialize a split lowering against in-flight
      // thieves, so the owner has exactly two tools: the validated
      // seq_cst publish (the Split-mode fastpath, margin-checked against
      // the one stale claim that can land past the validation load -- see
      // DESIGN.md for why seq_cst total order bounds it to one), and the
      // thieves' own CAS path. Deep shared portion: publish. Thin shared
      // portion -- including the single-element owner-vs-thief race --
      // fall back to self-stealing through the CAS, i.e. the standard
      // Chase-Lev "owner CASes top" arbitration: exactly one of owner and
      // thief wins each contested task.
      const auto margin = static_cast<std::uint64_t>(chunk_max_);
      std::uint64_t sh = sh_idx(c.steal_head.load(std::memory_order_seq_cst));
      std::uint64_t sp = c.split.load(std::memory_order_relaxed);
      std::uint64_t avail = sp > sh ? sp - sh : 0;
      if (avail == 0) {
        return 0;
      }
      if (avail >= 2 * margin) {
        std::uint64_t take = avail - avail / 2;  // ceil(avail / 2)
        std::uint64_t new_sp = sp - take;
        c.split.store(new_sp, std::memory_order_seq_cst);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::uint64_t sh2 =
            sh_idx(c.steal_head.load(std::memory_order_seq_cst));
        if (sh2 + margin <= new_sp) {
          rt_.atomic_publish_charge();
          counters().reacquires++;
          counters().reacquires_fast++;
          SCIOTO_TRACE_EVENT(me, trace::Ev::ReacquireFast, take, 0,
                             c.priv_tail.load(std::memory_order_relaxed) -
                                 sh2);
          SCIOTO_METRIC_CTR(me, metrics::Ctr::QReacquires, 1);
          SCIOTO_METRIC_CTR(me, metrics::Ctr::QReacquiredTasks, take);
          metrics_queue_gauges();
          return take;
        }
        // Thieves drained the margin under us; raising split back is
        // exactly a release (always safe), then contend on the CAS.
        c.split.store(sp, std::memory_order_seq_cst);
      }
      std::byte* buf = reacquire_bufs_[static_cast<std::size_t>(me)].data();
      int got = steal_from_lockfree(me, buf);
      for (int i = 0; i < got; ++i) {
        bool ok = push_local(buf + static_cast<std::size_t>(i) *
                                       cfg_.slot_bytes,
                             kAffinityHigh);
        SCIOTO_CHECK_MSG(ok, "overflow re-pushing self-stolen tasks");
      }
      if (got > 0) {
        counters().reacquires++;
        SCIOTO_TRACE_EVENT(me, trace::Ev::Reacquire, got, 0,
                           c.priv_tail.load(std::memory_order_relaxed) -
                               sh_idx(c.steal_head.load(
                                   std::memory_order_relaxed)));
        SCIOTO_METRIC_CTR(me, metrics::Ctr::QReacquires, 1);
        SCIOTO_METRIC_CTR(me, metrics::Ctr::QReacquiredTasks, got);
        metrics_queue_gauges();
      }
      return static_cast<std::uint64_t>(got);
    }

    case QueueMode::Split: {
      if (shared_size() == 0) {
        return 0;
      }
      if (cfg_.owner_fastpath && !ft_) {
        // Fault mode forces the locked path (as it forces locked steals):
        // the lock-light split publish cannot observe an adoption fence,
        // so a falsely-suspected owner could resurrect adopted work.
        // Lock-light lowering: publish the new split with one seq_cst
        // store and validate that no in-flight thief can overrun it.
        // Thieves serialize on the lock and publish steal_head seq_cst, so
        // at most ONE thief's advance (bounded by chunk) can be missing
        // from the validation load -- any earlier thief's store is
        // ordered before the next lock holder's index reads, hence before
        // ours. The margin check makes the single unpublished chunk safe.
        // The margin uses chunk_max, not the live chunk: the in-flight
        // thief steals at its OWN live width, which we cannot see but
        // which its KnobSet clamps to the collective chunk_max.
        const auto chunk = static_cast<std::uint64_t>(chunk_max_);
        std::uint64_t sh = c.steal_head.load(std::memory_order_seq_cst);
        std::uint64_t sp = c.split.load(std::memory_order_relaxed);
        std::uint64_t avail = sp > sh ? sp - sh : 0;
        if (avail >= 2 * chunk) {
          std::uint64_t take = avail - avail / 2;  // ceil(avail / 2)
          std::uint64_t new_sp = sp - take;
          c.split.store(new_sp, std::memory_order_seq_cst);
          std::atomic_thread_fence(std::memory_order_seq_cst);
          std::uint64_t sh2 = c.steal_head.load(std::memory_order_seq_cst);
          if (sh2 + chunk <= new_sp) {
            // One local atomic publish instead of a lock round trip.
            rt_.atomic_publish_charge();
            counters().reacquires++;
            counters().reacquires_fast++;
            SCIOTO_TRACE_EVENT(me, trace::Ev::ReacquireFast, take, 0,
                               c.priv_tail.load(std::memory_order_relaxed) -
                                   sh2);
            SCIOTO_METRIC_CTR(me, metrics::Ctr::QReacquires, 1);
            SCIOTO_METRIC_CTR(me, metrics::Ctr::QReacquiredTasks, take);
            metrics_queue_gauges();
            return take;
          }
          // Thieves drained the margin under us. Raising split back is
          // always safe (it is exactly a release); take the locked path.
          c.split.store(sp, std::memory_order_seq_cst);
        }
      }
      // Lowering `split` races in-flight steals, so it needs the lock.
      rt_.lock(locks_, me);
      counters().owner_lock_acqs++;
      if (ft_ && c.fence.load(std::memory_order_acquire) != 0) {
        rt_.unlock(locks_, me);
        return 0;  // adopted: the work loop handles the fence abort
      }
      std::uint64_t sh = c.steal_head.load(std::memory_order_relaxed);
      std::uint64_t sp = c.split.load(std::memory_order_relaxed);
      std::uint64_t avail = sp - sh;
      if (avail == 0) {
        rt_.unlock(locks_, me);
        return 0;
      }
      std::uint64_t take = avail - avail / 2;  // ceil(avail / 2)
      c.split.store(sp - take, std::memory_order_release);
      rt_.unlock(locks_, me);
      counters().reacquires++;
      SCIOTO_TRACE_EVENT(me, trace::Ev::Reacquire, take, 0,
                         c.priv_tail.load(std::memory_order_relaxed) - sh);
      SCIOTO_METRIC_CTR(me, metrics::Ctr::QReacquires, 1);
      SCIOTO_METRIC_CTR(me, metrics::Ctr::QReacquiredTasks, take);
      metrics_queue_gauges();
      return take;
    }
  }
  return 0;
}

std::uint64_t SplitQueue::release_maybe() {
  if (cfg_.mode == QueueMode::NoSplit) {
    return 0;  // everything is always exposed in the locked variant
  }
  Ctl& c = ctl(rt_.me());
  std::uint64_t priv = private_size();
  if (priv <= live_release_threshold() ||
      shared_size() >= static_cast<std::uint64_t>(live_chunk())) {
    return 0;
  }
  std::uint64_t give;
  std::uint64_t sp;
  if (ft_) {
    // Fault mode: an unlocked split raise could interleave with a ward
    // mid-adoption and fabricate a phantom private portion, so the release
    // serializes on our own lock and honours the fence like every other
    // locked owner op.
    rt_.lock(locks_, rt_.me());
    counters().owner_lock_acqs++;
    if (c.fence.load(std::memory_order_acquire) != 0) {
      rt_.unlock(locks_, rt_.me());
      return 0;
    }
    std::uint64_t pt = c.priv_tail.load(std::memory_order_relaxed);
    sp = c.split.load(std::memory_order_relaxed);
    priv = pt > sp ? pt - sp : 0;
    give = priv / 2;
    if (give == 0) {
      rt_.unlock(locks_, rt_.me());
      return 0;
    }
    c.split.store(sp + give, std::memory_order_release);
    rt_.unlock(locks_, rt_.me());
  } else {
    // Raising `split` only grows the shared portion; thieves reading the
    // old value just see fewer tasks, so no lock is needed (paper §5).
    give = priv / 2;
    sp = c.split.load(std::memory_order_relaxed);
    c.split.store(sp + give, std::memory_order_release);
  }
  counters().releases++;
  SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::Release, give, 0,
                     c.priv_tail.load(std::memory_order_relaxed) -
                         sh_idx(c.steal_head.load(
                             std::memory_order_relaxed)));
  SCIOTO_METRIC_CTR(rt_.me(), metrics::Ctr::QReleases, 1);
  SCIOTO_METRIC_CTR(rt_.me(), metrics::Ctr::QReleasedTasks, give);
  metrics_queue_gauges();
  return give;
}

std::uint64_t SplitQueue::peek_shared(Rank victim) {
  Ctl& c = ctl(victim);
  if (victim != rt_.me()) {
    rt_.rma_charge(victim, 2 * sizeof(std::uint64_t));
  }
  std::uint64_t sh = sh_idx(c.steal_head.load(std::memory_order_acquire));
  std::uint64_t bd = steal_boundary(c);
  return bd > sh ? bd - sh : 0;
}

void SplitQueue::copy_out_span(Rank victim, std::uint64_t first,
                               std::uint64_t count, std::byte* out) {
  // Contiguous modulo wrap-around: at most two memcpys, one RMA charge.
  rt_.rma_charge(victim, count * cfg_.slot_bytes);
  copy_span_raw(victim, first, count, out);
}

void SplitQueue::copy_span_raw(Rank victim, std::uint64_t first,
                               std::uint64_t count, std::byte* out) {
  std::uint64_t first_mod = first % internal_cap_;
  std::uint64_t until_wrap = internal_cap_ - first_mod;
  std::uint64_t n1 = std::min(count, until_wrap);
  std::memcpy(out, slot(victim, first), n1 * cfg_.slot_bytes);
  if (n1 < count) {
    std::memcpy(out + n1 * cfg_.slot_bytes, slot(victim, first + n1),
                (count - n1) * cfg_.slot_bytes);
  }
}

std::uint64_t SplitQueue::steal_width(std::uint64_t avail) const {
  // Thief-side policy: the *caller's* live knobs decide how much to take
  // (the victim never constrains width beyond what is visible/available).
  const auto chunk = static_cast<std::uint64_t>(live_chunk());
  if (!live_steal_half()) {
    return std::min(avail, chunk);
  }
  // Steal-half: take ceil(avail / 2), capped at the live chunk, which the
  // KnobSet in turn clamps to the chunk_max the caller's buffers (and the
  // fault-mode transaction log) are sized for.
  return std::min((avail + 1) / 2, chunk);
}

void SplitQueue::copy_slot_relaxed(Rank victim, std::uint64_t index,
                                   std::byte* out) {
  const auto* src =
      reinterpret_cast<const std::uint64_t*>(slot(victim, index));
  auto* dst = reinterpret_cast<std::uint64_t*>(out);
  const std::size_t words = cfg_.slot_bytes / sizeof(std::uint64_t);
  for (std::size_t w = 0; w < words; ++w) {
    dst[w] = std::atomic_ref<const std::uint64_t>(src[w])
                 .load(std::memory_order_relaxed);
  }
}

int SplitQueue::steal_from_locked(Rank victim, std::byte* out) {
  // The lock word is co-located with the queue's control block, so the
  // indices arrive with the lock-acquisition response -- no separate
  // round trip (this is what keeps the paper's remote ops near 5 one-way
  // latencies).
  Rank me = rt_.me();
  if (cfg_.aborting_steals) {
    // Aborting steal: a held lock means another thief (or the owner) is in
    // the critical section; re-targeting beats convoying on it. trylock
    // costs one round trip either way; nothing on the victim changed.
    if (!rt_.trylock(locks_, victim)) {
      counters().steals_lock_busy++;
      SCIOTO_TRACE_EVENT(me, trace::Ev::StealBusy, victim, 0, 0);
      SCIOTO_METRIC_CTR(me, metrics::Ctr::StealLockBusy, 1);
      return kStealBusy;
    }
  } else {
    rt_.lock(locks_, victim);
  }
  Ctl& c = ctl(victim);
  // seq_cst (rather than acquire) on the index handshake so the owner's
  // lock-free fast-path reacquire can validate against in-flight thieves;
  // same instruction on x86 loads, and no sim charge either way.
  std::uint64_t sh = c.steal_head.load(std::memory_order_seq_cst);
  std::uint64_t bd = cfg_.mode == QueueMode::NoSplit
                         ? unfrozen(c.priv_tail.load(std::memory_order_acquire))
                         : c.split.load(std::memory_order_seq_cst);
  std::uint64_t avail = bd > sh ? bd - sh : 0;
  std::uint64_t n = steal_width(avail);
  if (ft_ && n > 0 && victim != me) {
    // Injected message truncation: the steal response carries fewer tasks
    // than requested, possibly none at all.
    int allowed = fault::truncate_steal(me, victim, static_cast<int>(n));
    if (allowed == 0) {
      rt_.unlock(locks_, victim);
      counters().steals_aborted++;
      SCIOTO_TRACE_EVENT(me, trace::Ev::StealAborted, victim, 0, 0);
      return 0;
    }
    n = static_cast<std::uint64_t>(allowed);
  }
  if (n == 0) {
    rt_.unlock(locks_, victim);
    return 0;
  }
  // The ring->buffer copy itself must happen under the lock: the moment
  // steal_head moves, a remote add may reuse the slot just below it. What
  // deferred_steal_copy moves past the unlock is the chunk's *wire time*
  // (the RMA charge) -- the model of a one-sided get whose bulk payload
  // streams while the victim's lock is already free.
  if (cfg_.deferred_steal_copy) {
    copy_span_raw(victim, sh, n, out);
  } else {
    copy_out_span(victim, sh, n, out);
  }
  if (ft_ && victim != me) {
    // Log the in-flight chunk victim-side before releasing the lock: if we
    // die before requeue+commit, the victim (or its ward) replays it from
    // this buffer. The ring itself cannot serve as the log -- remote adds
    // overwrite slots just below steal_head. The data already lives on the
    // victim, so only the 16-byte record publish is charged.
    std::byte* buf = txn_buf(victim, me);
    std::uint64_t first_mod = sh % internal_cap_;
    std::uint64_t n1 = std::min(n, internal_cap_ - first_mod);
    std::memcpy(buf, slot(victim, sh), n1 * cfg_.slot_bytes);
    if (n1 < n) {
      std::memcpy(buf + n1 * cfg_.slot_bytes, slot(victim, sh + n1),
                  (n - n1) * cfg_.slot_bytes);
    }
    TxnRecord& t = txn(victim, me);
    t.count.store(n, std::memory_order_relaxed);
    t.state.store(1, std::memory_order_release);
    rt_.backend().rma_charge_oneway(victim, sizeof(TxnRecord));
  }
  c.steal_head.store(sh + n, std::memory_order_seq_cst);
  rt_.unlock(locks_, victim);
  if (cfg_.deferred_steal_copy) {
    rt_.rma_charge(victim, n * cfg_.slot_bytes);
  }
  return static_cast<int>(n);
}

void SplitQueue::commit_steal(Rank victim) {
  if (!ft_ || victim == rt_.me()) {
    return;
  }
  Rank me = rt_.me();
  TxnRecord& t = txn(victim, me);
  if (t.state.load(std::memory_order_relaxed) == 0) {
    return;
  }
  int attempt = 0;
  for (;;) {
    fault::OpFate f = fault::one_sided_fate(fault::OpKind::Commit, me, victim);
    if (f.fate == fault::Fate::Fail) {
      // A lost commit would make the victim replay a chunk we already
      // requeued, so commits retry past the drop budget (finite by plan).
      counters().commit_retries++;
      rt_.charge(fault::backoff(me, attempt++));
      rt_.relax();
      continue;
    }
    if (f.fate == fault::Fate::Delay && f.delay > 0) {
      rt_.charge(f.delay);
    }
    break;
  }
  // Closing the record on a dead victim's (still readable/writable)
  // segment is exactly what keeps the ward from replaying this chunk.
  rt_.backend().rma_charge_oneway(victim, sizeof(std::uint64_t));
  t.state.store(0, std::memory_order_release);
}

std::uint64_t SplitQueue::recover_open_txns() {
  if (!ft_) {
    return 0;
  }
  Rank me = rt_.me();
  std::uint64_t total = 0;
  for (Rank t = 0; t < rt_.nprocs(); ++t) {
    TxnRecord& rec = txn(me, t);
    if (detect::alive(t)) {
      continue;  // a live thief still commits (or reclaims) itself
    }
    // Claim 1 -> 2 before copying: a falsely-suspected thief reclaiming
    // concurrently (1 -> 0) and a ward draining us both arbitrate on the
    // same word, so exactly one party replays the chunk.
    std::uint64_t expect = 1;
    if (!rec.state.compare_exchange_strong(expect, 2,
                                           std::memory_order_acq_rel)) {
      continue;
    }
    TimeNs t0 = rt_.now();
    std::uint64_t n = rec.count.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::byte* task =
          txn_buf(me, t) + static_cast<std::size_t>(i) * cfg_.slot_bytes;
      if (!push_local(task, kAffinityHigh)) {
        stash_overflow(task);
      }
    }
    rec.state.store(0, std::memory_order_release);
    counters().tasks_recovered += n;
    total += n;
    SCIOTO_METRIC_CTR(me, metrics::Ctr::TasksRecovered, n);
    metrics_queue_gauges();
    SCIOTO_TRACE_EVENT(me, trace::Ev::TaskRecovered, t,
                       static_cast<std::uint64_t>(n), rt_.now() - t0);
  }
  return total;
}

std::uint64_t SplitQueue::drain_dead(Rank dead) {
  if (!ft_ || dead == rt_.me() || detect::alive(dead)) {
    return 0;
  }
  Rank me = rt_.me();
  Ctl& c = ctl(dead);
  // Unlocked peek first so an idle ward does not hammer the dead rank's
  // lock when there is nothing left to adopt.
  rt_.rma_charge(dead, 2 * sizeof(std::uint64_t));
  std::uint64_t sh = c.steal_head.load(std::memory_order_acquire);
  std::uint64_t pt = unfrozen(c.priv_tail.load(std::memory_order_acquire));
  bool txn_work = false;
  for (Rank t = 0; t < rt_.nprocs() && !txn_work; ++t) {
    txn_work = txn(dead, t).state.load(std::memory_order_acquire) == 1 &&
               !detect::alive(t);
  }
  if (sh >= pt && !txn_work) {
    return 0;
  }
  TimeNs t0 = rt_.now();
  std::uint64_t adopted = 0;
  // The lock serializes us against thieves that have not yet observed the
  // death, against rival wards, and -- in detector mode -- against a
  // falsely-suspected owner's locked operations.
  rt_.lock(locks_, dead);
  if (detect::alive(dead)) {
    // The "dead" rank rejoined while we waited on the lock; its queue is
    // its own again.
    rt_.unlock(locks_, dead);
    return 0;
  }
  // Lease fence: CAS our (epoch, adopter) claim into the victim's control
  // block. A falsely-suspected owner observes the fence on its next
  // acquisition and aborts instead of double-draining. If we already hold
  // this epoch's lease we re-scoop without reinstalling, so remote adds
  // that landed after the first adoption are not stranded; a rival ward's
  // same-or-newer-epoch lease means the queue is already spoken for.
  std::uint64_t ep = detect::epoch();
  std::uint64_t mine = (ep << 16) | (static_cast<std::uint64_t>(me) + 1);
  std::uint64_t cur = c.fence.load(std::memory_order_acquire);
  if (cur != mine) {
    if (cur != 0 && (cur >> 16) >= ep) {
      rt_.unlock(locks_, dead);
      return 0;
    }
    if (!c.fence.compare_exchange_strong(cur, mine,
                                         std::memory_order_acq_rel)) {
      rt_.unlock(locks_, dead);
      return 0;
    }
    rt_.backend().rma_charge_oneway(dead, sizeof(std::uint64_t));
  }
  // Freeze the queue: swinging priv_tail to the kFrozenBit-tagged anchor
  // makes every lock-free owner CAS (push pt->pt+1, pop pt->pt-1) fail --
  // in-flight ones because their pre-freeze expected value cannot match
  // the tag, future ones because the owner's re-read sees the tag and
  // bails before touching a slot. (Freezing to the bare steal_head index
  // would leave a hole: an owner confirmed dead mid-task-body could
  // re-read priv_tail==sh after the freeze, memcpy into slot sh while we
  // are copying it out, and CAS sh->sh+1 *successfully* -- torn bytes or
  // a task executed by both owner and ward.) So a falsely-suspected owner
  // can neither overwrite a slot we are copying nor execute a task we are
  // adopting; only its own fence_ack thaws the index. The RMW total order
  // on priv_tail also gives us visibility of every slot the owner
  // published before it.
  sh = c.steal_head.load(std::memory_order_acquire);
  pt = unfrozen(c.priv_tail.exchange(sh | kFrozenBit,
                                     std::memory_order_seq_cst));
  SCIOTO_CHECK_MSG(pt >= sh, "drain_dead: priv_tail " << pt
                                 << " below steal_head " << sh);
  // Adopt everything in [steal_head, priv_tail): with the owner gone the
  // private/shared distinction is moot. steal_head stays put -- the lock
  // excludes all readers -- and the queue ends low-anchored (sh = sp =
  // unfrozen(pt)) so a rejoining owner, whose fence_ack thaws priv_tail
  // back to that anchor, restarts from a trivially consistent state.
  std::byte* buf = reacquire_bufs_[static_cast<std::size_t>(me)].data();
  std::uint64_t idx = sh;
  while (idx < pt) {
    // Batch by the buffer's capacity (chunk_max), not the live policy
    // chunk: adoption drains everything regardless of steal tuning.
    std::uint64_t n = std::min<std::uint64_t>(
        pt - idx, static_cast<std::uint64_t>(chunk_max_));
    copy_out_span(dead, idx, n, buf);
    idx += n;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::byte* task = buf + static_cast<std::size_t>(i) * cfg_.slot_bytes;
      if (!push_local(task, kAffinityHigh)) {
        stash_overflow(task);
      }
      ++adopted;
    }
  }
  c.split.store(sh, std::memory_order_release);
  // Orphaned in-flight steals whose thief also died: nobody else will
  // replay them. Chunks with a live thief are left alone -- that thief
  // still requeues and commits them itself. The 1->2 claim arbitrates
  // against a falsely-suspected thief reclaiming (2->0 on our side wins;
  // its 1->0 reclaim wins) so each chunk is replayed exactly once.
  for (Rank t = 0; t < rt_.nprocs(); ++t) {
    TxnRecord& rec = txn(dead, t);
    if (detect::alive(t)) {
      continue;
    }
    std::uint64_t expect = 1;
    if (!rec.state.compare_exchange_strong(expect, 2,
                                           std::memory_order_acq_rel)) {
      continue;
    }
    std::uint64_t n = rec.count.load(std::memory_order_relaxed);
    rt_.rma_charge(dead, n * cfg_.slot_bytes);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::byte* task =
          txn_buf(dead, t) + static_cast<std::size_t>(i) * cfg_.slot_bytes;
      if (!push_local(task, kAffinityHigh)) {
        stash_overflow(task);
      }
      ++adopted;
    }
    rec.state.store(0, std::memory_order_release);
  }
  rt_.unlock(locks_, dead);
  if (adopted > 0) {
    counters().tasks_recovered += adopted;
    SCIOTO_METRIC_CTR(me, metrics::Ctr::TasksRecovered, adopted);
    metrics_queue_gauges();
    SCIOTO_TRACE_EVENT(me, trace::Ev::TaskRecovered, dead, adopted,
                       rt_.now() - t0);
  }
  return adopted;
}

std::uint64_t SplitQueue::fence_ack() {
  if (!ft_) {
    return 0;
  }
  Rank me = rt_.me();
  Ctl& c = ctl(me);
  // Take our own lock unconditionally -- even when the fence currently
  // reads 0 -- and keep it across the clear, the thaw, AND the membership
  // rejoin. A ward that passed its under-lock alive() re-check serializes
  // here: either its fence install happened before we got the lock (we
  // clear it below) or it acquires the lock after rejoin() marked us
  // alive again and its re-check bails. An unlocked fence==0 early-out
  // followed by a rejoin outside the lock leaves a fatal window: the ward
  // installs its fence just after our read, we rejoin, and -- being alive
  // -- we never come back to clear it, so pops fail, reacquire returns 0,
  // and the stash counts as live work forever (termination hangs).
  rt_.lock(locks_, me);
  counters().owner_lock_acqs++;
  std::uint64_t old = c.fence.exchange(0, std::memory_order_acq_rel);
  std::uint64_t pt = c.priv_tail.load(std::memory_order_relaxed);
  if (pt & kFrozenBit) {
    // Thaw: restore the low anchor the adopter's freeze tagged (it left
    // sh = split = unfrozen(priv_tail)), re-enabling our lock-free ops.
    c.priv_tail.store(unfrozen(pt), std::memory_order_release);
  }
  if (detect::active() && !detect::alive(me)) {
    detect::rejoin(me);
  }
  rt_.unlock(locks_, me);
  return old;
}

bool SplitQueue::reclaim_txn(Rank victim) {
  Rank me = rt_.me();
  if (!ft_ || victim == me) {
    return false;
  }
  TxnRecord& rec = txn(victim, me);
  // 1 -> 0: the chunk is still ours (no ward claimed it while we were
  // presumed dead). Any other state means a ward won the 1 -> 2 claim (or
  // already finished replaying it) and our copy must be discarded.
  std::uint64_t expect = 1;
  bool won = rec.state.compare_exchange_strong(expect, 0,
                                               std::memory_order_acq_rel);
  rt_.backend().rma_charge_oneway(victim, sizeof(std::uint64_t));
  return won;
}

void SplitQueue::stash_overflow(const std::byte* task) {
  auto& ov = overflow_[static_cast<std::size_t>(rt_.me())];
  const std::size_t n = cfg_.slot_bytes;
  // Alias-safe append: if `task` points into ov's own storage, a plain
  // insert() could reallocate and then copy from freed memory. Grow
  // first, then copy by offset.
  const std::byte* base = ov.data();
  const std::size_t old_size = ov.size();
  const bool aliases = std::less_equal<const std::byte*>{}(base, task) &&
                       std::less<const std::byte*>{}(task, base + old_size);
  const std::size_t off = aliases ? static_cast<std::size_t>(task - base) : 0;
  ov.resize(old_size + n);
  std::memcpy(ov.data() + old_size, aliases ? ov.data() + off : task, n);
}

bool SplitQueue::overflow_pending() const {
  return ft_ && !overflow_[static_cast<std::size_t>(rt_.me())].empty();
}

std::uint64_t SplitQueue::flush_overflow() {
  if (!ft_) {
    return 0;
  }
  auto& ov = overflow_[static_cast<std::size_t>(rt_.me())];
  std::uint64_t moved = 0;
  while (!ov.empty()) {
    const std::byte* task = ov.data() + ov.size() - cfg_.slot_bytes;
    // try_push_local, not push_local: the stash-on-fence fallback would
    // append a copy of the very task we are flushing (reading from ov
    // while growing it) and report success, so the loop would re-flush
    // the identical task forever. A Fenced outcome instead leaves the
    // task stashed until after rejoin; Full leaves it for a later pass.
    if (try_push_local(task, kAffinityHigh) != PushOutcome::Ok) {
      break;
    }
    ov.resize(ov.size() - cfg_.slot_bytes);
    ++moved;
  }
  return moved;
}

void SplitQueue::store_slot_relaxed(Rank victim, std::uint64_t index,
                                    const std::byte* src) {
  auto* dst = reinterpret_cast<std::uint64_t*>(slot(victim, index));
  const auto* s = reinterpret_cast<const std::uint64_t*>(src);
  const std::size_t words = cfg_.slot_bytes / sizeof(std::uint64_t);
  for (std::size_t w = 0; w < words; ++w) {
    std::atomic_ref<std::uint64_t>(dst[w]).store(s[w],
                                                 std::memory_order_relaxed);
  }
}

int SplitQueue::steal_from_lockfree(Rank victim, std::byte* out) {
  // Chase-Lev steal, chunked: load the tagged top word, then the split
  // ("bottom" of the shared window), copy the chunk speculatively, and
  // claim it with one CAS of raw -> raw + n (tag preserved: the index
  // lives in the low 48 bits). The loads are seq_cst *in this order* --
  // the owner's validated split-lowering depends on it: any thief whose
  // top load is ordered after the owner's validation load must also read
  // the lowered split, so at most one stale-split claim (width clamped to
  // chunk_max by the KnobSet) can land past the validation, which is
  // exactly the margin the owner checks. A failed CAS means the window
  // moved (a thief claimed, or an add bumped the tag); retry bounded
  // like the wait-free path, but cheaply:
  //
  //  * The failed CAS itself returned the current raw word, and an RMW
  //    read is as good a top observation as a load in the seq_cst order
  //    the margin lemma needs (observe top, THEN load split) -- so a
  //    retry skips the index fetch and refreshes only the split word.
  //    The split refresh is NOT optional: a retry that reused a stale
  //    split could claim past a validated split-lowering's margin.
  //  * The split refresh and the speculative re-copy are both plain gets
  //    from the victim, so a retry issues them as one non-blocking pair
  //    completed by a single wait (the re-copy width is sized from the
  //    stale split and the claim clamped to the fresh value afterwards);
  //    the pair is charged as one combined transfer. That takes a full
  //    round trip off every retry relative to the serial first attempt.
  //  * If the tag has not moved since `out` was filled, no add has
  //    rewritten any slot -- steals only advance top, and pushes stay
  //    above the split -- so the buffered copy is still byte-accurate
  //    for every index >= the new top. The retry then clamps its claim
  //    to the data it already holds instead of re-paying the chunk's
  //    wire time (the dominant cost of a lost race on big tasks).
  //  * Losing a claim means other thieves are mid-window; a short,
  //    linearly growing backoff breaks the lock-step convoy where every
  //    round re-runs the full field minus one.
  Ctl& c = ctl(victim);
  const bool remote = victim != rt_.me();
  std::uint64_t raw = 0;
  std::uint64_t bd = 0;
  bool have_raw = false;        // raw already witnessed by a failed CAS
  std::uint64_t copy_raw = 0;   // raw observed when `out` was filled
  std::uint64_t copy_base = 0;  // first index held in `out`
  std::uint64_t copy_n = 0;     // slots held in `out`
  for (int attempt = 0; attempt < 16; ++attempt) {
    std::uint64_t sh;
    std::uint64_t n;
    bool reuse = false;
    if (!have_raw) {
      if (remote) {
        rt_.rma_charge(victim, 2 * sizeof(std::uint64_t));  // fetch indices
      }
      raw = c.steal_head.load(std::memory_order_seq_cst);
      sh = sh_idx(raw);
      bd = c.split.load(std::memory_order_seq_cst);
      std::uint64_t avail = bd > sh ? bd - sh : 0;
      n = steal_width(avail);
      if (n == 0) {
        return 0;
      }
      // Speculative copy: may race a concurrent overwrite, but a lost CAS
      // below discards the data, so torn reads never escape.
      if (remote) {
        rt_.rma_charge(victim, n * cfg_.slot_bytes);
      }
    } else {
      sh = sh_idx(raw);
      reuse = copy_n > 0 &&
              (copy_raw >> kShTagShift) == (raw >> kShTagShift) &&
              sh >= copy_base && sh < copy_base + copy_n;
      // Width of the speculative re-copy, sized from the stale split
      // (the fresh value is in flight alongside it).
      std::uint64_t stale_avail = bd > sh ? bd - sh : 0;
      std::uint64_t n_spec = reuse ? 0 : steal_width(stale_avail);
      if (remote) {
        rt_.rma_charge(victim,
                       sizeof(std::uint64_t) + n_spec * cfg_.slot_bytes);
      }
      bd = c.split.load(std::memory_order_seq_cst);
      std::uint64_t avail = bd > sh ? bd - sh : 0;
      n = steal_width(avail);
      if (n == 0) {
        return 0;
      }
      if (reuse) {
        n = std::min(n, copy_base + copy_n - sh);
        counters().steal_copy_reuses++;
      } else if (n > n_spec) {
        // A release raised the split past the stale window mid-retry;
        // fetch the extra slots the speculative get did not cover.
        if (remote) {
          rt_.rma_charge(victim, (n - n_spec) * cfg_.slot_bytes);
        }
      }
    }
    if (!reuse) {
      for (std::uint64_t i = 0; i < n; ++i) {
        copy_slot_relaxed(victim, sh + i,
                          out + static_cast<std::size_t>(i) * cfg_.slot_bytes);
      }
      copy_raw = raw;
      copy_base = sh;
      copy_n = n;
    }
    if (remote) {
      rt_.backend().rmw_charge(victim);
    }
    std::uint64_t expected = raw;
    if (c.steal_head.compare_exchange_strong(expected, raw + n,
                                             std::memory_order_seq_cst)) {
      if (sh != copy_base) {
        // Claimed a suffix of the buffered copy: slide it to the front.
        std::memmove(out,
                     out + static_cast<std::size_t>(sh - copy_base) *
                               cfg_.slot_bytes,
                     static_cast<std::size_t>(n) * cfg_.slot_bytes);
      }
      return static_cast<int>(n);
    }
    counters().cas_retries++;
    raw = expected;  // the failed CAS witnessed the current word
    have_raw = true;
    if (remote) {
      rt_.charge(kStealBackoffNs * static_cast<TimeNs>(attempt + 1));
    }
  }
  return 0;  // heavy contention: give up, caller picks another victim
}

int SplitQueue::steal_from_waitfree(Rank victim, std::byte* out) {
  Ctl& c = ctl(victim);
  const bool remote = victim != rt_.me();
  for (int attempt = 0; attempt < 16; ++attempt) {
    if (remote) {
      rt_.rma_charge(victim, 2 * sizeof(std::uint64_t));  // fetch indices
    }
    std::uint64_t sh = c.steal_head.load(std::memory_order_acquire);
    std::uint64_t bd = c.split.load(std::memory_order_acquire);
    std::uint64_t avail = bd > sh ? bd - sh : 0;
    std::uint64_t n = std::min<std::uint64_t>(
        avail, static_cast<std::uint64_t>(live_chunk()));
    if (n == 0) {
      return 0;
    }
    // Speculative copy: may race a concurrent overwrite, but a lost CAS
    // below discards the data, so torn reads never escape.
    if (remote) {
      rt_.rma_charge(victim, n * cfg_.slot_bytes);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      copy_slot_relaxed(victim, sh + i,
                        out + static_cast<std::size_t>(i) * cfg_.slot_bytes);
    }
    // Publish: one remote CAS claims the whole chunk.
    if (remote) {
      rt_.backend().rmw_charge(victim);
    }
    std::uint64_t expected = sh;
    if (c.steal_head.compare_exchange_strong(expected, sh + n,
                                             std::memory_order_acq_rel)) {
      return static_cast<int>(n);
    }
    counters().cas_retries++;
  }
  return 0;  // heavy contention: give up, caller picks another victim
}

int SplitQueue::steal_from(Rank victim, std::byte* out) {
  counters().steal_attempts++;
  SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::StealAttempt, victim, 0, 0);
  SCIOTO_METRIC_CTR(rt_.me(), metrics::Ctr::StealAttempts, 1);
  TimeNs t0 = SCIOTO_METRICS_ON() ? rt_.now() : 0;
  int n;
  switch (cfg_.mode) {
    case QueueMode::WaitFreeSteal:
      n = steal_from_waitfree(victim, out);
      break;
    case QueueMode::LockFree:
      n = steal_from_lockfree(victim, out);
      break;
    default:
      n = steal_from_locked(victim, out);
      break;
  }
  if (n > 0) {
    counters().steals_in++;
    counters().tasks_stolen_in += static_cast<std::uint64_t>(n);
    SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::StealOk, victim, n, 0);
#if SCIOTO_LINEAGE_ENABLED
    if (cfg_.lineage_off != 0 && victim != rt_.me()) {
      // The thief stamps the migration into its landed copy (the
      // victim's slots are dead or replayable either way): one hop bump
      // and one MigrateEdge per task, so per-task hop counts and the
      // steal matrix reconcile one-for-one. The self-steal guard keeps
      // the wait-free owner reacquire -- a reclaim, not a migration --
      // out of the lineage stream.
      for (int i = 0; i < n; ++i) {
        std::byte* slot =
            out + static_cast<std::size_t>(i) * cfg_.slot_bytes;
        trace::lineage::LineageRec rec;
        std::memcpy(&rec, slot + cfg_.lineage_off, sizeof(rec));
        rec.hops += 1;
        std::memcpy(slot + cfg_.lineage_off, &rec, sizeof(rec));
        SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::MigrateEdge, victim,
                           rec.hops, rec.id);
      }
    }
#endif
    SCIOTO_METRIC_CTR(rt_.me(), metrics::Ctr::Steals, 1);
    SCIOTO_METRIC_CTR(rt_.me(), metrics::Ctr::TasksStolen, n);
    if (SCIOTO_METRICS_ON()) {
      // Attempt -> tasks landed in our buffer; the thief's own gauges are
      // untouched (the stolen chunk is not in its queue yet).
      metrics::hist_record(rt_.me(), metrics::Hist::StealNs,
                           static_cast<std::uint64_t>(
                               std::max<TimeNs>(rt_.now() - t0, 0)));
    }
  } else if (n == 0) {
    // kStealBusy already traced its own event; it is neither a success
    // nor an empty-handed probe.
    SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::StealFail, victim, 0, 0);
    SCIOTO_METRIC_CTR(rt_.me(), metrics::Ctr::StealFails, 1);
  }
  return n;
}

bool SplitQueue::add_remote_waitfree(Rank target, const std::byte* task) {
  // Adders serialize among themselves on the target's lock (adds are
  // rare), but must publish with a CAS because lock-free thieves do not
  // honour the lock. Write the slot *before* publishing so a thief can
  // never observe it half-written under a successful CAS.
  Ctl& c = ctl(target);
  const bool remote = target != rt_.me();
  rt_.lock(locks_, target);
  bool ok = false;
  for (;;) {
    std::uint64_t sh = c.steal_head.load(std::memory_order_acquire);
    std::uint64_t pt = c.priv_tail.load(std::memory_order_acquire);
    if (pt - (sh - 1) >= cfg_.capacity) {
      break;
    }
    if (remote) {
      rt_.rma_charge(target, cfg_.slot_bytes);
    }
    std::memcpy(slot(target, sh - 1), task, cfg_.slot_bytes);
    if (remote) {
      rt_.backend().rmw_charge(target);
    }
    std::uint64_t expected = sh;
    if (c.steal_head.compare_exchange_strong(expected, sh - 1,
                                             std::memory_order_acq_rel)) {
      ok = true;
      break;
    }
    // A thief advanced steal_head meanwhile; rewrite at the new position.
    counters().cas_retries++;
  }
  rt_.unlock(locks_, target);
  return ok;
}

bool SplitQueue::add_remote_lockfree(Rank target, const std::byte* task) {
  // As in wait-free mode, adders serialize among themselves on the
  // target's lock (adds are rare) and publish with a CAS because thieves
  // do not honour the lock. Two lockfree-specific twists: the CAS bumps
  // the tag -- an add is precisely the operation that re-opens the ABA
  // window a monotone top never has, so it must change the word beyond
  // what a subsequent steal could undo -- and the slot write is word-wise
  // atomic, because a stale thief may still be speculatively reading a
  // physically aliased slot (its doomed claim discards whatever it tears).
  Ctl& c = ctl(target);
  const bool remote = target != rt_.me();
  rt_.lock(locks_, target);
  bool ok = false;
  for (;;) {
    std::uint64_t raw = c.steal_head.load(std::memory_order_seq_cst);
    std::uint64_t sh = sh_idx(raw);
    std::uint64_t pt = c.priv_tail.load(std::memory_order_acquire);
    if (pt - (sh - 1) >= cfg_.capacity) {
      break;
    }
    if (remote) {
      rt_.rma_charge(target, cfg_.slot_bytes);
    }
    store_slot_relaxed(target, sh - 1, task);
    if (remote) {
      rt_.backend().rmw_charge(target);
    }
    std::uint64_t expected = raw;
    if (c.steal_head.compare_exchange_strong(expected,
                                             sh_tag_bump(raw, sh - 1),
                                             std::memory_order_seq_cst)) {
      ok = true;
      break;
    }
    // A thief advanced steal_head meanwhile; rewrite at the new position.
    counters().cas_retries++;
  }
  rt_.unlock(locks_, target);
  return ok;
}

bool SplitQueue::add_remote(Rank target, const std::byte* task) {
  SCIOTO_REQUIRE(target != rt_.me(), "add_remote to self; use push_local");
  bool ok;
  if (cfg_.mode == QueueMode::WaitFreeSteal) {
    ok = add_remote_waitfree(target, task);
  } else if (cfg_.mode == QueueMode::LockFree) {
    ok = add_remote_lockfree(target, task);
  } else {
    // As in steal_from: the control block rides along with the lock grant.
    rt_.lock(locks_, target);
    Ctl& c = ctl(target);
    std::uint64_t sh = c.steal_head.load(std::memory_order_acquire);
    // unfrozen(): an add racing a dead target's adoption (alive-check then
    // death) must not misread the freeze tag as a full queue.
    std::uint64_t pt = unfrozen(c.priv_tail.load(std::memory_order_acquire));
    if (pt - (sh - 1) >= cfg_.capacity) {
      rt_.unlock(locks_, target);
      return false;
    }
    rt_.rma_charge(target, cfg_.slot_bytes);
    std::memcpy(slot(target, sh - 1), task, cfg_.slot_bytes);
    c.steal_head.store(sh - 1, std::memory_order_seq_cst);
    if (cfg_.mode == QueueMode::NoSplit) {
      // Single-region variant keeps the invariant steal_head <= split.
      std::uint64_t sp = c.split.load(std::memory_order_relaxed);
      if (sp > sh - 1) {
        // split tracks priv_tail in NoSplit mode; nothing to fix.
      }
    }
    rt_.unlock(locks_, target);
    ok = true;
  }
  if (ok) {
    counters().remote_adds++;
    SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::RemoteAdd, target, 0, 0);
  }
  return ok;
}

std::uint64_t SplitQueue::snapshot_local(std::vector<std::byte>& out) {
  Rank me = rt_.me();
  Ctl& c = ctl(me);
  std::uint64_t sh = sh_idx(c.steal_head.load(std::memory_order_acquire));
  std::uint64_t pt = unfrozen(c.priv_tail.load(std::memory_order_acquire));
  std::uint64_t n = pt > sh ? pt - sh : 0;
  std::size_t base = out.size();
  out.resize(base + static_cast<std::size_t>(n) * cfg_.slot_bytes);
  if (n > 0) {
    copy_span_raw(me, sh, n, out.data() + base);
  }
  const auto& ov = overflow_[static_cast<std::size_t>(me)];
  out.insert(out.end(), ov.begin(), ov.end());
  return n + static_cast<std::uint64_t>(ov.size() / cfg_.slot_bytes);
}

SplitQueue::Snapshot SplitQueue::debug_snapshot(Rank r) {
  Ctl& c = ctl(r);
  Snapshot s;
  // Masked: the LockFree ABA tag is protocol-internal, not queue state.
  s.steal_head = sh_idx(c.steal_head.load(std::memory_order_seq_cst));
  s.split = c.split.load(std::memory_order_seq_cst);
  s.priv_tail = c.priv_tail.load(std::memory_order_seq_cst);
  return s;
}

std::uint64_t SplitQueue::debug_patch_hash(Rank r) {
  Snapshot s = debug_snapshot(r);
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(s.steal_head);
  mix(s.split);
  mix(s.priv_tail);
  const std::byte* ring = rt_.seg_ptr(seg_, r) + slots_off_;
  const std::size_t bytes =
      static_cast<std::size_t>(internal_cap_) * cfg_.slot_bytes;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= static_cast<std::uint64_t>(ring[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void SplitQueue::metrics_owner_op(metrics::Hist h, TimeNs t0) {
  if (!SCIOTO_METRICS_ON()) {
    return;
  }
  // Under sim this measures the op's charged virtual time (lock waits
  // included); under threads, actual elapsed wall time.
  metrics::hist_record(rt_.me(), h,
                       static_cast<std::uint64_t>(
                           std::max<TimeNs>(rt_.now() - t0, 0)));
  metrics_queue_gauges();
}

void SplitQueue::metrics_queue_gauges() {
  if (!SCIOTO_METRICS_ON()) {
    return;
  }
  Rank me = rt_.me();
  Ctl& c = ctl(me);
  std::uint64_t pt = unfrozen(c.priv_tail.load(std::memory_order_relaxed));
  std::uint64_t sp = c.split.load(std::memory_order_relaxed);
  std::uint64_t sh = sh_idx(c.steal_head.load(std::memory_order_relaxed));
  metrics::gauge_set(me, metrics::Gauge::QueueDepth, pt > sh ? pt - sh : 0);
  metrics::gauge_set(me, metrics::Gauge::QueueShared, sp > sh ? sp - sh : 0);
  // Split position relative to the ring origin: how far the split point
  // has travelled this phase (monotone except for reacquires).
  metrics::gauge_set(me, metrics::Gauge::QueueSplit,
                     sp > kIndexBase ? sp - kIndexBase : 0);
}

void SplitQueue::reset_collective() {
  rt_.barrier();
  Ctl& c = ctl(rt_.me());
  c.steal_head.store(kIndexBase, std::memory_order_relaxed);
  c.split.store(kIndexBase, std::memory_order_relaxed);
  c.priv_tail.store(kIndexBase, std::memory_order_relaxed);
  c.fence.store(0, std::memory_order_relaxed);
  if (ft_) {
    for (Rank t = 0; t < rt_.nprocs(); ++t) {
      txn(rt_.me(), t).state.store(0, std::memory_order_relaxed);
      txn(rt_.me(), t).count.store(0, std::memory_order_relaxed);
    }
    overflow_[static_cast<std::size_t>(rt_.me())].clear();
  }
  counters() = Counters{};  // per-phase statistics start fresh
  rt_.barrier();
}

}  // namespace scioto
