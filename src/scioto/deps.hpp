// DEPRECATED compatibility shim -- the TaskDag stub that lived here grew
// into the full dependency engine in src/dag (conflict edges, remote data
// versioning, streaming graph build). This header survives for one release
// so existing includes and the `TaskDag` spelling keep compiling:
//
//   scioto::TaskDag dag(tc);          // now scioto::dag::DagScheduler
//   TaskDag::NodeId id = dag.add_node(home, fn);   // ids are now int64
//
// The old API surface (add_node(Rank, std::function<void()>), add_edge,
// num_nodes, execute) is a strict subset of DagScheduler's; the only
// observable change is stronger validation -- add_edge rejects self-edges
// and out-of-range ids at call time, and execute() names the offending
// node ids when it finds a cycle.
//
// New code should include "dag/dag.hpp" and use scioto::dag::DagScheduler
// directly. This alias will be removed in the next release.
#pragma once

#include "dag/dag.hpp"

namespace scioto {

using TaskDag = dag::DagScheduler;

}  // namespace scioto
