// Inter-task dependencies: the extension sketched in the paper's §8
// ("presently working on extending our independent task model with support
// for tasks that exhibit arbitrary inter-task dependencies").
//
// TaskDag lets a program describe a DAG of tasks and executes it on top of
// an ordinary TaskCollection: each node carries a remaining-dependency
// counter homed on the node's home rank; when a task finishes, it
// decrements each successor's counter with a one-sided fetch-and-add, and
// the decrement that reaches zero enqueues the successor (with high
// affinity on its home rank). Ready tasks still migrate freely via work
// stealing, so load balancing and locality-aware placement compose with
// dependencies.
//
// Build protocol: the DAG description is *replicated* -- every rank makes
// identical add_node/add_edge calls (the same SPMD discipline as callback
// registration). This keeps node bodies local everywhere a task might
// execute and avoids serializing closures through task descriptors.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "scioto/task_collection.hpp"

namespace scioto {

class TaskDag {
 public:
  using NodeId = std::int32_t;

  /// Collective: registers the internal dispatch callback on `tc`. Must be
  /// created before tc's other registrations finish diverging (same-order
  /// rule applies).
  explicit TaskDag(TaskCollection& tc);

  /// Replicated build call: all ranks add the same node with the same
  /// home. `fn` runs on whichever rank executes the node.
  NodeId add_node(Rank home, std::function<void()> fn);

  /// Replicated build call: `succ` cannot start until `pred` completed.
  /// Edges must form a DAG; cycles are detected at execute().
  void add_edge(NodeId pred, NodeId succ);

  std::size_t num_nodes() const { return nodes_.size(); }

  /// Collective: seeds all ready nodes and processes the collection until
  /// every node has executed. Throws scioto::Error if the graph has a
  /// cycle (some nodes can never become ready).
  void execute();

 private:
  struct Node {
    Rank home = 0;
    std::function<void()> fn;
    std::int64_t deps = 0;
    std::vector<NodeId> successors;
    /// Index of this node's counter within its home rank's slot array.
    std::int64_t home_slot = -1;
  };

  struct DagBody {
    NodeId node;
  };

  void run_node(TaskContext& ctx);
  std::size_t counter_offset(NodeId id) const;

  TaskCollection& tc_;
  TaskHandle dispatch_handle_ = kInvalidHandle;
  std::vector<Node> nodes_;
  std::vector<std::int64_t> slots_per_rank_;
  pgas::SegId counters_seg_ = -1;
  bool executed_ = false;
};

}  // namespace scioto
