#include "scioto/deps.hpp"

#include <algorithm>

namespace scioto {

TaskDag::TaskDag(TaskCollection& tc) : tc_(tc) {
  dispatch_handle_ =
      tc_.register_callback([this](TaskContext& ctx) { run_node(ctx); });
  slots_per_rank_.assign(static_cast<std::size_t>(tc_.runtime().nprocs()), 0);
}

TaskDag::NodeId TaskDag::add_node(Rank home, std::function<void()> fn) {
  SCIOTO_REQUIRE(!executed_, "TaskDag::add_node after execute()");
  SCIOTO_REQUIRE(home >= 0 && home < tc_.runtime().nprocs(),
                 "invalid home rank " << home);
  Node n;
  n.home = home;
  n.fn = std::move(fn);
  n.home_slot = slots_per_rank_[static_cast<std::size_t>(home)]++;
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void TaskDag::add_edge(NodeId pred, NodeId succ) {
  SCIOTO_REQUIRE(!executed_, "TaskDag::add_edge after execute()");
  SCIOTO_REQUIRE(pred >= 0 && static_cast<std::size_t>(pred) < nodes_.size() &&
                     succ >= 0 &&
                     static_cast<std::size_t>(succ) < nodes_.size(),
                 "add_edge with invalid node id");
  SCIOTO_REQUIRE(pred != succ, "self-dependency on node " << pred);
  nodes_[static_cast<std::size_t>(pred)].successors.push_back(succ);
  nodes_[static_cast<std::size_t>(succ)].deps++;
}

std::size_t TaskDag::counter_offset(NodeId id) const {
  return static_cast<std::size_t>(nodes_[static_cast<std::size_t>(id)]
                                      .home_slot) *
         sizeof(std::int64_t);
}

void TaskDag::run_node(TaskContext& ctx) {
  NodeId id = ctx.body_as<DagBody>().node;
  Node& node = nodes_[static_cast<std::size_t>(id)];
  node.fn();
  // Completion: release successors via one-sided decrements.
  pgas::Runtime& rt = tc_.runtime();
  for (NodeId s : node.successors) {
    const Node& succ = nodes_[static_cast<std::size_t>(s)];
    std::int64_t prev =
        rt.fetch_add(counters_seg_, succ.home, counter_offset(s), -1);
    SCIOTO_CHECK_MSG(prev >= 1, "dependency counter underflow on node " << s);
    if (prev == 1) {
      Task t = tc_.task_create(sizeof(DagBody), dispatch_handle_);
      t.body_as<DagBody>().node = s;
      tc_.add(succ.home, kAffinityHigh, t);
    }
  }
}

void TaskDag::execute() {
  SCIOTO_REQUIRE(!executed_, "TaskDag::execute called twice");
  executed_ = true;
  pgas::Runtime& rt = tc_.runtime();

  // Consistency check: the replicated build must agree across ranks.
  auto total = rt.allreduce_sum<std::int64_t>(
      static_cast<std::int64_t>(nodes_.size()));
  SCIOTO_REQUIRE(total == static_cast<std::int64_t>(nodes_.size()) *
                              rt.nprocs(),
                 "TaskDag build diverged across ranks");

  // Counters live on each node's home rank.
  std::int64_t max_slots = 0;
  for (std::int64_t s : slots_per_rank_) {
    max_slots = std::max(max_slots, s);
  }
  counters_seg_ = rt.seg_alloc(static_cast<std::size_t>(
      std::max<std::int64_t>(max_slots, 1) *
      static_cast<std::int64_t>(sizeof(std::int64_t))));
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.home == rt.me()) {
      auto* p = reinterpret_cast<std::int64_t*>(
          rt.seg_ptr(counters_seg_, rt.me()) +
          counter_offset(static_cast<NodeId>(i)));
      *p = n.deps;
    }
  }
  rt.barrier();

  // Seed roots at their home ranks.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.home == rt.me() && n.deps == 0) {
      Task t = tc_.task_create(sizeof(DagBody), dispatch_handle_);
      t.body_as<DagBody>().node = static_cast<NodeId>(i);
      tc_.add_local(t);
    }
  }

  tc_.process();

  // A cycle leaves nodes with positive counters: detect and report.
  std::int64_t stuck_local = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.home == rt.me()) {
      auto* p = reinterpret_cast<std::int64_t*>(
          rt.seg_ptr(counters_seg_, rt.me()) +
          counter_offset(static_cast<NodeId>(i)));
      if (*p > 0) {
        ++stuck_local;
      }
    }
  }
  std::int64_t stuck = rt.allreduce_sum(stuck_local);
  rt.seg_free(counters_seg_);
  SCIOTO_REQUIRE(stuck == 0, "TaskDag contains a cycle: "
                                 << stuck << " node(s) never became ready");
}

}  // namespace scioto
