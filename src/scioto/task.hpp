// Task descriptors and the collective callback registry (paper §2.1, §3.2).
//
// A task descriptor is a contiguous object: a fixed header holding task
// meta-data (the portable callback handle, affinity, body size, creator)
// followed by an opaque user-defined body. Descriptors are copied in and
// out of queues wholesale, which is what lets several of them move in one
// one-sided transfer during a steal.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "base/error.hpp"
#include "base/types.hpp"

namespace scioto {

class TaskCollection;

/// Portable handle naming a collectively registered callback.
using TaskHandle = std::int32_t;
inline constexpr TaskHandle kInvalidHandle = -1;

/// Affinity levels (paper §2, Figure 2): tasks with high affinity are
/// placed at the owner-processed head of the queue; low-affinity tasks go
/// to the steal end and are the first to migrate.
inline constexpr int kAffinityLow = 0;
inline constexpr int kAffinityHigh = 1;

/// Fixed meta-data prefix of every task descriptor.
struct TaskHeader {
  TaskHandle callback = kInvalidHandle;
  std::int32_t affinity = kAffinityHigh;
  std::int32_t body_bytes = 0;
  std::int32_t created_by = kNoRank;
};
static_assert(sizeof(TaskHeader) == 16);

/// Execution context handed to a task's callback: a portable reference to
/// the collection it runs on (for spawning subtasks) plus a local pointer
/// to the descriptor's body (paper §3.2).
struct TaskContext {
  TaskCollection& tc;
  TaskHeader& header;
  void* body;
  Rank executing_rank;

  template <class T>
  T& body_as() {
    SCIOTO_CHECK_MSG(sizeof(T) <= static_cast<std::size_t>(header.body_bytes),
                     "body_as<T> with sizeof(T)=" << sizeof(T)
                         << " > body_bytes=" << header.body_bytes);
    return *static_cast<T*>(body);
  }
};

using TaskFn = std::function<void(TaskContext&)>;

/// An owning task buffer with the paper's tc_task_create / tc_task_body /
/// tc_task_reuse lifecycle. Adding a task copies the descriptor into the
/// collection, so the buffer is immediately reusable.
class Task {
 public:
  /// Creates a descriptor with a body of `body_bytes` (zeroed) bound to
  /// callback `handle`.
  Task(std::int32_t body_bytes, TaskHandle handle);

  TaskHeader& header() { return *reinterpret_cast<TaskHeader*>(buf_.data()); }
  const TaskHeader& header() const {
    return *reinterpret_cast<const TaskHeader*>(buf_.data());
  }

  void* body() { return buf_.data() + sizeof(TaskHeader); }
  const void* body() const { return buf_.data() + sizeof(TaskHeader); }

  template <class T>
  T& body_as() {
    SCIOTO_REQUIRE(sizeof(T) <= static_cast<std::size_t>(header().body_bytes),
                   "task body too small for requested type");
    return *static_cast<T*>(body());
  }

  /// Marks the buffer available for building the next task (API parity
  /// with tc_task_reuse; copy-in semantics make this a semantic no-op).
  void reuse() {}

  /// Whole-descriptor bytes (header + body), as stored in queues.
  const std::byte* data() const { return buf_.data(); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

/// Collectively built table of task callbacks. Handles are dense indices
/// valid on every rank, making them safe to embed in task descriptors that
/// migrate (paper §3.2).
class CallbackRegistry {
 public:
  /// Collective registration protocol is driven by TaskCollection; this
  /// container just stores in registration order.
  TaskHandle append(TaskFn fn) {
    fns_.push_back(std::move(fn));
    return static_cast<TaskHandle>(fns_.size() - 1);
  }

  const TaskFn& lookup(TaskHandle h) const {
    SCIOTO_REQUIRE(h >= 0 && static_cast<std::size_t>(h) < fns_.size(),
                   "invalid task handle " << h);
    return fns_[static_cast<std::size_t>(h)];
  }

  std::size_t size() const { return fns_.size(); }

 private:
  std::vector<TaskFn> fns_;
};

}  // namespace scioto
