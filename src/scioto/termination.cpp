#include "scioto/termination.hpp"

#include "trace/trace.hpp"

namespace scioto {

TerminationDetector::TerminationDetector(pgas::Runtime& rt)
    : TerminationDetector(rt, Config{}) {}

TerminationDetector::TerminationDetector(pgas::Runtime& rt, Config cfg)
    : rt_(rt), cfg_(cfg) {
  seg_ = rt_.seg_alloc(sizeof(TdCtl));
  if (rt_.me() == 0) {
    for (Rank r = 0; r < rt_.nprocs(); ++r) {
      new (rt_.seg_ptr(seg_, r)) TdCtl();
    }
  }
  state_.resize(static_cast<std::size_t>(rt_.nprocs()));
  counters_.resize(static_cast<std::size_t>(rt_.nprocs()));
  rt_.barrier();
}

void TerminationDetector::destroy() { rt_.seg_free(seg_); }

TerminationDetector::TdCtl& TerminationDetector::ctl(Rank r) {
  return *reinterpret_cast<TdCtl*>(rt_.seg_ptr(seg_, r));
}

bool TerminationDetector::has_child(int slot) const {
  return 2 * rt_.me() + 1 + slot < rt_.nprocs();
}

Rank TerminationDetector::child(int slot) const {
  return 2 * rt_.me() + 1 + slot;
}

bool TerminationDetector::is_descendant(Rank v, Rank anc) {
  if (v <= anc) {
    return false;  // descendants have strictly larger heap indices
  }
  while (v > anc) {
    v = (v - 1) / 2;
  }
  return v == anc;
}

template <class T, class V>
void TerminationDetector::put_token(Rank target, std::atomic<T>& field,
                                    V value, [[maybe_unused]] int what) {
  rt_.backend().rma_charge_oneway(target, sizeof(T));
  field.store(static_cast<T>(value), std::memory_order_release);
  SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::TokenSend, target, what, 0);
}

void TerminationDetector::reset_local() {
  TdCtl& my = ctl(rt_.me());
  my.down_wave.store(0, std::memory_order_relaxed);
  my.up[0].store(0, std::memory_order_relaxed);
  my.up[1].store(0, std::memory_order_relaxed);
  my.term_wave.store(0, std::memory_order_relaxed);
  my.dirty.store(0, std::memory_order_relaxed);
  state_[static_cast<std::size_t>(rt_.me())] = LocalState{};
  counters_[static_cast<std::size_t>(rt_.me())] = Counters{};
}

void TerminationDetector::reset() {
  rt_.barrier();
  reset_local();
  rt_.barrier();
}

void TerminationDetector::note_lb_op(Rank other) {
  LocalState& st = state_[static_cast<std::size_t>(rt_.me())];
  st.self_black = true;

  if (cfg_.color_optimization) {
    // Skip the mark if we have not voted in the newest wave we know of:
    // our own future vote will be black and forces the re-vote anyway.
    bool have_voted = st.voted_wave > 0 && st.voted_wave == st.wave_seen;
    if (!have_voted || is_descendant(other, rt_.me())) {
      my_counters().dirty_marks_skipped++;
      return;
    }
  }
  put_token(other, ctl(other).dirty, 1u, /*what=*/3);
  my_counters().dirty_marks_sent++;
}

TerminationDetector::Status TerminationDetector::step() {
  Rank me = rt_.me();
  LocalState& st = state_[static_cast<std::size_t>(me)];
  if (st.terminated) {
    return Status::Terminated;
  }
  rt_.charge(rt_.machine().poll);
  TdCtl& my = ctl(me);

  // ---- Termination broadcast ----
  std::uint64_t tw = my.term_wave.load(std::memory_order_acquire);
  if (tw != 0) {
    if (!st.term_forwarded) {
      st.term_forwarded = true;
      for (int s = 0; s < 2; ++s) {
        if (has_child(s)) {
          put_token(child(s), ctl(child(s)).term_wave, tw, /*what=*/2);
        }
      }
    }
    st.terminated = true;
    SCIOTO_TRACE_EVENT(me, trace::Ev::Terminate, tw, 0, 0);
    return Status::Terminated;
  }

  // ---- Down wave ----
  if (me == 0) {
    if (st.wave_seen == st.voted_wave) {
      // Previous wave concluded (or none started): launch the next one.
      ++st.wave_seen;
      my_counters().waves_started++;
      SCIOTO_TRACE_EVENT(me, trace::Ev::WaveStart, st.wave_seen, 0, 0);
      for (int s = 0; s < 2; ++s) {
        if (has_child(s)) {
          put_token(child(s), ctl(child(s)).down_wave, st.wave_seen,
                    /*what=*/0);
        }
      }
    }
  } else {
    std::uint64_t dw = my.down_wave.load(std::memory_order_acquire);
    if (dw > st.wave_seen) {
      st.wave_seen = dw;
      for (int s = 0; s < 2; ++s) {
        if (has_child(s)) {
          put_token(child(s), ctl(child(s)).down_wave, st.wave_seen,
                    /*what=*/0);
        }
      }
    }
  }

  // ---- Up wave: vote once per wave, when idle and children reported ----
  if (st.wave_seen > st.voted_wave) {
    bool children_in = true;
    bool children_black = false;
    for (int s = 0; s < 2; ++s) {
      if (!has_child(s)) continue;
      std::uint64_t u = my.up[s].load(std::memory_order_acquire);
      if ((u >> 1) != st.wave_seen) {
        children_in = false;
        break;
      }
      children_black = children_black || (u & 1);
    }
    if (children_in) {
      bool black = children_black || st.self_black ||
                   my.dirty.exchange(0, std::memory_order_acq_rel) != 0;
      st.self_black = false;
      st.voted_wave = st.wave_seen;
      my_counters().waves_voted++;
      if (black) {
        my_counters().black_votes++;
      }
      SCIOTO_TRACE_EVENT(me, trace::Ev::Vote, st.wave_seen, black ? 1 : 0, 0);
      if (me == 0) {
        if (!black) {
          // All-white wave: decide termination and broadcast.
          my.term_wave.store(st.wave_seen, std::memory_order_release);
        }
        // Black: the next step() launches a fresh wave.
      } else {
        Rank parent = (me - 1) / 2;
        int slot = (me - 1) % 2;
        put_token(parent, ctl(parent).up[slot],
                  (st.wave_seen << 1) | (black ? 1u : 0u), /*what=*/1);
      }
    }
  }
  return Status::Working;
}

TerminationDetector::Counters TerminationDetector::counters_sum() const {
  Counters local = counters();
  Counters total;
  total.waves_voted = rt_.allreduce_sum(local.waves_voted);
  total.black_votes = rt_.allreduce_sum(local.black_votes);
  total.dirty_marks_sent = rt_.allreduce_sum(local.dirty_marks_sent);
  total.dirty_marks_skipped = rt_.allreduce_sum(local.dirty_marks_skipped);
  total.waves_started = rt_.allreduce_sum(local.waves_started);
  return total;
}

}  // namespace scioto
