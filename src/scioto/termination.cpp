#include "scioto/termination.hpp"

#include <algorithm>
#include <cstddef>

#include "detect/membership.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace scioto {

namespace {

// All mailbox access goes through atomic_ref so the one-sided stores the
// runtime performs on our TdCtl are race-free against these local ops.
template <class T>
std::atomic_ref<T> aref(T& word) {
  return std::atomic_ref<T>(word);
}

}  // namespace

TerminationDetector::TerminationDetector(pgas::Runtime& rt)
    : TerminationDetector(rt, Config{}) {}

TerminationDetector::TerminationDetector(pgas::Runtime& rt, Config cfg)
    : rt_(rt), cfg_(cfg) {
  seg_ = rt_.seg_alloc(sizeof(TdCtl));
  if (rt_.me() == 0) {
    for (Rank r = 0; r < rt_.nprocs(); ++r) {
      new (rt_.seg_ptr(seg_, r)) TdCtl();
    }
  }
  state_.resize(static_cast<std::size_t>(rt_.nprocs()));
  counters_.resize(static_cast<std::size_t>(rt_.nprocs()));
  rt_.barrier();
}

void TerminationDetector::destroy() { rt_.seg_free(seg_); }

TerminationDetector::TdCtl& TerminationDetector::ctl(Rank r) {
  return *reinterpret_cast<TdCtl*>(rt_.seg_ptr(seg_, r));
}

bool TerminationDetector::pos_is_descendant(int v, int anc) {
  if (v <= anc) {
    return false;  // descendants have strictly larger heap indices
  }
  while (v > anc) {
    v = (v - 1) / 2;
  }
  return v == anc;
}

bool TerminationDetector::is_descendant(const LocalState& st, Rank v,
                                        Rank anc) const {
  if (st.epoch_seen == 0) {
    // Static tree: rank == heap position.
    return pos_is_descendant(v, anc);
  }
  int pv = -1;
  int pa = -1;
  for (std::size_t i = 0; i < st.alive.size(); ++i) {
    if (st.alive[i] == v) pv = static_cast<int>(i);
    if (st.alive[i] == anc) pa = static_cast<int>(i);
  }
  if (pv < 0 || pa < 0) {
    return false;
  }
  return pos_is_descendant(pv, pa);
}

void TerminationDetector::maybe_resplice(LocalState& st) {
  std::uint64_t e = detect::epoch();
  if (e == st.epoch_seen) {
    return;
  }
  Rank me = rt_.me();
  std::vector<Rank> alive = detect::alive_ranks();
  int pos = -1;
  for (std::size_t i = 0; i < alive.size(); ++i) {
    if (alive[i] == me) {
      pos = static_cast<int>(i);
      break;
    }
  }
  if (pos < 0) {
    // This rank is (falsely) confirmed dead in the new epoch and has no
    // seat in the respliced tree. Keep the previous tree rather than
    // electing ourselves root-by-default: the work loop observes the same
    // verdict, fences off, and rejoins -- which bumps the epoch again
    // with us back in the alive list.
    return;
  }
  st.epoch_seen = e;
  st.alive = std::move(alive);
  st.parent =
      pos == 0 ? kNoRank : st.alive[static_cast<std::size_t>((pos - 1) / 2)];
  st.up_slot = pos == 0 ? 0 : (pos - 1) % 2;
  for (int s = 0; s < 2; ++s) {
    std::size_t k = static_cast<std::size_t>(2 * pos + 1 + s);
    st.kids[s] = k < st.alive.size() ? st.alive[k] : kNoRank;
  }
  // Restart wave numbering in the new epoch and force our next vote black:
  // together these guarantee no all-white decision rests on votes cast
  // before the death, so termination is never declared early.
  st.wave_seen = 0;
  st.voted_wave = 0;
  st.self_black = !st.join_white;
  st.join_white = false;
  my_counters().resplices++;
  SCIOTO_TRACE_EVENT(me, trace::Ev::TreeRespliced, static_cast<long long>(e),
                     static_cast<long long>(st.alive.size()), 0);
}

void TerminationDetector::put_token(Rank target, std::size_t offset,
                                    std::uint64_t value, std::size_t width,
                                    [[maybe_unused]] int what) {
  int retries = 0;
  rt_.put_word_reliable(seg_, target, offset, value, width, &retries);
  my_counters().token_retries += static_cast<std::uint64_t>(retries);
  SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::TokenSend, target, what, 0);
}

void TerminationDetector::reset_local() {
  TdCtl& my = ctl(rt_.me());
  aref(my.down_wave).store(0, std::memory_order_relaxed);
  aref(my.up[0]).store(0, std::memory_order_relaxed);
  aref(my.up[1]).store(0, std::memory_order_relaxed);
  aref(my.term_wave).store(0, std::memory_order_relaxed);
  aref(my.dirty).store(0, std::memory_order_relaxed);
  LocalState st{};
  Rank me = rt_.me();
  st.parent = me == 0 ? kNoRank : (me - 1) / 2;
  st.up_slot = me == 0 ? 0 : (me - 1) % 2;
  for (int s = 0; s < 2; ++s) {
    Rank c = 2 * me + 1 + s;
    st.kids[s] = c < rt_.nprocs() ? c : kNoRank;
  }
  state_[static_cast<std::size_t>(me)] = std::move(st);
  counters_[static_cast<std::size_t>(me)] = Counters{};
}

void TerminationDetector::reset() {
  rt_.barrier();
  reset_local();
  rt_.barrier();
}

void TerminationDetector::note_lb_op(Rank other) {
  LocalState& st = state_[static_cast<std::size_t>(rt_.me())];
  st.self_black = true;

  if ((fault::active() || detect::active()) && !detect::alive(other)) {
    // A dead partner never votes again; our own black vote covers the op.
    my_counters().dirty_marks_skipped++;
    return;
  }
  if (cfg_.color_optimization) {
    // Skip the mark if we have not voted in the newest wave we know of:
    // our own future vote will be black and forces the re-vote anyway.
    bool have_voted = st.voted_wave > 0 && st.voted_wave == st.wave_seen;
    if (!have_voted || is_descendant(st, other, rt_.me())) {
      my_counters().dirty_marks_skipped++;
      return;
    }
  }
  put_token(other, offsetof(TdCtl, dirty), 1, sizeof(std::uint32_t),
            /*what=*/3);
  my_counters().dirty_marks_sent++;
}

void TerminationDetector::mark_self_black() {
  state_[static_cast<std::size_t>(rt_.me())].self_black = true;
}

void TerminationDetector::arm_join_white() {
  state_[static_cast<std::size_t>(rt_.me())].join_white = true;
}

bool TerminationDetector::term_seen_local() {
  Rank me = rt_.me();
  if (state_[static_cast<std::size_t>(me)].terminated) {
    return true;
  }
  return aref(ctl(me).term_wave).load(std::memory_order_acquire) != 0;
}

bool TerminationDetector::poll_term_remote() {
  Rank me = rt_.me();
  LocalState& st = state_[static_cast<std::size_t>(me)];
  if (st.terminated) {
    return true;
  }
  std::vector<Rank> alive = detect::alive_ranks();
  if (alive.empty() || alive.front() == me) {
    return false;
  }
  std::uint64_t tw = 0;
  pgas::OpStatus pst = rt_.get_u64_with_retry(
      seg_, alive.front(), offsetof(TdCtl, term_wave), &tw);
  if (pst != pgas::OpStatus::Dropped && tw != 0) {
    aref(ctl(me).term_wave).store(tw, std::memory_order_relaxed);
    st.terminated = true;
    SCIOTO_TRACE_EVENT(me, trace::Ev::Terminate, tw, 0, 0);
    return true;
  }
  return false;
}

TerminationDetector::Status TerminationDetector::step() {
  Rank me = rt_.me();
  LocalState& st = state_[static_cast<std::size_t>(me)];
  if (st.terminated) {
    return Status::Terminated;
  }
  rt_.charge(rt_.machine().poll);
  if (fault::active() || detect::active()) {
    maybe_resplice(st);
  }
  TdCtl& my = ctl(me);
  ++st.steps;

  // ---- Termination broadcast ----
  std::uint64_t tw = aref(my.term_wave).load(std::memory_order_acquire);
  if (tw == 0 && st.epoch_seen > 0 && st.parent != kNoRank &&
      (st.steps & 7u) == 0) {
    // Post-resplice liveness: a decision broadcast down the old tree can
    // strand behind a dead (or already-terminated) forwarder, so poll the
    // current parent's mailbox directly now and then -- through the
    // retrying failure-aware read, so a dropped poll is repeated instead
    // of silently read as "not decided". Chained polling percolates the
    // decision down the new tree.
    std::uint64_t ptw = 0;
    pgas::OpStatus pst = rt_.get_u64_with_retry(
        seg_, st.parent, offsetof(TdCtl, term_wave), &ptw);
    if (pst != pgas::OpStatus::Dropped && ptw != 0) {
      tw = ptw;
      aref(my.term_wave).store(tw, std::memory_order_relaxed);
    }
  }
  if (tw != 0) {
    // Accepted regardless of epoch: an all-white wave certifies there was
    // globally no work, a fact later deaths cannot un-make.
    if (!st.term_forwarded) {
      st.term_forwarded = true;
      for (int s = 0; s < 2; ++s) {
        if (st.kids[s] != kNoRank) {
          put_token(st.kids[s], offsetof(TdCtl, term_wave), tw,
                    sizeof(std::uint64_t), /*what=*/2);
        }
      }
    }
    st.terminated = true;
    SCIOTO_TRACE_EVENT(me, trace::Ev::Terminate, tw, 0, 0);
    return Status::Terminated;
  }

  bool root = st.parent == kNoRank;

  // ---- Down wave ----
  if (root) {
    if (st.wave_seen == st.voted_wave) {
      // Previous wave concluded (or none started): launch the next one.
      ++st.wave_seen;
      my_counters().waves_started++;
      SCIOTO_METRIC_CTR(me, metrics::Ctr::TdWaves, 1);
      st.wave_begin = SCIOTO_METRICS_ON() ? rt_.now() : 0;
      SCIOTO_TRACE_EVENT(me, trace::Ev::WaveStart, st.wave_seen, 0, 0);
      for (int s = 0; s < 2; ++s) {
        if (st.kids[s] != kNoRank) {
          put_token(st.kids[s], offsetof(TdCtl, down_wave),
                    tag(st.epoch_seen, st.wave_seen), sizeof(std::uint64_t),
                    /*what=*/0);
        }
      }
    }
  } else {
    std::uint64_t dw = aref(my.down_wave).load(std::memory_order_acquire);
    if ((dw >> kEpochShift) == st.epoch_seen &&
        (dw & kWaveMask) > st.wave_seen) {
      st.wave_seen = dw & kWaveMask;
      for (int s = 0; s < 2; ++s) {
        if (st.kids[s] != kNoRank) {
          put_token(st.kids[s], offsetof(TdCtl, down_wave),
                    tag(st.epoch_seen, st.wave_seen), sizeof(std::uint64_t),
                    /*what=*/0);
        }
      }
    }
  }

  // ---- Up wave: vote once per wave, when idle and children reported ----
  if (st.wave_seen > st.voted_wave) {
    std::uint64_t expected = tag(st.epoch_seen, st.wave_seen);
    bool children_in = true;
    bool children_black = false;
    for (int s = 0; s < 2; ++s) {
      if (st.kids[s] == kNoRank) continue;
      std::uint64_t u = aref(my.up[s]).load(std::memory_order_acquire);
      if ((u >> 1) != expected) {
        children_in = false;
        break;
      }
      children_black = children_black || (u & 1);
    }
    if (children_in) {
      bool black = children_black || st.self_black ||
                   aref(my.dirty).exchange(0, std::memory_order_acq_rel) != 0;
      st.self_black = false;
      st.voted_wave = st.wave_seen;
      my_counters().waves_voted++;
      SCIOTO_METRIC_CTR(me, metrics::Ctr::TdVotes, 1);
      if (black) {
        my_counters().black_votes++;
        SCIOTO_METRIC_CTR(me, metrics::Ctr::TdBlackVotes, 1);
      }
      SCIOTO_TRACE_EVENT(me, trace::Ev::Vote, st.wave_seen, black ? 1 : 0, 0);
      if (root && SCIOTO_METRICS_ON()) {
        // Root vote closes the wave it launched: wave latency = launch ->
        // all votes in (the paper's Figure 4 latency, live).
        metrics::hist_record(me, metrics::Hist::WaveNs,
                             static_cast<std::uint64_t>(std::max<TimeNs>(
                                 rt_.now() - st.wave_begin, 0)));
      }
      if (root) {
        if (!black) {
          // All-white wave: decide termination and broadcast.
          aref(my.term_wave).store(expected, std::memory_order_release);
        }
        // Black: the next step() launches a fresh wave.
      } else {
        put_token(st.parent,
                  offsetof(TdCtl, up) +
                      static_cast<std::size_t>(st.up_slot) *
                          sizeof(std::uint64_t),
                  (expected << 1) | (black ? 1u : 0u), sizeof(std::uint64_t),
                  /*what=*/1);
      }
    }
  }
  return Status::Working;
}

TerminationDetector::Counters TerminationDetector::counters_sum() const {
  Counters local = counters();
  Counters total;
  total.waves_voted = rt_.allreduce_sum(local.waves_voted);
  total.black_votes = rt_.allreduce_sum(local.black_votes);
  total.dirty_marks_sent = rt_.allreduce_sum(local.dirty_marks_sent);
  total.dirty_marks_skipped = rt_.allreduce_sum(local.dirty_marks_skipped);
  total.waves_started = rt_.allreduce_sum(local.waves_started);
  total.resplices = rt_.allreduce_sum(local.resplices);
  total.token_retries = rt_.allreduce_sum(local.token_retries);
  return total;
}

}  // namespace scioto
