#include "scioto/termination.hpp"

#include "fault/fault.hpp"
#include "trace/trace.hpp"

namespace scioto {

TerminationDetector::TerminationDetector(pgas::Runtime& rt)
    : TerminationDetector(rt, Config{}) {}

TerminationDetector::TerminationDetector(pgas::Runtime& rt, Config cfg)
    : rt_(rt), cfg_(cfg) {
  seg_ = rt_.seg_alloc(sizeof(TdCtl));
  if (rt_.me() == 0) {
    for (Rank r = 0; r < rt_.nprocs(); ++r) {
      new (rt_.seg_ptr(seg_, r)) TdCtl();
    }
  }
  state_.resize(static_cast<std::size_t>(rt_.nprocs()));
  counters_.resize(static_cast<std::size_t>(rt_.nprocs()));
  rt_.barrier();
}

void TerminationDetector::destroy() { rt_.seg_free(seg_); }

TerminationDetector::TdCtl& TerminationDetector::ctl(Rank r) {
  return *reinterpret_cast<TdCtl*>(rt_.seg_ptr(seg_, r));
}

bool TerminationDetector::pos_is_descendant(int v, int anc) {
  if (v <= anc) {
    return false;  // descendants have strictly larger heap indices
  }
  while (v > anc) {
    v = (v - 1) / 2;
  }
  return v == anc;
}

bool TerminationDetector::is_descendant(const LocalState& st, Rank v,
                                        Rank anc) const {
  if (st.epoch_seen == 0) {
    // Static tree: rank == heap position.
    return pos_is_descendant(v, anc);
  }
  int pv = -1;
  int pa = -1;
  for (std::size_t i = 0; i < st.alive.size(); ++i) {
    if (st.alive[i] == v) pv = static_cast<int>(i);
    if (st.alive[i] == anc) pa = static_cast<int>(i);
  }
  if (pv < 0 || pa < 0) {
    return false;
  }
  return pos_is_descendant(pv, pa);
}

void TerminationDetector::maybe_resplice(LocalState& st) {
  std::uint64_t e = fault::epoch();
  if (e == st.epoch_seen) {
    return;
  }
  Rank me = rt_.me();
  st.epoch_seen = e;
  st.alive = fault::alive_ranks();
  int pos = 0;
  for (std::size_t i = 0; i < st.alive.size(); ++i) {
    if (st.alive[i] == me) {
      pos = static_cast<int>(i);
      break;
    }
  }
  st.parent =
      pos == 0 ? kNoRank : st.alive[static_cast<std::size_t>((pos - 1) / 2)];
  st.up_slot = pos == 0 ? 0 : (pos - 1) % 2;
  for (int s = 0; s < 2; ++s) {
    std::size_t k = static_cast<std::size_t>(2 * pos + 1 + s);
    st.kids[s] = k < st.alive.size() ? st.alive[k] : kNoRank;
  }
  // Restart wave numbering in the new epoch and force our next vote black:
  // together these guarantee no all-white decision rests on votes cast
  // before the death, so termination is never declared early.
  st.wave_seen = 0;
  st.voted_wave = 0;
  st.self_black = true;
  my_counters().resplices++;
  SCIOTO_TRACE_EVENT(me, trace::Ev::TreeRespliced, static_cast<long long>(e),
                     static_cast<long long>(st.alive.size()), 0);
}

template <class T, class V>
void TerminationDetector::put_token(Rank target, std::atomic<T>& field,
                                    V value, [[maybe_unused]] int what) {
  if (fault::active()) {
    int attempt = 0;
    for (;;) {
      fault::OpFate f =
          fault::one_sided_fate(fault::OpKind::Token, rt_.me(), target);
      if (f.fate == fault::Fate::Fail) {
        // A silently lost wave token stalls detection forever, so token
        // delivery retries past the drop rule's budget (plans carry finite
        // drop counts, so this terminates).
        my_counters().token_retries++;
        rt_.charge(fault::backoff(rt_.me(), attempt++));
        rt_.relax();
        continue;
      }
      if (f.fate == fault::Fate::Delay && f.delay > 0) {
        rt_.charge(f.delay);
      }
      break;
    }
  }
  rt_.backend().rma_charge_oneway(target, sizeof(T));
  field.store(static_cast<T>(value), std::memory_order_release);
  SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::TokenSend, target, what, 0);
}

void TerminationDetector::reset_local() {
  TdCtl& my = ctl(rt_.me());
  my.down_wave.store(0, std::memory_order_relaxed);
  my.up[0].store(0, std::memory_order_relaxed);
  my.up[1].store(0, std::memory_order_relaxed);
  my.term_wave.store(0, std::memory_order_relaxed);
  my.dirty.store(0, std::memory_order_relaxed);
  LocalState st{};
  Rank me = rt_.me();
  st.parent = me == 0 ? kNoRank : (me - 1) / 2;
  st.up_slot = me == 0 ? 0 : (me - 1) % 2;
  for (int s = 0; s < 2; ++s) {
    Rank c = 2 * me + 1 + s;
    st.kids[s] = c < rt_.nprocs() ? c : kNoRank;
  }
  state_[static_cast<std::size_t>(me)] = std::move(st);
  counters_[static_cast<std::size_t>(me)] = Counters{};
}

void TerminationDetector::reset() {
  rt_.barrier();
  reset_local();
  rt_.barrier();
}

void TerminationDetector::note_lb_op(Rank other) {
  LocalState& st = state_[static_cast<std::size_t>(rt_.me())];
  st.self_black = true;

  if (fault::active() && !fault::alive(other)) {
    // A dead partner never votes again; our own black vote covers the op.
    my_counters().dirty_marks_skipped++;
    return;
  }
  if (cfg_.color_optimization) {
    // Skip the mark if we have not voted in the newest wave we know of:
    // our own future vote will be black and forces the re-vote anyway.
    bool have_voted = st.voted_wave > 0 && st.voted_wave == st.wave_seen;
    if (!have_voted || is_descendant(st, other, rt_.me())) {
      my_counters().dirty_marks_skipped++;
      return;
    }
  }
  put_token(other, ctl(other).dirty, 1u, /*what=*/3);
  my_counters().dirty_marks_sent++;
}

void TerminationDetector::mark_self_black() {
  state_[static_cast<std::size_t>(rt_.me())].self_black = true;
}

TerminationDetector::Status TerminationDetector::step() {
  Rank me = rt_.me();
  LocalState& st = state_[static_cast<std::size_t>(me)];
  if (st.terminated) {
    return Status::Terminated;
  }
  rt_.charge(rt_.machine().poll);
  if (fault::active()) {
    maybe_resplice(st);
  }
  TdCtl& my = ctl(me);
  ++st.steps;

  // ---- Termination broadcast ----
  std::uint64_t tw = my.term_wave.load(std::memory_order_acquire);
  if (tw == 0 && st.epoch_seen > 0 && st.parent != kNoRank &&
      (st.steps & 7u) == 0) {
    // Post-resplice liveness: a decision broadcast down the old tree can
    // strand behind a dead (or already-terminated) forwarder, so poll the
    // current parent's mailbox directly now and then. Chained polling
    // percolates the decision down the new tree.
    rt_.rma_charge(st.parent, sizeof(std::uint64_t));
    tw = ctl(st.parent).term_wave.load(std::memory_order_acquire);
    if (tw != 0) {
      my.term_wave.store(tw, std::memory_order_relaxed);
    }
  }
  if (tw != 0) {
    // Accepted regardless of epoch: an all-white wave certifies there was
    // globally no work, a fact later deaths cannot un-make.
    if (!st.term_forwarded) {
      st.term_forwarded = true;
      for (int s = 0; s < 2; ++s) {
        if (st.kids[s] != kNoRank) {
          put_token(st.kids[s], ctl(st.kids[s]).term_wave, tw, /*what=*/2);
        }
      }
    }
    st.terminated = true;
    SCIOTO_TRACE_EVENT(me, trace::Ev::Terminate, tw, 0, 0);
    return Status::Terminated;
  }

  bool root = st.parent == kNoRank;

  // ---- Down wave ----
  if (root) {
    if (st.wave_seen == st.voted_wave) {
      // Previous wave concluded (or none started): launch the next one.
      ++st.wave_seen;
      my_counters().waves_started++;
      SCIOTO_TRACE_EVENT(me, trace::Ev::WaveStart, st.wave_seen, 0, 0);
      for (int s = 0; s < 2; ++s) {
        if (st.kids[s] != kNoRank) {
          put_token(st.kids[s], ctl(st.kids[s]).down_wave,
                    tag(st.epoch_seen, st.wave_seen), /*what=*/0);
        }
      }
    }
  } else {
    std::uint64_t dw = my.down_wave.load(std::memory_order_acquire);
    if ((dw >> kEpochShift) == st.epoch_seen &&
        (dw & kWaveMask) > st.wave_seen) {
      st.wave_seen = dw & kWaveMask;
      for (int s = 0; s < 2; ++s) {
        if (st.kids[s] != kNoRank) {
          put_token(st.kids[s], ctl(st.kids[s]).down_wave,
                    tag(st.epoch_seen, st.wave_seen), /*what=*/0);
        }
      }
    }
  }

  // ---- Up wave: vote once per wave, when idle and children reported ----
  if (st.wave_seen > st.voted_wave) {
    std::uint64_t expected = tag(st.epoch_seen, st.wave_seen);
    bool children_in = true;
    bool children_black = false;
    for (int s = 0; s < 2; ++s) {
      if (st.kids[s] == kNoRank) continue;
      std::uint64_t u = my.up[s].load(std::memory_order_acquire);
      if ((u >> 1) != expected) {
        children_in = false;
        break;
      }
      children_black = children_black || (u & 1);
    }
    if (children_in) {
      bool black = children_black || st.self_black ||
                   my.dirty.exchange(0, std::memory_order_acq_rel) != 0;
      st.self_black = false;
      st.voted_wave = st.wave_seen;
      my_counters().waves_voted++;
      if (black) {
        my_counters().black_votes++;
      }
      SCIOTO_TRACE_EVENT(me, trace::Ev::Vote, st.wave_seen, black ? 1 : 0, 0);
      if (root) {
        if (!black) {
          // All-white wave: decide termination and broadcast.
          my.term_wave.store(expected, std::memory_order_release);
        }
        // Black: the next step() launches a fresh wave.
      } else {
        put_token(st.parent, ctl(st.parent).up[st.up_slot],
                  (expected << 1) | (black ? 1u : 0u), /*what=*/1);
      }
    }
  }
  return Status::Working;
}

TerminationDetector::Counters TerminationDetector::counters_sum() const {
  Counters local = counters();
  Counters total;
  total.waves_voted = rt_.allreduce_sum(local.waves_voted);
  total.black_votes = rt_.allreduce_sum(local.black_votes);
  total.dirty_marks_sent = rt_.allreduce_sum(local.dirty_marks_sent);
  total.dirty_marks_skipped = rt_.allreduce_sum(local.dirty_marks_skipped);
  total.waves_started = rt_.allreduce_sum(local.waves_started);
  total.resplices = rt_.allreduce_sum(local.resplices);
  total.token_retries = rt_.allreduce_sum(local.token_retries);
  return total;
}

}  // namespace scioto
