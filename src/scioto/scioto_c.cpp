#include "scioto/scioto_c.h"

#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "control/control.hpp"
#include "elastic/elastic.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "scioto/task_collection.hpp"
#include "trace/analysis.hpp"
#include "trace/lineage.hpp"
#include "trace/trace.hpp"

namespace {

using scioto::TaskCollection;

// Per-rank shim state. All ranks of a run bind the same Runtime; each rank
// owns its per-rank TaskCollection objects (ARMCI style), stored in a table
// indexed [rank][handle] so handles are identical everywhere.
struct CapiState {
  std::mutex m;
  scioto::pgas::Runtime* rt = nullptr;
  int bound = 0;
  std::vector<std::vector<std::unique_ptr<TaskCollection>>> tcs;
};

CapiState& state() {
  static CapiState s;
  return s;
}

scioto::pgas::Runtime& runtime() {
  CapiState& s = state();
  SCIOTO_REQUIRE(s.rt != nullptr,
                 "scioto C API used without a bound runtime; create a "
                 "scioto::capi::RuntimeBinding in the rank body first");
  return *s.rt;
}

TaskCollection& collection(tc_t h) {
  CapiState& s = state();
  auto& mine = s.tcs[static_cast<std::size_t>(runtime().me())];
  SCIOTO_REQUIRE(h >= 0 && static_cast<std::size_t>(h) < mine.size() &&
                     mine[static_cast<std::size_t>(h)] != nullptr,
                 "invalid or destroyed tc handle " << h);
  return *mine[static_cast<std::size_t>(h)];
}

scioto::TaskHeader* header_of(task_t* t) {
  return reinterpret_cast<scioto::TaskHeader*>(t);
}

}  // namespace

namespace scioto::capi {

RuntimeBinding::RuntimeBinding(pgas::Runtime& rt) {
  CapiState& s = state();
  std::lock_guard<std::mutex> g(s.m);
  if (s.bound == 0) {
    s.rt = &rt;
    s.tcs.clear();
    s.tcs.resize(static_cast<std::size_t>(rt.nprocs()));
  }
  SCIOTO_REQUIRE(s.rt == &rt,
                 "scioto C API already bound to a different runtime");
  ++s.bound;
}

RuntimeBinding::~RuntimeBinding() {
  CapiState& s = state();
  std::lock_guard<std::mutex> g(s.m);
  if (--s.bound == 0) {
    s.rt = nullptr;
    s.tcs.clear();
  }
}

pgas::Runtime& bound_runtime() { return runtime(); }

TaskCollection& lookup_collection(tc_t h) { return collection(h); }

}  // namespace scioto::capi

extern "C" {

tc_t tc_create(int task_sz, int chunk_sz, long max_sz) {
  scioto::TcConfig cfg;
  cfg.max_task_body = task_sz;
  cfg.chunk_size = chunk_sz;
  cfg.max_tasks_per_rank = max_sz;
  auto tc = std::make_unique<TaskCollection>(runtime(), cfg);
  CapiState& s = state();
  auto& mine = s.tcs[static_cast<std::size_t>(runtime().me())];
  mine.push_back(std::move(tc));
  return static_cast<tc_t>(mine.size() - 1);
}

void tc_destroy(tc_t tc) {
  collection(tc).destroy();
  CapiState& s = state();
  s.tcs[static_cast<std::size_t>(runtime().me())][static_cast<std::size_t>(
      tc)] = nullptr;
}

task_handle_t tc_register_callback(tc_t tc, tc_callback_t fcn) {
  return collection(tc).register_callback(
      [tc, fcn](scioto::TaskContext& ctx) {
        fcn(tc, reinterpret_cast<task_t*>(&ctx.header));
      });
}

void tc_add(tc_t tc, int proc, int affty, task_t* t) {
  scioto::TaskHeader* hdr = header_of(t);
  collection(tc).add_raw(
      proc, affty, reinterpret_cast<const std::byte*>(t),
      sizeof(scioto::TaskHeader) + static_cast<std::size_t>(hdr->body_bytes));
}

void tc_process(tc_t tc) { collection(tc).process(); }

void tc_reset(tc_t tc) { collection(tc).reset(); }

void tc_stats_get(tc_t tc, scioto_stats_t* out) {
  SCIOTO_REQUIRE(out != nullptr, "tc_stats_get: null output pointer");
  scioto::TcStats g = collection(tc).stats_global();
  out->tasks_executed = g.tasks_executed;
  out->tasks_spawned_local = g.tasks_spawned_local;
  out->tasks_spawned_remote = g.tasks_spawned_remote;
  out->steals = g.steals;
  out->steals_same_node = g.steals_same_node;
  out->steal_attempts = g.steal_attempts;
  out->tasks_stolen = g.tasks_stolen;
  out->releases = g.releases;
  out->reacquires = g.reacquires;
  out->td_waves_voted = g.td_waves_voted;
  out->td_black_votes = g.td_black_votes;
  out->time_total_ns = g.time_total;
  out->time_working_ns = g.time_working;
  out->time_searching_ns = g.time_searching;
  out->tasks_recovered = g.tasks_recovered;
  out->steals_aborted = g.steals_aborted;
  out->op_retries = g.op_retries;
  out->td_resplices = g.td_resplices;
  out->steals_lock_busy = g.steals_lock_busy;
  out->steal_retargets = g.steal_retargets;
  out->owner_lock_acqs = g.owner_lock_acqs;
  out->reacquires_fast = g.reacquires_fast;
}

task_t* tc_task_create(int body_sz, task_handle_t th) {
  SCIOTO_REQUIRE(body_sz >= 0, "negative task body size");
  auto* bytes = new std::byte[sizeof(scioto::TaskHeader) +
                              static_cast<std::size_t>(body_sz)]{};
  auto* hdr = reinterpret_cast<scioto::TaskHeader*>(bytes);
  hdr->callback = th;
  hdr->body_bytes = body_sz;
  hdr->affinity = TC_AFFINITY_HIGH;
  hdr->created_by = scioto::kNoRank;
  return reinterpret_cast<task_t*>(bytes);
}

void tc_task_destroy(task_t* task) {
  delete[] reinterpret_cast<std::byte*>(task);
}

void* tc_task_body(task_t* task) {
  return reinterpret_cast<std::byte*>(task) + sizeof(scioto::TaskHeader);
}

void tc_task_reuse(task_t* task) { (void)task; }

int tc_mype(void) { return runtime().me(); }

int tc_nprocs(void) { return runtime().nprocs(); }

int scioto_retry_limit(void) { return scioto::fault::policy().max_attempts; }

void scioto_set_retry_limit(int max_attempts) {
  SCIOTO_REQUIRE(max_attempts >= 1,
                 "scioto_set_retry_limit: need at least one attempt");
  scioto::fault::RetryPolicy p = scioto::fault::policy();
  p.max_attempts = max_attempts;
  scioto::fault::set_policy(p);
}

int64_t scioto_backoff_cap_ns(void) {
  return scioto::fault::policy().backoff_cap;
}

void scioto_set_backoff_cap_ns(int64_t cap_ns) {
  SCIOTO_REQUIRE(cap_ns > 0, "scioto_set_backoff_cap_ns: cap must be > 0");
  scioto::fault::RetryPolicy p = scioto::fault::policy();
  p.backoff_cap = cap_ns;
  scioto::fault::set_policy(p);
}

int64_t scioto_backoff_base_ns(void) {
  return scioto::fault::policy().backoff_base;
}

void scioto_set_backoff_base_ns(int64_t base_ns) {
  SCIOTO_REQUIRE(base_ns > 0, "scioto_set_backoff_base_ns: base must be > 0");
  scioto::fault::RetryPolicy p = scioto::fault::policy();
  p.backoff_base = base_ns;
  scioto::fault::set_policy(p);
}

namespace {
std::string& staged_fault_plan() {
  static std::string spec;
  return spec;
}
}  // namespace

int scioto_fault_plan_set(const char* spec, char* errbuf, int errbuf_len) {
  if (errbuf != nullptr && errbuf_len > 0) {
    errbuf[0] = '\0';
  }
  if (spec == nullptr || spec[0] == '\0') {
    staged_fault_plan().clear();
    ::unsetenv("SCIOTO_FAULT_PLAN");
    return 0;
  }
  try {
    (void)scioto::fault::FaultPlan::parse(spec);
  } catch (const std::exception& e) {
    if (errbuf != nullptr && errbuf_len > 0) {
      std::strncpy(errbuf, e.what(), static_cast<std::size_t>(errbuf_len) - 1);
      errbuf[errbuf_len - 1] = '\0';
    }
    return -1;
  }
  staged_fault_plan() = spec;
  ::setenv("SCIOTO_FAULT_PLAN", spec, 1);
  return 0;
}

const char* scioto_fault_plan(void) { return staged_fault_plan().c_str(); }

int scioto_detector_enabled(void) {
  return scioto::detect::config().enabled ? 1 : 0;
}

void scioto_detector_set(int enabled) {
  scioto::detect::Config c = scioto::detect::config();
  c.enabled = enabled != 0;
  scioto::detect::set_config(c);
}

int64_t scioto_hb_period_ns(void) {
  return scioto::detect::config().hb_period;
}

void scioto_set_hb_period_ns(int64_t period_ns) {
  SCIOTO_REQUIRE(period_ns > 0,
                 "scioto_set_hb_period_ns: period must be > 0");
  scioto::detect::Config c = scioto::detect::config();
  c.hb_period = period_ns;
  if (c.suspect_after <= c.hb_period) {
    // Keep the staged config self-consistent: suspicion needs to tolerate
    // at least a couple of missed heartbeats.
    c.suspect_after = 8 * c.hb_period;
  }
  if (c.confirm_after <= c.suspect_after) {
    c.confirm_after = 4 * c.suspect_after;
  }
  scioto::detect::set_config(c);
}

int64_t scioto_suspect_timeout_ns(void) {
  return scioto::detect::config().suspect_after;
}

void scioto_set_suspect_timeout_ns(int64_t timeout_ns) {
  scioto::detect::Config c = scioto::detect::config();
  SCIOTO_REQUIRE(timeout_ns > c.hb_period,
                 "scioto_set_suspect_timeout_ns: timeout "
                     << timeout_ns << " must exceed the heartbeat period "
                     << c.hb_period);
  c.suspect_after = timeout_ns;
  if (c.confirm_after <= c.suspect_after) {
    c.confirm_after = 4 * c.suspect_after;
  }
  scioto::detect::set_config(c);
}

void scioto_detector_stats_get(scioto_detector_stats_t* out) {
  SCIOTO_REQUIRE(out != nullptr, "scioto_detector_stats_get: NULL out");
  scioto::detect::Stats s = scioto::detect::stats();
  out->heartbeats = s.heartbeats;
  out->probes = s.probes;
  out->suspects = s.suspects;
  out->refutes = s.refutes;
  out->confirms = s.confirms;
  out->fence_aborts = s.fence_aborts;
  out->rejoins = s.rejoins;
  out->max_detect_latency_ns = s.max_detect_latency;
}

int scioto_elastic_enabled(void) {
  return scioto::elastic::config().enabled ? 1 : 0;
}

void scioto_elastic_set(int enabled) {
  scioto::elastic::Config c = scioto::elastic::config();
  c.enabled = enabled != 0;
  scioto::elastic::set_config(c);
}

namespace {
// scioto_ckpt_path/scioto_ckpt_restore_path return pointers into
// library-owned storage; keep a stable copy of the staged strings.
std::string& ckpt_path_storage() {
  static std::string s;
  return s;
}
std::string& restore_path_storage() {
  static std::string s;
  return s;
}
}  // namespace

const char* scioto_ckpt_path(void) {
  ckpt_path_storage() = scioto::elastic::config().ckpt_path;
  return ckpt_path_storage().c_str();
}

void scioto_ckpt_path_set(const char* path) {
  scioto::elastic::Config c = scioto::elastic::config();
  c.ckpt_path = path != nullptr ? path : "";
  if (c.ckpt_path.empty()) {
    c.ckpt_period = 0;  // a cadence without a path cannot stage
  }
  scioto::elastic::set_config(c);
}

int64_t scioto_ckpt_period_ns(void) {
  return scioto::elastic::config().ckpt_period;
}

void scioto_ckpt_set_period_ns(int64_t period_ns) {
  SCIOTO_REQUIRE(period_ns >= 0,
                 "scioto_ckpt_set_period_ns: period must be >= 0");
  scioto::elastic::Config c = scioto::elastic::config();
  SCIOTO_REQUIRE(period_ns == 0 || !c.ckpt_path.empty(),
                 "scioto_ckpt_set_period_ns: set scioto_ckpt_path_set first "
                 "(a cadence needs somewhere to write)");
  c.ckpt_period = period_ns;
  scioto::elastic::set_config(c);
}

const char* scioto_ckpt_restore_path(void) {
  restore_path_storage() = scioto::elastic::config().restore_path;
  return restore_path_storage().c_str();
}

void scioto_ckpt_restore_set(const char* path) {
  scioto::elastic::Config c = scioto::elastic::config();
  c.restore_path = path != nullptr ? path : "";
  scioto::elastic::set_config(c);
}

int scioto_ckpt_halt_after(void) {
  return scioto::elastic::config().halt_after_ckpt ? 1 : 0;
}

void scioto_ckpt_set_halt_after(int halt) {
  scioto::elastic::Config c = scioto::elastic::config();
  c.halt_after_ckpt = halt != 0;
  scioto::elastic::set_config(c);
}

void scioto_ckpt_request(void) { scioto::elastic::request_ckpt(); }

void scioto_elastic_stats_get(scioto_elastic_stats_t* out) {
  SCIOTO_REQUIRE(out != nullptr, "scioto_elastic_stats_get: NULL out");
  scioto::elastic::Stats e = scioto::elastic::stats();
  scioto::detect::Stats d = scioto::detect::stats();
  out->checkpoints = e.checkpoints;
  out->restores = e.restores;
  out->joins = d.joins;
  out->grows = d.grows;
}

int scioto_metrics_enabled(void) {
  return scioto::metrics::config().enabled ? 1 : 0;
}

void scioto_metrics_set(int enabled) {
  scioto::metrics::Config c = scioto::metrics::config();
  c.enabled = enabled != 0;
  scioto::metrics::set_config(c);
}

int64_t scioto_metrics_period_ns(void) {
  return scioto::metrics::config().period;
}

void scioto_set_metrics_period_ns(int64_t period_ns) {
  SCIOTO_REQUIRE(period_ns > 0,
                 "scioto_set_metrics_period_ns: period must be > 0");
  scioto::metrics::Config c = scioto::metrics::config();
  c.period = period_ns;
  scioto::metrics::set_config(c);
}

// The opaque handle wraps the C++ snapshot; the struct tag in the header
// is completed here so the pointer round-trips type-safely.
struct scioto_metrics_snapshot {
  scioto::metrics::Snapshot snap;
};

scioto_metrics_snapshot_t* scioto_metrics_snapshot(int rank) {
  if (!scioto::metrics::active() || rank < 0 ||
      rank >= scioto::metrics::session_nranks()) {
    return nullptr;
  }
  auto* out = new scioto_metrics_snapshot_t();
  if (!scioto::metrics::scrape(rank, &out->snap)) {
    delete out;
    return nullptr;
  }
  return out;
}

void scioto_metrics_snapshot_free(scioto_metrics_snapshot_t* snap) {
  delete snap;
}

int scioto_metrics_read(const scioto_metrics_snapshot_t* snap,
                        const char* name, uint64_t* value) {
  if (snap == nullptr || name == nullptr || value == nullptr) {
    return -1;
  }
  return scioto::metrics::read_metric(snap->snap, name, value) ? 0 : -1;
}

int scioto_metrics_read_rank(int rank, const char* name, uint64_t* value) {
  scioto_metrics_snapshot_t* s = scioto_metrics_snapshot(rank);
  if (s == nullptr) {
    return -1;
  }
  int rc = scioto_metrics_read(s, name, value);
  scioto_metrics_snapshot_free(s);
  return rc;
}

const char* scioto_ctl_mode(void) {
  return scioto::control::mode_name(scioto::control::config().mode);
}

int scioto_ctl_mode_set(const char* mode) {
  scioto::control::Mode m;
  if (mode == nullptr || !scioto::control::mode_from_name(mode, &m)) {
    return -1;
  }
  scioto::control::Config c = scioto::control::config();
  c.mode = m;
  scioto::control::set_config(c);
  return 0;
}

int64_t scioto_ctl_period_ns(void) {
  return scioto::control::config().period;
}

void scioto_ctl_set_period_ns(int64_t period_ns) {
  SCIOTO_REQUIRE(period_ns > 0,
                 "scioto_ctl_set_period_ns: period must be > 0");
  scioto::control::Config c = scioto::control::config();
  c.period = period_ns;
  scioto::control::set_config(c);
}

int scioto_ctl_rules_set(const char* spec, char* errbuf, int errbuf_len) {
  if (errbuf != nullptr && errbuf_len > 0) {
    errbuf[0] = '\0';
  }
  scioto::control::Config c = scioto::control::config();
  if (spec == nullptr || spec[0] == '\0') {
    c.rules = scioto::control::Rules{};
    scioto::control::set_config(c);
    return 0;
  }
  scioto::control::Rules parsed;
  std::string err;
  if (!scioto::control::Rules::parse(spec, &parsed, &err)) {
    if (errbuf != nullptr && errbuf_len > 0) {
      std::strncpy(errbuf, err.c_str(),
                   static_cast<std::size_t>(errbuf_len) - 1);
      errbuf[errbuf_len - 1] = '\0';
    }
    return -1;
  }
  c.rules = parsed;
  scioto::control::set_config(c);
  return 0;
}

void scioto_ctl_stats_get(scioto_ctl_stats_t* out) {
  SCIOTO_REQUIRE(out != nullptr, "scioto_ctl_stats_get: NULL out");
  scioto::control::Stats s = scioto::control::stats();
  out->epochs = s.epochs;
  out->decisions = s.decisions;
  out->targets_published = s.targets_published;
  out->inherits = s.inherits;
}

const char* tc_queue_mode(tc_t tc) {
  return scioto::queue_mode_name(collection(tc).queue_mode());
}

int scioto_lineage_enabled(void) {
  return scioto::trace::lineage::config().enabled ? 1 : 0;
}

void scioto_lineage_set(int enabled) {
  scioto::trace::lineage::Config c = scioto::trace::lineage::config();
  c.enabled = enabled != 0;
  scioto::trace::lineage::set_config(c);
}

int scioto_lineage_report_get(scioto_lineage_report_t* out) {
  SCIOTO_REQUIRE(out != nullptr, "scioto_lineage_report_get: NULL out");
  std::memset(out, 0, sizeof(*out));
#if SCIOTO_LINEAGE_ENABLED
  if (!scioto::trace::lineage::active() || !scioto::trace::active()) {
    return -1;
  }
  const int nranks = scioto::trace::session_nranks();
  const std::vector<scioto::trace::Event> events =
      scioto::trace::all_events();
  const scioto::trace::LineageReport rep = scioto::trace::lineage_report(
      events, nranks, scioto::trace::total_dropped());
  const scioto::trace::CriticalPath cp =
      scioto::trace::critical_path(rep, events, nranks);
  out->tasks_spawned = rep.spawns;
  out->tasks_executed = rep.execs;
  out->migrations = rep.migrations;
  out->max_hops = rep.max_hops;
  out->violations = rep.violations.size();
  out->ring_dropped = rep.dropped;
  out->critical_path_ns = cp.length;
  out->spawn_exec_p50_ns =
      static_cast<int64_t>(rep.spawn_to_exec.percentile(50));
  out->spawn_exec_p99_ns =
      static_cast<int64_t>(rep.spawn_to_exec.percentile(99));
  return 0;
#else
  return -1;
#endif
}

int tc_knob_get(tc_t tc, const char* name, int64_t* value) {
  scioto::control::Knob k;
  if (name == nullptr || value == nullptr ||
      !scioto::control::knob_from_name(name, &k)) {
    return -1;
  }
  *value = collection(tc).knob(k);
  return 0;
}

int tc_knob_set(tc_t tc, const char* name, int64_t value) {
  scioto::control::Knob k;
  if (name == nullptr || !scioto::control::knob_from_name(name, &k)) {
    return -1;
  }
  collection(tc).set_knob(k, value);
  return 0;
}

}  // extern "C"
