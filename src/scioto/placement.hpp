// Initial task-placement strategies (paper §8 lists "initial placement
// strategies" among planned enhancements).
//
// A placement maps a task index to (rank, affinity) at seeding time.
// Dynamic load balancing then corrects whatever the initial placement got
// wrong, but a good initial placement -- owner-compute for data-bearing
// tasks, blocked or round-robin for uniform ones -- reduces how much
// stealing is needed in the first place. The SCF/TCE drivers use the
// owner-compute idiom directly; this header packages the common
// strategies for applications with less structure.
#pragma once

#include <cstdint>
#include <functional>

#include "base/rng.hpp"
#include "scioto/task.hpp"

namespace scioto {

struct Placement {
  Rank rank = 0;
  int affinity = kAffinityHigh;
};

/// Strategy: index in [0, total) -> placement over `nranks` ranks.
using PlacementFn =
    std::function<Placement(std::int64_t index, std::int64_t total,
                            int nranks)>;

/// Task i goes to rank i mod p: even counts, no locality information.
inline PlacementFn round_robin_placement() {
  return [](std::int64_t i, std::int64_t, int nranks) {
    return Placement{static_cast<Rank>(i % nranks), kAffinityHigh};
  };
}

/// Contiguous slabs: task i goes to rank floor(i * p / total). Preserves
/// index locality (neighbouring tasks share a rank).
inline PlacementFn blocked_placement() {
  return [](std::int64_t i, std::int64_t total, int nranks) {
    Rank r = total > 0 ? static_cast<Rank>(i * nranks / total) : 0;
    return Placement{r, kAffinityHigh};
  };
}

/// Uniform random placement (deterministic in the seed); the classic
/// baseline that relies entirely on stealing for locality.
inline PlacementFn random_placement(std::uint64_t seed) {
  // The generator is shared across calls via a mutable capture; callers
  // seed deterministically so runs stay reproducible.
  return [rng = Xoshiro256(seed)](std::int64_t, std::int64_t,
                                  int nranks) mutable {
    return Placement{
        static_cast<Rank>(rng.next_below(static_cast<std::uint64_t>(nranks))),
        kAffinityLow};
  };
}

/// Owner-compute: the caller supplies the data owner per task; tasks are
/// seeded there with high affinity (the paper's get_owner idiom).
inline PlacementFn owner_placement(
    std::function<Rank(std::int64_t index)> owner_of) {
  return [owner_of = std::move(owner_of)](std::int64_t i, std::int64_t,
                                          int) {
    return Placement{owner_of(i), kAffinityHigh};
  };
}

}  // namespace scioto
