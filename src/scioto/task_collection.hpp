// The task collection: Scioto's global view of a distributed set of task
// objects (paper §2, §3, §5).
//
// A task collection aggregates one SplitQueue patch per process. Programs
// begin SPMD, seed the collection with tc_add-style calls, then
// collectively enter process() -- a MIMD region in which every process
// executes local tasks, steals when empty, and spawns subtasks, until
// wave-based termination detection observes a globally idle state.
//
// Scheduling policy (paper §2, §5.1):
//   * local processing pops the newest high-affinity task (LIFO head);
//   * steals take the oldest low-affinity tasks (tail), chunk at a time;
//   * victims are chosen uniformly at random among the other ranks;
//   * the owner releases private tasks to the shared portion when thieves
//     have drained it, and reacquires shared tasks when it runs dry.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "base/table.hpp"
#include "control/knobs.hpp"
#include "detect/detect.hpp"
#include "scioto/clo.hpp"
#include "scioto/queue.hpp"
#include "scioto/task.hpp"
#include "scioto/termination.hpp"

namespace scioto {

struct TcConfig {
  /// Maximum user body size a task descriptor may carry (the paper's
  /// task_sz, bytes).
  std::int32_t max_task_body = 256;
  /// Steal granularity in tasks (the paper's chunk_sz). With the control
  /// plane this is the *initial* value of the steal_chunk knob.
  int chunk_size = 10;
  /// Upper bound for the live steal-chunk knob; steal buffers and the
  /// fault-mode transaction log are sized for it at construction.
  /// 0 = auto: chunk_size (no headroom, pre-control layouts), except when
  /// a control session is active at construction, where it becomes
  /// max(chunk_size, 64) so the controller has room to raise the chunk.
  /// Collective: must match across ranks (it shapes the queue layout).
  int chunk_max = 0;
  /// Per-rank queue capacity in tasks (the paper's max_sz).
  std::int64_t max_tasks_per_rank = 1 << 16;
  /// Queue variant: Split (the paper's design), NoSplit (the original
  /// fully locked queue, Figure 7's ablation), WaitFreeSteal (the §8
  /// lock-free steal path), or LockFree (Chase-Lev CAS steals with the
  /// split machinery live). Overridable at construction by the
  /// SCIOTO_QUEUE env knob (locked | aborting | lockfree).
  QueueMode queue_mode = QueueMode::Split;
  /// The paper allows disabling dynamic load balancing before process().
  bool load_balancing = true;
  /// §5.3 token-coloring optimization.
  bool color_optimization = true;
  /// Tasks released from private to shared when private exceeds this and
  /// the shared portion is nearly empty (0 = 2 * chunk_size).
  std::uint64_t release_threshold = 0;
  /// Failed steal attempts on distinct victims per termination-detection
  /// poll while idle.
  int steals_per_td_poll = 1;
  /// Exponential backoff on consecutive failed steal rounds: an idle rank
  /// doubles the number of cheap termination-detection polls between
  /// (expensive, one-sided) steal attempts, capped at this many polls.
  /// This is what lets the token wave propagate at poll speed once the
  /// system drains (Figure 4's ~2x-barrier detection cost). 0 disables.
  int steal_backoff_max = 64;
  /// §8 "multicore scheduling enhancements": probability that a steal
  /// attempt targets a victim on the *same node* (cheap shared-memory
  /// transfer) instead of a uniformly random rank. Only meaningful when
  /// the machine model has cores_per_node > 1. 0 = the paper's uniform
  /// victim selection.
  double node_steal_bias = 0.0;
  /// Aborting steals: a thief trylocks its victim and, when the lock is
  /// held, immediately re-targets a different victim after a short seeded
  /// backoff instead of convoying on the lock.
  bool aborting_steals = false;
  /// Steal-half adaptive chunking: steals take min(ceil(depth/2),
  /// chunk_size) tasks based on the victim's shared depth instead of the
  /// fixed chunk_size.
  bool adaptive_steal = false;
  /// Lock-light owner fast path: split-pointer reacquires become a single
  /// validated atomic publish when the shared portion is deep enough; the
  /// owner takes its own lock only when it is nearly empty.
  bool owner_fastpath = false;
  /// Pay the stolen chunk's wire time after the victim's lock is released
  /// (shrinks the steal critical section to pointer updates + txn record).
  bool deferred_steal_copy = false;
  /// Aborting steals: victims re-targeted after a busy abort before the
  /// thief gives the round up (0 = abort straight to the TD poll).
  int steal_retarget_max = 4;
};

/// Aggregated execution statistics (per-rank, summable across ranks).
struct TcStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_spawned_local = 0;
  std::uint64_t tasks_spawned_remote = 0;
  std::uint64_t steals = 0;
  std::uint64_t steals_same_node = 0;  // subset of steals (multicore topo)
  std::uint64_t steal_attempts = 0;
  std::uint64_t tasks_stolen = 0;
  std::uint64_t releases = 0;
  std::uint64_t reacquires = 0;
  std::uint64_t td_waves_voted = 0;
  std::uint64_t td_black_votes = 0;
  std::uint64_t td_marks_sent = 0;
  std::uint64_t td_marks_skipped = 0;
  // Fault-recovery work (all zero without an active fault session):
  std::uint64_t tasks_recovered = 0;  // replayed txns + adopted queues
  std::uint64_t steals_aborted = 0;   // steals truncated to zero tasks
  std::uint64_t op_retries = 0;       // dropped commit/token sends retried
  std::uint64_t td_resplices = 0;     // spanning-tree reconfigurations
  // Adaptive steal engine (all zero with the knobs off):
  std::uint64_t steals_lock_busy = 0;  // aborting steals hit a held lock
  std::uint64_t steal_retargets = 0;   // victims re-picked after an abort
  std::uint64_t owner_lock_acqs = 0;   // owner took its own queue's lock
  std::uint64_t reacquires_fast = 0;   // lock-free fast-path reacquires
  TimeNs time_total = 0;
  TimeNs time_working = 0;   // executing task callbacks
  TimeNs time_searching = 0; // stealing + termination detection

  TcStats& operator+=(const TcStats& o);
};

/// Renders a stats snapshot as a two-column metric/value table, including
/// derived columns (steal success rate, % of time working/searching).
/// Usable on any TcStats -- a rank-local snapshot, a global sum, or one
/// carried home in a result struct.
Table tc_stats_table(const TcStats& s);

class TaskCollection {
 public:
  /// Collective: all ranks construct with identical cfg.
  TaskCollection(pgas::Runtime& rt, TcConfig cfg = {});

  /// Collective: releases shared space (tc_destroy).
  void destroy();

  pgas::Runtime& runtime() { return rt_; }
  const TcConfig& config() const { return cfg_; }
  /// Effective queue mode after the SCIOTO_QUEUE env override.
  QueueMode queue_mode() const { return cfg_.queue_mode; }

  // ---- Collective registration (before first process()) ----
  /// Registers a task callback; all ranks must register the same callbacks
  /// in the same order (tc_register_callback).
  TaskHandle register_callback(TaskFn fn);
  /// Registers this rank's instance of a common local object (§2.3).
  CloHandle register_clo(void* local_instance);
  /// Looks up the executing rank's instance of a CLO.
  template <class T>
  T& clo(CloHandle h) {
    return clos_.lookup_as<T>(h);
  }

  // ---- Task management ----
  /// Builds an owning descriptor buffer (tc_task_create).
  Task task_create(std::int32_t body_bytes, TaskHandle handle) const;
  /// Adds a copy of the task to `where`'s patch with the given affinity
  /// (tc_add). Copy-in semantics: the Task buffer is reusable on return.
  /// Throws scioto::Error if the destination queue is full.
  void add(Rank where, int affinity, const Task& task) {
    add_raw(where, affinity, task.data(), task.size());
  }
  /// Same, from a raw descriptor (header + body) of `size` bytes; used by
  /// the C API shim.
  void add_raw(Rank where, int affinity, const std::byte* descriptor,
               std::size_t size);
  /// Convenience: add to the local patch.
  void add_local(const Task& task, int affinity = kAffinityHigh) {
    add(rt_.me(), affinity, task);
  }

  // ---- Execution ----
  /// Collective: processes the collection to global termination (the MIMD
  /// region; tc_process). Tasks may call add() to spawn subtasks.
  void process();
  /// Collective: rearms an already processed collection (tc_reset).
  void reset();
  /// May be toggled (collectively) between phases.
  void set_load_balancing(bool enabled) { cfg_.load_balancing = enabled; }

  // ---- Live knobs ----
  /// This rank's live tuning parameters. The queue and the steal path read
  /// through these on every decision, so writes take effect mid-process()
  /// -- unlike the TcConfig fields, which only seed the initial values.
  const control::KnobSet& knobs() const {
    return knobs_[static_cast<std::size_t>(rt_.me())];
  }
  /// Current value of one knob.
  std::int64_t knob(control::Knob k) const { return knobs().get(k); }
  /// Clamped live write (rank-local, callable mid-run); returns the value
  /// actually applied. Republishes to the control session's row (for the
  /// dashboard and ward inheritance) when a controller is active.
  std::int64_t set_knob(control::Knob k, std::int64_t v);

  // ---- Scheduler-extension hooks (single consumer; the DAG engine in
  // src/dag installs these around its execute()). Both are rank-local:
  // each rank's TaskCollection instance calls only its own hooks from its
  // own process() loop, so no synchronization is involved. Pass nullptr
  // (the default) to uninstall; with no hooks installed process() behaves
  // -- and traces -- exactly as before.
  /// Called in the idle section of process(); returns the number of tasks
  /// it injected into the local queue (parked dataflow nodes whose gates
  /// opened). A non-zero return marks this rank's termination vote black.
  void set_idle_hook(std::function<std::uint64_t()> fn) {
    idle_hook_ = std::move(fn);
  }
  /// Checked before each termination-detection step; returning true
  /// reports rank-local deferred work invisible to the queues (parked
  /// nodes), forcing a black vote so no wave concludes over it.
  void set_pending_hook(std::function<bool()> fn) {
    pending_hook_ = std::move(fn);
  }

  // ---- Checkpoint hooks (elastic sessions; see src/elastic) ----
  /// Installs rank-local serialization hooks for application state that
  /// must ride along with a checkpoint (e.g. a rank's durable result
  /// counters). The writer returns this rank's opaque blob at snapshot
  /// time; the reader is invoked at restore once per source-rank blob this
  /// rank was dealt. Rank-local like the scheduler hooks above; pass
  /// empty functions to uninstall.
  void set_ckpt_hooks(
      std::function<std::vector<std::byte>()> writer,
      std::function<void(Rank, const std::vector<std::byte>&)> reader) {
    ckpt_writer_ = std::move(writer);
    ckpt_reader_ = std::move(reader);
  }

  // ---- Statistics ----
  /// This rank's counters from the last process() call.
  const TcStats& stats_local() const {
    return stats_[static_cast<std::size_t>(rt_.me())];
  }
  /// Collective: sum over all ranks.
  TcStats stats_global();
  /// Collective: renders stats_global() through tc_stats_table(). Only the
  /// returned table on rank 0 is typically printed.
  Table stats_table() { return tc_stats_table(stats_global()); }

  /// Tasks currently queued on this rank (diagnostics).
  std::uint64_t local_queue_size() const { return queue_->size(); }

  /// Descriptor slot size (header + max body, padded).
  std::size_t slot_bytes() const { return queue_->slot_bytes(); }

 private:
  void execute(std::byte* descriptor);
  /// Detector-mode false-suspicion recovery: acknowledge the adoption
  /// fence on our queue, re-enter the membership view in a new epoch, and
  /// force our next termination vote black.
  void fence_abort_and_rejoin();
  /// Ward/victim-pool recomputation when the membership epoch moved.
  void refresh_membership();
  // ---- Elastic membership (src/elastic; bodies gated on the
  // SCIOTO_ELASTIC build option) ----
  /// Parked-rank wait loop: publishes the join request when due; returns
  /// true on admission, false when the phase ended (termination broadcast
  /// or fleet halt) while this rank was still parked.
  bool parked_wait(TcStats& st);
  /// Admitter duty (lowest joined-alive rank): batch-admits parked ranks
  /// with a published join request under one membership epoch bump.
  void elastic_admit_scan();
  /// Quiesces the fleet at checkpoint generation `gen` and writes this
  /// rank's part file (the leader also writes the manifest). Returns
  /// false when the snapshot was aborted because the phase terminated
  /// underneath it.
  bool quiesce_and_checkpoint(std::uint64_t gen, TcStats& st);
  /// Collective restore at process() entry: deals the manifest's
  /// descriptors round-robin across the joined ranks of this (possibly
  /// different-sized) fleet.
  void restore_from(const std::string& path);
  TcStats& my_stats() { return stats_[static_cast<std::size_t>(rt_.me())]; }

  pgas::Runtime& rt_;
  TcConfig cfg_;
  std::unique_ptr<SplitQueue> queue_;
  /// Byte offset of the lineage trailer inside a slot while a lineage
  /// session is armed; 0 disables every lineage hook (the off-path cost
  /// is this one comparison).
  std::size_t lineage_off_ = 0;
  std::unique_ptr<TerminationDetector> td_;
  /// Heartbeat publisher/prober, present iff the failure detector is
  /// armed; pumped from the top of the process() loop.
  std::unique_ptr<detect::HeartbeatProbe> hb_;
  CloRegistry clos_;
  /// Per-rank callback tables (identical contents by SPMD discipline).
  std::vector<CallbackRegistry> registries_;
  /// Per-rank scratch for padding descriptors to slot size.
  std::vector<std::vector<std::byte>> scratch_;
  std::vector<Xoshiro256> rngs_;
  std::vector<TcStats> stats_;
  /// Live knobs, per rank (only the self slot is initialized, like the
  /// buffers below); the queue holds a pointer to the self slot.
  std::vector<control::KnobSet> knobs_;
  std::vector<std::vector<std::byte>> steal_bufs_;
  std::vector<std::vector<std::byte>> exec_bufs_;
  /// Fault-recovery state, per rank (used only with an active session).
  /// epoch_seen_ starts at ~0 so the first idle pass populates the lists.
  std::vector<std::uint64_t> epoch_seen_;
  /// Dead ranks whose queues this rank adopts (successor(dead) == me).
  std::vector<std::vector<Rank>> wards_;
  /// Alive ranks other than me: the fault-aware victim pool.
  std::vector<std::vector<Rank>> alive_others_;
  /// Scheduler-extension hooks (see set_idle_hook / set_pending_hook).
  std::function<std::uint64_t()> idle_hook_;
  std::function<bool()> pending_hook_;
  /// Elastic control patch (join-request / quiesce-arrival / ckpt-done
  /// words), allocated only when an elastic session is armed.
  pgas::SegId eseg_ = -1;
  std::uint64_t ckpt_gen_done_ = 0;  // latest checkpoint generation handled
  bool restore_done_ = false;  // the collective restore ran at first entry
  std::function<std::vector<std::byte>()> ckpt_writer_;
  std::function<void(Rank, const std::vector<std::byte>&)> ckpt_reader_;
  bool live_ = true;
};

}  // namespace scioto
