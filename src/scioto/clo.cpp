#include "scioto/clo.hpp"

// Header-only implementation; this TU anchors the component in the build.
