// The split task queue (paper §5, Figure 2) and its variants.
//
// Each rank owns one circular array of fixed-size task slots living in
// PGAS shared space. Three monotone-ish 64-bit indices partition it:
//
//      steal_head              split              priv_tail
//          |--- shared portion ---|--- private portion ---|
//        (thieves steal oldest/    (owner-only, lock-free;
//         lowest-affinity tasks     owner pushes and pops
//         from this end)            LIFO at this end)
//
// * The owner pushes/pops at priv_tail without any lock: thieves never
//   touch indices >= split.
// * release(): the owner donates the oldest private tasks to the shared
//   portion by raising `split` -- a single store, no lock, no copying
//   (this is the paper's "simply adjusting the queue's split pointer").
// * Low-affinity adds and remote adds enter at the steal end
//   (steal_head - 1), so they are the first candidates to migrate --
//   this is how affinity ordering is realized.
//
// Queue modes (QueueMode):
//
// * Split (the paper's design): thieves lock the victim's queue, steal up
//   to `chunk` tasks from [steal_head, split), and advance steal_head.
//   reacquire() lowers `split` under the lock.
//
// * NoSplit (the paper's original implementation, Figure 7's ablation):
//   one region, every operation -- including the owner's local push/pop --
//   takes the lock. Figure 7 measures the collapse this causes.
//
// * WaitFreeSteal (the paper's §8 future-work item): steals are lock-free.
//   A thief snapshots (steal_head, split), copies the candidate slots
//   word-wise, then publishes with a single compare-and-swap on
//   steal_head; a lost race discards the (possibly torn) copy and
//   retries, so no thief ever blocks behind another. To keep the steal
//   path validation-only, `split` is never lowered: the owner reclaims
//   parked work by *self-stealing* through the same CAS path. Remote adds
//   still serialize among themselves on the victim's lock (they are rare)
//   but publish with a CAS so they remain correct against concurrent
//   lock-free thieves.
//
// * LockFree (Chase-Lev top/bottom on the shared portion): like
//   WaitFreeSteal, thieves claim chunks with a single CAS on steal_head
//   ("top") and never block, but the full split machinery stays live --
//   the owner still releases by raising `split` ("bottom" of the shared
//   window) and still *lowers* it in reacquire() through a validated
//   seq_cst publish, falling back to a CAS self-steal when the shared
//   portion is thin (the classic owner-CAS-on-top arbitration for the
//   last element). What makes the unlocked claims sound against remote
//   adds -- which move steal_head *down*, re-opening the ABA window a
//   monotone top never has -- is a 16-bit modification tag packed into
//   steal_head's top bits: every add bumps the tag, so a stale thief's
//   CAS cannot succeed against a same-index-different-history word. See
//   DESIGN.md for the full memory-order argument.
//
// Cost model: local lock-free ops charge MachineModel::local_insert/get;
// remote ops charge lock/RMA/RMW costs through the runtime, which under
// sim also serializes contenders in virtual time.
//
// Fault tolerance (runs with an active fault session only): each rank's
// patch additionally carries a steal-transaction table -- one record and
// one chunk-sized buffer per potential thief. A locked steal logs the
// stolen chunk into the victim's buffer and opens the record before
// releasing the victim's lock; the thief closes it (commit_steal) only
// after requeueing every stolen task locally. If the thief dies in
// between, the victim replays the chunk from its own buffer
// (recover_open_txns); if the victim dies, its successor ward adopts the
// whole queue plus any orphaned transactions (drain_dead). Because a
// remote add overwrites ring slots just below steal_head, the ring itself
// cannot serve as the recovery log -- the side buffer can. Exactly-once
// completion holds because kills fire only at safepoints and the
// requeue+commit sequence contains none. Wait-free steals have no lock to
// anchor the transaction, so fault mode requires locked steals.
#pragma once

#include <atomic>
#include <cstdint>

#include "control/knobs.hpp"
#include "metrics/metrics.hpp"
#include "pgas/runtime.hpp"

namespace scioto {

enum class QueueMode {
  Split,          // §5: lock-free private portion + locked shared portion
  NoSplit,        // original fully locked queue (Figure 7 ablation)
  WaitFreeSteal,  // §8: CAS-published steals, no thief ever blocks
  LockFree,       // Chase-Lev: CAS steals + tagged ABA-safe adds + live split
};

const char* queue_mode_name(QueueMode mode);

class SplitQueue {
 public:
  struct Config {
    /// Whole-descriptor slot size in bytes (header + max body); rounded
    /// up to a multiple of 8 internally (the wait-free copy is word-wise).
    std::size_t slot_bytes = 64;
    /// Byte offset of the causal-lineage trailer inside each slot, or 0
    /// when no lineage session is armed. Nonzero makes a successful
    /// steal_from bump each landed record's hop count and emit one
    /// MigrateEdge per task -- the single choke point all three steal
    /// protocols (and the owner's self-steal reacquire, which is exempt)
    /// funnel through. Set by TaskCollection; collectively uniform.
    std::size_t lineage_off = 0;
    /// Per-rank capacity in tasks (the paper's max_tasks).
    std::uint64_t capacity = 1 << 16;
    /// Steal granularity in tasks (the paper's chunk_size). With a live
    /// KnobSet attached this is only the *initial* value.
    int chunk = 10;
    /// Upper bound for the live steal-chunk knob. Steal/reacquire buffers
    /// and the fault-mode transaction log are sized for this at
    /// construction, so the control plane can raise the chunk at runtime
    /// without reallocation. 0 means "= chunk" (no headroom), which keeps
    /// control-off layouts and traces byte-identical to pre-control runs.
    /// Collective: must match across ranks (it shapes the patch layout).
    int chunk_max = 0;
    /// Live knobs this queue reads through on every policy decision
    /// (steal width, steal-half, release threshold). When null the static
    /// config fields above apply, read once per decision as before. The
    /// pointed-to KnobSet must outlive the queue and is only ever written
    /// from the owning rank's context (see control/knobs.hpp).
    const control::KnobSet* knobs = nullptr;
    QueueMode mode = QueueMode::Split;
    /// Owner releases work when private > release_threshold tasks and the
    /// shared portion has fewer than `chunk` tasks.
    std::uint64_t release_threshold = 2 * 10;
    /// Aborting steals: thieves trylock the victim and return kStealBusy
    /// instead of convoying on a held lock (caller re-targets). Split and
    /// NoSplit modes only; wait-free steals never block to begin with.
    bool aborting_steals = false;
    /// Steal-half adaptive chunking: a steal takes
    /// min(ceil(shared_depth / 2), chunk) tasks instead of the fixed
    /// `chunk`, so a deep victim sheds half its exposed work in one get
    /// while a nearly-dry one is not stripped bare.
    bool adaptive_chunk = false;
    /// Lock-light owner fast path: when the shared portion is deep enough
    /// that no in-flight thief can overrun it, reacquire() lowers `split`
    /// with a single validated seq_cst publish instead of taking the lock
    /// (falling back to the locked path when the margin is thin).
    bool owner_fastpath = false;
    /// Shrinks the steal critical section: the chunk's wire time (its RMA
    /// charge) is paid after the victim's lock is released, modelling a
    /// get whose bulk data streams while the lock is already free. The
    /// ring->buffer copy itself stays under the lock (remote adds reuse
    /// slots just below steal_head immediately after it moves).
    bool deferred_steal_copy = false;
  };

  /// steal_from() result when aborting_steals is set and the victim's lock
  /// was held: nothing was transferred and the victim's queue state is
  /// untouched; the caller should back off and pick another victim.
  static constexpr int kStealBusy = -1;

  struct Counters {
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t releases = 0;
    std::uint64_t reacquires = 0;
    std::uint64_t steals_in = 0;        // successful steals we performed
    std::uint64_t steal_attempts = 0;   // including empty-handed
    std::uint64_t tasks_stolen_in = 0;  // tasks obtained by stealing
    std::uint64_t remote_adds = 0;      // tasks we pushed to other ranks
    std::uint64_t cas_retries = 0;      // wait-free / lockfree modes only
    std::uint64_t steal_copy_reuses = 0;  // lockfree retries that kept the
                                          // buffered chunk (same tag)
    std::uint64_t steals_aborted = 0;   // fault-truncated to zero tasks
    std::uint64_t tasks_recovered = 0;  // replayed txns + adopted queues
    std::uint64_t commit_retries = 0;   // dropped commit writes retried
    std::uint64_t steals_lock_busy = 0;  // aborting steals: victim lock held
    std::uint64_t owner_lock_acqs = 0;   // owner took its own queue's lock
    std::uint64_t reacquires_fast = 0;   // lock-free fast-path reacquires
  };

  /// Collective: allocates the queue segment and its lock set.
  SplitQueue(pgas::Runtime& rt, Config cfg);

  /// Collective: releases shared space.
  void destroy();

  // ---- Owner-side operations (current rank's queue) ----
  /// Pushes one descriptor. High affinity enters the private end
  /// (lock-free), low affinity enters the shared steal end (locked).
  /// Returns false when the queue is full.
  bool push_local(const std::byte* task, int affinity);
  /// Pops the newest private task (LIFO). Returns false if the private
  /// portion is empty (shared tasks need reacquire()).
  bool pop_local(std::byte* out);
  /// Moves up to half of the shared portion back to private (Split mode
  /// lowers the split under the lock; WaitFreeSteal self-steals through
  /// the CAS path and re-pushes). Returns the number of tasks reclaimed.
  std::uint64_t reacquire();
  /// Donates oldest private tasks to the shared portion when the release
  /// policy triggers. Returns tasks released.
  std::uint64_t release_maybe();

  std::uint64_t private_size() const;
  std::uint64_t shared_size() const;
  std::uint64_t size() const { return private_size() + shared_size(); }
  bool empty() const { return size() == 0; }

  // ---- Remote operations ----
  /// Unlocked peek at a victim's stealable-task count (one 16-byte get).
  std::uint64_t peek_shared(Rank victim);
  /// Steals up to cfg.chunk tasks from the victim's shared portion into
  /// `out` (which must hold chunk * slot_bytes). Returns tasks stolen, or
  /// kStealBusy when aborting_steals is set and the victim's lock was held.
  int steal_from(Rank victim, std::byte* out);
  /// Adds one descriptor to `target`'s shared end.
  /// Returns false if the target queue is full.
  bool add_remote(Rank target, const std::byte* task);

  // ---- Fault recovery (active fault session only; no-ops otherwise) ----
  /// Thief side: closes the steal transaction opened by the last
  /// steal_from(victim). Call only after every stolen task has been
  /// requeued locally -- with no safepoint in between (exactly-once).
  void commit_steal(Rank victim);
  /// Victim side: replays chunks whose thief died mid-steal from our own
  /// transaction buffers. Returns tasks re-enqueued.
  std::uint64_t recover_open_txns();
  /// Ward side: adopts a dead rank's entire queue (shared + orphaned
  /// private portion) plus transactions whose thief also died. Returns
  /// tasks adopted. Safe to call repeatedly; later calls find nothing.
  std::uint64_t drain_dead(Rank dead);
  /// Owner side, after a false suspicion: under our own lock, atomically
  /// clears the fence word, thaws the frozen priv_tail, and re-admits us
  /// to the membership view (detect::rejoin). Holding the lock across the
  /// rejoin is load-bearing: a ward that already passed its under-lock
  /// alive() re-check serializes here, so it either installed its fence
  /// before we took the lock (cleared below) or re-checks after the rejoin
  /// and bails -- a fence can never be installed between an unlocked
  /// fence==0 read and the rejoin, where nobody would ever clear it.
  /// Returns the old fence word (0 when we were never fenced). The drained
  /// queue stays drained; nothing is executed twice.
  std::uint64_t fence_ack();
  /// Thief side, after discovering we were falsely confirmed dead with a
  /// steal transaction still open on `victim`: tries to take the open txn
  /// back (CAS state 1 -> 0). True: the chunk is ours again, requeue our
  /// copy. False: a replayer (victim or ward) owns it, discard our copy.
  bool reclaim_txn(Rank victim);
  /// True when recovered tasks are parked in the local overflow stash
  /// (they count as live work for termination purposes).
  bool overflow_pending() const;
  /// Moves stashed overflow tasks back into the queue as space allows.
  std::uint64_t flush_overflow();

  // ---- Checkpoint (elastic quiesce only) ----
  /// Owner-serialized snapshot of this rank's live descriptors -- the ring
  /// span [steal_head, priv_tail) plus any overflow-stashed tasks --
  /// appended to `out` as raw slot-sized records. Call only while the
  /// fleet is quiesced: no concurrent thief can move steal_head and every
  /// steal transaction is closed (an open one would double-count its chunk
  /// -- the thief requeues it locally before arriving at the rendezvous).
  /// Returns the number of descriptors appended. Restore is plain
  /// push_local of each record (the private/shared split is not
  /// checkpointed: it is policy, not state, and the restored owner's
  /// release machinery rebuilds it).
  std::uint64_t snapshot_local(std::vector<std::byte>& out);

  /// Collective: empties every queue (tc_reset).
  void reset_collective();

  const Config& config() const { return cfg_; }
  std::size_t slot_bytes() const { return cfg_.slot_bytes; }
  Counters& counters() { return counters_[static_cast<std::size_t>(rt_.me())]; }
  pgas::Runtime& runtime() { return rt_; }

  // ---- Test/debug inspection (no charges; not part of the model) ----
  /// Atomic snapshot of one rank's queue indices.
  struct Snapshot {
    std::uint64_t steal_head = 0;
    std::uint64_t split = 0;
    std::uint64_t priv_tail = 0;
    bool operator==(const Snapshot&) const = default;
  };
  Snapshot debug_snapshot(Rank r);
  /// FNV-1a hash of `r`'s control indices plus every ring slot byte. The
  /// contention stress test uses it to assert that an aborted (kStealBusy)
  /// steal left the victim's patch byte-identical.
  std::uint64_t debug_patch_hash(Rank r);
  /// Acquire/release this rank's own queue lock (contention tests only).
  void debug_lock_own() { rt_.lock(locks_, rt_.me()); }
  void debug_unlock_own() { rt_.unlock(locks_, rt_.me()); }

 private:
  // All indices start at kIndexBase so the steal end can grow downward
  // (remote adds decrement steal_head) without underflow.
  static constexpr std::uint64_t kIndexBase = 1ull << 32;

  /// LockFree mode packs steal_head as (tag << 48) | index. Thief claims
  /// preserve the tag (raw + n keeps bits 48..63 while index < 2^48);
  /// every remote add bumps it. The tag is what closes the ABA window:
  /// without it, "steal n, then add n" returns steal_head to a value a
  /// stale thief still holds as its CAS expected word, and the claim
  /// would land on slots that no longer hold the tasks it copied. With
  /// the bump, a raw value can only recur after 65536 adds *and* an
  /// exactly offsetting steal volume inside one thief's load-to-CAS
  /// window -- out of scope by construction (a thief's window contains
  /// at most one chunk copy). Other modes never set tag bits, so the
  /// masked readers below are no-ops for them.
  static constexpr int kShTagShift = 48;
  static constexpr std::uint64_t kShIndexMask = (1ull << kShTagShift) - 1;
  static constexpr std::uint64_t sh_idx(std::uint64_t raw) {
    return raw & kShIndexMask;
  }
  static constexpr std::uint64_t sh_tag_bump(std::uint64_t raw,
                                             std::uint64_t new_idx) {
    return (((raw >> kShTagShift) + 1) & 0xffff) << kShTagShift | new_idx;
  }

  /// Freeze tag a ward installs in priv_tail while it adopts the queue
  /// (drain_dead). No reachable index ever carries this bit, so a falsely
  /// suspected owner's lock-free push/pop CAS -- whose expected value is
  /// always a previously *loaded* priv_tail -- can never succeed against a
  /// frozen word, no matter whether the load happened before or after the
  /// freeze: pre-freeze loads mismatch the tag, post-freeze loads bail on
  /// it before touching a slot. Only fence_ack (owner, under its own lock)
  /// thaws the index. This is what makes the freeze a real fence rather
  /// than a value that an owner mid-task-body could legally re-read and
  /// CAS right through while the ward is still copying slots out.
  static constexpr std::uint64_t kFrozenBit = 1ull << 63;
  static constexpr std::uint64_t unfrozen(std::uint64_t v) {
    return v & ~kFrozenBit;
  }

  /// Internal push outcome. `Fenced`: the queue is adopted (fence set /
  /// priv_tail frozen) and the task was NOT enqueued or stashed -- the
  /// caller decides (push_local stashes; flush_overflow keeps the task in
  /// the stash and bails instead of re-stashing the same task forever).
  enum class PushOutcome { Ok, Full, Fenced };

  struct alignas(64) Ctl {
    std::atomic<std::uint64_t> steal_head{kIndexBase};
    std::atomic<std::uint64_t> split{kIndexBase};
    std::atomic<std::uint64_t> priv_tail{kIndexBase};
    /// Adoption lease fence: (membership epoch << 16) | (adopter + 1),
    /// 0 when unfenced. A ward CAS-installs it under the victim's lock
    /// before draining; a falsely-suspected owner observes it on its next
    /// lock/CAS acquisition and aborts its work loop (fence_ack).
    std::atomic<std::uint64_t> fence{0};
  };

  /// Per-thief steal-transaction record in the victim's patch. `state` is
  /// 0 closed, 1 open (chunk copied out but not yet requeued+committed by
  /// the thief), 2 replay-in-progress. Replayers claim an open record with
  /// CAS 1 -> 2 and close it with a store; a falsely-dead thief reclaims
  /// with CAS 1 -> 0 (reclaim_txn) -- exactly one side wins, so the chunk
  /// is requeued exactly once even when detection was wrong.
  struct TxnRecord {
    std::atomic<std::uint64_t> state{0};
    std::atomic<std::uint64_t> count{0};
  };

  Ctl& ctl(Rank r);
  std::byte* slot(Rank r, std::uint64_t index);
  TxnRecord& txn(Rank victim, Rank thief);
  std::byte* txn_buf(Rank victim, Rank thief);
  /// push_local without the stash-on-fence fallback (see PushOutcome).
  PushOutcome try_push_local(const std::byte* task, int affinity);
  void stash_overflow(const std::byte* task);
  /// Steal boundary as seen by thieves: split in split-based modes, the
  /// whole deque in NoSplit.
  std::uint64_t steal_boundary(const Ctl& c) const;
  void copy_out_span(Rank victim, std::uint64_t first, std::uint64_t count,
                     std::byte* out);
  /// The raw two-segment ring copy of copy_out_span without its RMA
  /// charge (deferred_steal_copy pays the wire time after unlock).
  void copy_span_raw(Rank victim, std::uint64_t first, std::uint64_t count,
                     std::byte* out);
  /// Live knob reads: through cfg_.knobs when attached (the control
  /// plane's hot-swappable values), else the static config fields.
  int live_chunk() const {
    return cfg_.knobs ? static_cast<int>(
                            cfg_.knobs->get(control::Knob::StealChunk))
                      : cfg_.chunk;
  }
  bool live_steal_half() const {
    return cfg_.knobs ? cfg_.knobs->get(control::Knob::StealHalf) != 0
                      : cfg_.adaptive_chunk;
  }
  std::uint64_t live_release_threshold() const {
    return cfg_.knobs ? static_cast<std::uint64_t>(cfg_.knobs->get(
                            control::Knob::ReleaseThreshold))
                      : cfg_.release_threshold;
  }
  /// Steal width: fixed live chunk, or ceil(avail/2) capped at the live
  /// chunk when steal-half is on.
  std::uint64_t steal_width(std::uint64_t avail) const;
  /// Word-wise relaxed-atomic copy of one slot: safe to race with a
  /// concurrent overwrite because the caller discards the data when its
  /// publishing CAS fails.
  void copy_slot_relaxed(Rank victim, std::uint64_t index, std::byte* out);
  /// Word-wise relaxed-atomic slot write: LockFree-mode writers use it so
  /// a *stale* thief's speculative read of a physically aliased ring slot
  /// (its claim is doomed -- the tag moved on) is a benign atomic race
  /// instead of UB; the data it may tear is discarded with its failed CAS.
  void store_slot_relaxed(Rank victim, std::uint64_t index,
                          const std::byte* src);
  int steal_from_locked(Rank victim, std::byte* out);
  int steal_from_waitfree(Rank victim, std::byte* out);
  /// Chase-Lev claim: bounded multi-CAS take loop. Each attempt re-reads
  /// the tagged steal_head and the live knobs (chunk/steal-half), copies
  /// the candidate chunk speculatively, and publishes with one seq_cst
  /// CAS of raw -> raw + n; a lost race discards the copy and retries.
  int steal_from_lockfree(Rank victim, std::byte* out);
  bool add_remote_waitfree(Rank target, const std::byte* task);
  /// Like add_remote_waitfree (adders serialize on the victim's lock),
  /// but the publishing CAS bumps the steal_head tag -- the ABA fence
  /// the unlocked thief claims rely on.
  bool add_remote_lockfree(Rank target, const std::byte* task);
  /// Telemetry: record an owner-op latency sample (t0 taken at op entry)
  /// and refresh this rank's queue gauges. One predicted-false branch when
  /// no metrics session is active.
  void metrics_owner_op(metrics::Hist h, TimeNs t0);
  /// Publish this rank's queue depth / shared size / split position into
  /// its metrics patch. Owner-only: thieves never write a victim's gauges
  /// (single-writer seqlock), so a steal shows up at the victim's next op.
  void metrics_queue_gauges();

  pgas::Runtime& rt_;
  Config cfg_;
  /// Normalized cfg_.chunk_max (>= chunk). Everything sized at
  /// construction -- buffers, txn log, internal capacity headroom, the
  /// owner-fastpath margin -- uses this bound, never the live chunk.
  int chunk_max_ = 0;
  /// Internal capacity adds headroom so concurrent remote adds (bounded by
  /// nranks) cannot overflow between an owner's stale capacity check and
  /// its slot write.
  std::uint64_t internal_cap_ = 0;
  pgas::SegId seg_ = -1;
  pgas::LockSet locks_;
  /// Fault mode: patch layout is [Ctl][TxnRecord x n][bufs x n][slots];
  /// otherwise [Ctl][slots] and the txn offsets are unused.
  bool ft_ = false;
  std::size_t txn_off_ = 0;
  std::size_t buf_off_ = 0;
  std::size_t slots_off_ = 0;
  std::vector<Counters> counters_;
  /// Per-rank scratch for wait-free reacquire (self-steal buffer).
  std::vector<std::vector<std::byte>> reacquire_bufs_;
  /// Per-rank stash for recovered tasks that did not fit the queue.
  std::vector<std::vector<std::byte>> overflow_;
};

}  // namespace scioto
