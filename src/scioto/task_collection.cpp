#include "scioto/task_collection.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>
#include <thread>

#include "base/log.hpp"
#include "base/sha1.hpp"
#include "control/control.hpp"
#include "elastic/elastic.hpp"
#include "metrics/metrics.hpp"
#include "metrics/monitor.hpp"
#include "sim/engine.hpp"
#include "trace/lineage.hpp"
#include "trace/trace.hpp"

namespace scioto {

namespace {

// The elastic control patch (src/elastic): one cache line per rank
// carrying the join and checkpoint protocol words. Cross-rank access goes
// through the runtime's failure-aware word ops; local access through
// atomic_ref, like the termination mailboxes.
struct alignas(64) ElasticCtl {
  std::uint64_t join_req = 0;     // parked rank requests admission
  std::uint64_t join_knock = 0;   // doorbell bitmask: joiners OR their rank
                                  // bit in; bit 63 = "rank >= 63, sweep"
  std::uint64_t quiesce_gen = 0;  // arrived-at ckpt generation (kPhaseOver
                                  // once this rank left the phase)
  std::uint64_t ckpt_done = 0;    // completed ckpt generation (the leader's
                                  // word doubles as the manifest gate)
  std::uint64_t ckpt_ndesc = 0;   // descriptors in this rank's last part
};

/// Doorbell bit for rank r: ranks that fit the word carry their identity
/// in the knock itself; every higher rank shares the overflow bit and is
/// found by a remote sweep of the parked tail.
constexpr std::uint64_t knock_bit(Rank r) {
  return r < 63 ? std::uint64_t{1} << r : std::uint64_t{1} << 63;
}

/// Sentinel arrival value: "this rank left the phase and will never have
/// work again" -- quiesce waits and parked ranks both key off it.
constexpr std::uint64_t kPhaseOver = ~std::uint64_t{0};

template <class T>
std::atomic_ref<T> aref(T& word) {
  return std::atomic_ref<T>(word);
}

ElasticCtl* ectl(pgas::Runtime& rt, pgas::SegId seg, Rank r) {
  return reinterpret_cast<ElasticCtl*>(rt.seg_ptr(seg, r));
}

std::string ckpt_part_path(const std::string& base, Rank r) {
  return base + ".r" + std::to_string(r);
}

constexpr char kCkptMagic[8] = {'S', 'C', 'K', 'P', 'T', '1', '\n', '\0'};

}  // namespace

TcStats& TcStats::operator+=(const TcStats& o) {
  tasks_executed += o.tasks_executed;
  tasks_spawned_local += o.tasks_spawned_local;
  tasks_spawned_remote += o.tasks_spawned_remote;
  steals += o.steals;
  steals_same_node += o.steals_same_node;
  steal_attempts += o.steal_attempts;
  tasks_stolen += o.tasks_stolen;
  releases += o.releases;
  reacquires += o.reacquires;
  td_waves_voted += o.td_waves_voted;
  td_black_votes += o.td_black_votes;
  td_marks_sent += o.td_marks_sent;
  td_marks_skipped += o.td_marks_skipped;
  tasks_recovered += o.tasks_recovered;
  steals_aborted += o.steals_aborted;
  op_retries += o.op_retries;
  td_resplices += o.td_resplices;
  steals_lock_busy += o.steals_lock_busy;
  steal_retargets += o.steal_retargets;
  owner_lock_acqs += o.owner_lock_acqs;
  reacquires_fast += o.reacquires_fast;
  time_total += o.time_total;
  time_working += o.time_working;
  time_searching += o.time_searching;
  return *this;
}

Table tc_stats_table(const TcStats& s) {
  Table t({"metric", "value"});
  auto add_u64 = [&](const char* name, std::uint64_t v) {
    t.add_row({name, Table::fmt(static_cast<std::int64_t>(v))});
  };
  auto add_ms = [&](const char* name, TimeNs v) {
    t.add_row({name, Table::fmt(static_cast<double>(v) / 1e6, 3)});
  };
  auto add_pct = [&](const char* name, double num, double den) {
    t.add_row({name, Table::fmt(den > 0 ? 100.0 * num / den : 0.0, 1)});
  };
  add_u64("tasks_executed", s.tasks_executed);
  add_u64("tasks_spawned_local", s.tasks_spawned_local);
  add_u64("tasks_spawned_remote", s.tasks_spawned_remote);
  add_u64("steals", s.steals);
  add_u64("steals_same_node", s.steals_same_node);
  add_u64("steal_attempts", s.steal_attempts);
  add_u64("tasks_stolen", s.tasks_stolen);
  add_u64("releases", s.releases);
  add_u64("reacquires", s.reacquires);
  add_u64("td_waves_voted", s.td_waves_voted);
  add_u64("td_black_votes", s.td_black_votes);
  add_u64("td_marks_sent", s.td_marks_sent);
  add_u64("td_marks_skipped", s.td_marks_skipped);
  if (s.tasks_recovered != 0 || s.steals_aborted != 0 || s.op_retries != 0 ||
      s.td_resplices != 0) {
    add_u64("tasks_recovered", s.tasks_recovered);
    add_u64("steals_aborted", s.steals_aborted);
    add_u64("op_retries", s.op_retries);
    add_u64("td_resplices", s.td_resplices);
  }
  // Adaptive steal engine rows appear only when one of the knobs was on,
  // so default-config tables are unchanged.
  if (s.steals_lock_busy != 0 || s.steal_retargets != 0 ||
      s.reacquires_fast != 0) {
    add_u64("steals_lock_busy", s.steals_lock_busy);
    add_u64("steal_retargets", s.steal_retargets);
    add_u64("owner_lock_acqs", s.owner_lock_acqs);
    add_u64("reacquires_fast", s.reacquires_fast);
    t.add_row({"mean_steal_chunk",
               Table::fmt(s.steals > 0
                              ? static_cast<double>(s.tasks_stolen) /
                                    static_cast<double>(s.steals)
                              : 0.0,
                          2)});
  }
  add_ms("time_total_ms", s.time_total);
  add_ms("time_working_ms", s.time_working);
  add_ms("time_searching_ms", s.time_searching);
  add_pct("steal_success_pct", static_cast<double>(s.steals),
          static_cast<double>(s.steal_attempts));
  add_pct("working_pct", static_cast<double>(s.time_working),
          static_cast<double>(s.time_total));
  add_pct("searching_pct", static_cast<double>(s.time_searching),
          static_cast<double>(s.time_total));
  return t;
}

TaskCollection::TaskCollection(pgas::Runtime& rt, TcConfig cfg)
    : rt_(rt), cfg_(cfg), clos_(rt) {
  SCIOTO_REQUIRE(cfg_.max_task_body >= 0, "negative max_task_body");
  SCIOTO_REQUIRE(cfg_.chunk_size >= 1, "chunk_size must be >= 1");
  SCIOTO_REQUIRE(cfg_.max_tasks_per_rank >= 2, "max_tasks_per_rank too small");
  // SCIOTO_QUEUE=locked|aborting|lockfree selects the steal protocol at
  // construction time (collectively uniform: every rank reads the same
  // environment). It overrides the configured mode so existing programs
  // can A/B the lock-free path without a rebuild.
  if (const char* qm = std::getenv("SCIOTO_QUEUE")) {
    const std::string_view v(qm);
    if (v == "locked") {
      cfg_.queue_mode = QueueMode::Split;
      cfg_.aborting_steals = false;
    } else if (v == "aborting") {
      cfg_.queue_mode = QueueMode::Split;
      cfg_.aborting_steals = true;
    } else if (v == "lockfree") {
      cfg_.queue_mode = QueueMode::LockFree;
      cfg_.aborting_steals = false;  // CAS steals never block on a lock
    } else if (!v.empty()) {
      SCIOTO_REQUIRE(false, "SCIOTO_QUEUE: unknown mode '"
                                << qm
                                << "' (expected locked|aborting|lockfree)");
    }
  }
  if (cfg_.chunk_max == 0) {
    cfg_.chunk_max = cfg_.chunk_size;
#if SCIOTO_CONTROL_ENABLED
    if (control::active()) {
      // Give the controller headroom to raise the steal chunk. active()
      // reads collectively uniform session state, so every rank widens
      // identically (the bound shapes the collectively allocated patch).
      cfg_.chunk_max = std::max(cfg_.chunk_size, 64);
    }
#endif
  }
  SCIOTO_REQUIRE(cfg_.chunk_max >= cfg_.chunk_size,
                 "chunk_max " << cfg_.chunk_max << " below chunk_size "
                              << cfg_.chunk_size);

  SplitQueue::Config qc;
  qc.slot_bytes = align_up(
      sizeof(TaskHeader) + static_cast<std::size_t>(cfg_.max_task_body), 8);
#if SCIOTO_LINEAGE_ENABLED
  if (trace::lineage::active()) {
    // Collectively uniform (active() is process-global session state, set
    // before the SPMD region): every rank appends the same 24-byte
    // lineage trailer after the padded body. Lineage-off runs keep the
    // exact pre-lineage slot layout -- and therefore identical PGAS
    // transfer sizes and virtual-time charges.
    lineage_off_ = qc.slot_bytes;
    qc.slot_bytes += sizeof(trace::lineage::LineageRec);
    qc.lineage_off = lineage_off_;
  }
#endif
  qc.capacity = static_cast<std::uint64_t>(cfg_.max_tasks_per_rank);
  qc.chunk = cfg_.chunk_size;
  qc.chunk_max = cfg_.chunk_max;
  qc.mode = cfg_.queue_mode;
  qc.release_threshold =
      cfg_.release_threshold != 0
          ? cfg_.release_threshold
          : 2 * static_cast<std::uint64_t>(cfg_.chunk_size);
  qc.aborting_steals = cfg_.aborting_steals;
  qc.adaptive_chunk = cfg_.adaptive_steal;
  qc.owner_fastpath = cfg_.owner_fastpath;
  qc.deferred_steal_copy = cfg_.deferred_steal_copy;
  // The live KnobSet seeds from the same effective values TcConfig used to
  // hard-wire into the queue; from here on the queue and the steal path
  // read through it, so set_knob (and the controller) retune a running
  // collection. The vector is sized before the queue captures a pointer
  // into it and never resized after.
  knobs_.resize(static_cast<std::size_t>(rt_.nprocs()));
  control::KnobSet& ks = knobs_[static_cast<std::size_t>(rt_.me())];
  ks.init(cfg_.chunk_size, cfg_.chunk_max, cfg_.adaptive_steal,
          cfg_.steal_retarget_max,
          static_cast<std::int64_t>(qc.release_threshold), rt_.nprocs());
  qc.knobs = &ks;
  queue_ = std::make_unique<SplitQueue>(rt_, qc);
#if SCIOTO_CONTROL_ENABLED
  if (control::active()) {
    control::attach(rt_.me(), &ks);
  }
#endif

  TerminationDetector::Config tdc;
  tdc.color_optimization = cfg_.color_optimization;
  td_ = std::make_unique<TerminationDetector>(rt_, tdc);

  if (detect::active()) {
    // Collective: every rank allocates its heartbeat patch together.
    hb_ = std::make_unique<detect::HeartbeatProbe>(rt_);
  }
#if SCIOTO_ELASTIC_ENABLED
  if (elastic::active()) {
    // Collective: the elastic control patch (join requests, quiesce
    // arrivals, checkpoint progress). Rank 0's placement-init is ordered
    // before first use by the constructor's trailing barrier.
    eseg_ = rt_.seg_alloc(sizeof(ElasticCtl));
    if (rt_.me() == 0) {
      for (Rank r = 0; r < rt_.nprocs(); ++r) {
        new (rt_.seg_ptr(eseg_, r)) ElasticCtl();
      }
    }
  }
#endif

  // TaskCollection objects are constructed per rank (ARMCI style); the
  // per-rank tables below are indexed by me() so the indexing discipline
  // stays uniform, but only this rank's slots get real buffers -- at 512
  // ranks, allocating everyone's steal buffers in every rank's object
  // would waste >100 MB per collection.
  int n = rt_.nprocs();
  const std::size_t self = static_cast<std::size_t>(rt_.me());
  registries_.resize(static_cast<std::size_t>(n));
  scratch_.resize(static_cast<std::size_t>(n));
  stats_.resize(static_cast<std::size_t>(n));
  steal_bufs_.resize(static_cast<std::size_t>(n));
  exec_bufs_.resize(static_cast<std::size_t>(n));
  scratch_[self].resize(qc.slot_bytes);
  steal_bufs_[self].resize(qc.slot_bytes *
                           static_cast<std::size_t>(cfg_.chunk_max));
  exec_bufs_[self].resize(qc.slot_bytes);
  rngs_.reserve(static_cast<std::size_t>(n));
  for (Rank r = 0; r < n; ++r) {
    rngs_.emplace_back(derive_seed(rt_.seed(), r, /*stream=*/0xA11));
  }
  epoch_seen_.assign(static_cast<std::size_t>(n), ~std::uint64_t{0});
  wards_.resize(static_cast<std::size_t>(n));
  alive_others_.resize(static_cast<std::size_t>(n));
  rt_.barrier();
}

void TaskCollection::destroy() {
  SCIOTO_REQUIRE(live_, "destroy of dead task collection");
#if SCIOTO_CONTROL_ENABLED
  if (control::active()) {
    control::detach(rt_.me());
  }
#endif
  queue_->destroy();
  td_->destroy();
  if (hb_) {
    hb_->destroy();
  }
  if (eseg_ >= 0) {
    rt_.seg_free(eseg_);
    eseg_ = -1;
  }
  live_ = false;
}

TaskHandle TaskCollection::register_callback(TaskFn fn) {
  rt_.barrier();
  TaskHandle h =
      registries_[static_cast<std::size_t>(rt_.me())].append(std::move(fn));
  rt_.barrier();
  return h;
}

CloHandle TaskCollection::register_clo(void* local_instance) {
  return clos_.register_object(local_instance);
}

std::int64_t TaskCollection::set_knob(control::Knob k, std::int64_t v) {
  control::KnobSet& ks = knobs_[static_cast<std::size_t>(rt_.me())];
  const bool changed = ks.set(k, v);
#if SCIOTO_CONTROL_ENABLED
  if (changed && control::active()) {
    control::republish(rt_.me());
  }
#else
  (void)changed;
#endif
  return ks.get(k);
}

Task TaskCollection::task_create(std::int32_t body_bytes,
                                 TaskHandle handle) const {
  SCIOTO_REQUIRE(
      body_bytes <= cfg_.max_task_body,
      "task body " << body_bytes << " exceeds max_task_body "
                   << cfg_.max_task_body << " given at tc_create time");
  return Task(body_bytes, handle);
}

void TaskCollection::add_raw(Rank where, int affinity,
                             const std::byte* descriptor, std::size_t size) {
  SCIOTO_REQUIRE(where >= 0 && where < rt_.nprocs(),
                 "add to invalid rank " << where);
  SCIOTO_REQUIRE(size >= sizeof(TaskHeader) && size <= slot_bytes(),
                 "task descriptor size " << size
                     << " outside [header, slot] bounds");
  // Pad the descriptor into a slot-sized scratch buffer (copy-in).
  std::vector<std::byte>& scratch =
      scratch_[static_cast<std::size_t>(rt_.me())];
  std::memcpy(scratch.data(), descriptor, size);
  // Stamp creator and affinity into the stored header.
  auto* hdr = reinterpret_cast<TaskHeader*>(scratch.data());
  hdr->created_by = rt_.me();
  hdr->affinity = affinity;
#if SCIOTO_LINEAGE_ENABLED
  if (lineage_off_ != 0) {
    // Birth of the causal record: fresh id, parent = whatever task is
    // executing on this rank right now (0 for root seeds). The spawner
    // records the edge; the executor's ExecSpan closes it.
    trace::lineage::LineageRec rec;
    rec.id = trace::lineage::next_id(rt_.me());
    rec.parent = trace::lineage::current(rt_.me());
    std::memcpy(scratch.data() + lineage_off_, &rec, sizeof(rec));
    SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::SpawnEdge,
                       static_cast<std::uint32_t>(rec.parent >> 32),
                       static_cast<std::uint32_t>(rec.parent),
                       rec.id);
  }
#endif

  bool ok;
  if (where == rt_.me()) {
    ok = queue_->push_local(scratch.data(), affinity);
    if (ok) {
      my_stats().tasks_spawned_local++;
      queue_->release_maybe();
    }
  } else if ((fault::active() || detect::active()) && !detect::alive(where)) {
    // Redirect: a task aimed at a dead rank lands locally instead of in
    // dead memory its ward would only have to drain back out.
    ok = queue_->push_local(scratch.data(), affinity);
    if (ok) {
      my_stats().tasks_spawned_local++;
      queue_->release_maybe();
    }
  } else {
    ok = queue_->add_remote(where, scratch.data());
    if (ok) {
      my_stats().tasks_spawned_remote++;
      SCIOTO_METRIC_CTR(rt_.me(), metrics::Ctr::RemoteSpawns, 1);
      // A remote add moves work: termination detection must know (§5.2).
      td_->note_lb_op(where);
    }
  }
  if (ok) {
    SCIOTO_METRIC_CTR(rt_.me(), metrics::Ctr::TasksSpawned, 1);
  }
  SCIOTO_REQUIRE(ok, "task collection patch on rank "
                         << where << " is full (max_tasks_per_rank="
                         << cfg_.max_tasks_per_rank << ")");
}

void TaskCollection::execute(std::byte* descriptor) {
  auto* hdr = reinterpret_cast<TaskHeader*>(descriptor);
  const TaskFn& fn =
      registries_[static_cast<std::size_t>(rt_.me())].lookup(hdr->callback);
  TaskContext ctx{*this, *hdr, descriptor + sizeof(TaskHeader), rt_.me()};
  const TimeNs metrics_t0 = SCIOTO_METRICS_ON() ? rt_.now() : 0;
#if SCIOTO_TRACE_ENABLED
  // Same clock reads the process() loop uses for time_working, so the
  // trace-derived working time reconciles with TcStats exactly under sim.
  const bool tracing = trace::active();
  const TimeNs trace_t0 = tracing ? rt_.now() : 0;
  if (tracing) {
    trace::record(rt_.me(), trace::Ev::TaskBegin, hdr->callback,
                  hdr->affinity);
  }
#endif
#if SCIOTO_LINEAGE_ENABLED
  // Read the trailer, announce the span (after TaskBegin, so the flow
  // arrow's finish binds inside the task slice), and make this task the
  // current parent for any spawns the callback performs. Saved/restored
  // rather than cleared: the DAG engine's completion hooks can fire
  // further node tasks from inside execute.
  trace::lineage::LineageRec lrec;
  std::uint64_t lineage_prev = 0;
  const bool lineage_on = lineage_off_ != 0;
  if (lineage_on) {
    std::memcpy(&lrec, descriptor + lineage_off_, sizeof(lrec));
    SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::ExecSpan, lrec.hops,
                       hdr->callback, lrec.id);
    lineage_prev = trace::lineage::current(rt_.me());
    trace::lineage::set_current(rt_.me(), lrec.id);
  }
#endif
  fn(ctx);
#if SCIOTO_LINEAGE_ENABLED
  if (lineage_on) {
    trace::lineage::set_current(rt_.me(), lineage_prev);
  }
#endif
#if SCIOTO_TRACE_ENABLED
  if (tracing) {
    trace::record(rt_.me(), trace::Ev::TaskEnd, hdr->callback, 0,
                  rt_.now() - trace_t0);
  }
#endif
  my_stats().tasks_executed++;
  SCIOTO_METRIC_CTR(rt_.me(), metrics::Ctr::TasksExecuted, 1);
  if (SCIOTO_METRICS_ON()) {
    metrics::hist_record(rt_.me(), metrics::Hist::TaskExecNs,
                         static_cast<std::uint64_t>(
                             std::max<TimeNs>(rt_.now() - metrics_t0, 0)));
  }
}

void TaskCollection::refresh_membership() {
  // Membership through the detector's view (oracle fallback when
  // disarmed): ward assignments and the victim pool re-form on every
  // epoch bump -- deaths, rejoins of falsely-suspected ranks, and elastic
  // admissions alike. Parked (NotJoined) ranks are neither victims nor
  // wards: their queues are empty and must never be frozen by drain_dead.
  const std::size_t self = static_cast<std::size_t>(rt_.me());
  std::uint64_t e = detect::epoch();
  if (e == epoch_seen_[self]) {
    return;
  }
  epoch_seen_[self] = e;
  wards_[self].clear();
  alive_others_[self].clear();
  const int n = rt_.nprocs();
  for (Rank r = 0; r < n; ++r) {
    if (detect::alive(r)) {
      if (r != rt_.me()) {
        alive_others_[self].push_back(r);
      }
    } else if (detect::joined(r) && detect::successor(r) == rt_.me()) {
      wards_[self].push_back(r);
    }
  }
}

void TaskCollection::fence_abort_and_rejoin() {
  // Acknowledging the fence takes our own queue lock, so this blocks
  // until any in-flight adoption finishes; the fence word then reads the
  // (epoch, adopter) lease that evicted us. fence_ack also performs the
  // detect::rejoin() under that same lock -- clearing the fence and
  // rejoining must be one critical section, or a ward that passed its
  // alive() re-check could install a fence between them that nobody ever
  // clears. Nothing is drained twice: our lock-free push/pop CASes failed
  // from the moment the adopter froze priv_tail (bounced pushes sit in
  // the overflow stash, rank-local memory the adopter never scoops), and
  // the adopter's under-lock alive() re-check blocks any adoption
  // attempted after the rejoin.
  std::uint64_t fence = queue_->fence_ack();
  Rank adopter =
      fence != 0 ? static_cast<Rank>((fence & 0xffff) - 1) : kNoRank;
  detect::note_fence_abort();
  SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::FenceAbort,
                     adopter == kNoRank ? -1 : adopter,
                     static_cast<long long>(fence >> 16), 0);
  if (hb_) {
    hb_->reset_observations();
  }
  // Re-entering with (possibly) stashed work: the next vote must be black
  // so no in-flight wave concludes all-white over it.
  td_->mark_self_black();
}

void TaskCollection::process() {
  // One barrier separates everyone's local detector rearm from the first
  // token traffic; the exit is collective by construction (the root's
  // termination broadcast releases every rank), so no closing barrier is
  // needed -- this keeps tc_process within a small factor of one barrier
  // for an empty phase (Figure 4).
  td_->reset_local();
  rt_.barrier();
  TcStats& st = my_stats();
  Xoshiro256& rng = rngs_[static_cast<std::size_t>(rt_.me())];
  std::byte* exec_buf = exec_bufs_[static_cast<std::size_t>(rt_.me())].data();
  std::byte* steal_buf =
      steal_bufs_[static_cast<std::size_t>(rt_.me())].data();
  const int n = rt_.nprocs();
  const bool ft = fault::active();
#if SCIOTO_ELASTIC_ENABLED
  const bool elastic_on = elastic::active() && eseg_ >= 0;
#else
  constexpr bool elastic_on = false;
#endif
  // Elastic admissions move the membership epoch without a fault session,
  // so the ward/victim-pool refresh watches it whenever either is live.
  const bool pool = ft || elastic_on;
  const std::size_t self = static_cast<std::size_t>(rt_.me());
  const TimeNs t_begin = rt_.now();
  SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::PhaseBegin, 0, 0, 0);
  bool parked_out = false;  // phase ended while this rank was still parked
#if SCIOTO_ELASTIC_ENABLED
  std::uint64_t pump_iter = 0;
  bool pump_now = false;  // set by idle iterations; see the pump below
  if (elastic_on && !restore_done_) {
    restore_done_ = true;
    const std::string rpath = elastic::restore_path();
    if (!rpath.empty()) {
      // Collective: both branches are uniform (session config + a
      // per-instance flag that starts false on every rank).
      restore_from(rpath);
      rt_.barrier();  // everyone's share is queued before stealing starts
    }
  }
  if (elastic_on && !detect::joined(rt_.me())) {
    if (parked_wait(st)) {
      td_->arm_join_white();  // first vote white; see termination.hpp
    } else {
      parked_out = true;
    }
  }
#endif
  TimeNs idle_begin = 0;
  // Searching time accumulated since the last Search trace event; one
  // coalesced event is emitted per idle spell (at the transition back to
  // work or at termination) instead of one per poll iteration.
  TimeNs search_accum = 0;
  // Steal backoff state: after each empty-handed steal round, double the
  // number of cheap TD polls before the next round (capped).
  int consecutive_failed_steals = 0;
  int polls_until_steal = 0;
  std::uint64_t idle_iterations = 0;  // watchdog for diagnostics

  if (!parked_out) for (;;) {
    // Telemetry pump: under the sim backend the monitor samples in virtual
    // time from here (the designated sampler scrapes; everyone else
    // returns after one comparison). Charge-free, so metrics-on traces
    // stay identical to metrics-off. No-op under threads (wall thread).
    if (SCIOTO_METRICS_ON()) {
      metrics::monitor_poll(rt_.me(), rt_.now());
    }
#if SCIOTO_CONTROL_ENABLED
    // Control pump: when a controller is armed, run a local decision epoch
    // (or apply the global planner's pending targets) at period boundaries.
    // Charge-free and virtual-time driven, so controller-off runs -- and
    // builds with the gate off -- trace byte-identically.
    if (control::active() && control::poll_due(rt_.me(), rt_.now())) {
      control::poll_epoch(rt_.me(), rt_.now(), queue_->shared_size());
    }
#endif
    // 0. Safepoint: injected fail-stop kills fire only here and at the
    // post-steal safepoint below -- never while holding a lock.
    if (ft) {
      fault::poll_safepoint(rt_.me());
      // Whole-rank stall rules (stall:rank=,for=): the rank goes dark for
      // the whole duration -- no heartbeats, no queue ops -- which is how
      // the false-suspicion tests push a live rank past the detector's
      // confirm timeout.
      TimeNs stall = fault::rank_stall_time(rt_.me());
      if (stall > 0) {
        TimeNs t0 = rt_.now();
        rt_.charge(stall);  // sim backend: virtual time advances
        TimeNs advanced = rt_.now() - t0;
        if (advanced < stall) {
          // Threads backend: charge is a no-op, so stall in wall-clock.
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(stall - advanced));
        }
      }
    }
    if (hb_) {
      hb_->poll();
      if (!detect::alive(rt_.me())) {
        // We were falsely confirmed dead: a ward owns (or is about to
        // adopt) our queue under a lease fence. Acknowledge the fence,
        // rejoin in a fresh membership epoch, and go around -- draining
        // nothing twice (see fence_abort_and_rejoin).
        fence_abort_and_rejoin();
        continue;
      }
    }
#if SCIOTO_ELASTIC_ENABLED
    // Elastic pump: admitter scan + checkpoint trigger, cadence-gated so
    // the common path costs one branch, and run while busy too -- a fleet
    // cannot quiesce if only its idle ranks look for the rendezvous. Idle
    // iterations force the pump (pump_now): they end in relax(), and on a
    // wall-clock backend that yield stretches under thread starvation, so
    // the 64-iteration gate could sit on a rung doorbell longer than the
    // rest of the phase lasts. pump_iter stays monotonic either way -- it
    // doubles as the poll count threads-backend ckpt after= rules count.
    if (elastic_on && ((pump_iter++ & 63u) == 0 || pump_now)) {
      pump_now = false;
      elastic_admit_scan();
      std::uint64_t target = elastic::ckpt_target_gen(
          sim::current_virtual_time(),
          static_cast<int>(std::min<std::uint64_t>(pump_iter, 1u << 30)));
      if (target > ckpt_gen_done_) {
        bool wrote = quiesce_and_checkpoint(target, st);
        if (wrote && elastic::halt_after_ckpt()) {
          break;  // restart story: snapshot durable, leave the phase
        }
      }
    }
#endif
    // 1. Drain local work (head of the queue = highest affinity).
    if (queue_->pop_local(exec_buf)) {
      if (search_accum > 0) {
        SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::Search, 0, 0, search_accum);
        SCIOTO_METRIC_HIST(rt_.me(), metrics::Hist::SearchNs, search_accum);
        search_accum = 0;
      }
      TimeNs t0 = rt_.now();
      execute(exec_buf);
      st.time_working += rt_.now() - t0;
      queue_->release_maybe();
      consecutive_failed_steals = 0;
      polls_until_steal = 0;
      continue;
    }
    // 2. Reclaim work parked in our shared portion.
    if (queue_->reacquire() > 0) {
      continue;
    }

    // 3. Idle: interleave steal attempts with termination detection.
    idle_begin = rt_.now();

    // 3a. Fault recovery: adopt work stranded by dead ranks before trying
    // to steal from live ones.
    if (pool) {
      refresh_membership();
    }
    if (ft) {
      std::uint64_t recovered = queue_->recover_open_txns();
      for (Rank d : wards_[self]) {
        std::uint64_t adopted = queue_->drain_dead(d);
        recovered += adopted;
#if SCIOTO_CONTROL_ENABLED
        if (adopted > 0 && control::active()) {
          // Adopted work inherits the victim's last published knobs: the
          // dead rank's tuning reflected the workload the tasks came from.
          control::inherit(rt_.me(), d);
        }
#endif
      }
      recovered += queue_->flush_overflow();
      if (recovered > 0) {
        // Recovered work re-materialized locally without a steal: our next
        // vote must still be black, or the wave it rode in on could
        // conclude all-white while these tasks wait to run.
        td_->mark_self_black();
        TimeNs spell = rt_.now() - idle_begin;
        st.time_searching += spell;
        search_accum += spell;
        continue;
      }
    }

    // 3b. Scheduler extension: parked dataflow nodes whose gates opened are
    // re-injected by the DAG engine's idle hook. Like fault recovery above,
    // work re-materialized locally without a steal must keep our next vote
    // black, or the wave in flight could conclude all-white over it.
    if (idle_hook_) {
      std::uint64_t injected = idle_hook_();
      if (injected > 0) {
        td_->mark_self_black();
        TimeNs spell = rt_.now() - idle_begin;
        st.time_searching += spell;
        search_accum += spell;
        continue;
      }
    }

    bool got_work = false;
    bool attempted = false;
    if (cfg_.load_balancing && n > 1 && polls_until_steal <= 0) {
      attempted = true;
      const int cores = rt_.machine().cores_per_node;
      // Victim selection, shared by the first aim of each attempt and by
      // busy-abort re-targeting. `avoid` deterministically shifts a repeat
      // pick to the next candidate (no extra RNG draws, so default-config
      // runs consume the stream exactly as before).
      auto pick_victim = [&](Rank avoid) -> Rank {
        // §8 multicore enhancement: optionally prefer a victim sharing our
        // node, whose queue we can raid through shared memory.
        Rank victim = kNoRank;
        if (cfg_.node_steal_bias > 0 && cores > 1 &&
            rng.bernoulli(cfg_.node_steal_bias)) {
          Rank node_base = (rt_.me() / cores) * cores;
          int node_sz = std::min(cores, n - node_base);
          if (node_sz > 1) {
            victim = node_base + static_cast<Rank>(rng.next_below(
                                     static_cast<std::uint64_t>(node_sz - 1)));
            if (victim >= rt_.me()) {
              ++victim;
            }
          }
        }
        if (pool && victim != kNoRank && !detect::alive(victim)) {
          victim = kNoRank;  // node bias picked a dead/parked rank; resample
        }
        // Restricted victim set (control plane): with the victim_set knob
        // at k > 0, aim at the k deepest ranks from the monitor digest
        // (the controller sets this under sustained imbalance -- blind
        // uniform choice finds one deep rank among n with probability
        // 1/(n-1), and every miss inflates the steal backoff). Without a
        // digest (knob set via the C API, no control session) fall back
        // to the next k ranks in ring order. The extra RNG draw happens
        // only when the knob is armed, so default-config runs consume the
        // stream exactly as before. A dead pick under fault tolerance
        // falls through to the alive-pool sampling below.
        const int vset = static_cast<int>(
            knobs_[self].get(control::Knob::VictimSetSize));
        if (victim == kNoRank && vset > 0 && n > 1) {
          Rank hotpool[control::kMaxHotVictims];
          int npool = 0;
#if SCIOTO_CONTROL_ENABLED
          Rank hot[control::kMaxHotVictims];
          int nhot = control::hot_victims(hot);
          for (int i = 0; i < nhot && npool < vset; ++i) {
            if (hot[i] == rt_.me()) continue;
            if (pool && !detect::alive(hot[i])) continue;
            hotpool[npool++] = hot[i];
          }
#endif
          if (npool > 0) {
            std::uint64_t off =
                rng.next_below(static_cast<std::uint64_t>(npool));
            Rank cand = hotpool[off];
            if (cand == avoid && npool > 1) {
              cand = hotpool[(off + 1) % static_cast<std::uint64_t>(npool)];
            }
            return cand;
          }
          std::uint64_t off =
              rng.next_below(static_cast<std::uint64_t>(vset));
          Rank cand = static_cast<Rank>(
              (rt_.me() + 1 + static_cast<Rank>(off)) % n);
          if (cand == avoid && vset > 1) {
            cand = static_cast<Rank>(
                (rt_.me() + 1 + static_cast<Rank>((off + 1) % vset)) % n);
          }
          if (!pool || detect::alive(cand)) {
            return cand;
          }
        }
        if (victim == kNoRank) {
          if (pool) {
            // Sample among live ranks only; stealing from the dead is the
            // ward's job (drain_dead), not the victim-selection RNG's --
            // and parked ranks have no work to take.
            const std::vector<Rank>& pool = alive_others_[self];
            if (pool.empty()) {
              return kNoRank;  // sole survivor: nothing left to steal from
            }
            std::size_t idx = static_cast<std::size_t>(
                rng.next_below(static_cast<std::uint64_t>(pool.size())));
            if (pool[idx] == avoid && pool.size() > 1) {
              idx = (idx + 1) % pool.size();
            }
            victim = pool[idx];
          } else {
            victim = static_cast<Rank>(
                rng.next_below(static_cast<std::uint64_t>(n - 1)));
            if (victim >= rt_.me()) {
              ++victim;
            }
            if (victim == avoid && n > 2) {
              do {
                victim = (victim + 1) % n;
              } while (victim == rt_.me());
            }
          }
        }
        return victim;
      };
      for (int attempt = 0; attempt < cfg_.steals_per_td_poll; ++attempt) {
        Rank victim = pick_victim(kNoRank);
        if (victim == kNoRank) {
          break;
        }
        int got = 0;
        for (int retarget = 0;;) {
          if (queue_->peek_shared(victim) == 0) {
            got = 0;
            break;
          }
          got = queue_->steal_from(victim, steal_buf);
          if (got != SplitQueue::kStealBusy) {
            break;
          }
          // Aborted on a held lock: back off briefly (seeded + capped, so
          // sim replays stay bit-deterministic) and aim at a different
          // victim instead of convoying behind the current one. The budget
          // is a live knob (initialized from cfg_.steal_retarget_max).
          if (retarget >= static_cast<int>(knobs_[self].get(
                              control::Knob::RetargetBudget))) {
            got = 0;
            break;
          }
          ++retarget;
          st.steal_retargets++;
          TimeNs b = std::min<TimeNs>(ns(200) << std::min(retarget - 1, 4),
                                      ns(3200));
          b = b / 2 + static_cast<TimeNs>(rng.next_below(
                          static_cast<std::uint64_t>(b / 2) + 1));
          rt_.charge(b);
          Rank next = pick_victim(victim);
          SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::StealRetarget, victim,
                             next == kNoRank ? victim : next, b);
          if (next == kNoRank) {
            got = 0;
            break;
          }
          victim = next;
        }
        if (got > 0 && ft) {
          // This is the window the victim-side transaction log protects:
          // the chunk is copied out but not yet requeued. A kill here
          // loses only our private copy -- the victim (or its ward)
          // replays the chunk from the log.
          fault::poll_safepoint(rt_.me());
          if (hb_ && !detect::alive(rt_.me())) {
            // Falsely confirmed dead mid-steal: the victim's ward may be
            // replaying our open transaction right now. The txn record
            // arbitrates -- winning the 1->0 reclaim keeps the chunk ours
            // (the ward's 1->2 claim can no longer succeed, and our later
            // commit_steal finds the record already closed); losing means
            // the ward replayed it and our copy must be discarded, or the
            // chunk would run twice.
            bool ours = queue_->reclaim_txn(victim);
            fence_abort_and_rejoin();
            if (!ours) {
              got = 0;
            }
          }
        }
        if (got > 0) {
          if (cores > 1 && rt_.machine().same_node(rt_.me(), victim)) {
            st.steals_same_node++;
          }
          td_->note_lb_op(victim);
          // The search ends with the successful steal: charge it now, before
          // the stolen task runs, so execution time lands only in
          // time_working (working and searching partition the phase).
          TimeNs spell = rt_.now() - idle_begin;
          st.time_searching += spell;
          search_accum += spell;
          SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::Search, 0, 0, search_accum);
          SCIOTO_METRIC_HIST(rt_.me(), metrics::Hist::SearchNs, search_accum);
          search_accum = 0;
          if (ft) {
            // Requeue the whole chunk, then close the transaction. No
            // safepoint separates the requeue from the commit, so the
            // chunk is either fully on our queue (committed) or fully
            // replayable from the victim's log -- never both, never
            // neither: completion is exactly-once.
            for (int i = 0; i < got; ++i) {
              bool ok = queue_->push_local(
                  steal_buf + static_cast<std::size_t>(i) * slot_bytes(),
                  kAffinityHigh);
              SCIOTO_CHECK_MSG(ok, "local queue overflow requeueing steal");
            }
            queue_->commit_steal(victim);
            got_work = true;
            break;
          }
          // Requeue all but the first stolen task, then execute that one
          // directly from the steal buffer. This guarantees progress per
          // successful steal: requeued tasks are instantly stealable again
          // (always so under no-split queues), and without it two mutually
          // stealing ranks can bounce a task chunk forever -- a genuine
          // livelock, not a performance nicety.
          for (int i = 1; i < got; ++i) {
            bool ok = queue_->push_local(
                steal_buf + static_cast<std::size_t>(i) * slot_bytes(),
                kAffinityHigh);
            SCIOTO_CHECK_MSG(ok, "local queue overflow requeueing steal");
          }
          TimeNs t0 = rt_.now();
          execute(steal_buf);
          st.time_working += rt_.now() - t0;
          queue_->release_maybe();
          got_work = true;
          break;
        }
      }
    }
    if (got_work) {
      consecutive_failed_steals = 0;
      polls_until_steal = 0;
      continue;  // searching time already charged before the stolen task ran
    }
    if (attempted) {
      ++consecutive_failed_steals;
      if (cfg_.steal_backoff_max > 0) {
        int shift = std::min(consecutive_failed_steals, 16);
        polls_until_steal = std::min(1 << shift, cfg_.steal_backoff_max);
      }
    } else {
      --polls_until_steal;
    }
#if SCIOTO_ELASTIC_ENABLED
    // Empty-handed: this iteration ends in the idle tail, so force the
    // elastic pump on the next pass (rationale at the pump).
    pump_now = elastic_on;
#endif

    if (ft && queue_->overflow_pending()) {
      // Recovered tasks parked in the overflow stash are live work the
      // queue cannot see; keep our vote black until they drain.
      td_->mark_self_black();
    }
    if (pending_hook_ && pending_hook_()) {
      // Rank-local deferred work (parked dataflow nodes): in no queue, so
      // termination detection cannot see it -- vote black until it runs.
      td_->mark_self_black();
    }
    if (td_->step() == TerminationDetector::Status::Terminated) {
      TimeNs spell = rt_.now() - idle_begin;
      st.time_searching += spell;
      search_accum += spell;
      if (search_accum > 0) {
        SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::Search, 0, 0, search_accum);
        SCIOTO_METRIC_HIST(rt_.me(), metrics::Hist::SearchNs, search_accum);
      }
      break;
    }
    rt_.relax();
    {
      TimeNs spell = rt_.now() - idle_begin;
      st.time_searching += spell;
      search_accum += spell;
    }
    if (++idle_iterations % 1000000 == 0) {
      SCIOTO_WARN("rank " << rt_.me() << " idle for " << idle_iterations
                          << " iterations: queue=" << queue_->size()
                          << " (priv=" << queue_->private_size()
                          << " shared=" << queue_->shared_size()
                          << ") executed=" << st.tasks_executed
                          << " steals=" << queue_->counters().steals_in);
    }
  }

#if SCIOTO_ELASTIC_ENABLED
  if (eseg_ >= 0) {
    // Phase-over sentinel: quiesce waits and parked ranks read this as
    // "this rank will never arrive at a rendezvous, and there is no work
    // left to save". Cleared only in reset(), behind its collective
    // barriers, so nobody is still polling it when it goes back to zero.
    aref(ectl(rt_, eseg_, rt_.me())->quiesce_gen)
        .store(kPhaseOver, std::memory_order_release);
  }
#endif
  const TimeNs phase_dur = rt_.now() - t_begin;
  st.time_total += phase_dur;
  SCIOTO_TRACE_EVENT(rt_.me(), trace::Ev::PhaseEnd, 0, 0, phase_dur);
  // Fold queue/TD counters into the stats snapshot.
  const SplitQueue::Counters& qc = queue_->counters();
  st.steals = qc.steals_in;
  st.steal_attempts = qc.steal_attempts;
  st.tasks_stolen = qc.tasks_stolen_in;
  st.releases = qc.releases;
  st.reacquires = qc.reacquires;
  const TerminationDetector::Counters& tc = td_->counters();
  st.td_waves_voted = tc.waves_voted;
  st.td_black_votes = tc.black_votes;
  st.td_marks_sent = tc.dirty_marks_sent;
  st.td_marks_skipped = tc.dirty_marks_skipped;
  st.tasks_recovered = qc.tasks_recovered;
  st.steals_aborted = qc.steals_aborted;
  st.op_retries = qc.commit_retries + tc.token_retries;
  st.td_resplices = tc.resplices;
  st.steals_lock_busy = qc.steals_lock_busy;
  st.owner_lock_acqs = qc.owner_lock_acqs;
  st.reacquires_fast = qc.reacquires_fast;
}

void TaskCollection::reset() {
  queue_->reset_collective();
  td_->reset();
#if SCIOTO_ELASTIC_ENABLED
  if (eseg_ >= 0) {
    // Re-zeroed only here, after the collective barriers above: every
    // rank has left the previous phase, so nobody is still polling the
    // phase-over sentinel these words carried.
    ElasticCtl* ec = ectl(rt_, eseg_, rt_.me());
    aref(ec->join_req).store(0, std::memory_order_relaxed);
    aref(ec->join_knock).store(0, std::memory_order_relaxed);
    aref(ec->quiesce_gen).store(0, std::memory_order_relaxed);
    aref(ec->ckpt_done).store(0, std::memory_order_relaxed);
    aref(ec->ckpt_ndesc).store(0, std::memory_order_relaxed);
  }
#endif
  stats_[static_cast<std::size_t>(rt_.me())] = TcStats{};
  epoch_seen_[static_cast<std::size_t>(rt_.me())] = ~std::uint64_t{0};
  rt_.barrier();
}

#if SCIOTO_ELASTIC_ENABLED

bool TaskCollection::parked_wait(TcStats& st) {
  // Parked (NotJoined) ranks sit out the phase: no tree seat, never a
  // steal victim, never adopted. They spin here publishing heartbeats,
  // waiting for either their join rule to fire (publish the request, then
  // wait for the admitter's epoch bump) or the phase to end without them.
  const Rank me = rt_.me();
  ElasticCtl* my = ectl(rt_, eseg_, me);
  const TimeNs t0 = rt_.now();
  bool requested = false;
  int polls = 0;
  bool admitted = false;
  for (;;) {
    if (SCIOTO_METRICS_ON()) {
      metrics::monitor_poll(me, rt_.now());
    }
    if (hb_) {
      hb_->poll();
    }
    ++polls;
    bool knock = false;
    if (!requested &&
        elastic::join_due(me, sim::current_virtual_time(), polls)) {
      aref(my->join_req).store(1, std::memory_order_release);
      requested = true;
      knock = true;
      SCIOTO_TRACE_EVENT(me, trace::Ev::JoinRequest, me, 0, 0);
    }
    if (requested && (knock || (polls & 7) == 0)) {
      // Ring the admitter's doorbell: OR our rank bit into its knock word
      // (and keep ringing -- the admitter can change across deaths, and a
      // bit ORed after the admitter's exchange lands in its next scan).
      // Pushing the signal keeps the admitter's scan one local exchange;
      // the remote RMWs charge only this parked rank, whose virtual time
      // is worthless anyway. The cadence is tight because parked polls
      // can be very slow under thread starvation -- a rare ring risks
      // outliving a short phase.
      std::vector<Rank> alive = detect::alive_ranks();
      if (!alive.empty()) {
        const Rank adm = alive.front();
        const std::uint64_t bit = knock_bit(me);
        for (int tries = 0; tries < 4; ++tries) {
          std::uint64_t w = 0;
          if (rt_.get_u64_with_retry(eseg_, adm,
                                     offsetof(ElasticCtl, join_knock),
                                     &w) == pgas::OpStatus::Dropped) {
            break;  // next ring retries
          }
          if ((w & bit) != 0 ||
              rt_.compare_swap(eseg_, adm, offsetof(ElasticCtl, join_knock),
                               static_cast<std::int64_t>(w),
                               static_cast<std::int64_t>(w | bit)) ==
                  static_cast<std::int64_t>(w)) {
            break;
          }
        }
      }
    }
    if (detect::joined(me)) {
      admitted = true;
      break;
    }
    if ((polls & 7) == 0) {
      // The phase can end while we are parked: adopt the termination
      // decision from the current tree root, or observe the phase-over
      // sentinel in its elastic word (which also covers halt_after_ckpt,
      // where no termination is ever decided).
      if (td_->poll_term_remote()) {
        break;
      }
      std::vector<Rank> alive = detect::alive_ranks();
      if (!alive.empty()) {
        std::uint64_t w = 0;
        if (rt_.get_u64_with_retry(eseg_, alive.front(),
                                   offsetof(ElasticCtl, quiesce_gen),
                                   &w) != pgas::OpStatus::Dropped &&
            w == kPhaseOver) {
          break;
        }
      }
    }
    rt_.charge(rt_.machine().poll);
    rt_.relax();
  }
  st.time_searching += rt_.now() - t0;
  return admitted;
}

void TaskCollection::elastic_admit_scan() {
  const Rank me = rt_.me();
  const int n = rt_.nprocs();
  bool any_parked = false;
  for (Rank r = 0; r < n; ++r) {
    if (!detect::joined(r)) {
      any_parked = true;
      break;
    }
  }
  if (!any_parked) {
    return;
  }
  // Joiners ring the doorbell of the rank they currently believe is the
  // admitter (the lowest joined-alive rank -- the same deterministic
  // choice detect::successor rests on), pushing their rank bit into its
  // knock word: they are parked, so the remote RMWs charge time nobody is
  // using. Any joined rank that finds its own word rung handles the
  // admission -- join_ranks is atomic, so this stays correct even when a
  // wall-clock view briefly disagrees about who the admitter is (a false
  // suspicion on the threads backend): wherever the knock landed, it is
  // honored. The steady-state cost for workers is one local load; the
  // knock itself names the batch, so there is nothing to sweep remotely
  // and nothing to race -- a bit ORed after the exchange below is simply
  // picked up by the next scan.
  ElasticCtl* my = ectl(rt_, eseg_, me);
  if (aref(my->join_knock).load(std::memory_order_acquire) == 0) {
    return;
  }
  const std::uint64_t mask =
      aref(my->join_knock).exchange(0, std::memory_order_acq_rel);
  std::vector<Rank> batch;
  for (Rank r = 0; r < n && r < 63; ++r) {
    if ((mask & knock_bit(r)) != 0 && !detect::joined(r)) {
      batch.push_back(r);
    }
  }
  if ((mask & (std::uint64_t{1} << 63)) != 0) {
    // Overflow bit: some rank past the word's reach knocked; find it the
    // slow way (remote sweep of the high parked tail).
    for (Rank r = 63; r < n; ++r) {
      if (detect::joined(r)) {
        continue;
      }
      std::uint64_t req = 0;
      if (rt_.get_u64_with_retry(eseg_, r, offsetof(ElasticCtl, join_req),
                                 &req) != pgas::OpStatus::Dropped &&
          req != 0) {
        batch.push_back(r);
      }
    }
  }
  if (batch.empty()) {
    return;
  }
  // One epoch bump admits the whole batch; every rank (joiners included)
  // resplices its termination tree and ward table on its next TD step,
  // and the joiners leave parked_wait the moment joined() flips.
  std::uint64_t e = detect::join_ranks(batch);
  for (Rank r : batch) {
    SCIOTO_TRACE_EVENT(me, trace::Ev::JoinAdmit, r, me,
                       static_cast<long long>(e));
  }
}

bool TaskCollection::quiesce_and_checkpoint(std::uint64_t gen, TcStats& st) {
  const Rank me = rt_.me();
  const int n = rt_.nprocs();
  const std::size_t self = static_cast<std::size_t>(me);
  const TimeNs t0 = rt_.now();
  // 1. Drain the recovery paths so everything this rank is responsible
  // for sits in its own queue before serialization: replayed steal
  // transactions, adopted dead queues, overflow-stashed tasks.
  if (fault::active()) {
    refresh_membership();
    std::uint64_t rec = queue_->recover_open_txns();
    for (Rank d : wards_[self]) {
      rec += queue_->drain_dead(d);
    }
    rec += queue_->flush_overflow();
    if (rec > 0) {
      td_->mark_self_black();
    }
  }
  ElasticCtl* my = ectl(rt_, eseg_, me);
  // 2. Publish arrival. In-flight steals need no explicit draining: a
  // steal's copy -> requeue -> commit runs inside one work-loop iteration
  // with no interior safepoint or pump, so a rank standing at this
  // rendezvous has no open thief-side transaction -- and by the time ALL
  // participants stand here, every stolen chunk is committed exactly once
  // (the TSan leg of test_elastic exercises this argument).
  aref(my->quiesce_gen).store(gen, std::memory_order_release);
  // 3. Wait for every joined-alive rank to arrive. The participant set is
  // recomputed each spin: a death mid-quiesce drops that rank from the
  // set (its stranded queue is adopted on the next idle pass, so a
  // snapshot racing a death may omit that work -- restore from the next
  // generation). A phase-over sentinel or a termination decision in our
  // own mailbox aborts the snapshot: an all-white wave certifies there is
  // globally no work left to save.
  bool aborted = false;
  int participants = 1;
  for (;;) {
    participants = 1;
    bool all_in = true;
    for (Rank r = 0; r < n; ++r) {
      if (r == me || !detect::joined(r) || !detect::alive(r)) {
        continue;
      }
      std::uint64_t w = 0;
      if (rt_.get_u64_with_retry(eseg_, r, offsetof(ElasticCtl, quiesce_gen),
                                 &w) == pgas::OpStatus::Dropped) {
        all_in = false;
        continue;
      }
      if (w == kPhaseOver) {
        aborted = true;
        break;
      }
      if (w < gen) {
        all_in = false;
      } else {
        ++participants;
      }
    }
    if (aborted || all_in) {
      break;
    }
    if (td_->term_seen_local()) {
      aborted = true;
      break;
    }
    if (hb_) {
      hb_->poll();  // deaths keep being confirmed; the wait cannot hang
    }
    rt_.charge(rt_.machine().poll);
    rt_.relax();
  }
  ckpt_gen_done_ = gen;
  if (aborted) {
    st.time_searching += rt_.now() - t0;
    return false;
  }
  SCIOTO_TRACE_EVENT(me, trace::Ev::Quiesce, static_cast<long long>(gen),
                     participants, rt_.now() - t0);
  // 4. Serialize: the queue's descriptor span plus the application blob,
  // SHA1-framed so restore rejects torn or truncated part files.
  const std::string base = elastic::ckpt_path();
  SCIOTO_REQUIRE(!base.empty(),
                 "elastic: checkpoint due but no ckpt_path configured");
  std::vector<std::byte> descs;
  std::uint64_t ndesc = queue_->snapshot_local(descs);
  std::vector<std::byte> blob;
  if (ckpt_writer_) {
    blob = ckpt_writer_();
  }
  const std::string pp = ckpt_part_path(base, me);
  {
    std::ofstream f(pp, std::ios::binary | std::ios::trunc);
    SCIOTO_REQUIRE(f.good(), "elastic: cannot write part file " << pp);
    Sha1 sha;
    auto put = [&](const void* p, std::size_t nb) {
      f.write(reinterpret_cast<const char*>(p),
              static_cast<std::streamsize>(nb));
      sha.update(p, nb);
    };
    put(kCkptMagic, sizeof(kCkptMagic));
    const std::uint64_t hdr[6] = {static_cast<std::uint64_t>(me),
                                  static_cast<std::uint64_t>(n),
                                  gen,
                                  ndesc,
                                  static_cast<std::uint64_t>(slot_bytes()),
                                  static_cast<std::uint64_t>(blob.size())};
    put(hdr, sizeof(hdr));
    if (!descs.empty()) {
      put(descs.data(), descs.size());
    }
    if (!blob.empty()) {
      put(blob.data(), blob.size());
    }
    Sha1::Digest d = sha.finish();
    f.write(reinterpret_cast<const char*>(d.data()),
            static_cast<std::streamsize>(d.size()));
    f.close();
    SCIOTO_REQUIRE(f.good(), "elastic: short write on part file " << pp);
  }
  aref(my->ckpt_ndesc).store(ndesc, std::memory_order_release);
  // 5. The leader (lowest joined-alive rank) writes the manifest once
  // every part is durable, and publishes its own done word only after --
  // everyone else resumes on the leader's word, so generation g+1 can
  // never overlap generation g's files.
  std::vector<Rank> alive = detect::alive_ranks();
  const Rank leader = alive.empty() ? me : alive.front();
  if (leader != me) {
    aref(my->ckpt_done).store(gen, std::memory_order_release);
    for (;;) {
      if (!detect::alive(leader)) {
        break;  // leader died mid-manifest: this generation stays
                // incomplete on disk; the next one retries cleanly
      }
      std::uint64_t w = 0;
      if (rt_.get_u64_with_retry(eseg_, leader,
                                 offsetof(ElasticCtl, ckpt_done),
                                 &w) != pgas::OpStatus::Dropped &&
          w >= gen) {
        break;
      }
      if (hb_) {
        hb_->poll();
      }
      rt_.charge(rt_.machine().poll);
      rt_.relax();
    }
  } else {
    std::vector<std::pair<Rank, std::uint64_t>> parts;
    for (;;) {
      bool all_done = true;
      parts.clear();
      parts.emplace_back(me, ndesc);
      for (Rank r = 0; r < n; ++r) {
        if (r == me || !detect::joined(r) || !detect::alive(r)) {
          continue;
        }
        std::uint64_t w = 0;
        if (rt_.get_u64_with_retry(eseg_, r, offsetof(ElasticCtl, ckpt_done),
                                   &w) == pgas::OpStatus::Dropped ||
            w < gen) {
          all_done = false;
          break;
        }
        std::uint64_t nd = 0;
        rt_.get_u64_with_retry(eseg_, r, offsetof(ElasticCtl, ckpt_ndesc),
                               &nd);
        parts.emplace_back(r, nd);
      }
      if (all_done) {
        break;
      }
      if (hb_) {
        hb_->poll();
      }
      rt_.charge(rt_.machine().poll);
      rt_.relax();
    }
    std::sort(parts.begin(), parts.end());
    std::ofstream mf(base, std::ios::trunc);
    SCIOTO_REQUIRE(mf.good(), "elastic: cannot write manifest " << base);
    mf << "scioto-ckpt v1\n";
    mf << "gen " << gen << "\n";
    mf << "nranks " << n << "\n";
    mf << "slot_bytes " << slot_bytes() << "\n";
    for (const auto& pr : parts) {
      mf << "part " << pr.first << " " << pr.second << "\n";
    }
    mf.close();
    SCIOTO_REQUIRE(mf.good(), "elastic: short write on manifest " << base);
    aref(my->ckpt_done).store(gen, std::memory_order_release);
    elastic::note_checkpoint();
  }
  SCIOTO_TRACE_EVENT(me, trace::Ev::Checkpoint, static_cast<long long>(gen),
                     static_cast<long long>(ndesc),
                     static_cast<long long>(descs.size() + blob.size()));
  st.time_searching += rt_.now() - t0;
  return true;
}

void TaskCollection::restore_from(const std::string& path) {
  const Rank me = rt_.me();
  const int n = rt_.nprocs();
  std::ifstream mf(path);
  SCIOTO_REQUIRE(mf.good(), "elastic: cannot open ckpt manifest " << path);
  std::string word;
  std::string version;
  mf >> word >> version;
  SCIOTO_REQUIRE(word == "scioto-ckpt" && version == "v1",
                 "elastic: bad manifest header in " << path);
  std::uint64_t gen = 0;
  std::uint64_t src_n = 0;
  std::uint64_t src_slot = 0;
  std::vector<std::pair<Rank, std::uint64_t>> parts;
  while (mf >> word) {
    if (word == "gen") {
      mf >> gen;
    } else if (word == "nranks") {
      mf >> src_n;
    } else if (word == "slot_bytes") {
      mf >> src_slot;
    } else if (word == "part") {
      std::int64_t r = 0;
      std::uint64_t nd = 0;
      mf >> r >> nd;
      parts.emplace_back(static_cast<Rank>(r), nd);
    } else {
      SCIOTO_REQUIRE(false,
                     "elastic: unknown manifest key '" << word << "' in "
                                                       << path);
    }
  }
  SCIOTO_REQUIRE(src_slot == slot_bytes(),
                 "elastic: ckpt slot_bytes "
                     << src_slot << " does not match this collection's "
                     << slot_bytes()
                     << " (task_sz must agree across save/restore)");
  // Deal descriptors round-robin over the *joined* ranks of this fleet:
  // a snapshot taken on one fleet size restores onto another, and parked
  // ranks receive nothing.
  std::vector<Rank> targets;
  for (Rank r = 0; r < n; ++r) {
    if (detect::joined(r)) {
      targets.push_back(r);
    }
  }
  SCIOTO_REQUIRE(!targets.empty(), "elastic: no joined ranks to restore onto");
  std::uint64_t g = 0;  // global descriptor index across parts
  std::uint64_t restored = 0;
  std::uint64_t bytes = 0;
  std::vector<char> buf;
  for (std::size_t pi = 0; pi < parts.size(); ++pi) {
    const Rank src = parts[pi].first;
    const std::uint64_t nd = parts[pi].second;
    const std::string pp = ckpt_part_path(path, src);
    std::ifstream pf(pp, std::ios::binary);
    SCIOTO_REQUIRE(pf.good(), "elastic: cannot open part file " << pp);
    pf.seekg(0, std::ios::end);
    const std::streamoff sz = pf.tellg();
    pf.seekg(0);
    SCIOTO_REQUIRE(
        sz >= static_cast<std::streamoff>(sizeof(kCkptMagic) +
                                          6 * sizeof(std::uint64_t) +
                                          Sha1::kDigestBytes),
        "elastic: truncated part file " << pp);
    buf.resize(static_cast<std::size_t>(sz));
    pf.read(buf.data(), sz);
    SCIOTO_REQUIRE(pf.good(), "elastic: short read on part file " << pp);
    const std::size_t body = buf.size() - Sha1::kDigestBytes;
    Sha1::Digest d = Sha1::hash(buf.data(), body);
    SCIOTO_REQUIRE(
        std::memcmp(d.data(), buf.data() + body, Sha1::kDigestBytes) == 0,
        "elastic: SHA1 mismatch on part file " << pp);
    SCIOTO_REQUIRE(
        std::memcmp(buf.data(), kCkptMagic, sizeof(kCkptMagic)) == 0,
        "elastic: bad magic in part file " << pp);
    std::uint64_t hdr[6];
    std::memcpy(hdr, buf.data() + sizeof(kCkptMagic), sizeof(hdr));
    SCIOTO_REQUIRE(hdr[0] == static_cast<std::uint64_t>(src) &&
                       hdr[2] == gen && hdr[3] == nd && hdr[4] == src_slot,
                   "elastic: part file " << pp
                                         << " does not match the manifest");
    const std::size_t desc_off = sizeof(kCkptMagic) + sizeof(hdr);
    const std::uint64_t blob_bytes = hdr[5];
    SCIOTO_REQUIRE(desc_off + nd * src_slot + blob_bytes +
                           Sha1::kDigestBytes ==
                       buf.size(),
                   "elastic: part file " << pp << " has inconsistent sizes");
    for (std::uint64_t j = 0; j < nd; ++j, ++g) {
      if (targets[g % targets.size()] != me) {
        continue;
      }
      const std::byte* desc = reinterpret_cast<const std::byte*>(
          buf.data() + desc_off + j * src_slot);
#if SCIOTO_LINEAGE_ENABLED
      if (lineage_off_ != 0 && src != me) {
        // The redeal moved this descriptor off the rank that saved it: a
        // migration like any steal, stamped the same way so the analyzer
        // can follow the chain across the checkpoint boundary. (The
        // manifest's slot_bytes check above already rejects mixing
        // lineage-on and lineage-off fleets across a save/restore.)
        std::vector<std::byte>& scratch =
            scratch_[static_cast<std::size_t>(me)];
        std::memcpy(scratch.data(), desc, slot_bytes());
        trace::lineage::LineageRec rec;
        std::memcpy(&rec, scratch.data() + lineage_off_, sizeof(rec));
        rec.hops += 1;
        std::memcpy(scratch.data() + lineage_off_, &rec, sizeof(rec));
        SCIOTO_TRACE_EVENT(me, trace::Ev::MigrateEdge, src, rec.hops,
                           rec.id);
        desc = scratch.data();
      }
#endif
      bool ok = queue_->push_local(desc, kAffinityHigh);
      SCIOTO_REQUIRE(ok, "elastic: local queue overflow during restore");
      ++restored;
      bytes += src_slot;
    }
    if (blob_bytes > 0 &&
        targets[static_cast<std::uint64_t>(pi) % targets.size()] == me &&
        ckpt_reader_) {
      const auto* bp = reinterpret_cast<const std::byte*>(
          buf.data() + desc_off + nd * src_slot);
      ckpt_reader_(src, std::vector<std::byte>(bp, bp + blob_bytes));
      bytes += blob_bytes;
    }
  }
  if (restored > 0) {
    // Restored work re-materialized without a steal: the first vote must
    // be black, or a wave could conclude all-white over it.
    td_->mark_self_black();
    queue_->release_maybe();
  }
  SCIOTO_TRACE_EVENT(me, trace::Ev::Restore,
                     static_cast<long long>(parts.size()),
                     static_cast<long long>(restored),
                     static_cast<long long>(bytes));
  if (me == 0) {
    elastic::note_restore();
  }
}

#endif  // SCIOTO_ELASTIC_ENABLED

TcStats TaskCollection::stats_global() {
  // Element-wise allreduce of the POD counter block.
  TcStats local = stats_local();
  TcStats total;
  rt_.barrier();
  static_assert(std::is_trivially_copyable_v<TcStats>);
  // Reduce via repeated allreduce_sum of a compact array view.
  std::uint64_t in[24] = {local.tasks_executed,
                          local.tasks_spawned_local,
                          local.tasks_spawned_remote,
                          local.steals,
                          local.steal_attempts,
                          local.tasks_stolen,
                          local.releases,
                          local.reacquires,
                          local.td_waves_voted,
                          local.td_black_votes,
                          local.td_marks_sent,
                          local.td_marks_skipped,
                          static_cast<std::uint64_t>(local.time_total),
                          static_cast<std::uint64_t>(local.time_working),
                          static_cast<std::uint64_t>(local.time_searching),
                          local.steals_same_node,
                          local.tasks_recovered,
                          local.steals_aborted,
                          local.op_retries,
                          local.td_resplices,
                          local.steals_lock_busy,
                          local.steal_retargets,
                          local.owner_lock_acqs,
                          local.reacquires_fast};
  struct Packed {
    std::uint64_t v[24];
  } packed;
  std::memcpy(packed.v, in, sizeof(in));
  Packed sum = rt_.allreduce(packed, [](Packed a, const Packed& b) {
    for (int i = 0; i < 24; ++i) a.v[i] += b.v[i];
    return a;
  });
  total.tasks_executed = sum.v[0];
  total.tasks_spawned_local = sum.v[1];
  total.tasks_spawned_remote = sum.v[2];
  total.steals = sum.v[3];
  total.steal_attempts = sum.v[4];
  total.tasks_stolen = sum.v[5];
  total.releases = sum.v[6];
  total.reacquires = sum.v[7];
  total.td_waves_voted = sum.v[8];
  total.td_black_votes = sum.v[9];
  total.td_marks_sent = sum.v[10];
  total.td_marks_skipped = sum.v[11];
  total.time_total = static_cast<TimeNs>(sum.v[12]);
  total.time_working = static_cast<TimeNs>(sum.v[13]);
  total.time_searching = static_cast<TimeNs>(sum.v[14]);
  total.steals_same_node = sum.v[15];
  total.tasks_recovered = sum.v[16];
  total.steals_aborted = sum.v[17];
  total.op_retries = sum.v[18];
  total.td_resplices = sum.v[19];
  total.steals_lock_busy = sum.v[20];
  total.steal_retargets = sum.v[21];
  total.owner_lock_acqs = sum.v[22];
  total.reacquires_fast = sum.v[23];
  return total;
}

}  // namespace scioto
