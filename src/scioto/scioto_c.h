// C-style API mirroring the paper's programming interface (§3.1, §3.2):
//
//   tc_t  tc_create(int task_sz, int chunk_sz, int max_sz)
//   void  tc_destroy(tc_t tc)
//   void  tc_add(tc_t tc, int proc, int affty, task_t *t)
//   void  tc_process(tc_t tc)
//   int   tc_register_callback(tc_t tc, callback_t fcn)
//   task_t *tc_task_create(int body_sz, task_handle_t th)
//   void  tc_task_destroy(task_t *task)
//   void *tc_task_body(task_t *task)
//   void  tc_task_reuse(task_t *task)
//   void  tc_reset(tc_t tc)
//
// The shim binds to the ambient PGAS runtime of the current SPMD region:
// call scioto::capi::bind_runtime(rt) at the top of the rank body (the
// analog of the paper's tc_init). All calls are made from rank context and
// follow the same collectives discipline as the C++ API.
//
// This is a thin veneer over scioto::TaskCollection kept for fidelity with
// the paper's listings (see examples/matmul_c_api.cpp); new code should
// prefer the C++ API.
#pragma once

#include <cstdint>

namespace scioto::pgas {
class Runtime;
}

extern "C" {

/// Opaque task-collection handle (dense index, identical on every rank).
typedef int tc_t;
/// Opaque task descriptor (header + body), heap-allocated.
typedef struct sc_task task_t;
typedef int task_handle_t;
/// Task callback: receives the collection handle and a pointer to the
/// executing task's descriptor (valid for the duration of the call).
typedef void (*tc_callback_t)(tc_t tc, task_t* task);

enum { TC_AFFINITY_LOW = 0, TC_AFFINITY_HIGH = 1 };

/// C view of scioto::TcStats: execution counters from the last
/// tc_process(). Times are nanoseconds (virtual under the sim backend).
typedef struct scioto_stats {
  uint64_t tasks_executed;
  uint64_t tasks_spawned_local;
  uint64_t tasks_spawned_remote;
  uint64_t steals;
  uint64_t steals_same_node;
  uint64_t steal_attempts;
  uint64_t tasks_stolen;
  uint64_t releases;
  uint64_t reacquires;
  uint64_t td_waves_voted;
  uint64_t td_black_votes;
  int64_t time_total_ns;
  int64_t time_working_ns;
  int64_t time_searching_ns;
  /* Resilience counters; all zero unless a fault plan was active. */
  uint64_t tasks_recovered;
  uint64_t steals_aborted;
  uint64_t op_retries;
  uint64_t td_resplices;
  /* Adaptive steal engine; all zero unless the knobs were enabled. */
  uint64_t steals_lock_busy;
  uint64_t steal_retargets;
  uint64_t owner_lock_acqs;
  uint64_t reacquires_fast;
} scioto_stats_t;

/// Collective. Creates a task collection sized for descriptors with up to
/// task_sz body bytes, steal chunks of chunk_sz, and max_sz tasks/rank.
tc_t tc_create(int task_sz, int chunk_sz, long max_sz);
/// Collective.
void tc_destroy(tc_t tc);
/// Collective; all ranks must register the same callbacks in order.
task_handle_t tc_register_callback(tc_t tc, tc_callback_t fcn);
/// Adds a copy of the task to rank `proc` with the given affinity.
void tc_add(tc_t tc, int proc, int affty, task_t* t);
/// Collective MIMD region; returns at global termination.
void tc_process(tc_t tc);
/// Collective; rearms the collection for another phase.
void tc_reset(tc_t tc);
/// Collective: fills `out` with statistics summed over all ranks from the
/// last tc_process().
void tc_stats_get(tc_t tc, scioto_stats_t* out);
/// Effective steal protocol of this collection after the SCIOTO_QUEUE env
/// override ("split", "no-split", "wait-free", or "lockfree"); static
/// storage, valid for the process lifetime.
const char* tc_queue_mode(tc_t tc);

task_t* tc_task_create(int body_sz, task_handle_t th);
void tc_task_destroy(task_t* task);
void* tc_task_body(task_t* task);
/// Copy-in semantics make the buffer immediately reusable; provided for
/// API parity.
void tc_task_reuse(task_t* task);

/// This rank / number of ranks of the bound runtime (paper examples use
/// GA_Nodeid/GA_Nnodes; provided here for self-contained C-style code).
int tc_mype(void);
int tc_nprocs(void);

/* ---- Resilience knobs ----------------------------------------------------
 * C access to the fault-tolerance layer: the retry discipline for
 * transient one-sided-op failures (mirrors fault::RetryPolicy) and the
 * fault-plan passthrough consumed by the next SPMD run. These are
 * process-global, not per-collection, and may be called before any
 * runtime is bound. */

/// Max attempts per failed one-sided op before the caller gives up.
int scioto_retry_limit(void);
void scioto_set_retry_limit(int max_attempts);

/// Exponential-backoff clamp, in nanoseconds (virtual ns under the sim
/// backend).
int64_t scioto_backoff_cap_ns(void);
void scioto_set_backoff_cap_ns(int64_t cap_ns);

/// First-retry delay, in nanoseconds.
int64_t scioto_backoff_base_ns(void);
void scioto_set_backoff_base_ns(int64_t base_ns);

/// Validates `spec` (compact "kill:rank=3,at=5ms;..." form, a JSON array,
/// or "@file") and stages it in SCIOTO_FAULT_PLAN for the next
/// scioto::pgas::run_spmd. Returns 0 on success; on parse failure returns
/// -1, stages nothing, and copies the error message into `errbuf` (when
/// non-NULL, truncated to errbuf_len). NULL or "" clears the staged plan.
int scioto_fault_plan_set(const char* spec, char* errbuf, int errbuf_len);

/// The currently staged plan spec ("" when none). Points at storage owned
/// by the library; valid until the next scioto_fault_plan_set call.
const char* scioto_fault_plan(void);

/* ---- Failure detector ----------------------------------------------------
 * The heartbeat failure detector replaces the omniscient alive-oracle:
 * each rank publishes a heartbeat counter in its PGAS segment and probes
 * a small neighbor set; silent peers move alive -> suspect -> confirmed
 * dead, and queue adoption is lease-fenced so falsely-suspected ranks
 * rejoin without double-executing work. Knobs are process-global and
 * staged: setters apply to the next SPMD run (mirrors scioto::detect::
 * Config), matching the SCIOTO_DETECTOR / SCIOTO_HB_PERIOD /
 * SCIOTO_SUSPECT_AFTER environment knobs. Times are nanoseconds (virtual
 * under the sim backend, wall-clock under threads). */

/// Nonzero when the detector is staged to arm on the next SPMD run.
int scioto_detector_enabled(void);
void scioto_detector_set(int enabled);

/// Own-heartbeat publish period.
int64_t scioto_hb_period_ns(void);
void scioto_set_hb_period_ns(int64_t period_ns);

/// Silence before a probed peer becomes suspect.
int64_t scioto_suspect_timeout_ns(void);
void scioto_set_suspect_timeout_ns(int64_t timeout_ns);

/// Detector counters, summed over ranks for the current (or last) armed
/// detector session. All zero when the detector never ran.
typedef struct scioto_detector_stats {
  uint64_t heartbeats;      /* own-counter publishes */
  uint64_t probes;          /* one-sided heartbeat reads issued */
  uint64_t suspects;        /* alive -> suspect transitions observed */
  uint64_t refutes;         /* suspect -> alive (heartbeat advanced) */
  uint64_t confirms;        /* suspect -> confirmed-dead transitions */
  uint64_t fence_aborts;    /* owners that observed an adoption fence */
  uint64_t rejoins;         /* falsely-suspected ranks re-admitted */
  uint64_t max_detect_latency_ns; /* worst silence at a confirmation */
} scioto_detector_stats_t;

void scioto_detector_stats_get(scioto_detector_stats_t* out);

/* ---- Elastic membership --------------------------------------------------
 * Runtime rank join and checkpoint/restore of task-collection state
 * (src/elastic). Process-global and staged like the detector knobs: the
 * setters apply to the next SPMD run (the SCIOTO_ELASTIC /
 * SCIOTO_CKPT_PATH / SCIOTO_CKPT_PERIOD / SCIOTO_CKPT_RESTORE environment
 * knobs override them). Join schedules come from the fault plan
 * ("join:rank=6,at=2ms"); checkpoint points come from "ckpt:at=..."
 * rules, the staged period, or scioto_ckpt_request() mid-run. */

/// Nonzero when elastic membership is staged to arm on the next SPMD run.
int scioto_elastic_enabled(void);
void scioto_elastic_set(int enabled);

/// Base path for checkpoint files: rank k writes "<path>.r<k>" and the
/// quiesce leader writes the manifest at "<path>". "" disables writing.
/// The returned pointer is library-owned, valid until the next set.
const char* scioto_ckpt_path(void);
void scioto_ckpt_path_set(const char* path);

/// Periodic checkpoint cadence, in nanoseconds (virtual under the sim
/// backend, wall-clock under threads). 0 disables the cadence; rules and
/// explicit requests still fire.
int64_t scioto_ckpt_period_ns(void);
void scioto_ckpt_set_period_ns(int64_t period_ns);

/// Manifest to restore queue state from at the start of the next
/// tc_process ("" = no restore). Descriptors are re-dealt round-robin
/// over the joined ranks, so the restoring fleet may have a different
/// size than the one that wrote the checkpoint.
const char* scioto_ckpt_restore_path(void);
void scioto_ckpt_restore_set(const char* path);

/// Nonzero to end tc_process right after the next checkpoint completes
/// (checkpoint-then-exit; pair with a restore run).
int scioto_ckpt_halt_after(void);
void scioto_ckpt_set_halt_after(int halt);

/// Requests one extra checkpoint from inside a running tc_process; the
/// fleet quiesces at the next pump. Safe from any rank/thread.
void scioto_ckpt_request(void);

/// Elastic counters for the current (or last) armed session, plus the
/// membership view's growth counters. All zero when elastic never ran.
typedef struct scioto_elastic_stats {
  uint64_t checkpoints;  /* snapshots this rank completed */
  uint64_t restores;     /* restore passes (counted once, on rank 0) */
  uint64_t joins;        /* parked ranks admitted into the fleet */
  uint64_t grows;        /* admission waves (epoch bumps from joins) */
} scioto_elastic_stats_t;

void scioto_elastic_stats_get(scioto_elastic_stats_t* out);

/* ---- Live metrics --------------------------------------------------------
 * The global-view telemetry plane: per-rank counters, gauges, and
 * latency histograms in a seqlock-snapshotted patch any rank can scrape
 * with one-sided reads. Process-global and staged like the detector
 * knobs: scioto_metrics_set() arms a session inside the next SPMD run
 * (the SCIOTO_METRICS / SCIOTO_METRICS_PERIOD / SCIOTO_METRICS_OUT /
 * SCIOTO_METRICS_PROM environment knobs override it). Reads work both
 * during a run (live) and right up to scioto run teardown. */

/// Nonzero when a metrics session is staged to arm on the next SPMD run.
int scioto_metrics_enabled(void);
void scioto_metrics_set(int enabled);

/// Monitor sampling period, in nanoseconds (virtual under sim).
int64_t scioto_metrics_period_ns(void);
void scioto_set_metrics_period_ns(int64_t period_ns);

/// Opaque tear-free snapshot of one rank's metric patch, taken with the
/// same seqlock-validated copy the monitor uses. Returns a handle to
/// library-owned storage (freed by scioto_metrics_snapshot_free), or NULL
/// when no metrics session is active or the scrape kept racing.
typedef struct scioto_metrics_snapshot scioto_metrics_snapshot_t;
scioto_metrics_snapshot_t* scioto_metrics_snapshot(int rank);
void scioto_metrics_snapshot_free(scioto_metrics_snapshot_t* snap);

/// Reads one metric out of a snapshot by its exposition name: any counter
/// or gauge ("tasks_executed", "queue_depth", ...) or a histogram name
/// suffixed _count/_sum/_max/_mean/_p50/_p95/_p99 ("steal_ns_p99").
/// Returns 0 and stores into *value on success, -1 on unknown name.
int scioto_metrics_read(const scioto_metrics_snapshot_t* snap,
                        const char* name, uint64_t* value);

/// One-call convenience: scrape `rank` and read `name` from the fresh
/// snapshot. Returns 0 on success, -1 when inactive or unknown.
int scioto_metrics_read_rank(int rank, const char* name, uint64_t* value);

/* ---- Adaptive control plane ----------------------------------------------
 * The feedback controller that closes the metrics -> knobs loop online:
 * per-rank live tuning parameters (steal chunk, steal-half, retarget
 * budget, release threshold, victim set) retuned from telemetry by a
 * hysteresis rule engine, either per rank ("local") or by the fleet
 * monitor ("global"). Staged like the detector and metrics knobs:
 * scioto_ctl_mode_set() arms a session inside the next SPMD run (the
 * SCIOTO_CONTROLLER / SCIOTO_CTL_PERIOD / SCIOTO_CTL_RULES environment
 * knobs override it). The tc_knob_* calls below work with or without an
 * armed controller -- they poke the live KnobSet directly. */

/// Staged controller mode: "off", "local", or "global".
const char* scioto_ctl_mode(void);
/// Stages the mode for the next SPMD run. Returns 0, or -1 on an unknown
/// mode name (nothing staged).
int scioto_ctl_mode_set(const char* mode);

/// Controller epoch period, in nanoseconds (virtual under sim).
int64_t scioto_ctl_period_ns(void);
void scioto_ctl_set_period_ns(int64_t period_ns);

/// Stages rule-engine thresholds from a "key=value;key=value" spec (keys:
/// succ_lo, succ_hi, cov_hi, cov_lo, dwell, chunk_step, min_attempts,
/// release_min, chunk_burst, hot_set). Returns 0; on a bad spec returns
/// -1, stages
/// nothing, and copies the message into errbuf (when non-NULL, truncated
/// to errbuf_len). NULL or "" restores the defaults.
int scioto_ctl_rules_set(const char* spec, char* errbuf, int errbuf_len);

/// Controller counters for the current (or last) armed session; all zero
/// when no controller ever ran.
typedef struct scioto_ctl_stats {
  uint64_t epochs;             /* local decision epochs executed */
  uint64_t decisions;          /* knob changes applied (all ranks) */
  uint64_t targets_published;  /* global-planner target rows written */
  uint64_t inherits;           /* knob rows adopted from dead ranks */
} scioto_ctl_stats_t;

void scioto_ctl_stats_get(scioto_ctl_stats_t* out);

/// Live knob access on this rank's view of a collection, by knob name
/// ("steal_chunk", "steal_half", "retarget_budget", "release_threshold",
/// "victim_set"). Sets are clamped to the knob's bounds and take effect
/// mid-process() -- unlike the tc_create parameters, which only seed the
/// initial values. Returns 0 on success, -1 on an unknown knob name.
int tc_knob_get(tc_t tc, const char* name, int64_t* value);
int tc_knob_set(tc_t tc, const char* name, int64_t value);

/* ---- Dataflow DAG scheduler ----------------------------------------------
 * C veneer over scioto::dag::DagScheduler (src/dag): replicated graph
 * build (every rank makes identical calls, node bodies stay local), then a
 * collective execute that runs nodes in dependency order through the task
 * collection -- ready nodes still migrate via work stealing. Same
 * collectives discipline as tc_*; see the C++ header for semantics. */

/// Opaque DAG handle (dense per-collection index, identical on all ranks).
typedef int scioto_dag_t;
/// Node identifier as returned by scioto_dag_add_node.
typedef int64_t scioto_dag_node_t;
/// Node body: runs on whichever rank executes the node, with the `user`
/// pointer given at add time (must be valid on every rank -- replicated
/// build means each rank registered its own local pointer).
typedef void (*scioto_dag_node_fn)(void* user);

/// Collective: creates a DAG scheduler over the collection.
scioto_dag_t scioto_dag_create(tc_t tc);
/// Rank-local teardown of this rank's scheduler object.
void scioto_dag_destroy(scioto_dag_t dag);
/// Adds a node homed on `home`; `group` is a conflict group from
/// scioto_dag_conflict_group or -1 for none. Returns the node id, or -1 on
/// invalid arguments.
scioto_dag_node_t scioto_dag_add_node(scioto_dag_t dag, int home,
                                      scioto_dag_node_fn fn, void* user,
                                      int group);
/// `succ` cannot start until `pred` completed. Returns 0, or -1 on invalid
/// ids / self-edge (message copied into errbuf when non-NULL).
int scioto_dag_add_edge(scioto_dag_t dag, scioto_dag_node_t pred,
                        scioto_dag_node_t succ, char* errbuf, int errbuf_len);
/// Creates a conflict group: nodes in one group serialize without ordering.
int scioto_dag_conflict_group(scioto_dag_t dag);
/// Collective: validates (0 return) and runs the graph to completion.
/// Returns -1 on a build error -- e.g. a dependency cycle, whose node ids
/// are named in the message copied into errbuf.
int scioto_dag_execute(scioto_dag_t dag, char* errbuf, int errbuf_len);

/// C view of scioto::dag::DagStats summed over ranks (max_depth maxed).
typedef struct scioto_dag_stats {
  uint64_t nodes_run;
  uint64_t nodes_fired;
  uint64_t remote_fires;
  uint64_t conflict_retries;
  uint64_t version_waits;
  uint64_t dyn_spawned;
  uint64_t satisfies;
  uint64_t max_depth;
} scioto_dag_stats_t;

/// Collective: fills `out` with global statistics from the last execute.
void scioto_dag_stats_get(scioto_dag_t dag, scioto_dag_stats_t* out);

/* ---- Causal task lineage -------------------------------------------------
 * Per-task causal records (id / parent / hop count) carried through the
 * descriptor wire format, plus the post-run critical-path analyzer over
 * the recorded SpawnEdge/MigrateEdge/ExecSpan stream (src/trace/
 * lineage.hpp). Process-global and staged like the detector knobs:
 * scioto_lineage_set() arms a session inside the next SPMD run (the
 * SCIOTO_LINEAGE environment knob overrides it). The report needs both a
 * lineage session and a trace session (the edges live in the trace
 * rings), read after tc_process and before run teardown. No-ops /
 * returns -1 in builds configured with -DSCIOTO_LINEAGE=OFF. */

/// Nonzero when lineage is staged to arm on the next SPMD run.
int scioto_lineage_enabled(void);
void scioto_lineage_set(int enabled);

typedef struct scioto_lineage_report {
  uint64_t tasks_spawned;       /* SpawnEdge events recorded */
  uint64_t tasks_executed;      /* ExecSpan events recorded */
  uint64_t migrations;          /* MigrateEdge events (steals + redeals) */
  uint64_t max_hops;            /* deepest steal chain at execution */
  uint64_t violations;          /* happens-before failures (0 = valid) */
  uint64_t ring_dropped;        /* trace events lost to ring wrap */
  int64_t critical_path_ns;     /* weighted critical-path length */
  int64_t spawn_exec_p50_ns;    /* spawn-to-execution latency median */
  int64_t spawn_exec_p99_ns;    /* spawn-to-execution latency p99 */
} scioto_lineage_report_t;

/// Merges the per-rank rings, validates happens-before, and extracts the
/// critical path. Returns 0 on success; -1 when no lineage + trace
/// session pair is active or the build compiled lineage out.
int scioto_lineage_report_get(scioto_lineage_report_t* out);

}  // extern "C"

namespace scioto {
class TaskCollection;
}

namespace scioto::capi {

/// Binds the C API to the calling SPMD region's runtime. Must be invoked
/// by every rank before any tc_* call; unbinds automatically when the
/// returned guard is destroyed.
class RuntimeBinding {
 public:
  explicit RuntimeBinding(pgas::Runtime& rt);
  ~RuntimeBinding();
  RuntimeBinding(const RuntimeBinding&) = delete;
  RuntimeBinding& operator=(const RuntimeBinding&) = delete;
};

/// The bound runtime and the calling rank's collection for a tc handle.
/// For layered C shims built on tc_* handles (the DAG veneer in src/dag
/// lives in a separate library and cannot reach the internal table).
/// Throw scioto::Error when unbound / invalid.
pgas::Runtime& bound_runtime();
TaskCollection& lookup_collection(tc_t h);

}  // namespace scioto::capi
