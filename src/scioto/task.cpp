#include "scioto/task.hpp"

namespace scioto {

Task::Task(std::int32_t body_bytes, TaskHandle handle) {
  SCIOTO_REQUIRE(body_bytes >= 0, "negative task body size " << body_bytes);
  buf_.assign(sizeof(TaskHeader) + static_cast<std::size_t>(body_bytes),
              std::byte{0});
  TaskHeader h;
  h.callback = handle;
  h.body_bytes = body_bytes;
  std::memcpy(buf_.data(), &h, sizeof(h));
}

}  // namespace scioto
