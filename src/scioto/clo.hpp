// Common Local Objects (paper §2.3).
//
// A common local object is a per-process instance of the same logical
// object, collectively registered so a migrating task can look up the
// instance local to wherever it executes. This is how UTS accumulates its
// tree statistics, and the only output mechanism available when
// interoperating with plain MPI (no global address space).
//
// Like all Scioto objects, a CloRegistry is constructed per rank (ARMCI
// style): every rank holds its own registry object, and the collective
// registration discipline keeps handles consistent across ranks.
#pragma once

#include <vector>

#include "base/error.hpp"
#include "pgas/runtime.hpp"

namespace scioto {

using CloHandle = std::int32_t;

class CloRegistry {
 public:
  explicit CloRegistry(pgas::Runtime& rt) : rt_(rt) {}

  /// Collective: every rank passes a pointer to its local instance; all
  /// ranks receive the same handle (registration order must match).
  CloHandle register_object(void* local_instance) {
    rt_.barrier();
    slots_.push_back(local_instance);
    return static_cast<CloHandle>(slots_.size() - 1);
  }

  /// The instance registered by the *current* rank for handle h; valid on
  /// any rank a task migrates to.
  void* lookup(CloHandle h) const {
    SCIOTO_REQUIRE(
        h >= 0 && static_cast<std::size_t>(h) < slots_.size(),
        "invalid CLO handle " << h);
    return slots_[static_cast<std::size_t>(h)];
  }

  template <class T>
  T& lookup_as(CloHandle h) const {
    return *static_cast<T*>(lookup(h));
  }

 private:
  pgas::Runtime& rt_;
  std::vector<void*> slots_;
};

}  // namespace scioto
