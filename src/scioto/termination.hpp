// Wave-based termination detection (paper §5.2, §5.3).
//
// A binary spanning tree is mapped onto the ranks (children of i are 2i+1,
// 2i+2). The root launches a token wave down the tree; when the wave
// reflects off the leaves, each idle process combines its own color with
// its children's and passes the result up. Tokens start white; a process
// colors its token black if it performed a load-balancing operation since
// its last vote or if a thief marked it dirty. A black token reaching the
// root triggers a re-vote; an all-white wave means every process was idle
// with no work in flight, so the root broadcasts termination down the tree.
//
// All token movement uses one-sided 8-byte puts into per-rank mailboxes,
// polled by idle processes -- there is no two-sided communication, matching
// the paper's ARMCI-based implementation. In the average case a detection
// takes 2 log2(p) one-way messages (down + up), which is why Figure 4
// shows roughly twice the cost of a barrier.
//
// Token-coloring optimization (§5.3): after a successful steal the thief
// pt must normally mark its victim pv dirty so pv re-votes. The mark can
// be skipped when (a) pt has not yet voted in the current wave -- pt's own
// (black, because self-dirty) vote already forces a re-vote -- or (b) pv
// is a descendant of pt in the tree (pv votes before pt: if pt has voted,
// pv's vote is already folded into pt's subtree token and the mark could
// not change this wave's outcome).
//
// Fault tolerance (fault::active() runs only): every rank death bumps the
// fault epoch, and each rank re-splices the spanning tree over the alive
// ranks on its next step() -- the rank at alive-position p parents
// position (p-1)/2, so a dead root is replaced too. Tokens carry the
// epoch in their top bits; a token minted in an older epoch is ignored,
// and every rank forces its first post-resplice vote black, so no wave
// that straddles a death can ever conclude all-white (termination is
// never declared early). Termination broadcasts are accepted regardless
// of epoch -- an all-white wave certifies there is globally no work, a
// fact later deaths cannot un-make -- and, post-resplice, ranks also
// periodically poll their (new) parent's term flag, so a decision routed
// through the old tree still reaches everyone. Token puts retry dropped
// sends with jittered exponential backoff.
#pragma once

#include <atomic>
#include <cstdint>

#include "pgas/runtime.hpp"

namespace scioto {

class TerminationDetector {
 public:
  enum class Status { Working, Terminated };

  struct Config {
    /// Enable the §5.3 votes-before optimization.
    bool color_optimization = true;
  };

  struct Counters {
    std::uint64_t waves_voted = 0;
    std::uint64_t black_votes = 0;
    std::uint64_t dirty_marks_sent = 0;
    std::uint64_t dirty_marks_skipped = 0;
    std::uint64_t waves_started = 0;   // root only
    std::uint64_t resplices = 0;       // tree reconfigurations observed
    std::uint64_t token_retries = 0;   // dropped token sends retried
  };

  /// Collective: allocates the token mailboxes.
  TerminationDetector(pgas::Runtime& rt, Config cfg);
  explicit TerminationDetector(pgas::Runtime& rt);

  /// Collective: releases shared space.
  void destroy();

  /// Collective: rearms the detector for a new task-parallel phase.
  void reset();

  /// Local-only rearm: zeroes this rank's mailboxes and protocol state.
  /// The caller must provide a barrier between everyone's reset_local()
  /// and the first token traffic (TaskCollection::process does).
  void reset_local();

  /// Advances the protocol. Call ONLY while this rank is idle (no local
  /// tasks, no steal in progress); returns Terminated once the root's
  /// all-white wave has been broadcast.
  Status step();

  /// Records that this rank moved work (stole tasks from, or pushed a
  /// task to, `other`): colors our own next token black and marks `other`
  /// dirty unless the coloring optimization proves it unnecessary.
  void note_lb_op(Rank other);

  /// Colors this rank's next vote black without marking anyone dirty
  /// (used when work appears locally through fault recovery).
  void mark_self_black();

  // ---- Elastic membership (src/elastic) ----

  /// Parked-rank poll: a rank with no seat in the tree receives no
  /// termination broadcast, so it reads the current tree root's term flag
  /// one-sidedly (through the retrying failure-aware read). Returns true
  /// once termination is decided and latches local terminated state so a
  /// later step() agrees.
  bool poll_term_remote();

  /// Local-only: true once a termination decision has landed in this
  /// rank's mailbox (or was adopted). The elastic quiesce wait uses this
  /// to abort a checkpoint racing the end of the phase -- an all-white
  /// wave certifies there is globally no work left to save.
  bool term_seen_local();

  /// Joiner-only, call once right after admission: the next resplice
  /// casts a white vote instead of the forced-black first vote. Safe
  /// because a joiner enters with no work and no LB history -- the
  /// admission epoch bump already forces every incumbent's next vote
  /// black, which protects any wave that straddles the join. Without
  /// this, an idle joiner would black out one extra full wave per join.
  void arm_join_white();

  const Counters& counters() const {
    return counters_[static_cast<std::size_t>(rt_.me())];
  }
  Counters counters_sum() const;

 private:
  // Mailbox words are plain integers accessed exclusively through
  // std::atomic_ref (locally) and the runtime's word ops (remotely:
  // put_word_reliable / get_u64_with_retry), so every cross-rank token
  // movement flows through the failure-aware retrying PGAS layer.
  struct alignas(64) TdCtl {
    /// Latest wave number announced by the parent.
    std::uint64_t down_wave = 0;
    /// Child reports: (wave << 1) | black_bit, one slot per child.
    std::uint64_t up[2] = {0, 0};
    /// Nonzero once termination is decided (value = deciding wave).
    std::uint64_t term_wave = 0;
    /// Set one-sided by thieves / remote adders.
    std::uint32_t dirty = 0;
  };

  // Tokens are (epoch << kEpochShift) | wave; with no fault session the
  // epoch stays 0 and the encoding is the identity, so the fault-free
  // protocol (and its traces) are bit-identical to the plain design.
  static constexpr int kEpochShift = 48;
  static constexpr std::uint64_t kWaveMask = (1ull << kEpochShift) - 1;
  static std::uint64_t tag(std::uint64_t epoch, std::uint64_t wave) {
    return (epoch << kEpochShift) | wave;
  }

  struct LocalState {
    std::uint64_t wave_seen = 0;   // latest down-wave observed/forwarded
    std::uint64_t voted_wave = 0;  // latest wave we passed a token up for
    bool self_black = false;       // LB op performed since last vote
    bool join_white = false;       // next resplice votes white (joiner)
    bool term_forwarded = false;
    bool terminated = false;
    // Spanning-tree neighbours; static heap positions until a fault epoch
    // forces a resplice over the alive ranks.
    std::uint64_t epoch_seen = 0;
    std::uint64_t steps = 0;       // poll counter (term-adoption cadence)
    TimeNs wave_begin = 0;         // root: launch time of the open wave
                                   // (telemetry only; 0 when metrics off)
    Rank parent = kNoRank;
    int up_slot = 0;               // which of parent's up[] slots is ours
    Rank kids[2] = {kNoRank, kNoRank};
    std::vector<Rank> alive;       // alive list backing the respliced tree
  };

  TdCtl& ctl(Rank r);
  Counters& my_counters() {
    return counters_[static_cast<std::size_t>(rt_.me())];
  }
  /// Heap-order descendant test over positions 0..n-1.
  static bool pos_is_descendant(int v, int anc);
  /// True if `v` is a strict descendant of `anc` in the current tree.
  bool is_descendant(const LocalState& st, Rank v, Rank anc) const;
  /// Recomputes this rank's tree neighbours when the fault epoch moved;
  /// resets wave state and forces the next vote black.
  void maybe_resplice(LocalState& st);
  /// One-sided put of the token word at `offset` in the target's TdCtl
  /// (width 4 for dirty, 8 otherwise). `what` names the field for the
  /// trace stream (0=down, 1=up, 2=term, 3=dirty). Delegates to
  /// Runtime::put_word_reliable: under fault injection, dropped sends are
  /// retried unboundedly with jittered exponential backoff (token
  /// delivery is protocol-critical: a lost wave token stalls detection).
  void put_token(Rank target, std::size_t offset, std::uint64_t value,
                 std::size_t width, int what);

  pgas::Runtime& rt_;
  Config cfg_;
  pgas::SegId seg_ = -1;
  std::vector<LocalState> state_;
  std::vector<Counters> counters_;
};

}  // namespace scioto
