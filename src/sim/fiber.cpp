#include "sim/fiber.hpp"

#include "base/error.hpp"

namespace scioto::sim {

Fiber::Fiber(std::function<void()> fn, std::size_t stack_bytes)
    : fn_(std::move(fn)), stack_(stack_bytes) {
  SCIOTO_REQUIRE(stack_bytes >= 16 * 1024,
                 "fiber stack too small: " << stack_bytes);
}

Fiber::~Fiber() {
  // A fiber destroyed mid-flight simply abandons its stack; the engine
  // guarantees fibers are either finished or never started at teardown.
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run();
}

void Fiber::run() {
  fn_();
  finished_ = true;
  // Returning from the makecontext entry point would terminate the process;
  // uc_link is set to the host context, so just fall off the end.
}

void Fiber::resume() {
  SCIOTO_CHECK(!finished_);
  if (!started_) {
    started_ = true;
    SCIOTO_CHECK(getcontext(&ctx_) == 0);
    ctx_.uc_stack.ss_sp = stack_.data();
    ctx_.uc_stack.ss_size = stack_.size();
    ctx_.uc_link = &host_;
    auto p = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned>(p >> 32),
                static_cast<unsigned>(p & 0xFFFFFFFFu));
  }
  SCIOTO_CHECK(swapcontext(&host_, &ctx_) == 0);
}

void Fiber::yield() {
  SCIOTO_CHECK(swapcontext(&ctx_, &host_) == 0);
}

}  // namespace scioto::sim
