#include "sim/engine.hpp"

#include <cmath>
#include <cstdio>

#include "base/error.hpp"
#include "base/log.hpp"

namespace scioto::sim {

namespace {
thread_local Engine* g_current_engine = nullptr;

/// Log-context provider: when a fiber is executing, logs carry its rank
/// and virtual clock so interleaved sim output is orderable.
bool sim_log_context(int& rank, long long& time_ns) {
  Engine* e = g_current_engine;
  if (e == nullptr || e->current_rank() == kNoRank) {
    return false;
  }
  rank = e->current_rank();
  time_ns = e->now();
  return true;
}

}  // namespace

Engine* current_engine() { return g_current_engine; }

TimeNs current_virtual_time() {
  Engine* e = g_current_engine;
  if (e == nullptr || e->current_rank() == kNoRank) {
    return -1;
  }
  return e->now();
}

Engine::Engine(Config cfg, std::function<void(Rank)> rank_main)
    : cfg_(std::move(cfg)), rank_main_(std::move(rank_main)) {
  log_register_context(&sim_log_context);
  SCIOTO_REQUIRE(cfg_.nranks >= 1, "nranks must be >= 1, got " << cfg_.nranks);
  ranks_.resize(static_cast<std::size_t>(cfg_.nranks));
  cpu_scale_.resize(static_cast<std::size_t>(cfg_.nranks));
  rma_busy_until_.assign(static_cast<std::size_t>(cfg_.nranks), 0);
  for (Rank r = 0; r < cfg_.nranks; ++r) {
    cpu_scale_[static_cast<std::size_t>(r)] =
        cfg_.machine.cpu_scale(r, cfg_.nranks);
    ranks_[static_cast<std::size_t>(r)].fiber = std::make_unique<Fiber>(
        [this, r] { rank_main_(r); }, cfg_.stack_bytes);
  }
  unfinished_ = cfg_.nranks;
}

Engine::~Engine() = default;

Engine::RankState& Engine::cur() {
  SCIOTO_CHECK(current_ != kNoRank);
  return ranks_[static_cast<std::size_t>(current_)];
}

const Engine::RankState& Engine::cur() const {
  SCIOTO_CHECK(current_ != kNoRank);
  return ranks_[static_cast<std::size_t>(current_)];
}

TimeNs Engine::now() const { return cur().clock; }

TimeNs Engine::now(Rank r) const {
  return ranks_[static_cast<std::size_t>(r)].clock;
}

TimeNs Engine::max_clock() const {
  TimeNs m = 0;
  for (const auto& st : ranks_) {
    m = std::max(m, st.clock);
  }
  return m;
}

void Engine::advance_unsynced(TimeNs dt) {
  SCIOTO_CHECK(dt >= 0);
  cur().clock += dt;
}

void Engine::charge(TimeNs dt) {
  SCIOTO_CHECK(dt >= 0);
  RankState& st = cur();
  st.clock += static_cast<TimeNs>(
      std::llround(static_cast<double>(dt) *
                   cpu_scale_[static_cast<std::size_t>(current_)]));
  if (st.clock - st.last_sync_clock > cfg_.machine.sync_quantum) {
    sync();
  }
}

void Engine::advance_to(TimeNs t) {
  RankState& st = cur();
  if (t > st.clock) {
    st.clock = t;
  }
}

void Engine::sync() {
  RankState& st = cur();
  runq_.emplace(st.clock, current_);
  st.fiber->yield();
  st.last_sync_clock = st.clock;
}

void Engine::block() {
  RankState& st = cur();
  st.blocked = true;
  st.fiber->yield();
  // wake() cleared `blocked` and advanced the clock before rescheduling.
  st.last_sync_clock = st.clock;
}

void Engine::wake(Rank r, TimeNs at) {
  RankState& st = ranks_[static_cast<std::size_t>(r)];
  SCIOTO_CHECK_MSG(st.blocked && !st.finished,
                   "wake of rank " << r << " that is not blocked");
  st.blocked = false;
  if (at > st.clock) {
    st.clock = at;
  }
  runq_.emplace(st.clock, r);
}

void Engine::run() {
  SCIOTO_CHECK(!running_);
  running_ = true;
  Engine* prev = g_current_engine;
  g_current_engine = this;

  for (Rank r = 0; r < cfg_.nranks; ++r) {
    runq_.emplace(0, r);
  }

  while (!runq_.empty()) {
    auto [t, r] = runq_.top();
    runq_.pop();
    RankState& st = ranks_[static_cast<std::size_t>(r)];
    SCIOTO_CHECK(!st.finished && !st.blocked);
    current_ = r;
    st.fiber->resume();
    current_ = kNoRank;
    if (st.fiber->finished()) {
      st.finished = true;
      --unfinished_;
      // A rank that exits (e.g. killed by fault injection) may have been
      // the last participant a pending barrier was waiting for: the
      // barrier counts `unfinished_` ranks, so recheck it now or the
      // survivors blocked inside it would never be released.
      maybe_release_barrier();
    }
  }

  g_current_engine = prev;
  running_ = false;
  if (unfinished_ > 0) {
    report_deadlock();
  }
}

void Engine::report_deadlock() {
  std::fprintf(stderr,
               "scioto sim deadlock: %d unfinished rank(s), none runnable\n",
               unfinished_);
  for (Rank r = 0; r < cfg_.nranks; ++r) {
    const RankState& st = ranks_[static_cast<std::size_t>(r)];
    std::fprintf(stderr,
                 "  rank %d: clock=%lld ns blocked=%d finished=%d "
                 "ev_waiting=%d\n",
                 r, static_cast<long long>(st.clock), st.blocked, st.finished,
                 st.ev_waiting);
  }
  for (std::size_t i = 0; i < locks_.size(); ++i) {
    if (locks_[i].held || !locks_[i].waiters.empty()) {
      std::fprintf(stderr, "  lock %zu: holder=%d waiters=%zu\n", i,
                   locks_[i].holder, locks_[i].waiters.size());
    }
  }
  std::fflush(stderr);
  SCIOTO_CHECK_MSG(false, "simulation deadlock");
  std::abort();  // unreachable; fail() aborts
}

int Engine::lock_create() {
  locks_.emplace_back();
  return static_cast<int>(locks_.size() - 1);
}

void Engine::lock_acquire(int id) {
  sync();
  LockState& l = locks_[static_cast<std::size_t>(id)];
  if (!l.held) {
    l.held = true;
    l.holder = current_;
    return;
  }
  SCIOTO_CHECK_MSG(l.holder != current_,
                   "rank " << current_ << " re-acquiring lock " << id);
  l.waiters.push_back(current_);
  block();
  // Direct handoff: the releaser transferred ownership before waking us.
  SCIOTO_CHECK(l.holder == current_);
}

bool Engine::lock_try(int id) {
  sync();
  LockState& l = locks_[static_cast<std::size_t>(id)];
  if (l.held) {
    return false;
  }
  l.held = true;
  l.holder = current_;
  return true;
}

void Engine::lock_release(int id) {
  LockState& l = locks_[static_cast<std::size_t>(id)];
  SCIOTO_CHECK_MSG(l.held && l.holder == current_,
                   "rank " << current_ << " releasing lock " << id
                           << " it does not hold");
  if (l.waiters.empty()) {
    l.held = false;
    l.holder = kNoRank;
    return;
  }
  Rank next = l.waiters.front();
  l.waiters.pop_front();
  l.holder = next;
  // The waiter inherits the releaser's clock: this is the queueing delay
  // that models contention on a shared queue's lock.
  wake(next, cur().clock);
}

bool Engine::lock_held(int id) const {
  return locks_[static_cast<std::size_t>(id)].held;
}

void Engine::idle_wait() {
  sync();
  RankState& st = cur();
  if (st.ev_pending) {
    st.ev_pending = false;
    return;
  }
  st.ev_waiting = true;
  block();
  st.ev_waiting = false;
  st.ev_pending = false;
}

void Engine::notify(Rank r, TimeNs deliver_at) {
  RankState& st = ranks_[static_cast<std::size_t>(r)];
  if (st.finished) {
    return;
  }
  st.ev_pending = true;
  if (st.ev_waiting) {
    // Clear the flag here, not on resume: a second notify arriving before
    // the woken fiber runs again must not wake it twice.
    st.ev_waiting = false;
    wake(r, deliver_at);
  }
}

TimeNs Engine::rma_occupy(Rank target, TimeNs arrival_offset, TimeNs service) {
  TimeNs arrival = cur().clock + arrival_offset;
  TimeNs& busy = rma_busy_until_[static_cast<std::size_t>(target)];
  TimeNs start = std::max(arrival, busy);
  busy = start + service;
  return busy;
}

void Engine::barrier(TimeNs total_cost) {
  sync();
  BarrierState& b = barrier_;
  b.max_arrival = std::max(b.max_arrival, cur().clock);
  b.max_cost = std::max(b.max_cost, total_cost);
  ++b.arrived;
  if (b.arrived < unfinished_) {
    b.waiting.push_back(current_);
    block();
    return;
  }
  // Last arriver releases everyone at max(arrival) + cost.
  TimeNs release = release_barrier();
  advance_to(release);
}

TimeNs Engine::release_barrier() {
  BarrierState& b = barrier_;
  TimeNs release = b.max_arrival + b.max_cost;
  for (Rank r : b.waiting) {
    wake(r, release);
  }
  b.waiting.clear();
  b.arrived = 0;
  b.max_arrival = 0;
  b.max_cost = 0;
  return release;
}

void Engine::maybe_release_barrier() {
  if (barrier_.arrived > 0 && barrier_.arrived >= unfinished_) {
    release_barrier();
  }
}

}  // namespace scioto::sim
