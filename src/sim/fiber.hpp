// Stackful cooperative fibers built on POSIX ucontext.
//
// The virtual-time engine runs every simulated process ("rank") as a fiber
// inside a single OS thread: execution is therefore deterministic, and up
// to ~1024 ranks cost only their stacks. ucontext is obsolescent in POSIX
// but fully supported by glibc; we isolate its use to this one translation
// unit.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace scioto::sim {

/// A single fiber: a function plus a private stack, cooperatively switched
/// against a host (scheduler) context.
class Fiber {
 public:
  /// `fn` runs when the fiber is first resumed. `stack_bytes` is the fiber
  /// stack size; UTS and the apps use explicit work stacks, so 256 KiB is
  /// ample by default.
  Fiber(std::function<void()> fn, std::size_t stack_bytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the host context into this fiber. Returns when the fiber
  /// yields or finishes.
  void resume();

  /// Called from inside the fiber: switch back to the host context.
  void yield();

  /// True once fn has returned.
  bool finished() const { return finished_; }

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void run();

  std::function<void()> fn_;
  std::vector<char> stack_;
  ucontext_t ctx_{};
  ucontext_t host_{};
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace scioto::sim
