#include "sim/machine.hpp"

#include "base/error.hpp"

namespace scioto::sim {

MachineModel cluster2008() {
  MachineModel m = cluster2008_uniform();
  m.name = "cluster2008";
  // Half Opteron 254 (nominal), half Xeon: the Xeons take 1.505x longer per
  // UTS node (0.4753 us vs 0.3158 us, §6.3).
  m.cpu_scale = [](Rank rank, int nranks) {
    // First half Opteron, second half Xeon; odd counts (and the 1-proc
    // baseline) round toward Opteron.
    return rank < (nranks + 1) / 2 ? 1.0 : 1.505;
  };
  return m;
}

MachineModel cluster2008_uniform() {
  MachineModel m;
  m.name = "cluster2008-uniform";
  // Calibrated against Table 1 (see bench_table1_ops): remote insert =
  // 5 one-way latencies + 3 service slots + 1 kB wire time = 18.08 us,
  // steal = the same control path + a 10-task chunk = 29.0 us.
  m.rma_latency = ns(3129);
  m.rma_service = ns(400);
  m.rmw_service = ns(2000);  // host-assisted ARMCI atomics
  m.bytes_per_ns = 0.85;  // effective ARMCI bandwidth on 10 Gb/s IB
  m.local_insert = ns(495);
  m.local_get = ns(361);
  m.msg_latency = us(4.0);
  m.msg_overhead = us(0.8);
  m.poll = ns(250);
  m.barrier_stage_mpi = us(3.2);
  m.barrier_stage_armci = us(3.6);
  return m;
}

MachineModel cray_xt4() {
  MachineModel m;
  m.name = "cray-xt4";
  // SeaStar: higher short-message latency than IB verbs, higher bandwidth.
  // Calibrated against Table 1's XT4 column (27.0 us insert / 32.4 steal).
  m.rma_latency = ns(4980);
  m.rma_service = ns(500);
  m.rmw_service = ns(2200);
  m.bytes_per_ns = 1.756;
  // 2.6 GHz Opteron 285 with slower memory ops: Table 1 shows local queue
  // ops roughly 2x the cluster's.
  m.local_insert = ns(933);
  m.local_get = ns(691);
  m.msg_latency = us(5.4);
  m.msg_overhead = us(1.0);
  m.poll = ns(350);
  m.barrier_stage_mpi = us(3.0);
  m.barrier_stage_armci = us(3.3);
  return m;
}

MachineModel multicore_cluster(int cores_per_node) {
  MachineModel m = cluster2008_uniform();
  m.name = "multicore-cluster-x" + std::to_string(cores_per_node);
  m.cores_per_node = cores_per_node;
  return m;
}

MachineModel test_machine() {
  MachineModel m;
  m.name = "test";
  m.rma_latency = ns(300);
  m.rma_service = ns(50);
  m.rmw_service = ns(200);
  m.bytes_per_ns = 8.0;
  m.local_insert = ns(40);
  m.local_get = ns(30);
  m.msg_latency = ns(400);
  m.msg_overhead = ns(100);
  m.poll = ns(30);
  m.barrier_stage_mpi = ns(400);
  m.barrier_stage_armci = ns(450);
  m.sync_quantum = us(2.0);
  return m;
}

MachineModel machine_by_name(const std::string& name) {
  if (name == "cluster") return cluster2008();
  if (name == "cluster-uniform") return cluster2008_uniform();
  if (name == "xt4") return cray_xt4();
  if (name == "test") return test_machine();
  throw Error("unknown machine model '" + name +
              "' (expected cluster, cluster-uniform, xt4, or test)");
}

}  // namespace scioto::sim
