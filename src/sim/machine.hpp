// Machine models for the virtual-time cluster simulator.
//
// A MachineModel holds the per-operation latency/occupancy/bandwidth
// constants the simulator charges against each rank's virtual clock. Two
// presets reproduce the platforms in the paper's evaluation (§6):
//
//   * cluster2008(): the 64-node heterogeneous InfiniBand cluster
//     (32x 2.8 GHz Opteron 254 + 32x 3.6 GHz Xeon, 10 Gb/s IB). The paper
//     reports 0.4952 us local insert, 18.08 us remote insert, 0.3613 us
//     local get, 29.01 us steal (Table 1), and UTS per-node costs of
//     0.3158 us (Opteron) vs 0.4753 us (Xeon) -- a 50% spread (§6.3).
//
//   * cray_xt4(): the 3,744-socket Cray XT4 (2.6 GHz dual-core Opteron
//     285, SeaStar interconnect). Table 1: 0.9330 / 27.0 / 0.6913 /
//     32.4 us; UTS per node 0.5681 us.
//
// The constants below are calibrated so that the queue implementation,
// when charged through this model, reproduces Table 1 within a few
// percent; the figure benches then inherit the same constants.
#pragma once

#include <functional>
#include <string>

#include "base/types.hpp"

namespace scioto::sim {

struct MachineModel {
  std::string name = "uniform";

  /// Per-rank compute-cost multiplier (1.0 = nominal). Models processor
  /// heterogeneity: a rank with scale 1.5 takes 1.5x the virtual time for
  /// the same charged work.
  std::function<double(Rank rank, int nranks)> cpu_scale =
      [](Rank, int) { return 1.0; };

  // -- One-sided (RMA) communication --
  /// Initiator-side one-way latency of an RMA operation.
  TimeNs rma_latency = us(3.0);
  /// Target-side occupancy per RMA op; ops aimed at the same target rank
  /// serialize through this (models NIC/handler contention).
  TimeNs rma_service = ns(400);
  /// Target-side occupancy of a remote atomic (fetch-add/swap). 2008-era
  /// ARMCI implemented atomics through a host-side data server rather
  /// than NIC offload, so they occupy the target for microseconds -- this
  /// is what makes one hot NXTVAL counter a scaling ceiling (Figures
  /// 5/6's "Original" TCE).
  TimeNs rmw_service = ns(2000);
  /// Network bandwidth in bytes per nanosecond (1.25 = 10 Gb/s).
  double bytes_per_ns = 1.25;

  // -- Local task-queue operation costs (charged by the Scioto layer) --
  TimeNs local_insert = ns(470);
  TimeNs local_get = ns(340);

  // -- Two-sided messaging (MPI-like, used by the UTS-MPI baseline) --
  /// Half round-trip latency of a short message.
  TimeNs msg_latency = us(4.0);
  /// Sender/receiver CPU overhead per message.
  TimeNs msg_overhead = us(0.8);
  /// Cost of one iprobe / mailbox poll.
  TimeNs poll = ns(250);

  // -- Collectives --
  /// Per-tree-stage cost of an MPI barrier (total = stages * this).
  TimeNs barrier_stage_mpi = us(3.2);
  /// ARMCI barrier per-stage cost (slightly higher in the paper's Fig. 4).
  TimeNs barrier_stage_armci = us(3.6);

  // -- Multicore topology --
  /// Ranks are grouped into nodes of this many cores; ranks on the same
  /// node communicate through shared memory at the intra-node costs below
  /// (1 = every rank its own node, the paper's per-process view).
  int cores_per_node = 1;
  /// Intra-node one-sided access: a cache-coherent load/store plus
  /// synchronization, not a NIC traversal.
  TimeNs intra_rma_latency = ns(120);
  TimeNs intra_rma_service = ns(40);
  TimeNs intra_rmw_service = ns(60);
  double intra_bytes_per_ns = 6.0;

  /// True if ranks a and b share a node.
  bool same_node(Rank a, Rank b) const {
    return a / cores_per_node == b / cores_per_node;
  }

  // -- Simulator fidelity --
  /// Maximum virtual run-ahead a rank accumulates between scheduler
  /// synchronizations; smaller = finer interleaving fidelity, larger =
  /// faster simulation.
  TimeNs sync_quantum = us(20.0);

  /// Bulk-transfer time for `bytes` payload bytes.
  TimeNs transfer_time(std::size_t bytes) const {
    return static_cast<TimeNs>(static_cast<double>(bytes) / bytes_per_ns);
  }
};

/// The paper's 64-node heterogeneous InfiniBand cluster. The first half of
/// the ranks are "Opteron" (scale 1.0), the second half "Xeon"
/// (scale 0.4753/0.3158 ~= 1.505) matching §6.3's experimental setup of
/// half-and-half node allocation.
MachineModel cluster2008();

/// Same cluster but with homogeneous CPU speeds; used by tests that need a
/// flat compute model.
MachineModel cluster2008_uniform();

/// The Cray XT4 partition used for Figure 8.
MachineModel cray_xt4();

/// The 2008 cluster reimagined as a multicore machine: the same network
/// between nodes, shared memory within a node of `cores_per_node` ranks.
/// Used by the §8 "multicore scheduling enhancements" ablation.
MachineModel multicore_cluster(int cores_per_node);

/// A fast, low-latency model for unit tests (microsecond-scale ops would
/// just slow the virtual clock down without adding coverage).
MachineModel test_machine();

/// Look up a preset by name ("cluster", "cluster-uniform", "xt4", "test");
/// throws scioto::Error for unknown names.
MachineModel machine_by_name(const std::string& name);

}  // namespace scioto::sim
