// Conservative virtual-time execution engine.
//
// Every simulated process (rank) runs as a fiber with its own virtual
// clock. A single scheduler always resumes the runnable fiber with the
// smallest clock (ties broken by rank), so the execution is sequentially
// consistent in virtual time and bit-deterministic. Fibers advance their
// clocks by charging compute/communication costs and yield back to the
// scheduler at synchronization points:
//
//   * sync()        -- re-enter the scheduler; resumed once minimal again.
//   * charge()      -- add scaled compute cost; auto-syncs every
//                      MachineModel::sync_quantum of accumulated run-ahead,
//                      bounding how far a rank races ahead of its peers.
//   * lock_*()      -- FIFO virtual-time mutexes with direct handoff; the
//                      waiter inherits the releaser's clock, which is what
//                      models contention on a victim's shared queue.
//   * idle_wait()/notify() -- an eventcount per rank for blocking message
//                      receive.
//   * barrier()     -- all ranks meet; released at max(arrival) + cost.
//   * rma_occupy()  -- serializes RMA operations through a per-target
//                      service queue (NIC occupancy), which is what makes
//                      a hot shared counter a bottleneck.
//
// The engine is strictly single-threaded; "shared memory" between ranks is
// ordinary process memory touched only by the currently running fiber.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "base/types.hpp"
#include "sim/fiber.hpp"
#include "sim/machine.hpp"

namespace scioto::sim {

class Engine {
 public:
  struct Config {
    int nranks = 1;
    MachineModel machine;
    std::size_t stack_bytes = 256 * 1024;
  };

  /// `rank_main(r)` is the SPMD body executed by each rank's fiber.
  Engine(Config cfg, std::function<void(Rank)> rank_main);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs all fibers to completion. Aborts with a state dump if the
  /// simulation deadlocks (no runnable fiber but unfinished ranks remain).
  void run();

  // ---- Introspection ----
  int nranks() const { return cfg_.nranks; }
  const MachineModel& machine() const { return cfg_.machine; }
  /// Rank of the currently executing fiber; kNoRank from outside run().
  Rank current_rank() const { return current_; }
  /// Virtual clock of the current rank.
  TimeNs now() const;
  TimeNs now(Rank r) const;
  /// Compute-cost multiplier of rank r under the machine model.
  double cpu_scale(Rank r) const { return cpu_scale_[static_cast<size_t>(r)]; }
  /// Largest clock reached by any rank (the "makespan" after run()).
  TimeNs max_clock() const;

  // ---- Clock manipulation (current rank only) ----
  /// Adds raw (unscaled) time without yielding; used for latency terms.
  void advance_unsynced(TimeNs dt);
  /// Adds compute time scaled by the rank's cpu_scale; yields to the
  /// scheduler whenever accumulated run-ahead exceeds the sync quantum.
  void charge(TimeNs dt);
  /// Sets the clock forward to `t` (no-op if already past); does not yield.
  void advance_to(TimeNs t);
  /// Yields; resumed when this rank is again the minimum runnable clock.
  void sync();

  // ---- Virtual-time mutexes ----
  int lock_create();
  void lock_acquire(int id);
  bool lock_try(int id);
  void lock_release(int id);
  /// True if the lock is currently held (by anyone).
  bool lock_held(int id) const;

  // ---- Eventcount (blocking notification) ----
  /// Blocks the current rank until a notify() is pending, consuming it.
  void idle_wait();
  /// Makes rank r's next (or current) idle_wait return, no earlier than
  /// virtual time `deliver_at`.
  void notify(Rank r, TimeNs deliver_at);

  // ---- RMA target occupancy ----
  /// Reserves `service` time on target's RMA service queue starting no
  /// earlier than the current rank's clock + `arrival_offset`; returns the
  /// completion time. Does not modify the caller's clock.
  TimeNs rma_occupy(Rank target, TimeNs arrival_offset, TimeNs service);

  // ---- Collectives ----
  /// Rendezvous of all unfinished ranks; everyone leaves with clock
  /// max(arrival clocks) + total_cost.
  void barrier(TimeNs total_cost);

 private:
  struct RankState {
    std::unique_ptr<Fiber> fiber;
    TimeNs clock = 0;
    TimeNs last_sync_clock = 0;
    bool blocked = false;
    bool finished = false;
    // Eventcount state.
    bool ev_pending = false;
    bool ev_waiting = false;
  };

  struct LockState {
    bool held = false;
    Rank holder = kNoRank;
    std::deque<Rank> waiters;
  };

  struct BarrierState {
    int arrived = 0;
    TimeNs max_arrival = 0;
    TimeNs max_cost = 0;
    std::vector<Rank> waiting;
  };

  RankState& cur();
  const RankState& cur() const;
  /// Marks the current fiber blocked and yields; returns after wake().
  void block();
  /// Reschedules rank r at virtual time >= at.
  void wake(Rank r, TimeNs at);
  /// Wakes everyone parked in the barrier; returns the release time.
  TimeNs release_barrier();
  /// Releases the pending barrier if every still-unfinished rank has
  /// arrived (called when a rank finishes early, e.g. fault-injected).
  void maybe_release_barrier();
  [[noreturn]] void report_deadlock();

  Config cfg_;
  std::function<void(Rank)> rank_main_;
  std::vector<RankState> ranks_;
  std::vector<double> cpu_scale_;
  std::vector<LockState> locks_;
  std::vector<TimeNs> rma_busy_until_;
  BarrierState barrier_;
  int unfinished_ = 0;

  // Min-heap of (clock, rank) for runnable fibers.
  using QEntry = std::pair<TimeNs, Rank>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> runq_;
  Rank current_ = kNoRank;
  bool running_ = false;
};

/// Ambient access to the engine from inside rank code (set during run()).
/// Null when no simulation is active on this thread.
Engine* current_engine();

/// Virtual clock of the currently executing fiber, or -1 when the calling
/// thread is not inside a simulation (used by the trace clock and the log
/// context without requiring a Runtime reference).
TimeNs current_virtual_time();

}  // namespace scioto::sim
