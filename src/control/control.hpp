// Adaptive control plane: closes the metrics -> knobs loop online.
//
// PR 5 built the global-view telemetry (per-rank counters, fleet CoV/Gini
// imbalance, steal-success rate) and PR 3 built the knobs (chunk size,
// steal-half, aborting steals, release threshold) -- this subsystem
// connects them. A feedback controller periodically reads tear-free
// metric snapshots and retunes each rank's live KnobSet (knobs.hpp)
// through a shared hysteresis/epoch rule engine.
//
// Two placements share the same engine:
//
//  * local  -- every rank runs its own controller inside the scheduling
//    loop. At each virtual-time epoch it reads its own counters through
//    the metrics fast path (own-patch relaxed loads, no seqlock scrape),
//    folds in a cheap fleet digest the monitor publishes (CoV of queue
//    depths), and retunes its own knobs.
//  * global -- the fleet monitor is the controller. After each sample it
//    runs the rule engine per alive rank over the scraped snapshots and
//    publishes per-rank *targets* into a knob segment; ranks poll the
//    segment one-sidedly (one relaxed version check per loop) and apply
//    changed targets to their own KnobSet.
//
// Either way the knobs themselves are only ever written from the owning
// rank's context, so the queue/steal hot paths read plain (non-atomic)
// values; all cross-rank traffic goes through this session's atomic rows
// (published knobs, targets, fleet digest) -- the single-address-space
// analog of a one-sided knob segment.
//
// Rule engine: additive-increase of the steal chunk on sustained steal
// failure; on sustained fleet imbalance, steal-half plus an opened chunk
// cap (with steal-half the chunk only caps min(ceil(depth/2), cap), so a
// wide cap moves the burst without overshooting shallow victims), an
// earlier release on the deep rank only, and a restricted victim set
// that steers thieves at the deepest ranks in the monitor digest --
// random victim choice finds a single deep rank with probability 1/n,
// and every miss inflates the thief's steal backoff; decay back toward
// the configured baseline when the fleet is calm; and per-knob dwell
// epochs so one decision suppresses further changes to the same knob --
// hysteresis against oscillation.
//
// Determinism: under the sim backend, local epochs fire at virtual-time
// deadlines inside the scheduling loop, the digest/targets are produced
// by the monitor's deterministic virtual-time sampler, and the engine is
// a pure integer/double state machine -- so the full decision sequence is
// bit-deterministic across reruns. Under the threads backend every
// cross-thread word is an atomic and decisions are wall-clock-paced
// (TSan-clean, not deterministic).
//
// Composition with faults: a controller never retunes a fenced or dead
// rank (the global planner skips non-alive ranks; a local controller
// checks its own liveness before deciding), and a ward that adopts a
// dead rank's queue inherits the victim's last *published* knobs --
// published rows outlive the owner precisely so adoption can read them.
//
// Gating (same discipline as trace/ and metrics/): the SCIOTO_CONTROL
// CMake option (default ON) defines SCIOTO_CONTROL_ENABLED; OFF compiles
// the scheduler hooks and run_spmd arming to nothing. At runtime nothing
// happens until start(); armed by SCIOTO_CONTROLLER=off|local|global (+
// SCIOTO_CTL_PERIOD, SCIOTO_CTL_RULES) or the scioto_ctl_* C API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hpp"
#include "control/knobs.hpp"

#ifndef SCIOTO_CONTROL_ENABLED
#define SCIOTO_CONTROL_ENABLED 0
#endif

namespace scioto::control {

enum class Mode : int { Off, Local, Global };

const char* mode_name(Mode m);
bool mode_from_name(const std::string& s, Mode* out);

// ---- Rule engine parameters (SCIOTO_CTL_RULES / scioto_ctl_rules_set) ----

struct Rules {
  double succ_lo = 0.50;   // steal success below this = failing
  double succ_hi = 0.90;   // steal success above this = succeeding
  double cov_hi = 1.00;    // fleet CoV above this = imbalanced
  double cov_lo = 0.30;    // fleet CoV below this = calm
  int dwell = 3;           // epochs a condition must hold, and epochs a
                           // changed knob stays frozen afterwards
  int chunk_step = 2;      // additive chunk increase per decision
  std::uint64_t min_attempts = 4;  // ignore success rate on fewer samples
  std::int64_t release_min = 8;    // floor for the release threshold
                                   // (lower makes shallow queues churn
                                   // publish/reacquire)
  std::int64_t chunk_burst = 64;   // cap opened on sustained imbalance
                                   // (owner's KnobSet clamps at chunk_max)
  int hot_set = 1;         // imbalanced fleet: steer thieves at the
                           // hot_set deepest ranks (digest); 0 disables

  /// Parses "key=value;key=value" (keys are the field names above).
  /// On failure returns false and explains in *err.
  static bool parse(const std::string& spec, Rules* out, std::string* err);
  std::string to_string() const;
};

struct Config {
  Mode mode = Mode::Off;
  TimeNs period = 100'000;  // controller epoch length (ns)
  Rules rules;
};

/// Staged configuration consumed by pgas::run_spmd (C API knob; env vars
/// override) -- same discipline as metrics::config().
Config config();
void set_config(const Config& cfg);

// ---- Rule engine (pure, deterministic, unit-testable) ----

struct Signals {
  std::uint64_t attempts = 0;      // steal attempts this epoch (delta)
  std::uint64_t steals = 0;        // successful steals this epoch (delta)
  std::uint64_t busy = 0;          // lock-busy bounces this epoch (delta)
  std::uint64_t shared_depth = 0;  // rank's stealable depth right now
  double cov = 0.0;                // fleet queue-depth CoV
  bool have_cov = false;           // digest available yet?
};

enum Reason : int {
  kReasonStealFail = 0,  // sustained steal failure
  kReasonHighCov = 1,    // sustained fleet imbalance
  kReasonCalm = 2,       // sustained balance + steal success
  kReasonBusy = 3,       // sustained lock-busy bounces
  kReasonTarget = 4,     // applied a global-controller target
  kReasonInherit = 5,    // adopted a dead rank's published knobs
};
const char* reason_name(int r);

struct Decision {
  Knob knob;
  std::int64_t value;  // desired value (owner clamps through its KnobSet)
  int reason;
};

class RuleEngine {
 public:
  /// `baseline` holds the knob values the config started from (decrease
  /// rules decay toward them); `nprocs` sizes the restricted victim set.
  RuleEngine(const Rules& rules, const std::int64_t baseline[kNumKnobs],
             int nprocs);
  RuleEngine() = default;

  /// One controller epoch: folds the signals into the streak/dwell state
  /// and appends the decisions (if any) to *out. `cur` holds the knob
  /// values the decisions are relative to.
  void step(const Signals& s, const std::int64_t cur[kNumKnobs],
            std::vector<Decision>* out);

 private:
  void propose(Knob k, std::int64_t v, int reason,
               const std::int64_t cur[kNumKnobs],
               std::vector<Decision>* out);

  Rules rules_;
  std::int64_t base_[kNumKnobs] = {};
  int nprocs_ = 0;
  int dwell_left_[kNumKnobs] = {};
  int lo_succ_streak_ = 0;
  int hi_cov_streak_ = 0;
  int calm_streak_ = 0;
  int busy_streak_ = 0;
};

// ---- Session ----

/// True between start() and stop(); one relaxed atomic load.
bool active();
Mode mode();
TimeNs period();

/// Allocates the per-rank rows (published knobs, targets, engine state)
/// and begins controlling. With Mode::Global also installs the planner
/// hook into the fleet monitor (metrics/monitor.hpp).
void start(int nranks, const Config& cfg);
void stop();

// ---- Owner-side hooks (called from TaskCollection on the owning rank) ----

/// Registers rank r's KnobSet and publishes its initial values.
void attach(Rank r, KnobSet* knobs);
void detach(Rank r);

/// Cheap per-iteration check: is a controller epoch (local) or an
/// unapplied target version (global) pending for rank r?
bool poll_due(Rank r, TimeNs now);

/// Runs the due work found by poll_due: local = evaluate the rule engine
/// over this epoch's signals and apply; global = apply the published
/// targets. Never retunes a rank the detector considers fenced/dead.
void poll_epoch(Rank r, TimeNs now, std::uint64_t shared_depth);

/// Ward-side adoption: rank `me` inherits dead rank `dead`'s last
/// published knobs into its own KnobSet.
void inherit(Rank me, Rank dead);

/// Re-copies rank r's attached KnobSet into its published row. Called by
/// TaskCollection::set_knob after a direct (C API) knob write so the
/// dashboard, the planner, and future wards see the new values.
void republish(Rank r);

// ---- Cross-rank reads ----

/// Copies rank r's published knob row; false if r never published.
bool published(Rank r, std::int64_t out[kNumKnobs]);

/// The monitor digest's deepest alive ranks (descending depth), at most
/// kMaxHotVictims of them; returns the count (0 before the first sample
/// or when every queue is empty). One relaxed atomic load -- cheap
/// enough for the steal path's victim selection.
inline constexpr int kMaxHotVictims = 4;
int hot_victims(Rank out[kMaxHotVictims]);

/// One-line "c=10 h=1 r=20 t=4 v=0" rendering for the live dashboard;
/// empty when r never published or no session is active.
std::string knobs_text(Rank r);

// ---- Decision log (tests / JSONL export) ----

struct DecisionRecord {
  TimeNs t = 0;
  Rank rank = 0;        // rank whose knob changed
  Knob knob = Knob::StealChunk;
  std::int64_t value = 0;
  int reason = 0;
  bool planner = false;  // true: global planner target; false: owner apply
};

std::vector<DecisionRecord> decisions();
std::string decisions_jsonl();

struct Stats {
  std::uint64_t epochs = 0;             // local epochs evaluated
  std::uint64_t decisions = 0;          // knob changes applied by owners
  std::uint64_t targets_published = 0;  // target rows written by the planner
  std::uint64_t inherits = 0;           // adoption-time knob inheritances
};
Stats stats();

}  // namespace scioto::control
