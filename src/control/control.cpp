#include "control/control.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>

#include "base/error.hpp"
#include "detect/membership.hpp"
#include "metrics/metrics.hpp"
#include "metrics/monitor.hpp"
#include "trace/trace.hpp"

namespace scioto::control {

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::Off: return "off";
    case Mode::Local: return "local";
    case Mode::Global: return "global";
  }
  return "?";
}

bool mode_from_name(const std::string& s, Mode* out) {
  if (s == "off" || s.empty()) { *out = Mode::Off; return true; }
  if (s == "local") { *out = Mode::Local; return true; }
  if (s == "global") { *out = Mode::Global; return true; }
  return false;
}

const char* reason_name(int r) {
  switch (r) {
    case kReasonStealFail: return "steal_fail";
    case kReasonHighCov: return "high_cov";
    case kReasonCalm: return "calm";
    case kReasonBusy: return "busy";
    case kReasonTarget: return "target";
    case kReasonInherit: return "inherit";
  }
  return "?";
}

// ---- Rules ----

bool Rules::parse(const std::string& spec, Rules* out, std::string* err) {
  Rules r = *out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    std::string kv = spec.substr(pos, end - pos);
    pos = end + 1;
    if (kv.empty()) continue;
    std::size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      if (err) *err = "expected key=value, got '" + kv + "'";
      return false;
    }
    std::string key = kv.substr(0, eq);
    std::string val = kv.substr(eq + 1);
    char* rest = nullptr;
    double d = std::strtod(val.c_str(), &rest);
    if (rest == val.c_str() || *rest != '\0') {
      if (err) *err = "bad numeric value '" + val + "' for key '" + key + "'";
      return false;
    }
    if (key == "succ_lo") r.succ_lo = d;
    else if (key == "succ_hi") r.succ_hi = d;
    else if (key == "cov_hi") r.cov_hi = d;
    else if (key == "cov_lo") r.cov_lo = d;
    else if (key == "dwell") r.dwell = static_cast<int>(d);
    else if (key == "chunk_step") r.chunk_step = static_cast<int>(d);
    else if (key == "min_attempts")
      r.min_attempts = static_cast<std::uint64_t>(d);
    else if (key == "chunk_burst")
      r.chunk_burst = static_cast<std::int64_t>(d);
    else if (key == "release_min")
      r.release_min = static_cast<std::int64_t>(d);
    else if (key == "hot_set") r.hot_set = static_cast<int>(d);
    else {
      if (err) *err = "unknown rule key '" + key + "'";
      return false;
    }
  }
  if (r.dwell < 1) {
    if (err) *err = "dwell must be >= 1";
    return false;
  }
  if (r.chunk_step < 1) {
    if (err) *err = "chunk_step must be >= 1";
    return false;
  }
  *out = r;
  return true;
}

std::string Rules::to_string() const {
  std::ostringstream os;
  os << "succ_lo=" << succ_lo << ";succ_hi=" << succ_hi
     << ";cov_hi=" << cov_hi << ";cov_lo=" << cov_lo << ";dwell=" << dwell
     << ";chunk_step=" << chunk_step << ";min_attempts=" << min_attempts
     << ";release_min=" << release_min << ";chunk_burst=" << chunk_burst
     << ";hot_set=" << hot_set;
  return os.str();
}

// ---- Rule engine ----

RuleEngine::RuleEngine(const Rules& rules,
                       const std::int64_t baseline[kNumKnobs], int nprocs)
    : rules_(rules), nprocs_(nprocs) {
  std::memcpy(base_, baseline, sizeof(base_));
}

void RuleEngine::propose(Knob k, std::int64_t v, int reason,
                         const std::int64_t cur[kNumKnobs],
                         std::vector<Decision>* out) {
  int i = static_cast<int>(k);
  if (dwell_left_[i] > 0) return;  // frozen by a recent change
  if (cur[i] == v) return;         // already there
  out->push_back(Decision{k, v, reason});
  dwell_left_[i] = rules_.dwell;
}

void RuleEngine::step(const Signals& s, const std::int64_t cur[kNumKnobs],
                      std::vector<Decision>* out) {
  for (int k = 0; k < kNumKnobs; ++k) {
    if (dwell_left_[k] > 0) --dwell_left_[k];
  }
  bool sig_ok = s.attempts >= rules_.min_attempts;
  double succ = sig_ok ? double(s.steals) / double(s.attempts) : 0.0;
  lo_succ_streak_ =
      (sig_ok && succ < rules_.succ_lo) ? lo_succ_streak_ + 1 : 0;
  hi_cov_streak_ =
      (s.have_cov && s.cov >= rules_.cov_hi) ? hi_cov_streak_ + 1 : 0;
  bool calm = s.have_cov && s.cov <= rules_.cov_lo &&
              (!sig_ok || succ >= rules_.succ_hi);
  calm_streak_ = calm ? calm_streak_ + 1 : 0;
  busy_streak_ =
      (sig_ok && s.busy * 4 >= s.attempts) ? busy_streak_ + 1 : 0;

  const int d = rules_.dwell;
  const std::int64_t chunk = cur[static_cast<int>(Knob::StealChunk)];
  const std::int64_t rel = cur[static_cast<int>(Knob::ReleaseThreshold)];
  const std::int64_t ret = cur[static_cast<int>(Knob::RetargetBudget)];
  const std::int64_t chunk0 = base_[static_cast<int>(Knob::StealChunk)];
  const std::int64_t rel0 = base_[static_cast<int>(Knob::ReleaseThreshold)];
  const std::int64_t ret0 = base_[static_cast<int>(Knob::RetargetBudget)];

  if (hi_cov_streak_ >= d) {
    // Fleet imbalanced: spill work to thieves as fast as possible.
    // Steal-half drains the hot rank geometrically, and with steal-half
    // governing the width the chunk is only a *cap* on
    // min(ceil(depth/2), cap): opening it wide cannot overshoot a shallow
    // victim, while each steal from the deep one moves as much work as
    // one fixed one-sided latency can amortize. The owner's KnobSet
    // clamps the proposal at chunk_max.
    propose(Knob::StealHalf, 1, kReasonHighCov, cur, out);
    if (rules_.chunk_burst > chunk) {
      propose(Knob::StealChunk, rules_.chunk_burst, kReasonHighCov, cur,
              out);
    }
    if (s.shared_depth >= 8 * static_cast<std::uint64_t>(rel)) {
      // Only the rank that IS the imbalance (its own shared queue dwarfs
      // its release threshold) spills private work sooner; cutting the
      // threshold fleet-wide makes shallow ranks churn publish/reacquire.
      propose(Knob::ReleaseThreshold, std::max(rules_.release_min, rel / 2),
              kReasonHighCov, cur, out);
    }
    if (rules_.hot_set > 0) {
      // Blind victim choice finds one deep rank among n with probability
      // 1/(n-1), and every miss doubles the thief's steal backoff -- so
      // steer everyone at the digest's deepest queues while the imbalance
      // lasts.
      propose(Knob::VictimSetSize, rules_.hot_set, kReasonHighCov, cur,
              out);
    }
  } else if (lo_succ_streak_ >= d) {
    // Probes mostly come back empty-handed: amortize each successful
    // steal harder (additive chunk increase) and take half when a deep
    // victim does turn up.
    propose(Knob::StealChunk, chunk + rules_.chunk_step, kReasonStealFail,
            cur, out);
    propose(Knob::StealHalf, 1, kReasonStealFail, cur, out);
  }
  if (busy_streak_ >= d) {
    // Aborting steals keep bouncing off held locks: spend one more
    // retarget hop before backing off.
    propose(Knob::RetargetBudget, ret + 1, kReasonBusy, cur, out);
  }
  if (calm_streak_ >= 2 * d) {
    // Balanced fleet with healthy steals: unwind the burst response in
    // reverse order -- walk the opened cap back toward baseline first,
    // only then restore the steal-half mode the config started with --
    // relax thief pressure, and let victim choice go back to uniform
    // (a calm fleet has no hot rank worth converging on).
    if (chunk > chunk0) {
      propose(Knob::StealChunk, std::max(chunk0, chunk - rules_.chunk_step),
              kReasonCalm, cur, out);
    } else if (cur[static_cast<int>(Knob::StealHalf)] !=
               base_[static_cast<int>(Knob::StealHalf)]) {
      propose(Knob::StealHalf, base_[static_cast<int>(Knob::StealHalf)],
              kReasonCalm, cur, out);
    }
    if (rel < rel0) {
      propose(Knob::ReleaseThreshold, std::min(rel0, rel * 2), kReasonCalm,
              cur, out);
    }
    if (ret > ret0) {
      propose(Knob::RetargetBudget, ret - 1, kReasonCalm, cur, out);
    }
    propose(Knob::VictimSetSize, 0, kReasonCalm, cur, out);
  }
}

// ---- Session ----

namespace {

struct alignas(64) RankRow {
  // Published knobs: owner writes, anyone reads. A version of 0 means
  // the rank never attached; rows outlive their owner so adoption can
  // still read a dead rank's last published values.
  std::atomic<std::int64_t> pub[kNumKnobs] = {};
  std::atomic<std::uint64_t> pub_version{0};
  // Global-controller targets: the planner writes values then bumps the
  // version (release); the owner polls the version (acquire) one-sidedly
  // and applies the whole row on change.
  std::atomic<std::int64_t> tgt[kNumKnobs] = {};
  std::atomic<std::uint64_t> tgt_version{0};
  // Owner-only local-controller state.
  KnobSet* knobs = nullptr;
  TimeNs next_epoch = 0;
  bool primed = false;
  std::uint64_t prev_attempts = 0, prev_steals = 0, prev_busy = 0;
  std::uint64_t applied_tgt_version = 0;
  RuleEngine engine;
  // Planner-only per-rank state (serialized by the monitor's sample lock).
  bool planner_primed = false;
  std::uint64_t p_attempts = 0, p_steals = 0, p_busy = 0;
  RuleEngine planner_engine;
};

struct CtlSession {
  Config cfg;
  int nranks = 0;
  std::unique_ptr<RankRow[]> rows;
  // Fleet digest the monitor hook publishes for local controllers:
  // the latest CoV (as raw double bits), a sample count, and the deepest
  // alive ranks packed 16 bits each (0xFFFF = empty slot) for the
  // restricted-victim-set steal path.
  std::atomic<std::uint64_t> digest_cov_bits{0};
  std::atomic<std::uint64_t> digest_samples{0};
  std::atomic<std::uint64_t> digest_hot{~std::uint64_t{0}};
  std::mutex log_mu;
  std::vector<DecisionRecord> log;
  std::atomic<std::uint64_t> st_epochs{0};
  std::atomic<std::uint64_t> st_decisions{0};
  std::atomic<std::uint64_t> st_targets{0};
  std::atomic<std::uint64_t> st_inherits{0};
};

std::atomic<bool> g_active{false};
CtlSession g_ctl;

std::mutex g_cfg_mu;
Config g_cfg;

inline bool in_session(Rank r) {
  return g_active.load(std::memory_order_relaxed) && r >= 0 &&
         r < g_ctl.nranks;
}

/// Owner-side: copy the live KnobSet into the published row.
void publish_row(RankRow& row) {
  for (int k = 0; k < kNumKnobs; ++k) {
    row.pub[k].store(row.knobs->get(static_cast<Knob>(k)),
                     std::memory_order_relaxed);
  }
  row.pub_version.store(row.pub_version.load(std::memory_order_relaxed) + 1,
                        std::memory_order_release);
}

void log_decision(TimeNs t, Rank r, Knob k, std::int64_t v, int reason,
                  bool planner) {
  std::lock_guard<std::mutex> lk(g_ctl.log_mu);
  g_ctl.log.push_back(DecisionRecord{t, r, k, v, reason, planner});
}

/// Owner-side: push one decision through the KnobSet; on change, trace
/// it, mirror it into the ctl_* gauges, publish, and log.
bool apply_owner(Rank r, RankRow& row, const Decision& d, TimeNs t) {
  if (!row.knobs->set(d.knob, d.value)) return false;
  std::int64_t applied = row.knobs->get(d.knob);
  publish_row(row);
  SCIOTO_TRACE_EVENT(r, trace::Ev::KnobChange, static_cast<int>(d.knob),
                     applied, d.reason);
  SCIOTO_METRIC_CTR(r, metrics::Ctr::CtlDecisions, 1);
  SCIOTO_METRIC_GAUGE(r, metrics::Gauge::CtlChunk,
                      row.knobs->get(Knob::StealChunk));
  SCIOTO_METRIC_GAUGE(r, metrics::Gauge::CtlStealHalf,
                      row.knobs->get(Knob::StealHalf));
  SCIOTO_METRIC_GAUGE(r, metrics::Gauge::CtlRelease,
                      row.knobs->get(Knob::ReleaseThreshold));
  SCIOTO_METRIC_GAUGE(r, metrics::Gauge::CtlRetarget,
                      row.knobs->get(Knob::RetargetBudget));
  SCIOTO_METRIC_GAUGE(r, metrics::Gauge::CtlVictimSet,
                      row.knobs->get(Knob::VictimSetSize));
  g_ctl.st_decisions.fetch_add(1, std::memory_order_relaxed);
  log_decision(t, r, d.knob, applied, d.reason, /*planner=*/false);
  return true;
}

double digest_cov(bool* have) {
  std::uint64_t n = g_ctl.digest_samples.load(std::memory_order_acquire);
  if (n == 0) {
    *have = false;
    return 0.0;
  }
  *have = true;
  std::uint64_t bits = g_ctl.digest_cov_bits.load(std::memory_order_relaxed);
  double cov;
  std::memcpy(&cov, &bits, sizeof(cov));
  return cov;
}

/// The monitor sample hook: publishes the fleet digest, and in global
/// mode runs the rule engine per alive rank over the scraped snapshots
/// and publishes per-rank targets. Runs in the sampler's context (the
/// designated rank's fiber under sim, the monitor thread under threads),
/// serialized by the monitor's sample lock.
void planner_tick(const metrics::FleetSample& s) {
  if (!g_active.load(std::memory_order_acquire)) return;
  std::uint64_t bits;
  double cov = s.cov;
  std::memcpy(&bits, &cov, sizeof(bits));
  g_ctl.digest_cov_bits.store(bits, std::memory_order_relaxed);
  // Deepest alive ranks, descending, packed 16 bits apiece: what the
  // restricted-victim-set steal path aims thieves at. A stable insertion
  // sort over at most kMaxHotVictims keeps the hook O(nranks).
  Rank hot[kMaxHotVictims];
  std::uint64_t hot_depth[kMaxHotVictims];
  int nhot = 0;
  for (const metrics::RankSample& rs : s.ranks) {
    if (rs.state == metrics::RankState::Dead) continue;
    std::uint64_t d = rs.shared;
    if (d == 0) continue;
    int i = nhot < kMaxHotVictims ? nhot : kMaxHotVictims - 1;
    if (i == kMaxHotVictims - 1 && nhot == kMaxHotVictims &&
        d <= hot_depth[i]) {
      continue;
    }
    while (i > 0 && hot_depth[i - 1] < d) {
      hot[i] = hot[i - 1];
      hot_depth[i] = hot_depth[i - 1];
      --i;
    }
    hot[i] = rs.r;
    hot_depth[i] = d;
    if (nhot < kMaxHotVictims) ++nhot;
  }
  std::uint64_t packed = 0;
  for (int i = 0; i < kMaxHotVictims; ++i) {
    std::uint64_t v =
        i < nhot ? static_cast<std::uint64_t>(hot[i]) & 0xFFFF : 0xFFFF;
    packed |= v << (16 * i);
  }
  g_ctl.digest_hot.store(packed, std::memory_order_relaxed);
  g_ctl.digest_samples.fetch_add(1, std::memory_order_release);
  if (g_ctl.cfg.mode != Mode::Global) return;
  for (const metrics::RankSample& rs : s.ranks) {
    // Never retune a fenced or dead rank: its targets freeze at the
    // last published version and its row stays readable for wards.
    if (rs.state != metrics::RankState::Alive) continue;
    if (rs.r < 0 || rs.r >= g_ctl.nranks) continue;
    RankRow& row = g_ctl.rows[rs.r];
    if (row.pub_version.load(std::memory_order_acquire) == 0) continue;
    metrics::Snapshot snap;
    if (!metrics::scrape(rs.r, &snap)) continue;
    std::uint64_t att = snap.ctr(metrics::Ctr::StealAttempts);
    std::uint64_t st = snap.ctr(metrics::Ctr::Steals);
    std::uint64_t busy = snap.ctr(metrics::Ctr::StealLockBusy);
    std::int64_t cur[kNumKnobs];
    for (int k = 0; k < kNumKnobs; ++k) {
      cur[k] = row.pub[k].load(std::memory_order_relaxed);
    }
    if (!row.planner_primed) {
      row.planner_primed = true;
      row.planner_engine = RuleEngine(g_ctl.cfg.rules, cur, g_ctl.nranks);
      for (int k = 0; k < kNumKnobs; ++k) {
        row.tgt[k].store(cur[k], std::memory_order_relaxed);
      }
      row.p_attempts = att;
      row.p_steals = st;
      row.p_busy = busy;
      continue;
    }
    Signals sig;
    sig.attempts = att - row.p_attempts;
    sig.steals = st - row.p_steals;
    sig.busy = busy - row.p_busy;
    sig.shared_depth = rs.shared;
    sig.cov = s.cov;
    sig.have_cov = s.alive + s.suspects >= 2;
    row.p_attempts = att;
    row.p_steals = st;
    row.p_busy = busy;
    std::vector<Decision> ds;
    row.planner_engine.step(sig, cur, &ds);
    if (ds.empty()) continue;
    for (const Decision& d : ds) {
      row.tgt[static_cast<int>(d.knob)].store(d.value,
                                              std::memory_order_relaxed);
      log_decision(s.t, rs.r, d.knob, d.value, d.reason, /*planner=*/true);
    }
    row.tgt_version.fetch_add(1, std::memory_order_release);
    g_ctl.st_targets.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

bool active() { return g_active.load(std::memory_order_relaxed); }

Mode mode() { return active() ? g_ctl.cfg.mode : Mode::Off; }

TimeNs period() { return active() ? g_ctl.cfg.period : 0; }

void start(int nranks, const Config& cfg) {
  SCIOTO_REQUIRE(!active(), "control session already active");
  SCIOTO_REQUIRE(nranks >= 1, "control session needs >= 1 rank");
  SCIOTO_REQUIRE(cfg.mode != Mode::Off,
                 "control::start needs mode local or global");
  SCIOTO_REQUIRE(metrics::active(),
                 "control needs an active metrics session (the controller "
                 "reads the metric patches)");
  g_ctl.cfg = cfg;
  if (g_ctl.cfg.period <= 0) g_ctl.cfg.period = 100'000;
  g_ctl.nranks = nranks;
  g_ctl.rows = std::make_unique<RankRow[]>(static_cast<std::size_t>(nranks));
  g_ctl.digest_cov_bits.store(0, std::memory_order_relaxed);
  g_ctl.digest_samples.store(0, std::memory_order_relaxed);
  g_ctl.digest_hot.store(~std::uint64_t{0}, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(g_ctl.log_mu);
    g_ctl.log.clear();
  }
  g_ctl.st_epochs.store(0, std::memory_order_relaxed);
  g_ctl.st_decisions.store(0, std::memory_order_relaxed);
  g_ctl.st_targets.store(0, std::memory_order_relaxed);
  g_ctl.st_inherits.store(0, std::memory_order_relaxed);
  g_active.store(true, std::memory_order_release);
  metrics::monitor_set_sample_hook(
      [](const metrics::FleetSample& s) { planner_tick(s); });
  metrics::monitor_set_knobs_text([](Rank r) { return knobs_text(r); });
}

void stop() {
  if (!active()) return;
  metrics::monitor_set_sample_hook(nullptr);
  metrics::monitor_set_knobs_text(nullptr);
  g_active.store(false, std::memory_order_release);
  // Rows and the decision log survive until the next start so post-run
  // inspection (decisions(), stats()) keeps working.
}

void attach(Rank r, KnobSet* knobs) {
  if (!in_session(r) || knobs == nullptr) return;
  RankRow& row = g_ctl.rows[r];
  row.knobs = knobs;
  row.next_epoch = 0;
  row.primed = false;
  row.applied_tgt_version = row.tgt_version.load(std::memory_order_relaxed);
  publish_row(row);
}

void detach(Rank r) {
  if (!in_session(r)) return;
  // Keep the published row: a ward adopting this rank's queue after a
  // kill still inherits the last published knobs.
  g_ctl.rows[r].knobs = nullptr;
}

bool poll_due(Rank r, TimeNs now) {
  if (!in_session(r)) return false;
  RankRow& row = g_ctl.rows[r];
  if (row.knobs == nullptr) return false;
  if (g_ctl.cfg.mode == Mode::Local) return now >= row.next_epoch;
  return row.tgt_version.load(std::memory_order_relaxed) !=
         row.applied_tgt_version;
}

void poll_epoch(Rank r, TimeNs now, std::uint64_t shared_depth) {
  if (!in_session(r)) return;
  RankRow& row = g_ctl.rows[r];
  if (row.knobs == nullptr) return;
  // A fenced/suspected rank never retunes itself; it will either die (its
  // row freezing for the ward) or rejoin and resume at the next epoch.
  if (detect::active() && !detect::alive(r)) return;
  if (g_ctl.cfg.mode == Mode::Global) {
    std::uint64_t v = row.tgt_version.load(std::memory_order_acquire);
    if (v == row.applied_tgt_version) return;
    row.applied_tgt_version = v;
    for (int k = 0; k < kNumKnobs; ++k) {
      Decision d{static_cast<Knob>(k),
                 row.tgt[k].load(std::memory_order_relaxed), kReasonTarget};
      apply_owner(r, row, d, now);
    }
    return;
  }
  if (now < row.next_epoch) return;
  row.next_epoch = now + g_ctl.cfg.period;
  std::uint64_t att = metrics::own_ctr(r, metrics::Ctr::StealAttempts);
  std::uint64_t st = metrics::own_ctr(r, metrics::Ctr::Steals);
  std::uint64_t busy = metrics::own_ctr(r, metrics::Ctr::StealLockBusy);
  std::int64_t cur[kNumKnobs];
  for (int k = 0; k < kNumKnobs; ++k) {
    cur[k] = row.knobs->get(static_cast<Knob>(k));
  }
  if (!row.primed) {
    row.primed = true;
    row.engine = RuleEngine(g_ctl.cfg.rules, cur, g_ctl.nranks);
    row.prev_attempts = att;
    row.prev_steals = st;
    row.prev_busy = busy;
    return;
  }
  Signals sig;
  sig.attempts = att - row.prev_attempts;
  sig.steals = st - row.prev_steals;
  sig.busy = busy - row.prev_busy;
  sig.shared_depth = shared_depth;
  sig.cov = digest_cov(&sig.have_cov);
  row.prev_attempts = att;
  row.prev_steals = st;
  row.prev_busy = busy;
  g_ctl.st_epochs.fetch_add(1, std::memory_order_relaxed);
  SCIOTO_METRIC_CTR(r, metrics::Ctr::CtlEpochs, 1);
  std::vector<Decision> ds;
  row.engine.step(sig, cur, &ds);
  for (const Decision& d : ds) apply_owner(r, row, d, now);
}

void inherit(Rank me, Rank dead) {
  if (!in_session(me) || dead < 0 || dead >= g_ctl.nranks) return;
  RankRow& row = g_ctl.rows[me];
  if (row.knobs == nullptr) return;
  RankRow& drow = g_ctl.rows[dead];
  if (drow.pub_version.load(std::memory_order_acquire) == 0) return;
  TimeNs t = trace::active() ? trace::clock_now() : 0;
  bool any = false;
  for (int k = 0; k < kNumKnobs; ++k) {
    Decision d{static_cast<Knob>(k),
               drow.pub[k].load(std::memory_order_relaxed), kReasonInherit};
    any = apply_owner(me, row, d, t) || any;
  }
  if (any) {
    g_ctl.st_inherits.fetch_add(1, std::memory_order_relaxed);
    SCIOTO_METRIC_CTR(me, metrics::Ctr::CtlInherits, 1);
  }
}

void republish(Rank r) {
  if (!in_session(r)) return;
  RankRow& row = g_ctl.rows[r];
  if (row.knobs == nullptr) return;
  publish_row(row);
}

bool published(Rank r, std::int64_t out[kNumKnobs]) {
  if (!in_session(r)) return false;
  RankRow& row = g_ctl.rows[r];
  if (row.pub_version.load(std::memory_order_acquire) == 0) return false;
  for (int k = 0; k < kNumKnobs; ++k) {
    out[k] = row.pub[k].load(std::memory_order_relaxed);
  }
  return true;
}

int hot_victims(Rank out[kMaxHotVictims]) {
  if (!g_active.load(std::memory_order_relaxed)) return 0;
  std::uint64_t packed = g_ctl.digest_hot.load(std::memory_order_relaxed);
  int n = 0;
  for (int i = 0; i < kMaxHotVictims; ++i) {
    std::uint64_t v = (packed >> (16 * i)) & 0xFFFF;
    if (v == 0xFFFF) break;
    out[n++] = static_cast<Rank>(v);
  }
  return n;
}

std::string knobs_text(Rank r) {
  std::int64_t v[kNumKnobs];
  if (!published(r, v)) return {};
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "ck=%" PRId64 " half=%" PRId64 " rel=%" PRId64 " rt=%" PRId64
                " vs=%" PRId64,
                v[static_cast<int>(Knob::StealChunk)],
                v[static_cast<int>(Knob::StealHalf)],
                v[static_cast<int>(Knob::ReleaseThreshold)],
                v[static_cast<int>(Knob::RetargetBudget)],
                v[static_cast<int>(Knob::VictimSetSize)]);
  return buf;
}

std::vector<DecisionRecord> decisions() {
  std::lock_guard<std::mutex> lk(g_ctl.log_mu);
  return g_ctl.log;
}

std::string decisions_jsonl() {
  std::vector<DecisionRecord> ds = decisions();
  std::ostringstream os;
  for (const DecisionRecord& d : ds) {
    os << "{\"t\":" << d.t << ",\"rank\":" << d.rank << ",\"knob\":\""
       << knob_name(d.knob) << "\",\"value\":" << d.value << ",\"reason\":\""
       << reason_name(d.reason) << "\",\"planner\":"
       << (d.planner ? "true" : "false") << "}\n";
  }
  return os.str();
}

Stats stats() {
  Stats s;
  s.epochs = g_ctl.st_epochs.load(std::memory_order_relaxed);
  s.decisions = g_ctl.st_decisions.load(std::memory_order_relaxed);
  s.targets_published = g_ctl.st_targets.load(std::memory_order_relaxed);
  s.inherits = g_ctl.st_inherits.load(std::memory_order_relaxed);
  return s;
}

Config config() {
  std::lock_guard<std::mutex> lk(g_cfg_mu);
  return g_cfg;
}

void set_config(const Config& cfg) {
  std::lock_guard<std::mutex> lk(g_cfg_mu);
  g_cfg = cfg;
}

}  // namespace scioto::control
