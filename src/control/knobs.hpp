// KnobSet: the live, hot-swappable tuning parameters of one rank's task
// collection.
//
// Before the control plane existed, every tuning value (steal chunk,
// steal-half, release threshold, retarget budget) was copied out of
// TcConfig into SplitQueue::Config at construction and never looked at
// again -- so post-init changes through the C API silently did nothing.
// KnobSet is the single source of truth the queue and the steal path now
// read through on every decision, which makes the values retunable while
// tasks are in flight.
//
// Ownership discipline: a KnobSet belongs to exactly one rank and is only
// ever read or written from that rank's execution context -- the owner
// pops/releases from its own queue, and a *thief* consults its own
// KnobSet (steal width is a thief-side policy). Cross-rank visibility
// (the global controller's targets, ward inheritance after a kill, the
// dashboard) goes through the control session's published rows
// (control.hpp), never through another rank's KnobSet. That keeps the
// hot-path reads plain loads: no atomics, no fences, trivially TSan-clean.
//
// Every set() clamps to per-knob bounds fixed at init. The steal-chunk
// bound matters most: steal/reacquire buffers are sized for `chunk_max`
// at queue construction, so the live chunk may never exceed it.
#pragma once

#include <cstdint>

#include "base/error.hpp"

namespace scioto::control {

enum class Knob : int {
  StealChunk,        // max tasks moved per steal / release / reacquire
  StealHalf,         // 0/1: steal half of the visible shared portion
  RetargetBudget,    // extra victims tried after an aborting-steal bounce
  ReleaseThreshold,  // min private depth before releasing work to thieves
  VictimSetSize,     // 0 = any victim; k>0 = only the next k ranks in
                     // ring order (restricted victim set)
  kCount
};

inline constexpr int kNumKnobs = static_cast<int>(Knob::kCount);

inline const char* knob_name(Knob k) {
  switch (k) {
    case Knob::StealChunk: return "steal_chunk";
    case Knob::StealHalf: return "steal_half";
    case Knob::RetargetBudget: return "retarget_budget";
    case Knob::ReleaseThreshold: return "release_threshold";
    case Knob::VictimSetSize: return "victim_set";
    case Knob::kCount: break;
  }
  return "?";
}

/// Parses a knob name as printed by knob_name(); returns false on unknown.
inline bool knob_from_name(const char* name, Knob* out) {
  for (int i = 0; i < kNumKnobs; ++i) {
    Knob k = static_cast<Knob>(i);
    const char* n = knob_name(k);
    const char* p = name;
    while (*n && *p && *n == *p) { ++n; ++p; }
    if (*n == '\0' && *p == '\0') {
      *out = k;
      return true;
    }
  }
  return false;
}

class KnobSet {
 public:
  KnobSet() = default;

  /// Fixes bounds and initial values. `chunk_max` caps the live steal
  /// chunk (buffers are sized for it); `nprocs` caps the victim set.
  void init(int chunk, int chunk_max, bool steal_half, int retarget_budget,
            std::int64_t release_threshold, int nprocs) {
    SCIOTO_REQUIRE(chunk >= 1 && chunk_max >= chunk,
                   "knob init needs chunk >= 1 and chunk_max >= chunk");
    lo_[idx(Knob::StealChunk)] = 1;
    hi_[idx(Knob::StealChunk)] = chunk_max;
    lo_[idx(Knob::StealHalf)] = 0;
    hi_[idx(Knob::StealHalf)] = 1;
    lo_[idx(Knob::RetargetBudget)] = 0;
    hi_[idx(Knob::RetargetBudget)] = 64;
    lo_[idx(Knob::ReleaseThreshold)] = 1;
    hi_[idx(Knob::ReleaseThreshold)] = std::int64_t{1} << 32;
    lo_[idx(Knob::VictimSetSize)] = 0;
    hi_[idx(Knob::VictimSetSize)] = nprocs > 1 ? nprocs - 1 : 0;
    v_[idx(Knob::StealChunk)] = clamp(Knob::StealChunk, chunk);
    v_[idx(Knob::StealHalf)] = steal_half ? 1 : 0;
    v_[idx(Knob::RetargetBudget)] =
        clamp(Knob::RetargetBudget, retarget_budget);
    v_[idx(Knob::ReleaseThreshold)] =
        clamp(Knob::ReleaseThreshold, release_threshold);
    v_[idx(Knob::VictimSetSize)] = 0;
  }

  std::int64_t get(Knob k) const { return v_[idx(k)]; }

  std::int64_t clamp(Knob k, std::int64_t v) const {
    if (v < lo_[idx(k)]) return lo_[idx(k)];
    if (v > hi_[idx(k)]) return hi_[idx(k)];
    return v;
  }

  std::int64_t lo(Knob k) const { return lo_[idx(k)]; }
  std::int64_t hi(Knob k) const { return hi_[idx(k)]; }

  /// Clamped write; returns true iff the stored value changed.
  bool set(Knob k, std::int64_t v) {
    v = clamp(k, v);
    if (v_[idx(k)] == v) return false;
    v_[idx(k)] = v;
    return true;
  }

 private:
  static int idx(Knob k) { return static_cast<int>(k); }

  std::int64_t v_[kNumKnobs] = {};
  std::int64_t lo_[kNumKnobs] = {};
  std::int64_t hi_[kNumKnobs] = {};
};

}  // namespace scioto::control
