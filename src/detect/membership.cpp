#include "detect/membership.hpp"

#include <memory>
#include <mutex>

#include "base/error.hpp"
#include "fault/fault.hpp"

namespace scioto::detect {

namespace {

// One state word per rank. Suspicion is a per-prober judgement (kept in
// each rank's HeartbeatProbe), but death and rejoin are global facts every
// rank must agree on, so only those live here.
enum class Liveness : std::uint8_t { Alive = 0, Dead = 1, NotJoined = 2 };

struct View {
  int nranks = 0;
  std::vector<std::unique_ptr<std::atomic<std::uint8_t>>> state;
  std::vector<std::unique_ptr<std::atomic<int>>> suspect_count;
  std::atomic<std::uint64_t> epoch{0};
  Stats stats;
  std::mutex mu;  // guards stats and rejoin/confirm transitions
};

View g_view;
std::atomic<bool> g_active{false};

Config g_config;  // staged knob; read/written outside any armed session

}  // namespace

Config config() { return g_config; }

void set_config(const Config& c) {
  SCIOTO_REQUIRE(c.hb_period > 0, "detect: hb_period must be positive");
  SCIOTO_REQUIRE(c.probe_period > 0, "detect: probe_period must be positive");
  SCIOTO_REQUIRE(c.suspect_after > c.hb_period,
                 "detect: suspect_after must exceed hb_period");
  SCIOTO_REQUIRE(c.confirm_after > c.suspect_after,
                 "detect: confirm_after must exceed suspect_after");
  SCIOTO_REQUIRE(c.fanout >= 1, "detect: fanout must be >= 1");
  g_config = c;
}

bool enabled() { return g_config.enabled; }

bool active() { return g_active.load(std::memory_order_relaxed); }

void start(int nranks, int initial_joined) {
  SCIOTO_REQUIRE(!active(), "detect: session already armed");
  SCIOTO_REQUIRE(nranks > 0, "detect: nranks must be positive");
  if (initial_joined < 0) initial_joined = nranks;
  SCIOTO_REQUIRE(initial_joined >= 1 && initial_joined <= nranks,
                 "detect: initial_joined " << initial_joined
                                           << " out of [1, " << nranks << "]");
  g_view.nranks = nranks;
  g_view.state.clear();
  g_view.suspect_count.clear();
  for (int r = 0; r < nranks; ++r) {
    g_view.state.push_back(std::make_unique<std::atomic<std::uint8_t>>(
        static_cast<std::uint8_t>(r < initial_joined ? Liveness::Alive
                                                     : Liveness::NotJoined)));
    g_view.suspect_count.push_back(std::make_unique<std::atomic<int>>(0));
  }
  // Seed from the fault epoch so a mixed run (oracle kills + detector
  // confirms) still presents one monotone counter to resplice logic. An
  // elastic start (parked ranks present) bumps once past the seed so the
  // joined subset resplices away from the full static tree immediately.
  std::uint64_t seed = fault::active() ? fault::epoch() : 0;
  if (initial_joined < nranks) seed += 1;
  g_view.epoch.store(seed, std::memory_order_relaxed);
  g_view.stats = Stats{};
  g_active.store(true, std::memory_order_release);
}

void stop() {
  g_active.store(false, std::memory_order_release);
  g_view.state.clear();
  g_view.suspect_count.clear();
  g_view.nranks = 0;
}

std::uint64_t epoch() {
  if (!active()) return fault::epoch();
  return g_view.epoch.load(std::memory_order_acquire);
}

bool alive(Rank r) {
  if (!active()) return fault::alive(r);
  if (r < 0 || r >= g_view.nranks) return false;
  return g_view.state[static_cast<std::size_t>(r)]->load(
             std::memory_order_acquire) ==
         static_cast<std::uint8_t>(Liveness::Alive);
}

int alive_count() {
  if (!active()) return fault::alive_count();
  int n = 0;
  for (Rank r = 0; r < g_view.nranks; ++r) n += alive(r) ? 1 : 0;
  return n;
}

std::vector<Rank> alive_ranks() {
  if (!active()) return fault::alive_ranks();
  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(g_view.nranks));
  for (Rank r = 0; r < g_view.nranks; ++r) {
    if (alive(r)) out.push_back(r);
  }
  return out;
}

Rank successor(Rank r) {
  if (!active()) return fault::successor(r);
  if (g_view.nranks == 0) return kNoRank;
  for (int i = 1; i <= g_view.nranks; ++i) {
    Rank c = static_cast<Rank>((r + i) % g_view.nranks);
    if (alive(c)) return c;
  }
  return kNoRank;
}

bool confirm_dead(Rank r, Rank by) {
  (void)by;
  if (!active() || r < 0 || r >= g_view.nranks) return false;
  std::uint8_t prev = g_view.state[static_cast<std::size_t>(r)]->exchange(
      static_cast<std::uint8_t>(Liveness::Dead), std::memory_order_acq_rel);
  if (prev != static_cast<std::uint8_t>(Liveness::Alive)) return false;
  std::lock_guard<std::mutex> g(g_view.mu);
  ++g_view.stats.confirms;
  g_view.epoch.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

std::uint64_t rejoin(Rank r) {
  SCIOTO_REQUIRE(active(), "detect: rejoin outside an armed session");
  SCIOTO_REQUIRE(r >= 0 && r < g_view.nranks,
                 "detect: rejoin rank " << r << " out of range");
  g_view.state[static_cast<std::size_t>(r)]->store(
      static_cast<std::uint8_t>(Liveness::Alive), std::memory_order_release);
  std::lock_guard<std::mutex> g(g_view.mu);
  ++g_view.stats.rejoins;
  return g_view.epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
}

bool joined(Rank r) {
  if (!active() || r < 0 || r >= g_view.nranks) return true;
  return g_view.state[static_cast<std::size_t>(r)]->load(
             std::memory_order_acquire) !=
         static_cast<std::uint8_t>(Liveness::NotJoined);
}

std::uint64_t join_ranks(const std::vector<Rank>& rs) {
  SCIOTO_REQUIRE(active(), "detect: join_ranks outside an armed session");
  std::lock_guard<std::mutex> g(g_view.mu);
  std::uint64_t admitted = 0;
  for (Rank r : rs) {
    if (r < 0 || r >= g_view.nranks) continue;
    std::uint8_t expect = static_cast<std::uint8_t>(Liveness::NotJoined);
    if (g_view.state[static_cast<std::size_t>(r)]->compare_exchange_strong(
            expect, static_cast<std::uint8_t>(Liveness::Alive),
            std::memory_order_acq_rel)) {
      ++admitted;
    }
  }
  if (admitted == 0) {
    return g_view.epoch.load(std::memory_order_acquire);
  }
  g_view.stats.joins += admitted;
  g_view.stats.grows += 1;
  // One bump per batch: every rank observes the new epoch and resplices
  // its termination tree / ward table over the grown membership exactly
  // once, however many ranks the batch admitted.
  return g_view.epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
}

void note_detect_latency(TimeNs latency) {
  if (!active() || latency < 0) return;
  std::lock_guard<std::mutex> g(g_view.mu);
  std::uint64_t l = static_cast<std::uint64_t>(latency);
  if (l > g_view.stats.max_detect_latency) g_view.stats.max_detect_latency = l;
}

void note_fence_abort() {
  if (!active()) return;
  std::lock_guard<std::mutex> g(g_view.mu);
  ++g_view.stats.fence_aborts;
}

void note_suspect(Rank r, bool suspected) {
  if (!active() || r < 0 || r >= g_view.nranks) return;
  std::atomic<int>& n = *g_view.suspect_count[static_cast<std::size_t>(r)];
  if (suspected) {
    n.fetch_add(1, std::memory_order_acq_rel);
  } else {
    // A refute can race a concurrent confirm clearing the same suspicion;
    // clamp at zero rather than going negative.
    int cur = n.load(std::memory_order_acquire);
    while (cur > 0 &&
           !n.compare_exchange_weak(cur, cur - 1,
                                    std::memory_order_acq_rel)) {
    }
  }
}

bool suspected(Rank r) {
  if (!active() || r < 0 || r >= g_view.nranks) return false;
  return g_view.suspect_count[static_cast<std::size_t>(r)]->load(
             std::memory_order_acquire) > 0;
}

Stats stats() {
  std::lock_guard<std::mutex> g(g_view.mu);
  return g_view.stats;
}

void add_heartbeats(std::uint64_t n) {
  if (!active()) return;
  std::lock_guard<std::mutex> g(g_view.mu);
  g_view.stats.heartbeats += n;
}

void add_probes(std::uint64_t n) {
  if (!active()) return;
  std::lock_guard<std::mutex> g(g_view.mu);
  g_view.stats.probes += n;
}

void add_suspects(std::uint64_t n) {
  if (!active()) return;
  std::lock_guard<std::mutex> g(g_view.mu);
  g_view.stats.suspects += n;
}

void add_refutes(std::uint64_t n) {
  if (!active()) return;
  std::lock_guard<std::mutex> g(g_view.mu);
  g_view.stats.refutes += n;
}

}  // namespace scioto::detect
