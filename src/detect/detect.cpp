#include "detect/detect.hpp"

#include <algorithm>
#include <atomic>

#include "base/error.hpp"
#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace scioto::detect {

namespace {

// Per-rank heartbeat patch layout: word 0 = heartbeat counter, word 1 =
// last observed membership epoch. Written only by the owner (atomic
// release stores), read by probers through probe_pair_checked.
constexpr std::size_t kHbWord = 0;
constexpr std::size_t kPatchBytes = 2 * sizeof(std::uint64_t);

}  // namespace

HeartbeatProbe::HeartbeatProbe(pgas::Runtime& rt)
    : rt_(rt), cfg_(config()), me_(rt.me()), nranks_(rt.nprocs()) {
  SCIOTO_REQUIRE(active(), "HeartbeatProbe needs an armed detect session");
  seg_ = rt_.seg_alloc(kPatchBytes);
  TimeNs now = rt_.now();
  last_pub_ = now - cfg_.hb_period;  // publish immediately on first poll
  last_probe_ = now;
  last_poll_ = now;
  peers_.assign(static_cast<std::size_t>(nranks_), Peer{});
  for (Peer& p : peers_) p.last_change = now;
  epoch_seen_ = epoch();
  recompute_neighbors();
}

HeartbeatProbe::~HeartbeatProbe() {
  // destroy() is the collective teardown; the destructor only flushes
  // stats if the owner never got there (e.g. its rank was killed).
  if (!destroyed_) {
    add_heartbeats(n_heartbeats_);
    add_probes(n_probes_);
    add_suspects(n_suspects_);
    add_refutes(n_refutes_);
    n_heartbeats_ = n_probes_ = n_suspects_ = n_refutes_ = 0;
  }
}

void HeartbeatProbe::destroy() {
  if (destroyed_) return;
  destroyed_ = true;
  add_heartbeats(n_heartbeats_);
  add_probes(n_probes_);
  add_suspects(n_suspects_);
  add_refutes(n_refutes_);
  n_heartbeats_ = n_probes_ = n_suspects_ = n_refutes_ = 0;
  rt_.seg_free(seg_);
}

void HeartbeatProbe::reset_observations() {
  TimeNs now = rt_.now();
  for (Peer& p : peers_) {
    p.last_change = now;
    p.suspected = false;
  }
  last_poll_ = now;
  last_probe_ = now;
}

void HeartbeatProbe::poll() {
  TimeNs now = rt_.now();
  // A gap in our own polling (whole-rank stall, long task body) means we
  // slept through everyone's heartbeats: restart the peer timers rather
  // than suspecting the world.
  if (now - last_poll_ > cfg_.suspect_after) {
    reset_observations();
  }
  last_poll_ = now;
  if (now - last_pub_ >= cfg_.hb_period) {
    publish(now);
  }
  std::uint64_t e = epoch();
  if (e != epoch_seen_) {
    epoch_seen_ = e;
    recompute_neighbors();
  }
  if (!neighbors_.empty() && now - last_probe_ >= cfg_.probe_period) {
    probe_one(now);
  }
}

void HeartbeatProbe::publish(TimeNs now) {
  last_pub_ = now;
  ++hb_count_;
  ++n_heartbeats_;
  SCIOTO_METRIC_CTR(me_, metrics::Ctr::Heartbeats, 1);
  auto* w = reinterpret_cast<std::uint64_t*>(rt_.seg_ptr(seg_, me_));
  std::atomic_ref<std::uint64_t>(w[kHbWord + 1])
      .store(epoch_seen_, std::memory_order_relaxed);
  std::atomic_ref<std::uint64_t>(w[kHbWord])
      .store(hb_count_, std::memory_order_release);
  rt_.atomic_publish_charge();
}

void HeartbeatProbe::recompute_neighbors() {
  // The next `fanout` alive ranks cyclically after me. Deterministic, so
  // the probe pattern (and with it the sim trace) replays bit-for-bit.
  neighbors_.clear();
  for (int i = 1; i < nranks_ && static_cast<int>(neighbors_.size()) <
                                     cfg_.fanout; ++i) {
    Rank c = static_cast<Rank>((me_ + i) % nranks_);
    if (alive(c)) neighbors_.push_back(c);
  }
  next_neighbor_ = 0;
  publish_view_gauges();  // membership view changed (epoch bump)
}

void HeartbeatProbe::probe_one(TimeNs now) {
  last_probe_ = now;
  Rank peer = neighbors_[next_neighbor_ % neighbors_.size()];
  ++next_neighbor_;
  ++n_probes_;
  SCIOTO_METRIC_CTR(me_, metrics::Ctr::Probes, 1);
  std::uint64_t hb = 0, ep = 0;
  pgas::OpStatus st = rt_.probe_pair_checked(seg_, peer, 0, &hb, &ep);
  if (SCIOTO_METRICS_ON()) {
    // The probe's charged round trip: wire + remote-read cost under sim,
    // actual elapsed time under threads.
    metrics::hist_record(me_, metrics::Hist::ProbeRttNs,
                         static_cast<std::uint64_t>(
                             std::max<TimeNs>(rt_.now() - now, 0)));
  }
  if (st == pgas::OpStatus::Dropped) {
    return;  // a dropped probe is just a missed heartbeat
  }
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (hb != p.hb) {
    p.hb = hb;
    p.last_change = now;
    if (p.suspected) {
      p.suspected = false;
      ++n_refutes_;
      note_suspect(peer, false);
      SCIOTO_METRIC_CTR(me_, metrics::Ctr::Refutes, 1);
      publish_view_gauges();
      SCIOTO_TRACE_EVENT(me_, trace::Ev::Refute, peer, 0, 0);
    }
    return;
  }
  TimeNs silence = now - p.last_change;
  if (!p.suspected && silence > cfg_.suspect_after) {
    p.suspected = true;
    ++n_suspects_;
    note_suspect(peer, true);
    SCIOTO_METRIC_CTR(me_, metrics::Ctr::Suspects, 1);
    publish_view_gauges();
    SCIOTO_TRACE_EVENT(me_, trace::Ev::Suspect, peer, 0, silence);
  }
  if (p.suspected && silence > cfg_.confirm_after) {
    if (confirm_dead(peer, me_)) {
      note_detect_latency(silence);
      SCIOTO_METRIC_CTR(me_, metrics::Ctr::Confirms, 1);
      SCIOTO_TRACE_EVENT(me_, trace::Ev::ConfirmDead, peer, 0, silence);
    }
    // The suspicion resolved into a death; either way the dashboard
    // should now show the peer dead, not suspect.
    note_suspect(peer, false);
    publish_view_gauges();
    // The epoch bump (ours or a concurrent winner's) retires this peer
    // from the neighbor set on the next poll.
  }
}

void HeartbeatProbe::publish_view_gauges() {
  if (!SCIOTO_METRICS_ON()) return;
  metrics::gauge_set(me_, metrics::Gauge::AliveView,
                     static_cast<std::uint64_t>(alive_count()));
  std::uint64_t suspects = 0;
  for (const Peer& p : peers_) suspects += p.suspected ? 1 : 0;
  metrics::gauge_set(me_, metrics::Gauge::SuspectsView, suspects);
}

}  // namespace scioto::detect
