// The heartbeat failure detector: the probe engine each rank pumps from
// its work loop.
//
// Protocol (see DESIGN.md "Detector-mode recovery"):
//   * Every rank owns a 16-byte patch in a collectively allocated PGAS
//     segment: a monotonically increasing heartbeat counter and the
//     membership-epoch word it last observed. The owner publishes both
//     with cheap local atomic stores every hb_period.
//   * Every probe_period the rank reads one neighbor's pair with a
//     one-sided failure-aware probe (Runtime::probe_pair_checked), cycling
//     through its neighbor set: the next `fanout` alive ranks after it.
//     Every alive rank is therefore covered by its `fanout` predecessors,
//     so a death is always observed by someone.
//   * A peer whose counter advances is alive (a suspected peer is refuted).
//     A peer silent past suspect_after becomes suspect; past confirm_after
//     the prober calls detect::confirm_dead -- the first prober to do so
//     wins the transition, bumps the membership epoch, and emits the
//     ConfirmDead trace event. Timeouts are virtual time under the sim
//     backend and wall-clock time under threads (both via Runtime::now).
//   * Suspicion is prober-local; only confirmed deaths and rejoins are
//     global. A long gap in the prober's own polling (it was stalled, or
//     ran a long task) resets its peer timers instead of mass-suspecting
//     everyone whose heartbeats it slept through.
#pragma once

#include <cstdint>
#include <vector>

#include "detect/membership.hpp"
#include "pgas/runtime.hpp"

namespace scioto::detect {

/// Per-rank probe engine. Construction is collective (allocates the
/// heartbeat segment); destroy() is collective too and must be called by
/// every surviving rank. Pump poll() from the owner's work loop -- it is
/// cheap when nothing is due (two clock comparisons).
class HeartbeatProbe {
 public:
  /// Collective. Snapshots detect::config(); requires an armed view
  /// (detect::active()).
  explicit HeartbeatProbe(pgas::Runtime& rt);
  ~HeartbeatProbe();

  HeartbeatProbe(const HeartbeatProbe&) = delete;
  HeartbeatProbe& operator=(const HeartbeatProbe&) = delete;

  /// Publish own heartbeat / probe one neighbor if due.
  void poll();

  /// Forget all peer observations (timers restart from now). Called after
  /// the owner was away from its loop longer than suspect_after -- on
  /// rejoin after a false suspicion, or automatically when poll() notices
  /// the gap -- so stale silence is not misread as peer death.
  void reset_observations();

  /// Collective. Frees the heartbeat segment and flushes stats.
  void destroy();

 private:
  struct Peer {
    std::uint64_t hb = 0;       // last observed heartbeat value
    TimeNs last_change = 0;     // when we last saw it advance
    bool suspected = false;
  };

  void publish(TimeNs now);
  void probe_one(TimeNs now);
  void recompute_neighbors();
  void publish_view_gauges();

  pgas::Runtime& rt_;
  Config cfg_;
  pgas::SegId seg_ = -1;
  Rank me_ = kNoRank;
  int nranks_ = 0;
  bool destroyed_ = false;

  std::uint64_t hb_count_ = 0;
  TimeNs last_pub_ = 0;
  TimeNs last_probe_ = 0;
  TimeNs last_poll_ = 0;
  std::uint64_t epoch_seen_ = 0;
  std::vector<Peer> peers_;
  std::vector<Rank> neighbors_;
  std::size_t next_neighbor_ = 0;

  // Local stat accumulators, flushed to the global view on destroy() so
  // the hot path never takes the stats mutex.
  std::uint64_t n_heartbeats_ = 0;
  std::uint64_t n_probes_ = 0;
  std::uint64_t n_suspects_ = 0;
  std::uint64_t n_refutes_ = 0;
};

}  // namespace scioto::detect
