// Process-global membership view maintained by the heartbeat failure
// detector (detect.hpp), plus its configuration and counters.
//
// This is the layer the runtime consults instead of the fault oracle: every
// "is rank r alive?" question in the recovery paths (queue adoption, txn
// replay, termination resplice, dead-rank add redirects) goes through
// detect::alive()/epoch()/successor(). When the detector is disarmed these
// queries fall straight through to fault:: -- the omniscient oracle -- so a
// detector-off run is bit-identical to the pre-detector runtime and the
// oracle is demoted to (a) test-only ground truth and (b) the fallback
// implementation.
//
// When the detector is armed, the view is fed exclusively by probe
// observations: confirm_dead() is called by whichever prober first sees a
// peer silent past the confirm timeout, and rejoin() by a falsely-suspected
// rank that woke up, observed a fence on its queue, and re-entered the
// computation. Both bump the membership epoch, which is what the
// termination tree and the ward recomputation key off.
//
// Collectives (barriers, allreduce) deliberately do NOT consult this view:
// a falsely-suspected rank still executes and still arrives at the barrier,
// so skipping it based on suspicion would wedge or corrupt the collective.
// They stay on fault::alive(), the ground truth of which ranks actually
// stopped executing. See DESIGN.md "Detector-mode recovery".
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "base/types.hpp"

namespace scioto::detect {

/// Detector tuning. Periods and timeouts are virtual time under the sim
/// backend and wall-clock time under threads; the defaults are sized for
/// the sim machine models (suspect/confirm sit well above the heartbeat
/// period but below typical fault-plan stall durations, and confirm_after
/// clears the termination-broadcast tail so an idle run never false-kills).
struct Config {
  bool enabled = false;          // staged knob: arm the detector in run_spmd
  TimeNs hb_period = us(5);      // own-heartbeat publish period
  TimeNs probe_period = us(10);  // per-neighbor probe period
  TimeNs suspect_after = us(100);   // silence before alive -> suspect
  TimeNs confirm_after = us(400);   // silence before suspect -> dead
  int fanout = 2;                // neighbors probed per rank
};

/// Per-session detector counters (process-global, summed over ranks).
struct Stats {
  std::uint64_t heartbeats = 0;   // own-counter publishes
  std::uint64_t probes = 0;       // one-sided heartbeat reads issued
  std::uint64_t suspects = 0;     // alive -> suspect transitions observed
  std::uint64_t refutes = 0;      // suspect -> alive (heartbeat advanced)
  std::uint64_t confirms = 0;     // suspect -> confirmed-dead transitions
  std::uint64_t fence_aborts = 0; // owner observed an adoption fence
  std::uint64_t rejoins = 0;      // falsely-suspected ranks re-admitted
  std::uint64_t joins = 0;        // ranks admitted into an elastic fleet
  std::uint64_t grows = 0;        // admission batches (epoch bumps for joins)
  std::uint64_t max_detect_latency = 0;  // ns, worst observed silence at a
                                         // death confirmation (true kill ->
                                         // confirm latency: trace analysis)
};

/// The staged configuration. Like fault::policy(), it is process-global and
/// survives session start/stop so C-API setters before run_spmd apply.
Config config();
void set_config(const Config& c);

/// True when the staged config asks for the detector (knob, not armed).
bool enabled();

/// True between start() and stop(): the view answers from probe
/// observations instead of falling back to the fault oracle.
bool active();

/// Arms the membership view for `nranks` ranks, all initially alive at
/// epoch equal to the current fault epoch (so resplice logic sees one
/// monotone counter regardless of which layer bumps it).
///
/// `initial_joined` < nranks (elastic mode) parks ranks
/// [initial_joined, nranks) in the NotJoined state: they are not alive
/// (never steal victims, never probed, no termination-tree seat) but they
/// are not dead either -- wards must not adopt their queues, which is what
/// joined() distinguishes. When initial_joined < nranks the epoch is
/// bumped once past the seed so every joined rank resplices its tree over
/// the joined subset on its first TD step.
void start(int nranks, int initial_joined = -1);
void stop();

/// Membership queries. Armed: the detector's converged view. Disarmed:
/// forwarded to fault:: so all call sites work identically in oracle mode.
std::uint64_t epoch();
bool alive(Rank r);
int alive_count();
std::vector<Rank> alive_ranks();

/// First alive rank cyclically after `r` under this view (kNoRank if
/// none). Same agreement property as fault::successor: all ranks with the
/// same view compute the same recovery owner.
Rank successor(Rank r);

/// Transitions `r` to confirmed-dead on behalf of prober `by`. Returns
/// true iff this call won the transition (exactly one prober per death
/// bumps the epoch and gets to trace ConfirmDead). No-op when disarmed.
bool confirm_dead(Rank r, Rank by);

/// Re-admits a falsely-suspected rank: marks it alive again and bumps the
/// epoch so every rank resplices it back into the termination tree and
/// ward assignments. Returns the new epoch.
std::uint64_t rejoin(Rank r);

/// True unless `r` is parked in the NotJoined state. Disarmed (and for
/// out-of-range ranks) every rank counts as joined: the distinction only
/// exists in an elastic session. A rank that is dead is still "joined" --
/// joined() answers "has this rank ever been part of the fleet", which is
/// what the ward table keys off (unjoined queues must never be adopted;
/// dead ones must).
bool joined(Rank r);

/// Admits a batch of NotJoined ranks under ONE epoch bump: each becomes
/// Alive (steal victim/thief, tree seat on the next resplice), stats.joins
/// grows by the batch size and stats.grows by one. Returns the new epoch.
/// Ranks already joined are skipped (the batch may race a rejoin).
std::uint64_t join_ranks(const std::vector<Rank>& rs);

/// Record a kill->confirm detection latency sample (analysis + C API).
void note_detect_latency(TimeNs latency);
void note_fence_abort();

/// Prober-side suspicion tally: a prober calls note_suspect(r, true) on an
/// alive -> suspect transition and (r, false) when the suspicion resolves
/// (refute or confirmation). suspected(r) is true while any prober holds a
/// live suspicion -- the signal the telemetry monitor's dashboard and
/// detector-state rollup render. No-op / false when disarmed.
void note_suspect(Rank r, bool suspected);
bool suspected(Rank r);

Stats stats();
void add_heartbeats(std::uint64_t n);
void add_probes(std::uint64_t n);
void add_suspects(std::uint64_t n);
void add_refutes(std::uint64_t n);

}  // namespace scioto::detect
