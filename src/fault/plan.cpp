#include "fault/plan.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace scioto::fault {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("fault plan: " + what);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

FaultType parse_type(const std::string& raw) {
  std::string t = lower(trim(raw));
  if (t == "kill") return FaultType::Kill;
  if (t == "stall") return FaultType::Stall;
  if (t == "drop") return FaultType::Drop;
  if (t == "delay") return FaultType::Delay;
  if (t == "dup") return FaultType::Dup;
  if (t == "trunc" || t == "truncate") return FaultType::Truncate;
  if (t == "join") return FaultType::Join;
  if (t == "ckpt" || t == "checkpoint") return FaultType::Ckpt;
  fail("unknown fault type '" + raw + "'");
}

OpKind parse_op(const std::string& raw) {
  std::string o = lower(trim(raw));
  if (o == "put") return OpKind::Put;
  if (o == "get") return OpKind::Get;
  if (o == "add") return OpKind::Add;
  if (o == "token") return OpKind::Token;
  if (o == "commit") return OpKind::Commit;
  if (o == "steal") return OpKind::Steal;
  if (o == "any" || o == "*") return OpKind::Any;
  fail("unknown op kind '" + raw + "'");
}

Rank parse_rank(const std::string& raw) {
  std::string r = trim(raw);
  if (r == "*" || r == "any") return kNoRank;
  char* end = nullptr;
  long v = std::strtol(r.c_str(), &end, 10);
  if (end == r.c_str() || *end != '\0') fail("bad rank '" + raw + "'");
  return static_cast<Rank>(v);
}

int parse_int(const std::string& raw) {
  std::string r = trim(raw);
  char* end = nullptr;
  long v = std::strtol(r.c_str(), &end, 10);
  if (end == r.c_str() || *end != '\0') fail("bad integer '" + raw + "'");
  return static_cast<int>(v);
}

void apply_kv(FaultEvent& ev, const std::string& key, const std::string& val) {
  std::string k = lower(trim(key));
  if (k == "rank") {
    ev.rank = parse_rank(val);
  } else if (k == "target") {
    ev.target = parse_rank(val);
  } else if (k == "op") {
    ev.op = parse_op(val);
  } else if (k == "at") {
    ev.at = parse_time(val);
  } else if (k == "dur") {
    ev.dur = parse_time(val);
  } else if (k == "count") {
    ev.count = parse_int(val);
  } else if (k == "after") {
    ev.after = parse_int(val);
  } else if (k == "keep") {
    ev.keep = parse_int(val);
  } else if (k == "for") {
    ev.for_dur = parse_time(val);
  } else {
    fail("unknown key '" + key + "'");
  }
}

void validate(const FaultEvent& ev) {
  switch (ev.type) {
    case FaultType::Kill:
    case FaultType::Stall:
      if (ev.rank == kNoRank) {
        fail(std::string(fault_type_name(ev.type)) +
             " event needs an explicit rank");
      }
      if (ev.type == FaultType::Stall && ev.for_dur > 0 && ev.dur > 0) {
        fail("stall takes either dur= (lock holder) or for= (whole rank)");
      }
      if (ev.type == FaultType::Kill && ev.for_dur > 0) {
        fail("for= applies only to stall events");
      }
      break;
    case FaultType::Drop:
    case FaultType::Delay:
    case FaultType::Dup:
      if (ev.count < 1) fail("op fault needs count >= 1");
      break;
    case FaultType::Truncate:
      if (ev.keep < 0) fail("truncate needs keep >= 0");
      if (ev.count < 1) fail("truncate needs count >= 1");
      break;
    case FaultType::Join:
      if (ev.rank == kNoRank) fail("join event needs an explicit rank");
      if (ev.dur > 0 || ev.for_dur > 0) {
        fail("join takes only rank=, at= and after=");
      }
      break;
    case FaultType::Ckpt:
      if (ev.rank != kNoRank) {
        fail("ckpt is fleet-wide: it takes no rank=");
      }
      if (ev.dur > 0 || ev.for_dur > 0) {
        fail("ckpt takes only at= and after=");
      }
      break;
  }
}

FaultEvent parse_compact_event(const std::string& entry) {
  std::size_t colon = entry.find(':');
  FaultEvent ev;
  ev.type = parse_type(colon == std::string::npos ? entry
                                                  : entry.substr(0, colon));
  if (colon != std::string::npos) {
    std::string rest = entry.substr(colon + 1);
    std::stringstream ss(rest);
    std::string kv;
    while (std::getline(ss, kv, ',')) {
      kv = trim(kv);
      if (kv.empty()) continue;
      std::size_t eq = kv.find('=');
      if (eq == std::string::npos) fail("expected key=value in '" + kv + "'");
      apply_kv(ev, kv.substr(0, eq), kv.substr(eq + 1));
    }
  }
  validate(ev);
  return ev;
}

// ---- minimal JSON-subset parser: array of flat objects, string/number
// values. No external dependency; rejects anything outside that shape. ----

struct JsonCursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  char peek() {
    skip_ws();
    if (i >= s.size()) fail("unexpected end of JSON plan");
    return s[i];
  }
  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "' at offset " + std::to_string(i));
    }
    ++i;
  }
  std::string string_lit() {
    expect('"');
    std::string out;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') fail("escapes not supported in plan strings");
      out += s[i++];
    }
    if (i >= s.size()) fail("unterminated string");
    ++i;
    return out;
  }
  /// A scalar value as its raw text: quoted string or bare number token.
  std::string scalar() {
    if (peek() == '"') return string_lit();
    std::string out;
    while (i < s.size() &&
           (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
            s[i] == '+' || s[i] == '.')) {
      out += s[i++];
    }
    if (out.empty()) fail("expected value at offset " + std::to_string(i));
    return out;
  }
};

FaultPlan parse_json(const std::string& text) {
  FaultPlan plan;
  JsonCursor c{text};
  c.expect('[');
  if (c.peek() == ']') {
    ++c.i;
    return plan;
  }
  while (true) {
    c.expect('{');
    FaultEvent ev;
    bool typed = false;
    if (c.peek() != '}') {
      while (true) {
        std::string key = c.string_lit();
        c.expect(':');
        std::string val = c.scalar();
        if (lower(trim(key)) == "type") {
          ev.type = parse_type(val);
          typed = true;
        } else {
          apply_kv(ev, key, val);
        }
        if (c.peek() == ',') {
          ++c.i;
          continue;
        }
        break;
      }
    }
    c.expect('}');
    if (!typed) fail("JSON event missing \"type\"");
    validate(ev);
    plan.events.push_back(ev);
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    break;
  }
  c.expect(']');
  return plan;
}

}  // namespace

const char* fault_type_name(FaultType t) {
  switch (t) {
    case FaultType::Kill:
      return "kill";
    case FaultType::Stall:
      return "stall";
    case FaultType::Drop:
      return "drop";
    case FaultType::Delay:
      return "delay";
    case FaultType::Dup:
      return "dup";
    case FaultType::Truncate:
      return "trunc";
    case FaultType::Join:
      return "join";
    case FaultType::Ckpt:
      return "ckpt";
  }
  return "?";
}

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::Put:
      return "put";
    case OpKind::Get:
      return "get";
    case OpKind::Add:
      return "add";
    case OpKind::Token:
      return "token";
    case OpKind::Commit:
      return "commit";
    case OpKind::Steal:
      return "steal";
    case OpKind::Any:
      return "any";
  }
  return "?";
}

TimeNs parse_time(const std::string& raw) {
  std::string s = trim(raw);
  if (s.empty()) fail("empty time value");
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) fail("bad time '" + raw + "'");
  std::string unit = lower(trim(std::string(end)));
  if (unit.empty() || unit == "ns") return static_cast<TimeNs>(v);
  if (unit == "us") return static_cast<TimeNs>(v * 1e3);
  if (unit == "ms") return static_cast<TimeNs>(v * 1e6);
  if (unit == "s") return static_cast<TimeNs>(v * 1e9);
  fail("unknown time unit '" + unit + "'");
}

int FaultPlan::kill_count() const {
  int n = 0;
  for (const FaultEvent& ev : events) {
    if (ev.type == FaultType::Kill) ++n;
  }
  return n;
}

std::string describe_event(const FaultEvent& ev) {
  std::ostringstream os;
  os << fault_type_name(ev.type);
  if (ev.rank != kNoRank) os << " rank=" << ev.rank;
  if (ev.target != kNoRank) os << " target=" << ev.target;
  if (ev.op != OpKind::Any) os << " op=" << op_kind_name(ev.op);
  os << " at=" << ev.at << "ns";
  if (ev.dur > 0) os << " dur=" << ev.dur << "ns";
  if (ev.for_dur > 0) os << " for=" << ev.for_dur << "ns";
  if (ev.type == FaultType::Truncate) os << " keep=" << ev.keep;
  if (ev.type != FaultType::Kill && ev.type != FaultType::Stall &&
      ev.type != FaultType::Join && ev.type != FaultType::Ckpt) {
    os << " count=" << ev.count;
  }
  if (ev.after > 0) os << " after=" << ev.after;
  return os.str();
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  for (const FaultEvent& ev : events) {
    os << describe_event(ev) << "\n";
  }
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  std::string text = trim(spec);
  if (text.empty()) return FaultPlan{};
  if (text[0] == '@') {
    std::ifstream f(text.substr(1));
    if (!f) fail("cannot open plan file '" + text.substr(1) + "'");
    std::ostringstream os;
    os << f.rdbuf();
    return parse(os.str());
  }
  if (text[0] == '[') {
    return parse_json(text);
  }
  FaultPlan plan;
  std::stringstream ss(text);
  std::string entry;
  while (std::getline(ss, entry, ';')) {
    entry = trim(entry);
    if (entry.empty()) continue;
    plan.events.push_back(parse_compact_event(entry));
  }
  return plan;
}

}  // namespace scioto::fault
