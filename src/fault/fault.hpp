// Process-global fault-injection session and the resilience primitives the
// runtime builds on.
//
// Failure model (see DESIGN.md "Resilience"):
//   * Fail-stop at safepoints. A rank dies only where the runtime calls
//     fault::poll_safepoint(), and safepoints are placed where the rank
//     holds no locks, so a death never wedges a mutex. Death unwinds the
//     rank's SPMD body via the RankKilled exception; pgas::run_spmd treats
//     it as a benign exit, so under the sim backend the fiber simply
//     finishes and under the threads backend the thread joins.
//   * Recoverable exposed segments. A dead rank's PGAS segments remain
//     readable/writable by survivors -- the model used by victim-side steal
//     logging in fault-tolerant work-stealing runtimes (tasks in flight are
//     reconstructed from metadata the *survivor* can still reach). Only the
//     dead rank's private state (stack, locals) is lost.
//   * One-sided op faults (drop/delay/dup), lock-holder stalls and steal
//     truncation are transient: ops report failure and callers retry with
//     fault::backoff() -- deterministic, jittered, capped exponential.
//
// Like trace::, the session is process-global with a relaxed-atomic
// active() fast path, so a runtime built with fault hooks pays one
// predicted-false branch per hook when no plan is loaded.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "fault/plan.hpp"

namespace scioto::fault {

/// Thrown by poll_safepoint() when the executing rank's fail-stop event is
/// due. Deliberately not derived from std::exception: generic catch sites
/// for "task threw" must not swallow a rank death.
struct RankKilled {
  Rank rank = kNoRank;
  TimeNs at = 0;
};

/// Retry discipline for one-sided ops that can fail transiently.
struct RetryPolicy {
  int max_attempts = 8;            // attempts before the caller falls back
  TimeNs backoff_base = us(2);     // first retry delay
  TimeNs backoff_cap = us(100);    // exponential growth clamp
};

enum class Fate : std::uint8_t { Ok, Fail, Delay, Dup };

struct OpFate {
  Fate fate = Fate::Ok;
  TimeNs delay = 0;  // extra charge when fate == Delay
};

/// Per-session injection counters (process-global, summed over ranks).
struct Summary {
  long long kills = 0;
  long long drops = 0;
  long long delays = 0;
  long long dups = 0;
  long long stalls = 0;
  long long truncations = 0;
};

/// True between start() and stop(). One relaxed atomic load; every runtime
/// hook checks this first, so fault-free runs take no other cost.
bool active();

/// Arms `plan` for an SPMD run of `nranks` ranks. `seed` drives the
/// deterministic backoff jitter (derive it from the runtime seed so plan +
/// seed reproduces the schedule bit-for-bit). Call before run_spmd.
void start(int nranks, FaultPlan plan, std::uint64_t seed);

/// Disarms the session and releases its state.
void stop();

int session_nranks();

/// The retry discipline is process-global and survives session start/stop,
/// so knobs staged through the C API before a run apply to it.
RetryPolicy policy();
void set_policy(const RetryPolicy& p);

/// Bumped once per rank death. Survivors compare against their last
/// observed value to trigger recovery + termination-tree resplice.
std::uint64_t epoch();

bool alive(Rank r);
int alive_count();
std::vector<Rank> alive_ranks();

/// The first alive rank cyclically after `r` (kNoRank if none). All
/// survivors compute the same successor for a dead rank from the same
/// alive set, so exactly one recovery owner emerges per epoch.
Rank successor(Rank r);

/// Fail-stop check. Throws RankKilled when a Kill event for `me` is due
/// (virtual time under sim; poll count under the threads backend). Must be
/// called only while holding no locks.
void poll_safepoint(Rank me);

/// Consults Drop/Delay/Dup rules for a one-sided op `me` -> `target`.
OpFate one_sided_fate(OpKind op, Rank me, Rank target);

/// Consults Truncate rules for a steal hand-off: returns how many of
/// `want` tasks the thief may take (0 aborts the steal).
int truncate_steal(Rank thief, Rank victim, int want);

/// Extra time a lock holder must burn inside the critical section (0 when
/// no Stall rule fires). Skips whole-rank `for=` rules.
TimeNs stall_time(Rank holder);

/// Whole-rank stall: duration `me` must stall at a safepoint (0 when no
/// `stall:rank=,for=` rule is due). The suspicion-hazard primitive -- a
/// stall longer than the detector's confirm timeout makes survivors adopt
/// the rank's queue while it is still going to resume. Fires once per rule,
/// at/after `at` (sim) or after `after` safepoint polls (threads).
TimeNs rank_stall_time(Rank me);

/// Deterministic jittered exponential backoff for `me`'s `attempt`-th retry
/// (attempt counts from 0): base * 2^attempt, clamped to cap, with a
/// per-rank pseudo-random jitter in [50%, 100%] of that value.
TimeNs backoff(Rank me, int attempt);

/// Marks `r` dead without going through a Kill rule (used by tests).
/// Returns the new epoch. Throws outside an armed session or for an
/// out-of-range rank; the event timestamp comes from the same clamped
/// sim-clock helper poll_safepoint uses.
std::uint64_t mark_dead(Rank r);

Summary summary();

/// Copies of the armed plan's events of type `t` (empty when disarmed).
/// The elastic layer schedules from the plan's Join/Ckpt rules this way;
/// those two types are inert in the fault machinery itself (no matcher
/// fires them).
std::vector<FaultEvent> events_of(FaultType t);

}  // namespace scioto::fault
