#include "fault/fault.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace scioto::fault {

namespace {

/// One plan event plus its firing state.
struct Armed {
  FaultEvent ev;
  int fired = 0;    // times this rule has fired
  int matched = 0;  // matching ops seen (threads-backend count trigger)
};

struct Session {
  int nranks = 0;
  std::uint64_t seed = 0;
  std::vector<Armed> rules;
  std::vector<std::unique_ptr<std::atomic<bool>>> alive;
  std::vector<int> safepoint_polls;     // per-rank, threads-backend kills
  std::vector<Xoshiro256> jitter;       // per-rank backoff streams
  std::atomic<std::uint64_t> epoch{0};
  Summary stats;
  // Guards rules/stats mutation. Uncontended under the sim backend (one OS
  // thread); required for the threads backend.
  std::mutex mu;
};

std::atomic<bool> g_active{false};
Session g_session;

// Process-global, deliberately NOT reset by start(): the C API stages
// retry knobs before a session exists and they must survive into it.
RetryPolicy g_policy;

/// Virtual time under sim, -1 under the threads backend (switches rule
/// matching from time-based to count-based).
TimeNs now_or_neg() { return sim::current_virtual_time(); }

/// The timestamp recorded for a fault event firing "now". This is the ONE
/// place the threads backend's -1 sentinel becomes a 0 event time: callers
/// that stamp deaths (poll_safepoint, mark_dead) share it, so the clamp
/// cannot silently hide a sim-clock bug in just one of them.
TimeNs event_time() {
  TimeNs now = now_or_neg();
  return now >= 0 ? now : 0;
}

bool op_matches(const FaultEvent& ev, OpKind op, Rank me, Rank target) {
  if (ev.op != OpKind::Any && ev.op != op) return false;
  if (ev.rank != kNoRank && ev.rank != me) return false;
  if (ev.target != kNoRank && ev.target != target) return false;
  return true;
}

/// Shared trigger logic for op-level rules: under sim a rule fires on
/// matching ops at/after `at`; under threads it fires once `after`
/// matching ops have gone through. Both stop after `count` firings.
bool try_fire(Armed& a, TimeNs now) {
  ++a.matched;
  if (a.fired >= a.ev.count) return false;
  if (now >= 0 ? now < a.ev.at : a.matched <= a.ev.after) return false;
  ++a.fired;
  return true;
}

std::uint64_t mark_dead_locked(Rank r, TimeNs now) {
  auto& flag = *g_session.alive[static_cast<std::size_t>(r)];
  if (!flag.exchange(false, std::memory_order_acq_rel)) {
    return g_session.epoch.load(std::memory_order_acquire);
  }
  ++g_session.stats.kills;
  std::uint64_t e =
      g_session.epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
  SCIOTO_TRACE_EVENT(r, trace::Ev::FaultInjected,
                     static_cast<int>(FaultType::Kill), r, now);
  return e;
}

}  // namespace

bool active() { return g_active.load(std::memory_order_relaxed); }

void start(int nranks, FaultPlan plan, std::uint64_t seed) {
  SCIOTO_REQUIRE(!active(), "fault session already active");
  SCIOTO_REQUIRE(nranks >= 1, "fault session needs >= 1 rank");
  SCIOTO_REQUIRE(plan.kill_count() < nranks,
                 "fault plan would kill every rank");
  g_session.nranks = nranks;
  g_session.seed = seed;
  g_session.rules.clear();
  for (const FaultEvent& ev : plan.events) {
    // Fail fast, and echo the offending rule: in a multi-event plan a bare
    // range error is undebuggable (the parser cannot catch this -- it does
    // not know nranks).
    SCIOTO_REQUIRE(ev.rank < nranks && ev.target < nranks,
                   "fault event names a rank outside the run (nranks="
                       << nranks << "): " << describe_event(ev));
    g_session.rules.push_back(Armed{ev, 0, 0});
  }
  g_session.alive.clear();
  g_session.jitter.clear();
  for (int r = 0; r < nranks; ++r) {
    g_session.alive.push_back(std::make_unique<std::atomic<bool>>(true));
    g_session.jitter.emplace_back(derive_seed(seed, r, /*stream=*/0xFA17));
  }
  g_session.safepoint_polls.assign(static_cast<std::size_t>(nranks), 0);
  g_session.epoch.store(0, std::memory_order_release);
  g_session.stats = Summary{};
  g_active.store(true, std::memory_order_release);
}

void stop() {
  g_active.store(false, std::memory_order_release);
  g_session.rules.clear();
  g_session.alive.clear();
  g_session.jitter.clear();
  g_session.safepoint_polls.clear();
  g_session.nranks = 0;
}

int session_nranks() { return active() ? g_session.nranks : 0; }

RetryPolicy policy() { return g_policy; }

void set_policy(const RetryPolicy& p) {
  SCIOTO_REQUIRE(p.max_attempts >= 1, "retry policy needs >= 1 attempt");
  SCIOTO_REQUIRE(p.backoff_base >= 0 && p.backoff_cap >= p.backoff_base,
                 "retry policy backoff cap must be >= base");
  g_policy = p;
}

std::uint64_t epoch() {
  return active() ? g_session.epoch.load(std::memory_order_acquire) : 0;
}

bool alive(Rank r) {
  if (!active()) return true;
  if (r < 0 || r >= g_session.nranks) return false;
  return g_session.alive[static_cast<std::size_t>(r)]->load(
      std::memory_order_acquire);
}

int alive_count() {
  if (!active()) return 0;
  int n = 0;
  for (int r = 0; r < g_session.nranks; ++r) {
    n += alive(r) ? 1 : 0;
  }
  return n;
}

std::vector<Rank> alive_ranks() {
  std::vector<Rank> out;
  for (int r = 0; r < session_nranks(); ++r) {
    if (alive(r)) out.push_back(r);
  }
  return out;
}

Rank successor(Rank r) {
  if (!active()) return kNoRank;
  for (int i = 1; i <= g_session.nranks; ++i) {
    Rank cand = (r + i) % g_session.nranks;
    if (alive(cand)) return cand;
  }
  return kNoRank;
}

void poll_safepoint(Rank me) {
  if (!active() || me < 0 || me >= g_session.nranks) return;
  TimeNs now = now_or_neg();
  std::lock_guard<std::mutex> g(g_session.mu);
  int polls = ++g_session.safepoint_polls[static_cast<std::size_t>(me)];
  for (Armed& a : g_session.rules) {
    if (a.ev.type != FaultType::Kill || a.ev.rank != me || a.fired > 0) {
      continue;
    }
    if (now >= 0 ? now < a.ev.at : polls <= a.ev.after) continue;
    a.fired = 1;
    TimeNs at = event_time();
    mark_dead_locked(me, at);
    throw RankKilled{me, at};
  }
}

OpFate one_sided_fate(OpKind op, Rank me, Rank target) {
  if (!active()) return OpFate{};
  TimeNs now = now_or_neg();
  std::lock_guard<std::mutex> g(g_session.mu);
  for (Armed& a : g_session.rules) {
    FaultType t = a.ev.type;
    if (t != FaultType::Drop && t != FaultType::Delay && t != FaultType::Dup) {
      continue;
    }
    if (!op_matches(a.ev, op, me, target)) continue;
    if (!try_fire(a, now)) continue;
    SCIOTO_TRACE_EVENT(me, trace::Ev::FaultInjected, static_cast<int>(t),
                       target, a.ev.dur);
    switch (t) {
      case FaultType::Drop:
        ++g_session.stats.drops;
        return OpFate{Fate::Fail, 0};
      case FaultType::Delay:
        ++g_session.stats.delays;
        return OpFate{Fate::Delay, a.ev.dur};
      default:
        ++g_session.stats.dups;
        return OpFate{Fate::Dup, 0};
    }
  }
  return OpFate{};
}

int truncate_steal(Rank thief, Rank victim, int want) {
  if (!active() || want <= 0) return want;
  TimeNs now = now_or_neg();
  std::lock_guard<std::mutex> g(g_session.mu);
  for (Armed& a : g_session.rules) {
    if (a.ev.type != FaultType::Truncate) continue;
    if (!op_matches(a.ev, OpKind::Steal, thief, victim)) continue;
    if (!try_fire(a, now)) continue;
    int keep = std::min(want, a.ev.keep);
    if (keep < want) {
      ++g_session.stats.truncations;
      SCIOTO_TRACE_EVENT(thief, trace::Ev::FaultInjected,
                         static_cast<int>(FaultType::Truncate), victim, keep);
    }
    return keep;
  }
  return want;
}

TimeNs stall_time(Rank holder) {
  if (!active()) return 0;
  TimeNs now = now_or_neg();
  std::lock_guard<std::mutex> g(g_session.mu);
  for (Armed& a : g_session.rules) {
    if (a.ev.type != FaultType::Stall) continue;
    if (a.ev.for_dur > 0) continue;  // whole-rank rule: rank_stall_time()
    if (a.ev.rank != kNoRank && a.ev.rank != holder) continue;
    if (!try_fire(a, now)) continue;
    ++g_session.stats.stalls;
    SCIOTO_TRACE_EVENT(holder, trace::Ev::FaultInjected,
                       static_cast<int>(FaultType::Stall), holder, a.ev.dur);
    return a.ev.dur;
  }
  return 0;
}

TimeNs backoff(Rank me, int attempt) {
  RetryPolicy p = policy();
  if (attempt < 0) attempt = 0;
  TimeNs d = p.backoff_base;
  for (int i = 0; i < attempt && d < p.backoff_cap; ++i) {
    d *= 2;
  }
  d = std::min(d, p.backoff_cap);
  if (d <= 0) return 0;
  // Jitter in [d/2, d], drawn from the rank's own deterministic stream so
  // concurrent retriers desynchronise without breaking reproducibility.
  if (active() && me >= 0 && me < g_session.nranks) {
    std::uint64_t j = g_session.jitter[static_cast<std::size_t>(me)]
                          .next_below(static_cast<std::uint64_t>(d / 2 + 1));
    d = d / 2 + static_cast<TimeNs>(j);
  }
  return d;
}

TimeNs rank_stall_time(Rank me) {
  if (!active() || me < 0 || me >= g_session.nranks) return 0;
  TimeNs now = now_or_neg();
  std::lock_guard<std::mutex> g(g_session.mu);
  int polls = g_session.safepoint_polls[static_cast<std::size_t>(me)];
  for (Armed& a : g_session.rules) {
    if (a.ev.type != FaultType::Stall || a.ev.for_dur <= 0) continue;
    if (a.ev.rank != me || a.fired > 0) continue;
    if (now >= 0 ? now < a.ev.at : polls <= a.ev.after) continue;
    a.fired = 1;
    ++g_session.stats.stalls;
    SCIOTO_TRACE_EVENT(me, trace::Ev::FaultInjected,
                       static_cast<int>(FaultType::Stall), me, a.ev.for_dur);
    return a.ev.for_dur;
  }
  return 0;
}

std::uint64_t mark_dead(Rank r) {
  SCIOTO_REQUIRE(active(), "fault::mark_dead outside an armed session");
  SCIOTO_REQUIRE(r >= 0 && r < g_session.nranks,
                 "fault::mark_dead rank " << r << " out of range");
  std::lock_guard<std::mutex> g(g_session.mu);
  return mark_dead_locked(r, event_time());
}

Summary summary() {
  if (!active()) return Summary{};
  std::lock_guard<std::mutex> g(g_session.mu);
  return g_session.stats;
}

std::vector<FaultEvent> events_of(FaultType t) {
  std::vector<FaultEvent> out;
  if (!active()) return out;
  std::lock_guard<std::mutex> g(g_session.mu);
  for (const Armed& a : g_session.rules) {
    if (a.ev.type == t) out.push_back(a.ev);
  }
  return out;
}

}  // namespace scioto::fault
