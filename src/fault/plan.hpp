// Fault plans: declarative, deterministic failure schedules.
//
// A FaultPlan is a list of FaultEvents parsed from a compact CLI spec, a
// JSON array, or a file. The fault session (fault.hpp) arms the events and
// the runtime consults them at well-defined points: safepoints (fail-stop
// kills), one-sided op issue (drop/delay/duplicate), lock acquisition
// (holder stalls) and steal hand-off (truncation). Under the sim backend
// events fire at exact virtual times; under the threads backend they fire
// after a fixed number of matching operations, so both backends replay a
// given plan deterministically.
#pragma once

#include <string>
#include <vector>

#include "base/types.hpp"

namespace scioto::fault {

enum class FaultType {
  Kill,      // fail-stop: rank dies at its next safepoint at/after `at`
  Stall,     // lock holder sleeps `dur` inside the critical section, OR,
             // with `for=` set, the whole rank stalls `for` at a safepoint
             // (the suspicion-hazard rule: long enough and the detector
             // falsely confirms the rank dead before it resumes)
  Drop,      // one-sided op reports failure (no effect applied)
  Delay,     // one-sided op charged an extra `dur`
  Dup,       // one-sided op applied twice (idempotence probe)
  Truncate,  // steal hand-off delivers at most `keep` tasks (0 = abort)
  Join,      // elastic: parked rank `rank` requests admission at/after `at`
             // (threads backend: after `after` parked polls)
  Ckpt,      // elastic: fleet quiesces and checkpoints at/after `at`
};

/// Which runtime operation an op-level fault rule matches.
enum class OpKind {
  Put,
  Get,
  Add,     // remote task add
  Token,   // termination-detector token put
  Commit,  // steal-transaction commit write
  Steal,   // steal hand-off (Truncate only)
  Any,
};

struct FaultEvent {
  FaultType type = FaultType::Kill;
  Rank rank = kNoRank;      // acting rank (-1 = any): Kill/Stall victim,
                            // op-fault initiator, Truncate thief
  Rank target = kNoRank;    // op/steal target rank (-1 = any)
  OpKind op = OpKind::Any;  // op filter for Drop/Delay/Dup
  TimeNs at = 0;            // arming virtual time (sim backend)
  TimeNs dur = 0;           // Stall/Delay duration
  int count = 1;            // max times an op-level rule fires
  int after = 0;            // threads backend: fire after N matching ops
  int keep = 0;             // Truncate: tasks the thief is allowed to take
  TimeNs for_dur = 0;       // Stall `for=`: whole-rank stall duration
                            // (fires at a safepoint, not a lock site)
};

const char* fault_type_name(FaultType t);
const char* op_kind_name(OpKind k);

/// One event rendered in the compact-spec vocabulary ("kill rank=9
/// at=5000000ns"): describe() emits one of these per line, and
/// fault::start echoes it verbatim when it rejects a rule (e.g. a rank
/// beyond the run's nranks) so the offending rule is identifiable in a
/// multi-event plan.
std::string describe_event(const FaultEvent& ev);

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Number of Kill events in the plan.
  int kill_count() const;

  /// One event per line, for logs and the fault demo.
  std::string describe() const;

  /// Parses a plan from a spec string. Three forms are accepted:
  ///   - compact:  "kill:rank=3,at=5ms;drop:op=put,rank=1,count=2,at=1ms"
  ///   - JSON:     '[{"type":"kill","rank":3,"at":"5ms"}, ...]'
  ///   - file:     "@path/to/plan.json" (contents in either form above)
  /// Throws std::runtime_error on malformed input.
  static FaultPlan parse(const std::string& spec);
};

/// Parses "250", "250ns", "3us", "5ms", "1.5ms", "2s" into nanoseconds.
/// Bare numbers are nanoseconds. Throws std::runtime_error on bad input.
TimeNs parse_time(const std::string& s);

}  // namespace scioto::fault
