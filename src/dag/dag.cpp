#include "dag/dag.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace scioto::dag {

namespace {

/// Fixed prefix of a dynamic node's descriptor in the home-rank arena.
struct DynHeader {
  KindId kind = -1;
  GroupId group = kNoGroup;
  std::int32_t depth = 0;
  std::int32_t body_len = 0;
  std::int32_t nsucc = 0;
  std::int32_t pad = 0;
};
static_assert(sizeof(DynHeader) == 24);

/// Nonzero lock-word token identifying the holder (ids are unique, so
/// id + 1 never collides and 0 stays the released state).
std::int64_t lock_token(NodeId id) { return id + 1; }

}  // namespace

// ---- NodeCtx -------------------------------------------------------------

NodeId NodeCtx::spawn(KindId kind, Rank home, const void* args,
                      std::int32_t len, std::int64_t extra_deps,
                      GroupId group) {
  return dag_.spawn_child(kind, home, args, len, extra_deps, group, depth_);
}

void NodeCtx::child_edge(NodeId pred, NodeId succ) {
  dag_.stage_child_edge(pred, succ);
}

// ---- Build ---------------------------------------------------------------

DagScheduler::DagScheduler(TaskCollection& tc, DagConfig cfg)
    : tc_(tc), rt_(tc.runtime()), cfg_(cfg) {
  SCIOTO_REQUIRE(cfg_.max_dynamic_per_rank >= 1 &&
                     cfg_.max_dynamic_per_rank <= (std::int64_t{1} << 32),
                 "max_dynamic_per_rank out of range");
  SCIOTO_REQUIRE(cfg_.max_dynamic_body >= 0 && cfg_.max_dynamic_succ >= 0,
                 "negative dynamic-node limits");
  dispatch_handle_ =
      tc_.register_callback([this](TaskContext& ctx) { run_node(ctx); });
  const std::size_t n = static_cast<std::size_t>(rt_.nprocs());
  slots_per_rank_.assign(n, 0);
  vslots_per_rank_.assign(n, 0);
  desc_stride_ = align_up(
      sizeof(DynHeader) +
          static_cast<std::size_t>(cfg_.max_dynamic_succ) * sizeof(NodeId) +
          static_cast<std::size_t>(cfg_.max_dynamic_body),
      alignof(std::int64_t));
  dyn_buf_.resize(desc_stride_);
  pub_buf_.resize(desc_stride_);
}

NodeId DagScheduler::add_node(Rank home, NodeFn fn, GroupId group) {
  SCIOTO_REQUIRE(!executed_, "DagScheduler::add_node after execute()");
  SCIOTO_REQUIRE(home >= 0 && home < rt_.nprocs(),
                 "invalid home rank " << home);
  SCIOTO_REQUIRE(group == kNoGroup || (group >= 0 && group < ngroups_),
                 "add_node with unknown conflict group " << group);
  Node n;
  n.home = home;
  n.fn = std::move(fn);
  n.group = group;
  n.home_slot = slots_per_rank_[static_cast<std::size_t>(home)]++;
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId DagScheduler::add_node(Rank home, std::function<void()> fn) {
  return add_node(home, [f = std::move(fn)](NodeCtx&) { f(); });
}

void DagScheduler::add_edge(NodeId pred, NodeId succ) {
  SCIOTO_REQUIRE(!executed_, "DagScheduler::add_edge after execute()");
  SCIOTO_REQUIRE(!is_dyn(pred) && !is_dyn(succ),
                 "add_edge on dynamic ids (use spawn deps / child_edge / "
                 "satisfy for streaming-built nodes)");
  SCIOTO_REQUIRE(pred >= 0 && static_cast<std::size_t>(pred) < nodes_.size(),
                 "add_edge: pred id " << pred << " out of range [0, "
                                      << nodes_.size() << ")");
  SCIOTO_REQUIRE(succ >= 0 && static_cast<std::size_t>(succ) < nodes_.size(),
                 "add_edge: succ id " << succ << " out of range [0, "
                                      << nodes_.size() << ")");
  SCIOTO_REQUIRE(pred != succ, "add_edge: self-dependency on node " << pred);
  nodes_[static_cast<std::size_t>(pred)].successors.push_back(succ);
  nodes_[static_cast<std::size_t>(succ)].deps++;
  nedges_++;
}

void DagScheduler::add_edge(NodeId pred, NodeId succ, const DataDep& data) {
  SCIOTO_REQUIRE(data.seg >= 0 && data.len > 0 && data.owner >= 0 &&
                     data.owner < rt_.nprocs(),
                 "add_edge: malformed DataDep (seg=" << data.seg << ", owner="
                     << data.owner << ", len=" << data.len << ")");
  add_edge(pred, succ);  // the version edge is also a control edge
  Node& s = nodes_[static_cast<std::size_t>(succ)];
  VEdge e;
  e.pred = pred;
  e.succ = succ;
  e.data = data;
  e.slot = vslots_per_rank_[static_cast<std::size_t>(s.home)]++;
  const auto ei = static_cast<std::int32_t>(vedges_.size());
  vedges_.push_back(e);
  s.vin.push_back(ei);
  nodes_[static_cast<std::size_t>(pred)].vout.push_back(ei);
}

GroupId DagScheduler::conflict_group() {
  SCIOTO_REQUIRE(!executed_, "conflict_group after execute()");
  return ngroups_++;
}

void DagScheduler::set_group(NodeId id, GroupId group) {
  SCIOTO_REQUIRE(!executed_, "set_group after execute()");
  SCIOTO_REQUIRE(!is_dyn(id) && id >= 0 &&
                     static_cast<std::size_t>(id) < nodes_.size(),
                 "set_group: invalid node id " << id);
  SCIOTO_REQUIRE(group == kNoGroup || (group >= 0 && group < ngroups_),
                 "set_group: unknown conflict group " << group);
  nodes_[static_cast<std::size_t>(id)].group = group;
}

KindId DagScheduler::register_kind(NodeFn fn) {
  SCIOTO_REQUIRE(!executed_, "register_kind after execute()");
  kinds_.push_back(std::move(fn));
  return static_cast<KindId>(kinds_.size() - 1);
}

// ---- Cycle detection -----------------------------------------------------

void DagScheduler::check_acyclic_and_depths() {
  const std::size_t n = nodes_.size();
  std::vector<std::int64_t> indeg(n);
  for (std::size_t i = 0; i < n; ++i) {
    indeg[i] = nodes_[i].deps;
  }
  // Kahn's algorithm doubles as the critical-path depth computation the
  // trace/metrics plane reports.
  std::vector<NodeId> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) {
      order.push_back(static_cast<NodeId>(i));
    }
  }
  for (std::size_t head = 0; head < order.size(); ++head) {
    const Node& u = nodes_[static_cast<std::size_t>(order[head])];
    for (NodeId s : u.successors) {
      Node& v = nodes_[static_cast<std::size_t>(s)];
      v.depth = std::max(v.depth, u.depth + 1);
      if (--indeg[static_cast<std::size_t>(s)] == 0) {
        order.push_back(s);
      }
    }
  }
  if (order.size() == n) {
    return;
  }
  // Some nodes never topologically sorted: walk predecessors within the
  // unsorted remainder (every unsorted node has one) until a node repeats,
  // then report the enclosed cycle in forward edge order.
  std::vector<std::vector<NodeId>> preds(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (NodeId s : nodes_[i].successors) {
      if (indeg[static_cast<std::size_t>(s)] > 0 && indeg[i] > 0) {
        preds[static_cast<std::size_t>(s)].push_back(static_cast<NodeId>(i));
      }
    }
  }
  NodeId cur = -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] > 0) {
      cur = static_cast<NodeId>(i);
      break;
    }
  }
  std::vector<NodeId> walk;
  std::vector<std::int64_t> pos(n, -1);
  while (pos[static_cast<std::size_t>(cur)] < 0) {
    pos[static_cast<std::size_t>(cur)] =
        static_cast<std::int64_t>(walk.size());
    walk.push_back(cur);
    SCIOTO_CHECK(!preds[static_cast<std::size_t>(cur)].empty());
    cur = preds[static_cast<std::size_t>(cur)].front();
  }
  // walk[pos[cur]..] is the cycle in reverse (predecessor) order.
  std::ostringstream msg;
  msg << "DagScheduler: dependency cycle: ";
  const auto start = static_cast<std::size_t>(
      pos[static_cast<std::size_t>(cur)]);
  for (std::size_t i = walk.size(); i-- > start;) {
    msg << walk[i] << " -> ";
  }
  msg << walk.back();
  throw Error(msg.str());
}

// ---- Execution -----------------------------------------------------------

void DagScheduler::execute() {
  SCIOTO_REQUIRE(!executed_, "DagScheduler::execute called twice");
  // Cycle check first: it is local and replicated, so every rank throws
  // identically before any collective is entered.
  check_acyclic_and_depths();
  executed_ = true;

  // The replicated build must agree across ranks.
  struct BuildSig {
    std::int64_t v[4];
  } sig{{static_cast<std::int64_t>(nodes_.size()), nedges_,
         static_cast<std::int64_t>(ngroups_),
         static_cast<std::int64_t>(kinds_.size())}};
  BuildSig total = rt_.allreduce(sig, [](BuildSig a, const BuildSig& b) {
    for (int i = 0; i < 4; ++i) a.v[i] += b.v[i];
    return a;
  });
  for (int i = 0; i < 4; ++i) {
    SCIOTO_REQUIRE(total.v[i] == sig.v[i] * rt_.nprocs(),
                   "DagScheduler build diverged across ranks");
  }

  // Control-segment layout: identical on every rank (maxima over ranks).
  const int n = rt_.nprocs();
  std::int64_t max_slots = 1;
  std::int64_t max_vslots = 1;
  for (int r = 0; r < n; ++r) {
    max_slots = std::max(max_slots, slots_per_rank_[static_cast<std::size_t>(r)]);
    max_vslots =
        std::max(max_vslots, vslots_per_rank_[static_cast<std::size_t>(r)]);
  }
  const std::int64_t lock_slots =
      std::max<std::int64_t>((ngroups_ + n - 1) / n, 1);
  ctr_base_ = sizeof(std::int64_t);  // word 0: dynamic-arena cursor
  v_base_ = ctr_base_ + static_cast<std::size_t>(max_slots) * 8;
  lock_base_ = v_base_ + static_cast<std::size_t>(max_vslots) * 8;
  dyn_ctr_base_ = lock_base_ + static_cast<std::size_t>(lock_slots) * 8;
  desc_base_ =
      dyn_ctr_base_ + static_cast<std::size_t>(cfg_.max_dynamic_per_rank) * 8;
  const std::size_t bytes =
      desc_base_ +
      static_cast<std::size_t>(cfg_.max_dynamic_per_rank) * desc_stride_;
  seg_ = rt_.seg_alloc(bytes);
  std::memset(rt_.seg_ptr(seg_, rt_.me()), 0, bytes);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& nd = nodes_[i];
    if (nd.home == rt_.me()) {
      auto* p = reinterpret_cast<std::int64_t*>(
          rt_.seg_ptr(seg_, rt_.me()) +
          static_ctr_offset(static_cast<NodeId>(i)));
      *p = nd.deps;
    }
  }
  rt_.barrier();

  // Deferred-node hooks: parked nodes are retried from the idle loop and
  // keep this rank's termination vote black while they wait.
  tc_.set_idle_hook([this] { return retry_parked(); });
  tc_.set_pending_hook([this] { return !parked_.empty(); });
  running_ = true;

  // Seed the roots at their home ranks.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& nd = nodes_[i];
    if (nd.home == rt_.me() && nd.deps == 0) {
      fire(static_cast<NodeId>(i), nd.home, nd.depth);
    }
  }

  tc_.process();

  running_ = false;
  tc_.set_idle_hook(nullptr);
  tc_.set_pending_hook(nullptr);
  SCIOTO_CHECK_MSG(parked_.empty(), "DagScheduler terminated with "
                                        << parked_.size()
                                        << " node(s) still parked");

  // Post-run backstop (static Kahn cannot see dynamically added edges):
  // any counter still positive names a node that never became ready.
  std::ostringstream stuck_ids;
  std::int64_t stuck_local = 0;
  const std::byte* patch = rt_.seg_ptr(seg_, rt_.me());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].home != rt_.me()) continue;
    auto v = *reinterpret_cast<const std::int64_t*>(
        patch + static_ctr_offset(static_cast<NodeId>(i)));
    if (v > 0) {
      if (stuck_local < 8) stuck_ids << " " << i;
      ++stuck_local;
    }
  }
  const auto spawned_here =
      *reinterpret_cast<const std::int64_t*>(patch);  // cursor word
  for (std::int64_t i = 0; i < spawned_here; ++i) {
    auto v = *reinterpret_cast<const std::int64_t*>(
        patch + dyn_ctr_base_ + static_cast<std::size_t>(i) * 8);
    if (v > 0) {
      if (stuck_local < 8) stuck_ids << " " << dyn_node_id(rt_.me(), i);
      ++stuck_local;
    }
  }
  std::int64_t stuck = rt_.allreduce_sum(stuck_local);
  rt_.seg_free(seg_);
  SCIOTO_REQUIRE(stuck == 0,
                 "DagScheduler: " << stuck
                     << " node(s) never became ready (unsatisfied extra_deps "
                        "or a cycle through dynamic edges); local ids:"
                     << stuck_ids.str());
}

void DagScheduler::satisfy(NodeId id, std::int64_t n) {
  SCIOTO_REQUIRE(running_, "satisfy outside execute()");
  SCIOTO_REQUIRE(n >= 1, "satisfy with n < 1");
  SCIOTO_REQUIRE(id >= 0, "satisfy: invalid node id " << id);
  if (is_dyn(id)) {
    SCIOTO_REQUIRE(dyn_home(id) < rt_.nprocs() &&
                       dyn_idx(id) < cfg_.max_dynamic_per_rank,
                   "satisfy: malformed dynamic node id " << id);
  } else {
    SCIOTO_REQUIRE(static_cast<std::size_t>(id) < nodes_.size(),
                   "satisfy: invalid node id " << id);
  }
  stats_.satisfies++;
  decrement(id, n);
}

// ---- Dispatch ------------------------------------------------------------

void DagScheduler::run_node(TaskContext& tctx) {
  const NodeId id = tctx.body_as<DagBody>().node;
  const Rank me = rt_.me();
  GroupId group = kNoGroup;
  std::int32_t depth = 0;
  const NodeFn* fn = nullptr;
  const void* args = nullptr;
  std::int32_t args_len = 0;
  std::vector<NodeId> dyn_succ;

  if (!is_dyn(id)) {
    Node& nd = nodes_[static_cast<std::size_t>(id)];
    group = nd.group;
    depth = nd.depth;
    // Version gate (the RAW check): every versioned in-edge's bump must
    // have landed. The ready-decrement is a cheap control message that can
    // overtake the producer's bulk payload; this gate is what makes the
    // overtake harmless.
    for (std::int32_t ei : nd.vin) {
      const VEdge& e = vedges_[static_cast<std::size_t>(ei)];
      std::uint64_t v = 0;
      pgas::OpStatus st = rt_.get_u64_with_retry(
          seg_, nd.home, v_base_ + static_cast<std::size_t>(e.slot) * 8, &v);
      if (st == pgas::OpStatus::Dropped || v == 0) {
        defer(id, group, /*version_wait=*/true);
        return;
      }
    }
    fn = &nd.fn;
  } else {
    // Dynamic node: fetch its descriptor from the home-rank arena.
    const Rank home = dyn_home(id);
    const std::int64_t idx = dyn_idx(id);
    rt_.get(seg_, home,
            desc_base_ + static_cast<std::size_t>(idx) * desc_stride_,
            dyn_buf_.data(), desc_stride_);
    const auto* h = reinterpret_cast<const DynHeader*>(dyn_buf_.data());
    SCIOTO_CHECK_MSG(h->kind >= 0 &&
                         static_cast<std::size_t>(h->kind) < kinds_.size(),
                     "dynamic node " << id << " has corrupt kind " << h->kind);
    group = h->group;
    depth = h->depth;
    args_len = h->body_len;
    const std::byte* base = dyn_buf_.data() + sizeof(DynHeader);
    dyn_succ.resize(static_cast<std::size_t>(h->nsucc));
    std::memcpy(dyn_succ.data(), base,
                static_cast<std::size_t>(h->nsucc) * sizeof(NodeId));
    args = base + static_cast<std::size_t>(cfg_.max_dynamic_succ) *
                      sizeof(NodeId);
    fn = &kinds_[static_cast<std::size_t>(h->kind)];
  }

  // Conflict gate: one CAS on the group's lock word. Busy means a group
  // peer is running somewhere -- defer, do not spin on a remote lock.
  if (group != kNoGroup) {
    std::int64_t prev = rt_.compare_swap(seg_, lock_home(group),
                                         lock_offset(group), 0,
                                         lock_token(id));
    if (prev != 0) {
      defer(id, group, /*version_wait=*/false);
      return;
    }
  }

  SCIOTO_TRACE_EVENT(me, trace::Ev::NodeRun, id32(id), group, depth);
  SCIOTO_METRIC_CTR(me, metrics::Ctr::DagNodesRun, 1);
  SCIOTO_METRIC_HIST(me, metrics::Hist::DagNodeDepth,
                     static_cast<std::uint64_t>(depth));
  stats_.nodes_run++;
  if (static_cast<std::uint64_t>(depth) > stats_.max_depth) {
    stats_.max_depth = static_cast<std::uint64_t>(depth);
    SCIOTO_METRIC_GAUGE(me, metrics::Gauge::DagDepthMax, depth);
  }

  SCIOTO_CHECK(!in_node_);
  in_node_ = true;
  staged_.clear();
  NodeCtx nctx(*this, id, depth, args, args_len);
  (*fn)(nctx);
  in_node_ = false;

  // Release the conflict lock before firing successors, so a same-group
  // successor fired below can acquire immediately.
  if (group != kNoGroup) {
    std::int64_t prev =
        rt_.swap(seg_, lock_home(group), lock_offset(group), 0);
    SCIOTO_CHECK_MSG(prev == lock_token(id),
                     "conflict lock of group " << group
                         << " corrupted while node " << id << " held it");
  }

  // Completion protocol, in order: (1) publish this invocation's dynamic
  // children, (2) release all successors via one-sided decrements -- the
  // parent hold makes children fireable only now, (3) bump data versions
  // LAST. (3) after (2) deliberately models the network race where the
  // control decrement overtakes the payload: the consumer's version gate,
  // not delivery order, provides the RAW safety.
  publish_and_release_children();
  if (!is_dyn(id)) {
    Node& nd = nodes_[static_cast<std::size_t>(id)];
    for (NodeId s : nd.successors) {
      decrement(s, 1);
    }
    if (!nd.vout.empty()) {
      bump_versions(nd);
    }
  } else {
    for (NodeId s : dyn_succ) {
      decrement(s, 1);
    }
  }

  // Opportunistic parked retry: a completion is the likeliest gate-opening
  // event on this rank, so check before going back through the idle loop.
  retry_parked();
}

void DagScheduler::decrement(NodeId succ, std::int64_t delta) {
  Rank home;
  std::size_t off;
  std::int32_t depth = -1;
  if (!is_dyn(succ)) {
    const Node& nd = nodes_[static_cast<std::size_t>(succ)];
    home = nd.home;
    off = static_ctr_offset(succ);
    depth = nd.depth;
  } else {
    home = dyn_home(succ);
    off = dyn_ctr_base_ + static_cast<std::size_t>(dyn_idx(succ)) * 8;
  }
  std::int64_t prev = rt_.fetch_add(seg_, home, off, -delta);
  SCIOTO_CHECK_MSG(prev >= delta,
                   "dependency counter underflow on node " << succ);
  if (prev == delta) {
    fire(succ, home, depth);
  }
}

void DagScheduler::fire(NodeId id, Rank home, std::int32_t depth) {
  const Rank me = rt_.me();
  SCIOTO_TRACE_EVENT(me, trace::Ev::NodeReady, id32(id), home, depth);
  SCIOTO_METRIC_CTR(me, metrics::Ctr::DagNodesFired, 1);
  stats_.nodes_fired++;
  if (home != me) {
    stats_.remote_fires++;
    SCIOTO_METRIC_CTR(me, metrics::Ctr::DagRemoteFires, 1);
  }
  Task t = tc_.task_create(sizeof(DagBody), dispatch_handle_);
  t.body_as<DagBody>().node = id;
  // Home-rank affinity: the node lands at the head of its home's queue
  // (dead homes are redirected locally by the collection itself).
  tc_.add(home, kAffinityHigh, t);
}

void DagScheduler::defer(NodeId id, GroupId group, bool version_wait) {
  const Rank me = rt_.me();
  SCIOTO_TRACE_EVENT(me, trace::Ev::ConflictRetry, id32(id),
                     version_wait ? 1 : 0, group);
  if (version_wait) {
    stats_.version_waits++;
    SCIOTO_METRIC_CTR(me, metrics::Ctr::DagVersionWaits, 1);
  } else {
    stats_.conflict_retries++;
    SCIOTO_METRIC_CTR(me, metrics::Ctr::DagConflictRetries, 1);
  }
  if (fault::active()) {
    // Parked memory is rank-local and dies with the rank. Under a fault
    // session deferred nodes go back through the queue instead -- queue
    // contents survive a kill via the adoption path, so composition with
    // the detector/lease machinery is preserved.
    Task t = tc_.task_create(sizeof(DagBody), dispatch_handle_);
    t.body_as<DagBody>().node = id;
    tc_.add(me, kAffinityLow, t);
    return;
  }
  parked_.push_back({id, group});
  SCIOTO_METRIC_GAUGE(me, metrics::Gauge::DagParked, parked_.size());
}

bool DagScheduler::gates_look_open(const ParkEntry& e) {
  // Advisory one-sided reads; the dispatch re-checks authoritatively (the
  // CAS can still lose a race and re-defer, which is harmless).
  if (!is_dyn(e.id)) {
    const Node& nd = nodes_[static_cast<std::size_t>(e.id)];
    for (std::int32_t ei : nd.vin) {
      const VEdge& ve = vedges_[static_cast<std::size_t>(ei)];
      std::uint64_t v = 0;
      rt_.get_u64_with_retry(
          seg_, nd.home, v_base_ + static_cast<std::size_t>(ve.slot) * 8, &v);
      if (v == 0) {
        return false;
      }
    }
  }
  if (e.group != kNoGroup) {
    std::uint64_t w = 0;
    rt_.get_u64_with_retry(seg_, lock_home(e.group), lock_offset(e.group),
                           &w);
    if (w != 0) {
      return false;
    }
  }
  return true;
}

std::uint64_t DagScheduler::retry_parked() {
  if (parked_.empty()) {
    return 0;
  }
  std::uint64_t injected = 0;
  for (std::size_t i = 0; i < parked_.size();) {
    if (gates_look_open(parked_[i])) {
      Task t = tc_.task_create(sizeof(DagBody), dispatch_handle_);
      t.body_as<DagBody>().node = parked_[i].id;
      tc_.add(rt_.me(), kAffinityHigh, t);
      parked_.erase(parked_.begin() + static_cast<std::ptrdiff_t>(i));
      ++injected;
    } else {
      ++i;
    }
  }
  if (injected > 0) {
    SCIOTO_METRIC_GAUGE(rt_.me(), metrics::Gauge::DagParked, parked_.size());
  }
  return injected;
}

// ---- Streaming build -----------------------------------------------------

NodeId DagScheduler::spawn_child(KindId kind, Rank home, const void* args,
                                 std::int32_t len, std::int64_t extra_deps,
                                 GroupId group, std::int32_t parent_depth) {
  SCIOTO_CHECK_MSG(in_node_, "spawn outside a node callback");
  SCIOTO_REQUIRE(kind >= 0 && static_cast<std::size_t>(kind) < kinds_.size(),
                 "spawn: unknown kind " << kind
                     << " (register_kind is replicated, like callbacks)");
  SCIOTO_REQUIRE(home >= 0 && home < rt_.nprocs(),
                 "spawn: invalid home rank " << home);
  SCIOTO_REQUIRE(len >= 0 && len <= cfg_.max_dynamic_body,
                 "spawn: args length " << len << " exceeds max_dynamic_body "
                                       << cfg_.max_dynamic_body);
  SCIOTO_REQUIRE(extra_deps >= 0, "spawn: negative extra_deps");
  SCIOTO_REQUIRE(group == kNoGroup || (group >= 0 && group < ngroups_),
                 "spawn: unknown conflict group " << group);
  // Reserve an arena slot on the child's home with a one-sided cursor
  // bump; the id is usable immediately, the descriptor publishes when this
  // callback completes.
  std::int64_t idx = rt_.fetch_add(seg_, home, 0, 1);
  SCIOTO_REQUIRE(idx < cfg_.max_dynamic_per_rank,
                 "dynamic-node arena on rank "
                     << home << " is full (max_dynamic_per_rank="
                     << cfg_.max_dynamic_per_rank << ")");
  StagedChild c;
  c.id = dyn_node_id(home, idx);
  c.home = home;
  c.kind = kind;
  c.group = group;
  c.depth = parent_depth + 1;
  c.deps = 1 + extra_deps;  // the +1 is the parent hold
  if (len > 0) {
    c.body.assign(static_cast<const std::byte*>(args),
                  static_cast<const std::byte*>(args) + len);
  }
  staged_.push_back(std::move(c));
  stats_.dyn_spawned++;
  return staged_.back().id;
}

void DagScheduler::stage_child_edge(NodeId pred, NodeId succ) {
  SCIOTO_CHECK_MSG(in_node_, "child_edge outside a node callback");
  SCIOTO_REQUIRE(pred != succ, "child_edge: self-dependency on " << pred);
  StagedChild* p = nullptr;
  StagedChild* s = nullptr;
  for (StagedChild& c : staged_) {
    if (c.id == pred) p = &c;
    if (c.id == succ) s = &c;
  }
  SCIOTO_REQUIRE(p != nullptr && s != nullptr,
                 "child_edge: both ends must be children spawned by this "
                 "callback (pred=" << pred << ", succ=" << succ << ")");
  SCIOTO_REQUIRE(
      p->succ.size() < static_cast<std::size_t>(cfg_.max_dynamic_succ),
      "child_edge: node " << pred << " exceeds max_dynamic_succ "
                          << cfg_.max_dynamic_succ);
  p->succ.push_back(succ);
  s->deps++;
}

void DagScheduler::publish_and_release_children() {
  if (staged_.empty()) {
    return;
  }
  for (const StagedChild& c : staged_) {
    std::memset(pub_buf_.data(), 0, pub_buf_.size());
    DynHeader h;
    h.kind = c.kind;
    h.group = c.group;
    h.depth = c.depth;
    h.body_len = static_cast<std::int32_t>(c.body.size());
    h.nsucc = static_cast<std::int32_t>(c.succ.size());
    std::memcpy(pub_buf_.data(), &h, sizeof(h));
    std::memcpy(pub_buf_.data() + sizeof(h), c.succ.data(),
                c.succ.size() * sizeof(NodeId));
    std::memcpy(pub_buf_.data() + sizeof(h) +
                    static_cast<std::size_t>(cfg_.max_dynamic_succ) *
                        sizeof(NodeId),
                c.body.data(), c.body.size());
    const auto idx = static_cast<std::size_t>(dyn_idx(c.id));
    rt_.put(seg_, c.home, desc_base_ + idx * desc_stride_, pub_buf_.data(),
            desc_stride_);
    // Plain put of the counter is safe: the only writer until the release
    // fetch_add below is this thread, and that RMW publishes both words to
    // every later decrementer.
    rt_.put(seg_, c.home, dyn_ctr_base_ + idx * 8, &c.deps,
            sizeof(std::int64_t));
  }
  // Release the parent holds only after every sibling is published, so a
  // child firing now may already name its siblings as successors.
  for (const StagedChild& c : staged_) {
    decrement(c.id, 1);
  }
  staged_.clear();
}

// ---- Data versioning -----------------------------------------------------

void DagScheduler::bump_versions(const Node& nd) {
  // Flush the payload before announcing it: one fence per distinct data
  // owner covers all edges naming it.
  for (std::size_t i = 0; i < nd.vout.size(); ++i) {
    const Rank owner =
        vedges_[static_cast<std::size_t>(nd.vout[i])].data.owner;
    bool seen = false;
    for (std::size_t j = 0; j < i; ++j) {
      if (vedges_[static_cast<std::size_t>(nd.vout[j])].data.owner == owner) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      rt_.fence(owner);
    }
  }
  for (std::int32_t ei : nd.vout) {
    const VEdge& e = vedges_[static_cast<std::size_t>(ei)];
    const Node& succ = nodes_[static_cast<std::size_t>(e.succ)];
    rt_.put_word_reliable(seg_, succ.home,
                          v_base_ + static_cast<std::size_t>(e.slot) * 8, 1,
                          sizeof(std::uint64_t));
  }
}

// ---- Statistics ----------------------------------------------------------

DagStats DagScheduler::stats_global() {
  struct Packed {
    std::uint64_t v[8];
  } p{{stats_.nodes_run, stats_.nodes_fired, stats_.remote_fires,
       stats_.conflict_retries, stats_.version_waits, stats_.dyn_spawned,
       stats_.satisfies, stats_.max_depth}};
  Packed sum = rt_.allreduce(p, [](Packed a, const Packed& b) {
    for (int i = 0; i < 7; ++i) a.v[i] += b.v[i];
    a.v[7] = std::max(a.v[7], b.v[7]);
    return a;
  });
  DagStats g;
  g.nodes_run = sum.v[0];
  g.nodes_fired = sum.v[1];
  g.remote_fires = sum.v[2];
  g.conflict_retries = sum.v[3];
  g.version_waits = sum.v[4];
  g.dyn_spawned = sum.v[5];
  g.satisfies = sum.v[6];
  g.max_depth = sum.v[7];
  return g;
}

}  // namespace scioto::dag
