// The dependency engine: a dataflow DAG scheduler over task collections.
//
// This subsystem promotes the paper's §8 sketch ("extending our independent
// task model with support for tasks that exhibit arbitrary inter-task
// dependencies") from the old TaskDag stub into a real engine, borrowing
// two ideas from the related work:
//
//   * swiftsim-style *conflict edges*: nodes sharing a conflict group
//     serialize without ordering. Each group owns one CAS lock word in
//     PGAS (homed round-robin); a dispatch that finds it held defers the
//     node and retries, so mutually exclusive updates to the same datum
//     need no artificial ordering edges and keep full commutativity.
//   * DuctTeip-style *data versioning* for remote dependencies: an edge
//     may carry a (seg, owner, offset, len) record describing the payload
//     the producer writes. The producer bumps a per-edge version slot
//     homed on the consumer's home rank only after fencing the payload;
//     the consumer's dispatch re-checks the slot and defers until the bump
//     lands. This gives read-after-write safety for PGAS data without any
//     barrier, even though the ready-decrement (a cheap control message)
//     can overtake the bulk data on the wire.
//
// Mechanics (same counter discipline as the retired stub, hardened):
// every node carries a remaining-dependency counter homed on the node's
// home rank; completing a task decrements each successor's counter with a
// one-sided fetch-and-add, and the decrement that reaches zero fires the
// successor into the split queue with high affinity on its home rank.
// Ready nodes still migrate freely through work stealing, so dataflow
// scheduling composes with the paper's load balancing -- and, under a
// fault session, with dead-rank queue adoption (deferred nodes re-enter
// the queue rather than rank-local parking, so they are adoptable).
//
// Graphs are built *replicated*: every rank makes identical add_node /
// add_edge / conflict_group / register_kind calls (the SPMD discipline of
// callback registration), keeping node bodies local everywhere a task
// might execute. On top of the static graph, *dynamic* nodes may be
// spawned while executing (NodeCtx::spawn from inside any node body):
// their descriptors -- a collectively pre-registered kind id plus POD
// arguments -- are written one-sided into an arena on the child's home
// rank, enabling recursive task graphs without stopping the machine.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "scioto/task_collection.hpp"

namespace scioto::dag {

/// Node identifier. Static nodes are dense indices [0, num_nodes());
/// dynamic nodes pack (home, arena index) under kDynBit. Ids are valid on
/// every rank.
using NodeId = std::int64_t;
/// Conflict (mutual-exclusion) group handle from conflict_group().
using GroupId = std::int32_t;
/// Handle of a collectively registered dynamic-node kind.
using KindId = std::int32_t;

inline constexpr GroupId kNoGroup = -1;

/// DuctTeip-style data-version record attached to an edge: the producer
/// writes `len` bytes at (seg, owner, offset); the consumer's dispatch
/// waits until the producer's post-fence version bump lands. The record is
/// descriptive (it names the payload for the fence), not a transfer.
struct DataDep {
  pgas::SegId seg = -1;
  Rank owner = kNoRank;
  std::size_t offset = 0;
  std::size_t len = 0;
};

struct DagConfig {
  /// Capacity of each rank's dynamic-node arena (descriptors + counters).
  std::int64_t max_dynamic_per_rank = 1 << 12;
  /// Max POD argument bytes a dynamic node may carry.
  std::int32_t max_dynamic_body = 64;
  /// Max successors recorded inline in one dynamic node's descriptor.
  std::int32_t max_dynamic_succ = 8;
};

/// Per-rank execution statistics (summable; max_depth maxes).
struct DagStats {
  std::uint64_t nodes_run = 0;        // nodes executed by this rank
  std::uint64_t nodes_fired = 0;      // zero-reaching decrements + roots
  std::uint64_t remote_fires = 0;     // fired nodes homed on another rank
  std::uint64_t conflict_retries = 0; // dispatches bounced off a held lock
  std::uint64_t version_waits = 0;    // dispatches deferred on a version
  std::uint64_t dyn_spawned = 0;      // dynamic children this rank spawned
  std::uint64_t satisfies = 0;        // manual satisfy() decrements issued
  std::uint64_t max_depth = 0;        // deepest node this rank executed
};

class DagScheduler;

/// Execution context handed to a node body: identity, critical-path depth,
/// dynamic arguments, and the streaming-build interface.
class NodeCtx {
 public:
  NodeId id() const { return id_; }
  /// Longest-path depth from the static roots (parent depth + 1 for
  /// dynamic nodes).
  std::int32_t depth() const { return depth_; }
  /// POD argument bytes of a dynamic node (nullptr for static nodes).
  const void* args() const { return args_; }
  std::int32_t args_len() const { return args_len_; }
  DagScheduler& dag() { return dag_; }

  /// Spawns a dynamic child of kind `kind` homed on `home`, carrying `len`
  /// bytes of POD arguments. The child always depends on this node
  /// completing (the parent edge) plus `extra_deps` further decrements
  /// delivered via child_edge() or DagScheduler::satisfy(). satisfy() on
  /// the returned id is legal only after this callback has returned (the
  /// child publishes at completion). Returns the child's id.
  NodeId spawn(KindId kind, Rank home, const void* args = nullptr,
               std::int32_t len = 0, std::int64_t extra_deps = 0,
               GroupId group = kNoGroup);
  /// Orders two children spawned by *this* callback: `succ` additionally
  /// waits for `pred`. (Edges between children of different invocations go
  /// through extra_deps + satisfy().)
  void child_edge(NodeId pred, NodeId succ);

 private:
  friend class DagScheduler;
  NodeCtx(DagScheduler& dag, NodeId id, std::int32_t depth, const void* args,
          std::int32_t args_len)
      : dag_(dag), id_(id), depth_(depth), args_(args), args_len_(args_len) {}
  DagScheduler& dag_;
  NodeId id_;
  std::int32_t depth_;
  const void* args_;
  std::int32_t args_len_;
};

using NodeFn = std::function<void(NodeCtx&)>;

class DagScheduler {
 public:
  /// Member alias so the retired stub's `TaskDag::NodeId` spelling keeps
  /// compiling through the deprecated alias in scioto/deps.hpp.
  using NodeId = ::scioto::dag::NodeId;

  /// Collective: registers the internal dispatch callback on `tc` (the
  /// same-order rule of callback registration applies).
  explicit DagScheduler(TaskCollection& tc, DagConfig cfg = {});

  // ---- Replicated build (identical calls on every rank) ----
  /// Adds a node homed on `home`, optionally in a conflict group. `fn`
  /// runs on whichever rank executes the node.
  NodeId add_node(Rank home, NodeFn fn, GroupId group = kNoGroup);
  /// Compatibility overload (the retired TaskDag signature).
  NodeId add_node(Rank home, std::function<void()> fn);
  /// `succ` cannot start until `pred` completed. Rejects self-edges,
  /// out-of-range ids, and dynamic ids at call time.
  void add_edge(NodeId pred, NodeId succ);
  /// Same, with a data-version record: `succ`'s dispatch additionally
  /// waits until `pred`'s post-fence version bump for this payload lands
  /// (read-after-write safety for the named PGAS bytes, no barrier).
  void add_edge(NodeId pred, NodeId succ, const DataDep& data);
  /// Creates a conflict group: nodes given this group serialize without
  /// ordering (at most one runs at a time, in any order). A node belongs
  /// to at most one group, which also bounds lock holds to one per node
  /// (no deadlock by construction).
  GroupId conflict_group();
  void set_group(NodeId id, GroupId group);
  /// Registers a dynamic-node kind (replicated, like callbacks); dynamic
  /// spawns name kinds by id so bodies stay local everywhere.
  KindId register_kind(NodeFn fn);

  /// Static nodes added so far (dynamic nodes are not counted).
  std::size_t num_nodes() const { return nodes_.size(); }

  // ---- Execution ----
  /// Collective: validates the graph (throws scioto::Error naming the
  /// offending cycle's node ids if one exists), allocates the control
  /// segment, seeds the roots, and processes the collection until every
  /// node -- including dynamically spawned ones -- has executed.
  void execute();
  /// Manual one-sided decrement of `id`'s dependency counter (joins whose
  /// shape is only known at run time); callable from any rank while
  /// execute() is in flight. The zero-reaching call fires the node.
  void satisfy(NodeId id, std::int64_t n = 1);

  // ---- Statistics ----
  const DagStats& stats_local() const { return stats_; }
  /// Collective: counters summed (max_depth maxed) over all ranks.
  DagStats stats_global();

 private:
  struct Node {
    Rank home = 0;
    NodeFn fn;
    GroupId group = kNoGroup;
    std::int64_t deps = 0;          // control in-degree (incl. versioned)
    std::int32_t depth = 0;         // longest path from a root
    std::int64_t home_slot = -1;    // counter index on the home rank
    std::vector<NodeId> successors;
    std::vector<std::int32_t> vin;  // versioned in-edges (vedges_ indices)
    std::vector<std::int32_t> vout; // versioned out-edges to bump
  };
  /// A versioned edge; `slot` indexes the version word on succ's home.
  struct VEdge {
    NodeId pred = -1;
    NodeId succ = -1;
    DataDep data;
    std::int64_t slot = -1;
  };
  struct DagBody {
    NodeId node;
  };
  /// A deferred node parked on this rank until its gate opens.
  struct ParkEntry {
    NodeId id;
    GroupId group;
  };
  /// A dynamic child staged between spawn() and the parent's completion.
  struct StagedChild {
    NodeId id;
    Rank home;
    KindId kind;
    GroupId group;
    std::int32_t depth;
    std::int64_t deps;  // includes the +1 parent hold
    std::vector<std::byte> body;
    std::vector<NodeId> succ;
  };

  static constexpr NodeId kDynBit = NodeId{1} << 62;
  static bool is_dyn(NodeId id) { return (id & kDynBit) != 0; }
  static NodeId dyn_node_id(Rank home, std::int64_t idx) {
    return kDynBit | (static_cast<NodeId>(home) << 32) | idx;
  }
  static Rank dyn_home(NodeId id) {
    return static_cast<Rank>((id >> 32) & 0x3fffffff);
  }
  static std::int64_t dyn_idx(NodeId id) { return id & 0xffffffff; }
  static std::int32_t id32(NodeId id) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(id));
  }

  void run_node(TaskContext& ctx);
  void decrement(NodeId succ, std::int64_t delta);
  void fire(NodeId id, Rank home, std::int32_t depth);
  void defer(NodeId id, GroupId group, bool version_wait);
  bool gates_look_open(const ParkEntry& e);
  std::uint64_t retry_parked();
  void publish_and_release_children();
  void bump_versions(const Node& n);
  void check_acyclic_and_depths();

  Rank lock_home(GroupId g) const { return g % rt_.nprocs(); }
  std::size_t lock_offset(GroupId g) const {
    return lock_base_ +
           static_cast<std::size_t>(g / rt_.nprocs()) * sizeof(std::int64_t);
  }
  std::size_t static_ctr_offset(NodeId id) const {
    return ctr_base_ + static_cast<std::size_t>(
                           nodes_[static_cast<std::size_t>(id)].home_slot) *
                           sizeof(std::int64_t);
  }

  TaskCollection& tc_;
  pgas::Runtime& rt_;
  DagConfig cfg_;
  TaskHandle dispatch_handle_ = kInvalidHandle;
  std::vector<Node> nodes_;
  std::vector<VEdge> vedges_;
  std::vector<NodeFn> kinds_;
  GroupId ngroups_ = 0;
  std::int64_t nedges_ = 0;
  std::vector<std::int64_t> slots_per_rank_;   // static counter slots
  std::vector<std::int64_t> vslots_per_rank_;  // version slots
  pgas::SegId seg_ = -1;
  // Per-rank patch layout (identical on every rank): [dyn cursor][static
  // counters][version slots][group locks][dyn counters][descriptor arena].
  std::size_t ctr_base_ = 0;
  std::size_t v_base_ = 0;
  std::size_t lock_base_ = 0;
  std::size_t dyn_ctr_base_ = 0;
  std::size_t desc_base_ = 0;
  std::size_t desc_stride_ = 0;
  DagStats stats_;
  std::vector<ParkEntry> parked_;
  std::vector<StagedChild> staged_;
  std::vector<std::byte> dyn_buf_;  // descriptor fetch scratch
  std::vector<std::byte> pub_buf_;  // descriptor publish scratch
  bool executed_ = false;
  bool running_ = false;
  bool in_node_ = false;

  friend class NodeCtx;
  NodeId spawn_child(KindId kind, Rank home, const void* args,
                     std::int32_t len, std::int64_t extra_deps, GroupId group,
                     std::int32_t parent_depth);
  void stage_child_edge(NodeId pred, NodeId succ);
};

}  // namespace scioto::dag
