// C veneer over dag::DagScheduler, layered on the tc_t handles of
// scioto_c.cpp (same per-rank table discipline: handles are dense indices
// identical on every rank because the build is replicated).
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "dag/dag.hpp"
#include "scioto/scioto_c.h"

namespace {

struct DagCState {
  std::mutex m;
  // Indexed [rank][handle]; entries are never erased within a run so the
  // dense handles stay aligned across ranks even after destroys.
  std::vector<std::vector<std::unique_ptr<scioto::dag::DagScheduler>>> dags;
};

DagCState& state() {
  static DagCState s;
  return s;
}

scioto::dag::DagScheduler& scheduler(scioto_dag_t h) {
  DagCState& s = state();
  const auto me =
      static_cast<std::size_t>(scioto::capi::bound_runtime().me());
  SCIOTO_REQUIRE(me < s.dags.size(), "scioto_dag handle before any create");
  auto& mine = s.dags[me];
  SCIOTO_REQUIRE(h >= 0 && static_cast<std::size_t>(h) < mine.size() &&
                     mine[static_cast<std::size_t>(h)] != nullptr,
                 "invalid or destroyed scioto_dag handle " << h);
  return *mine[static_cast<std::size_t>(h)];
}

void copy_error(const char* what, char* errbuf, int errbuf_len) {
  if (errbuf != nullptr && errbuf_len > 0) {
    std::strncpy(errbuf, what, static_cast<std::size_t>(errbuf_len) - 1);
    errbuf[errbuf_len - 1] = '\0';
  }
}

}  // namespace

extern "C" {

scioto_dag_t scioto_dag_create(tc_t tc) {
  scioto::TaskCollection& coll = scioto::capi::lookup_collection(tc);
  auto dag = std::make_unique<scioto::dag::DagScheduler>(coll);
  DagCState& s = state();
  std::lock_guard<std::mutex> g(s.m);
  const auto n =
      static_cast<std::size_t>(scioto::capi::bound_runtime().nprocs());
  if (s.dags.size() < n) {
    s.dags.resize(n);
  }
  auto& mine =
      s.dags[static_cast<std::size_t>(scioto::capi::bound_runtime().me())];
  mine.push_back(std::move(dag));
  return static_cast<scioto_dag_t>(mine.size() - 1);
}

void scioto_dag_destroy(scioto_dag_t dag) {
  (void)scheduler(dag);  // validate
  DagCState& s = state();
  std::lock_guard<std::mutex> g(s.m);
  s.dags[static_cast<std::size_t>(scioto::capi::bound_runtime().me())]
        [static_cast<std::size_t>(dag)] = nullptr;
}

scioto_dag_node_t scioto_dag_add_node(scioto_dag_t dag, int home,
                                      scioto_dag_node_fn fn, void* user,
                                      int group) {
  if (fn == nullptr) {
    return -1;
  }
  try {
    return scheduler(dag).add_node(
        home, [fn, user](scioto::dag::NodeCtx&) { fn(user); },
        static_cast<scioto::dag::GroupId>(group));
  } catch (const scioto::Error&) {
    return -1;
  }
}

int scioto_dag_add_edge(scioto_dag_t dag, scioto_dag_node_t pred,
                        scioto_dag_node_t succ, char* errbuf,
                        int errbuf_len) {
  try {
    scheduler(dag).add_edge(pred, succ);
    return 0;
  } catch (const scioto::Error& e) {
    copy_error(e.what(), errbuf, errbuf_len);
    return -1;
  }
}

int scioto_dag_conflict_group(scioto_dag_t dag) {
  return scheduler(dag).conflict_group();
}

int scioto_dag_execute(scioto_dag_t dag, char* errbuf, int errbuf_len) {
  try {
    scheduler(dag).execute();
    return 0;
  } catch (const scioto::Error& e) {
    copy_error(e.what(), errbuf, errbuf_len);
    return -1;
  }
}

void scioto_dag_stats_get(scioto_dag_t dag, scioto_dag_stats_t* out) {
  SCIOTO_REQUIRE(out != nullptr, "scioto_dag_stats_get: NULL out");
  scioto::dag::DagStats g = scheduler(dag).stats_global();
  out->nodes_run = g.nodes_run;
  out->nodes_fired = g.nodes_fired;
  out->remote_fires = g.remote_fires;
  out->conflict_retries = g.conflict_retries;
  out->version_waits = g.version_waits;
  out->dyn_spawned = g.dyn_spawned;
  out->satisfies = g.satisfies;
  out->max_depth = g.max_depth;
}

}  // extern "C"
