#include "baselines/mpi_ws.hpp"

#include <algorithm>

namespace scioto::baselines {

MpiWorkStealing::MpiWorkStealing(pgas::Runtime& rt, Config cfg)
    : rt_(rt), cfg_(cfg),
      rng_(derive_seed(rt.seed(), rt.me(), /*stream=*/0x35)) {}

void MpiWorkStealing::spawn(const void* task) {
  std::vector<std::byte> rec(cfg_.task_bytes);
  std::memcpy(rec.data(), task, cfg_.task_bytes);
  deque_.push_back(std::move(rec));
  // The steal stack maintains the same record copies and index bookkeeping
  // as any stealable work queue; charge it like one.
  rt_.charge(rt_.machine().local_insert);
}

void MpiWorkStealing::reply_to_steal(Rank thief) {
  // Ship up to `chunk` tasks from the oldest (FIFO) end; an empty reply
  // still unblocks the thief.
  int n = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(cfg_.chunk),
                            deque_.size() / 2));
  std::vector<std::byte> payload(sizeof(std::int32_t) +
                                 static_cast<std::size_t>(n) *
                                     cfg_.task_bytes);
  std::int32_t count = n;
  std::memcpy(payload.data(), &count, sizeof(count));
  for (int i = 0; i < n; ++i) {
    std::memcpy(payload.data() + sizeof(count) +
                    static_cast<std::size_t>(i) * cfg_.task_bytes,
                deque_.front().data(), cfg_.task_bytes);
    deque_.pop_front();
  }
  if (n > 0) {
    moved_work_ = true;  // the token wave must re-vote (Dijkstra coloring)
  }
  rt_.send(thief, kTagStealRsp, payload.data(), payload.size());
  ++stats_.requests_serviced;
}

bool MpiWorkStealing::service() {
  ++stats_.polls;
  pgas::MsgInfo info;
  while (rt_.iprobe(pgas::kAnyRank, kTagStealReq, &info)) {
    std::byte dummy;
    rt_.try_recv(info.from, kTagStealReq, &dummy, sizeof(dummy), nullptr);
    reply_to_steal(info.from);
  }
  // Down-wave tokens are forwarded immediately (forwarding is independent
  // of idleness; only the vote requires being idle).
  std::uint64_t wave;
  while (rt_.try_recv(pgas::kAnyRank, kTagTokenDown, &wave, sizeof(wave),
                      nullptr)) {
    if (wave > wave_seen_) {
      wave_seen_ = wave;
      for (int s = 0; s < 2; ++s) {
        if (has_child(s)) {
          rt_.send(child(s), kTagTokenDown, &wave_seen_, sizeof(wave_seen_));
        }
      }
    }
  }
  UpToken up;
  while (rt_.try_recv(pgas::kAnyRank, kTagTokenUp, &up, sizeof(up),
                      nullptr)) {
    child_wave_[up.child_slot] = up.wave;
    child_black_[up.child_slot] = up.black != 0;
  }
  std::int32_t term;
  if (rt_.try_recv(pgas::kAnyRank, kTagTerm, &term, sizeof(term), nullptr)) {
    for (int s = 0; s < 2; ++s) {
      if (has_child(s)) {
        rt_.send(child(s), kTagTerm, &term, sizeof(term));
      }
    }
    terminated_ = true;
    return true;
  }
  return false;
}

bool MpiWorkStealing::token_progress() {
  // Root launches the next wave once the previous one concluded.
  if (rt_.me() == 0 && wave_seen_ == voted_wave_) {
    ++wave_seen_;
    ++stats_.token_waves;
    for (int s = 0; s < 2; ++s) {
      if (has_child(s)) {
        rt_.send(child(s), kTagTokenDown, &wave_seen_, sizeof(wave_seen_));
      }
    }
  }
  if (wave_seen_ <= voted_wave_) {
    return false;
  }
  // Vote when idle (caller guarantees) and both children reported.
  bool children_in = true;
  bool children_black = false;
  for (int s = 0; s < 2; ++s) {
    if (!has_child(s)) continue;
    if (child_wave_[s] != wave_seen_) {
      children_in = false;
      break;
    }
    children_black = children_black || child_black_[s];
  }
  if (!children_in) {
    return false;
  }
  bool black = children_black || moved_work_;
  moved_work_ = false;
  voted_wave_ = wave_seen_;
  if (rt_.me() == 0) {
    if (!black) {
      std::int32_t term = 1;
      for (int s = 0; s < 2; ++s) {
        if (has_child(s)) {
          rt_.send(child(s), kTagTerm, &term, sizeof(term));
        }
      }
      terminated_ = true;
      return true;
    }
    return false;  // black: next call launches a fresh wave
  }
  UpToken up;
  up.wave = voted_wave_;
  up.black = black ? 1 : 0;
  up.child_slot = static_cast<std::int32_t>((rt_.me() - 1) % 2);
  rt_.send((rt_.me() - 1) / 2, kTagTokenUp, &up, sizeof(up));
  return false;
}

MpiWorkStealing::Stats MpiWorkStealing::process(
    const std::function<void(const void*)>& execute) {
  rt_.barrier();
  stats_ = Stats{};
  moved_work_ = false;
  wave_seen_ = voted_wave_ = 0;
  child_wave_[0] = child_wave_[1] = 0;
  child_black_[0] = child_black_[1] = false;
  terminated_ = false;
  TimeNs t0 = rt_.now();
  const int n = rt_.nprocs();
  int since_poll = 0;
  std::vector<std::byte> task(cfg_.task_bytes);
  std::vector<std::byte> rsp(sizeof(std::int32_t) +
                             static_cast<std::size_t>(cfg_.chunk) *
                                 cfg_.task_bytes);

  while (!terminated_) {
    if (!deque_.empty()) {
      if (++since_poll >= cfg_.poll_interval) {
        since_poll = 0;
        if (service()) break;
      }
      task = std::move(deque_.back());
      deque_.pop_back();
      rt_.charge(rt_.machine().local_get);
      execute(task.data());
      ++stats_.tasks_executed;
      continue;
    }

    // Idle path. Single rank: empty deque means done.
    if (n == 1) {
      break;
    }
    if (service()) break;

    // One steal attempt: request, then wait for the reply while staying
    // responsive to requests aimed at us (deadlock avoidance).
    Rank victim =
        static_cast<Rank>(rng_.next_below(static_cast<std::uint64_t>(n - 1)));
    if (victim >= rt_.me()) {
      ++victim;
    }
    std::byte ping{1};
    rt_.send(victim, kTagStealReq, &ping, sizeof(ping));
    ++stats_.steals_attempted;
    bool replied = false;
    while (!replied && !terminated_) {
      if (rt_.try_recv(victim, kTagStealRsp, rsp.data(), rsp.size(),
                       nullptr)) {
        std::int32_t count;
        std::memcpy(&count, rsp.data(), sizeof(count));
        for (std::int32_t i = 0; i < count; ++i) {
          deque_.emplace_back(
              rsp.begin() + sizeof(count) +
                  static_cast<std::ptrdiff_t>(i) *
                      static_cast<std::ptrdiff_t>(cfg_.task_bytes),
              rsp.begin() + sizeof(count) +
                  static_cast<std::ptrdiff_t>(i + 1) *
                      static_cast<std::ptrdiff_t>(cfg_.task_bytes));
        }
        if (count > 0) {
          ++stats_.steals_successful;
          stats_.tasks_received += count;
          moved_work_ = true;  // receiving also blackens our next vote
        }
        replied = true;
      } else {
        if (service()) break;
        rt_.relax();
      }
    }
    if (terminated_) break;
    if (!deque_.empty()) {
      continue;  // got work
    }
    // Failed steal: give the termination wave a chance to advance.
    if (token_progress()) break;
    rt_.relax();
  }

  stats_.time_total = rt_.now() - t0;
  rt_.barrier();
  return stats_;
}

}  // namespace scioto::baselines
