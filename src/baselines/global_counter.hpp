// The "Original" dynamic load balancer of the paper's SCF and TCE codes
// (§6.2): every process holds the complete (replicated) task list and
// claims the next task by atomically incrementing one shared counter
// (GA's NXTVAL idiom).
//
// This scheme is locality-oblivious -- task i runs on whichever rank drew
// ticket i, regardless of where its data lives -- and the single counter
// serializes through its home rank's RMA service queue. Figures 5 and 6
// show the resulting scaling collapse relative to Scioto.
#pragma once

#include <functional>

#include "ga/counter.hpp"
#include "pgas/runtime.hpp"

namespace scioto::baselines {

class GlobalCounterScheduler {
 public:
  struct Stats {
    std::int64_t tasks_executed = 0;  // by this rank
    TimeNs time_total = 0;
  };

  /// Collective. The counter is homed on `home`.
  explicit GlobalCounterScheduler(pgas::Runtime& rt, Rank home = 0)
      : rt_(rt), counter_(rt, home) {}

  /// Collective. Processes tasks [0, num_tasks): each rank repeatedly
  /// draws the next ticket and runs `run_task(ticket)`. Returns when the
  /// list is exhausted on all ranks.
  Stats process(std::int64_t num_tasks,
                const std::function<void(std::int64_t)>& run_task) {
    counter_.reset(0);
    Stats st;
    TimeNs t0 = rt_.now();
    for (;;) {
      std::int64_t ticket = counter_.next();
      if (ticket >= num_tasks) {
        break;
      }
      run_task(ticket);
      ++st.tasks_executed;
    }
    rt_.barrier();
    st.time_total = rt_.now() - t0;
    return st;
  }

  /// Collective.
  void destroy() { counter_.destroy(); }

 private:
  pgas::Runtime& rt_;
  ga::SharedCounter counter_;
};

}  // namespace scioto::baselines
