// Two-sided (MPI-style) work stealing with explicit polling: the custom
// load balancer of the original UTS-MPI implementation the paper compares
// against (§6.2, citing Dinan et al., IPDPS 2007).
//
// Every process keeps a private deque of fixed-size task records (local
// push/pop are charged at the machine model's queue-operation costs: this
// "steal stack" maintains the same indexing/counting any stealable work
// queue does). Local execution pops LIFO; a thief sends a STEAL_REQ
// message to a random victim and blocks for the reply. Because the model
// is two-sided, a victim can only service the request when it *polls*
// between tasks (every cfg.poll_interval executions) -- the
// explicit-polling overhead and the thief's wait for the victim to reach
// a poll point are exactly the costs Scioto's one-sided steals avoid
// (Figures 7 and 8).
//
// Termination uses tree-structured token waves over two-sided messages
// (the message-passing analog of §5.2, standing in for the cancellable
// barriers of the original UTS-MPI): the root launches a wave down a
// binary tree when idle; idle ranks with all children reported pass a
// token up, colored black if they shipped or received tasks since their
// last vote. An all-white wave proves quiescence and the root broadcasts
// TERM down the tree -- O(log p) hops per wave, so the termination tail
// stays negligible even at 512 ranks.
#pragma once

#include <cstring>
#include <deque>
#include <functional>
#include <vector>

#include "base/rng.hpp"
#include "pgas/runtime.hpp"

namespace scioto::baselines {

class MpiWorkStealing {
 public:
  struct Config {
    /// Fixed task record size in bytes.
    std::size_t task_bytes = 64;
    /// Max tasks shipped per steal response.
    int chunk = 10;
    /// Tasks executed between polls for incoming steal requests.
    int poll_interval = 1;
  };

  struct Stats {
    std::int64_t tasks_executed = 0;
    std::int64_t steals_attempted = 0;
    std::int64_t steals_successful = 0;
    std::int64_t tasks_received = 0;
    std::int64_t requests_serviced = 0;
    std::int64_t polls = 0;
    std::int64_t token_waves = 0;  // root only
    TimeNs time_total = 0;
  };

  MpiWorkStealing(pgas::Runtime& rt, Config cfg);

  /// Adds a task record to the *local* deque (pre-seeding or spawned from
  /// a running task).
  void spawn(const void* task);

  std::size_t local_size() const { return deque_.size(); }

  /// Collective. Runs `execute(task_bytes)` on every task until global
  /// termination. `execute` may call spawn().
  Stats process(const std::function<void(const void*)>& execute);

 private:
  enum Tag {
    kTagStealReq = 1001,
    kTagStealRsp = 1002,
    kTagTokenDown = 1003,
    kTagTokenUp = 1004,
    kTagTerm = 1005,
  };
  struct UpToken {
    std::uint64_t wave = 0;
    std::int32_t black = 0;
    std::int32_t child_slot = 0;
  };

  bool has_child(int slot) const {
    return 2 * rt_.me() + 1 + slot < rt_.nprocs();
  }
  Rank child(int slot) const { return 2 * rt_.me() + 1 + slot; }

  /// Handles any pending steal requests / tokens / TERM. Returns true if
  /// a TERM was received.
  bool service();
  void reply_to_steal(Rank thief);
  /// Advances the termination-wave protocol; call only while idle with no
  /// outstanding steal request. Returns true on termination.
  bool token_progress();

  pgas::Runtime& rt_;
  Config cfg_;
  std::deque<std::vector<std::byte>> deque_;
  Xoshiro256 rng_;
  Stats stats_;

  // Termination-wave state (mirrors TerminationDetector's local half).
  bool moved_work_ = false;     // shipped or received tasks since last vote
  std::uint64_t wave_seen_ = 0;
  std::uint64_t voted_wave_ = 0;
  std::uint64_t child_wave_[2] = {0, 0};
  bool child_black_[2] = {false, false};
  bool terminated_ = false;
};

}  // namespace scioto::baselines
