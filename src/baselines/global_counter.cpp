#include "baselines/global_counter.hpp"

// Header-only implementation; this TU anchors the component in the build.
