#include "base/stats.hpp"

#include <sstream>

namespace scioto {

void Accumulator::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::int64_t n = n_ + other.n_;
  m2_ += other.m2_ +
         delta * delta * double(n_) * double(other.n_) / double(n);
  mean_ += delta * double(other.n_) / double(n);
  n_ = n;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

std::string Accumulator::summary(const std::string& unit) const {
  std::ostringstream oss;
  oss << "n=" << n_ << " mean=" << mean() << unit << " sd=" << stddev()
      << " min=" << min() << unit << " max=" << max() << unit;
  return oss.str();
}

namespace stats {

std::uint64_t percentile_rank(double p, std::uint64_t n) {
  if (n == 0) return 0;
  if (p <= 0.0) return 1;
  if (p >= 100.0) return n;
  auto k = static_cast<std::uint64_t>(std::ceil(p * double(n) / 100.0));
  if (k < 1) k = 1;
  if (k > n) k = n;
  return k;
}

std::uint64_t hist_count(const std::uint64_t* counts, int nbuckets) {
  std::uint64_t n = 0;
  for (int b = 0; b < nbuckets; ++b) n += counts[b];
  return n;
}

std::uint64_t hist_percentile(const std::uint64_t* counts, int nbuckets,
                              double p) {
  std::uint64_t n = hist_count(counts, nbuckets);
  std::uint64_t k = percentile_rank(p, n);
  if (k == 0) return 0;
  std::uint64_t cum = 0;
  for (int b = 0; b < nbuckets; ++b) {
    cum += counts[b];
    if (cum >= k) return log2_bucket_ceil(b);
  }
  return log2_bucket_ceil(nbuckets - 1);
}

}  // namespace stats

}  // namespace scioto
