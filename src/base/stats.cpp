#include "base/stats.hpp"

#include <sstream>

namespace scioto {

void Accumulator::add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / double(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::int64_t n = n_ + other.n_;
  m2_ += other.m2_ +
         delta * delta * double(n_) * double(other.n_) / double(n);
  mean_ += delta * double(other.n_) / double(n);
  n_ = n;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

std::string Accumulator::summary(const std::string& unit) const {
  std::ostringstream oss;
  oss << "n=" << n_ << " mean=" << mean() << unit << " sd=" << stddev()
      << " min=" << min() << unit << " max=" << max() << unit;
  return oss.str();
}

}  // namespace scioto
