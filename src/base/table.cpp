#include "base/table.hpp"

#include <cstdio>
#include <sstream>

#include "base/error.hpp"

namespace scioto {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SCIOTO_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  SCIOTO_REQUIRE(cells.size() == headers_.size(),
                 "row arity " << cells.size() << " != header arity "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt(std::int64_t v) { return std::to_string(v); }

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream oss;
  oss << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c == 0 ? "" : "  ");
      // Right-align numeric-looking cells, left-align the first column.
      std::size_t pad = width[c] - row[c].size();
      if (c == 0) {
        oss << row[c] << std::string(pad, ' ');
      } else {
        oss << std::string(pad, ' ') << row[c];
      }
    }
    oss << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  oss << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }

  // Machine-readable mirror.
  oss << "# csv: ";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    oss << (c ? "," : "") << headers_[c];
  }
  oss << "\n";
  for (const auto& row : rows_) {
    oss << "# csv: ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << (c ? "," : "") << row[c];
    }
    oss << "\n";
  }
  return oss.str();
}

void Table::print(const std::string& title) const {
  std::string s = render(title);
  std::fputs(s.c_str(), stdout);
  std::fputs("\n", stdout);
  std::fflush(stdout);
}

}  // namespace scioto
