#include "base/sha1.hpp"

#include <cstring>

namespace scioto {

namespace {

inline std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::reset() {
  state_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t(block[i * 4]) << 24) |
           (std::uint32_t(block[i * 4 + 1]) << 16) |
           (std::uint32_t(block[i * 4 + 2]) << 8) |
           std::uint32_t(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  total_bytes_ += len;

  if (buffered_ > 0) {
    std::size_t take = std::min(len, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, p, take);
    buffered_ += take;
    p += take;
    len -= take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (len >= 64) {
    process_block(p);
    p += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_.data(), p, len);
    buffered_ = len;
  }
}

Sha1::Digest Sha1::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  // Pad: 0x80, zeros, then the 64-bit big-endian bit length.
  const std::uint8_t pad80 = 0x80;
  update(&pad80, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(&zero, 1);
  }
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(len_be, 8);

  Digest d;
  for (int i = 0; i < 5; ++i) {
    d[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    d[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    d[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    d[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return d;
}

Sha1::Digest Sha1::hash(const void* data, std::size_t len) {
  Sha1 h;
  h.update(data, len);
  return h.finish();
}

std::string Sha1::hex(const Digest& d) {
  static const char* kHex = "0123456789abcdef";
  std::string s;
  s.reserve(kDigestBytes * 2);
  for (std::uint8_t b : d) {
    s.push_back(kHex[b >> 4]);
    s.push_back(kHex[b & 0xF]);
  }
  return s;
}

}  // namespace scioto
