// Minimal leveled logging to stderr.
//
// Benchmarks keep stdout clean for tables; diagnostics go through here.
// The level is read once from SCIOTO_LOG (error|warn|info|debug) or set
// programmatically; default is warn so tests stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace scioto {

enum class LogLevel { Error = 0, Warn = 1, Info = 2, Debug = 3 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Ambient execution context for log prefixes. When a runtime backend is
/// active, messages are prefixed with the emitting rank and its current
/// (virtual or wall) time so interleaved sim-backend logs are orderable:
///
///   [scioto DEBUG r3 @1234567ns] ...
///
/// Providers are registered by the execution backends (the sim Engine and
/// the pgas ThreadBackend); base/ itself has no upward dependency. A
/// provider fills rank/time_ns and returns true when it knows the calling
/// context; log_emit asks each registered provider in turn.
using LogContextFn = bool (*)(int& rank, long long& time_ns);

/// Registers a context provider (idempotent; at most 4 distinct providers).
void log_register_context(LogContextFn fn);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

}  // namespace scioto

#define SCIOTO_LOG(level, ...)                                         \
  do {                                                                 \
    if (static_cast<int>(level) <=                                     \
        static_cast<int>(::scioto::log_level())) {                     \
      std::ostringstream oss_;                                         \
      oss_ << __VA_ARGS__;                                             \
      ::scioto::detail::log_emit(level, oss_.str());                   \
    }                                                                  \
  } while (0)

#define SCIOTO_ERROR(...) SCIOTO_LOG(::scioto::LogLevel::Error, __VA_ARGS__)
#define SCIOTO_WARN(...) SCIOTO_LOG(::scioto::LogLevel::Warn, __VA_ARGS__)
#define SCIOTO_INFO(...) SCIOTO_LOG(::scioto::LogLevel::Info, __VA_ARGS__)
#define SCIOTO_DEBUG(...) SCIOTO_LOG(::scioto::LogLevel::Debug, __VA_ARGS__)
