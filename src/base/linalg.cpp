#include "base/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/error.hpp"

namespace scioto {

void matmul(const double* a, const double* b, double* c, std::int64_t m,
            std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      c[i * n + j] = 0.0;
    }
    for (std::int64_t p = 0; p < k; ++p) {
      double aip = a[i * k + p];
      if (aip == 0.0) continue;
      const double* brow = b + p * n;
      double* crow = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        crow[j] += aip * brow[j];
      }
    }
  }
}

double frobenius(const double* a, std::int64_t m, std::int64_t n) {
  double s = 0;
  for (std::int64_t i = 0; i < m * n; ++i) {
    s += a[i] * a[i];
  }
  return std::sqrt(s);
}

bool potrf_tile(double* a, std::int64_t b) {
  for (std::int64_t k = 0; k < b; ++k) {
    double d = a[k * b + k];
    for (std::int64_t t = 0; t < k; ++t) {
      d -= a[k * b + t] * a[k * b + t];
    }
    if (d <= 0.0) return false;
    d = std::sqrt(d);
    a[k * b + k] = d;
    for (std::int64_t i = k + 1; i < b; ++i) {
      double s = a[i * b + k];
      for (std::int64_t t = 0; t < k; ++t) {
        s -= a[i * b + t] * a[k * b + t];
      }
      a[i * b + k] = s / d;
    }
  }
  return true;
}

void trsm_tile(double* bmat, const double* l, std::int64_t b) {
  // Solve X * L^T = B row by row: column c of each row depends only on
  // earlier columns, so forward-substitute against L's rows.
  for (std::int64_t r = 0; r < b; ++r) {
    double* x = bmat + r * b;
    for (std::int64_t c = 0; c < b; ++c) {
      double s = x[c];
      for (std::int64_t t = 0; t < c; ++t) {
        s -= x[t] * l[c * b + t];
      }
      x[c] = s / l[c * b + c];
    }
  }
}

void syrk_tile(double* c, const double* a, std::int64_t b) {
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double s = 0;
      for (std::int64_t t = 0; t < b; ++t) {
        s += a[i * b + t] * a[j * b + t];
      }
      c[i * b + j] -= s;
    }
  }
}

void gemm_tile(double* c, const double* a, const double* bmat,
               std::int64_t b) {
  for (std::int64_t i = 0; i < b; ++i) {
    for (std::int64_t j = 0; j < b; ++j) {
      double s = 0;
      for (std::int64_t t = 0; t < b; ++t) {
        s += a[i * b + t] * bmat[j * b + t];
      }
      c[i * b + j] -= s;
    }
  }
}

void jacobi_eigensymm(std::vector<double> a, std::int64_t n,
                      std::vector<double>& eigenvalues,
                      std::vector<double>& eigenvectors, int max_sweeps) {
  SCIOTO_REQUIRE(static_cast<std::int64_t>(a.size()) == n * n,
                 "jacobi: matrix size mismatch");
  // V starts as identity and accumulates rotations.
  std::vector<double> v(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i * n + i)] = 1.0;
  }

  auto at = [&](std::int64_t i, std::int64_t j) -> double& {
    return a[static_cast<std::size_t>(i * n + j)];
  };
  auto vt = [&](std::int64_t i, std::int64_t j) -> double& {
    return v[static_cast<std::size_t>(i * n + j)];
  };

  const double tol = 1e-14;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = i + 1; j < n; ++j) {
        off += at(i, j) * at(i, j);
      }
    }
    if (off < tol * tol) {
      break;
    }
    for (std::int64_t p = 0; p < n - 1; ++p) {
      for (std::int64_t q = p + 1; q < n; ++q) {
        double apq = at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        double app = at(p, p), aqq = at(q, q);
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;

        for (std::int64_t i = 0; i < n; ++i) {
          double aip = at(i, p), aiq = at(i, q);
          at(i, p) = c * aip - s * aiq;
          at(i, q) = s * aip + c * aiq;
        }
        for (std::int64_t i = 0; i < n; ++i) {
          double api = at(p, i), aqi = at(q, i);
          at(p, i) = c * api - s * aqi;
          at(q, i) = s * api + c * aqi;
        }
        for (std::int64_t i = 0; i < n; ++i) {
          double vip = vt(i, p), viq = vt(i, q);
          vt(i, p) = c * vip - s * viq;
          vt(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  // Extract and sort eigenpairs ascending.
  std::vector<std::int64_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int64_t x, std::int64_t y) {
    return at(x, x) < at(y, y);
  });
  eigenvalues.assign(static_cast<std::size_t>(n), 0.0);
  eigenvectors.assign(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t col = 0; col < n; ++col) {
    std::int64_t src = order[static_cast<std::size_t>(col)];
    eigenvalues[static_cast<std::size_t>(col)] = at(src, src);
    for (std::int64_t i = 0; i < n; ++i) {
      eigenvectors[static_cast<std::size_t>(i * n + col)] = vt(i, src);
    }
  }
}

}  // namespace scioto
