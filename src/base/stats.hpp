// Streaming statistics accumulators used by the runtime's per-rank counters
// and by benchmark harnesses.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace scioto {

/// Welford one-pass accumulator: count / mean / variance / min / max.
class Accumulator {
 public:
  void add(double x);

  /// Merges another accumulator (Chan et al. parallel combination).
  void merge(const Accumulator& other);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * double(n_) : 0.0; }

  std::string summary(const std::string& unit = "") const;

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace scioto
