// Streaming statistics accumulators used by the runtime's per-rank counters
// and by benchmark harnesses, plus the log2-bucket histogram helpers shared
// by the metrics registry and the trace analyses.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace scioto {

/// Welford one-pass accumulator: count / mean / variance / min / max.
class Accumulator {
 public:
  void add(double x);

  /// Merges another accumulator (Chan et al. parallel combination).
  void merge(const Accumulator& other);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * double(n_) : 0.0; }

  std::string summary(const std::string& unit = "") const;

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

namespace stats {

// ---- Log2-bucket histograms ----
//
// Bucket b holds the values whose bit width is b: bucket 0 is exactly {0},
// bucket b >= 1 covers [2^(b-1), 2^b - 1]. 48 buckets cover durations up to
// ~78 hours in nanoseconds, which is beyond anything either backend can
// produce. Percentiles use the nearest-rank definition and report the
// ceiling of the selected bucket, so a reported p99 is an upper bound on
// the true p99 (tight to within 2x, the bucket resolution).

inline constexpr int kLog2Buckets = 48;

/// Bucket index for a value, clamped to [0, nbuckets).
inline int log2_bucket(std::uint64_t v, int nbuckets = kLog2Buckets) {
  int b = std::bit_width(v);
  return b < nbuckets ? b : nbuckets - 1;
}

/// Smallest value bucket `b` can hold (0 for bucket 0).
inline std::uint64_t log2_bucket_floor(int b) {
  return b <= 0 ? 0 : std::uint64_t{1} << (b - 1);
}

/// Largest value bucket `b` can hold assuming it was not clamped.
inline std::uint64_t log2_bucket_ceil(int b) {
  return b <= 0 ? 0 : (std::uint64_t{1} << b) - 1;
}

/// Nearest-rank index (1-based) of percentile p in a population of n:
/// the smallest k such that k/n >= p/100. p is clamped to [0, 100].
std::uint64_t percentile_rank(double p, std::uint64_t n);

/// Total population of a bucket-count array.
std::uint64_t hist_count(const std::uint64_t* counts, int nbuckets);

/// Percentile over a log2-bucket histogram: the ceiling of the bucket that
/// contains the nearest-rank sample. Returns 0 for an empty histogram.
std::uint64_t hist_percentile(const std::uint64_t* counts, int nbuckets,
                              double p);

}  // namespace stats

}  // namespace scioto
