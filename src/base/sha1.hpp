// SHA-1 message digest (RFC 3174), implemented from scratch.
//
// Used by the UTS benchmark as a splittable deterministic RNG: each tree
// node is described by a 20-byte digest, and child i's state is
// SHA1(parent_state || i). The implementation below is a straightforward,
// dependency-free rendition of the FIPS 180-1 algorithm.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace scioto {

/// Incremental SHA-1 hasher.
///
/// Usage:
///   Sha1 h;
///   h.update(buf, len);
///   Sha1::Digest d = h.finish();
class Sha1 {
 public:
  static constexpr std::size_t kDigestBytes = 20;
  using Digest = std::array<std::uint8_t, kDigestBytes>;

  Sha1() { reset(); }

  /// Re-initialize to the empty-message state.
  void reset();

  /// Absorb `len` bytes.
  void update(const void* data, std::size_t len);

  /// Finalize and return the digest. The hasher must be reset() before
  /// further use.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(const void* data, std::size_t len);

  /// Lowercase hex rendering of a digest (for tests and debugging).
  static std::string hex(const Digest& d);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

}  // namespace scioto
