// Error handling: a library exception type plus CHECK macros.
//
// Internal invariants use SCIOTO_CHECK (always on, they guard queue and
// termination-detection correctness); user-facing argument validation uses
// SCIOTO_REQUIRE which produces an Error with a formatted message.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace scioto {

/// Exception thrown for all user-facing Scioto errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& msg);
}  // namespace detail

}  // namespace scioto

/// Internal invariant check. Never compiled out: a violated invariant in the
/// task queue or termination detector must abort loudly, not corrupt results.
#define SCIOTO_CHECK(expr)                                                  \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::scioto::detail::fail("invariant", #expr, __FILE__, __LINE__, "");   \
    }                                                                       \
  } while (0)

#define SCIOTO_CHECK_MSG(expr, ...)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream oss_;                                              \
      oss_ << __VA_ARGS__;                                                  \
      ::scioto::detail::fail("invariant", #expr, __FILE__, __LINE__,        \
                             oss_.str());                                   \
    }                                                                       \
  } while (0)

/// Argument / precondition validation; throws scioto::Error.
#define SCIOTO_REQUIRE(expr, ...)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream oss_;                                              \
      oss_ << __VA_ARGS__;                                                  \
      throw ::scioto::Error(oss_.str());                                    \
    }                                                                       \
  } while (0)
