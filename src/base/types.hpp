// Common type aliases and small helpers shared across the Scioto codebase.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace scioto {

/// Identifier of a simulated or real process (an MPI/ARMCI-style "rank").
using Rank = int;

/// Virtual or wall-clock time in nanoseconds.
using TimeNs = std::int64_t;

inline constexpr Rank kNoRank = -1;
inline constexpr TimeNs kTimeNever = std::numeric_limits<TimeNs>::max();

/// Nanosecond literal helpers used by machine models and cost charging.
constexpr TimeNs ns(std::int64_t v) { return v; }
constexpr TimeNs us(double v) { return static_cast<TimeNs>(v * 1e3); }
constexpr TimeNs ms(double v) { return static_cast<TimeNs>(v * 1e6); }
constexpr TimeNs sec(double v) { return static_cast<TimeNs>(v * 1e9); }

constexpr double to_us(TimeNs t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(TimeNs t) { return static_cast<double>(t) / 1e6; }
constexpr double to_sec(TimeNs t) { return static_cast<double>(t) / 1e9; }

/// Integer ceiling division for sizes and block computations.
constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

/// Round `n` up to a multiple of `align` (align must be a power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace scioto
