#include "base/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace scioto {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("SCIOTO_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Warn;
}

std::atomic<int>& level_ref() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Debug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_ref().load()); }

void set_log_level(LogLevel level) {
  level_ref().store(static_cast<int>(level));
}

namespace {

// Small fixed provider table: registration is rare (backend construction),
// lookup happens on every emitted line. Slots fill once and are never
// removed; providers themselves report "not my context" when inactive.
constexpr int kMaxProviders = 4;
std::atomic<LogContextFn> g_providers[kMaxProviders] = {};

bool current_context(int& rank, long long& time_ns) {
  for (const auto& slot : g_providers) {
    LogContextFn fn = slot.load(std::memory_order_acquire);
    if (fn != nullptr && fn(rank, time_ns)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void log_register_context(LogContextFn fn) {
  if (fn == nullptr) return;
  for (auto& slot : g_providers) {
    LogContextFn cur = slot.load(std::memory_order_acquire);
    if (cur == fn) {
      return;  // already registered
    }
    if (cur == nullptr) {
      LogContextFn expected = nullptr;
      if (slot.compare_exchange_strong(expected, fn)) {
        return;
      }
      if (expected == fn) {
        return;  // lost the race to ourselves
      }
    }
  }
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  int rank = -1;
  long long time_ns = -1;
  if (current_context(rank, time_ns)) {
    std::fprintf(stderr, "[scioto %s r%d @%lldns] %s\n", level_name(level),
                 rank, time_ns, msg.c_str());
  } else {
    std::fprintf(stderr, "[scioto %s] %s\n", level_name(level), msg.c_str());
  }
}

}  // namespace detail

}  // namespace scioto
