#include "base/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace scioto {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("SCIOTO_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  return LogLevel::Warn;
}

std::atomic<int>& level_ref() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Debug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_ref().load()); }

void set_log_level(LogLevel level) {
  level_ref().store(static_cast<int>(level));
}

namespace detail {

void log_emit(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[scioto %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace detail

}  // namespace scioto
