// Aligned plain-text table output for benchmark harnesses.
//
// Every figure/table bench prints its series through this so the output is
// uniform, parseable (a `# csv:` block follows the pretty table), and easy
// to diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace scioto {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt(std::int64_t v);

  /// Renders an aligned table followed by a machine-readable CSV block.
  std::string render(const std::string& title) const;

  /// Renders and writes to stdout.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scioto
