// Small dense linear-algebra substrate: just enough for the SCF
// application's replicated density update (symmetric eigendecomposition
// via cyclic Jacobi) plus helpers used by tests and the matmul example.
//
// Matrices are row-major std::vector<double> with explicit dimensions;
// sizes here are O(100), so clarity beats blocking.
#pragma once

#include <cstdint>
#include <vector>

namespace scioto {

/// C = A(m x k) * B(k x n), row-major.
void matmul(const double* a, const double* b, double* c, std::int64_t m,
            std::int64_t k, std::int64_t n);

/// Frobenius norm of an m x n matrix.
double frobenius(const double* a, std::int64_t m, std::int64_t n);

// ---- Tile kernels for blocked (right-looking) Cholesky ----
// All tiles are row-major b x b. These are the four BLAS-level building
// blocks of the tiled factorization: the DAG Cholesky app composes them;
// a task's entire compute is one kernel call on tiles it fetched
// one-sided.

/// In-place unblocked Cholesky of a b x b tile: A = L * L^T, lower
/// triangle of `a` replaced by L (strict upper left untouched).
/// Returns false if a non-positive pivot is hit (A not SPD).
bool potrf_tile(double* a, std::int64_t b);

/// Triangular solve B = B * L^-T with L the lower-triangular potrf output
/// (the panel update: A[i][k] after potrf of A[k][k]).
void trsm_tile(double* bmat, const double* l, std::int64_t b);

/// Symmetric rank-b downdate C -= A * A^T (trailing diagonal tile).
void syrk_tile(double* c, const double* a, std::int64_t b);

/// General downdate C -= A * B^T (trailing off-diagonal tile).
void gemm_tile(double* c, const double* a, const double* bmat,
               std::int64_t b);

/// Symmetric eigendecomposition by cyclic Jacobi rotations.
///
/// On input `a` is a symmetric n x n matrix (row-major, only fully stored
/// form is used). On output `eigenvalues[i]` / column i of `eigenvectors`
/// hold the i-th eigenpair, sorted ascending. Deterministic: the sweep
/// order is fixed, so every rank computing this replicated obtains
/// bit-identical results.
///
/// Converges quadratically; `max_sweeps` bounds the work (15 is far more
/// than needed for n <= 1000).
void jacobi_eigensymm(std::vector<double> a, std::int64_t n,
                      std::vector<double>& eigenvalues,
                      std::vector<double>& eigenvectors,
                      int max_sweeps = 30);

}  // namespace scioto
