#include "base/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace scioto::detail {

[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& msg) {
  std::fprintf(stderr, "scioto %s violation: %s at %s:%d%s%s\n", kind, expr,
               file, line, msg.empty() ? "" : " -- ", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace scioto::detail
