#include "base/rng.hpp"

#include "base/error.hpp"

namespace scioto {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) {
    w = sm.next();
  }
  // All-zero state is invalid for xoshiro; SplitMix64 cannot emit four zero
  // words for any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl64(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  SCIOTO_CHECK(bound > 0);
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  SCIOTO_CHECK(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Xoshiro256::uniform() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t derive_seed(std::uint64_t base_seed, int rank, int stream) {
  SplitMix64 sm(base_seed ^ (0xA24BAED4963EE407ull * (std::uint64_t(rank) + 1)) ^
                (0x9FB21C651E98DF25ull * (std::uint64_t(stream) + 1)));
  return sm.next();
}

}  // namespace scioto
