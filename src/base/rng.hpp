// Deterministic pseudo-random number generation.
//
// Every stochastic decision in the framework (victim selection, synthetic
// workload shapes) draws from a per-rank Xoshiro256** stream seeded through
// SplitMix64, so simulated runs are bit-reproducible across hosts.
#pragma once

#include <cstdint>

namespace scioto {

/// SplitMix64: used to expand a single seed into independent stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna): fast, high-quality 64-bit generator.
class Xoshiro256 {
 public:
  /// Seeds the four state words via SplitMix64(seed).
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  std::uint64_t next();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// true with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

/// Derives a deterministic per-(seed, rank, stream) seed, so each rank and
/// each purpose gets an independent random stream.
std::uint64_t derive_seed(std::uint64_t base_seed, int rank, int stream);

}  // namespace scioto
