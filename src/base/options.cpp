#include "base/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "base/error.hpp"

namespace scioto {

void Options::add_int(const std::string& name, std::int64_t default_value,
                      const std::string& help) {
  Opt o;
  o.kind = Kind::Int;
  o.help = help;
  o.i = default_value;
  SCIOTO_REQUIRE(opts_.emplace(name, std::move(o)).second,
                 "duplicate option --" << name);
  order_.push_back(name);
}

void Options::add_double(const std::string& name, double default_value,
                         const std::string& help) {
  Opt o;
  o.kind = Kind::Double;
  o.help = help;
  o.d = default_value;
  SCIOTO_REQUIRE(opts_.emplace(name, std::move(o)).second,
                 "duplicate option --" << name);
  order_.push_back(name);
}

void Options::add_string(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  Opt o;
  o.kind = Kind::String;
  o.help = help;
  o.s = default_value;
  SCIOTO_REQUIRE(opts_.emplace(name, std::move(o)).second,
                 "duplicate option --" << name);
  order_.push_back(name);
}

void Options::add_flag(const std::string& name, bool default_value,
                       const std::string& help) {
  Opt o;
  o.kind = Kind::Flag;
  o.help = help;
  o.b = default_value;
  SCIOTO_REQUIRE(opts_.emplace(name, std::move(o)).second,
                 "duplicate option --" << name);
  order_.push_back(name);
}

void Options::set_from_string(Opt& o, const std::string& name,
                              const std::string& value) {
  try {
    switch (o.kind) {
      case Kind::Int:
        o.i = std::stoll(value);
        break;
      case Kind::Double:
        o.d = std::stod(value);
        break;
      case Kind::String:
        o.s = value;
        break;
      case Kind::Flag:
        o.b = (value == "1" || value == "true" || value == "yes");
        break;
    }
  } catch (const std::exception&) {
    throw Error("invalid value '" + value + "' for option --" + name);
  }
}

bool Options::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }

    // --no-foo clears flag foo.
    if (!has_value && name.rfind("no-", 0) == 0) {
      auto it = opts_.find(name.substr(3));
      if (it != opts_.end() && it->second.kind == Kind::Flag) {
        it->second.b = false;
        continue;
      }
    }

    auto it = opts_.find(name);
    SCIOTO_REQUIRE(it != opts_.end(),
                   "unknown option --" << name << "\n" << usage());
    Opt& o = it->second;
    if (o.kind == Kind::Flag && !has_value) {
      o.b = true;
      continue;
    }
    if (!has_value) {
      SCIOTO_REQUIRE(i + 1 < argc, "missing value for option --" << name);
      value = argv[++i];
    }
    set_from_string(o, name, value);
  }
  return true;
}

const Options::Opt& Options::find(const std::string& name, Kind kind) const {
  auto it = opts_.find(name);
  SCIOTO_REQUIRE(it != opts_.end(), "option --" << name << " not registered");
  SCIOTO_REQUIRE(it->second.kind == kind,
                 "option --" << name << " accessed with wrong type");
  return it->second;
}

std::int64_t Options::get_int(const std::string& name) const {
  return find(name, Kind::Int).i;
}

double Options::get_double(const std::string& name) const {
  return find(name, Kind::Double).d;
}

const std::string& Options::get_string(const std::string& name) const {
  return find(name, Kind::String).s;
}

bool Options::get_flag(const std::string& name) const {
  return find(name, Kind::Flag).b;
}

std::string Options::usage() const {
  std::ostringstream oss;
  oss << program_ << " -- " << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Opt& o = opts_.at(name);
    oss << "  --" << name;
    switch (o.kind) {
      case Kind::Int:
        oss << " <int>      (default " << o.i << ")";
        break;
      case Kind::Double:
        oss << " <float>    (default " << o.d << ")";
        break;
      case Kind::String:
        oss << " <string>   (default '" << o.s << "')";
        break;
      case Kind::Flag:
        oss << " / --no-" << name << "  (default "
            << (o.b ? "on" : "off") << ")";
        break;
    }
    oss << "\n      " << o.help << "\n";
  }
  return oss.str();
}

}  // namespace scioto
