// Minimal command-line option parsing for example and bench binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` /
// `--no-flag`. Unknown options raise an Error listing valid names, so every
// binary is self-documenting via --help.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace scioto {

class Options {
 public:
  Options(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Register options before parse(). `help` is shown by --help.
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, bool default_value,
                const std::string& help);

  /// Parses argv. Returns false (after printing usage) if --help was given.
  /// Throws scioto::Error on malformed or unknown options.
  bool parse(int argc, char** argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Positional (non-option) arguments seen during parse.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  enum class Kind { Int, Double, String, Flag };
  struct Opt {
    Kind kind;
    std::string help;
    std::int64_t i = 0;
    double d = 0;
    std::string s;
    bool b = false;
  };

  const Opt& find(const std::string& name, Kind kind) const;
  void set_from_string(Opt& o, const std::string& name,
                       const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

}  // namespace scioto
