#include "ga/counter.hpp"

namespace scioto::ga {

SharedCounter::SharedCounter(pgas::Runtime& rt, Rank home)
    : rt_(rt), home_(home) {
  SCIOTO_REQUIRE(home >= 0 && home < rt.nprocs(),
                 "counter home rank " << home << " out of range");
  seg_ = rt_.seg_alloc(sizeof(std::int64_t));
}

void SharedCounter::destroy() { rt_.seg_free(seg_); }

std::int64_t SharedCounter::next(std::int64_t stride) {
  return rt_.fetch_add(seg_, home_, 0, stride);
}

void SharedCounter::reset(std::int64_t value) {
  rt_.barrier();
  if (rt_.me() == home_) {
    *reinterpret_cast<std::int64_t*>(rt_.seg_ptr(seg_, home_)) = value;
  }
  rt_.barrier();
}

std::int64_t SharedCounter::peek() {
  // Atomic retrying read: race-free against concurrent next() RMWs and
  // failure-aware when a fault plan drops gets.
  std::uint64_t v = 0;
  rt_.get_u64_with_retry(seg_, home_, 0, &v);
  return static_cast<std::int64_t>(v);
}

}  // namespace scioto::ga
