// A Global Arrays (GA) toolkit subset: dense 2-D distributed arrays of
// doubles over the PGAS runtime.
//
// This implements the slice of GA the paper's applications use: collective
// creation, a row-panel block distribution with locality queries, one-sided
// get/put of rectangular patches, atomic accumulate (GA_Acc), fill, and
// sync. Patches may span multiple owners; the implementation splits them
// into per-owner one-sided transfers exactly as GA does.
//
// Layout: rank r owns the contiguous row panel [row_lo(r), row_hi(r)), each
// panel stored row-major with leading dimension = cols.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pgas/runtime.hpp"

namespace scioto::ga {

class GlobalArray {
 public:
  /// Collective. Creates a rows x cols array of doubles, zero-initialized,
  /// distributed in near-equal row panels across all ranks.
  GlobalArray(pgas::Runtime& rt, std::int64_t rows, std::int64_t cols,
              std::string name = "ga");

  /// Collective. Same, with an explicit row partition: rank r owns rows
  /// [row_split[r], row_split[r+1]). GA supports irregular distributions
  /// so applications can align panels with their block structure; SCF and
  /// TCE rely on this so a shell/tensor block lives on exactly one rank.
  GlobalArray(pgas::Runtime& rt, std::int64_t rows, std::int64_t cols,
              std::vector<std::int64_t> row_split, std::string name = "ga");

  /// Collective. Releases the shared memory.
  void destroy();

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  const std::string& name() const { return name_; }

  // ---- Distribution queries ----
  /// First row owned by rank r.
  std::int64_t row_lo(Rank r) const;
  /// One past the last row owned by rank r.
  std::int64_t row_hi(Rank r) const;
  /// Owner of a given row.
  Rank owner_of_row(std::int64_t row) const;
  /// Owner of the first row of the patch (the paper's get_owner idiom for
  /// placing tasks near their output data).
  Rank owner_of_patch(std::int64_t i0, std::int64_t j0) const;

  // ---- One-sided patch operations ----
  /// Copies the patch [i0,i1) x [j0,j1) into buf (row-major, leading
  /// dimension ld >= j1-j0).
  void get(std::int64_t i0, std::int64_t i1, std::int64_t j0, std::int64_t j1,
           double* buf, std::int64_t ld);
  /// Writes buf into the patch.
  void put(std::int64_t i0, std::int64_t i1, std::int64_t j0, std::int64_t j1,
           const double* buf, std::int64_t ld);
  /// Atomically accumulates: patch += alpha * buf. Atomic w.r.t. other acc
  /// calls (GA_Acc semantics).
  void acc(std::int64_t i0, std::int64_t i1, std::int64_t j0, std::int64_t j1,
           const double* buf, std::int64_t ld, double alpha);

  /// Direct pointer to this rank's local panel (row-major, ld = cols).
  double* local_panel();
  /// Convenience: value at (i, j) via a 1-element get.
  double at(std::int64_t i, std::int64_t j);

  // ---- Raw addressing (dependency engine integration) ----
  /// The backing segment id, for layers that describe array bytes to the
  /// PGAS runtime directly -- e.g. the DAG scheduler's data-version edges
  /// name a produced patch as (seg, owner, offset, len).
  pgas::SegId seg() const { return seg_; }
  /// Byte offset of element (i, j) inside its owner's panel. The owner is
  /// owner_of_row(i); a row span [i, i+n) within one owner covers
  /// n * cols() * sizeof(double) contiguous bytes from row i's offset.
  std::size_t elem_offset(std::int64_t i, std::int64_t j) const {
    const Rank r = owner_of_row(i);
    return static_cast<std::size_t>((i - row_lo(r)) * cols_ + j) *
           sizeof(double);
  }

  // ---- Collectives ----
  /// Collective: sets every element to v.
  void fill(double v);
  /// Collective: barrier + completion fence (GA_Sync).
  void sync();
  /// Collective: sum of all elements.
  double sum_all();
  /// Collective: Frobenius norm squared.
  double norm2();
  /// Collective: every element *= alpha (GA_Scale).
  void scale(double alpha);
  /// Collective: this += alpha * x, elementwise. x must have the same
  /// shape and row distribution (GA_Add with matching distributions).
  void add(const GlobalArray& x, double alpha = 1.0);
  /// Collective: this = x, elementwise (GA_Copy; same shape/distribution).
  void copy_from(const GlobalArray& x);
  /// Collective: sum of elementwise products with x (GA_Ddot).
  double dot(const GlobalArray& x);
  /// Collective: largest |element|.
  double max_abs();
  /// Collective: out = this^T. `out` must be cols() x rows(); each rank
  /// fetches the source columns matching its output panel in one strided
  /// get (GA_Transpose).
  void transpose_to(GlobalArray& out);

 private:
  template <class Fn>
  void for_each_owner_span(std::int64_t i0, std::int64_t i1, Fn&& fn);

  pgas::Runtime& rt_;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::string name_;
  std::vector<std::int64_t> split_;  // nranks+1 row boundaries
  pgas::SegId seg_ = -1;
  bool live_ = false;
};

/// Builds a row partition for `nranks` ranks aligned to the boundaries of
/// `offsets` (a prefix array: block b covers rows [offsets[b],
/// offsets[b+1])), keeping per-rank row counts as even as the alignment
/// allows. Suitable for the GlobalArray row_split constructor.
std::vector<std::int64_t> block_aligned_split(
    const std::vector<std::int64_t>& offsets, int nranks);

}  // namespace scioto::ga
