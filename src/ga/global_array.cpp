#include "ga/global_array.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace scioto::ga {

namespace {
std::vector<std::int64_t> even_split(std::int64_t rows, int nranks) {
  std::vector<std::int64_t> split(static_cast<std::size_t>(nranks) + 1);
  for (int r = 0; r <= nranks; ++r) {
    split[static_cast<std::size_t>(r)] = rows * r / nranks;
  }
  return split;
}
}  // namespace

GlobalArray::GlobalArray(pgas::Runtime& rt, std::int64_t rows,
                         std::int64_t cols, std::string name)
    : GlobalArray(rt, rows, cols, even_split(rows, rt.nprocs()),
                  std::move(name)) {}

GlobalArray::GlobalArray(pgas::Runtime& rt, std::int64_t rows,
                         std::int64_t cols,
                         std::vector<std::int64_t> row_split,
                         std::string name)
    : rt_(rt), rows_(rows), cols_(cols), name_(std::move(name)),
      split_(std::move(row_split)) {
  SCIOTO_REQUIRE(rows >= 0 && cols >= 0,
                 "invalid array shape " << rows << "x" << cols);
  SCIOTO_REQUIRE(static_cast<int>(split_.size()) == rt_.nprocs() + 1 &&
                     split_.front() == 0 && split_.back() == rows_,
                 "row_split must have nprocs+1 monotone entries covering ["
                     << 0 << ", " << rows_ << ")");
  std::int64_t max_panel_rows = 0;
  for (Rank r = 0; r < rt_.nprocs(); ++r) {
    SCIOTO_REQUIRE(row_lo(r) <= row_hi(r), "row_split must be monotone");
    max_panel_rows = std::max(max_panel_rows, row_hi(r) - row_lo(r));
  }
  seg_ = rt_.seg_alloc(static_cast<std::size_t>(max_panel_rows) *
                       static_cast<std::size_t>(cols_) * sizeof(double));
  live_ = true;
}

std::vector<std::int64_t> block_aligned_split(
    const std::vector<std::int64_t>& offsets, int nranks) {
  SCIOTO_REQUIRE(offsets.size() >= 2 && offsets.front() == 0,
                 "offsets must be a prefix array starting at 0");
  const std::int64_t rows = offsets.back();
  std::vector<std::int64_t> split(static_cast<std::size_t>(nranks) + 1);
  split[0] = 0;
  std::size_t b = 0;  // next unassigned block boundary index
  for (int r = 1; r < nranks; ++r) {
    const std::int64_t target = rows * r / nranks;
    // Advance to the block boundary closest to the even-split target,
    // never retreating past what earlier ranks took.
    while (b + 1 < offsets.size() - 1 &&
           std::abs(offsets[b + 1] - target) <= std::abs(offsets[b] - target)) {
      ++b;
    }
    split[static_cast<std::size_t>(r)] =
        std::max(split[static_cast<std::size_t>(r) - 1], offsets[b]);
  }
  split[static_cast<std::size_t>(nranks)] = rows;
  return split;
}

void GlobalArray::destroy() {
  SCIOTO_REQUIRE(live_, "destroy of dead array " << name_);
  rt_.seg_free(seg_);
  live_ = false;
}

std::int64_t GlobalArray::row_lo(Rank r) const {
  return split_[static_cast<std::size_t>(r)];
}

std::int64_t GlobalArray::row_hi(Rank r) const {
  return split_[static_cast<std::size_t>(r) + 1];
}

Rank GlobalArray::owner_of_row(std::int64_t row) const {
  SCIOTO_CHECK(row >= 0 && row < rows_);
  // First boundary strictly greater than `row` ends the owning panel.
  auto it = std::upper_bound(split_.begin(), split_.end(), row);
  return static_cast<Rank>(it - split_.begin() - 1);
}

Rank GlobalArray::owner_of_patch(std::int64_t i0, std::int64_t j0) const {
  (void)j0;  // row-panel distribution: column position does not matter
  return owner_of_row(i0);
}

template <class Fn>
void GlobalArray::for_each_owner_span(std::int64_t i0, std::int64_t i1,
                                      Fn&& fn) {
  SCIOTO_REQUIRE(0 <= i0 && i0 <= i1 && i1 <= rows_,
                 "row range [" << i0 << "," << i1 << ") out of bounds for "
                               << name_ << " with " << rows_ << " rows");
  std::int64_t i = i0;
  while (i < i1) {
    Rank owner = owner_of_row(i);
    std::int64_t span_end = std::min(i1, row_hi(owner));
    fn(owner, i, span_end);
    i = span_end;
  }
}

void GlobalArray::get(std::int64_t i0, std::int64_t i1, std::int64_t j0,
                      std::int64_t j1, double* buf, std::int64_t ld) {
  SCIOTO_REQUIRE(0 <= j0 && j0 <= j1 && j1 <= cols_ && ld >= j1 - j0,
                 "bad column range/ld for get on " << name_);
  for_each_owner_span(i0, i1, [&](Rank owner, std::int64_t lo,
                                  std::int64_t hi) {
    // One strided one-sided transfer per owner span (ARMCI_GetS).
    std::size_t off = (static_cast<std::size_t>(lo - row_lo(owner)) *
                           static_cast<std::size_t>(cols_) +
                       static_cast<std::size_t>(j0)) *
                      sizeof(double);
    rt_.get_strided(seg_, owner, off,
                    static_cast<std::size_t>(cols_) * sizeof(double),
                    static_cast<std::size_t>(hi - lo),
                    static_cast<std::size_t>(j1 - j0) * sizeof(double),
                    buf + (lo - i0) * ld,
                    static_cast<std::size_t>(ld) * sizeof(double));
  });
}

void GlobalArray::put(std::int64_t i0, std::int64_t i1, std::int64_t j0,
                      std::int64_t j1, const double* buf, std::int64_t ld) {
  SCIOTO_REQUIRE(0 <= j0 && j0 <= j1 && j1 <= cols_ && ld >= j1 - j0,
                 "bad column range/ld for put on " << name_);
  for_each_owner_span(i0, i1, [&](Rank owner, std::int64_t lo,
                                  std::int64_t hi) {
    // One strided one-sided transfer per owner span (ARMCI_PutS).
    std::size_t off = (static_cast<std::size_t>(lo - row_lo(owner)) *
                           static_cast<std::size_t>(cols_) +
                       static_cast<std::size_t>(j0)) *
                      sizeof(double);
    rt_.put_strided(seg_, owner, off,
                    static_cast<std::size_t>(cols_) * sizeof(double),
                    static_cast<std::size_t>(hi - lo),
                    static_cast<std::size_t>(j1 - j0) * sizeof(double),
                    buf + (lo - i0) * ld,
                    static_cast<std::size_t>(ld) * sizeof(double));
  });
}

void GlobalArray::acc(std::int64_t i0, std::int64_t i1, std::int64_t j0,
                      std::int64_t j1, const double* buf, std::int64_t ld,
                      double alpha) {
  SCIOTO_REQUIRE(0 <= j0 && j0 <= j1 && j1 <= cols_ && ld >= j1 - j0,
                 "bad column range/ld for acc on " << name_);
  for_each_owner_span(i0, i1, [&](Rank owner, std::int64_t lo,
                                  std::int64_t hi) {
    rt_.rma_charge_span(owner, static_cast<std::size_t>(hi - lo) *
                                   static_cast<std::size_t>(j1 - j0) *
                                   sizeof(double));
    rt_.backend().critical([&] {
      for (std::int64_t i = lo; i < hi; ++i) {
        std::size_t off = (static_cast<std::size_t>(i - row_lo(owner)) *
                               static_cast<std::size_t>(cols_) +
                           static_cast<std::size_t>(j0)) *
                          sizeof(double);
        double* dst =
            reinterpret_cast<double*>(rt_.seg_ptr(seg_, owner) + off);
        const double* src = buf + (i - i0) * ld;
        for (std::int64_t j = 0; j < j1 - j0; ++j) {
          dst[j] += alpha * src[j];
        }
      }
    });
  });
}

double* GlobalArray::local_panel() {
  return reinterpret_cast<double*>(rt_.seg_ptr(seg_, rt_.me()));
}

double GlobalArray::at(std::int64_t i, std::int64_t j) {
  double v = 0;
  get(i, i + 1, j, j + 1, &v, 1);
  return v;
}

void GlobalArray::fill(double v) {
  rt_.barrier();
  double* p = local_panel();
  std::int64_t n = (row_hi(rt_.me()) - row_lo(rt_.me())) * cols_;
  std::fill(p, p + n, v);
  rt_.barrier();
}

void GlobalArray::sync() { rt_.barrier(); }

double GlobalArray::sum_all() {
  double local = 0;
  const double* p = local_panel();
  std::int64_t n = (row_hi(rt_.me()) - row_lo(rt_.me())) * cols_;
  for (std::int64_t i = 0; i < n; ++i) {
    local += p[i];
  }
  return rt_.allreduce_sum(local);
}

double GlobalArray::norm2() {
  double local = 0;
  const double* p = local_panel();
  std::int64_t n = (row_hi(rt_.me()) - row_lo(rt_.me())) * cols_;
  for (std::int64_t i = 0; i < n; ++i) {
    local += p[i] * p[i];
  }
  return rt_.allreduce_sum(local);
}

void GlobalArray::scale(double alpha) {
  rt_.barrier();
  double* p = local_panel();
  std::int64_t n = (row_hi(rt_.me()) - row_lo(rt_.me())) * cols_;
  for (std::int64_t i = 0; i < n; ++i) {
    p[i] *= alpha;
  }
  rt_.barrier();
}

namespace {
void require_conformable(const GlobalArray& a, const GlobalArray& b) {
  SCIOTO_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                 "arrays " << a.name() << " and " << b.name()
                           << " are not conformable");
}
}  // namespace

void GlobalArray::add(const GlobalArray& x, double alpha) {
  require_conformable(*this, x);
  SCIOTO_REQUIRE(row_lo(rt_.me()) == x.row_lo(rt_.me()) &&
                     row_hi(rt_.me()) == x.row_hi(rt_.me()),
                 "add requires matching row distributions");
  rt_.barrier();
  double* dst = local_panel();
  const double* src = const_cast<GlobalArray&>(x).local_panel();
  std::int64_t n = (row_hi(rt_.me()) - row_lo(rt_.me())) * cols_;
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] += alpha * src[i];
  }
  rt_.barrier();
}

void GlobalArray::copy_from(const GlobalArray& x) {
  require_conformable(*this, x);
  SCIOTO_REQUIRE(row_lo(rt_.me()) == x.row_lo(rt_.me()) &&
                     row_hi(rt_.me()) == x.row_hi(rt_.me()),
                 "copy_from requires matching row distributions");
  rt_.barrier();
  std::int64_t n = (row_hi(rt_.me()) - row_lo(rt_.me())) * cols_;
  std::memcpy(local_panel(), const_cast<GlobalArray&>(x).local_panel(),
              static_cast<std::size_t>(n) * sizeof(double));
  rt_.barrier();
}

double GlobalArray::dot(const GlobalArray& x) {
  require_conformable(*this, x);
  SCIOTO_REQUIRE(row_lo(rt_.me()) == x.row_lo(rt_.me()) &&
                     row_hi(rt_.me()) == x.row_hi(rt_.me()),
                 "dot requires matching row distributions");
  double local = 0;
  const double* a = local_panel();
  const double* b = const_cast<GlobalArray&>(x).local_panel();
  std::int64_t n = (row_hi(rt_.me()) - row_lo(rt_.me())) * cols_;
  for (std::int64_t i = 0; i < n; ++i) {
    local += a[i] * b[i];
  }
  return rt_.allreduce_sum(local);
}

double GlobalArray::max_abs() {
  double local = 0;
  const double* p = local_panel();
  std::int64_t n = (row_hi(rt_.me()) - row_lo(rt_.me())) * cols_;
  for (std::int64_t i = 0; i < n; ++i) {
    local = std::max(local, std::abs(p[i]));
  }
  return rt_.allreduce_max(local);
}

void GlobalArray::transpose_to(GlobalArray& out) {
  SCIOTO_REQUIRE(out.rows() == cols_ && out.cols() == rows_,
                 "transpose target must be " << cols_ << "x" << rows_);
  sync();
  // Output rows [lo, hi) are source columns [lo, hi): one strided get of
  // the full column band, transposed locally.
  const std::int64_t lo = out.row_lo(rt_.me());
  const std::int64_t hi = out.row_hi(rt_.me());
  if (hi > lo) {
    std::vector<double> band(static_cast<std::size_t>(rows_) *
                             static_cast<std::size_t>(hi - lo));
    get(0, rows_, lo, hi, band.data(), hi - lo);
    double* panel = out.local_panel();
    for (std::int64_t c = lo; c < hi; ++c) {
      for (std::int64_t r = 0; r < rows_; ++r) {
        panel[(c - lo) * rows_ + r] =
            band[static_cast<std::size_t>(r * (hi - lo) + (c - lo))];
      }
    }
  }
  out.sync();
}

}  // namespace scioto::ga
