// Shared global counters (GA's NXTVAL idiom).
//
// The paper's *original* SCF and TCE implementations balance load by
// replicating the task list on every process and atomically incrementing a
// single shared counter to claim the next task. This class reproduces that
// primitive: a one-element int64 in shared space, homed on one rank, read
// with fetch-and-add. Under the sim backend the home rank's RMA service
// queue makes the counter a contention bottleneck at scale -- which is
// precisely the behaviour Figures 5 and 6 attribute to the original codes.
#pragma once

#include "pgas/runtime.hpp"

namespace scioto::ga {

class SharedCounter {
 public:
  /// Collective. Creates a counter homed on `home`, initialized to 0.
  SharedCounter(pgas::Runtime& rt, Rank home = 0);

  /// Collective. Releases the counter's shared space.
  void destroy();

  /// Atomically returns the current value and advances by `stride`
  /// (NXTVAL). Safe to call concurrently from all ranks.
  std::int64_t next(std::int64_t stride = 1);

  /// Collective. Resets the counter to `value`.
  void reset(std::int64_t value = 0);

  /// Non-atomic read (diagnostics only).
  std::int64_t peek();

  Rank home() const { return home_; }

 private:
  pgas::Runtime& rt_;
  Rank home_;
  pgas::SegId seg_ = -1;
};

}  // namespace scioto::ga
