// Dependent tasks (the §8 extension): a blocked wavefront pipeline on the
// dependency engine (src/dag).
//
// Stage (i, j) depends on (i-1, j) and (i, j-1) -- the classic dynamic-
// programming wavefront. The DagScheduler tracks the dependency counters
// in shared space with one-sided decrements while ready tasks still
// migrate through the normal work-stealing scheduler. Cell values live in
// a Global Array: tasks read their predecessors' results one-sided and
// write their own. Each edge additionally carries a data-version record
// naming the produced cell, so a consumer only fires after the producer's
// payload is fenced and its version bump has landed -- read-after-write
// safety with no barrier, even when the ready decrement (a cheap control
// message) overtakes the data on the wire.
//
//   ./taskdag_pipeline --ranks 8 --grid 12
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "base/options.hpp"
#include "dag/dag.hpp"
#include "ga/global_array.hpp"

using namespace scioto;

int main(int argc, char** argv) {
  Options opts("taskdag_pipeline", "wavefront pipeline over dependent tasks");
  opts.add_int("ranks", 8, "number of SPMD ranks");
  opts.add_int("grid", 12, "wavefront grid side length");
  if (!opts.parse(argc, argv)) return 0;

  pgas::Config cfg;
  cfg.nranks = static_cast<int>(opts.get_int("ranks"));
  cfg.machine = sim::cluster2008_uniform();
  const int g = static_cast<int>(opts.get_int("grid"));

  bool ok = true;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    TaskCollection tc(rt);
    dag::DagScheduler dag(tc);
    ga::GlobalArray grid(rt, g, g, "wavefront");

    std::vector<dag::NodeId> id(static_cast<std::size_t>(g) * g);
    for (int i = 0; i < g; ++i) {
      for (int j = 0; j < g; ++j) {
        // Home the task where its output row lives.
        Rank home = grid.owner_of_patch(i, j);
        id[static_cast<std::size_t>(i * g + j)] =
            dag.add_node(home, [&, i, j] {
              double up = i > 0 ? grid.at(i - 1, j) : 0;
              double left = j > 0 ? grid.at(i, j - 1) : 0;
              rt.charge(us(20));  // simulated cell work
              double v = up + left + 1;
              grid.put(i, i + 1, j, j + 1, &v, 1);
            });
      }
    }
    // Version-carrying edge: (pi, pj) produced the cell the successor
    // reads, so name those bytes on the edge.
    auto cell_edge = [&](int pi, int pj, int si, int sj) {
      dag::DataDep dep;
      dep.seg = grid.seg();
      dep.owner = grid.owner_of_row(pi);
      dep.offset = grid.elem_offset(pi, pj);
      dep.len = sizeof(double);
      dag.add_edge(id[static_cast<std::size_t>(pi * g + pj)],
                   id[static_cast<std::size_t>(si * g + sj)], dep);
    };
    for (int i = 0; i < g; ++i) {
      for (int j = 0; j < g; ++j) {
        if (i > 0) cell_edge(i - 1, j, i, j);
        if (j > 0) cell_edge(i, j - 1, i, j);
      }
    }
    dag.execute();
    grid.sync();
    dag::DagStats ds = dag.stats_global();

    // Sequential reference for the full grid.
    std::vector<double> ref(static_cast<std::size_t>(g) * g);
    for (int i = 0; i < g; ++i) {
      for (int j = 0; j < g; ++j) {
        double up = i > 0 ? ref[static_cast<std::size_t>((i - 1) * g + j)] : 0;
        double left =
            j > 0 ? ref[static_cast<std::size_t>(i * g + j - 1)] : 0;
        ref[static_cast<std::size_t>(i * g + j)] = up + left + 1;
      }
    }
    double err = 0;
    for (std::int64_t i = grid.row_lo(rt.me()); i < grid.row_hi(rt.me());
         ++i) {
      for (int j = 0; j < g; ++j) {
        double got = grid.local_panel()[(i - grid.row_lo(rt.me())) * g + j];
        err = std::max(err, std::abs(got - ref[static_cast<std::size_t>(
                                               i * g + j)]));
      }
    }
    err = rt.allreduce_max(err);
    if (rt.me() == 0) {
      ok = err == 0.0;
      std::printf("wavefront %dx%d on %d ranks: max_err=%.1f -> %s\n", g, g,
                  rt.nprocs(), err, ok ? "OK" : "FAILED");
      std::printf("dag: %llu nodes run (%llu fired remotely), depth %llu, "
                  "%llu version waits\n",
                  static_cast<unsigned long long>(ds.nodes_run),
                  static_cast<unsigned long long>(ds.remote_fires),
                  static_cast<unsigned long long>(ds.max_depth),
                  static_cast<unsigned long long>(ds.version_waits));
      if (rt.simulated()) {
        std::printf("virtual makespan: %.3f ms (critical path %d stages x "
                    "20 us)\n",
                    to_ms(rt.now()), 2 * g - 1);
      }
    }
    grid.destroy();
    tc.destroy();
  });
  return ok ? 0 : 1;
}
