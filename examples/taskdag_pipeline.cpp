// Dependent tasks (the §8 extension): a blocked wavefront pipeline.
//
// Stage (i, j) depends on (i-1, j) and (i, j-1) -- the classic dynamic-
// programming wavefront. TaskDag tracks the dependency counters in shared
// space with one-sided decrements while ready tasks still migrate through
// the normal work-stealing scheduler. Cell values live in a Global Array:
// tasks read their predecessors' results one-sided (safe because the DAG
// orders them) and write their own -- the global-view data model doing its
// job for dependent computations.
//
//   ./taskdag_pipeline --ranks 8 --grid 12
#include <cstdio>
#include <vector>

#include "base/options.hpp"
#include "ga/global_array.hpp"
#include "scioto/deps.hpp"

using namespace scioto;

int main(int argc, char** argv) {
  Options opts("taskdag_pipeline", "wavefront pipeline over dependent tasks");
  opts.add_int("ranks", 8, "number of SPMD ranks");
  opts.add_int("grid", 12, "wavefront grid side length");
  if (!opts.parse(argc, argv)) return 0;

  pgas::Config cfg;
  cfg.nranks = static_cast<int>(opts.get_int("ranks"));
  cfg.machine = sim::cluster2008_uniform();
  const int g = static_cast<int>(opts.get_int("grid"));

  bool ok = true;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    TaskCollection tc(rt);
    TaskDag dag(tc);
    ga::GlobalArray grid(rt, g, g, "wavefront");

    std::vector<TaskDag::NodeId> id(static_cast<std::size_t>(g) * g);
    for (int i = 0; i < g; ++i) {
      for (int j = 0; j < g; ++j) {
        // Home the task where its output row lives.
        Rank home = grid.owner_of_patch(i, j);
        id[static_cast<std::size_t>(i * g + j)] =
            dag.add_node(home, [&, i, j] {
              double up = i > 0 ? grid.at(i - 1, j) : 0;
              double left = j > 0 ? grid.at(i, j - 1) : 0;
              rt.charge(us(20));  // simulated cell work
              double v = up + left + 1;
              grid.put(i, i + 1, j, j + 1, &v, 1);
            });
      }
    }
    for (int i = 0; i < g; ++i) {
      for (int j = 0; j < g; ++j) {
        if (i > 0) dag.add_edge(id[static_cast<std::size_t>((i - 1) * g + j)],
                                id[static_cast<std::size_t>(i * g + j)]);
        if (j > 0) dag.add_edge(id[static_cast<std::size_t>(i * g + j - 1)],
                                id[static_cast<std::size_t>(i * g + j)]);
      }
    }
    dag.execute();
    grid.sync();

    // Sequential reference for the full grid.
    std::vector<double> ref(static_cast<std::size_t>(g) * g);
    for (int i = 0; i < g; ++i) {
      for (int j = 0; j < g; ++j) {
        double up = i > 0 ? ref[static_cast<std::size_t>((i - 1) * g + j)] : 0;
        double left =
            j > 0 ? ref[static_cast<std::size_t>(i * g + j - 1)] : 0;
        ref[static_cast<std::size_t>(i * g + j)] = up + left + 1;
      }
    }
    double err = 0;
    for (std::int64_t i = grid.row_lo(rt.me()); i < grid.row_hi(rt.me());
         ++i) {
      for (int j = 0; j < g; ++j) {
        double got = grid.local_panel()[(i - grid.row_lo(rt.me())) * g + j];
        err = std::max(err, std::abs(got - ref[static_cast<std::size_t>(
                                               i * g + j)]));
      }
    }
    err = rt.allreduce_max(err);
    if (rt.me() == 0) {
      ok = err == 0.0;
      std::printf("wavefront %dx%d on %d ranks: max_err=%.1f -> %s\n", g, g,
                  rt.nprocs(), err, ok ? "OK" : "FAILED");
      if (rt.simulated()) {
        std::printf("virtual makespan: %.3f ms (critical path %d stages x "
                    "20 us)\n",
                    to_ms(rt.now()), 2 * g - 1);
      }
    }
    grid.destroy();
    tc.destroy();
  });
  return ok ? 0 : 1;
}
