// The paper's Figure 3 listing, nearly verbatim: task-parallel blocked
// matrix-matrix multiplication through the C-style tc_* API.
//
// Matrices live in Global Arrays; the task body carries portable integer
// references and block indices (Figure 1's descriptor). Each process
// creates only the tasks whose output block it owns (get_owner), then all
// processes collectively tc_process() the collection.
//
//   ./matmul_c_api --ranks 4 --blocks 4 --block-size 8
#include <cmath>
#include <cstdio>
#include <vector>

#include "base/linalg.hpp"
#include "base/options.hpp"
#include "ga/global_array.hpp"
#include "pgas/runtime.hpp"
#include "scioto/scioto_c.h"

namespace {

// Global-array registry standing in for GA's integer handles: the paper's
// task bodies reference arrays by int.
scioto::ga::GlobalArray* g_arrays[3];
std::int64_t g_bs = 8;

struct mm_task {
  int A, B, C;       // portable global-array handles
  int block[3];      // i, j, k block indices
};

void mm_task_fcn(tc_t /*tc*/, task_t* task) {
  mm_task* mm = static_cast<mm_task*>(tc_task_body(task));
  auto& A = *g_arrays[mm->A];
  auto& B = *g_arrays[mm->B];
  auto& C = *g_arrays[mm->C];
  const std::int64_t bs = g_bs;
  std::int64_t i0 = mm->block[0] * bs, j0 = mm->block[1] * bs,
               k0 = mm->block[2] * bs;
  std::vector<double> a(bs * bs), b(bs * bs), c(bs * bs);
  A.get(i0, i0 + bs, k0, k0 + bs, a.data(), bs);
  B.get(k0, k0 + bs, j0, j0 + bs, b.data(), bs);
  scioto::matmul(a.data(), b.data(), c.data(), bs, bs, bs);
  C.acc(i0, i0 + bs, j0, j0 + bs, c.data(), bs, 1.0);
}

int get_owner(scioto::ga::GlobalArray& c, int i, int /*j*/, int /*k*/) {
  return c.owner_of_patch(i * g_bs, 0);
}

}  // namespace

int main(int argc, char** argv) {
  scioto::Options opts("matmul_c_api", "paper Figure 3 via the C API");
  opts.add_int("ranks", 4, "number of SPMD ranks");
  opts.add_int("blocks", 4, "blocks per dimension");
  opts.add_int("block-size", 8, "rows/cols per block");
  opts.add_flag("metrics", false,
                "arm the live-metrics plane and print a summary");
  if (!opts.parse(argc, argv)) return 0;
  if (opts.get_flag("metrics")) {
    scioto_metrics_set(1);  // staged knob; armed inside run_spmd
  }

  scioto::pgas::Config cfg;
  cfg.nranks = static_cast<int>(opts.get_int("ranks"));
  cfg.machine = scioto::sim::cluster2008_uniform();
  const int NUM_BLOCKS = static_cast<int>(opts.get_int("blocks"));
  g_bs = opts.get_int("block-size");
  const std::int64_t n = NUM_BLOCKS * g_bs;

  scioto::pgas::run_spmd(cfg, [&](scioto::pgas::Runtime& rt) {
    scioto::capi::RuntimeBinding bind(rt);  // tc_init analog

    // Initialize Global Arrays: A, B, and C.
    scioto::ga::GlobalArray A(rt, n, n, "A"), B(rt, n, n, "B"),
        C(rt, n, n, "C");
    g_arrays[0] = &A;
    g_arrays[1] = &B;
    g_arrays[2] = &C;
    for (std::int64_t i = A.row_lo(rt.me()); i < A.row_hi(rt.me()); ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        A.local_panel()[(i - A.row_lo(rt.me())) * n + j] =
            std::sin(0.01 * static_cast<double>(i * n + j));
        B.local_panel()[(i - B.row_lo(rt.me())) * n + j] = (i == j) ? 2.0 : 0.0;
      }
    }
    rt.barrier();

    // --- The paper's main(), Figure 3 ---
    tc_t tc = tc_create(sizeof(mm_task), /*chunk=*/4, /*max=*/65536);
    task_handle_t hdl = tc_register_callback(tc, mm_task_fcn);
    task_t* task = tc_task_create(sizeof(mm_task), hdl);
    mm_task* mm = static_cast<mm_task*>(tc_task_body(task));
    mm->A = 0;
    mm->B = 1;
    mm->C = 2;
    int me = tc_mype();
    for (int i = 0; i < NUM_BLOCKS; i++)
      for (int j = 0; j < NUM_BLOCKS; j++)
        for (int k = 0; k < NUM_BLOCKS; k++)
          if (get_owner(C, i, j, k) == me) {
            mm->block[0] = i;
            mm->block[1] = j;
            mm->block[2] = k;
            tc_add(tc, me, TC_AFFINITY_HIGH, task);
            tc_task_reuse(task);
          }
    tc_process(tc);
    tc_task_destroy(task);
    tc_destroy(tc);
    // --- end of Figure 3 ---

    // B is 2*I, so C must equal 2*A; check this rank's panel.
    double err = 0;
    for (std::int64_t i = C.row_lo(rt.me()); i < C.row_hi(rt.me()); ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        double got = C.local_panel()[(i - C.row_lo(rt.me())) * n + j];
        double want =
            2.0 * std::sin(0.01 * static_cast<double>(i * n + j));
        err = std::max(err, std::abs(got - want));
      }
    }
    err = rt.allreduce_max(err);
    if (rt.me() == 0) {
      std::printf("C API matmul %lldx%lld: max_err=%.2e -> %s\n",
                  static_cast<long long>(n), static_cast<long long>(n), err,
                  err < 1e-12 ? "OK" : "FAILED");
      if (scioto_metrics_enabled()) {
        // One-sided live-metrics reads through the C API: scrape every
        // rank's patch (no cooperation needed) and total the counters.
        uint64_t executed = 0, steals = 0, p99 = 0;
        for (int r = 0; r < rt.nprocs(); ++r) {
          scioto_metrics_snapshot_t* s = scioto_metrics_snapshot(r);
          if (s == nullptr) continue;
          uint64_t v = 0;
          if (scioto_metrics_read(s, "tasks_executed", &v) == 0) executed += v;
          if (scioto_metrics_read(s, "steals", &v) == 0) steals += v;
          if (scioto_metrics_read(s, "task_exec_ns_p99", &v) == 0 && v > p99)
            p99 = v;
          scioto_metrics_snapshot_free(s);
        }
        std::printf("metrics: tasks_executed=%llu steals=%llu "
                    "task_exec_ns_p99<=%llu\n",
                    static_cast<unsigned long long>(executed),
                    static_cast<unsigned long long>(steals),
                    static_cast<unsigned long long>(p99));
      }
    }
    C.destroy();
    B.destroy();
    A.destroy();
  });
  return 0;
}
