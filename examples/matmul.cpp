// Task-parallel blocked matrix-matrix multiplication over Global Arrays --
// the paper's running example (§4, Figure 3), in the C++ API.
//
// C += A * B on NUM_BLOCKS^2 output blocks: each task multiplies one
// (i, j, k) block triple and accumulates into C. Tasks are seeded at the
// owner of their C block (the paper's get_owner idiom) with high affinity,
// then verified against a local dense reference.
//
//   ./matmul --ranks 4 --blocks 6 --block-size 16
#include <cstdio>
#include <vector>

#include "base/linalg.hpp"
#include "base/options.hpp"
#include "ga/global_array.hpp"
#include "scioto/task_collection.hpp"

using namespace scioto;

namespace {

struct MmTask {
  // Portable references to the global arrays (integers under GA) plus the
  // block triple to multiply -- exactly the paper's Figure 1 descriptor.
  std::int32_t block[3];
};

double a_val(std::int64_t i, std::int64_t j) {
  return 0.01 * static_cast<double>(i) + 0.02 * static_cast<double>(j);
}
double b_val(std::int64_t i, std::int64_t j) {
  return (i == j ? 1.0 : 0.0) + 0.001 * static_cast<double>(i + j);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("matmul", "blocked matrix multiply over Global Arrays");
  opts.add_int("ranks", 4, "number of SPMD ranks");
  opts.add_string("backend", "sim", "execution backend: sim | threads");
  opts.add_int("blocks", 6, "blocks per matrix dimension");
  opts.add_int("block-size", 16, "rows/cols per block");
  if (!opts.parse(argc, argv)) return 0;

  pgas::Config cfg;
  cfg.nranks = static_cast<int>(opts.get_int("ranks"));
  cfg.backend = opts.get_string("backend") == "threads"
                    ? pgas::BackendKind::Threads
                    : pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008_uniform();
  const std::int64_t nb = opts.get_int("blocks");
  const std::int64_t bs = opts.get_int("block-size");
  const std::int64_t n = nb * bs;

  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    ga::GlobalArray a(rt, n, n, "A"), b(rt, n, n, "B"), c(rt, n, n, "C");
    // Fill local panels.
    for (std::int64_t i = a.row_lo(rt.me()); i < a.row_hi(rt.me()); ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        a.local_panel()[(i - a.row_lo(rt.me())) * n + j] = a_val(i, j);
        b.local_panel()[(i - b.row_lo(rt.me())) * n + j] = b_val(i, j);
      }
    }
    rt.barrier();

    TcConfig tcc;
    tcc.max_task_body = sizeof(MmTask);
    tcc.chunk_size = 4;
    TaskCollection tc(rt, tcc);

    std::vector<double> abuf(bs * bs), bbuf(bs * bs), cbuf(bs * bs);
    TaskHandle mm = tc.register_callback([&](TaskContext& ctx) {
      const auto& t = ctx.body_as<MmTask>();
      std::int64_t i0 = t.block[0] * bs, j0 = t.block[1] * bs,
                   k0 = t.block[2] * bs;
      a.get(i0, i0 + bs, k0, k0 + bs, abuf.data(), bs);
      b.get(k0, k0 + bs, j0, j0 + bs, bbuf.data(), bs);
      matmul(abuf.data(), bbuf.data(), cbuf.data(), bs, bs, bs);
      ctx.tc.runtime().charge(2 * bs * bs * bs);  // ~0.5 flop/ns
      c.acc(i0, i0 + bs, j0, j0 + bs, cbuf.data(), bs, 1.0);
    });

    // Seed each (i,j,k) task at the rank owning C block row i.
    Task task = tc.task_create(sizeof(MmTask), mm);
    for (std::int32_t i = 0; i < nb; ++i) {
      for (std::int32_t j = 0; j < nb; ++j) {
        for (std::int32_t k = 0; k < nb; ++k) {
          if (c.owner_of_patch(i * bs, j * bs) != rt.me()) continue;
          task.body_as<MmTask>() = {{i, j, k}};
          tc.add_local(task, kAffinityHigh);
          task.reuse();
        }
      }
    }
    tc.process();

    // Verify this rank's C panel against a dense reference.
    std::vector<double> aref(static_cast<std::size_t>(n) * n),
        bref(aref.size()), cref(aref.size());
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        aref[static_cast<std::size_t>(i * n + j)] = a_val(i, j);
        bref[static_cast<std::size_t>(i * n + j)] = b_val(i, j);
      }
    }
    matmul(aref.data(), bref.data(), cref.data(), n, n, n);
    double max_err = 0;
    for (std::int64_t i = c.row_lo(rt.me()); i < c.row_hi(rt.me()); ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        double got = c.local_panel()[(i - c.row_lo(rt.me())) * n + j];
        max_err = std::max(max_err,
                           std::abs(got - cref[static_cast<std::size_t>(
                                              i * n + j)]));
      }
    }
    double global_err = rt.allreduce_max(max_err);
    Table stats = tc.stats_table();  // collective
    if (rt.me() == 0) {
      std::printf("matmul %lldx%lld (%lld blocks): max_err=%.2e -> %s\n",
                  static_cast<long long>(n), static_cast<long long>(n),
                  static_cast<long long>(nb * nb * nb), global_err,
                  global_err < 1e-9 ? "OK" : "FAILED");
      stats.print("scheduler statistics (summed over ranks)");
    }
    tc.destroy();
    c.destroy();
    b.destroy();
    a.destroy();
  });
  return 0;
}
