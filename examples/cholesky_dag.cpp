// Blocked Cholesky on the dependency engine: the dense-dependence proof
// app for src/dag (see src/apps/cholesky). Factorizes a deterministic
// SPD matrix as one task per tile kernel, verifies the factorization by
// reconstruction (||L L^T - A||_F / ||A||_F), and exits nonzero if the
// residual is not at machine-precision level.
//
//   ./cholesky_dag --ranks 8 --tiles 8 --tile 16 [--backend threads]
#include <cstdio>
#include <cstring>

#include "apps/cholesky/cholesky.hpp"
#include "base/options.hpp"
#include "pgas/runtime.hpp"

using namespace scioto;

int main(int argc, char** argv) {
  Options opts("cholesky_dag", "tiled Cholesky on the DAG scheduler");
  opts.add_int("ranks", 8, "number of SPMD ranks");
  opts.add_int("tiles", 8, "tile grid side (matrix is tiles*tile square)");
  opts.add_int("tile", 16, "tile side length b");
  opts.add_string("backend", "sim", "sim | threads");
  opts.add_int("seed", 42, "sim scheduling seed");
  if (!opts.parse(argc, argv)) return 0;

  pgas::Config cfg;
  cfg.nranks = static_cast<int>(opts.get_int("ranks"));
  cfg.machine = sim::cluster2008_uniform();
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const bool threads = opts.get_string("backend") == "threads";
  if (threads) cfg.backend = pgas::BackendKind::Threads;

  apps::CholeskyConfig ccfg;
  ccfg.tiles = static_cast<int>(opts.get_int("tiles"));
  ccfg.tile = static_cast<int>(opts.get_int("tile"));

  apps::CholeskyResult res;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    apps::CholeskyResult r = apps::cholesky_dag(rt, ccfg);
    if (rt.me() == 0) res = r;
  });

  const bool ok = res.residual < 1e-12;
  std::printf("cholesky %dx%d tiles of %d on %d ranks (%s): "
              "residual=%.3e -> %s\n",
              ccfg.tiles, ccfg.tiles, ccfg.tile, cfg.nranks,
              threads ? "threads" : "sim", res.residual,
              ok ? "OK" : "FAILED");
  std::printf("dag: %llu tasks (%llu fired remotely), depth %llu, "
              "%llu conflict retries, %llu version waits, %.3f ms %s\n",
              static_cast<unsigned long long>(res.dag.nodes_run),
              static_cast<unsigned long long>(res.dag.remote_fires),
              static_cast<unsigned long long>(res.dag.max_depth),
              static_cast<unsigned long long>(res.dag.conflict_retries),
              static_cast<unsigned long long>(res.dag.version_waits),
              res.elapsed_ms, threads ? "wall" : "virtual");
  return ok ? 0 : 1;
}
