// Fault-injection demo: runs UTS under a fault plan that fail-stops ranks
// mid-traversal, then shows the recovery machinery at work -- surviving
// ranks adopt the dead ranks' queued tasks and steal transactions, the
// termination tree resplices around the holes, and the traversal still
// matches the sequential node count exactly.
//
//   ./fault_demo --ranks 8 --scale 10
//   ./fault_demo --plan "kill:rank=2,at=80us;kill:rank=6,at=160us"
//   ./fault_demo --detector   # deaths detected by heartbeat, not oracle
//   ./fault_demo --join "rank=6,at=2ms;rank=7,at=2ms"   # grow mid-run
//   ./fault_demo --ckpt at=4ms                          # quiesce+snapshot
//
// Fail-stop kills need the deterministic sim backend: with the same plan
// and seed the whole run, trace included, replays bit-for-bit.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "detect/membership.hpp"
#include "elastic/elastic.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "metrics/monitor.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

using namespace scioto;
using namespace scioto::apps;

int main(int argc, char** argv) {
  Options opts("fault_demo", "UTS recovery under injected rank failures");
  opts.add_int("ranks", 8, "number of SPMD ranks");
  opts.add_int("scale", 10, "geometric tree depth (gen_mx)");
  opts.add_int("seed", 42, "runtime seed (drives backoff jitter)");
  opts.add_string("plan", "kill:rank=3,at=5ms;kill:rank=5,at=9ms",
                  "fault plan (compact spec, JSON, or @file)");
  opts.add_string("out", "", "optional Chrome trace JSON output file");
  opts.add_flag("detector", false,
                "detect deaths with the heartbeat detector instead of the "
                "alive-oracle (lease-fenced adoption)");
  opts.add_flag("live", false,
                "render the live fleet dashboard during the run (with "
                "--detector, killed ranks walk alive -> suspect -> dead)");
  opts.add_string("join", "",
                  "elastic joins: \"rank=R,at=T\" rules (';'-separated); "
                  "those ranks start parked and are admitted mid-run");
  opts.add_string("ckpt", "",
                  "checkpoint rule, e.g. \"at=4ms\": quiesce the fleet and "
                  "snapshot queue state to --ckpt-path");
  opts.add_string("ckpt-path", "fault_demo.ckpt",
                  "checkpoint manifest path (parts at <path>.r<k>)");
  if (!opts.parse(argc, argv)) return 0;

  const bool detector = opts.get_flag("detector");
  if (detector) {
    detect::Config dc = detect::config();
    dc.enabled = true;
    detect::set_config(dc);
  }
  const bool live = opts.get_flag("live") && SCIOTO_METRICS_ENABLED;
  if (opts.get_flag("live") && !live) {
    std::printf("--live: metrics compiled out (SCIOTO_METRICS=OFF); "
                "skipping dashboard\n");
  }

  const int nranks = static_cast<int>(opts.get_int("ranks"));

  // --join / --ckpt translate to fault-plan rules ("join:...", "ckpt:...")
  // appended to --plan, and arm the elastic layer for the run.
  std::string spec = opts.get_string("plan");
  auto append_rules = [&spec](const std::string& arg, const char* kind) {
    std::size_t pos = 0;
    while (pos <= arg.size()) {
      std::size_t semi = arg.find(';', pos);
      std::string one = arg.substr(
          pos, semi == std::string::npos ? std::string::npos : semi - pos);
      if (!one.empty()) {
        if (!spec.empty()) spec += ';';
        spec += kind;
        spec += ':';
        spec += one;
      }
      if (semi == std::string::npos) break;
      pos = semi + 1;
    }
  };
  const bool elastic_req =
      !opts.get_string("join").empty() || !opts.get_string("ckpt").empty();
  if (elastic_req && !SCIOTO_ELASTIC_ENABLED) {
    std::printf("--join/--ckpt: elastic membership compiled out "
                "(SCIOTO_ELASTIC=OFF); ignoring\n");
  } else if (elastic_req) {
    append_rules(opts.get_string("join"), "join");
    append_rules(opts.get_string("ckpt"), "ckpt");
    elastic::Config ec = elastic::config();
    ec.enabled = true;
    if (!opts.get_string("ckpt").empty() && ec.ckpt_path.empty()) {
      ec.ckpt_path = opts.get_string("ckpt-path");
    }
    elastic::set_config(ec);
  }

  fault::FaultPlan plan = fault::FaultPlan::parse(spec);
  std::printf("fault plan (%d events):\n%s",
              static_cast<int>(plan.events.size()),
              plan.describe().c_str());

  UtsParams tree = uts_bench();
  tree.gen_mx = static_cast<int>(opts.get_int("scale"));
  UtsCounts expected = uts_sequential(tree);
  std::printf("tree %s: %llu nodes\n", uts_describe(tree).c_str(),
              static_cast<unsigned long long>(expected.nodes));

  pgas::Config cfg;
  cfg.nranks = nranks;
  cfg.backend = pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008_uniform();
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed"));

  trace::start(nranks);
  fault::start(nranks, plan, cfg.seed);

  // --live: demo-owned metrics session + TTY dashboard. With --detector
  // the rank states come from the heartbeat detector's membership view
  // (alive -> suspect -> confirmed dead); otherwise from the fault oracle.
  if (live) {
    metrics::start(nranks);
    metrics::MonitorOptions mopts;
    mopts.live = true;
    metrics::monitor_start(nranks, mopts);
    if (detector) {
      metrics::monitor_set_liveness([](Rank r) {
        if (!detect::alive(r)) return metrics::RankState::Dead;
        if (detect::suspected(r)) return metrics::RankState::Suspect;
        return metrics::RankState::Alive;
      });
    } else {
      metrics::monitor_set_liveness([](Rank r) {
        return fault::alive(r) ? metrics::RankState::Alive
                               : metrics::RankState::Dead;
      });
    }
  }

  UtsResult res;
  bool got_result = false;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    UtsRunConfig rc;
    // Killed ranks throw fault::RankKilled out of the driver (run_spmd
    // treats that as a clean exit); only survivors reach the assignment.
    res = uts_run_scioto_ft(rt, tree, rc);
    got_result = true;
  });

  if (live) {
    // Count suspect/dead state transitions the monitor observed before
    // tearing the session down.
    int peak_suspects = 0, peak_dead = 0;
    for (const metrics::FleetSample& s : metrics::monitor_samples()) {
      peak_suspects = std::max(peak_suspects, s.suspects);
      peak_dead = std::max(peak_dead, s.dead);
    }
    std::printf("live monitor: %zu samples; peak %d suspect, %d dead\n",
                metrics::monitor_samples().size(), peak_suspects, peak_dead);
    metrics::monitor_stop();
    metrics::stop();
  }

  fault::Summary inj = fault::summary();
  std::printf("\ninjected: %lld kills, %lld drops, %lld stalls, "
              "%lld truncations\n",
              inj.kills, inj.drops, inj.stalls, inj.truncations);
  std::printf("survivors: %d of %d ranks (", res.survivors, nranks);
  for (Rank r = 0; r < nranks; ++r) {
    std::printf("%s%c", fault::alive(r) ? "+" : "-",
                r + 1 == nranks ? ')' : ' ');
  }
  std::printf("\n");
  fault::stop();

  if (!got_result) {
    std::printf("no surviving rank returned a result -- plan killed "
                "everyone?\n");
    trace::stop();
    return 1;
  }

  // Recovery analysis: scheduler counters first, then the trace view.
  std::printf("\nrecovery: %llu tasks adopted from dead ranks, "
              "%llu steals aborted, %llu op retries, "
              "%llu termination-tree resplices\n",
              static_cast<unsigned long long>(res.stats.tasks_recovered),
              static_cast<unsigned long long>(res.stats.steals_aborted),
              static_cast<unsigned long long>(res.stats.op_retries),
              static_cast<unsigned long long>(res.stats.td_resplices));

  std::vector<trace::Event> evs = trace::all_events();
  trace::StealMatrix sm = trace::steal_matrix(evs, nranks);
  sm.table().print(
      "tasks moved (rows=thief; 'recovered' = adopted from the dead)");
  trace::breakdown_table(trace::time_breakdown(evs, nranks))
      .print("per-rank time (dead ranks stop accruing at death)");

  if (opts.get_flag("detector")) {
    detect::Stats ds = detect::stats();
    std::printf("\ndetector: %llu heartbeats, %llu probes, %llu suspects, "
                "%llu refutes, %llu confirms, %llu fence aborts, "
                "%llu rejoins\n",
                static_cast<unsigned long long>(ds.heartbeats),
                static_cast<unsigned long long>(ds.probes),
                static_cast<unsigned long long>(ds.suspects),
                static_cast<unsigned long long>(ds.refutes),
                static_cast<unsigned long long>(ds.confirms),
                static_cast<unsigned long long>(ds.fence_aborts),
                static_cast<unsigned long long>(ds.rejoins));
    std::vector<trace::DetectionRecord> dl =
        trace::detection_latency(evs, nranks);
    if (!dl.empty()) {
      trace::detection_table(dl).print(
          "detection latency (kill -> first ConfirmDead)");
    }
  }

  if (elastic_req && SCIOTO_ELASTIC_ENABLED) {
    elastic::Stats es = elastic::stats();
    detect::Stats ds = detect::stats();
    std::printf("\nelastic: %llu ranks joined in %llu waves, "
                "%llu checkpoints, %llu restores\n",
                static_cast<unsigned long long>(ds.joins),
                static_cast<unsigned long long>(ds.grows),
                static_cast<unsigned long long>(es.checkpoints),
                static_cast<unsigned long long>(es.restores));
    if (es.checkpoints > 0) {
      std::printf("checkpoint manifest: %s\n",
                  elastic::config().ckpt_path.c_str());
    }
  }

  const std::string& out = opts.get_string("out");
  if (!out.empty() && trace::write_chrome_trace_file(out)) {
    std::printf("trace: wrote %s\n", out.c_str());
  }
  trace::stop();

  bool ok = res.counts == expected;
  std::printf("\ntraversal %s: %llu nodes counted across all patches "
              "(expected %llu)\n",
              ok ? "OK" : "MISMATCH",
              static_cast<unsigned long long>(res.counts.nodes),
              static_cast<unsigned long long>(expected.nodes));
  return ok ? 0 : 1;
}
