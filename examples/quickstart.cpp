// Quickstart: the smallest complete Scioto program.
//
// Launches an SPMD region, creates a task collection, seeds it with tasks
// that recursively spawn children, processes it to global termination, and
// gathers per-rank results through a common local object.
//
//   ./quickstart --ranks 8 --backend sim --depth 12
//
// Backends: "sim" (deterministic virtual-time cluster; default) or
// "threads" (real OS threads).
#include <cstdio>

#include "base/options.hpp"
#include "scioto/task_collection.hpp"

using namespace scioto;

namespace {

struct TreeTask {
  int depth;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts("quickstart", "minimal Scioto task-parallel program");
  opts.add_int("ranks", 8, "number of SPMD ranks");
  opts.add_string("backend", "sim", "execution backend: sim | threads");
  opts.add_int("depth", 12, "depth of the spawned binary task tree");
  if (!opts.parse(argc, argv)) return 0;

  pgas::Config cfg;
  cfg.nranks = static_cast<int>(opts.get_int("ranks"));
  cfg.backend = opts.get_string("backend") == "threads"
                    ? pgas::BackendKind::Threads
                    : pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008_uniform();
  const int depth = static_cast<int>(opts.get_int("depth"));

  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    // 1. Every rank collectively creates the task collection.
    TaskCollection tc(rt);

    // 2. Register a per-rank accumulator as a common local object so
    //    migrating tasks always find the local instance.
    std::uint64_t my_count = 0;
    CloHandle counter = tc.register_clo(&my_count);

    // 3. Collectively register the task callback. Tasks spawn two children
    //    until the depth runs out; the scheduler balances them with
    //    locality-aware work stealing.
    TaskHandle fib = tc.register_callback([counter](TaskContext& ctx) {
      ctx.tc.clo<std::uint64_t>(counter) += 1;
      int d = ctx.body_as<TreeTask>().depth;
      if (d > 0) {
        Task child = ctx.tc.task_create(sizeof(TreeTask),
                                        ctx.header.callback);
        child.body_as<TreeTask>().depth = d - 1;
        ctx.tc.add_local(child);
        ctx.tc.add_local(child);
      }
    });

    // 4. Seed one root task and enter the MIMD region.
    if (rt.me() == 0) {
      Task root = tc.task_create(sizeof(TreeTask), fib);
      root.body_as<TreeTask>().depth = depth;
      tc.add_local(root);
    }
    tc.process();

    // 5. Report.
    std::uint64_t total = rt.allreduce_sum(my_count);
    Table stats = tc.stats_table();  // collective
    if (rt.me() == 0) {
      std::printf("ranks=%d depth=%d tasks_executed=%llu (expected %llu)\n",
                  rt.nprocs(), depth,
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>((1ull << (depth + 1)) - 1));
      stats.print("scheduler statistics (summed over ranks)");
      if (rt.simulated()) {
        std::printf("virtual makespan: %.3f ms\n", to_ms(rt.now()));
      }
    }
    tc.destroy();
  });
  return 0;
}
