// UTS demo: traverse an unbalanced tree under Scioto, the no-split queue
// variant, or the MPI-style work-stealing baseline, and report throughput
// plus load-balancing statistics.
//
//   ./uts_demo --ranks 16 --tree geo --scale 10 --scheduler scioto
//   ./uts_demo --scheduler mpi-ws --machine xt4
#include <cstdio>

#include "apps/uts/uts_drivers.hpp"
#include "base/options.hpp"
#include "fault/fault.hpp"

using namespace scioto;
using namespace scioto::apps;

int main(int argc, char** argv) {
  Options opts("uts_demo", "Unbalanced Tree Search demo");
  opts.add_int("ranks", 16, "number of SPMD ranks");
  opts.add_string("machine", "cluster",
                  "machine model: cluster | cluster-uniform | xt4 | test");
  opts.add_string("tree", "geo", "tree family: geo | bin");
  opts.add_int("scale", 10, "geometric depth (gen_mx) / binomial root size");
  opts.add_int("seed", 19, "tree seed");
  opts.add_string("scheduler", "scioto",
                  "scioto | no-split | wait-free | lockfree | mpi-ws");
  opts.add_int("chunk", 10, "steal chunk size");
  if (!opts.parse(argc, argv)) return 0;

  UtsParams tree;
  if (opts.get_string("tree") == "bin") {
    tree = uts_binomial_small();
    tree.b0 = static_cast<double>(opts.get_int("scale")) * 16;
  } else {
    tree = uts_bench();
    tree.gen_mx = static_cast<int>(opts.get_int("scale"));
  }
  tree.seed = static_cast<int>(opts.get_int("seed"));

  pgas::Config cfg;
  cfg.nranks = static_cast<int>(opts.get_int("ranks"));
  cfg.machine = sim::machine_by_name(opts.get_string("machine"));

  UtsCounts expected = uts_sequential(tree);
  std::printf("tree %s: %llu nodes, %llu leaves, depth %lld\n",
              uts_describe(tree).c_str(),
              static_cast<unsigned long long>(expected.nodes),
              static_cast<unsigned long long>(expected.leaves),
              static_cast<long long>(expected.max_depth));

  const std::string sched = opts.get_string("scheduler");
  UtsResult res;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    UtsRunConfig rc;
    rc.chunk = static_cast<int>(opts.get_int("chunk"));
    rc.queue_mode = sched == "no-split"    ? QueueMode::NoSplit
                    : sched == "wait-free" ? QueueMode::WaitFreeSteal
                    : sched == "lockfree"  ? QueueMode::LockFree
                                           : QueueMode::Split;
    if (sched == "mpi-ws") {
      res = uts_run_mpi_ws(rt, tree, rc);
    } else if (fault::active()) {
      // SCIOTO_FAULT_PLAN armed a fault session in run_spmd: use the
      // fault-tolerant driver so counts from killed ranks survive.
      res = uts_run_scioto_ft(rt, tree, rc);
    } else {
      res = uts_run_scioto(rt, tree, rc);
    }
  });

  std::printf("%s on %d ranks (%s): %.2f Mnodes/s, elapsed %.3f ms\n",
              sched.c_str(), cfg.nranks, cfg.machine.name.c_str(),
              res.mnodes_per_sec, to_ms(res.elapsed));
  if (sched == "mpi-ws") {
    std::printf("steals=%llu tasks_stolen=%llu polls=%llu\n",
                static_cast<unsigned long long>(res.steals),
                static_cast<unsigned long long>(res.tasks_stolen),
                static_cast<unsigned long long>(res.polls));
  } else {
    tc_stats_table(res.stats).print(
        "scheduler statistics (summed over ranks)");
  }
  bool ok = res.counts == expected;
  std::printf("traversal %s: counted %llu nodes\n", ok ? "OK" : "MISMATCH",
              static_cast<unsigned long long>(res.counts.nodes));
  return ok ? 0 : 1;
}
