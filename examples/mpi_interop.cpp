// MPI interoperability (paper §2.3): task output through common local
// objects only.
//
// When Scioto runs over plain MPI there is no global address space for
// tasks to write results into, so CLOs are "the only mechanism whereby
// tasks can produce results". This example estimates pi by Monte Carlo:
// tasks are sample batches that accumulate hit counts into whichever
// rank's CLO they execute on; afterwards the partial counts travel to
// rank 0 over two-sided messages -- the whole program uses no one-sided
// data beyond the task collection itself.
//
//   ./mpi_interop --ranks 12 --batches 512 --samples 4096
#include <cstdio>

#include "base/options.hpp"
#include "base/rng.hpp"
#include "scioto/task_collection.hpp"

using namespace scioto;

namespace {

struct Batch {
  std::uint64_t seed;
  std::int32_t samples;
};

struct Partial {
  std::uint64_t hits = 0;
  std::uint64_t samples = 0;
  std::uint64_t tasks = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts("mpi_interop", "pi by Monte Carlo with CLO-only output");
  opts.add_int("ranks", 12, "number of SPMD ranks");
  opts.add_int("batches", 512, "number of sample-batch tasks");
  opts.add_int("samples", 4096, "samples per batch");
  if (!opts.parse(argc, argv)) return 0;

  pgas::Config cfg;
  cfg.nranks = static_cast<int>(opts.get_int("ranks"));
  cfg.machine = sim::cluster2008_uniform();
  const std::int64_t batches = opts.get_int("batches");
  const std::int32_t samples = static_cast<std::int32_t>(
      opts.get_int("samples"));

  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    TaskCollection tc(rt);
    Partial my_partial;  // this rank's CLO instance
    CloHandle partial = tc.register_clo(&my_partial);

    TaskHandle mc = tc.register_callback([partial, samples](TaskContext& ctx) {
      const Batch& b = ctx.body_as<Batch>();
      Xoshiro256 rng(b.seed);
      std::uint64_t hits = 0;
      for (std::int32_t s = 0; s < b.samples; ++s) {
        double x = rng.uniform(-1, 1), y = rng.uniform(-1, 1);
        if (x * x + y * y <= 1.0) ++hits;
      }
      ctx.tc.runtime().charge(us(0.05) * b.samples / 100);
      Partial& out = ctx.tc.clo<Partial>(partial);
      out.hits += hits;
      out.samples += static_cast<std::uint64_t>(b.samples);
      out.tasks += 1;
    });

    if (rt.me() == 0) {
      Task t = tc.task_create(sizeof(Batch), mc);
      for (std::int64_t i = 0; i < batches; ++i) {
        t.body_as<Batch>() = {derive_seed(2026, 0, static_cast<int>(i)),
                              samples};
        tc.add_local(t);
        t.reuse();
      }
    }
    tc.process();

    // "MPI phase": partial results travel over two-sided messages only.
    if (rt.me() != 0) {
      rt.send(0, /*tag=*/1, &my_partial, sizeof(my_partial));
    } else {
      Partial total = my_partial;
      for (int r = 1; r < rt.nprocs(); ++r) {
        Partial p;
        rt.recv(pgas::kAnyRank, 1, &p, sizeof(p));
        total.hits += p.hits;
        total.samples += p.samples;
        total.tasks += p.tasks;
      }
      double pi = 4.0 * static_cast<double>(total.hits) /
                  static_cast<double>(total.samples);
      bool ok = total.tasks == static_cast<std::uint64_t>(batches) &&
                pi > 3.10 && pi < 3.18;
      std::printf("pi ~= %.6f from %llu samples in %llu tasks across %d "
                  "ranks -> %s\n",
                  pi, static_cast<unsigned long long>(total.samples),
                  static_cast<unsigned long long>(total.tasks), rt.nprocs(),
                  ok ? "OK" : "FAILED");
      if (!ok) {
        std::exit(1);
      }
    }
    tc.destroy();
  });
  return 0;
}
