// Tracing demo: records a traced UTS-style task workload, exports a
// Chrome trace-event JSON (load into Perfetto / chrome://tracing), and
// prints the post-run analyses -- who stole from whom, per-rank
// working/searching breakdown, and queue-occupancy extrema.
//
//   ./trace_demo --ranks 8 --depth 12 --out trace.json
//
// Under the default sim backend the trace is stamped with virtual time and
// is bit-identical across runs with the same seed.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "base/options.hpp"
#include "scioto/task_collection.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"
#include "trace/lineage.hpp"
#include "trace/trace.hpp"

using namespace scioto;

namespace {

struct TreeTask {
  int depth;
};

}  // namespace

int main(int argc, char** argv) {
  Options opts("trace_demo", "event tracing of a Scioto task workload");
  opts.add_int("ranks", 8, "number of SPMD ranks");
  opts.add_string("backend", "sim", "execution backend: sim | threads");
  opts.add_int("depth", 12, "depth of the spawned binary task tree");
  opts.add_int("work", 5000, "virtual compute cost per task (ns, sim only)");
  opts.add_string("out", "trace.json", "Chrome trace JSON output file");
  opts.add_flag("flow", false,
                "stamp task lineage: cross-rank flow arrows in the trace, "
                "plus the critical path and span analytics after the run");
  if (!opts.parse(argc, argv)) return 0;
  bool flow = opts.get_flag("flow");
  if (flow && !SCIOTO_LINEAGE_ENABLED) {
    std::printf("--flow: lineage compiled out (SCIOTO_LINEAGE=OFF); "
                "skipping flow analytics\n");
    flow = false;
  }

  pgas::Config cfg;
  cfg.nranks = static_cast<int>(opts.get_int("ranks"));
  cfg.backend = opts.get_string("backend") == "threads"
                    ? pgas::BackendKind::Threads
                    : pgas::BackendKind::Sim;
  cfg.machine = sim::cluster2008_uniform();
  const int depth = static_cast<int>(opts.get_int("depth"));
  const TimeNs work = opts.get_int("work");

  trace::start(cfg.nranks);
  // A demo-owned lineage session (run_spmd leaves an already-active one
  // to its owner): every task gets an id/parent/hops trailer and the
  // SpawnEdge/MigrateEdge/ExecSpan events land in the trace rings above.
  if (flow) trace::lineage::start(cfg.nranks);
  TcStats stats;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) {
    // A binary tree processed depth-first keeps the private queue only
    // ~depth tasks deep, so use a small steal chunk (release threshold is
    // 2x the chunk) to keep work visible to thieves.
    TcConfig tcc;
    tcc.chunk_size = 2;
    TaskCollection tc(rt, tcc);
    TaskHandle spawn = tc.register_callback([&](TaskContext& ctx) {
      // Charge a virtual compute cost so the tree is worth stealing
      // (zero-cost tasks drain instantly in virtual time).
      ctx.tc.runtime().charge(work);
      int d = ctx.body_as<TreeTask>().depth;
      if (d > 0) {
        Task child =
            ctx.tc.task_create(sizeof(TreeTask), ctx.header.callback);
        child.body_as<TreeTask>().depth = d - 1;
        ctx.tc.add_local(child);
        ctx.tc.add_local(child);
      }
    });
    if (rt.me() == 0) {
      Task root = tc.task_create(sizeof(TreeTask), spawn);
      root.body_as<TreeTask>().depth = depth;
      tc.add_local(root);
    }
    tc.process();
    TcStats g = tc.stats_global();
    if (rt.me() == 0) {
      stats = g;
    }
    tc.destroy();
  });

  const std::string& out = opts.get_string("out");
  if (trace::write_chrome_trace_file(out)) {
    std::printf("trace: wrote %s (%d ranks, %llu dropped events)\n",
                out.c_str(), trace::session_nranks(),
                static_cast<unsigned long long>(trace::total_dropped()));
  }

  // Post-run analyses over the recorded stream.
  const int n = trace::session_nranks();
  std::vector<trace::Event> evs = trace::all_events();
  std::printf("recorded %zu events\n", evs.size());

  trace::StealMatrix sm = trace::steal_matrix(evs, n);
  sm.table().print("who stole from whom (tasks moved; rows=thief)");
  std::printf("total: %llu steals moving %llu tasks (TcStats says %llu/%llu)\n",
              static_cast<unsigned long long>(sm.total_steals()),
              static_cast<unsigned long long>(sm.total_tasks()),
              static_cast<unsigned long long>(stats.steals),
              static_cast<unsigned long long>(stats.tasks_stolen));

  std::vector<trace::RankBreakdown> bd = trace::time_breakdown(evs, n);
  trace::breakdown_table(bd).print(
      "per-rank time breakdown (from trace events)");

  trace::duration_table(trace::duration_percentiles(evs))
      .print("latency percentiles (log2 buckets; shared with live metrics)");

  auto occ = trace::occupancy_timeline(evs, n);
  std::int64_t peak = 0;
  for (const auto& series : occ) {
    for (const auto& s : series) {
      peak = std::max(peak, s.tasks);
    }
  }
  std::printf("peak queue occupancy across ranks: %lld tasks\n",
              static_cast<long long>(peak));

  if (flow) {
    trace::LineageReport rep =
        trace::lineage_report(evs, n, trace::total_dropped());
    trace::lineage_table(rep).print(
        "lineage span analytics (spawn -> steal -> exec)");
    std::printf("lineage: %llu migrations vs %llu tasks stolen in TcStats, "
                "%zu happens-before violations\n",
                static_cast<unsigned long long>(rep.migrations),
                static_cast<unsigned long long>(stats.tasks_stolen),
                rep.violations.size());
    for (const std::string& v : rep.violations) {
      std::printf("  violation: %s\n", v.c_str());
    }

    trace::CriticalPath cp = trace::critical_path(rep, evs, n);
    trace::critical_path_table(cp).print(
        "weighted critical path (longest spawn -> steal -> exec chain)");
    // Top-3 blame ranks: where the path actually spent its time.
    std::vector<int> order(cp.rank_blame.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int>(i);
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (cp.rank_blame[a] != cp.rank_blame[b]) {
        return cp.rank_blame[a] > cp.rank_blame[b];
      }
      return a < b;
    });
    std::printf("critical-path blame:");
    for (std::size_t i = 0; i < order.size() && i < 3; ++i) {
      std::printf("%s rank %d (%.1f us)", i ? "," : "", order[i],
                  static_cast<double>(cp.rank_blame[order[i]]) / 1e3);
    }
    std::printf(" -- %.1f us total, %.1f us exec / %.1f us waiting\n",
                static_cast<double>(cp.length) / 1e3,
                static_cast<double>(cp.exec_ns) / 1e3,
                static_cast<double>(cp.queue_ns) / 1e3);
    trace::lineage::stop();
  }

  trace::stop();
  return 0;
}
