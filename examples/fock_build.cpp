// SCF demo: iterate the synthetic closed-shell Fock build to
// self-consistency under either load-balancing scheme and report the
// per-iteration energies plus parallel Fock-build time.
//
//   ./fock_build --ranks 16 --shells 24 --iters 4 --scheduler scioto
#include <cstdio>

#include "apps/scf/scf_drivers.hpp"
#include "base/options.hpp"

using namespace scioto;
using namespace scioto::apps;

int main(int argc, char** argv) {
  Options opts("fock_build", "closed-shell SCF with Scioto task management");
  opts.add_int("ranks", 16, "number of SPMD ranks");
  opts.add_string("machine", "cluster-uniform",
                  "machine model: cluster | cluster-uniform | xt4 | test");
  opts.add_int("shells", 24, "number of shells");
  opts.add_int("iters", 4, "SCF iterations");
  opts.add_int("seed", 1234, "molecule seed");
  opts.add_string("scheduler", "scioto", "scioto | counter");
  if (!opts.parse(argc, argv)) return 0;

  ScfConfig scfg;
  scfg.nshells = static_cast<int>(opts.get_int("shells"));
  scfg.iterations = static_cast<int>(opts.get_int("iters"));
  scfg.seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  ScfSystem sys = ScfSystem::build(scfg);
  std::printf("synthetic molecule: %d shells, %lld basis functions, "
              "%lld occupied orbitals\n",
              sys.nsh, static_cast<long long>(sys.nbf),
              static_cast<long long>(sys.nocc));

  pgas::Config cfg;
  cfg.nranks = static_cast<int>(opts.get_int("ranks"));
  cfg.machine = sim::machine_by_name(opts.get_string("machine"));
  LbScheme lb = opts.get_string("scheduler") == "counter"
                    ? LbScheme::GlobalCounter
                    : LbScheme::Scioto;

  ScfRunResult res;
  pgas::run_spmd(cfg, [&](pgas::Runtime& rt) { res = scf_run(rt, sys, lb); });

  std::vector<double> expected = scf_reference(sys);
  bool ok = true;
  for (std::size_t i = 0; i < res.energies.size(); ++i) {
    bool match = res.energies[i] == expected[i];
    ok = ok && match;
    std::printf("iter %zu: E = %+.10f  %s\n", i, res.energies[i],
                match ? "(matches sequential reference)" : "(MISMATCH)");
  }
  std::printf("%s on %d ranks: Fock build %.3f ms total, %llu tasks, "
              "%llu steals\n",
              lb_name(lb), cfg.nranks, to_ms(res.fock_elapsed),
              static_cast<unsigned long long>(res.tasks),
              static_cast<unsigned long long>(res.steals));
  return ok ? 0 : 1;
}
