// Adaptive control plane tests (src/control): rule parsing, the
// hysteresis/dwell rule engine as a pure state machine, KnobSet clamping,
// live knob flips through a running collection (the set_knob plumbing the
// control plane rides on), armed-controller UTS runs whose decision JSONL
// must be bit-deterministic across reruns on the sim backend, the
// zero-perturbation guarantee (an armed-but-quiet controller leaves the
// trace stream byte-identical to a controller-off run), composition with
// the failure detector (dead ranks never retune; wards inherit published
// knobs), the monitor's hot-victim digest, threads-backend smoke runs for
// TSan, and the scioto_ctl_* C API.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "apps/uts/uts_drivers.hpp"
#include "control/control.hpp"
#include "detect/membership.hpp"
#include "fault/fault.hpp"
#include "fault/plan.hpp"
#include "metrics/metrics.hpp"
#include "metrics/monitor.hpp"
#include "scioto/scioto_c.h"
#include "scioto/task_collection.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

using namespace scioto;
using namespace scioto::testing;

#if SCIOTO_CONTROL_ENABLED && SCIOTO_METRICS_ENABLED

namespace {

using control::Decision;
using control::Knob;
using control::kNumKnobs;
using control::KnobSet;
using control::RuleEngine;
using control::Rules;
using control::Signals;

constexpr int kChunk = static_cast<int>(Knob::StealChunk);
constexpr int kHalf = static_cast<int>(Knob::StealHalf);
constexpr int kRetarget = static_cast<int>(Knob::RetargetBudget);
constexpr int kRelease = static_cast<int>(Knob::ReleaseThreshold);
constexpr int kVset = static_cast<int>(Knob::VictimSetSize);

/// Stages a controller config for the enclosing scope and restores the
/// prior staged config on exit (run_spmd arms/disarms the session).
class CtlGuard {
 public:
  explicit CtlGuard(control::Mode m, TimeNs period = 0,
                    const Rules* rules = nullptr)
      : saved_(control::config()) {
    control::Config c = saved_;
    c.mode = m;
    if (period > 0) c.period = period;
    if (rules != nullptr) c.rules = *rules;
    control::set_config(c);
  }
  ~CtlGuard() { control::set_config(saved_); }

 private:
  control::Config saved_;
};

/// Applies the engine's decisions the way an owner would (unclamped here:
/// the unit tests drive the engine directly, without a KnobSet).
void apply_all(const std::vector<Decision>& ds, std::int64_t cur[kNumKnobs]) {
  for (const Decision& d : ds) cur[static_cast<int>(d.knob)] = d.value;
}

bool has_decision(const std::vector<Decision>& ds, Knob k, std::int64_t v) {
  for (const Decision& d : ds) {
    if (d.knob == k && d.value == v) return true;
  }
  return false;
}

/// The stock baseline the PR 3 queue starts from: chunk 10, fixed-width
/// steals, release threshold 20, retarget budget 4, unrestricted victims.
void stock_baseline(std::int64_t base[kNumKnobs]) {
  base[kChunk] = 10;
  base[kHalf] = 0;
  base[kRetarget] = 4;
  base[kRelease] = 20;
  base[kVset] = 0;
}

Signals imbalanced(std::uint64_t shared_depth = 0) {
  Signals s;
  s.cov = 2.0;
  s.have_cov = true;
  s.shared_depth = shared_depth;
  return s;
}

Signals calm_sig() {
  Signals s;
  s.cov = 0.1;
  s.have_cov = true;
  s.attempts = 10;
  s.steals = 10;  // success rate 1.0 >= succ_hi
  return s;
}

}  // namespace

// ---- Rules: parse / to_string ----

TEST(CtlRules, ToStringRoundTripsThroughParse) {
  Rules def;
  Rules parsed;
  std::string err;
  ASSERT_TRUE(Rules::parse(def.to_string(), &parsed, &err)) << err;
  EXPECT_EQ(parsed.to_string(), def.to_string());
}

TEST(CtlRules, ParseOverridesOnlyNamedKeys) {
  Rules r;
  std::string err;
  ASSERT_TRUE(Rules::parse(
      "dwell=5;hot_set=2;chunk_burst=32;release_min=4;cov_hi=1.5", &r, &err))
      << err;
  EXPECT_EQ(r.dwell, 5);
  EXPECT_EQ(r.hot_set, 2);
  EXPECT_EQ(r.chunk_burst, 32);
  EXPECT_EQ(r.release_min, 4);
  EXPECT_DOUBLE_EQ(r.cov_hi, 1.5);
  // Untouched keys keep their defaults.
  Rules def;
  EXPECT_DOUBLE_EQ(r.succ_lo, def.succ_lo);
  EXPECT_EQ(r.min_attempts, def.min_attempts);
  // Empty spec (and stray separators) are a no-op.
  Rules r2;
  ASSERT_TRUE(Rules::parse("", &r2, &err));
  ASSERT_TRUE(Rules::parse(";;dwell=2;;", &r2, &err)) << err;
  EXPECT_EQ(r2.dwell, 2);
}

TEST(CtlRules, ParseRejectsBadSpecsWithoutMutatingOutput) {
  const char* bad[] = {
      "nonsense",          // no key=value shape
      "dwell=abc",         // non-numeric value
      "frobnicate=1",      // unknown key
      "dwell=0",           // dwell must be >= 1
      "chunk_step=0",      // chunk_step must be >= 1
      "dwell=3;cov_hi",    // trailing junk pair
  };
  for (const char* spec : bad) {
    Rules r;
    r.hot_set = 3;  // sentinel: must survive a failed parse
    std::string err;
    EXPECT_FALSE(Rules::parse(spec, &r, &err)) << spec;
    EXPECT_FALSE(err.empty()) << spec;
    EXPECT_EQ(r.hot_set, 3) << spec << " mutated output on failure";
  }
}

// ---- KnobSet: clamping and change detection ----

TEST(CtlKnobs, SetClampsToInitBounds) {
  KnobSet ks;
  ks.init(/*chunk=*/10, /*chunk_max=*/64, /*steal_half=*/false,
          /*retarget_budget=*/4, /*release_threshold=*/20, /*nprocs=*/8);
  EXPECT_EQ(ks.get(Knob::StealChunk), 10);
  EXPECT_EQ(ks.get(Knob::StealHalf), 0);
  EXPECT_EQ(ks.get(Knob::RetargetBudget), 4);
  EXPECT_EQ(ks.get(Knob::ReleaseThreshold), 20);
  EXPECT_EQ(ks.get(Knob::VictimSetSize), 0);

  // The chunk may never exceed chunk_max: steal buffers are sized for it.
  EXPECT_TRUE(ks.set(Knob::StealChunk, 1000));
  EXPECT_EQ(ks.get(Knob::StealChunk), 64);
  EXPECT_TRUE(ks.set(Knob::StealChunk, 0));
  EXPECT_EQ(ks.get(Knob::StealChunk), 1);
  EXPECT_TRUE(ks.set(Knob::StealHalf, 5));
  EXPECT_EQ(ks.get(Knob::StealHalf), 1);
  EXPECT_TRUE(ks.set(Knob::ReleaseThreshold, 0));
  EXPECT_EQ(ks.get(Knob::ReleaseThreshold), 1);
  // Victim set caps at nprocs - 1 (you cannot steal from yourself).
  EXPECT_TRUE(ks.set(Knob::VictimSetSize, 100));
  EXPECT_EQ(ks.get(Knob::VictimSetSize), 7);
  // A write that lands on the current value reports no change.
  EXPECT_FALSE(ks.set(Knob::VictimSetSize, 100));
  EXPECT_FALSE(ks.set(Knob::StealHalf, 1));
}

// ---- Rule engine: hysteresis, dwell, burst, unwind ----

TEST(CtlEngine, HighCovFiresOnlyAfterDwellEpochs) {
  Rules rules;  // dwell = 3
  std::int64_t cur[kNumKnobs];
  stock_baseline(cur);
  RuleEngine eng(rules, cur, /*nprocs=*/8);

  std::vector<Decision> ds;
  for (int epoch = 1; epoch < rules.dwell; ++epoch) {
    eng.step(imbalanced(), cur, &ds);
    EXPECT_TRUE(ds.empty()) << "fired at streak " << epoch;
  }
  eng.step(imbalanced(), cur, &ds);
  // The burst response: steal-half on, chunk cap opened to chunk_burst,
  // thieves steered at the hot set. No release change -- this rank's own
  // shared queue (depth 0) is not the imbalance.
  EXPECT_TRUE(has_decision(ds, Knob::StealHalf, 1));
  EXPECT_TRUE(has_decision(ds, Knob::StealChunk, rules.chunk_burst));
  EXPECT_TRUE(has_decision(ds, Knob::VictimSetSize, rules.hot_set));
  for (const Decision& d : ds) {
    EXPECT_NE(d.knob, Knob::ReleaseThreshold);
    EXPECT_EQ(d.reason, control::kReasonHighCov);
  }
  apply_all(ds, cur);

  // Streak persists but every changed knob is frozen by its dwell and
  // already at its target: no further decisions.
  ds.clear();
  eng.step(imbalanced(), cur, &ds);
  EXPECT_TRUE(ds.empty());
}

TEST(CtlEngine, ReleaseHalvesOnlyOnTheDeepRankWithFloor) {
  Rules rules;
  std::int64_t cur[kNumKnobs];
  stock_baseline(cur);
  RuleEngine eng(rules, cur, 8);
  std::vector<Decision> ds;
  // Shared depth 8*rel is the gate: one short of it never touches the
  // release threshold.
  for (int epoch = 0; epoch < 3 * rules.dwell; ++epoch) {
    eng.step(imbalanced(/*shared_depth=*/8 * 20 - 1), cur, &ds);
    apply_all(ds, cur);
    ds.clear();
  }
  EXPECT_EQ(cur[kRelease], 20);

  // At the gate it halves, clamped at release_min.
  std::int64_t base[kNumKnobs];
  stock_baseline(base);
  RuleEngine eng2(rules, base, 8);
  stock_baseline(cur);
  for (int epoch = 0; epoch < 8 * rules.dwell; ++epoch) {
    eng2.step(imbalanced(/*shared_depth=*/100000), cur, &ds);
    apply_all(ds, cur);
    ds.clear();
  }
  EXPECT_EQ(cur[kRelease], rules.release_min);
}

TEST(CtlEngine, LowSuccessGrowsChunkAdditivelyAfterDwell) {
  Rules rules;
  std::int64_t cur[kNumKnobs];
  stock_baseline(cur);
  RuleEngine eng(rules, cur, 8);
  Signals failing;
  failing.attempts = 10;
  failing.steals = 1;  // 0.1 < succ_lo

  std::vector<Decision> ds;
  for (int epoch = 1; epoch < rules.dwell; ++epoch) {
    eng.step(failing, cur, &ds);
    EXPECT_TRUE(ds.empty());
  }
  eng.step(failing, cur, &ds);
  EXPECT_TRUE(has_decision(ds, Knob::StealChunk, 10 + rules.chunk_step));
  EXPECT_TRUE(has_decision(ds, Knob::StealHalf, 1));
  apply_all(ds, cur);
  ds.clear();

  // The dwell freeze: the next dwell-1 epochs stay quiet even though the
  // condition still holds, then the chunk takes another additive step.
  for (int epoch = 1; epoch < rules.dwell; ++epoch) {
    eng.step(failing, cur, &ds);
    EXPECT_TRUE(ds.empty()) << "dwell freeze violated at +" << epoch;
  }
  eng.step(failing, cur, &ds);
  EXPECT_TRUE(has_decision(ds, Knob::StealChunk, 12 + rules.chunk_step));
}

TEST(CtlEngine, TooFewAttemptsNeverTriggersSuccessRules) {
  Rules rules;  // min_attempts = 4
  std::int64_t cur[kNumKnobs];
  stock_baseline(cur);
  RuleEngine eng(rules, cur, 8);
  Signals thin;
  thin.attempts = rules.min_attempts - 1;
  thin.steals = 0;  // 0% success -- but on too small a sample
  std::vector<Decision> ds;
  for (int epoch = 0; epoch < 10 * rules.dwell; ++epoch) {
    eng.step(thin, cur, &ds);
  }
  EXPECT_TRUE(ds.empty());
}

TEST(CtlEngine, SustainedLockBusyBuysARetargetHop) {
  Rules rules;
  std::int64_t cur[kNumKnobs];
  stock_baseline(cur);
  RuleEngine eng(rules, cur, 8);
  Signals busy;
  busy.attempts = 8;
  busy.steals = 6;  // healthy success: only the busy rule may fire
  busy.busy = 4;    // busy*4 >= attempts
  std::vector<Decision> ds;
  for (int epoch = 0; epoch < rules.dwell; ++epoch) {
    eng.step(busy, cur, &ds);
  }
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].knob, Knob::RetargetBudget);
  EXPECT_EQ(ds[0].value, 5);
  EXPECT_EQ(ds[0].reason, control::kReasonBusy);
}

TEST(CtlEngine, CalmUnwindsBurstBackToBaseline) {
  Rules rules;
  std::int64_t base[kNumKnobs];
  stock_baseline(base);
  std::int64_t cur[kNumKnobs];
  stock_baseline(cur);
  RuleEngine eng(rules, base, 8);
  std::vector<Decision> ds;

  // Drive into the full burst response (deep shared queue included).
  for (int epoch = 0; epoch < 8 * rules.dwell; ++epoch) {
    eng.step(imbalanced(/*shared_depth=*/100000), cur, &ds);
    apply_all(ds, cur);
    ds.clear();
  }
  EXPECT_EQ(cur[kChunk], rules.chunk_burst);
  EXPECT_EQ(cur[kHalf], 1);
  EXPECT_EQ(cur[kVset], rules.hot_set);
  EXPECT_EQ(cur[kRelease], rules.release_min);

  // A calm fleet decays everything back: chunk first (it stays the active
  // knob until it reaches baseline), then steal-half, the release
  // threshold doubling home, and the victim set back to uniform.
  bool saw_chunk_decay_before_half_restore = true;
  bool half_restored = false;
  for (int epoch = 0; epoch < 400; ++epoch) {
    eng.step(calm_sig(), cur, &ds);
    for (const Decision& d : ds) {
      EXPECT_EQ(d.reason, control::kReasonCalm);
      if (d.knob == Knob::StealHalf) half_restored = true;
      if (d.knob == Knob::StealChunk && half_restored) {
        saw_chunk_decay_before_half_restore = false;
      }
    }
    apply_all(ds, cur);
    ds.clear();
  }
  EXPECT_TRUE(saw_chunk_decay_before_half_restore);
  for (int k = 0; k < kNumKnobs; ++k) {
    EXPECT_EQ(cur[k], base[k]) << control::knob_name(static_cast<Knob>(k));
  }
  // Once home, calm epochs propose nothing.
  eng.step(calm_sig(), cur, &ds);
  eng.step(calm_sig(), cur, &ds);
  EXPECT_TRUE(ds.empty());
}

// ---- Live knob flips through a running collection (set_knob plumbing) ----

namespace {

struct FlipResult {
  TcStats stats;
  std::int64_t readback[kNumKnobs] = {};
};

/// A bursty binary-tree workload on 4 sim ranks. When `flip` is set,
/// rank 1 rewrites its knobs mid-process() after its 20th task; the
/// read-back values and the global stats come home for inspection.
FlipResult flip_workload(bool flip) {
  FlipResult out;
  run_sim(4, [&](pgas::Runtime& rt) {
    struct Node {
      int depth;
    };
    TcConfig tcc;
    tcc.chunk_size = 2;
    tcc.chunk_max = 64;  // headroom so the live chunk can be raised
    TaskCollection tc(rt, tcc);
    int executed_here = 0;
    TaskHandle h = tc.register_callback([&](TaskContext& ctx) {
      ctx.tc.runtime().charge(2000);
      if (flip && ctx.tc.runtime().me() == 1 && ++executed_here == 20) {
        // Every knob flips mid-run; each must come back live (clamped).
        EXPECT_EQ(ctx.tc.set_knob(Knob::StealChunk, 64), 64);
        EXPECT_EQ(ctx.tc.set_knob(Knob::StealHalf, 1), 1);
        EXPECT_EQ(ctx.tc.set_knob(Knob::RetargetBudget, 9), 9);
        EXPECT_EQ(ctx.tc.set_knob(Knob::ReleaseThreshold, 2), 2);
        EXPECT_EQ(ctx.tc.set_knob(Knob::VictimSetSize, 2), 2);
        EXPECT_EQ(ctx.tc.set_knob(Knob::StealChunk, 1000), 64);  // clamp
      }
      int d = ctx.body_as<Node>().depth;
      if (d > 0) {
        Task child = ctx.tc.task_create(sizeof(Node), ctx.header.callback);
        child.body_as<Node>().depth = d - 1;
        ctx.tc.add_local(child);
        ctx.tc.add_local(child);
      }
    });
    if (rt.me() == 0) {
      Task root = tc.task_create(sizeof(Node), h);
      root.body_as<Node>().depth = 11;
      tc.add_local(root);
    }
    tc.process();
    if (rt.me() == 1) {
      for (int k = 0; k < kNumKnobs; ++k) {
        out.readback[k] = tc.knob(static_cast<Knob>(k));
      }
    }
    TcStats g = tc.stats_global();
    if (rt.me() == 0) out.stats = g;
    tc.destroy();
  });
  return out;
}

}  // namespace

TEST(CtlPlumbing, SetKnobMidRunIsLiveAndChangesStealBehavior) {
  FlipResult base = flip_workload(false);
  FlipResult flip = flip_workload(true);
  // Same tree either way.
  EXPECT_EQ(base.stats.tasks_executed, flip.stats.tasks_executed);
  // The knobs stayed what the mid-run flip set them to...
  EXPECT_EQ(flip.readback[kChunk], 64);
  EXPECT_EQ(flip.readback[kHalf], 1);
  EXPECT_EQ(flip.readback[kRetarget], 9);
  EXPECT_EQ(flip.readback[kRelease], 2);
  EXPECT_EQ(flip.readback[kVset], 2);
  // ... and the queue/steal paths actually read them: rank 1 stealing
  // half with a wide cap (instead of fixed chunks of 2) must move the
  // fleet's steal traffic. If the flip were write-only (the pre-KnobSet
  // plumbing drift), both runs would be identical.
  EXPECT_NE(base.stats.tasks_stolen, flip.stats.tasks_stolen);
}

// ---- Armed controller on UTS: exactness + decision-log determinism ----

namespace {

/// A small bursty binomial tree (the T2 bench's shape, scaled down):
/// a wide root fan-out into subcritical subtrees.
apps::UtsParams bursty_tree() {
  apps::UtsParams p;
  p.tree = apps::UtsTree::Binomial;
  p.seed = 42;
  p.b0 = 1500;
  p.q = 0.110;
  p.m = 8;
  return p;
}

struct CtlRun {
  apps::UtsCounts counts;
  std::string decisions;
  control::Stats stats;
};

CtlRun run_uts_ctl(control::Mode mode, std::uint64_t seed,
                   pgas::BackendKind backend = pgas::BackendKind::Sim) {
  CtlGuard guard(mode, /*period=*/50'000);
  apps::UtsParams tree = bursty_tree();
  CtlRun out;
  run(8, backend,
      [&](pgas::Runtime& rt) {
        apps::UtsRunConfig rc;
        apps::UtsResult res = apps::uts_run_scioto(rt, tree, rc);
        if (rt.me() == 0) out.counts = res.counts;
      },
      seed);
  out.decisions = control::decisions_jsonl();
  out.stats = control::stats();
  return out;
}

}  // namespace

TEST(CtlUts, LocalControllerExactAndDeterministicOverEightSeeds) {
  const apps::UtsCounts expected = apps::uts_sequential(bursty_tree());
  std::uint64_t total_decisions = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    CtlRun a = run_uts_ctl(control::Mode::Local, seed);
    CtlRun b = run_uts_ctl(control::Mode::Local, seed);
    EXPECT_TRUE(a.counts == expected) << "seed " << seed;
    // The full decision sequence -- every rank, every epoch, every knob
    // value, every virtual timestamp -- must replay bit-identically.
    EXPECT_EQ(a.decisions, b.decisions) << "seed " << seed;
    EXPECT_EQ(a.stats.decisions, b.stats.decisions);
    total_decisions += a.stats.decisions;
  }
  // The root burst is exactly the imbalance the rules target: across
  // eight schedules the controller cannot have sat on its hands.
  EXPECT_GT(total_decisions, 0u);
}

TEST(CtlUts, GlobalControllerExactAndDeterministic) {
  const apps::UtsCounts expected = apps::uts_sequential(bursty_tree());
  std::uint64_t total_targets = 0;
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    CtlRun a = run_uts_ctl(control::Mode::Global, seed);
    CtlRun b = run_uts_ctl(control::Mode::Global, seed);
    EXPECT_TRUE(a.counts == expected) << "seed " << seed;
    EXPECT_EQ(a.decisions, b.decisions) << "seed " << seed;
    total_targets += a.stats.targets_published;
  }
  EXPECT_GT(total_targets, 0u);
}

// ---- Zero perturbation: a quiet controller leaves the trace untouched ----

#if SCIOTO_TRACE_ENABLED

TEST(CtlOff, QuietControllerTraceIdenticalToOff) {
  auto traced_run = [&](bool armed) {
    // dwell too large to ever reach: the armed controller polls, scrapes,
    // and runs the monitor every epoch but may not perturb the schedule.
    Rules inert;
    inert.dwell = 1000000;
    CtlGuard guard(armed ? control::Mode::Local : control::Mode::Off,
                   /*period=*/50'000, &inert);
    trace::start(4);
    run_sim(4, [&](pgas::Runtime& rt) {
      apps::UtsRunConfig rc;
      rc.chunk = 2;
      (void)apps::uts_run_scioto(rt, apps::uts_tiny(), rc);
    });
    std::vector<trace::Event> evs = trace::all_events();
    trace::stop();
    return evs;
  };
  std::vector<trace::Event> off = traced_run(false);
  std::vector<trace::Event> on = traced_run(true);
  ASSERT_FALSE(off.empty());
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i].t, on[i].t) << "event " << i;
    ASSERT_EQ(off[i].kind, on[i].kind) << "event " << i;
    ASSERT_EQ(off[i].rank, on[i].rank) << "event " << i;
    ASSERT_EQ(off[i].a, on[i].a) << "event " << i;
    ASSERT_EQ(off[i].b, on[i].b) << "event " << i;
    ASSERT_EQ(off[i].c, on[i].c) << "event " << i;
  }
}

#endif  // SCIOTO_TRACE_ENABLED

// ---- Composition with the failure detector ----

TEST(CtlFaults, DeadRankNeverRetunesWardInheritsPublishedKnobs) {
  metrics::start(2);
  control::Config cfg;
  cfg.mode = control::Mode::Local;
  cfg.period = 1000;
  control::start(2, cfg);
  detect::start(2);

  KnobSet ward, victim;
  ward.init(10, 64, false, 4, 20, 2);
  victim.init(10, 64, false, 4, 20, 2);
  control::attach(0, &ward);
  control::attach(1, &victim);

  // The victim diverges from stock before dying (say, its own controller
  // had opened the chunk), and the divergence is published.
  victim.set(Knob::StealChunk, 33);
  victim.set(Knob::StealHalf, 1);
  control::republish(1);

  {
    std::int64_t pub0[kNumKnobs];
    ASSERT_TRUE(control::published(1, pub0));
    EXPECT_EQ(pub0[kChunk], 33);
  }

  // Death: the detector fences the rank; its epochs must stop cold.
  ASSERT_TRUE(detect::confirm_dead(1, /*by=*/0));
  const std::uint64_t epochs_before = control::stats().epochs;
  control::poll_epoch(1, 10'000, 0);
  control::poll_epoch(1, 20'000, 0);
  EXPECT_EQ(control::stats().epochs, epochs_before)
      << "a dead rank evaluated a controller epoch";

  // The published row outlives the owner...
  control::detach(1);
  std::int64_t pub[kNumKnobs];
  ASSERT_TRUE(control::published(1, pub));
  EXPECT_EQ(pub[kChunk], 33);
  EXPECT_EQ(pub[kHalf], 1);

  // ... so the ward adopting its queue inherits the tuned values.
  control::inherit(0, 1);
  EXPECT_EQ(ward.get(Knob::StealChunk), 33);
  EXPECT_EQ(ward.get(Knob::StealHalf), 1);
  EXPECT_EQ(control::stats().inherits, 1u);
  bool saw_inherit = false;
  for (const control::DecisionRecord& d : control::decisions()) {
    if (d.reason == control::kReasonInherit) saw_inherit = true;
  }
  EXPECT_TRUE(saw_inherit);
  // Inheriting values the ward already holds is a no-op, not a new event.
  control::inherit(0, 1);
  EXPECT_EQ(control::stats().inherits, 1u);

  detect::stop();
  control::stop();
  metrics::stop();
}

TEST(CtlFaults, ControllerComposesWithDetectorKillRecovery) {
  // The integration form: controller + heartbeat detector + injected
  // kill, traversal still exact. (The fault plan kills rank 2 early,
  // while the root burst -- the thing the controller reacts to -- is
  // still draining.)
  const apps::UtsParams tree = apps::uts_small();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  detect::Config dc = detect::config();
  dc.enabled = true;
  detect::set_config(dc);
  CtlGuard guard(control::Mode::Local, /*period=*/50'000);
  fault::start(8, fault::FaultPlan::parse("kill:rank=2,at=400us"), 42);
  apps::UtsCounts counts;
  run_sim(8, [&](pgas::Runtime& rt) {
    apps::UtsRunConfig rc;
    apps::UtsResult res = apps::uts_run_scioto_ft(rt, tree, rc);
    if (rt.me() != 2) counts = res.counts;
  });
  fault::stop();
  dc.enabled = false;
  detect::set_config(dc);
  EXPECT_TRUE(counts == expected);
  // No decision may postdate the kill on the dead rank's behalf as an
  // owner apply (planner targets for it also stop once it is fenced).
  for (const control::DecisionRecord& d : control::decisions()) {
    if (d.rank == 2 && !d.planner) {
      EXPECT_LT(d.t, 500'000) << "dead rank 2 applied a knob change at t="
                              << d.t;
    }
  }
}

// ---- Hot-victim digest ----

TEST(CtlDigest, HotVictimsTracksDeepestAliveRanks) {
  metrics::start(4);
  metrics::MonitorOptions mopts;
  metrics::monitor_start(4, mopts);
  control::Config cfg;
  cfg.mode = control::Mode::Local;
  control::start(4, cfg);

  Rank hot[control::kMaxHotVictims];
  EXPECT_EQ(control::hot_victims(hot), 0) << "digest before any sample";

  metrics::gauge_set(0, metrics::Gauge::QueueShared, 5);
  metrics::gauge_set(1, metrics::Gauge::QueueShared, 100);
  metrics::gauge_set(2, metrics::Gauge::QueueShared, 0);  // empty: excluded
  metrics::gauge_set(3, metrics::Gauge::QueueShared, 50);
  metrics::monitor_sample(1000);
  ASSERT_EQ(control::hot_victims(hot), 3);
  EXPECT_EQ(hot[0], 1);  // descending shared depth
  EXPECT_EQ(hot[1], 3);
  EXPECT_EQ(hot[2], 0);

  // A dead rank drops out of the digest no matter how deep its queue
  // still reads (its patch stays scrapeable; thieves must not be steered
  // at a corpse).
  metrics::monitor_set_liveness([](Rank r) {
    return r == 1 ? metrics::RankState::Dead : metrics::RankState::Alive;
  });
  metrics::monitor_sample(2000);
  ASSERT_EQ(control::hot_victims(hot), 2);
  EXPECT_EQ(hot[0], 3);
  EXPECT_EQ(hot[1], 0);

  control::stop();
  metrics::monitor_stop();
  metrics::stop();
}

// ---- Threads backend (wall-clock pacing; the TSan job runs these) ----

class CtlThreads : public ::testing::TestWithParam<control::Mode> {};

TEST_P(CtlThreads, UtsExactUnderThreadsBackend) {
  const apps::UtsParams tree = apps::uts_tiny();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  // A short wall-clock period so epochs actually fire inside a tiny run.
  CtlGuard guard(GetParam(), /*period=*/100'000);
  apps::UtsCounts counts;
  std::mutex mu;
  run_threads(4, [&](pgas::Runtime& rt) {
    apps::UtsRunConfig rc;
    rc.chunk = 2;
    apps::UtsResult res = apps::uts_run_scioto(rt, tree, rc);
    std::lock_guard<std::mutex> lk(mu);
    counts = res.counts;
  });
  EXPECT_TRUE(counts == expected);
  // Wall-clock pacing means no decision-count guarantees -- the property
  // under test is exactness plus TSan-cleanliness of the armed paths.
}

INSTANTIATE_TEST_SUITE_P(Placements, CtlThreads,
                         ::testing::Values(control::Mode::Local,
                                           control::Mode::Global),
                         [](const auto& info) {
                           return std::string(control::mode_name(info.param));
                         });

// ---- C API ----

TEST(CtlCApi, ModePeriodRulesRoundTrip) {
  ASSERT_STREQ(scioto_ctl_mode(), "off");
  EXPECT_EQ(scioto_ctl_mode_set("local"), 0);
  EXPECT_STREQ(scioto_ctl_mode(), "local");
  EXPECT_EQ(scioto_ctl_mode_set("bogus"), -1);
  EXPECT_STREQ(scioto_ctl_mode(), "local") << "bad name must stage nothing";
  EXPECT_EQ(scioto_ctl_mode_set("off"), 0);

  int64_t period = scioto_ctl_period_ns();
  EXPECT_GT(period, 0);
  scioto_ctl_set_period_ns(250'000);
  EXPECT_EQ(scioto_ctl_period_ns(), 250'000);
  scioto_ctl_set_period_ns(period);

  char errbuf[128] = {};
  EXPECT_EQ(scioto_ctl_rules_set("dwell=2;hot_set=2", errbuf,
                                 sizeof(errbuf)),
            0);
  EXPECT_EQ(control::config().rules.dwell, 2);
  EXPECT_EQ(scioto_ctl_rules_set("dwell=0", errbuf, sizeof(errbuf)), -1);
  EXPECT_NE(errbuf[0], '\0');
  EXPECT_EQ(control::config().rules.dwell, 2) << "bad spec staged";
  // NULL restores the defaults.
  EXPECT_EQ(scioto_ctl_rules_set(nullptr, nullptr, 0), 0);
  EXPECT_EQ(control::config().rules.dwell, Rules().dwell);

  scioto_ctl_stats_t st;
  scioto_ctl_stats_get(&st);  // callable any time; zeroes before any run
}

#else  // !(SCIOTO_CONTROL_ENABLED && SCIOTO_METRICS_ENABLED)

TEST(Control, CompiledOut) {
  GTEST_SKIP() << "built with SCIOTO_CONTROL=OFF or SCIOTO_METRICS=OFF; "
                  "the control plane compiles to nothing";
}

#endif  // SCIOTO_CONTROL_ENABLED && SCIOTO_METRICS_ENABLED
