// Tests for the dependency engine (src/dag): ordering over chains,
// diamonds, and fan-in/fan-out shapes on both backends; conflict-edge
// mutual exclusion; remote data-version RAW safety; streaming (recursive)
// graph build; manual satisfy() joins; cycle reporting with node ids;
// argument validation; 8-seed sim determinism; composition with the
// fail-stop kill/adoption path; and the three-way reconciliation
// DagStats == metrics counters == trace events (mirrors test_metrics).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "dag/dag.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "scioto/deps.hpp"
#include "scioto/scioto_c.h"
#include "scioto/task_collection.hpp"
#include "test_util.hpp"
#include "trace/trace.hpp"

namespace scioto {
namespace {

using pgas::BackendKind;
using pgas::Runtime;

class DagBackends : public ::testing::TestWithParam<BackendKind> {};

TcConfig small_cfg() {
  TcConfig cfg;
  cfg.max_task_body = 64;
  cfg.chunk_size = 4;
  cfg.max_tasks_per_rank = 4096;
  return cfg;
}

// ---- Ordering over the canonical shapes ----

TEST_P(DagBackends, ChainRunsInOrder) {
  std::vector<int> order;
  std::mutex m;
  testing::run(3, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    dag::DagScheduler dag(tc);
    constexpr int kLen = 16;
    std::vector<dag::NodeId> ids;
    for (int i = 0; i < kLen; ++i) {
      ids.push_back(dag.add_node(i % rt.nprocs(), [&, i] {
        std::lock_guard<std::mutex> g(m);
        order.push_back(i);
      }));
      if (i > 0) dag.add_edge(ids[static_cast<std::size_t>(i) - 1], ids.back());
    }
    dag.execute();
    dag::DagStats g = dag.stats_global();
    if (rt.me() == 0) {
      EXPECT_EQ(g.nodes_run, static_cast<std::uint64_t>(kLen));
      EXPECT_EQ(g.nodes_fired, g.nodes_run);
      EXPECT_EQ(g.max_depth, static_cast<std::uint64_t>(kLen - 1));
    }
    tc.destroy();
  });
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST_P(DagBackends, FanOutFanInWaitsForAllBranches) {
  std::atomic<int> leaves{0};
  std::atomic<bool> violated{false};
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    dag::DagScheduler dag(tc);
    constexpr int kWidth = 48;
    auto root = dag.add_node(0, [&] {
      if (leaves.load() != 0) violated = true;
    });
    auto join = dag.add_node(1, [&] {
      if (leaves.load() != kWidth) violated = true;  // fan-in: all done
    });
    for (int i = 0; i < kWidth; ++i) {
      auto leaf =
          dag.add_node(i % rt.nprocs(), [&] { leaves.fetch_add(1); });
      dag.add_edge(root, leaf);
      dag.add_edge(leaf, join);
    }
    dag.execute();
    tc.destroy();
  });
  EXPECT_EQ(leaves.load(), 48);
  EXPECT_FALSE(violated.load());
}

TEST_P(DagBackends, DiamondGridWavefrontOrder) {
  // A g x g wavefront of diamonds: (i,j) depends on (i-1,j) and (i,j-1).
  constexpr int kGrid = 6;
  std::atomic<std::uint64_t> done[kGrid][kGrid] = {};
  std::atomic<bool> violated{false};
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    dag::DagScheduler dag(tc);
    std::vector<dag::NodeId> id(kGrid * kGrid);
    for (int i = 0; i < kGrid; ++i) {
      for (int j = 0; j < kGrid; ++j) {
        id[static_cast<std::size_t>(i * kGrid + j)] =
            dag.add_node((i + j) % rt.nprocs(), [&, i, j] {
              if (i > 0 && done[i - 1][j].load() == 0) violated = true;
              if (j > 0 && done[i][j - 1].load() == 0) violated = true;
              done[i][j].store(1);
            });
      }
    }
    for (int i = 0; i < kGrid; ++i) {
      for (int j = 0; j < kGrid; ++j) {
        if (i > 0)
          dag.add_edge(id[static_cast<std::size_t>((i - 1) * kGrid + j)],
                       id[static_cast<std::size_t>(i * kGrid + j)]);
        if (j > 0)
          dag.add_edge(id[static_cast<std::size_t>(i * kGrid + j - 1)],
                       id[static_cast<std::size_t>(i * kGrid + j)]);
      }
    }
    dag.execute();
    tc.destroy();
  });
  EXPECT_FALSE(violated.load());
  for (int i = 0; i < kGrid; ++i) {
    for (int j = 0; j < kGrid; ++j) {
      EXPECT_EQ(done[i][j].load(), 1u) << "(" << i << "," << j << ")";
    }
  }
}

// ---- Conflict edges: serialization without ordering ----

TEST_P(DagBackends, ConflictGroupSerializesWithoutOrdering) {
  // All group members bump a reentrancy counter on entry and drop it on
  // exit; mutual exclusion means it can never reach 2. The members share
  // no ordering edges, so without the group lock the wide root fan-out
  // makes overlap all but certain (and the sim interleaves at every
  // charge).
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  std::atomic<int> ran{0};
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    dag::DagScheduler dag(tc);
    dag::GroupId grp = dag.conflict_group();
    auto root = dag.add_node(0, [] {});
    constexpr int kMembers = 24;
    for (int i = 0; i < kMembers; ++i) {
      auto member = dag.add_node(
          i % rt.nprocs(),
          [&](dag::NodeCtx&) {
            if (inside.fetch_add(1) != 0) overlapped = true;
            tc.runtime().charge(5'000);  // widen the window
            inside.fetch_sub(1);
            ran.fetch_add(1);
          },
          grp);
      dag.add_edge(root, member);
    }
    dag.execute();
    dag::DagStats g = dag.stats_global();
    if (rt.me() == 0) {
      EXPECT_EQ(g.nodes_run, static_cast<std::uint64_t>(kMembers) + 1);
    }
    tc.destroy();
  });
  EXPECT_EQ(ran.load(), 24);
  EXPECT_FALSE(overlapped.load());
}

// ---- Remote data versioning: RAW safety without a barrier ----

TEST_P(DagBackends, VersionEdgeRemoteRAW) {
  // The producer (rank 0) writes a payload one-sided into rank 1's patch;
  // the consumer (homed on rank 1) reads it back. The version edge is what
  // guarantees the consumer sees the payload even though the ready
  // decrement -- a cheap control message fired before the version bump --
  // can reach the consumer's rank first. Under threads this is a genuine
  // release/acquire edge TSan checks; under sim the deferral is visible in
  // version_waits.
  constexpr std::uint64_t kPayload = 0xfeedfacecafe0042ull;
  std::atomic<std::uint64_t> seen{0};
  testing::run(2, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    pgas::SegId data = rt.seg_alloc(64);
    std::memset(rt.seg_ptr(data, rt.me()), 0, 64);
    rt.barrier();
    dag::DagScheduler dag(tc);
    auto prod = dag.add_node(0, [&] {
      rt.charge(20'000);  // let the consumer's rank go idle first
      std::uint64_t v = kPayload;
      rt.put(data, 1, 0, &v, sizeof(v));
    });
    auto cons = dag.add_node(1, [&] {
      std::uint64_t v = 0;
      rt.get(data, 1, 0, &v, sizeof(v));
      seen.store(v);
    });
    dag::DataDep dep;
    dep.seg = data;
    dep.owner = 1;
    dep.offset = 0;
    dep.len = sizeof(std::uint64_t);
    dag.add_edge(prod, cons, dep);
    dag.execute();
    dag::DagStats g = dag.stats_global();
    if (rt.me() == 0) {
      EXPECT_EQ(g.nodes_run, 2u);
    }
    rt.seg_free(data);
    tc.destroy();
  });
  EXPECT_EQ(seen.load(), kPayload);
}

// ---- Streaming build: recursive dynamic spawns ----

TEST_P(DagBackends, DynamicSpawnRecursiveTree) {
  // One static root spawns a binary tree of dynamic nodes of depth D:
  // total dynamic = 2^(D+1) - 2. Arguments ride in the descriptor.
  constexpr int kDepth = 6;
  std::atomic<int> executed{0};
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    dag::DagScheduler dag(tc);
    struct Args {
      int depth;
    };
    dag::KindId kind = dag.register_kind([&](dag::NodeCtx& ctx) {
      ASSERT_EQ(ctx.args_len(), static_cast<std::int32_t>(sizeof(Args)));
      Args a;
      std::memcpy(&a, ctx.args(), sizeof(a));
      executed.fetch_add(1);
      if (a.depth > 0) {
        Args child{a.depth - 1};
        ctx.spawn(kind, (ctx.depth() + 0) % rt.nprocs(), &child,
                  sizeof(child));
        ctx.spawn(kind, (ctx.depth() + 1) % rt.nprocs(), &child,
                  sizeof(child));
      }
    });
    dag.add_node(0, [&](dag::NodeCtx& ctx) {
      Args a{kDepth - 1};
      ctx.spawn(kind, 1 % rt.nprocs(), &a, sizeof(a));
      ctx.spawn(kind, 2 % rt.nprocs(), &a, sizeof(a));
    });
    dag.execute();
    dag::DagStats g = dag.stats_global();
    if (rt.me() == 0) {
      const auto dyn = static_cast<std::uint64_t>((1 << (kDepth + 1)) - 2);
      EXPECT_EQ(g.dyn_spawned, dyn);
      EXPECT_EQ(g.nodes_run, dyn + 1);  // + the static root
      EXPECT_EQ(g.nodes_fired, g.nodes_run);
    }
    tc.destroy();
  });
  EXPECT_EQ(executed.load(), (1 << (kDepth + 1)) - 2);
}

TEST_P(DagBackends, ChildEdgeOrdersSiblings) {
  std::atomic<int> stage{0};
  std::atomic<bool> violated{false};
  testing::run(3, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    dag::DagScheduler dag(tc);
    dag::KindId first = dag.register_kind([&](dag::NodeCtx&) {
      if (stage.exchange(1) != 0) violated = true;
    });
    dag::KindId second = dag.register_kind([&](dag::NodeCtx&) {
      if (stage.load() != 1) violated = true;
      stage.store(2);
    });
    dag.add_node(0, [&](dag::NodeCtx& ctx) {
      // Spawn out of order on distinct ranks; the child edge must still
      // serialize them.
      auto b = ctx.spawn(second, 2 % rt.nprocs());
      auto a = ctx.spawn(first, 1 % rt.nprocs());
      ctx.child_edge(a, b);
    });
    dag.execute();
    tc.destroy();
  });
  EXPECT_EQ(stage.load(), 2);
  EXPECT_FALSE(violated.load());
}

// ---- Manual joins via satisfy() ----

TEST_P(DagBackends, SatisfyReleasesExtraDep) {
  // A spawns child C with one extra dependency; B (ordered after A) is
  // the only place that satisfies it, so C must observe B's side effect.
  std::atomic<int> b_done{0};
  std::atomic<bool> violated{false};
  // Shared across ranks: A publishes the dynamic id, B (which may execute
  // on any rank) satisfies it.
  std::atomic<std::int64_t> child_id{-1};
  testing::run(2, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    dag::DagScheduler dag(tc);
    dag::KindId kind = dag.register_kind([&](dag::NodeCtx&) {
      if (b_done.load() != 1) violated = true;
    });
    auto a = dag.add_node(0, [&](dag::NodeCtx& ctx) {
      child_id.store(ctx.spawn(kind, 1 % rt.nprocs(), nullptr, 0,
                               /*extra_deps=*/1));
    });
    auto b = dag.add_node(1 % rt.nprocs(), [&](dag::NodeCtx& ctx) {
      b_done.store(1);
      ctx.dag().satisfy(child_id.load());
    });
    dag.add_edge(a, b);
    dag.execute();
    dag::DagStats g = dag.stats_global();
    if (rt.me() == 0) {
      EXPECT_EQ(g.nodes_run, 3u);
      EXPECT_EQ(g.satisfies, 1u);
    }
    tc.destroy();
  });
  EXPECT_FALSE(violated.load());
}

// ---- Validation ----

TEST(DagValidation, CycleReportedWithNodeIds) {
  testing::run_sim(2, [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    dag::DagScheduler dag(tc);
    std::vector<dag::NodeId> id;
    for (int i = 0; i < 6; ++i) {
      id.push_back(dag.add_node(i % rt.nprocs(), [] {}));
    }
    dag.add_edge(id[0], id[1]);  // a clean prefix...
    dag.add_edge(id[1], id[2]);
    dag.add_edge(id[3], id[4]);  // ...then the cycle 3 -> 4 -> 5 -> 3
    dag.add_edge(id[4], id[5]);
    dag.add_edge(id[5], id[3]);
    try {
      dag.execute();
      FAIL() << "cycle not detected";
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("cycle"), std::string::npos) << msg;
      // Every member of the cycle is named; the acyclic prefix is not.
      EXPECT_NE(msg.find("3"), std::string::npos) << msg;
      EXPECT_NE(msg.find("4"), std::string::npos) << msg;
      EXPECT_NE(msg.find("5"), std::string::npos) << msg;
      EXPECT_EQ(msg.find("0"), std::string::npos) << msg;
    }
    tc.destroy();
  });
}

TEST(DagValidation, AddEdgeRejectsBadArgsAtCallTime) {
  testing::run_sim(2, [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    dag::DagScheduler dag(tc);
    auto a = dag.add_node(0, [] {});
    auto b = dag.add_node(1, [] {});
    EXPECT_THROW(dag.add_edge(a, a), Error);           // self-edge
    EXPECT_THROW(dag.add_edge(a, b + 7), Error);       // out of range
    EXPECT_THROW(dag.add_edge(-1, b), Error);          // negative
    EXPECT_THROW(dag.add_node(rt.nprocs(), [] {}), Error);  // bad home
    EXPECT_THROW(dag.add_node(0, dag::NodeFn([](dag::NodeCtx&) {}), 5),
                 Error);  // unknown group
    dag.add_edge(a, b);
    dag.execute();
    tc.destroy();
  });
}

TEST(DagValidation, DeprecatedTaskDagAliasStillCompiles) {
  std::atomic<int> hits{0};
  testing::run_sim(2, [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    TaskDag dag(tc);  // the retired stub's spelling, via scioto/deps.hpp
    TaskDag::NodeId a = dag.add_node(0, [&] { hits.fetch_add(1); });
    TaskDag::NodeId b = dag.add_node(1, [&] { hits.fetch_add(1); });
    dag.add_edge(a, b);
    dag.execute();
    tc.destroy();
  });
  EXPECT_EQ(hits.load(), 2);
}

// ---- Sim determinism: byte-identical replay across 8 seeds ----

#if SCIOTO_TRACE_ENABLED

TEST(DagDeterminism, EightSeedsByteIdenticalTraces) {
  // A workload touching every mechanism: wavefront edges, one conflict
  // group, a version edge, and dynamic spawns.
  auto traced_run = [&](std::uint64_t seed) {
    trace::start(4);
    testing::run_sim(
        4,
        [&](Runtime& rt) {
          TaskCollection tc(rt, small_cfg());
          pgas::SegId data = rt.seg_alloc(64);
          std::memset(rt.seg_ptr(data, rt.me()), 0, 64);
          rt.barrier();
          dag::DagScheduler dag(tc);
          dag::GroupId grp = dag.conflict_group();
          dag::KindId kind =
              dag.register_kind([&](dag::NodeCtx&) { rt.charge(1'000); });
          constexpr int kGrid = 4;
          std::vector<dag::NodeId> id(kGrid * kGrid);
          for (int i = 0; i < kGrid; ++i) {
            for (int j = 0; j < kGrid; ++j) {
              const bool locked = (i + j) % 3 == 0;
              id[static_cast<std::size_t>(i * kGrid + j)] = dag.add_node(
                  (i + j) % rt.nprocs(),
                  [&, i, j](dag::NodeCtx& ctx) {
                    rt.charge(2'000);
                    if (i == 0 && j == 0) ctx.spawn(kind, 2);
                  },
                  locked ? grp : dag::kNoGroup);
            }
          }
          for (int i = 0; i < kGrid; ++i) {
            for (int j = 0; j < kGrid; ++j) {
              if (i > 0)
                dag.add_edge(id[static_cast<std::size_t>((i - 1) * kGrid + j)],
                             id[static_cast<std::size_t>(i * kGrid + j)]);
              if (j > 0)
                dag.add_edge(id[static_cast<std::size_t>(i * kGrid + j - 1)],
                             id[static_cast<std::size_t>(i * kGrid + j)]);
            }
          }
          dag::DataDep dep;
          dep.seg = data;
          dep.owner = 1;
          dep.offset = 0;
          dep.len = 8;
          dag.add_edge(id[0], id[kGrid], dep);  // (0,0) -> (1,0), versioned
          dag.execute();
          rt.seg_free(data);
          tc.destroy();
        },
        seed);
    std::vector<trace::Event> evs = trace::all_events();
    trace::stop();
    return evs;
  };
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    std::vector<trace::Event> a = traced_run(seed);
    std::vector<trace::Event> b = traced_run(seed);
    ASSERT_FALSE(a.empty()) << "seed " << seed;
    ASSERT_EQ(a.size(), b.size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].t, b[i].t) << "seed " << seed << " event " << i;
      ASSERT_EQ(a[i].rank, b[i].rank) << "seed " << seed << " event " << i;
      ASSERT_EQ(a[i].kind, b[i].kind) << "seed " << seed << " event " << i;
      ASSERT_EQ(a[i].a, b[i].a) << "seed " << seed << " event " << i;
      ASSERT_EQ(a[i].b, b[i].b) << "seed " << seed << " event " << i;
      ASSERT_EQ(a[i].c, b[i].c) << "seed " << seed << " event " << i;
    }
  }
}

#else  // !SCIOTO_TRACE_ENABLED

TEST(DagDeterminism, EightSeedsByteIdenticalTraces) {
  GTEST_SKIP() << "built with SCIOTO_TRACE=OFF; determinism is proven "
                  "by comparing trace streams";
}

#endif  // SCIOTO_TRACE_ENABLED

// ---- Composition with the fail-stop kill / adoption path ----

TEST(DagFault, KillARankEveryNodeRunsExactlyOnce) {
  // A wide two-level DAG with a mid-run kill: every node must still run
  // exactly once, proven by durable per-node counters in PGAS (dead-rank
  // memory stays addressable in the recoverable-segment model). Deferred
  // nodes re-enter the queue under a fault session, so conflict-group
  // members survive the kill too.
  constexpr int kNodes = 60;
  const int nranks = 4;
  fault::start(nranks, fault::FaultPlan::parse("kill:rank=2,at=150us"), 11);
  testing::run_sim(
      nranks,
      [&](Runtime& rt) {
        TaskCollection tc(rt, small_cfg());
        pgas::SegId execs = rt.seg_alloc(kNodes * 8);
        std::memset(rt.seg_ptr(execs, rt.me()), 0, kNodes * 8);
        rt.barrier();
        dag::DagScheduler dag(tc);
        dag::GroupId grp = dag.conflict_group();
        auto root = dag.add_node(0, [&] { rt.charge(5'000); });
        for (int i = 1; i < kNodes; ++i) {
          auto node = dag.add_node(
              i % nranks,
              [&, i](dag::NodeCtx&) {
                rt.charge(20'000);
                rt.fetch_add(execs, i % nranks,
                             static_cast<std::size_t>(i) * 8, 1);
              },
              i % 5 == 0 ? grp : dag::kNoGroup);
          dag.add_edge(root, node);
        }
        dag.execute();
        rt.barrier();
        if (rt.me() == 0) {
          for (int i = 1; i < kNodes; ++i) {
            std::uint64_t count = 0;
            rt.get_u64_with_retry(execs, i % nranks,
                                  static_cast<std::size_t>(i) * 8, &count);
            EXPECT_EQ(count, 1u) << "node " << i;
          }
        }
        rt.seg_free(execs);
        tc.destroy();
      },
      11);
  EXPECT_EQ(fault::alive_count(), nranks - 1);
  fault::stop();
}

// ---- Three-way reconciliation: DagStats == metrics == trace ----

class DagReconcile : public ::testing::TestWithParam<BackendKind> {};

#if SCIOTO_METRICS_ENABLED && SCIOTO_TRACE_ENABLED

TEST_P(DagReconcile, CountersAgreeWithStatsAndTrace) {
  const int nranks = 4;
  trace::start(nranks);
  metrics::start(nranks);
  dag::DagStats g;
  testing::run(nranks, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    dag::DagScheduler dag(tc);
    dag::GroupId grp = dag.conflict_group();
    auto root = dag.add_node(0, [&] { rt.charge(1'000); });
    for (int i = 1; i < 40; ++i) {
      auto node = dag.add_node(
          i % rt.nprocs(), [&](dag::NodeCtx&) { rt.charge(2'000); },
          i % 4 == 0 ? grp : dag::kNoGroup);
      dag.add_edge(root, node);
    }
    dag.execute();
    dag::DagStats s = dag.stats_global();
    if (rt.me() == 0) g = s;
    tc.destroy();
  });
  std::vector<metrics::Snapshot> snaps(nranks);
  for (Rank r = 0; r < nranks; ++r) {
    ASSERT_TRUE(metrics::scrape(r, &snaps[static_cast<std::size_t>(r)]));
  }
  metrics::stop();
  std::vector<trace::Event> evs = trace::all_events();
  trace::stop();

  auto fleet = [&](metrics::Ctr c) {
    std::uint64_t sum = 0;
    for (const auto& s : snaps) sum += s.ctr(c);
    return sum;
  };
  std::uint64_t tr_run = 0, tr_ready = 0, tr_retry = 0;
  for (const trace::Event& e : evs) {
    if (e.kind == trace::Ev::NodeRun) ++tr_run;
    if (e.kind == trace::Ev::NodeReady) ++tr_ready;
    if (e.kind == trace::Ev::ConflictRetry) ++tr_retry;
  }

  EXPECT_EQ(g.nodes_run, 40u);
  EXPECT_EQ(g.nodes_fired, g.nodes_run);  // every fired node ran
  // DagStats vs metrics counters: increments sit at the same sites.
  EXPECT_EQ(fleet(metrics::Ctr::DagNodesRun), g.nodes_run);
  EXPECT_EQ(fleet(metrics::Ctr::DagNodesFired), g.nodes_fired);
  EXPECT_EQ(fleet(metrics::Ctr::DagRemoteFires), g.remote_fires);
  EXPECT_EQ(fleet(metrics::Ctr::DagConflictRetries), g.conflict_retries);
  EXPECT_EQ(fleet(metrics::Ctr::DagVersionWaits), g.version_waits);
  // ... and vs the trace stream's independent record of the same run.
  EXPECT_EQ(g.nodes_run, tr_run);
  EXPECT_EQ(g.nodes_fired, tr_ready);
  EXPECT_EQ(g.conflict_retries + g.version_waits, tr_retry);
  // Every executed node fed the depth histogram.
  std::uint64_t hist_depth = 0;
  for (const auto& s : snaps) {
    hist_depth += s.hist(metrics::Hist::DagNodeDepth).count;
  }
  EXPECT_EQ(hist_depth, g.nodes_run);
}

#else  // !(SCIOTO_METRICS_ENABLED && SCIOTO_TRACE_ENABLED)

TEST_P(DagReconcile, CountersAgreeWithStatsAndTrace) {
  GTEST_SKIP() << "built with SCIOTO_TRACE=OFF or SCIOTO_METRICS=OFF; "
                  "reconciliation needs both instrumentation planes";
}

#endif  // SCIOTO_METRICS_ENABLED && SCIOTO_TRACE_ENABLED

INSTANTIATE_TEST_SUITE_P(Backends, DagReconcile,
                         ::testing::Values(BackendKind::Sim,
                                           BackendKind::Threads),
                         [](const auto& info) {
                           return testing::backend_name(info.param);
                         });

// ---- C API veneer ----

namespace capi_test {
std::atomic<int> g_hits{0};
void bump(void* arg) { g_hits.fetch_add(*static_cast<int*>(arg)); }
}  // namespace capi_test

TEST(DagCApi, BuildAndExecute) {
  capi_test::g_hits.store(0);
  testing::run_sim(2, [&](Runtime& rt) {
    capi::RuntimeBinding bind(rt);
    tc_t tc = tc_create(64, 4, 4096);
    scioto_dag_t dag = scioto_dag_create(tc);
    static int one = 1;
    scioto_dag_node_t a = scioto_dag_add_node(dag, 0, capi_test::bump, &one,
                                              -1);
    int grp = scioto_dag_conflict_group(dag);
    scioto_dag_node_t b =
        scioto_dag_add_node(dag, 1, capi_test::bump, &one, grp);
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);
    char err[128] = {};
    EXPECT_EQ(scioto_dag_add_edge(dag, a, a, err, sizeof(err)), -1);
    EXPECT_GT(std::string(err).size(), 0u);
    EXPECT_EQ(scioto_dag_add_edge(dag, a, b, err, sizeof(err)), 0);
    EXPECT_EQ(scioto_dag_execute(dag, err, sizeof(err)), 0);
    scioto_dag_stats_t st;
    scioto_dag_stats_get(dag, &st);
    EXPECT_EQ(st.nodes_run, 2u);
    EXPECT_EQ(st.nodes_fired, 2u);
    scioto_dag_destroy(dag);
    tc_destroy(tc);
  });
  EXPECT_EQ(capi_test::g_hits.load(), 2);  // two nodes, each ran once
}

INSTANTIATE_TEST_SUITE_P(AllBackends, DagBackends,
                         ::testing::Values(BackendKind::Sim,
                                           BackendKind::Threads),
                         [](const auto& info) {
                           return testing::backend_name(info.param);
                         });

}  // namespace
}  // namespace scioto
