// Tests for the baseline schedulers: the replicated-list global counter
// and two-sided MPI-style work stealing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>

#include "baselines/global_counter.hpp"
#include "baselines/mpi_ws.hpp"
#include "test_util.hpp"

namespace scioto {
namespace {

using pgas::BackendKind;
using pgas::Runtime;

class BaselineBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BaselineBackends, CounterRunsEveryTaskOnce) {
  constexpr std::int64_t kTasks = 321;
  std::mutex m;
  std::set<std::int64_t> done;
  testing::run(5, GetParam(), [&](Runtime& rt) {
    baselines::GlobalCounterScheduler sched(rt);
    auto st = sched.process(kTasks, [&](std::int64_t t) {
      std::lock_guard<std::mutex> g(m);
      ASSERT_TRUE(done.insert(t).second) << "task " << t << " ran twice";
    });
    EXPECT_GE(st.tasks_executed, 0);
    std::int64_t total = rt.allreduce_sum(st.tasks_executed);
    EXPECT_EQ(total, kTasks);
    sched.destroy();
  });
  EXPECT_EQ(done.size(), static_cast<std::size_t>(kTasks));
}

TEST_P(BaselineBackends, CounterReusableAcrossPhases) {
  std::atomic<int> count{0};
  testing::run(3, GetParam(), [&](Runtime& rt) {
    baselines::GlobalCounterScheduler sched(rt);
    for (int phase = 0; phase < 3; ++phase) {
      sched.process(40, [&](std::int64_t) { count.fetch_add(1); });
    }
    sched.destroy();
  });
  EXPECT_EQ(count.load(), 120);
}

TEST_P(BaselineBackends, MpiWsProcessesSeededTasks) {
  constexpr int kTasks = 100;
  std::mutex m;
  std::set<std::int64_t> done;
  testing::run(4, GetParam(), [&](Runtime& rt) {
    baselines::MpiWorkStealing::Config cfg;
    cfg.task_bytes = sizeof(std::int64_t);
    cfg.chunk = 4;
    cfg.poll_interval = 2;
    baselines::MpiWorkStealing ws(rt, cfg);
    if (rt.me() == 0) {
      for (std::int64_t i = 0; i < kTasks; ++i) {
        ws.spawn(&i);
      }
    }
    auto st = ws.process([&](const void* rec) {
      std::int64_t id;
      std::memcpy(&id, rec, sizeof(id));
      std::lock_guard<std::mutex> g(m);
      ASSERT_TRUE(done.insert(id).second);
    });
    std::int64_t total = rt.allreduce_sum(st.tasks_executed);
    EXPECT_EQ(total, kTasks);
  });
  EXPECT_EQ(done.size(), static_cast<std::size_t>(kTasks));
}

TEST_P(BaselineBackends, MpiWsDynamicSpawning) {
  // Seeded tasks spawn children recursively; totals must be exact.
  struct Rec {
    std::int64_t id;
    std::int32_t depth;
  };
  std::atomic<std::int64_t> executed{0};
  constexpr int kDepth = 6;
  testing::run(3, GetParam(), [&](Runtime& rt) {
    baselines::MpiWorkStealing::Config cfg;
    cfg.task_bytes = sizeof(Rec);
    cfg.chunk = 3;
    cfg.poll_interval = 4;
    baselines::MpiWorkStealing ws(rt, cfg);
    baselines::MpiWorkStealing* wsp = &ws;
    if (rt.me() == 0) {
      Rec root{0, kDepth};
      ws.spawn(&root);
    }
    ws.process([&, wsp](const void* rec) {
      Rec r;
      std::memcpy(&r, rec, sizeof(r));
      executed.fetch_add(1);
      if (r.depth > 0) {
        Rec child{r.id * 2 + 1, r.depth - 1};
        wsp->spawn(&child);
        child.id = r.id * 2 + 2;
        wsp->spawn(&child);
      }
    });
  });
  EXPECT_EQ(executed.load(), (1 << (kDepth + 1)) - 1);
}

TEST_P(BaselineBackends, MpiWsSingleRank) {
  std::atomic<int> n{0};
  testing::run(1, GetParam(), [&](Runtime& rt) {
    baselines::MpiWorkStealing::Config cfg;
    cfg.task_bytes = 8;
    baselines::MpiWorkStealing ws(rt, cfg);
    std::int64_t x = 1;
    for (int i = 0; i < 10; ++i) ws.spawn(&x);
    auto st = ws.process([&](const void*) { n.fetch_add(1); });
    EXPECT_EQ(st.tasks_executed, 10);
  });
  EXPECT_EQ(n.load(), 10);
}

TEST(BaselineSim, CounterSpeedupSaturates) {
  // The shared counter serializes through its home rank: with trivial task
  // compute, adding ranks beyond the saturation point buys nothing (and
  // contention can even make it slower). This is the mechanism behind the
  // original TCE's flat scaling in Figures 5/6.
  auto elapsed_for = [](int n) {
    TimeNs t = 0;
    testing::run_sim(n, [&](pgas::Runtime& rt) {
      baselines::GlobalCounterScheduler sched(rt);
      rt.barrier();
      TimeNs t0 = rt.now();
      sched.process(400, [&](std::int64_t) { rt.charge(100); });
      TimeNs local = rt.now() - t0;
      TimeNs mx = rt.allreduce_max(local);
      if (rt.me() == 0) t = mx;
      sched.destroy();
    });
    return t;
  };
  TimeNs t2 = elapsed_for(2);
  TimeNs t16 = elapsed_for(16);
  TimeNs t64 = elapsed_for(64);
  // Early scaling exists...
  EXPECT_LT(t16, t2);
  // ...but 16 -> 64 ranks (4x resources) gains nothing: the counter is the
  // bottleneck.
  EXPECT_GT(t64, t16 * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BaselineBackends,
                         ::testing::Values(BackendKind::Sim,
                                           BackendKind::Threads),
                         [](const auto& info) {
                           return scioto::testing::backend_name(info.param);
                         });

}  // namespace
}  // namespace scioto
