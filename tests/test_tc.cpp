// End-to-end tests of the TaskCollection: seeding, dynamic spawning, work
// stealing, common local objects, statistics, reset/reuse, affinity
// placement, load-balancing toggle, the C API shim, and the TaskDag
// dependency extension.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "scioto/deps.hpp"
#include "scioto/scioto_c.h"
#include "scioto/task_collection.hpp"
#include "test_util.hpp"

namespace scioto {
namespace {

using pgas::BackendKind;
using pgas::Runtime;

class TcBackends : public ::testing::TestWithParam<BackendKind> {};

TcConfig small_cfg() {
  TcConfig cfg;
  cfg.max_task_body = 64;
  cfg.chunk_size = 4;
  cfg.max_tasks_per_rank = 4096;
  return cfg;
}

TEST_P(TcBackends, SeededTasksAllExecuteExactlyOnce) {
  constexpr int kPerRank = 50;
  std::mutex m;
  std::set<std::int64_t> seen;
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    struct Body {
      std::int64_t id;
    };
    TaskHandle h = tc.register_callback([&](TaskContext& ctx) {
      std::lock_guard<std::mutex> g(m);
      ASSERT_TRUE(seen.insert(ctx.body_as<Body>().id).second)
          << "task executed twice";
    });
    Task t = tc.task_create(sizeof(Body), h);
    for (int i = 0; i < kPerRank; ++i) {
      t.body_as<Body>().id = rt.me() * kPerRank + i;
      tc.add_local(t);
      t.reuse();
    }
    tc.process();
    tc.destroy();
  });
  EXPECT_EQ(seen.size(), 4u * kPerRank);
}

TEST_P(TcBackends, DynamicSpawningTree) {
  // Each seed task spawns a binary tree of depth D: total = 2^(D+1) - 1
  // tasks per seed.
  // Deep enough that the LIFO frontier (~depth tasks) exceeds the release
  // threshold, so work actually reaches the shared portion for thieves.
  constexpr int kDepth = 10;
  std::atomic<std::int64_t> executed{0};
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    struct Body {
      int depth;
    };
    TaskHandle h = tc.register_callback([&](TaskContext& ctx) {
      executed.fetch_add(1);
      int d = ctx.body_as<Body>().depth;
      if (d > 0) {
        Task child = ctx.tc.task_create(sizeof(Body), ctx.header.callback);
        child.body_as<Body>().depth = d - 1;
        ctx.tc.add_local(child);
        ctx.tc.add_local(child);
      }
    });
    if (rt.me() == 0) {
      Task t = tc.task_create(sizeof(Body), h);
      t.body_as<Body>().depth = kDepth;
      tc.add_local(t);
    }
    tc.process();
    // Work must have actually migrated off rank 0.
    TcStats total = tc.stats_global();
    EXPECT_EQ(total.tasks_executed, (1u << (kDepth + 1)) - 1);
    // Under the deterministic sim backend the thieves always get a share;
    // under real threads on a loaded host rank 0 may finish first.
    if (rt.nprocs() > 1 && rt.simulated()) {
      EXPECT_GT(total.tasks_stolen, 0u);
    }
    tc.destroy();
  });
  EXPECT_EQ(executed.load(), (1 << (kDepth + 1)) - 1);
}

TEST_P(TcBackends, RemoteAddExecutesOnTargetableRank) {
  std::vector<std::atomic<int>> ran(3);
  testing::run(3, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    TaskHandle h = tc.register_callback([&](TaskContext& ctx) {
      ran[static_cast<std::size_t>(ctx.executing_rank)].fetch_add(1);
    });
    // With load balancing off, a task added to rank 2 must run on rank 2.
    tc.set_load_balancing(false);
    if (rt.me() == 0) {
      Task t = tc.task_create(0, h);
      tc.add(2, kAffinityHigh, t);
    }
    tc.process();
    tc.destroy();
  });
  EXPECT_EQ(ran[0].load(), 0);
  EXPECT_EQ(ran[1].load(), 0);
  EXPECT_EQ(ran[2].load(), 1);
}

TEST_P(TcBackends, CommonLocalObjectsAccumulatePerRank) {
  constexpr int kTasks = 60;
  std::atomic<std::int64_t> grand_total{0};
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    std::int64_t my_counter = 0;  // this rank's CLO instance
    CloHandle clo = tc.register_clo(&my_counter);
    struct Body {
      std::int64_t weight;
    };
    TaskHandle h = tc.register_callback([clo](TaskContext& ctx) {
      // Wherever this task runs, it bumps *that* rank's counter.
      ctx.tc.clo<std::int64_t>(clo) += ctx.body_as<Body>().weight;
    });
    if (rt.me() == 0) {
      Task t = tc.task_create(sizeof(Body), h);
      for (int i = 0; i < kTasks; ++i) {
        t.body_as<Body>().weight = i + 1;
        tc.add_local(t);
      }
    }
    tc.process();
    grand_total.fetch_add(my_counter);
    tc.destroy();
  });
  EXPECT_EQ(grand_total.load(), kTasks * (kTasks + 1) / 2);
}

TEST_P(TcBackends, ResetAllowsReprocessing) {
  std::atomic<int> count{0};
  testing::run(2, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    TaskHandle h =
        tc.register_callback([&](TaskContext&) { count.fetch_add(1); });
    for (int phase = 0; phase < 3; ++phase) {
      if (rt.me() == 0) {
        Task t = tc.task_create(0, h);
        for (int i = 0; i < 10; ++i) {
          tc.add_local(t);
        }
      }
      tc.process();
      tc.reset();
    }
    tc.destroy();
  });
  EXPECT_EQ(count.load(), 30);
}

TEST_P(TcBackends, MultipleCollectionsPhaseParallelism) {
  // Tasks processed in collection A spawn tasks into collection B, which
  // is processed afterwards (paper §3.1 "phase-based task parallelism").
  std::atomic<int> phase_a{0}, phase_b{0};
  testing::run(3, GetParam(), [&](Runtime& rt) {
    TaskCollection a(rt, small_cfg());
    TaskCollection b(rt, small_cfg());
    TaskHandle hb =
        b.register_callback([&](TaskContext&) { phase_b.fetch_add(1); });
    TaskHandle ha = a.register_callback([&](TaskContext& ctx) {
      phase_a.fetch_add(1);
      Task t = b.task_create(0, hb);
      b.add(ctx.executing_rank, kAffinityHigh, t);
    });
    if (rt.me() == 0) {
      Task t = a.task_create(0, ha);
      for (int i = 0; i < 12; ++i) {
        a.add_local(t);
      }
    }
    a.process();
    b.process();
    b.destroy();
    a.destroy();
  });
  EXPECT_EQ(phase_a.load(), 12);
  EXPECT_EQ(phase_b.load(), 12);
}

TEST_P(TcBackends, StatsAreConsistent) {
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    TaskHandle h = tc.register_callback([](TaskContext& ctx) {
      ctx.tc.runtime().charge(us(10));
    });
    if (rt.me() == 0) {
      Task t = tc.task_create(0, h);
      for (int i = 0; i < 100; ++i) {
        tc.add_local(t);
      }
    }
    tc.process();
    TcStats g = tc.stats_global();
    EXPECT_EQ(g.tasks_executed, 100u);
    EXPECT_EQ(g.tasks_spawned_local, 100u);
    EXPECT_EQ(g.tasks_stolen, g.tasks_stolen);  // folded without crashing
    EXPECT_GE(g.steal_attempts, g.steals);
    EXPECT_GE(g.time_total, g.time_working);
    // working and searching are disjoint sub-intervals of the phase.
    EXPECT_GE(g.time_total, g.time_working + g.time_searching);
    tc.destroy();
  });
}

TEST_P(TcBackends, OversizedTaskRejected) {
  testing::run(1, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    TaskHandle h = tc.register_callback([](TaskContext&) {});
    EXPECT_THROW(tc.task_create(1 << 20, h), Error);
    tc.destroy();
  });
}

TEST_P(TcBackends, QueueFullThrows) {
  testing::run(1, GetParam(), [&](Runtime& rt) {
    TcConfig cfg = small_cfg();
    cfg.max_tasks_per_rank = 8;
    TaskCollection tc(rt, cfg);
    TaskHandle h = tc.register_callback([](TaskContext&) {});
    Task t = tc.task_create(0, h);
    for (int i = 0; i < 8; ++i) {
      tc.add_local(t);
    }
    EXPECT_THROW(tc.add_local(t), Error);
    tc.process();  // drain so destroy is clean
    tc.destroy();
  });
}

TEST_P(TcBackends, PaperStyleCApi) {
  static std::atomic<int> c_executed{0};
  static std::atomic<long> c_sum{0};
  c_executed = 0;
  c_sum = 0;
  struct CBody {
    long value;
  };
  testing::run(3, GetParam(), [&](Runtime& rt) {
    capi::RuntimeBinding bind(rt);
    tc_t tc = tc_create(sizeof(CBody), 4, 1024);
    task_handle_t h = tc_register_callback(tc, [](tc_t, task_t* task) {
      c_executed.fetch_add(1);
      c_sum.fetch_add(static_cast<CBody*>(tc_task_body(task))->value);
    });
    EXPECT_EQ(tc_nprocs(), 3);
    task_t* task = tc_task_create(sizeof(CBody), h);
    if (tc_mype() == 0) {
      for (long i = 1; i <= 20; ++i) {
        static_cast<CBody*>(tc_task_body(task))->value = i;
        tc_add(tc, static_cast<int>(i % 3), TC_AFFINITY_HIGH, task);
        tc_task_reuse(task);
      }
    }
    tc_process(tc);
    tc_task_destroy(task);
    tc_destroy(tc);
  });
  EXPECT_EQ(c_executed.load(), 20);
  EXPECT_EQ(c_sum.load(), 20L * 21 / 2);
}

TEST_P(TcBackends, CApiStatsGet) {
  testing::run(3, GetParam(), [&](Runtime& rt) {
    capi::RuntimeBinding bind(rt);
    tc_t tc = tc_create(16, 4, 1024);
    task_handle_t h = tc_register_callback(tc, [](tc_t, task_t*) {});
    task_t* task = tc_task_create(0, h);
    if (tc_mype() == 0) {
      for (int i = 0; i < 30; ++i) {
        tc_add(tc, i % 3, TC_AFFINITY_HIGH, task);
        tc_task_reuse(task);
      }
    }
    tc_process(tc);
    scioto_stats_t cs;
    tc_stats_get(tc, &cs);  // collective
    EXPECT_EQ(cs.tasks_executed, 30u);
    EXPECT_EQ(cs.tasks_spawned_local + cs.tasks_spawned_remote, 30u);
    EXPECT_GE(cs.steal_attempts, cs.steals);
    EXPECT_GE(cs.time_total_ns, cs.time_working_ns + cs.time_searching_ns);
    EXPECT_GT(cs.time_total_ns, 0);
    // Collective and repeatable: a second snapshot reads the same state.
    scioto_stats_t cs2;
    tc_stats_get(tc, &cs2);
    EXPECT_EQ(cs.tasks_executed, cs2.tasks_executed);
    EXPECT_EQ(cs.steals, cs2.steals);
    EXPECT_EQ(cs.time_total_ns, cs2.time_total_ns);
    tc_task_destroy(task);
    tc_destroy(tc);
  });
}

TEST_P(TcBackends, RandomRemoteSpawnStress) {
  // Property: under a randomized mixture of local spawning, remote adds
  // (which exercise the dirty-marking rules), and affinity levels, every
  // task executes exactly once and termination is always detected.
  constexpr int kSeeds = 40;
  std::atomic<std::int64_t> executed{0};
  std::atomic<std::int64_t> spawned{kSeeds};
  testing::run(5, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    struct Body {
      std::uint64_t rng_state;
      std::int32_t depth;
    };
    TaskHandle h = tc.register_callback([&](TaskContext& ctx) {
      executed.fetch_add(1);
      Body b = ctx.body_as<Body>();
      if (b.depth <= 0) return;
      Xoshiro256 rng(b.rng_state);
      int children = static_cast<int>(rng.next_below(3));  // 0..2
      for (int c = 0; c < children; ++c) {
        Task t = ctx.tc.task_create(sizeof(Body), ctx.header.callback);
        t.body_as<Body>() = {rng.next(), b.depth - 1};
        Rank where = static_cast<Rank>(
            rng.next_below(static_cast<std::uint64_t>(
                ctx.tc.runtime().nprocs())));
        int affinity = rng.bernoulli(0.5) ? kAffinityHigh : kAffinityLow;
        ctx.tc.add(where, affinity, t);
        spawned.fetch_add(1);
      }
    });
    Task t = tc.task_create(sizeof(Body), h);
    for (int i = 0; i < kSeeds / rt.nprocs(); ++i) {
      t.body_as<Body>() = {derive_seed(99, rt.me(), i), 9};
      tc.add_local(t);
    }
    tc.process();
    tc.destroy();
  });
  EXPECT_EQ(executed.load(), spawned.load());
}

TEST(TcMulticore, NodeBiasedStealingStaysCorrect) {
  // 16 ranks as two 8-core nodes; heavy bias toward same-node victims must
  // not lose tasks, and most successful steals should be intra-node.
  constexpr int kDepth = 11;
  std::atomic<std::int64_t> executed{0};
  pgas::Config pc = testing::make_cfg(16, BackendKind::Sim);
  pc.machine = sim::multicore_cluster(8);
  pgas::run_spmd(pc, [&](Runtime& rt) {
    TcConfig cfg = small_cfg();
    cfg.node_steal_bias = 0.8;
    TaskCollection tc(rt, cfg);
    struct Body {
      int depth;
    };
    TaskHandle h = tc.register_callback([&](TaskContext& ctx) {
      executed.fetch_add(1);
      int d = ctx.body_as<Body>().depth;
      if (d > 0) {
        Task child = ctx.tc.task_create(sizeof(Body), ctx.header.callback);
        child.body_as<Body>().depth = d - 1;
        ctx.tc.add_local(child);
        ctx.tc.add_local(child);
      }
    });
    if (rt.me() == 0) {
      Task t = tc.task_create(sizeof(Body), h);
      t.body_as<Body>().depth = kDepth;
      tc.add_local(t);
    }
    tc.process();
    TcStats g = tc.stats_global();
    EXPECT_EQ(g.tasks_executed, (1u << (kDepth + 1)) - 1);
    EXPECT_GT(g.steals, 0u);
    EXPECT_GE(g.steals, g.steals_same_node);
    // With 0.8 bias on 8-core nodes, intra-node steals dominate.
    EXPECT_GT(g.steals_same_node * 2, g.steals);
    tc.destroy();
  });
  EXPECT_EQ(executed.load(), (1 << (kDepth + 1)) - 1);
}

TEST(TcMulticore, IntraNodeRmaIsCheaper) {
  pgas::Config pc = testing::make_cfg(4, BackendKind::Sim);
  pc.machine = sim::multicore_cluster(2);  // ranks {0,1} and {2,3}
  pgas::run_spmd(pc, [&](Runtime& rt) {
    EXPECT_TRUE(rt.machine().same_node(0, 1));
    EXPECT_FALSE(rt.machine().same_node(1, 2));
    pgas::SegId seg = rt.seg_alloc(64);
    rt.barrier();
    if (rt.me() == 0) {
      std::int64_t v = 1;
      TimeNs t0 = rt.now();
      rt.put(seg, 1, 0, &v, sizeof(v));  // same node
      TimeNs intra = rt.now() - t0;
      t0 = rt.now();
      rt.put(seg, 2, 0, &v, sizeof(v));  // across nodes
      TimeNs inter = rt.now() - t0;
      EXPECT_LT(intra * 4, inter);
    }
    rt.barrier();
    rt.seg_free(seg);
  });
}

// ---- TaskDag dependency extension (§8) ----

TEST_P(TcBackends, DagChainExecutesInOrder) {
  std::vector<int> order;
  std::mutex m;
  testing::run(3, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    TaskDag dag(tc);
    constexpr int kLen = 12;
    std::vector<TaskDag::NodeId> ids;
    for (int i = 0; i < kLen; ++i) {
      ids.push_back(dag.add_node(i % rt.nprocs(), [&, i] {
        std::lock_guard<std::mutex> g(m);
        order.push_back(i);
      }));
      if (i > 0) {
        dag.add_edge(ids[static_cast<std::size_t>(i) - 1],
                     ids[static_cast<std::size_t>(i)]);
      }
    }
    dag.execute();
    tc.destroy();
  });
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST_P(TcBackends, DagDiamondJoinWaitsForBothBranches) {
  std::atomic<int> stage{0};
  std::atomic<bool> violated{false};
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    TaskDag dag(tc);
    auto a = dag.add_node(0, [&] { stage.fetch_add(1); });
    auto b = dag.add_node(1, [&] {
      if (stage.load() < 1) violated = true;
      stage.fetch_add(1);
    });
    auto c = dag.add_node(2, [&] {
      if (stage.load() < 1) violated = true;
      stage.fetch_add(1);
    });
    auto d = dag.add_node(3, [&] {
      if (stage.load() < 3) violated = true;  // both branches must be done
      stage.fetch_add(1);
    });
    dag.add_edge(a, b);
    dag.add_edge(a, c);
    dag.add_edge(b, d);
    dag.add_edge(c, d);
    dag.execute();
    tc.destroy();
  });
  EXPECT_EQ(stage.load(), 4);
  EXPECT_FALSE(violated.load());
}

TEST_P(TcBackends, DagWideFanOutAllExecute) {
  std::atomic<int> leaves{0};
  testing::run(4, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    TaskDag dag(tc);
    auto root = dag.add_node(0, [] {});
    auto join = dag.add_node(0, [] {});
    for (int i = 0; i < 64; ++i) {
      auto leaf = dag.add_node(i % rt.nprocs(), [&] { leaves.fetch_add(1); });
      dag.add_edge(root, leaf);
      dag.add_edge(leaf, join);
    }
    dag.execute();
    tc.destroy();
  });
  EXPECT_EQ(leaves.load(), 64);
}

TEST_P(TcBackends, DagCycleDetected) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    TaskCollection tc(rt, small_cfg());
    TaskDag dag(tc);
    auto a = dag.add_node(0, [] {});
    auto b = dag.add_node(1, [] {});
    dag.add_edge(a, b);
    dag.add_edge(b, a);
    EXPECT_THROW(dag.execute(), Error);
    tc.destroy();
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TcBackends,
                         ::testing::Values(BackendKind::Sim,
                                           BackendKind::Threads),
                         [](const auto& info) {
                           return scioto::testing::backend_name(info.param);
                         });

}  // namespace
}  // namespace scioto
