// SCF tests: system construction, the synthetic integral kernel's
// screening behaviour, the sequential reference's convergence, and exact
// energy agreement between the reference and both parallel schedulers.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/scf/scf_drivers.hpp"
#include "test_util.hpp"

namespace scioto::apps {
namespace {

using pgas::BackendKind;
using pgas::Runtime;

ScfConfig tiny_cfg() {
  ScfConfig cfg;
  cfg.nshells = 8;
  cfg.min_shell = 2;
  cfg.max_shell = 5;
  cfg.iterations = 2;
  cfg.seed = 99;
  return cfg;
}

TEST(Scf, SystemBuildIsConsistent) {
  ScfSystem sys = ScfSystem::build(tiny_cfg());
  EXPECT_EQ(sys.nsh, 8);
  EXPECT_EQ(sys.shell_off.back(), sys.nbf);
  std::int64_t total = 0;
  for (int s = 0; s < sys.nsh; ++s) {
    EXPECT_GE(sys.shell_size[static_cast<std::size_t>(s)], 2);
    EXPECT_LE(sys.shell_size[static_cast<std::size_t>(s)], 5);
    total += sys.shell_size[static_cast<std::size_t>(s)];
  }
  EXPECT_EQ(total, sys.nbf);
  // Schwarz factors: symmetric-ish diagonal dominance, K(i,i)=1.
  for (int i = 0; i < sys.nsh; ++i) {
    EXPECT_DOUBLE_EQ(sys.k_pair(i, i), 1.0);
    for (int j = 0; j < sys.nsh; ++j) {
      EXPECT_GT(sys.k_pair(i, j), 0.0);
      EXPECT_LE(sys.k_pair(i, j), 1.0);
      EXPECT_DOUBLE_EQ(sys.k_pair(i, j), sys.k_pair(j, i));
    }
  }
}

TEST(Scf, SystemBuildIsDeterministic) {
  ScfSystem a = ScfSystem::build(tiny_cfg());
  ScfSystem b = ScfSystem::build(tiny_cfg());
  EXPECT_EQ(a.nbf, b.nbf);
  EXPECT_EQ(a.hcore, b.hcore);
  EXPECT_EQ(a.schwarz, b.schwarz);
}

TEST(Scf, ScreeningSkipsDistantQuartets) {
  ScfConfig cfg = tiny_cfg();
  cfg.box = 30.0;  // very spread out -> strong screening
  cfg.alpha = 0.5;
  ScfSystem spread = ScfSystem::build(cfg);
  cfg.box = 0.5;  // compact -> no screening
  ScfSystem compact = ScfSystem::build(cfg);

  auto count_quartets = [](const ScfSystem& sys) {
    std::int64_t q = 0;
    std::vector<double> f(64 * 64);
    for (int i = 0; i < sys.nsh; ++i) {
      q += sys.fock_block(
          i, i,
          [&](int k, double* buf) {
            std::fill(buf,
                      buf + sys.shell_size[static_cast<std::size_t>(k)] *
                                sys.nbf,
                      0.0);
          },
          f.data());
    }
    return q;
  };
  EXPECT_LT(count_quartets(spread), count_quartets(compact));
}

TEST(Scf, ReferenceEnergiesDescendAndConverge) {
  ScfConfig cfg = tiny_cfg();
  cfg.iterations = 5;
  ScfSystem sys = ScfSystem::build(cfg);
  std::vector<double> e = scf_reference(sys);
  ASSERT_EQ(e.size(), 5u);
  for (double v : e) {
    EXPECT_TRUE(std::isfinite(v));
  }
  // SCF iteration refines the energy: later deltas shrink.
  double d1 = std::abs(e[1] - e[0]);
  double d4 = std::abs(e[4] - e[3]);
  EXPECT_LT(d4, d1 + 1e-12);
}

class ScfParallel : public ::testing::TestWithParam<
                        std::tuple<BackendKind, int, LbScheme>> {};

TEST_P(ScfParallel, EnergiesMatchReferenceExactly) {
  auto [kind, nranks, lb] = GetParam();
  ScfSystem sys = ScfSystem::build(tiny_cfg());
  std::vector<double> expected = scf_reference(sys);
  ScfRunResult res;
  testing::run(nranks, kind, [&](Runtime& rt) {
    res = scf_run(rt, sys, lb);
  });
  ASSERT_EQ(res.energies.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    // Every task writes a distinct Fock block, so the parallel Fock matrix
    // is bitwise identical to the sequential one.
    EXPECT_DOUBLE_EQ(res.energies[i], expected[i]) << "iteration " << i;
  }
  EXPECT_EQ(res.tasks,
            static_cast<std::uint64_t>(sys.nsh) *
                static_cast<std::uint64_t>(sys.nsh) *
                static_cast<std::uint64_t>(sys.cfg.iterations));
  EXPECT_GT(res.fock_elapsed, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScfParallel,
    ::testing::Combine(::testing::Values(BackendKind::Sim,
                                         BackendKind::Threads),
                       ::testing::Values(1, 4),
                       ::testing::Values(LbScheme::Scioto,
                                         LbScheme::GlobalCounter)),
    [](const auto& info) {
      return scioto::testing::backend_name(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_" +
             lb_name(std::get<2>(info.param));
    });

TEST(ScfSim, DeterministicEnergiesAndTiming) {
  ScfSystem sys = ScfSystem::build(tiny_cfg());
  auto once = [&] {
    ScfRunResult res;
    testing::run_sim(4, [&](Runtime& rt) {
      res = scf_run(rt, sys, LbScheme::Scioto);
    });
    return res;
  };
  ScfRunResult a = once();
  ScfRunResult b = once();
  EXPECT_EQ(a.energies, b.energies);
  EXPECT_EQ(a.fock_elapsed, b.fock_elapsed);
}

TEST(ScfSim, SciotoScalesOnUniformCluster) {
  ScfConfig cfg = tiny_cfg();
  cfg.nshells = 10;
  cfg.iterations = 1;
  ScfSystem sys = ScfSystem::build(cfg);
  auto time_for = [&](int n) {
    ScfRunResult res;
    pgas::Config pc = testing::make_cfg(n, BackendKind::Sim);
    pc.machine = sim::cluster2008_uniform();
    pgas::run_spmd(pc, [&](Runtime& rt) {
      res = scf_run(rt, sys, LbScheme::Scioto);
    });
    return res.fock_elapsed;
  };
  TimeNs t1 = time_for(1);
  TimeNs t8 = time_for(8);
  EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t8), 2.5);
}

}  // namespace
}  // namespace scioto::apps
