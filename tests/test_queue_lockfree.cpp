// LockFree queue mode (Chase-Lev steal path): exhaustive interleaving
// model, pinned ABA/empty-race scenarios, and randomized conservation
// stress on the real queue.
//
// Three layers, weakest assumptions first:
//
//   1. A word-level step machine mirrors the protocol's shared-memory
//      transitions exactly -- the tagged steal_head (tag << 48 | index),
//      the split, the physical ring aliasing (slot = index % capacity) --
//      at the granularity of the real code's atomic accesses: a thief is
//      T_LOAD_RAW / T_LOAD_SPLIT(+copy) / T_CAS, an adder is A_WRITE /
//      A_CAS under the victim's lock, the owner's validated reacquire is
//      O_PUB / O_VAL. A DFS enumerates EVERY interleaving of these steps
//      and checks two oracles in each one: (a) a successful claim's
//      copied slots still equal the ring at CAS time (no stale/ABA claim
//      escapes), and (b) every task is consumed exactly once (multiset
//      conservation, including tasks the owner privatizes). The model is
//      sequentially consistent by construction; the weak-memory argument
//      that the real seq_cst annotations reduce to this machine is in
//      DESIGN.md.
//
//   2. The same DFS with the tag mechanics REMOVED must detect the
//      classic "steal n then add n returns steal_head to a value a stale
//      thief still holds" recurrence -- proving the harness has teeth,
//      i.e. that the zero-violation results above are the tag's doing and
//      not a blind oracle.
//
//   3. The real SplitQueue: deterministic sim legs (chunked multi-CAS
//      take + live set_knob chunk flip, ring wraparound conservation,
//      owner self-steal on a thin shared portion) and a real-threads
//      stress leg (suite name carries "Threads" for the CI TSan filter):
//      one victim, many thieves, remote adds re-opening the ABA window
//      mid-flight, per-thief mid-run StealChunk flips, exactly-once
//      fingerprint over all ranks.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "control/knobs.hpp"
#include "scioto/queue.hpp"
#include "scioto/task.hpp"
#include "test_util.hpp"

namespace scioto {
namespace {

using pgas::Runtime;

// ======================================================================
// Layer 1+2: the word-level step machine.
// ======================================================================

// Small on purpose: 8 physical slots and single-digit scripts keep full
// DFS enumeration in the tens of thousands of interleavings. Scenarios
// must keep the live window within kModelCap, as the real queue's
// capacity check does -- seeding more tasks than slots would alias the
// ring in the SEED, a state the protocol can never reach.
constexpr std::uint64_t kModelCap = 8;
constexpr std::uint64_t kModelBase = 1ull << 20;
constexpr int kTagShift = 48;  // mirrors SplitQueue::kShTagShift
constexpr std::uint64_t kIdxMask = (1ull << kTagShift) - 1;

constexpr std::uint64_t midx(std::uint64_t raw) { return raw & kIdxMask; }

struct World {
  // When false the adder's publishing CAS writes a plain index word --
  // the deliberately broken variant layer 2 uses to prove the oracles
  // would catch the ABA the tag exists to close.
  bool tag_on = true;

  std::uint64_t raw = kModelBase;        // tagged steal_head ("top")
  std::uint64_t split = kModelBase;      // shared/private boundary
  std::uint64_t priv_tail = kModelBase;  // owner push/pop end
  std::array<std::uint64_t, kModelCap> ring{};  // id per PHYSICAL slot

  std::uint64_t bump(std::uint64_t old_raw, std::uint64_t new_idx) const {
    if (!tag_on) return new_idx;
    return (((old_raw >> kTagShift) + 1) & 0xffff) << kTagShift | new_idx;
  }
  std::uint64_t& slot(std::uint64_t index) { return ring[index % kModelCap]; }

  // --- Thief: the bounded multi-CAS take loop at real-code atomic
  // granularity. pc 0 = load raw, 1 = load split + speculative copy,
  // 2 = publishing CAS, 3 = done. A failed CAS retries from pc 0 while
  // `retries` last (the real loop bounds this at 16).
  struct Thief {
    std::uint64_t chunk = 1;
    int retries = 1;
    int pc = 0;
    std::uint64_t loaded_raw = 0;
    std::uint64_t n = 0;
    std::array<std::uint64_t, kModelCap> copy{};
    std::uint64_t claimed = 0;   // tasks won across the whole attempt
    int cas_fails = 0;
    bool aba_defeated = false;   // CAS failed on same-index different-tag
  };

  // --- Adder: add_remote_lockfree's body. Adders hold the victim's lock
  // against EACH OTHER in the real code, so a scenario uses at most one
  // at a time; the lock does not order them against thieves, which is
  // why both steps interleave freely here. pc 0 = load raw + slot write,
  // 1 = publishing tag-bump CAS (failure rewrites at the new position),
  // 2 = done. Scenarios keep the live window under capacity, matching
  // the internal_cap_ headroom that makes the real capacity check safe.
  struct Adder {
    std::uint64_t id = 0;
    int pc = 0;
    std::uint64_t loaded_raw = 0;
  };

  // --- Owner validated split-lowering (reacquire fast path). pc 0 =
  // publish the lowered split, 1 = validation load of raw (commit or
  // restore), 2 = done. On commit the owner privatizes -- and, for the
  // conservation oracle, immediately consumes -- tasks [new_sp, old_sp).
  struct Reacq {
    std::uint64_t chunk_max = 1;
    int pc = 0;
    std::uint64_t old_sp = 0;
    std::uint64_t new_sp = 0;
    bool committed = false;
  };

  std::vector<Thief> thieves;
  std::vector<Adder> adders;
  std::vector<Reacq> reacqs;

  std::multiset<std::uint64_t> pushed;
  std::multiset<std::uint64_t> consumed;
  int stale_claims = 0;  // successful CAS whose copy != ring at CAS time
};

/// Seeds `ids` as the shared portion ([base, base+n), oldest first).
void seed_shared(World* w, const std::vector<std::uint64_t>& ids) {
  for (std::uint64_t i = 0; i < ids.size(); ++i) {
    w->slot(kModelBase + i) = ids[i];
    w->pushed.insert(ids[i]);
  }
  w->split = kModelBase + ids.size();
  w->priv_tail = w->split;
}

void thief_step(World* w, World::Thief* t) {
  switch (t->pc) {
    case 0: {  // T_LOAD_RAW
      t->loaded_raw = w->raw;
      t->pc = 1;
      return;
    }
    case 1: {  // T_LOAD_SPLIT + speculative copy
      std::uint64_t sh = midx(t->loaded_raw);
      std::uint64_t bd = w->split;
      std::uint64_t avail = bd > sh ? bd - sh : 0;
      t->n = std::min(avail, t->chunk);
      if (t->n == 0) {
        t->pc = 3;  // empty-handed
        return;
      }
      for (std::uint64_t i = 0; i < t->n; ++i) {
        t->copy[i] = w->slot(sh + i);
      }
      t->pc = 2;
      return;
    }
    case 2: {  // T_CAS
      if (w->raw == t->loaded_raw) {
        std::uint64_t sh = midx(t->loaded_raw);
        for (std::uint64_t i = 0; i < t->n; ++i) {
          if (w->slot(sh + i) != t->copy[i]) {
            w->stale_claims++;  // the oracle the tag must keep at zero
          }
          w->consumed.insert(t->copy[i]);
        }
        w->raw = t->loaded_raw + t->n;  // tag bits preserved: idx < 2^48
        t->claimed += t->n;
        t->pc = 3;
      } else {
        t->cas_fails++;
        if (midx(w->raw) == midx(t->loaded_raw)) {
          t->aba_defeated = true;  // same index, different history
        }
        t->pc = t->retries-- > 0 ? 0 : 3;
      }
      return;
    }
    default:
      return;
  }
}

void adder_step(World* w, World::Adder* a) {
  switch (a->pc) {
    case 0: {  // A_WRITE (scenarios never fill the ring: no Full path)
      a->loaded_raw = w->raw;
      w->slot(midx(a->loaded_raw) - 1) = a->id;
      a->pc = 1;
      return;
    }
    case 1: {  // A_CAS: bump the tag, move the index down
      if (w->raw == a->loaded_raw) {
        w->raw = w->bump(a->loaded_raw, midx(a->loaded_raw) - 1);
        w->pushed.insert(a->id);
        a->pc = 2;
      } else {
        a->pc = 0;  // a thief moved the window; rewrite at the new spot
      }
      return;
    }
    default:
      return;
  }
}

void reacq_step(World* w, World::Reacq* r) {
  switch (r->pc) {
    case 0: {  // O_PUB
      std::uint64_t sh = midx(w->raw);
      std::uint64_t sp = w->split;
      std::uint64_t avail = sp > sh ? sp - sh : 0;
      if (avail < 2 * r->chunk_max) {
        r->pc = 2;  // scenarios that want the thin path use a thief actor
        return;
      }
      std::uint64_t take = avail - avail / 2;
      r->old_sp = sp;
      r->new_sp = sp - take;
      w->split = r->new_sp;
      r->pc = 1;
      return;
    }
    case 1: {  // O_VAL: the chunk_max-margin check from the real code
      std::uint64_t sh2 = midx(w->raw);
      if (sh2 + r->chunk_max <= r->new_sp) {
        r->committed = true;
        // Privatized tasks are the owner's now; consume them immediately
        // so a stale thief claim overlapping them shows up as a
        // duplicate in the conservation oracle.
        for (std::uint64_t j = r->new_sp; j < r->old_sp; ++j) {
          w->consumed.insert(w->slot(j));
        }
      } else {
        w->split = r->old_sp;  // restore: raising split is just a release
      }
      r->pc = 2;
      return;
    }
    default:
      return;
  }
}

struct DfsStats {
  std::uint64_t interleavings = 0;
  std::uint64_t stale_claims = 0;
  std::uint64_t conservation_violations = 0;
  std::uint64_t aba_defeats = 0;  // thief CAS failed same-idx-new-tag
  std::uint64_t cas_fails = 0;
  // Per-actor claim totals across terminal states (coverage assertions).
  std::map<std::uint64_t, std::uint64_t> thief_claim_counts;
  std::map<std::uint64_t, std::uint64_t> reacq_commits;  // 1 = committed
};

void finish_check(const World& w, DfsStats* stats) {
  stats->interleavings++;
  stats->stale_claims += static_cast<std::uint64_t>(w.stale_claims);

  // Remaining tasks: shared [idx(raw), split) plus the still-unconsumed
  // private region. The only privatized-and-consumed span is a committed
  // reacquire's [new_sp, old_sp).
  World scratch = w;  // slot() is non-const; the copy is 100 bytes
  std::multiset<std::uint64_t> all = w.consumed;
  std::uint64_t sh = midx(w.raw);
  for (std::uint64_t j = sh; j < w.priv_tail; ++j) {
    bool owner_consumed = false;
    for (const auto& r : w.reacqs) {
      if (r.committed && j >= r.new_sp && j < r.old_sp) {
        owner_consumed = true;
      }
    }
    if (!owner_consumed) {
      all.insert(scratch.slot(j));
    }
  }
  if (all != w.pushed) {
    stats->conservation_violations++;
  }

  for (std::uint64_t i = 0; i < w.thieves.size(); ++i) {
    stats->thief_claim_counts[i] += w.thieves[i].claimed;
    stats->aba_defeats += w.thieves[i].aba_defeated ? 1 : 0;
    stats->cas_fails += static_cast<std::uint64_t>(w.thieves[i].cas_fails);
  }
  for (std::uint64_t i = 0; i < w.reacqs.size(); ++i) {
    stats->reacq_commits[i] += w.reacqs[i].committed ? 1 : 0;
  }
}

/// Enumerates EVERY interleaving of the enabled actors' next steps.
/// Every actor's steps are always enabled (the protocol never blocks),
/// so terminal states are exactly "all actors done".
void dfs(const World& w, DfsStats* stats) {
  bool any = false;
  for (std::uint64_t i = 0; i < w.thieves.size(); ++i) {
    if (w.thieves[i].pc < 3) {
      World w2 = w;
      thief_step(&w2, &w2.thieves[i]);
      dfs(w2, stats);
      any = true;
    }
  }
  for (std::uint64_t i = 0; i < w.adders.size(); ++i) {
    if (w.adders[i].pc < 2) {
      World w2 = w;
      adder_step(&w2, &w2.adders[i]);
      dfs(w2, stats);
      any = true;
    }
  }
  for (std::uint64_t i = 0; i < w.reacqs.size(); ++i) {
    if (w.reacqs[i].pc < 2) {
      World w2 = w;
      reacq_step(&w2, &w2.reacqs[i]);
      dfs(w2, stats);
      any = true;
    }
  }
  if (!any) {
    finish_check(w, stats);
  }
}

// The single-element empty race: one task exposed, the owner reclaiming
// it through the self-steal CAS path (reacquire's thin-shared fallback is
// literally steal_from_lockfree(me), so the owner IS a thief here) versus
// a remote thief. Exactly one side must win in every interleaving, and
// both outcomes must be reachable.
TEST(LockFreeModel, OwnerTakeLastVsConcurrentSteal) {
  World w;
  seed_shared(&w, {1});
  w.thieves.push_back({/*chunk=*/1, /*retries=*/1});  // remote thief
  w.thieves.push_back({/*chunk=*/1, /*retries=*/1});  // owner self-steal
  DfsStats stats;
  dfs(w, &stats);
  EXPECT_GT(stats.interleavings, 0u);
  EXPECT_EQ(stats.stale_claims, 0u);
  EXPECT_EQ(stats.conservation_violations, 0u)
      << "a contested last element was lost or executed twice";
  // Coverage: each contender wins in at least one interleaving.
  EXPECT_GT(stats.thief_claim_counts[0], 0u);
  EXPECT_GT(stats.thief_claim_counts[1], 0u);
}

// The ABA race the tag exists for: thief A snapshots (raw, split, slots),
// thief B steals a task, an adder then moves steal_head back DOWN to the
// exact index A still holds as its CAS expected value -- writing a
// different task into the physically aliased slot. Interleavings where
// that full recurrence happens must fail A's CAS on the tag; nowhere may
// a stale copy escape or a task be lost/duplicated.
TEST(LockFreeModel, AbaTagDefeatsStealAddRecurrence) {
  World w;
  seed_shared(&w, {1, 2});
  w.thieves.push_back({/*chunk=*/1, /*retries=*/0});  // A: the stale one
  w.thieves.push_back({/*chunk=*/1, /*retries=*/1});  // B
  w.adders.push_back({/*id=*/3});
  DfsStats stats;
  dfs(w, &stats);
  EXPECT_GT(stats.interleavings, 0u);
  EXPECT_EQ(stats.stale_claims, 0u)
      << "a thief published a claim over slots that no longer hold the "
         "tasks it copied";
  EXPECT_EQ(stats.conservation_violations, 0u);
  // The dangerous recurrence genuinely occurred in some interleavings --
  // and only the tag (same index, different history word) stopped it.
  EXPECT_GT(stats.aba_defeats, 0u)
      << "the enumeration never produced the steal+add index recurrence; "
         "the scenario has lost its teeth";
}

// Layer 2: the same scenario with the tag disabled (the adder's CAS
// writes a plain index) must produce detectable violations. This is what
// certifies the two oracles: zero violations above is a property of the
// protocol, not of a harness that cannot see the bug.
TEST(LockFreeModel, TagRemovedHarnessDetectsAba) {
  World w;
  w.tag_on = false;
  seed_shared(&w, {1, 2});
  w.thieves.push_back({/*chunk=*/1, /*retries=*/0});
  w.thieves.push_back({/*chunk=*/1, /*retries=*/1});
  w.adders.push_back({/*id=*/3});
  DfsStats stats;
  dfs(w, &stats);
  EXPECT_GT(stats.stale_claims + stats.conservation_violations, 0u)
      << "without the tag the model found no ABA violation -- the "
         "oracles are blind and the lockfree-mode results prove nothing";
}

// Owner validated split-lowering racing a chunked thief: the chunk_max
// margin must make the commit safe against the one stale claim that can
// land after the validation load, in every interleaving. Both the commit
// and the restore path must be exercised.
TEST(LockFreeModel, OwnerFastPathReacquireVsChunkedThief) {
  World w;
  seed_shared(&w, {1, 2, 3, 4, 5, 6});  // avail 6 >= 2 * chunk_max
  w.thieves.push_back({/*chunk=*/2, /*retries=*/1});
  w.reacqs.push_back({/*chunk_max=*/2});
  DfsStats stats;
  dfs(w, &stats);
  EXPECT_GT(stats.interleavings, 0u);
  EXPECT_EQ(stats.stale_claims, 0u);
  EXPECT_EQ(stats.conservation_violations, 0u)
      << "a privatized task was also claimed by a thief (margin too "
         "thin) or work was lost on restore";
  EXPECT_GT(stats.reacq_commits[0], 0u) << "fast path never committed";
  EXPECT_LT(stats.reacq_commits[0], stats.interleavings)
      << "restore path never exercised";
}

// Chunked multi-CAS take under interference: a width-2 thief against an
// adder that keeps moving the window down. Lost CASes must retry with
// fresh loads and fresh slots; some interleaving must land a full
// 2-task chunk and some must retry.
TEST(LockFreeModel, ChunkedMultiCasTakeWithConcurrentAdd) {
  World w;
  seed_shared(&w, {1, 2, 3});
  w.thieves.push_back({/*chunk=*/2, /*retries=*/2});
  w.adders.push_back({/*id=*/9});
  DfsStats stats;
  dfs(w, &stats);
  EXPECT_EQ(stats.stale_claims, 0u);
  EXPECT_EQ(stats.conservation_violations, 0u);
  EXPECT_GT(stats.thief_claim_counts[0], 0u);
  EXPECT_GT(stats.cas_fails, 0u) << "the multi-CAS retry leg never ran";
}

// Pinned deterministic replay of the exact ABA order, asserting the
// precise mechanism: after steal(1) + add(1) the index has RECURRED but
// the word has not, so the stale CAS fails -- and would have succeeded
// on a plain index word.
TEST(LockFreeModel, PinnedAbaSequenceFailsOnTagOnly) {
  World w;
  seed_shared(&w, {1, 2});
  w.thieves.push_back({/*chunk=*/1, /*retries=*/0});  // A, to go stale
  w.thieves.push_back({/*chunk=*/1, /*retries=*/0});  // B
  w.adders.push_back({/*id=*/3});

  thief_step(&w, &w.thieves[0]);  // A: T_LOAD_RAW
  thief_step(&w, &w.thieves[0]);  // A: T_LOAD_SPLIT + copy (copies id 1)
  thief_step(&w, &w.thieves[1]);  // B: full steal of id 1
  thief_step(&w, &w.thieves[1]);
  thief_step(&w, &w.thieves[1]);
  ASSERT_EQ(w.thieves[1].claimed, 1u);
  adder_step(&w, &w.adders[0]);  // add id 3 at the recurred index
  adder_step(&w, &w.adders[0]);
  ASSERT_EQ(w.adders[0].pc, 2);

  // The index is back where A loaded it; the raw word is not.
  EXPECT_EQ(midx(w.raw), midx(w.thieves[0].loaded_raw));
  EXPECT_NE(w.raw, w.thieves[0].loaded_raw);
  // The aliased slot now holds id 3, not the id 1 that A copied.
  EXPECT_NE(w.slot(midx(w.raw)), w.thieves[0].copy[0]);

  thief_step(&w, &w.thieves[0]);  // A: T_CAS -- must fail on the tag
  EXPECT_EQ(w.thieves[0].claimed, 0u);
  EXPECT_EQ(w.thieves[0].cas_fails, 1);
  EXPECT_TRUE(w.thieves[0].aba_defeated);
  EXPECT_EQ(w.stale_claims, 0);
}

// Long sequential walk across both wrap boundaries: the 4-slot physical
// ring wraps thousands of times and 70000 adds wrap the 16-bit tag
// itself. Each cycle adds one task (index moves down, tag bumps) and
// steals it back (index moves up); no interleaving, so every claim must
// be fresh and conservation exact throughout.
TEST(LockFreeModel, WraparoundTagAndRingSeededWalk) {
  World w;
  seed_shared(&w, {});
  constexpr std::uint64_t kCycles = 70000;  // > 2^16: tag wraps too
  for (std::uint64_t i = 0; i < kCycles; ++i) {
    World::Adder a{/*id=*/i + 1};
    while (a.pc < 2) adder_step(&w, &a);
    World::Thief t{/*chunk=*/1, /*retries=*/0};
    while (t.pc < 3) thief_step(&w, &t);
    ASSERT_EQ(t.claimed, 1u) << "cycle " << i;
    ASSERT_EQ(w.stale_claims, 0) << "cycle " << i;
  }
  EXPECT_EQ(midx(w.raw), kModelBase);  // index recurred kCycles times...
  EXPECT_EQ(w.raw >> kTagShift, kCycles % 65536);  // ...the word did not
  EXPECT_EQ(w.consumed, w.pushed);
}

// ======================================================================
// Layer 3: the real SplitQueue.
// ======================================================================

constexpr std::size_t kSlot = 16;

void make_slot(std::byte* buf, std::uint64_t id) {
  std::memset(buf, 0, kSlot);
  std::memcpy(buf, &id, sizeof(id));
}

std::uint64_t slot_id(const std::byte* buf) {
  std::uint64_t id;
  std::memcpy(&id, buf, sizeof(id));
  return id;
}

SplitQueue::Config lockfree_cfg(const control::KnobSet* knobs,
                                int chunk = 4, int chunk_max = 8,
                                std::uint64_t capacity = 4096) {
  SplitQueue::Config c;
  c.slot_bytes = kSlot;
  c.capacity = capacity;
  c.chunk = chunk;
  c.chunk_max = chunk_max;
  c.knobs = knobs;
  c.mode = QueueMode::LockFree;
  c.release_threshold = 4;
  return c;
}

// Chunked multi-CAS take widths obey the LIVE knob, including a
// set_knob flip between steals, and claims come off the steal end
// oldest-index-first. Low-affinity pushes enter at steal_head - 1, so
// push order 1..12 exposes 12 as the OLDEST (lowest index): exact
// deterministic steal order under sim.
TEST(LockFreeQueueSim, ChunkFlipTakesLiveWidthOldestFirst) {
  testing::run_sim(2, [&](Runtime& rt) {
    control::KnobSet knobs;
    knobs.init(/*chunk=*/3, /*chunk_max=*/8, /*steal_half=*/false,
               /*retarget_budget=*/0, /*release_threshold=*/4,
               rt.nprocs());
    SplitQueue q(rt, lockfree_cfg(&knobs, /*chunk=*/3));
    std::byte buf[kSlot];
    if (rt.me() == 0) {
      for (std::uint64_t id = 1; id <= 12; ++id) {
        make_slot(buf, id);
        ASSERT_TRUE(q.push_local(buf, kAffinityLow));
      }
      ASSERT_EQ(q.shared_size(), 12u);
    }
    rt.barrier();

    if (rt.me() == 1) {
      std::vector<std::byte> out(8 * kSlot);
      ASSERT_EQ(q.steal_from(0, out.data()), 3);
      EXPECT_EQ(slot_id(out.data()), 12u);
      EXPECT_EQ(slot_id(out.data() + kSlot), 11u);
      EXPECT_EQ(slot_id(out.data() + 2 * kSlot), 10u);

      // Live flip: the thief's own KnobSet governs its next take width.
      ASSERT_TRUE(knobs.set(control::Knob::StealChunk, 5));
      ASSERT_EQ(q.steal_from(0, out.data()), 5);
      for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(slot_id(out.data() + static_cast<std::size_t>(i) * kSlot),
                  static_cast<std::uint64_t>(9 - i));
      }

      // Clamp: requests above chunk_max are bounded by the buffers'
      // sizing, never by luck.
      knobs.set(control::Knob::StealChunk, 99);
      EXPECT_EQ(knobs.get(control::Knob::StealChunk), 8);
      ASSERT_EQ(q.steal_from(0, out.data()), 4);  // 4 tasks remain
      EXPECT_EQ(q.counters().steals_lock_busy, 0u);
    }
    rt.barrier();
    EXPECT_EQ(q.peek_shared(0), 0u);
    q.destroy();
  });
}

// 400 tasks through an 8-slot ring: indices lap the physical array ~50
// times on both the add (downward) and steal (upward) end. Exact id-set
// conservation after every round.
TEST(LockFreeQueueSim, WraparoundConservation) {
  testing::run_sim(2, [&](Runtime& rt) {
    control::KnobSet knobs;
    knobs.init(4, 4, false, 0, 4, rt.nprocs());
    SplitQueue q(rt, lockfree_cfg(&knobs, /*chunk=*/4, /*chunk_max=*/4,
                                  /*capacity=*/8));
    std::byte buf[kSlot];
    std::vector<std::byte> out(4 * kSlot);
    std::uint64_t sum = 0, count = 0;
    for (int round = 0; round < 100; ++round) {
      if (rt.me() == 0) {
        for (int i = 0; i < 4; ++i) {
          make_slot(buf, static_cast<std::uint64_t>(round * 4 + i + 1));
          ASSERT_TRUE(q.push_local(buf, kAffinityLow));
        }
      }
      rt.barrier();
      if (rt.me() == 1) {
        while (q.peek_shared(0) > 0) {
          int got = q.steal_from(0, out.data());
          ASSERT_GE(got, 0);
          for (int i = 0; i < got; ++i) {
            sum += slot_id(out.data() + static_cast<std::size_t>(i) * kSlot);
            ++count;
          }
        }
      }
      rt.barrier();
    }
    EXPECT_EQ(rt.allreduce_sum(count), 400u);
    EXPECT_EQ(rt.allreduce_sum(sum), 400u * 401u / 2);
    q.destroy();
  });
}

// Owner-side thin-shared reclaim: with one exposed task the reacquire
// falls back to self-stealing through the SAME CAS path a thief uses
// (the owner-CAS-on-top arbitration), while a deep shared portion takes
// the validated fast path. Counters separate the two.
TEST(LockFreeQueueSim, ReacquireSelfStealsThinSharedFastPathsDeep) {
  testing::run_sim(1, [&](Runtime& rt) {
    control::KnobSet knobs;
    knobs.init(2, 2, false, 0, 100, rt.nprocs());
    SplitQueue q(rt, lockfree_cfg(&knobs, /*chunk=*/2, /*chunk_max=*/2));
    std::byte buf[kSlot];

    // Thin: one task exposed -> CAS self-steal, re-pushed private.
    make_slot(buf, 7);
    ASSERT_TRUE(q.push_local(buf, kAffinityLow));
    ASSERT_EQ(q.shared_size(), 1u);
    ASSERT_FALSE(q.pop_local(buf));
    EXPECT_EQ(q.reacquire(), 1u);
    EXPECT_EQ(q.counters().reacquires, 1u);
    EXPECT_EQ(q.counters().reacquires_fast, 0u);
    ASSERT_TRUE(q.pop_local(buf));
    EXPECT_EQ(slot_id(buf), 7u);

    // Deep: avail 8 >= 2 * chunk_max -> validated split-lowering, no CAS.
    for (std::uint64_t id = 10; id < 18; ++id) {
      make_slot(buf, id);
      ASSERT_TRUE(q.push_local(buf, kAffinityLow));
    }
    ASSERT_EQ(q.shared_size(), 8u);
    EXPECT_EQ(q.reacquire(), 4u);  // ceil(8 / 2)
    EXPECT_EQ(q.counters().reacquires, 2u);
    EXPECT_EQ(q.counters().reacquires_fast, 1u);
    std::uint64_t got = 0, want = 0;
    while (q.pop_local(buf)) got += slot_id(buf);
    // The privatized half is the NEWEST-index half [split-4, split):
    // low-affinity pushes 10..17 landed at descending indices, so that
    // half holds ids 10..13.
    for (std::uint64_t id = 10; id < 14; ++id) want += id;
    EXPECT_EQ(got, want);
    EXPECT_EQ(q.shared_size(), 4u);
    q.destroy();
  });
}

// Real-threads conservation stress (CI TSan filter matches "Threads"):
// one victim feeding 2000 tasks, 7 thieves on the unlocked CAS path.
// Three aggravations beyond the locked-mode stress: (a) thieves re-add
// a slice of their loot back to the victim via add_remote -- each add
// moves steal_head DOWN and bumps the tag, continuously re-opening the
// ABA window against in-flight claims; (b) every thief flips its OWN
// StealChunk knob mid-run (1 <-> 4), so chunked multi-CAS takes and
// single-task takes interleave; (c) the victim races its own validated
// reacquires and CAS self-steals against everything. Exactly-once is
// checked with the count / id-sum / id-square-sum fingerprint.
TEST(LockFreeStealThreads, OneVictimManyThievesKnobFlipConservation) {
  constexpr std::uint64_t kTasks = 2000;
  constexpr int kRanks = 8;
  testing::run_threads(kRanks, [&](Runtime& rt) {
    control::KnobSet knobs;  // per-rank: thief-side policy, TSan-clean
    knobs.init(/*chunk=*/4, /*chunk_max=*/4, /*steal_half=*/true,
               /*retarget_budget=*/0, /*release_threshold=*/4,
               rt.nprocs());
    SplitQueue q(rt, lockfree_cfg(&knobs, /*chunk=*/4, /*chunk_max=*/4));
    pgas::SegId flag_seg = rt.seg_alloc(64);
    auto* done =
        reinterpret_cast<std::atomic<std::uint64_t>*>(rt.seg_ptr(flag_seg, 0));
    if (rt.me() == 0) {
      done->store(0, std::memory_order_release);
    }
    rt.barrier();

    std::uint64_t count = 0, sum = 0, sumsq = 0;
    auto record = [&](std::uint64_t id) {
      ++count;
      sum += id;
      sumsq += id * id;
    };

    std::byte buf[kSlot];
    std::vector<std::byte> steal_buf(
        static_cast<std::size_t>(q.config().chunk_max) * kSlot);

    if (rt.me() == 0) {
      for (std::uint64_t id = 1; id <= kTasks; ++id) {
        make_slot(buf, id);
        ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
        q.release_maybe();
        if (id % 3 == 0 && q.pop_local(buf)) {
          record(slot_id(buf));
        }
      }
      while (q.size() > 0) {
        q.release_maybe();
        if (q.pop_local(buf)) {
          record(slot_id(buf));
        } else if (q.reacquire() == 0) {
          rt.relax();
        }
      }
      done->store(1, std::memory_order_release);
      // Thieves may re-add after this point; they also drain what they
      // re-add (each one spins until the shared portion reads empty and
      // its own re-add budget is spent).
    } else {
      std::uint64_t steals = 0;
      int readds_left = 20;  // bounded: guarantees global termination
      for (;;) {
        int got = q.steal_from(0, steal_buf.data());
        ASSERT_NE(got, SplitQueue::kStealBusy)
            << "lockfree steal returned kStealBusy";
        if (got > 0) {
          ++steals;
          if (steals % 64 == 0) {
            // Live mid-run flip of this thief's own take width.
            knobs.set(control::Knob::StealChunk,
                      knobs.get(control::Knob::StealChunk) == 4 ? 1 : 4);
          }
          for (int i = 0; i < got; ++i) {
            const std::byte* t =
                steal_buf.data() + static_cast<std::size_t>(i) * kSlot;
            if (readds_left > 0 && (steals + static_cast<std::uint64_t>(
                                                 i)) % 7 == 0 &&
                q.add_remote(0, t)) {
              --readds_left;  // tag-bumping add races in-flight claims
            } else {
              record(slot_id(t));
            }
          }
          continue;
        }
        if (done->load(std::memory_order_acquire) == 1 &&
            q.peek_shared(0) == 0) {
          // Any task WE re-added was either still visible (we would have
          // stolen it back) or is now another active thief's problem --
          // and every re-adder spins here until its own view drains, so
          // the finite global re-add budget bounds the chain.
          break;
        }
        rt.relax();
      }
      EXPECT_EQ(q.counters().steals_lock_busy, 0u);
    }
    rt.barrier();

    std::uint64_t n = rt.allreduce_sum(count);
    std::uint64_t s = rt.allreduce_sum(sum);
    std::uint64_t s2 = rt.allreduce_sum(sumsq);
    std::uint64_t want_s = kTasks * (kTasks + 1) / 2;
    std::uint64_t want_s2 = kTasks * (kTasks + 1) * (2 * kTasks + 1) / 6;
    EXPECT_EQ(n, kTasks);
    EXPECT_EQ(s, want_s);
    EXPECT_EQ(s2, want_s2);

    rt.seg_free(flag_seg);
    q.destroy();
  });
}

}  // namespace
}  // namespace scioto
