// Tests for the Global Arrays subset: distribution queries, patch
// get/put/acc across owner boundaries, counters, and collectives.
#include <gtest/gtest.h>

#include <vector>

#include "ga/counter.hpp"
#include "ga/global_array.hpp"
#include "test_util.hpp"

namespace scioto {
namespace {

using pgas::BackendKind;
using pgas::Runtime;

class GaBackends : public ::testing::TestWithParam<BackendKind> {};

TEST_P(GaBackends, DistributionCoversAllRowsExactlyOnce) {
  testing::run(5, GetParam(), [&](Runtime& rt) {
    ga::GlobalArray a(rt, 23, 7, "t");
    std::int64_t covered = 0;
    for (Rank r = 0; r < rt.nprocs(); ++r) {
      EXPECT_LE(a.row_lo(r), a.row_hi(r));
      covered += a.row_hi(r) - a.row_lo(r);
      if (r > 0) {
        EXPECT_EQ(a.row_lo(r), a.row_hi(r - 1));
      }
    }
    EXPECT_EQ(covered, 23);
    for (std::int64_t row = 0; row < 23; ++row) {
      Rank o = a.owner_of_row(row);
      EXPECT_GE(row, a.row_lo(o));
      EXPECT_LT(row, a.row_hi(o));
      EXPECT_EQ(a.owner_of_patch(row, 3), o);
    }
    a.destroy();
  });
}

TEST_P(GaBackends, PutGetRoundTripAcrossOwners) {
  testing::run(4, GetParam(), [&](Runtime& rt) {
    ga::GlobalArray a(rt, 16, 8, "t");
    if (rt.me() == 0) {
      // A patch spanning several owners' panels.
      std::vector<double> buf(10 * 5);
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<double>(i) + 0.25;
      }
      a.put(3, 13, 2, 7, buf.data(), 5);
    }
    a.sync();
    // Every rank reads it back identically.
    std::vector<double> out(10 * 5, -1);
    a.get(3, 13, 2, 7, out.data(), 5);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) + 0.25);
    }
    // Outside the patch stays zero.
    EXPECT_DOUBLE_EQ(a.at(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(a.at(15, 7), 0.0);
    a.sync();
    a.destroy();
  });
}

TEST_P(GaBackends, GetRespectsLeadingDimension) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    ga::GlobalArray a(rt, 6, 6, "t");
    if (rt.me() == 0) {
      std::vector<double> v(36);
      for (int i = 0; i < 36; ++i) v[static_cast<std::size_t>(i)] = i;
      a.put(0, 6, 0, 6, v.data(), 6);
    }
    a.sync();
    // Read a 2x3 patch into a buffer with ld=10.
    std::vector<double> out(2 * 10, -1);
    a.get(2, 4, 1, 4, out.data(), 10);
    EXPECT_DOUBLE_EQ(out[0], 13);  // (2,1)
    EXPECT_DOUBLE_EQ(out[2], 15);  // (2,3)
    EXPECT_DOUBLE_EQ(out[10], 19);  // (3,1)
    EXPECT_DOUBLE_EQ(out[3], -1);  // padding untouched
    a.sync();
    a.destroy();
  });
}

TEST_P(GaBackends, AccAccumulatesAtomically) {
  constexpr int kIters = 50;
  testing::run(4, GetParam(), [&](Runtime& rt) {
    ga::GlobalArray a(rt, 12, 4, "t");
    std::vector<double> one(12 * 4, 1.0);
    for (int i = 0; i < kIters; ++i) {
      a.acc(0, 12, 0, 4, one.data(), 4, 0.5);
    }
    a.sync();
    EXPECT_DOUBLE_EQ(a.sum_all(), 0.5 * kIters * rt.nprocs() * 12 * 4);
    a.sync();
    a.destroy();
  });
}

TEST_P(GaBackends, FillAndNorm) {
  testing::run(3, GetParam(), [&](Runtime& rt) {
    ga::GlobalArray a(rt, 9, 9, "t");
    a.fill(2.0);
    EXPECT_DOUBLE_EQ(a.sum_all(), 2.0 * 81);
    EXPECT_DOUBLE_EQ(a.norm2(), 4.0 * 81);
    a.destroy();
  });
}

TEST_P(GaBackends, MoreRanksThanRows) {
  // Some ranks own empty panels; everything must still work.
  testing::run(6, GetParam(), [&](Runtime& rt) {
    ga::GlobalArray a(rt, 3, 4, "t");
    a.fill(1.0);
    EXPECT_DOUBLE_EQ(a.sum_all(), 12.0);
    std::vector<double> row(4);
    a.get(1, 2, 0, 4, row.data(), 4);
    EXPECT_DOUBLE_EQ(row[2], 1.0);
    a.destroy();
  });
}

TEST_P(GaBackends, SharedCounterTicketsAreDense) {
  testing::run(4, GetParam(), [&](Runtime& rt) {
    ga::SharedCounter c(rt, /*home=*/2);
    std::int64_t sum = 0;
    int drawn = 0;
    for (;;) {
      std::int64_t t = c.next();
      if (t >= 100) break;
      sum += t;
      ++drawn;
    }
    std::int64_t total_sum = rt.allreduce_sum(sum);
    std::int64_t total_drawn = rt.allreduce_sum<std::int64_t>(drawn);
    EXPECT_EQ(total_sum, 99 * 100 / 2);
    EXPECT_EQ(total_drawn, 100);
    c.destroy();
  });
}

TEST_P(GaBackends, SharedCounterReset) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    ga::SharedCounter c(rt);
    c.next(5);
    rt.barrier();
    c.reset(7);
    EXPECT_GE(c.peek(), 7);
    c.destroy();
  });
}

TEST_P(GaBackends, InvalidArgumentsThrow) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    ga::GlobalArray a(rt, 8, 8, "t");
    std::vector<double> buf(64);
    // Bad column range.
    EXPECT_THROW(a.get(0, 2, 5, 3, buf.data(), 8), Error);
    // Leading dimension too small.
    EXPECT_THROW(a.get(0, 2, 0, 8, buf.data(), 4), Error);
    // Column range out of bounds.
    EXPECT_THROW(a.put(0, 2, 0, 9, buf.data(), 9), Error);
    rt.barrier();
    a.destroy();
    // Double destroy.
    EXPECT_THROW(a.destroy(), Error);
  });
}

TEST_P(GaBackends, BadRowSplitRejected) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    // Wrong arity / coverage must be rejected before allocation... but the
    // constructor is collective, so exercise the validation on every rank
    // with matching bad input.
    bool threw = false;
    try {
      ga::GlobalArray a(rt, 10, 4, {0, 5}, "bad");  // needs nprocs+1 = 3
    } catch (const Error&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  });
}

TEST_P(GaBackends, ElementwiseOps) {
  testing::run(3, GetParam(), [&](Runtime& rt) {
    ga::GlobalArray a(rt, 10, 5, "a");
    ga::GlobalArray b(rt, 10, 5, "b");
    a.fill(2.0);
    b.fill(3.0);
    a.scale(2.0);                      // a = 4
    EXPECT_DOUBLE_EQ(a.sum_all(), 4.0 * 50);
    a.add(b, 2.0);                     // a = 4 + 2*3 = 10
    EXPECT_DOUBLE_EQ(a.sum_all(), 10.0 * 50);
    EXPECT_DOUBLE_EQ(a.dot(b), 10.0 * 3.0 * 50);
    EXPECT_DOUBLE_EQ(a.max_abs(), 10.0);
    b.copy_from(a);
    EXPECT_DOUBLE_EQ(b.sum_all(), 10.0 * 50);
    b.destroy();
    a.destroy();
  });
}

TEST_P(GaBackends, TransposeRoundTrip) {
  testing::run(4, GetParam(), [&](Runtime& rt) {
    ga::GlobalArray a(rt, 7, 11, "a");
    ga::GlobalArray at(rt, 11, 7, "at");
    ga::GlobalArray att(rt, 7, 11, "att");
    // Fill a with a distinguishable pattern.
    rt.barrier();
    for (std::int64_t i = a.row_lo(rt.me()); i < a.row_hi(rt.me()); ++i) {
      for (std::int64_t j = 0; j < 11; ++j) {
        a.local_panel()[(i - a.row_lo(rt.me())) * 11 + j] =
            static_cast<double>(100 * i + j);
      }
    }
    a.transpose_to(at);
    EXPECT_DOUBLE_EQ(at.at(3, 2), 100 * 2 + 3);
    EXPECT_DOUBLE_EQ(at.at(10, 6), 100 * 6 + 10);
    at.transpose_to(att);
    // Double transpose restores the original.
    double err = 0;
    for (std::int64_t i = att.row_lo(rt.me()); i < att.row_hi(rt.me());
         ++i) {
      for (std::int64_t j = 0; j < 11; ++j) {
        err = std::max(err,
                       std::abs(att.local_panel()[(i - att.row_lo(rt.me())) *
                                                      11 +
                                                  j] -
                                static_cast<double>(100 * i + j)));
      }
    }
    EXPECT_DOUBLE_EQ(rt.allreduce_max(err), 0.0);
    att.destroy();
    at.destroy();
    a.destroy();
  });
}

TEST_P(GaBackends, NonConformableOpsThrow) {
  testing::run(2, GetParam(), [&](Runtime& rt) {
    ga::GlobalArray a(rt, 6, 4, "a");
    ga::GlobalArray b(rt, 4, 6, "b");
    EXPECT_THROW(a.add(b), Error);
    EXPECT_THROW(a.dot(b), Error);
    EXPECT_THROW(a.copy_from(b), Error);
    EXPECT_THROW(a.transpose_to(a), Error);
    rt.barrier();
    b.destroy();
    a.destroy();
  });
}

TEST(GaSplit, BlockAlignedSplitRespectsBoundaries) {
  // Blocks of sizes 5, 3, 8, 2, 6, 4 (total 28) over 3 ranks.
  std::vector<std::int64_t> off = {0, 5, 8, 16, 18, 24, 28};
  for (int nranks : {1, 2, 3, 4, 6, 10}) {
    auto split = ga::block_aligned_split(off, nranks);
    ASSERT_EQ(split.size(), static_cast<std::size_t>(nranks) + 1);
    EXPECT_EQ(split.front(), 0);
    EXPECT_EQ(split.back(), 28);
    for (int r = 0; r < nranks; ++r) {
      EXPECT_LE(split[static_cast<std::size_t>(r)],
                split[static_cast<std::size_t>(r) + 1]);
      // Every interior boundary must be a block boundary.
      bool on_boundary = false;
      for (std::int64_t b : off) {
        if (b == split[static_cast<std::size_t>(r)]) on_boundary = true;
      }
      EXPECT_TRUE(on_boundary) << "split " << split[static_cast<std::size_t>(r)]
                               << " cuts a block (nranks=" << nranks << ")";
    }
  }
}

TEST(GaSplit, BlockAlignedSplitBalancesRows) {
  // Many equal blocks: the split should be near-even.
  std::vector<std::int64_t> off;
  for (int b = 0; b <= 100; ++b) {
    off.push_back(4 * b);
  }
  auto split = ga::block_aligned_split(off, 8);
  for (int r = 0; r < 8; ++r) {
    std::int64_t rows = split[static_cast<std::size_t>(r) + 1] -
                        split[static_cast<std::size_t>(r)];
    EXPECT_GE(rows, 44);  // 400/8 = 50 +- one block
    EXPECT_LE(rows, 56);
  }
}

TEST_P(GaBackends, CustomSplitDistribution) {
  testing::run(3, GetParam(), [&](Runtime& rt) {
    std::vector<std::int64_t> split = {0, 2, 2, 9};  // rank 1 owns nothing
    ga::GlobalArray a(rt, 9, 3, split, "t");
    EXPECT_EQ(a.row_lo(1), 2);
    EXPECT_EQ(a.row_hi(1), 2);
    EXPECT_EQ(a.owner_of_row(0), 0);
    EXPECT_EQ(a.owner_of_row(2), 2);
    EXPECT_EQ(a.owner_of_row(8), 2);
    a.fill(3.0);
    EXPECT_DOUBLE_EQ(a.sum_all(), 3.0 * 27);
    // Patch spanning the empty rank's position works.
    std::vector<double> buf(9 * 3);
    a.get(0, 9, 0, 3, buf.data(), 3);
    for (double v : buf) {
      EXPECT_DOUBLE_EQ(v, 3.0);
    }
    a.destroy();
  });
}

INSTANTIATE_TEST_SUITE_P(AllBackends, GaBackends,
                         ::testing::Values(BackendKind::Sim,
                                           BackendKind::Threads),
                         [](const auto& info) {
                           return scioto::testing::backend_name(info.param);
                         });

}  // namespace
}  // namespace scioto
