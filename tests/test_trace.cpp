// Tests of the src/trace subsystem: ring-buffer sink semantics, session
// recording, Chrome trace-event JSON export (schema-checked with a small
// JSON parser), bit-determinism under the sim backend, and the post-run
// analyses reconciling with TcStats.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/uts/uts_drivers.hpp"
#include "scioto/task_collection.hpp"
#include "test_util.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace scioto {
namespace {

using pgas::Runtime;

// ---- Sink unit tests (no session required) ----

trace::Event make_event(TimeNs t, std::int64_t c) {
  trace::Event e;
  e.t = t;
  e.c = c;
  e.kind = trace::Ev::Push;
  e.rank = 0;
  return e;
}

TEST(TraceSink, RecordsInOrderBelowCapacity) {
  trace::Sink sink(8);
  for (int i = 0; i < 5; ++i) {
    sink.record(make_event(i, i * 10));
  }
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);
  std::vector<trace::Event> evs = sink.snapshot();
  ASSERT_EQ(evs.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(evs[static_cast<std::size_t>(i)].t, i);
    EXPECT_EQ(evs[static_cast<std::size_t>(i)].c, i * 10);
  }
}

TEST(TraceSink, WrapsOverwritingOldestAndCountsDropped) {
  trace::Sink sink(4);
  for (int i = 0; i < 10; ++i) {
    sink.record(make_event(i, 0));
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  std::vector<trace::Event> evs = sink.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  // The oldest surviving events are 6..9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(evs[static_cast<std::size_t>(i)].t, 6 + i);
  }
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSession, InactiveByDefaultAndRecordIsNoOp) {
  EXPECT_FALSE(trace::active());
  EXPECT_EQ(trace::session_nranks(), 0);
  trace::record(0, trace::Ev::Push);  // must not crash
  EXPECT_TRUE(trace::events(0).empty());
  EXPECT_TRUE(trace::all_events().empty());
}

TEST(TraceExport, EmptySessionProducesValidSkeleton) {
  std::string json = trace::chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

// ---- Minimal JSON parser for schema validation ----
//
// Supports the full value grammar the exporter emits: objects, arrays,
// strings (no escapes needed), numbers, booleans. Throws on malformed
// input, so a parse failure fails the test with a position.

struct Json {
  enum class Kind { Object, Array, String, Number, Bool, Null } kind;
  std::map<std::string, std::unique_ptr<Json>> object;
  std::vector<std::unique_ptr<Json>> array;
  std::string str;
  double num = 0;
  bool boolean = false;

  bool has(const std::string& key) const {
    return object.find(key) != object.end();
  }
  const Json& at(const std::string& key) const {
    auto it = object.find(key);
    EXPECT_NE(it, object.end()) << "missing key " << key;
    return *it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  std::unique_ptr<Json> parse() {
    std::unique_ptr<Json> v = value();
    skip_ws();
    check(pos_ == s_.size(), "trailing garbage");
    return v;
  }

 private:
  void check(bool ok, const char* what) {
    if (!ok) {
      ADD_FAILURE() << "JSON parse error at byte " << pos_ << ": " << what;
      throw std::runtime_error(what);
    }
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    check(pos_ < s_.size(), "unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    check(peek() == c, "unexpected character");
    ++pos_;
  }

  std::string string_lit() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      check(s_[pos_] != '\\', "escapes not expected in exporter output");
      out.push_back(s_[pos_++]);
    }
    ++pos_;
    return out;
  }

  std::unique_ptr<Json> value() {
    skip_ws();
    auto v = std::make_unique<Json>();
    char c = peek();
    if (c == '{') {
      v->kind = Json::Kind::Object;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = string_lit();
        skip_ws();
        expect(':');
        v->object[key] = value();
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v->kind = Json::Kind::Array;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v->array.push_back(value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v->kind = Json::Kind::String;
      v->str = string_lit();
      return v;
    }
    if (c == 't' || c == 'f') {
      v->kind = Json::Kind::Bool;
      v->boolean = c == 't';
      pos_ += v->boolean ? 4 : 5;
      check(pos_ <= s_.size(), "truncated literal");
      return v;
    }
    if (c == 'n') {
      v->kind = Json::Kind::Null;
      pos_ += 4;
      check(pos_ <= s_.size(), "truncated literal");
      return v;
    }
    v->kind = Json::Kind::Number;
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    check(pos_ > start, "expected a value");
    v->num = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

#if SCIOTO_TRACE_ENABLED

// ---- Traced workload fixture: small UTS run on the sim backend ----

struct TracedRun {
  std::string json;
  std::vector<trace::Event> events;
  TcStats stats;
  std::uint64_t dropped = 0;
  int nranks = 0;
};

TracedRun run_traced_uts(std::uint64_t seed = 42) {
  TracedRun out;
  out.nranks = 4;
  apps::UtsParams tree = apps::uts_small();
  apps::UtsRunConfig rc;
  rc.chunk = 4;
  apps::UtsResult res;
  trace::start(out.nranks, /*capacity_per_rank=*/1 << 18);
  testing::run_sim(
      out.nranks,
      [&](Runtime& rt) { res = apps::uts_run_scioto(rt, tree, rc); }, seed);
  out.json = trace::chrome_trace_json();
  out.events = trace::all_events();
  out.stats = res.stats;
  out.dropped = trace::total_dropped();
  trace::stop();
  return out;
}

/// The default-seed run feeds several tests; capture it once.
const TracedRun& default_run() {
  static const TracedRun run = run_traced_uts();
  return run;
}

TEST(TraceDeterminism, SameSeedProducesByteIdenticalTraces) {
  TracedRun a = run_traced_uts(/*seed=*/7);
  TracedRun b = run_traced_uts(/*seed=*/7);
  ASSERT_FALSE(a.events.empty());
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.json, b.json) << "sim traces must be bit-reproducible";
  // TcStats must match field for field as well.
  EXPECT_EQ(a.stats.tasks_executed, b.stats.tasks_executed);
  EXPECT_EQ(a.stats.steals, b.stats.steals);
  EXPECT_EQ(a.stats.steal_attempts, b.stats.steal_attempts);
  EXPECT_EQ(a.stats.tasks_stolen, b.stats.tasks_stolen);
  EXPECT_EQ(a.stats.releases, b.stats.releases);
  EXPECT_EQ(a.stats.reacquires, b.stats.reacquires);
  EXPECT_EQ(a.stats.td_waves_voted, b.stats.td_waves_voted);
  EXPECT_EQ(a.stats.time_total, b.stats.time_total);
  EXPECT_EQ(a.stats.time_working, b.stats.time_working);
  EXPECT_EQ(a.stats.time_searching, b.stats.time_searching);
}

TEST(TraceDeterminism, DifferentSeedsProduceDifferentTraces) {
  TracedRun a = run_traced_uts(/*seed=*/7);
  TracedRun b = run_traced_uts(/*seed=*/8);
  // Victim selection depends on the seed, so the streams should diverge
  // (the tree itself is identical).
  EXPECT_NE(a.json, b.json);
}

TEST(TraceExport, ChromeTraceSchemaIsValid) {
  const TracedRun& run = default_run();
  EXPECT_EQ(run.dropped, 0u) << "capacity too small for the test workload";

  std::unique_ptr<Json> root;
  ASSERT_NO_THROW(root = JsonParser(run.json).parse());
  ASSERT_EQ(root->kind, Json::Kind::Object);
  ASSERT_TRUE(root->has("traceEvents"));
  const Json& meta = root->at("otherData");
  EXPECT_EQ(meta.at("ranks").num, run.nranks);
  EXPECT_EQ(meta.at("dropped").num, 0);

  const Json& evs = root->at("traceEvents");
  ASSERT_EQ(evs.kind, Json::Kind::Array);
  ASSERT_GT(evs.array.size(), static_cast<std::size_t>(run.nranks));

  // Per-(pid) stack of open duration events: B/E must nest and balance.
  std::map<int, std::vector<std::string>> open;
  std::size_t metadata_events = 0;
  for (const auto& ep : evs.array) {
    const Json& e = *ep;
    ASSERT_EQ(e.kind, Json::Kind::Object);
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    const std::string& ph = e.at("ph").str;
    int pid = static_cast<int>(e.at("pid").num);
    EXPECT_GE(pid, 0);
    EXPECT_LT(pid, run.nranks);
    if (ph == "M") {
      ++metadata_events;
      continue;
    }
    ASSERT_TRUE(e.has("ts"));
    ASSERT_TRUE(e.has("tid"));
    if (ph == "B") {
      open[pid].push_back(e.at("name").str);
    } else if (ph == "E") {
      ASSERT_FALSE(open[pid].empty())
          << "E without matching B on pid " << pid;
      EXPECT_EQ(open[pid].back(), e.at("name").str) << "mismatched nesting";
      open[pid].pop_back();
    } else if (ph == "X") {
      ASSERT_TRUE(e.has("dur"));
      EXPECT_GE(e.at("dur").num, 0);
    } else if (ph == "C") {
      ASSERT_TRUE(e.has("args"));
      EXPECT_TRUE(e.at("args").has("tasks"));
    } else if (ph == "i") {
      ASSERT_TRUE(e.has("s"));
      EXPECT_EQ(e.at("s").str, "t");
    } else {
      ADD_FAILURE() << "unexpected phase " << ph;
    }
  }
  EXPECT_EQ(metadata_events, static_cast<std::size_t>(run.nranks));
  for (const auto& [pid, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "unclosed duration event on pid " << pid;
  }
}

TEST(TraceAnalysis, BreakdownReconcilesWithTcStatsWithinOnePercent) {
  const TracedRun& run = default_run();
  ASSERT_EQ(run.dropped, 0u);
  std::vector<trace::RankBreakdown> bd =
      trace::time_breakdown(run.events, run.nranks);
  trace::RankBreakdown sum;
  for (const trace::RankBreakdown& rb : bd) {
    sum.total += rb.total;
    sum.working += rb.working;
    sum.searching += rb.searching;
    EXPECT_GE(rb.other(), 0) << "working+searching exceed the phase";
  }
  auto within_pct = [](TimeNs got, TimeNs want, double pct) {
    double diff = std::abs(static_cast<double>(got - want));
    double tol = pct / 100.0 * static_cast<double>(want) + 1.0;
    EXPECT_LE(diff, tol) << "got " << got << " want " << want;
  };
  // run.stats carries the global sums; under the sim backend the trace
  // events sample the identical virtual clocks, so the reconciliation is
  // exact -- 1% is the acceptance bound.
  within_pct(sum.total, run.stats.time_total, 1.0);
  within_pct(sum.working, run.stats.time_working, 1.0);
  within_pct(sum.searching, run.stats.time_searching, 1.0);
}

TEST(TraceAnalysis, StealMatrixMatchesTcStatsCounters) {
  const TracedRun& run = default_run();
  ASSERT_EQ(run.dropped, 0u);
  trace::StealMatrix sm = trace::steal_matrix(run.events, run.nranks);
  EXPECT_GT(sm.total_steals(), 0u) << "UTS on 4 ranks should steal";
  EXPECT_EQ(sm.total_steals(), run.stats.steals);
  EXPECT_EQ(sm.total_tasks(), run.stats.tasks_stolen);
  // No self-steals through the steal path.
  for (Rank r = 0; r < sm.nranks; ++r) {
    EXPECT_EQ(sm.steals_at(r, r), 0u);
  }
  // The table renders with one row per rank plus header/total columns.
  std::string rendered = sm.table().render("steal matrix");
  EXPECT_NE(rendered.find("thief"), std::string::npos);
}

TEST(TraceAnalysis, OccupancyTimelineIsSaneAndOrdered) {
  const TracedRun& run = default_run();
  auto occ = trace::occupancy_timeline(run.events, run.nranks);
  ASSERT_EQ(occ.size(), static_cast<std::size_t>(run.nranks));
  std::size_t total_samples = 0;
  for (const auto& series : occ) {
    TimeNs last = -1;
    for (const trace::OccupancySample& s : series) {
      EXPECT_GE(s.tasks, 0);
      EXPECT_GE(s.t, last);
      last = s.t;
    }
    total_samples += series.size();
  }
  EXPECT_GT(total_samples, 0u);
}

TEST(TraceAnalysis, EventStreamCoversAllSubsystems) {
  const TracedRun& run = default_run();
  bool saw_task = false, saw_queue = false, saw_steal = false,
       saw_td = false, saw_phase = false, saw_barrier = false;
  for (const trace::Event& e : run.events) {
    switch (e.kind) {
      case trace::Ev::TaskBegin:
        saw_task = true;
        break;
      case trace::Ev::Push:
      case trace::Ev::Pop:
      case trace::Ev::Release:
      case trace::Ev::Reacquire:
        saw_queue = true;
        break;
      case trace::Ev::StealOk:
        saw_steal = true;
        break;
      case trace::Ev::Vote:
      case trace::Ev::TokenSend:
        saw_td = true;
        break;
      case trace::Ev::PhaseBegin:
        saw_phase = true;
        break;
      case trace::Ev::Barrier:
        saw_barrier = true;
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_task);
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_steal);
  EXPECT_TRUE(saw_td);
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_barrier);
}

TEST(TraceSession, RingDropAccountingUnderTinyCapacity) {
  // A deliberately undersized ring must drop (oldest first) and report it.
  apps::UtsParams tree = apps::uts_tiny();
  apps::UtsRunConfig rc;
  rc.chunk = 2;
  trace::start(2, /*capacity_per_rank=*/64);
  testing::run_sim(2, [&](Runtime& rt) {
    (void)apps::uts_run_scioto(rt, tree, rc);
  });
  EXPECT_GT(trace::total_dropped(), 0u);
  for (Rank r = 0; r < 2; ++r) {
    EXPECT_LE(trace::events(r).size(), 64u);
  }
  std::string json = trace::chrome_trace_json();
  EXPECT_EQ(json.find("\"dropped\":0,"), std::string::npos);
  trace::stop();
}

#endif  // SCIOTO_TRACE_ENABLED

}  // namespace
}  // namespace scioto
