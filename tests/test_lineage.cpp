// Tests of causal task lineage: id packing, session lifecycle, 8-seed
// determinism of the merged causal timeline, happens-before validation
// across both backends and all three steal paths, steal-chain
// conservation under a kill-a-rank fault plan, lineage-off traces
// carrying no lineage events, and the C API round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "apps/uts/uts_drivers.hpp"
#include "fault/fault.hpp"
#include "scioto/scioto_c.h"
#include "scioto/task_collection.hpp"
#include "test_util.hpp"
#include "trace/analysis.hpp"
#include "trace/export.hpp"
#include "trace/lineage.hpp"
#include "trace/trace.hpp"

namespace scioto {
namespace {

using pgas::Runtime;

#if !SCIOTO_LINEAGE_ENABLED

TEST(Lineage, CompiledOut) {
  GTEST_SKIP() << "built with -DSCIOTO_LINEAGE=OFF";
}

#else

// ---- Id packing and session lifecycle (no SPMD run required) ----

TEST(LineageId, PacksOriginAndSequence) {
  static_assert(sizeof(trace::lineage::LineageRec) == 24);
  const std::uint64_t id = trace::lineage::make_id(/*origin=*/5, /*seq=*/77);
  EXPECT_NE(id, 0u) << "id 0 is reserved for 'no task'";
  EXPECT_EQ(trace::lineage::id_origin(id), 5);
  EXPECT_EQ(trace::lineage::id_seq(id), 77u);
  // Origin 0's first id is still nonzero (the rank is salted by +1).
  EXPECT_NE(trace::lineage::make_id(0, 0), 0u);
  EXPECT_EQ(trace::lineage::id_origin(trace::lineage::make_id(0, 0)), 0);
}

TEST(LineageSession, LifecycleAndPerRankCounters) {
  EXPECT_FALSE(trace::lineage::active());
  EXPECT_EQ(trace::lineage::rec_bytes(), 0u);
  EXPECT_EQ(trace::lineage::current(0), 0u);  // no-op when inactive

  trace::lineage::start(3);
  EXPECT_TRUE(trace::lineage::active());
  EXPECT_EQ(trace::lineage::session_nranks(), 3);
  EXPECT_EQ(trace::lineage::rec_bytes(), sizeof(trace::lineage::LineageRec));

  const std::uint64_t a0 = trace::lineage::next_id(0);
  const std::uint64_t a1 = trace::lineage::next_id(0);
  const std::uint64_t b0 = trace::lineage::next_id(1);
  EXPECT_NE(a0, a1);
  EXPECT_NE(a0, b0) << "ids are rank-salted, never colliding across ranks";
  EXPECT_EQ(trace::lineage::id_seq(a1), trace::lineage::id_seq(a0) + 1);

  EXPECT_EQ(trace::lineage::current(2), 0u);
  trace::lineage::set_current(2, a0);
  EXPECT_EQ(trace::lineage::current(2), a0);
  trace::lineage::stop();
  EXPECT_FALSE(trace::lineage::active());
}

// ---- Traced workload fixture ----

struct LineageRun {
  std::string json;
  std::vector<trace::Event> events;
  trace::LineageReport rep;
  TcStats stats;
  std::uint64_t dropped = 0;
  int nranks = 0;
};

LineageRun run_traced_uts(std::uint64_t seed, pgas::BackendKind backend,
                          QueueMode mode = QueueMode::Split,
                          bool lineage = true,
                          const std::string& fault_plan = "") {
  LineageRun out;
  out.nranks = 4;
  apps::UtsParams tree = apps::uts_small();
  apps::UtsRunConfig rc;
  rc.chunk = 4;
  rc.queue_mode = mode;
  apps::UtsResult res;
  trace::start(out.nranks, /*capacity_per_rank=*/1 << 18);
  if (lineage) {
    trace::lineage::start(out.nranks);
  }
  const bool faulting = !fault_plan.empty();
  if (faulting) {
    fault::start(out.nranks, fault::FaultPlan::parse(fault_plan), seed);
  }
  testing::run(
      out.nranks, backend,
      [&](Runtime& rt) {
        apps::UtsResult mine = faulting ? apps::uts_run_scioto_ft(rt, tree, rc)
                                        : apps::uts_run_scioto(rt, tree, rc);
        if (rt.me() == 0 || faulting) {
          res = mine;  // survivors all publish the reduced result
        }
      },
      seed);
  if (faulting) {
    fault::stop();
  }
  out.json = trace::chrome_trace_json();
  out.events = trace::all_events();
  out.stats = res.stats;
  out.dropped = trace::total_dropped();
  out.rep = trace::lineage_report(out.events, out.nranks, out.dropped);
  if (lineage) {
    trace::lineage::stop();
  }
  trace::stop();
  return out;
}

/// Flattens the merged causal timeline for bit-for-bit comparison.
std::string timeline_fingerprint(const trace::LineageReport& rep) {
  std::string out;
  for (const trace::LineageSpan& s : rep.spans) {
    out += std::to_string(s.id) + "/" + std::to_string(s.parent) + ":" +
           std::to_string(s.spawn_rank) + "@" + std::to_string(s.spawn_t) +
           "->" + std::to_string(s.exec_rank) + "@" +
           std::to_string(s.exec_t) + "+" + std::to_string(s.exec_dur) +
           "h" + std::to_string(s.hops);
    for (const trace::LineageMigration& m : s.migrations) {
      out += "|" + std::to_string(m.victim) + ">" + std::to_string(m.thief) +
             "@" + std::to_string(m.t);
    }
    out += "\n";
  }
  return out;
}

// ---- Determinism: 8 seeds, two sim runs each ----

TEST(LineageDeterminism, MergedTimelineIsBitIdenticalAcrossEightSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    LineageRun a = run_traced_uts(seed, pgas::BackendKind::Sim);
    LineageRun b = run_traced_uts(seed, pgas::BackendKind::Sim);
    ASSERT_FALSE(a.rep.spans.empty()) << "seed " << seed;
    EXPECT_EQ(a.json, b.json) << "seed " << seed;
    EXPECT_EQ(timeline_fingerprint(a.rep), timeline_fingerprint(b.rep))
        << "seed " << seed;
    // The critical path is a pure function of the timeline, so it must be
    // reproducible too.
    trace::CriticalPath ca = trace::critical_path(a.rep, a.events, a.nranks);
    trace::CriticalPath cb = trace::critical_path(b.rep, b.events, b.nranks);
    EXPECT_EQ(ca.length, cb.length) << "seed " << seed;
    EXPECT_EQ(ca.terminal_id, cb.terminal_id) << "seed " << seed;
    EXPECT_EQ(ca.tasks, cb.tasks) << "seed " << seed;
  }
}

// ---- Happens-before validation: backends x steal paths ----

TEST(LineageHappensBefore, HoldsOnBothBackendsAndAllThreeStealPaths) {
  const QueueMode modes[] = {QueueMode::Split, QueueMode::WaitFreeSteal,
                             QueueMode::LockFree};
  for (auto backend : {pgas::BackendKind::Sim, pgas::BackendKind::Threads}) {
    for (QueueMode mode : modes) {
      SCOPED_TRACE(testing::backend_name(backend) + "/mode=" +
                   std::to_string(static_cast<int>(mode)));
      LineageRun run = run_traced_uts(21, backend, mode);
      ASSERT_EQ(run.dropped, 0u);
      EXPECT_TRUE(run.rep.causal_order_ok())
          << "first violation: " << run.rep.violations.front();
      EXPECT_EQ(run.rep.hop_mismatches, 0u)
          << "fault-free hops must equal the migration-edge count";
      // Reconciliation with TcStats: every executed task was spawned
      // exactly once, and every stolen task crossed exactly one
      // MigrateEdge per steal.
      EXPECT_EQ(run.rep.spawns, run.stats.tasks_executed);
      EXPECT_EQ(run.rep.execs, run.stats.tasks_executed);
      EXPECT_EQ(run.rep.migrations, run.stats.tasks_stolen);
      trace::StealMatrix sm = trace::steal_matrix(run.events, run.nranks);
      EXPECT_EQ(run.rep.migrations, sm.total_tasks());
      EXPECT_GT(run.rep.migrations, 0u) << "UTS on 4 ranks should steal";
    }
  }
}

TEST(LineageAnalysis, CriticalPathIsContiguousAndReconciles) {
  LineageRun run = run_traced_uts(33, pgas::BackendKind::Sim);
  trace::CriticalPath cp = trace::critical_path(run.rep, run.events,
                                                run.nranks);
  ASSERT_FALSE(cp.segments.empty());
  // Segments tile [start, terminal-finish) with no gaps or overlaps, so
  // exec + queue blame sums exactly to the path length -- and so does the
  // per-rank decomposition.
  TimeNs blame_sum = 0;
  for (std::size_t i = 0; i < cp.segments.size(); ++i) {
    const trace::CritSegment& seg = cp.segments[i];
    EXPECT_LE(seg.t0, seg.t1);
    if (i > 0) {
      EXPECT_EQ(seg.t0, cp.segments[i - 1].t1) << "gap at segment " << i;
    }
    blame_sum += seg.dur();
  }
  EXPECT_EQ(blame_sum, cp.length);
  EXPECT_EQ(cp.exec_ns + cp.queue_ns, cp.length);
  TimeNs rank_sum = 0;
  for (TimeNs r : cp.rank_blame) {
    rank_sum += r;
  }
  EXPECT_EQ(rank_sum, cp.length);
  // The terminal task really is the last finisher.
  const trace::LineageSpan* term = run.rep.find(cp.terminal_id);
  ASSERT_NE(term, nullptr);
  for (const trace::LineageSpan& s : run.rep.spans) {
    if (s.executed()) {
      EXPECT_LE(s.finish(), term->finish());
    }
  }
}

// ---- Steal-chain conservation under a kill-a-rank fault plan ----

TEST(LineageFault, StealChainConservationWhenARankDies) {
  LineageRun run =
      run_traced_uts(11, pgas::BackendKind::Sim, QueueMode::Split,
                     /*lineage=*/true, "kill:rank=2,at=150us");
  ASSERT_EQ(run.dropped, 0u);
  // Exactly-once execution survives the kill: no double ExecSpan, no
  // exec-before-spawn, every spawned task eventually executed (the
  // adopted ones on their ward).
  EXPECT_TRUE(run.rep.causal_order_ok())
      << "first violation: " << run.rep.violations.front();
  EXPECT_EQ(run.rep.spawns, run.rep.execs);
  // Conservation: the MigrateEdge stream matches the steal matrix task
  // for task. A chunk whose thief died before requeueing is replayed by
  // the victim -- its StealOk and MigrateEdge stay paired -- and
  // drain_dead adoption moves tasks through neither path.
  trace::StealMatrix sm = trace::steal_matrix(run.events, run.nranks);
  EXPECT_EQ(run.rep.migrations, sm.total_tasks());
  // A replayed chunk executes with its pre-steal hop count, so hop
  // mismatches are permitted under faults -- but never more than the
  // tasks that actually migrated.
  EXPECT_LE(run.rep.hop_mismatches, run.rep.migrations);
}

// ---- Lineage-off runs carry no lineage events ----

TEST(LineageOff, TraceCarriesNoLineageEventsAndStaysDeterministic) {
  LineageRun a = run_traced_uts(7, pgas::BackendKind::Sim, QueueMode::Split,
                                /*lineage=*/false);
  for (const trace::Event& e : a.events) {
    EXPECT_NE(e.kind, trace::Ev::SpawnEdge);
    EXPECT_NE(e.kind, trace::Ev::MigrateEdge);
    EXPECT_NE(e.kind, trace::Ev::ExecSpan);
  }
  EXPECT_EQ(a.json.find("task_flow"), std::string::npos);
  EXPECT_TRUE(a.rep.spans.empty());
  // Byte-identity of the disarmed path: the trailer is sized at runtime,
  // so an armed build with no session must reproduce the exact trace of
  // a second disarmed run (the -DSCIOTO_LINEAGE=OFF cross-build diff
  // rides in CI where two builds exist).
  LineageRun b = run_traced_uts(7, pgas::BackendKind::Sim, QueueMode::Split,
                                /*lineage=*/false);
  EXPECT_EQ(a.json, b.json);
}

TEST(LineageExport, ChromeFlowEventsPairUpWithTheReport) {
  LineageRun run = run_traced_uts(5, pgas::BackendKind::Sim);
  auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = run.json.find(needle); at != std::string::npos;
         at = run.json.find(needle, at + needle.size())) {
      ++n;
    }
    return n;
  };
  // One flow-start per spawn, one step per migration, one finish bound to
  // the enclosing exec slice per execution.
  EXPECT_EQ(count("\"ph\":\"s\""), run.rep.spawns);
  EXPECT_EQ(count("\"ph\":\"t\""), run.rep.migrations);
  EXPECT_EQ(count("\"ph\":\"f\""), run.rep.execs);
  EXPECT_EQ(count("\"bp\":\"e\""), run.rep.execs);
  EXPECT_EQ(count("\"name\":\"task_flow\""),
            run.rep.spawns + run.rep.migrations + run.rep.execs);
}

// ---- C API round-trip ----

TEST(LineageCApi, StagingRoundTrip) {
  EXPECT_EQ(scioto_lineage_enabled(), 0);
  scioto_lineage_set(1);
  EXPECT_EQ(scioto_lineage_enabled(), 1);
  scioto_lineage_set(0);
  EXPECT_EQ(scioto_lineage_enabled(), 0);
}

TEST(LineageCApi, ReportMatchesTheNativeAnalyzer) {
  scioto_lineage_report_t crep;
  EXPECT_EQ(scioto_lineage_report_get(&crep), -1)
      << "no session pair active yet";

  const int nranks = 4;
  apps::UtsParams tree = apps::uts_small();
  apps::UtsRunConfig rc;
  rc.chunk = 4;
  trace::start(nranks, /*capacity_per_rank=*/1 << 18);
  trace::lineage::start(nranks);
  testing::run_sim(nranks, [&](Runtime& rt) {
    (void)apps::uts_run_scioto(rt, tree, rc);
  });

  ASSERT_EQ(scioto_lineage_report_get(&crep), 0);
  std::vector<trace::Event> evs = trace::all_events();
  trace::LineageReport rep =
      trace::lineage_report(evs, nranks, trace::total_dropped());
  trace::CriticalPath cp = trace::critical_path(rep, evs, nranks);
  EXPECT_EQ(crep.tasks_spawned, rep.spawns);
  EXPECT_EQ(crep.tasks_executed, rep.execs);
  EXPECT_EQ(crep.migrations, rep.migrations);
  EXPECT_EQ(crep.max_hops, rep.max_hops);
  EXPECT_EQ(crep.violations, rep.violations.size());
  EXPECT_EQ(crep.ring_dropped, 0u);
  EXPECT_EQ(crep.critical_path_ns, cp.length);
  EXPECT_EQ(crep.spawn_exec_p50_ns,
            static_cast<std::int64_t>(rep.spawn_to_exec.percentile(50)));
  EXPECT_EQ(crep.spawn_exec_p99_ns,
            static_cast<std::int64_t>(rep.spawn_to_exec.percentile(99)));

  trace::lineage::stop();
  trace::stop();
  EXPECT_EQ(scioto_lineage_report_get(&crep), -1)
      << "report requires live sessions";
}

#endif  // SCIOTO_LINEAGE_ENABLED

}  // namespace
}  // namespace scioto
