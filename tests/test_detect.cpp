// Heartbeat failure detector tests: the membership view's oracle
// fallback, detector-mode kill recovery (deaths *detected* through
// one-sided probes, not read from the fault oracle), the false-suspicion
// safety property (a stalled-but-alive rank whose queue was adopted under
// a lease fence resumes, aborts, and nothing executes twice), detection
// latency analysis over the trace, determinism of detector-mode replays,
// and the C API knobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/uts/uts_drivers.hpp"
#include "detect/membership.hpp"
#include "fault/fault.hpp"
#include "fault/plan.hpp"
#include "scioto/queue.hpp"
#include "scioto/scioto_c.h"
#include "scioto/task.hpp"
#include "test_util.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"

namespace scioto {
namespace {

using pgas::Runtime;

/// Stages the detector on for the enclosing scope and restores the prior
/// staged config on exit (run_spmd arms/disarms the session itself).
class DetectorGuard {
 public:
  explicit DetectorGuard(const detect::Config* tuned = nullptr)
      : saved_(detect::config()) {
    detect::Config c = tuned ? *tuned : saved_;
    c.enabled = true;
    detect::set_config(c);
  }
  ~DetectorGuard() { detect::set_config(saved_); }

 private:
  detect::Config saved_;
};

apps::UtsResult run_uts_detector(int nranks, const std::string& plan,
                                 std::uint64_t seed,
                                 const apps::UtsParams& tree,
                                 pgas::BackendKind backend =
                                     pgas::BackendKind::Sim) {
  fault::start(nranks, fault::FaultPlan::parse(plan), seed);
  apps::UtsResult res;
  std::mutex res_mu;
  testing::run(
      nranks, backend,
      [&](Runtime& rt) {
        apps::UtsRunConfig rc;
        apps::UtsResult mine = apps::uts_run_scioto_ft(rt, tree, rc);
        // The result is already globally reduced (identical on every
        // surviving rank), but killed ranks never get here — any rank 0
        // included — so every survivor publishes, serialized by a mutex
        // (run_spmd's join orders the final read).
        std::lock_guard<std::mutex> g(res_mu);
        res = mine;
      },
      seed);
  fault::stop();
  return res;
}

// ---- membership view ----

TEST(DetectView, DisarmedFallsBackToOracle) {
  ASSERT_FALSE(detect::active());
  // No fault session either: everyone is alive, epoch 0.
  EXPECT_TRUE(detect::alive(0));
  EXPECT_EQ(detect::epoch(), 0u);

  // With only the oracle armed, the view mirrors it exactly.
  fault::start(4, fault::FaultPlan{}, 7);
  EXPECT_EQ(detect::alive_count(), 4);
  fault::mark_dead(2);
  EXPECT_FALSE(detect::alive(2));
  EXPECT_EQ(detect::alive_count(), 3);
  EXPECT_EQ(detect::epoch(), fault::epoch());
  EXPECT_EQ(detect::successor(1), 3);
  fault::stop();
}

TEST(DetectView, ConfirmDeadWinsOnceAndRejoinReadmits) {
  detect::start(4);
  const std::uint64_t e0 = detect::epoch();
  // Exactly one prober wins the transition; the epoch bumps once.
  EXPECT_TRUE(detect::confirm_dead(2, /*by=*/0));
  EXPECT_FALSE(detect::confirm_dead(2, /*by=*/1));
  EXPECT_FALSE(detect::alive(2));
  EXPECT_EQ(detect::epoch(), e0 + 1);
  EXPECT_EQ(detect::successor(1), 3);
  // Rejoin re-admits and bumps again so every rank resplices.
  std::uint64_t e2 = detect::rejoin(2);
  EXPECT_EQ(e2, e0 + 2);
  EXPECT_TRUE(detect::alive(2));
  detect::Stats s = detect::stats();
  EXPECT_EQ(s.confirms, 1u);
  EXPECT_EQ(s.rejoins, 1u);
  detect::stop();
}

// ---- detector-mode kill recovery: the PR 2 headline, oracle off ----

TEST(DetectRecovery, UtsExactWithQuarterOfRanksKilledDetectorMode) {
  const apps::UtsParams tree = apps::uts_small();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  DetectorGuard guard;
  apps::UtsResult res = run_uts_detector(
      8, "kill:rank=2,at=400us;kill:rank=5,at=700us", 42, tree);
  EXPECT_EQ(res.survivors, 6);
  EXPECT_TRUE(res.counts == expected)
      << "counted " << res.counts.nodes << " nodes, expected "
      << expected.nodes;
  // Both deaths were learned through probes: the detector (not the
  // oracle) confirmed them, and someone paid heartbeats/probes to do it.
  detect::Stats s = detect::stats();
  EXPECT_EQ(s.confirms, 2u);
  EXPECT_GT(s.heartbeats, 0u);
  EXPECT_GT(s.probes, 0u);
  EXPECT_GT(s.max_detect_latency, 0u);
}

TEST(DetectRecovery, UtsExactAcrossKillSchedulesDetectorMode) {
  const apps::UtsParams tree = apps::uts_tiny();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  const char* plans[] = {
      "kill:rank=3,at=20us",
      "kill:rank=1,at=40us;kill:rank=2,at=45us",
      "kill:rank=0,at=30us",  // root rank dies too
  };
  for (const char* plan : plans) {
    DetectorGuard guard;
    apps::UtsResult res = run_uts_detector(4, plan, 7, tree);
    EXPECT_TRUE(res.counts == expected)
        << "plan '" << plan << "' counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
  }
}

// ---- false suspicion: the lease fence earns its keep ----
//
// A whole-rank stall longer than confirm_after pushes a live rank past
// the detector's timeout: a survivor confirms it dead, resplices the
// tree, and adopts its queue under an (epoch, adopter) fence. When the
// rank resumes it must observe the fence, abort its loop, drain nothing
// twice, and rejoin -- the traversal total stays bit-identical to the
// no-fault run, which is the zero-double-execution proof (every re-run
// task would inflate the node count).

TEST(DetectFalseSuspicion, StallResumeExactSim8Seeds) {
  const apps::UtsParams tree = apps::uts_small();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    DetectorGuard guard;
    apps::UtsResult res = run_uts_detector(
        8, "stall:rank=3,at=200us,for=2ms", seed, tree);
    EXPECT_TRUE(res.counts == expected)
        << "seed " << seed << " counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
    // Nobody actually died.
    EXPECT_EQ(res.survivors, 8) << "seed " << seed;
    detect::Stats s = detect::stats();
    // The stalled rank was condemned (2ms silence >> 400us confirm) and
    // came back: exactly one rank was ever confirmed dead, and rejoins
    // match confirms -- every condemnation was a false alarm that
    // recovered, none leaked.
    EXPECT_GE(s.confirms, 1u) << "seed " << seed;
    EXPECT_EQ(s.rejoins, s.confirms) << "seed " << seed;
    EXPECT_EQ(s.fence_aborts, s.rejoins) << "seed " << seed;
  }
}

TEST(DetectFalseSuspicion, StallResumeExactThreads8Seeds) {
  const apps::UtsParams tree = apps::uts_tiny();
  const apps::UtsCounts expected = apps::uts_sequential(tree);
  // Wall-clock timeouts sized for a loaded CI machine: generous enough
  // that scheduling noise alone rarely condemns a rank, small enough that
  // the 80ms injected stall reliably does. Safety cannot depend on the
  // tuning either way -- any falsely-condemned rank fences and rejoins.
  detect::Config tuned = detect::config();
  tuned.hb_period = us(200);
  tuned.probe_period = us(400);
  tuned.suspect_after = ms(5);
  tuned.confirm_after = ms(20);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    DetectorGuard guard(&tuned);
    // Threads-backend rules trigger on safepoint-poll counts (after=),
    // not virtual time.
    apps::UtsResult res = run_uts_detector(
        4, "stall:rank=3,after=40,for=80ms", seed, tree,
        pgas::BackendKind::Threads);
    EXPECT_TRUE(res.counts == expected)
        << "seed " << seed << " counted " << res.counts.nodes
        << " nodes, expected " << expected.nodes;
    EXPECT_EQ(res.survivors, 4) << "seed " << seed;
    detect::Stats s = detect::stats();
    EXPECT_EQ(s.rejoins, s.confirms) << "seed " << seed;
  }
}

// ---- lease fence at queue level: the freeze tag and the overflow stash ----
//
// Deterministic replay of the falsely-suspected-owner interleaving: a ward
// confirms a live rank dead and adopts its queue; the owner then runs every
// queue op a resuming rank would. The freeze must reject the owner's
// lock-free push/pop outright (the tagged priv_tail can never match a CAS
// expected value, so a push cannot land in -- or tear -- a slot the ward
// copied), flush_overflow must bail while fenced instead of re-stashing the
// same task forever, and fence_ack must thaw the queue and rejoin the
// membership view in one critical section.

TEST(DetectFence, AdoptionFreezesOwnerQueueUntilFenceAck) {
  constexpr std::size_t kSlot = 32;
  auto make_slot = [](std::byte* buf, std::uint64_t id) {
    std::memset(buf, 0, kSlot);
    std::memcpy(buf, &id, sizeof(id));
  };
  auto slot_id = [](const std::byte* buf) {
    std::uint64_t id;
    std::memcpy(&id, buf, sizeof(id));
    return id;
  };
  for (auto backend : {pgas::BackendKind::Sim, pgas::BackendKind::Threads}) {
    for (auto mode : {QueueMode::Split, QueueMode::NoSplit}) {
      fault::start(2, fault::FaultPlan{}, 99);
      detect::start(2);
      testing::run(2, backend, [&](Runtime& rt) {
        SplitQueue::Config qc;
        qc.slot_bytes = kSlot;
        qc.capacity = 64;
        qc.chunk = 4;
        qc.mode = mode;
        SplitQueue q(rt, qc);
        std::byte buf[kSlot];
        if (rt.me() == 0) {
          for (std::uint64_t i = 0; i < 6; ++i) {
            make_slot(buf, i);
            ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
          }
        }
        rt.barrier();
        if (rt.me() == 1) {
          ASSERT_TRUE(detect::confirm_dead(0, 1));
          EXPECT_EQ(q.drain_dead(0), 6u);
          // Every adopted task landed here exactly once.
          std::set<std::uint64_t> ids;
          while (q.pop_local(buf) || q.reacquire() > 0) {
            if (slot_id(buf) < 6) ids.insert(slot_id(buf));
          }
          EXPECT_EQ(ids.size(), 6u);
        }
        rt.barrier();
        if (rt.me() == 0) {
          // Fenced: the queue reports empty, pops fail, and a push bounces
          // to the overflow stash instead of writing the adopted ring.
          EXPECT_EQ(q.size(), 0u);
          EXPECT_FALSE(q.pop_local(buf));
          make_slot(buf, 77);
          EXPECT_TRUE(q.push_local(buf, kAffinityHigh));
          EXPECT_TRUE(q.overflow_pending());
          EXPECT_EQ(q.size(), 0u);
          // Pre-fix this looped forever: the fenced push re-stashed the
          // task it was flushing and reported success.
          EXPECT_EQ(q.flush_overflow(), 0u);
          EXPECT_TRUE(q.overflow_pending());
          // fence_ack clears the lease, thaws priv_tail, and rejoins the
          // membership view under one lock hold.
          EXPECT_FALSE(detect::alive(0));
          EXPECT_NE(q.fence_ack(), 0u);
          EXPECT_TRUE(detect::alive(0));
          EXPECT_EQ(q.flush_overflow(), 1u);
          ASSERT_TRUE(q.pop_local(buf) ||
                      (q.reacquire() > 0 && q.pop_local(buf)));
          EXPECT_EQ(slot_id(buf), 77u);
        }
        rt.barrier();
        q.destroy();
      });
      detect::stop();
      fault::stop();
    }
  }
}

// Real-concurrency variant of the same property (threads backend, runs
// under TSan in CI): the owner spams lock-free pushes with no
// synchronization while the ward confirms it dead and adopts mid-stream --
// the window the review of the freeze protocol cared about, an owner
// deep in a task body whose CAS races the freeze itself. Whatever the
// interleaving, every pushed task must surface exactly once: in the
// ward's adopted queue, the owner's surviving queue, or the owner's
// post-rejoin overflow flush.

TEST(DetectFence, ConcurrentAdoptionVsOwnerPushThreads) {
  constexpr std::size_t kSlot = 32;
  constexpr std::uint64_t kTasks = 4000;
  auto make_slot = [](std::byte* buf, std::uint64_t id) {
    std::memset(buf, 0, kSlot);
    std::memcpy(buf, &id, sizeof(id));
  };
  auto slot_id = [](const std::byte* buf) {
    std::uint64_t id;
    std::memcpy(&id, buf, sizeof(id));
    return id;
  };
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    fault::start(2, fault::FaultPlan{}, seed);
    detect::start(2);
    std::mutex mu;
    std::vector<std::uint64_t> seen;  // ids surfaced across both ranks
    testing::run(
        2, pgas::BackendKind::Threads,
        [&](Runtime& rt) {
          SplitQueue::Config qc;
          qc.slot_bytes = kSlot;
          qc.capacity = 8192;
          qc.chunk = 8;
          SplitQueue q(rt, qc);
          std::byte buf[kSlot];
          auto drain_mine = [&] {
            std::vector<std::uint64_t> ids;
            for (;;) {
              if (q.pop_local(buf)) {
                ids.push_back(slot_id(buf));
                continue;
              }
              if (q.reacquire() > 0) {
                continue;
              }
              if (q.overflow_pending() && q.flush_overflow() > 0) {
                continue;
              }
              break;
            }
            std::lock_guard<std::mutex> g(mu);
            seen.insert(seen.end(), ids.begin(), ids.end());
          };
          if (rt.me() == 0) {
            // Owner: unsynchronized push storm. Once the ward freezes the
            // queue, push_local bounces to the overflow stash and still
            // reports success -- no id is ever dropped on the floor.
            for (std::uint64_t i = 0; i < kTasks; ++i) {
              make_slot(buf, i);
              ASSERT_TRUE(q.push_local(buf, kAffinityHigh));
            }
            rt.barrier();  // ward's adoption is over
            q.fence_ack();
            drain_mine();
          } else {
            // Ward: condemn the (live, mid-push) owner and adopt whatever
            // the freeze catches of its queue.
            std::this_thread::sleep_for(std::chrono::microseconds(
                50 + 50 * seed));
            ASSERT_TRUE(detect::confirm_dead(0, 1));
            q.drain_dead(0);
            rt.barrier();
            drain_mine();
          }
          rt.barrier();
          q.destroy();
        },
        seed);
    detect::stop();
    fault::stop();
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), kTasks) << "seed " << seed
                                   << ": task lost or duplicated";
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      ASSERT_EQ(seen[i], i) << "seed " << seed;
    }
  }
}

// ---- detector-mode determinism + detection-latency analysis ----
// (These read the trace stream back; a SCIOTO_TRACE=OFF build records
// nothing, so they skip there.)

#if SCIOTO_TRACE_ENABLED

TEST(DetectTrace, SamePlanAndSeedReplaysByteIdenticalTrace) {
  const apps::UtsParams tree = apps::uts_tiny();
  const std::string plan = "kill:rank=2,at=50us";
  auto traced_run = [&]() {
    DetectorGuard guard;
    trace::start(4);
    (void)run_uts_detector(4, plan, 99, tree);
    std::vector<trace::Event> evs = trace::all_events();
    trace::stop();
    return evs;
  };
  std::vector<trace::Event> a = traced_run();
  std::vector<trace::Event> b = traced_run();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t, b[i].t) << "event " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "event " << i;
    EXPECT_EQ(a[i].rank, b[i].rank) << "event " << i;
    EXPECT_EQ(a[i].a, b[i].a) << "event " << i;
    EXPECT_EQ(a[i].b, b[i].b) << "event " << i;
    EXPECT_EQ(a[i].c, b[i].c) << "event " << i;
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(DetectTrace, DetectionLatencyMatchesKillToFirstConfirm) {
  const apps::UtsParams tree = apps::uts_small();
  DetectorGuard guard;
  trace::start(8);
  (void)run_uts_detector(8, "kill:rank=2,at=400us;kill:rank=5,at=700us", 42,
                         tree);
  std::vector<trace::Event> evs = trace::all_events();
  trace::stop();

  std::vector<trace::DetectionRecord> dl = trace::detection_latency(evs, 8);
  ASSERT_EQ(dl.size(), 2u);
  for (const trace::DetectionRecord& r : dl) {
    EXPECT_TRUE(r.dead == 2 || r.dead == 5);
    EXPECT_TRUE(r.was_killed);
    EXPECT_GT(r.latency(), 0);
    // Confirmation cannot beat the detector's own timeout.
    EXPECT_GE(r.latency(), detect::config().confirm_after);
    EXPECT_NE(r.confirmed_by, r.dead);
    EXPECT_GE(r.suspects, 1);
  }
  // Kills fire at the first safepoint at/after the planned time.
  EXPECT_GE(dl[0].killed_at, us(400));
  EXPECT_GE(dl[1].killed_at, us(700));
  EXPECT_FALSE(trace::detection_table(dl).render("detection").empty());
}

TEST(DetectTrace, FalseConfirmationShowsAsFalseKind) {
  const apps::UtsParams tree = apps::uts_small();
  DetectorGuard guard;
  trace::start(8);
  (void)run_uts_detector(8, "stall:rank=3,at=200us,for=2ms", 3, tree);
  std::vector<trace::Event> evs = trace::all_events();
  trace::stop();

  std::vector<trace::DetectionRecord> dl = trace::detection_latency(evs, 8);
  ASSERT_GE(dl.size(), 1u);
  EXPECT_EQ(dl[0].dead, 3);
  EXPECT_FALSE(dl[0].was_killed);
  EXPECT_EQ(dl[0].latency(), 0);
  // The owner's abort left its mark in the stream.
  bool saw_fence_abort = false;
  for (const trace::Event& e : evs) {
    saw_fence_abort = saw_fence_abort || e.kind == trace::Ev::FenceAbort;
  }
  EXPECT_TRUE(saw_fence_abort);
}

#else  // !SCIOTO_TRACE_ENABLED

TEST(DetectTrace, CompiledOut) {
  GTEST_SKIP() << "built with SCIOTO_TRACE=OFF; the detection-latency "
                  "analyses read the trace stream";
}

#endif  // SCIOTO_TRACE_ENABLED

// ---- C API knobs ----

TEST(DetectCApi, KnobsRoundTripAndSelfConsistency) {
  const detect::Config before = detect::config();

  EXPECT_EQ(scioto_detector_enabled(), 0);
  scioto_detector_set(1);
  EXPECT_EQ(scioto_detector_enabled(), 1);

  // Raising the heartbeat period past the staged timeouts drags them up
  // to keep suspect > hb and confirm > suspect.
  scioto_set_hb_period_ns(us(50));
  EXPECT_EQ(scioto_hb_period_ns(), us(50));
  EXPECT_GT(scioto_suspect_timeout_ns(), us(50));

  scioto_set_suspect_timeout_ns(us(900));
  EXPECT_EQ(scioto_suspect_timeout_ns(), us(900));
  EXPECT_GT(detect::config().confirm_after, us(900));

  detect::set_config(before);
  EXPECT_EQ(scioto_detector_enabled(), before.enabled ? 1 : 0);
}

TEST(DetectCApi, StatsSurfaceAfterDetectorRun) {
  const apps::UtsParams tree = apps::uts_tiny();
  DetectorGuard guard;
  (void)run_uts_detector(4, "kill:rank=3,at=20us", 11, tree);
  scioto_detector_stats_t s;
  scioto_detector_stats_get(&s);
  EXPECT_GT(s.heartbeats, 0u);
  EXPECT_GT(s.probes, 0u);
  EXPECT_EQ(s.confirms, 1u);
  EXPECT_GT(s.max_detect_latency_ns, 0u);
}

}  // namespace
}  // namespace scioto
